package wcet

import (
	"strings"
	"testing"
)

const demoSrc = `
/*@ input */ /*@ range 0 3 */ int mode;
/*@ input */ /*@ range 0 50 */ char load;
int duty;
void governor(void) {
    duty = 0;
    switch (mode) {
    case 0:
        duty = 0;
        break;
    case 1:
        if (load > 30) { duty = 80; } else { duty = 40; }
        break;
    case 2:
        duty = 100;
        if (load > 45) { duty = 90; }
        break;
    default:
        duty = 10;
        break;
    }
    if (duty > 95) { duty = 95; }
}
`

func TestAnalyzeEndToEnd(t *testing.T) {
	rep, err := Analyze(demoSrc, Options{
		FuncName:   "governor",
		Bound:      4,
		Exhaustive: true,
		TestGen: TestGenConfig{
			GA:       GAConfig{Seed: 1, Pop: 32, MaxGens: 40, Stagnation: 10},
			Optimise: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WCET <= 0 {
		t.Fatal("no WCET bound computed")
	}
	if rep.ExhaustiveWCET <= 0 {
		t.Fatal("exhaustive ground truth missing")
	}
	if rep.WCET < rep.ExhaustiveWCET {
		t.Errorf("bound %d below exhaustive max %d: unsafe", rep.WCET, rep.ExhaustiveWCET)
	}
	if rep.Overestimate() > 0.5 {
		t.Errorf("overestimate %.0f%% suspiciously loose", rep.Overestimate()*100)
	}
	if rep.Plan.IP <= 0 || len(rep.Plan.Units) == 0 {
		t.Error("plan not populated")
	}
	if len(rep.TestGen.Results) == 0 {
		t.Error("no generation results")
	}
	if !rep.Measurement.Covered() {
		// Units whose every path is infeasible are legitimately unobserved;
		// everything else must be measured.
		for i, ut := range rep.Measurement.Times {
			if ut.Samples == 0 && ut.Max != 0 {
				t.Errorf("unit %d unmeasured with nonzero weight", i)
			}
		}
	}
}

func TestAnalyzeDefaults(t *testing.T) {
	rep, err := Analyze(demoSrc, Options{
		TestGen: TestGenConfig{GA: GAConfig{Seed: 2, Pop: 24, MaxGens: 30, Stagnation: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fn.Name != "governor" {
		t.Errorf("default function = %q, want first function", rep.Fn.Name)
	}
	if rep.ExhaustiveWCET != -1 {
		t.Error("exhaustive must be off by default")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze("int x = ;", Options{}); err == nil {
		t.Error("syntax error not reported")
	}
	if _, err := Analyze("void f(void) { y = 1; }", Options{}); err == nil {
		t.Error("semantic error not reported")
	}
	if _, err := Analyze(demoSrc, Options{FuncName: "missing"}); err == nil {
		t.Error("unknown function not reported")
	}
	_, err := Analyze("int x;", Options{})
	if err == nil || !strings.Contains(err.Error(), "no function") {
		t.Errorf("missing function error = %v", err)
	}
}

func TestVerdictsSurfaceInReport(t *testing.T) {
	src := `
/*@ input */ int a;
int r;
void f(void) {
    r = 0;
    if (a > 5) {
        if (a < 3) { r = 1; }
    }
}
`
	rep, err := Analyze(src, Options{
		Bound: 1,
		TestGen: TestGenConfig{
			GA:       GAConfig{Seed: 3, Pop: 24, MaxGens: 30, Stagnation: 8},
			Optimise: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.InfeasiblePaths == 0 {
		t.Error("the contradictory nest must yield an infeasible verdict")
	}
	seen := map[Verdict]bool{}
	for _, r := range rep.TestGen.Results {
		seen[r.Verdict] = true
	}
	if !seen[Infeasible] {
		t.Error("no Infeasible verdict surfaced")
	}
}
