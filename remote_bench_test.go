package wcet

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wcet/internal/ga"
	"wcet/internal/model"
	"wcet/internal/testgen"
)

// TestMain is the worker re-exec shim for the process-launching benchmarks
// in this package: a coordinator (local ProcLauncher or a loopback remote
// agent) re-execs this test binary with -remote-bench-worker and the
// assignment path, and the shim routes into the ledger worker before the
// test framework parses flags.
func TestMain(m *testing.M) {
	if len(os.Args) >= 3 && os.Args[1] == "-remote-bench-worker" {
		if err := LedgerWorker(context.Background(), os.Args[len(os.Args)-1]); err != nil {
			fmt.Fprintln(os.Stderr, "remote bench worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// BenchmarkRemoteAgents measures what machine-spanning costs over the best
// case (loopback TCP, no faults): the Section 4 wiper pipeline distributed
// over 4 local worker processes versus the same 4 workers leased onto two
// loopback remote agents with their journals streamed back frame by frame.
// The two legs run interleaved (local, remote, local, remote, …) so
// machine drift cancels out of the ratio; every iteration asserts the two
// canonical reports are byte-identical. The overhead-% metric prices the
// remote streaming machinery itself — same worker processes, same shards,
// the only delta is the TCP hop and the journal/telemetry forwarding.
func BenchmarkRemoteAgents(b *testing.B) {
	src := model.Wiper().Emit("wiper_control")
	opt := Options{
		FuncName:   "wiper_control",
		Bound:      8,
		Exhaustive: true,
		TestGen: testgen.Config{
			GA:       ga.Config{Seed: 2005, Pop: 48, MaxGens: 80, Stagnation: 20},
			Optimise: true,
		},
	}
	spec, err := NewLedgerSpec(src, opt)
	if err != nil {
		b.Fatal(err)
	}
	self, err := os.Executable()
	if err != nil {
		b.Fatal(err)
	}
	canonical := func(rep *Report) []byte {
		var buf bytes.Buffer
		if err := rep.WriteCanonical(&buf); err != nil {
			b.Fatal(err)
		}
		return buf.Bytes()
	}

	var agents []string
	for i := 0; i < 2; i++ {
		agent, err := StartRemoteAgent("127.0.0.1:0", RemoteAgentConfig{
			Exec: []string{self, "-remote-bench-worker"},
			Poll: 2 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer agent.Close()
		agents = append(agents, agent.Addr())
	}

	dir := b.TempDir()
	iter := 0
	distribute := func(kind string, launcher LedgerLauncher) *Report {
		res, err := Distribute(context.Background(), spec, LedgerConfig{
			JournalPath: filepath.Join(dir, fmt.Sprintf("%s-%d.journal", kind, iter)),
			Workers:     4,
			Launcher:    launcher,
			// The default 25ms lease poll is tuned for long multi-process
			// runs; at benchmark scale it would drown the streaming cost
			// in idle sleeps.
			PollInterval: 2 * time.Millisecond,
			LeaseTicks:   2500,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Quarantined) != 0 {
			b.Fatalf("healthy benchmark run quarantined %v", res.Quarantined)
		}
		return res.Report
	}
	local := func() *Report {
		return distribute("local", ProcessLauncher(self, "-remote-bench-worker"))
	}
	remote := func() *Report {
		return distribute("remote", &RemoteLauncher{Agents: agents})
	}

	local() // warm-up: first run pays parser/GA cache misses and process spawn
	var localT, remoteT time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter++
		t0 := time.Now()
		repL := local()
		t1 := time.Now()
		repR := remote()
		remoteT += time.Since(t1)
		localT += t1.Sub(t0)
		if !bytes.Equal(canonical(repL), canonical(repR)) {
			b.Fatal("remote-agent report diverges from the local-process report")
		}
	}
	b.ReportMetric(float64(localT.Milliseconds())/float64(b.N), "local-ms/op")
	b.ReportMetric(float64(remoteT.Milliseconds())/float64(b.N), "remote-ms/op")
	b.ReportMetric((remoteT.Seconds()/localT.Seconds()-1)*100, "overhead-%")
}
