package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"wcet/internal/fail"
)

func TestForEachCtxFirstIndexWins(t *testing.T) {
	// Bodies fail at two indices with distinct errors; the pool must report
	// the lower index for every worker count.
	for _, workers := range []int{1, 8} {
		var got error
		got = ForEachCtx(context.Background(), 16, workers, func(ctx context.Context, i int) error {
			if i == 3 || i == 7 {
				return fail.Infra("stage", fmt.Errorf("body %d failed", i))
			}
			return nil
		})
		if got == nil || got.Error() != "stage: infrastructure failure: body 3 failed" {
			t.Errorf("workers=%d: error = %v, want the index-3 failure", workers, got)
		}
	}
}

func TestForEachCtxPanicIsolated(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := ForEachCtx(context.Background(), 8, workers, func(ctx context.Context, i int) error {
			if i == 2 {
				panic("kaboom")
			}
			return nil
		})
		if !errors.Is(err, fail.ErrWorkerPanic) {
			t.Fatalf("workers=%d: error = %v, want ErrWorkerPanic", workers, err)
		}
		var fe *fail.Error
		if !errors.As(err, &fe) || len(fe.Stack) == 0 {
			t.Errorf("workers=%d: panic error must carry the goroutine stack", workers)
		}
		if err.Error() != "worker panic: kaboom" {
			t.Errorf("workers=%d: error string %q not comparable across runs", workers, err.Error())
		}
	}
}

func TestForEachCtxPanicCancelsRemainingWork(t *testing.T) {
	var after atomic.Int64
	ForEachCtx(context.Background(), 1000, 4, func(ctx context.Context, i int) error {
		if i == 0 {
			panic("early")
		}
		if i > 500 {
			after.Add(1)
		}
		return nil
	})
	// Cancellation is cooperative, so a few in-flight bodies may land, but
	// the bulk of the tail must never be dispatched.
	if after.Load() > 400 {
		t.Errorf("%d late indices ran after the panic; cancellation not propagated", after.Load())
	}
}

func TestForEachCtxParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		var ran atomic.Int64
		err := ForEachCtx(ctx, 8, workers, func(ctx context.Context, i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, fail.ErrCancelled) {
			t.Errorf("workers=%d: error = %v, want ErrCancelled", workers, err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d bodies ran under a cancelled parent", workers, ran.Load())
		}
	}
}

func TestForEachCtxDeadlineMapsToBudget(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := ForEachCtx(ctx, 1000, 4, func(ctx context.Context, i int) error {
		time.Sleep(200 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, fail.ErrBudgetExceeded) {
		t.Errorf("expired deadline: error = %v, want ErrBudgetExceeded", err)
	}
}

func TestForEachCtxFalloutNeverOutranksRootCause(t *testing.T) {
	// Peers that notice the cancellation return an ErrCancelled of their
	// own; the index-5 infrastructure error must still win even though the
	// fallout sits at lower indices.
	root := fail.Infra("stage", errors.New("root cause"))
	err := ForEachCtx(context.Background(), 64, 8, func(ctx context.Context, i int) error {
		if i == 5 {
			return root
		}
		select {
		case <-ctx.Done():
			return fail.Cancelled("stage", ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
		return nil
	})
	if !errors.Is(err, fail.ErrInfrastructure) {
		t.Errorf("error = %v, want the root-cause infrastructure failure", err)
	}
}

func TestForEachCtxSucceedsCleanly(t *testing.T) {
	var sum atomic.Int64
	if err := ForEachCtx(context.Background(), 100, 8, func(ctx context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatalf("clean run errored: %v", err)
	}
	if sum.Load() != 4950 {
		t.Errorf("sum = %d, want 4950 (every index exactly once)", sum.Load())
	}
}

func TestForEachCtxLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		ForEachCtx(context.Background(), 32, 8, func(ctx context.Context, i int) error {
			if i == 3 {
				panic("leak check")
			}
			return fail.Infra("s", errors.New("x"))
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after failed pools", before, runtime.NumGoroutine())
}
