// Package par provides the bounded worker-pool primitive behind the
// analysis pipeline's Workers knob.
//
// Every parallel stage of the pipeline (GA searches, model-checker calls,
// measurement replays, the partitioning sweep) fans out through ForEach /
// ForEachWorker and merges its results deterministically: items are indexed,
// workers pull indices in ascending order, and callers fold outcomes by
// index so the observable result is independent of completion order — and
// therefore of the worker count. Workers == 1 runs inline on the calling
// goroutine with no goroutines spawned, reproducing the serial pipeline
// exactly.
package par

import (
	"context"
	"errors"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"wcet/internal/fail"
	"wcet/internal/obs"
)

// Workers normalises a Workers knob: n > 0 is used as given, 0 (the
// default) means one worker per available CPU (runtime.GOMAXPROCS(0)), and
// negative values clamp to 1.
func Workers(n int) int {
	switch {
	case n > 0:
		return n
	case n == 0:
		return runtime.GOMAXPROCS(0)
	}
	return 1
}

// ForEach runs body(i) for every i in [0, n) on at most `workers`
// goroutines. With workers <= 1 (or n <= 1) the loop runs inline in index
// order. Indices are handed out in ascending order in both modes; bodies
// writing to distinct elements of a shared slice need no locking, and all
// writes are visible to the caller when ForEach returns.
func ForEach(n, workers int, body func(i int)) {
	ForEachWorker(n, workers, func(int) func(int) { return body })
}

// ForEachWorker is ForEach with per-worker state: each worker goroutine
// calls newWorker(worker) once — worker is its index in [0, workers) — and
// feeds its indices to the returned body. Use it when the body needs a
// resource that is cheap to duplicate but not goroutine-safe to share (an
// interpreter machine, a simulator instance).
func ForEachWorker(n, workers int, newWorker func(worker int) func(i int)) {
	if n <= 0 {
		return
	}
	w := workers
	if w > n {
		w = n
	}
	if w <= 1 {
		body := newWorker(0)
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(worker int) {
			defer wg.Done()
			body := newWorker(worker)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}(k)
	}
	wg.Wait()
}

// ForEachCtx is ForEach for fallible, cancellable bodies: see
// ForEachWorkerCtx for the full contract.
func ForEachCtx(ctx context.Context, n, workers int, body func(ctx context.Context, i int) error) error {
	return ForEachWorkerCtx(ctx, n, workers, func(int) func(context.Context, int) error { return body })
}

// ForEachWorkerCtx is ForEachWorker with cancellation, error collection and
// panic isolation — the primitive behind every fallible pipeline stage.
//
// Bodies receive a context derived from ctx that is cancelled as soon as
// any body returns a non-nil error or panics; no further indices are
// dispatched after that, and in-flight bodies are expected to notice the
// cancellation cooperatively. A panicking body is recovered into a
// *fail.Error of kind ErrWorkerPanic carrying the goroutine stack — a
// worker explosion never takes down the process and never leaks the pool's
// goroutines (the pool always joins every worker before returning).
//
// The returned error is deterministic under deterministic bodies:
// first-index-wins. Among all recorded non-cancellation errors the one
// with the lowest index is returned — in serial mode dispatch stops at the
// first error, and in parallel mode a lower-index body either completed
// before the cancel or was already running and still records its own
// error, so the winner is the same for every worker count. Errors that are
// themselves cancellation fallout (bodies unwinding because a peer failed)
// never win over the peer's root-cause error. When the parent ctx itself
// is cancelled the pool reports it via the fail taxonomy: ErrCancelled for
// an explicit cancel, ErrBudgetExceeded for an expired deadline.
func ForEachWorkerCtx(ctx context.Context, n, workers int, newWorker func(worker int) func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return fail.Context("", ctx.Err())
	}
	w := workers
	if w > n {
		w = n
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)

	// Pool-level observability is volatile by nature — task durations and
	// utilization are wall clock — so it never enters a canonical export,
	// and an un-observed pool pays only a nil comparison per task.
	o := obs.From(ctx)
	var busy atomic.Int64
	poolStart := time.Now()
	run := func(body func(context.Context, int) error, i int) error {
		if o == nil {
			return runIsolated(cctx, body, i)
		}
		t0 := time.Now()
		err := runIsolated(cctx, body, i)
		d := time.Since(t0).Nanoseconds()
		busy.Add(d)
		o.CountV("par.tasks", 1)
		o.HistV("par.task_ns", d)
		return err
	}
	finishPool := func() {
		if o == nil {
			return
		}
		o.HistV("par.pool.workers", int64(w))
		if wall := time.Since(poolStart).Nanoseconds(); wall > 0 {
			o.HistV("par.pool.utilization_bp", busy.Load()*10000/(wall*int64(w)))
		}
	}

	if w <= 1 {
		body := newWorker(0)
		for i := 0; i < n; i++ {
			if cctx.Err() != nil {
				break
			}
			if err := run(body, i); err != nil {
				errs[i] = err
				cancel()
			}
		}
		finishPool()
		return pickError(ctx, errs)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(worker int) {
			defer wg.Done()
			body := newWorker(worker)
			for {
				if cctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := run(body, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}(k)
	}
	wg.Wait()
	finishPool()
	return pickError(ctx, errs)
}

// runIsolated runs one body call behind a recover barrier.
func runIsolated(ctx context.Context, body func(context.Context, int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fail.Panic("", r, debug.Stack())
		}
	}()
	return body(ctx, i)
}

// pickError folds the per-index error slice into the deterministic result:
// lowest-index root-cause error first, then parent-context cancellation,
// then lowest-index cancellation fallout (possible only if a body
// manufactured one without a failing peer).
func pickError(ctx context.Context, errs []error) error {
	var fallout error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if isCancellation(err) {
			if fallout == nil {
				fallout = err
			}
			continue
		}
		return err
	}
	if err := fail.Context("", ctx.Err()); err != nil {
		return err
	}
	return fallout
}

// isCancellation reports whether err is (or wraps) a cancellation signal —
// the fallout of someone else's failure, never a root cause of its own.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, fail.ErrCancelled)
}
