// Package par provides the bounded worker-pool primitive behind the
// analysis pipeline's Workers knob.
//
// Every parallel stage of the pipeline (GA searches, model-checker calls,
// measurement replays, the partitioning sweep) fans out through ForEach /
// ForEachWorker and merges its results deterministically: items are indexed,
// workers pull indices in ascending order, and callers fold outcomes by
// index so the observable result is independent of completion order — and
// therefore of the worker count. Workers == 1 runs inline on the calling
// goroutine with no goroutines spawned, reproducing the serial pipeline
// exactly.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalises a Workers knob: n > 0 is used as given, 0 (the
// default) means one worker per available CPU (runtime.GOMAXPROCS(0)), and
// negative values clamp to 1.
func Workers(n int) int {
	switch {
	case n > 0:
		return n
	case n == 0:
		return runtime.GOMAXPROCS(0)
	}
	return 1
}

// ForEach runs body(i) for every i in [0, n) on at most `workers`
// goroutines. With workers <= 1 (or n <= 1) the loop runs inline in index
// order. Indices are handed out in ascending order in both modes; bodies
// writing to distinct elements of a shared slice need no locking, and all
// writes are visible to the caller when ForEach returns.
func ForEach(n, workers int, body func(i int)) {
	ForEachWorker(n, workers, func(int) func(int) { return body })
}

// ForEachWorker is ForEach with per-worker state: each worker goroutine
// calls newWorker(worker) once — worker is its index in [0, workers) — and
// feeds its indices to the returned body. Use it when the body needs a
// resource that is cheap to duplicate but not goroutine-safe to share (an
// interpreter machine, a simulator instance).
func ForEachWorker(n, workers int, newWorker func(worker int) func(i int)) {
	if n <= 0 {
		return
	}
	w := workers
	if w > n {
		w = n
	}
	if w <= 1 {
		body := newWorker(0)
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(worker int) {
			defer wg.Done()
			body := newWorker(worker)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}(k)
	}
	wg.Wait()
}
