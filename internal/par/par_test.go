package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalisation(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != 1 {
		t.Errorf("Workers(-3) = %d, want 1", got)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 1000
		hits := make([]atomic.Int32, n)
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachSerialRunsInOrder(t *testing.T) {
	var order []int
	ForEach(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestForEachWorkerStatePerGoroutine(t *testing.T) {
	var setups atomic.Int32
	ForEachWorker(100, 4, func(worker int) func(int) {
		setups.Add(1)
		if worker < 0 || worker >= 4 {
			t.Errorf("worker index %d out of range", worker)
		}
		return func(int) {}
	})
	if s := setups.Load(); s < 1 || s > 4 {
		t.Errorf("newWorker called %d times, want 1..4", s)
	}
}

func TestForEachEmptyAndClamp(t *testing.T) {
	ForEach(0, 8, func(int) { t.Fatal("body called for n=0") })
	// More workers than items: must not deadlock or double-visit.
	var count atomic.Int32
	ForEach(3, 100, func(int) { count.Add(1) })
	if count.Load() != 3 {
		t.Errorf("visited %d, want 3", count.Load())
	}
}
