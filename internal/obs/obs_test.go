package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

// A nil Observer must be inert everywhere: the pipeline threads possibly-
// nil observers through every stage without guarding call sites.
func TestNilObserverIsNoOp(t *testing.T) {
	var o *Observer
	o.Count("x", 1)
	o.CountV("x", 1)
	o.SetMax("x", 1)
	o.SetMaxV("x", 1)
	o.Set("x", 0, 1)
	o.SetV("x", 0, 1)
	o.Hist("x", 1)
	o.HistV("x", 1)
	o.Progressf("hello %d", 1)
	o.Instant("c", "n", "l")
	sp := o.Span("c", "n", "l", "k", "v")
	sp.End("k2", "v2")
	o.SpanV("c", "n").End()
	if o.Worker(3) != nil {
		t.Error("nil.Worker() must stay nil")
	}
	if o.Metrics() != nil || o.Trace() != nil {
		t.Error("nil observer must expose nil registry and tracer")
	}
	if From(context.Background()) != nil {
		t.Error("From on a bare context must be nil")
	}
	if ctx := With(context.Background(), nil); From(ctx) != nil {
		t.Error("With(nil) must not attach an observer")
	}
}

func TestContextRoundTrip(t *testing.T) {
	o := New(Config{})
	ctx := With(context.Background(), o)
	if From(ctx) != o {
		t.Fatal("observer lost in context round trip")
	}
	if w := From(ctx).Worker(2); w.tid != 3 {
		t.Fatalf("Worker(2) tid = %d, want 3", w.tid)
	}
}

func TestMetricKinds(t *testing.T) {
	o := New(Config{})
	o.Count("c", 2)
	o.Count("c", 3)
	o.SetMax("m", 7)
	o.SetMax("m", 4)
	o.Set("g", 1, 10)
	o.Set("g", 3, 30)
	o.Set("g", 2, 20) // lower logical index: must not win
	o.Hist("h", 1)
	o.Hist("h", 5)
	o.Hist("h", 5)
	reg := o.Metrics()
	if v := reg.Value("c"); v != 5 {
		t.Errorf("counter = %d, want 5", v)
	}
	if v := reg.Value("m"); v != 7 {
		t.Errorf("max = %d, want 7", v)
	}
	if v := reg.Value("g"); v != 30 {
		t.Errorf("gauge = %d, want 30 (highest logical index)", v)
	}
	if v := reg.Value("h"); v != 11 {
		t.Errorf("hist sum = %d, want 11", v)
	}
	snaps := reg.Snapshot(true)
	var hist *MetricSnapshot
	for i := range snaps {
		if snaps[i].Name == "h" {
			hist = &snaps[i]
		}
	}
	if hist == nil || hist.Count != 3 || hist.Sum != 11 {
		t.Fatalf("hist snapshot = %+v, want count 3 sum 11", hist)
	}
	// 1 → bucket 1; 5 → bucket 3 (values 4..7).
	if len(hist.Buckets) != 2 || hist.Buckets[0] != (Bucket{Bit: 1, N: 1}) ||
		hist.Buckets[1] != (Bucket{Bit: 3, N: 2}) {
		t.Errorf("hist buckets = %+v", hist.Buckets)
	}
}

// A kind conflict on a name must neither panic nor corrupt the original
// series.
func TestKindConflictIsDropped(t *testing.T) {
	o := New(Config{})
	o.Count("x", 5)
	o.SetMax("x", 100) // conflicting kind: dropped
	if v := o.Metrics().Value("x"); v != 5 {
		t.Errorf("counter corrupted by kind conflict: %d", v)
	}
}

// The snapshot must be a pure fold of the recorded updates: concurrent
// writers from many goroutines, arriving in any order, must produce the
// same canonical bytes as a serial run.
func TestSnapshotDeterministicUnderConcurrency(t *testing.T) {
	record := func(parallel bool) string {
		o := New(Config{})
		n := 64
		work := func(i int) {
			o.Count("evals", int64(i))
			o.SetMax("peak", int64(i*7%97))
			o.Set("wcet", int64(i), int64(i*3))
			o.Hist("cycles", int64(i%13))
			o.HistV("ns", int64(i)) // volatile: excluded from canonical
		}
		if parallel {
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) { defer wg.Done(); work(i) }(i)
			}
			wg.Wait()
		} else {
			for i := n - 1; i >= 0; i-- { // reversed order on purpose
				work(i)
			}
		}
		var b bytes.Buffer
		if err := o.Metrics().WriteSnapshot(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := record(false)
	for i := 0; i < 4; i++ {
		if p := record(true); p != serial {
			t.Fatalf("snapshot differs between serial and concurrent runs:\n--- serial\n%s\n--- concurrent\n%s", serial, p)
		}
	}
	if strings.Contains(serial, `"ns"`) {
		t.Error("volatile metric leaked into the canonical snapshot")
	}
}

func TestCanonicalTraceOrdersLogically(t *testing.T) {
	o := New(Config{})
	// Emit out of logical order, from different worker lanes.
	o.Worker(1).Span("stage", "measure", "50/measure").End("runs", 12)
	o.Span("stage", "partition", "10/partition", "units", 4).End()
	o.Worker(2).SpanV("ga", "search").End("evals", 99) // volatile
	o.Instant("ledger", "degraded", "65/ledger/p1", "cause", "budget")
	lines := o.Trace().CanonicalLines()
	if len(lines) != 3 {
		t.Fatalf("canonical stream has %d lines, want 3 (volatile dropped): %v", len(lines), lines)
	}
	if !strings.Contains(lines[0], "10/partition") ||
		!strings.Contains(lines[1], "50/measure") ||
		!strings.Contains(lines[2], "65/ledger/p1") {
		t.Errorf("canonical stream not in logical order:\n%s", strings.Join(lines, "\n"))
	}
	for _, l := range lines {
		if strings.Contains(l, "ts") && strings.Contains(l, "dur") {
			t.Errorf("canonical line carries wall-clock fields: %s", l)
		}
	}
	// End-time args must land in the export.
	if !strings.Contains(lines[1], `"runs":"12"`) {
		t.Errorf("span End args missing: %s", lines[1])
	}
}

func TestChromeExportShape(t *testing.T) {
	o := New(Config{})
	sp := o.Span("stage", "testgen", "30/testgen")
	sp.End("targets", 40)
	o.Instant("ledger", "degraded", "65/ledger/x")
	var b bytes.Buffer
	if err := o.Trace().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	for _, want := range []string{`"ph":"X"`, `"ph":"i"`, `"pid":1`, `"name":"testgen"`, `"targets":"40"`} {
		if !strings.Contains(s, want) {
			t.Errorf("chrome trace missing %s in %s", want, s)
		}
	}
}

func TestProgressGoesToWriter(t *testing.T) {
	var b bytes.Buffer
	o := New(Config{Progress: &b})
	o.Progressf("testgen: %d targets", 40)
	if !strings.Contains(b.String(), "testgen: 40 targets") {
		t.Errorf("progress output = %q", b.String())
	}
}

func TestBucketOf(t *testing.T) {
	for _, tc := range []struct {
		v int64
		b int
	}{{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 40, 41}} {
		if got := bucketOf(tc.v); got != tc.b {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.b)
		}
	}
}
