package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"wcet/internal/obs"
)

func startTestServer(t *testing.T, c Config) *Server {
	t.Helper()
	s, err := Start("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf []byte
	buf = make([]byte, 0, 4096)
	tmp := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if err != nil {
			break
		}
	}
	return resp, buf
}

func TestStatusEndpoint(t *testing.T) {
	o := obs.New(obs.Config{})
	o.Span("stage", "testgen", "30/testgen")
	s := startTestServer(t, Config{
		Observer: o,
		Status: func() (*obs.Status, error) {
			st := &obs.Status{}
			st.Deterministic.Stage = "mc"
			st.Deterministic.Stages = []obs.StageStatus{{Stage: "ga", Done: 4, Total: 4}}
			return st, nil
		},
		Fleet: func() []obs.WorkerStatus {
			return []obs.WorkerStatus{
				{ID: "w0", Done: 2, Total: 5},
				{ID: "w1", Done: 1, Total: 4},
			}
		},
		Remote: func() []obs.RemoteHost {
			return []obs.RemoteHost{
				{Addr: "10.0.0.7:9400", State: "up", Leases: 3},
				{Addr: "10.0.0.8:9400", State: "down", Leases: 1, Redials: 4},
			}
		},
	})
	resp, body := get(t, "http://"+s.Addr()+"/status")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var st obs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("status is not JSON: %v\n%s", err, body)
	}
	if st.Deterministic.Stage != "mc" || len(st.Deterministic.Stages) != 1 {
		t.Errorf("deterministic half lost: %+v", st.Deterministic)
	}
	if st.Volatile.BusStage != "testgen" {
		t.Errorf("BusStage = %q, want testgen", st.Volatile.BusStage)
	}
	if st.Volatile.InFlight != 6 {
		t.Errorf("InFlight = %d, want 6 (3+3)", st.Volatile.InFlight)
	}
	if len(st.Volatile.Workers) != 2 {
		t.Errorf("Workers = %+v", st.Volatile.Workers)
	}
	if len(st.Volatile.Remote) != 2 || st.Volatile.Remote[1].State != "down" ||
		st.Volatile.Remote[1].Redials != 4 {
		t.Errorf("Remote fleet state lost: %+v", st.Volatile.Remote)
	}
	if st.Volatile.EventsPublished == 0 {
		t.Error("EventsPublished = 0 after a stage span")
	}
}

func TestStatusEndpointErrorIsVolatile(t *testing.T) {
	o := obs.New(obs.Config{})
	s := startTestServer(t, Config{
		Observer: o,
		Status:   func() (*obs.Status, error) { return nil, fmt.Errorf("journal torn") },
	})
	_, body := get(t, "http://"+s.Addr()+"/status")
	var st obs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.Volatile.Err, "journal torn") {
		t.Errorf("status error not surfaced: %+v", st.Volatile)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	o := obs.New(obs.Config{})
	o.Count("mc.verdicts", 5)
	s := startTestServer(t, Config{Observer: o})
	resp, body := get(t, "http://"+s.Addr()+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "wcet_mc_verdicts 5") {
		t.Errorf("exposition missing counter:\n%s", body)
	}
}

// TestEventsSSE subscribes over HTTP and checks that bus events arrive as
// well-formed SSE frames with matching id/event fields and JSON data.
func TestEventsSSE(t *testing.T) {
	o := obs.New(obs.Config{})
	s := startTestServer(t, Config{Observer: o})

	resp, err := http.Get("http://" + s.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Publish after the subscription is live: the handler subscribes
	// before writing its header, so once the header is out we are
	// guaranteed on the bus.
	o.Emit(obs.BusEvent{Kind: obs.EvUnitLeased, Unit: "tg/a", Worker: "w0"})
	o.Emit(obs.BusEvent{Kind: obs.EvVerdict, Unit: "tg/a", Verdict: "infeasible"})

	type frame struct{ id, event, data string }
	frames := make(chan frame, 2)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		var f frame
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "id: "):
				f.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "event: "):
				f.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				f.data = strings.TrimPrefix(line, "data: ")
			case line == "":
				frames <- f
				f = frame{}
			}
		}
	}()

	for i, wantKind := range []obs.EventKind{obs.EvUnitLeased, obs.EvVerdict} {
		select {
		case f := <-frames:
			if f.event != string(wantKind) {
				t.Fatalf("frame %d event = %q, want %q", i, f.event, wantKind)
			}
			var ev obs.BusEvent
			if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
				t.Fatalf("frame %d data is not JSON: %v (%q)", i, err, f.data)
			}
			if fmt.Sprint(ev.Seq) != f.id {
				t.Errorf("frame %d id %q != data seq %d", i, f.id, ev.Seq)
			}
			if ev.Unit != "tg/a" {
				t.Errorf("frame %d unit = %q", i, ev.Unit)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("frame %d never arrived", i)
		}
	}
}

func TestStartRequiresObserver(t *testing.T) {
	if _, err := Start("127.0.0.1:0", Config{}); err == nil {
		t.Fatal("Start without an observer must fail")
	}
}

func TestPprofMounted(t *testing.T) {
	o := obs.New(obs.Config{})
	s := startTestServer(t, Config{Observer: o})
	resp, body := get(t, "http://"+s.Addr()+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Errorf("pprof cmdline: status %d, %d bytes", resp.StatusCode, len(body))
	}
}
