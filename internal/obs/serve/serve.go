// Package serve exposes a live observer over HTTP: /status (JSON
// snapshot), /metrics (Prometheus text exposition), /events (SSE over the
// event bus) and /debug/pprof. It is a diagnostic surface, deliberately
// read-only and stdlib-only; the planned wcetd daemon mounts the same
// handler per job.
//
// Serving never perturbs the analysis: /status and /metrics read
// registry/bus snapshots, and /events subscribers sit behind the bus's
// bounded drop-oldest rings, so a stalled curl drops events instead of
// stalling the pipeline. Canonical reports stay byte-identical with and
// without a server attached.
package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"wcet/internal/obs"
)

// Config wires a handler to one observed run.
type Config struct {
	// Observer supplies the registry (/metrics), the bus (/events) and
	// the volatile half of /status. Required.
	Observer *obs.Observer
	// Status computes the deterministic half of /status — typically a
	// closure over journal.ReadFile + core.StatusFromRecords. Optional:
	// without it /status serves only the bus-derived volatile view.
	Status func() (*obs.Status, error)
	// Fleet lists per-worker telemetry for distributed runs. Optional.
	Fleet func() []obs.WorkerStatus
	// Remote lists per-agent host state for machine-spanning runs —
	// typically the remote launcher's Hosts method. Optional.
	Remote func() []obs.RemoteHost
	// EventBuffer sizes each /events subscriber's drop-oldest ring
	// (default 256).
	EventBuffer int
}

// Handler builds the HTTP mux for one observed run.
func Handler(c Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", c.serveStatus)
	mux.HandleFunc("/metrics", c.serveMetrics)
	mux.HandleFunc("/events", c.serveEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (c Config) serveStatus(w http.ResponseWriter, req *http.Request) {
	st := &obs.Status{}
	if c.Status != nil {
		if s, err := c.Status(); err != nil {
			st.Volatile.Err = err.Error()
		} else if s != nil {
			*st = *s
		}
	}
	o := c.Observer
	st.Volatile.ElapsedMS = o.Elapsed().Milliseconds()
	st.Volatile.EventsPublished = o.Bus().Published()
	st.Volatile.EventsDropped = o.Metrics().Value("obs.events_dropped")
	st.Volatile.BusStage = o.Bus().Stage()
	if c.Fleet != nil {
		st.Volatile.Workers = c.Fleet()
		for _, ws := range st.Volatile.Workers {
			st.Volatile.InFlight += ws.Total - ws.Done
		}
	}
	if c.Remote != nil {
		st.Volatile.Remote = c.Remote()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}

func (c Config) serveMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.Observer.Metrics().WritePrometheus(w)
}

func (c Config) serveEvents(w http.ResponseWriter, req *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	buf := c.EventBuffer
	if buf <= 0 {
		buf = 256
	}
	sub := c.Observer.Subscribe(buf)
	if sub == nil {
		http.Error(w, "no observer", http.StatusServiceUnavailable)
		return
	}
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		ev, ok := sub.Next(req.Context().Done())
		if !ok {
			return
		}
		data, err := json.Marshal(ev)
		if err != nil {
			continue
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n",
			ev.Seq, ev.Kind, data); err != nil {
			return
		}
		fl.Flush()
	}
}

// Server is a bound, running status server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves Handler(c) until Close.
func Start(addr string, c Config) (*Server, error) {
	if c.Observer == nil {
		return nil, fmt.Errorf("serve: Config.Observer is required")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(c)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close immediately shuts the server down, aborting open SSE streams.
func (s *Server) Close() error { return s.srv.Close() }
