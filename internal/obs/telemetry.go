package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// Telemetry is one worker's periodic sidecar snapshot. Workers write it
// next to their private journal with the same temp+rename discipline as
// the verdict cache, so the coordinator (or any status poller) always
// reads a complete JSON document. The file is volatile by construction —
// it carries the worker's registry snapshot and flight recorder for
// humans and liveness checks, never canonical data.
type Telemetry struct {
	ID     string `json:"id"`
	Seq    int64  `json:"seq"`
	WallMS int64  `json:"wall_ms"`
	// Done/Total count the worker's assigned unit progress; Appended its
	// journal appends.
	Done     int `json:"done"`
	Total    int `json:"total"`
	Appended int `json:"appended"`
	// Metrics is the full registry snapshot (volatile series included).
	Metrics []MetricSnapshot `json:"metrics,omitempty"`
	// Flight is the worker's recent-event ring, oldest first — harvested
	// by the coordinator as the post-mortem for units the worker died on.
	Flight []string `json:"flight,omitempty"`
}

// WriteTelemetry atomically replaces path with the snapshot.
func WriteTelemetry(path string, t *Telemetry) error {
	data, err := json.Marshal(t)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-telem-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ReadTelemetry loads a sidecar snapshot written by WriteTelemetry.
func ReadTelemetry(path string) (*Telemetry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Telemetry
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, err
	}
	return &t, nil
}
