package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Event is one recorded trace entry: a completed span (with duration) or
// an instant. Wall-clock fields (StartNS, DurNS) and the worker lane (TID)
// are inherently schedule-dependent; the canonical export drops them and
// orders events by Logical, so the deterministic event stream is identical
// for every worker count.
type Event struct {
	Cat      string
	Name     string
	Logical  string // canonical sort key; empty only on volatile events
	Volatile bool
	Instant  bool
	TID      int
	StartNS  int64 // ns since the observer's epoch
	DurNS    int64
	Args     []Arg
}

// Tracer buffers events as they complete — arrival order, whatever the
// scheduler produced — and re-orders at export time: the Chrome export
// sorts by start time for readability, the canonical export merges the
// deterministic events in logical order.
type Tracer struct {
	mu     sync.Mutex
	events []Event
}

func newTracer() *Tracer {
	return &Tracer{}
}

func (t *Tracer) add(ev Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events returns a copy of every buffered event, in arrival order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// chromeEvent is the Chrome trace-event JSON shape (the "Trace Event
// Format" consumed by chrome://tracing and Perfetto).
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Ph    string            `json:"ph"`
	TS    float64           `json:"ts"` // microseconds
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChrome serialises the full trace — volatile events included — in
// Chrome trace-event format: load the file in chrome://tracing or
// ui.perfetto.dev to see the pipeline's stages, worker lanes and per-path
// work laid out on the wall clock.
func (t *Tracer) WriteChrome(w io.Writer) error {
	evs := t.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].StartNS < evs[j].StartNS })
	out := make([]chromeEvent, 0, len(evs))
	for _, ev := range evs {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   "X",
			TS:   float64(ev.StartNS) / 1e3,
			Dur:  float64(ev.DurNS) / 1e3,
			PID:  1,
			TID:  ev.TID,
			Args: argMap(ev),
		}
		if ev.Instant {
			ce.Ph = "i"
			ce.Dur = 0
			ce.Scope = "g"
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// canonicalEvent is one line of the canonical stream: the deterministic
// payload of an event, stripped of every schedule-dependent field.
type canonicalEvent struct {
	Logical string            `json:"logical"`
	Cat     string            `json:"cat"`
	Name    string            `json:"name"`
	Args    map[string]string `json:"args,omitempty"`
}

// WriteCanonical serialises the deterministic event stream: volatile
// events are dropped, wall times and worker lanes are stripped, and the
// remainder is merged in logical order (ties broken by the serialised
// line, so the output is a total order). One JSON object per line. The
// determinism suites compare this stream byte for byte across worker
// counts.
func (t *Tracer) WriteCanonical(w io.Writer) error {
	lines := t.CanonicalLines()
	for _, l := range lines {
		if _, err := io.WriteString(w, l+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// CanonicalLines returns the canonical stream as sorted JSON lines.
func (t *Tracer) CanonicalLines() []string {
	evs := t.Events()
	lines := make([]string, 0, len(evs))
	for _, ev := range evs {
		if ev.Volatile {
			continue
		}
		b, err := json.Marshal(canonicalEvent{
			Logical: ev.Logical,
			Cat:     ev.Cat,
			Name:    ev.Name,
			Args:    argMap(ev),
		})
		if err != nil {
			continue // unreachable: all fields are strings
		}
		lines = append(lines, string(b))
	}
	sort.Strings(lines)
	return lines
}

// argMap renders an event's args for JSON export. Duplicate keys keep the
// last value (End-time args override Span-time ones). encoding/json
// serialises map keys in sorted order, keeping the output deterministic.
func argMap(ev Event) map[string]string {
	if len(ev.Args) == 0 {
		return nil
	}
	m := make(map[string]string, len(ev.Args))
	for _, a := range ev.Args {
		m[a.K] = a.V
	}
	return m
}
