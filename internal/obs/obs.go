// Package obs is the pipeline's observability core: hierarchical spans
// over the analysis stages, a registry of named metrics, and a progress
// stream — all with deterministic aggregation, and all zero-dependency
// (stdlib only, no imports from the rest of the pipeline).
//
// # The determinism rule
//
// The analysis pipeline guarantees byte-identical reports for every worker
// count; the observability layer must not be the place where that guarantee
// leaks away. Every recorded quantity is therefore classified:
//
//   - Deterministic (the default): values that are pure functions of the
//     analysed program and the configuration — model-checker steps, BDD
//     node peaks, GA evaluations counted by the coverage board, verdict
//     counts, measured cycle values, the WCET bound. These aggregate
//     through commutative folds (sum, max, highest-logical-index-wins,
//     fixed-bucket histogram counts), so the aggregate is independent of
//     arrival order — and therefore of goroutine scheduling and of the
//     Workers knob. Deterministic trace events carry a logical sort key
//     (stage number, path key, plan-unit index) and every canonical export
//     merges them in logical order, never arrival order.
//
//   - Volatile: wall-clock durations, speculative GA searches that may or
//     may not run depending on scheduling, worker utilization. These are
//     recorded for humans and excluded from every canonical export.
//
// Registry.WriteSnapshot and Tracer.WriteCanonical emit only deterministic
// data and are byte-identical for Workers=1 and Workers=8 (test-enforced on
// the wiper case study); Registry.WriteSnapshotAll and Tracer.WriteChrome
// additionally include the volatile data.
//
// # Cost when disabled
//
// A nil *Observer is the valid disabled state: every method nil-checks and
// returns immediately, so un-observed pipelines pay one pointer comparison
// per instrumentation site (benchmarked at < 2% on BenchmarkTable2). Hot
// call sites therefore thread the observer as a possibly-nil pointer and
// never need to guard their own calls.
package obs

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"
)

// Config configures a new Observer.
type Config struct {
	// Progress receives the human-readable progress stream (one line per
	// event, prefixed with the elapsed time). nil disables progress output.
	// Pipelines write results to stdout; progress belongs on stderr.
	Progress io.Writer
}

// Observer is one observation session: a metrics registry, a trace
// recorder, an event bus with its flight recorder, and an optional
// progress stream, shared by every stage of one analysis. The zero value
// is not usable — construct with New. A nil Observer is the disabled
// state: every method is a nil-check no-op.
//
// Observers are safe for concurrent use. Worker returns a derived handle
// that attributes trace events to a worker lane; Named returns one whose
// events and progress lines carry a label. All derived handles share the
// same registry, tracer, bus and flight recorder.
type Observer struct {
	reg      *Registry
	tr       *Tracer
	bus      *Bus
	flight   *Flight
	progress io.Writer
	epoch    time.Time
	tid      int
	label    string
}

// progressMu serialises progress writes across every observer in the
// process: the distributed coordinator and in-process GoLauncher workers
// hold distinct observers but share one stderr, and interleaved partial
// lines are worse than a global lock on a human-rate stream.
var progressMu sync.Mutex

// New builds an enabled Observer with a fresh registry, tracer, event bus
// and flight recorder.
func New(c Config) *Observer {
	o := &Observer{
		reg:      NewRegistry(),
		tr:       newTracer(),
		flight:   &Flight{},
		progress: c.Progress,
		epoch:    time.Now(),
	}
	o.bus = newBus(func(n int64) {
		o.reg.metric("obs.events_dropped", KindCounter, true).add(n)
	})
	return o
}

// Metrics returns the observer's registry (nil for a nil observer).
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Trace returns the observer's tracer (nil for a nil observer).
func (o *Observer) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.tr
}

// Worker derives a handle whose trace events are attributed to worker lane
// w (lanes are the tid axis of the Chrome trace; the orchestrating
// goroutine is lane 0, workers are lanes 1..n). The derived handle shares
// the registry, tracer and progress stream.
func (o *Observer) Worker(w int) *Observer {
	if o == nil {
		return nil
	}
	d := *o
	d.tid = w + 1
	return &d
}

// Named derives a handle whose events and progress lines are attributed to
// label (the distributed path labels workers with their assignment id, so
// interleaved fleet progress stays readable). The derived handle shares
// the registry, tracer, bus and flight recorder.
func (o *Observer) Named(label string) *Observer {
	if o == nil {
		return nil
	}
	d := *o
	d.label = label
	return &d
}

// Elapsed returns the wall time since the observer was constructed.
func (o *Observer) Elapsed() time.Duration {
	if o == nil {
		return 0
	}
	return time.Since(o.epoch)
}

// Progressf publishes one EvProgress event — recorded on the bus and the
// flight ring, and rendered as a progress line prefixed with the elapsed
// wall time (and the Named label, if any) when a progress writer is
// attached. Safe for concurrent use.
func (o *Observer) Progressf(format string, args ...any) {
	if o == nil {
		return
	}
	o.Emit(BusEvent{Kind: EvProgress, Detail: fmt.Sprintf(format, args...)})
}

// ---------------------------------------------------------------------------
// Spans

// Span is one timed region of the pipeline. Obtain with Observer.Span
// (deterministic, part of the canonical stream) or Observer.SpanV
// (volatile); finish with End. A nil Span (from a nil Observer) is inert.
type Span struct {
	o        *Observer
	cat      string
	name     string
	logical  string
	volatile bool
	start    time.Time
	args     []Arg
}

// Span starts a deterministic span. logical is the canonical sort key —
// stage spans use zero-padded stage numbers ("30/testgen"), per-path spans
// append the path key ("30/testgen/mc/<key>") so nesting sorts with its
// parent. kv is an alternating key/value list; values must themselves be
// deterministic (no durations, no pointers).
func (o *Observer) Span(cat, name, logical string, kv ...any) *Span {
	if o == nil {
		return nil
	}
	if cat == "stage" {
		o.Emit(BusEvent{Kind: EvStageStart, Stage: name})
	}
	return &Span{o: o, cat: cat, name: name, logical: logical,
		start: time.Now(), args: makeArgs(kv)}
}

// SpanV starts a volatile span: it appears in the Chrome trace but never
// in the canonical stream. Use it for work whose occurrence depends on
// scheduling — speculative GA searches, per-worker internals.
func (o *Observer) SpanV(cat, name string, kv ...any) *Span {
	if o == nil {
		return nil
	}
	return &Span{o: o, cat: cat, name: name, volatile: true,
		start: time.Now(), args: makeArgs(kv)}
}

// End finishes the span, appending kv to its arguments and emitting it to
// the tracer. End on a nil span is a no-op.
func (s *Span) End(kv ...any) {
	if s == nil {
		return
	}
	now := time.Now()
	s.o.tr.add(Event{
		Cat:      s.cat,
		Name:     s.name,
		Logical:  s.logical,
		Volatile: s.volatile,
		TID:      s.o.tid,
		StartNS:  s.start.Sub(s.o.epoch).Nanoseconds(),
		DurNS:    now.Sub(s.start).Nanoseconds(),
		Args:     append(s.args, makeArgs(kv)...),
	})
	if s.cat == "stage" {
		s.o.Emit(BusEvent{Kind: EvStageFinish, Stage: s.name,
			Detail: fmt.Sprintf("dur=%dms", now.Sub(s.start).Milliseconds())})
	}
}

// Instant emits a deterministic zero-duration event — the ledger events
// (degradations, budget exhaustions) use it so that every unresolved path
// is visible in the trace with its cause.
func (o *Observer) Instant(cat, name, logical string, kv ...any) {
	if o == nil {
		return
	}
	o.tr.add(Event{
		Cat:     cat,
		Name:    name,
		Logical: logical,
		Instant: true,
		TID:     o.tid,
		StartNS: time.Since(o.epoch).Nanoseconds(),
		Args:    makeArgs(kv),
	})
}

// ---------------------------------------------------------------------------
// Metric recording (nil-safe front end over the registry)

// Count adds n to the named deterministic counter.
func (o *Observer) Count(name string, n int64) {
	if o == nil {
		return
	}
	o.reg.metric(name, KindCounter, false).add(n)
}

// CountV adds n to the named volatile counter.
func (o *Observer) CountV(name string, n int64) {
	if o == nil {
		return
	}
	o.reg.metric(name, KindCounter, true).add(n)
}

// SetMax raises the named deterministic max-gauge to v if v is larger.
func (o *Observer) SetMax(name string, v int64) {
	if o == nil {
		return
	}
	o.reg.metric(name, KindMax, false).max(v)
}

// SetMaxV raises the named volatile max-gauge.
func (o *Observer) SetMaxV(name string, v int64) {
	if o == nil {
		return
	}
	o.reg.metric(name, KindMax, true).max(v)
}

// Set records v on the named deterministic gauge at logical index idx. The
// value with the highest index wins the snapshot, so concurrent writers
// with distinct logical indices (path position, sweep-bound position)
// aggregate deterministically, never by arrival order.
func (o *Observer) Set(name string, idx, v int64) {
	if o == nil {
		return
	}
	o.reg.metric(name, KindGauge, false).setIdx(idx, v)
}

// SetV records v on the named volatile gauge at logical index idx.
func (o *Observer) SetV(name string, idx, v int64) {
	if o == nil {
		return
	}
	o.reg.metric(name, KindGauge, true).setIdx(idx, v)
}

// Hist records v in the named deterministic histogram (power-of-two
// buckets; bucket counts and the sum aggregate commutatively).
func (o *Observer) Hist(name string, v int64) {
	if o == nil {
		return
	}
	o.reg.metric(name, KindHist, false).observe(v)
}

// HistV records v in the named volatile histogram — the home of every
// duration distribution.
func (o *Observer) HistV(name string, v int64) {
	if o == nil {
		return
	}
	o.reg.metric(name, KindHist, true).observe(v)
}

// ---------------------------------------------------------------------------
// Args

// Arg is one key/value trace-event argument, stringified at record time so
// exports need no reflection.
type Arg struct {
	K, V string
}

// makeArgs folds an alternating key/value list into Args. Values are
// rendered with %v; a trailing odd key gets an empty value rather than
// panicking (observability must never take the pipeline down).
func makeArgs(kv []any) []Arg {
	if len(kv) == 0 {
		return nil
	}
	out := make([]Arg, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		k := fmt.Sprintf("%v", kv[i])
		v := ""
		if i+1 < len(kv) {
			v = fmt.Sprintf("%v", kv[i+1])
		}
		out = append(out, Arg{K: k, V: v})
	}
	return out
}

// ---------------------------------------------------------------------------
// Context plumbing

type ctxKey struct{}

// With attaches an observer to the context, the same pattern the fault
// injector uses: deep call sites (the worker pool, the model-checker
// engines, measurement replays) read it back with From and pay one context
// lookup per call, not per inner iteration.
func With(ctx context.Context, o *Observer) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, o)
}

// From retrieves the context's observer, or nil.
func From(ctx context.Context) *Observer {
	o, _ := ctx.Value(ctxKey{}).(*Observer)
	return o
}
