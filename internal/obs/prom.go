package obs

import (
	"fmt"
	"io"
	"strings"
)

// promName sanitises a registry metric name into a Prometheus metric name:
// every character outside [a-zA-Z0-9_] becomes '_' and the result gains
// the wcet_ namespace prefix ("testgen.mc.steps" -> "wcet_testgen_mc_steps").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 5)
	b.WriteString("wcet_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus serialises every metric (volatile included — this is a
// live diagnostic surface, not a canonical export) in the Prometheus text
// exposition format. Counters map to counter, max/gauge to gauge, and
// histograms to cumulative _bucket/_sum/_count series with power-of-two
// upper bounds matching the registry's bit-length buckets.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, s := range r.Snapshot(true) {
		name := promName(s.Name)
		help := s.Kind
		if s.Volatile {
			help += ", volatile"
		} else {
			help += ", deterministic"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s (%s)\n", name, s.Name, help); err != nil {
			return err
		}
		switch s.Kind {
		case "histogram":
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			cum := int64(0)
			for _, b := range s.Buckets {
				cum += b.N
				// Bucket Bit holds values in [2^(Bit-1), 2^Bit); its
				// inclusive upper bound is 2^Bit - 1.
				le := int64(1)<<uint(b.Bit) - 1
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, s.Sum, name, s.Count); err != nil {
				return err
			}
		case "counter":
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Value); err != nil {
				return err
			}
		default: // max, gauge
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
