package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Kind classifies a metric's aggregation rule. Every kind folds
// commutatively, so the aggregate is independent of arrival order — the
// registry-level half of the determinism rule.
type Kind uint8

// Metric kinds.
const (
	// KindCounter sums its updates.
	KindCounter Kind = iota
	// KindMax keeps the largest recorded value.
	KindMax
	// KindGauge keeps the value recorded with the highest logical index —
	// concurrent writers tag updates with a logical position (path index,
	// sweep-bound position), never rely on arrival order.
	KindGauge
	// KindHist counts values into power-of-two buckets and keeps count and
	// sum; bucket counts are sums, so histograms merge commutatively.
	KindHist
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindMax:
		return "max"
	case KindGauge:
		return "gauge"
	case KindHist:
		return "histogram"
	}
	return "unknown"
}

// Metric is one named series. All updates fold commutatively under the
// metric's own lock; a metric is a shard-merge in miniature — per-worker
// updates land in any order and the fold is order-insensitive by
// construction.
type Metric struct {
	Name     string
	Kind     Kind
	Volatile bool

	mu  sync.Mutex
	val int64 // counter sum / max / gauge value
	idx int64 // gauge: logical index of val
	set bool  // gauge/max: any update recorded
	// histogram state
	count, sum int64
	buckets    map[int]int64 // bit-length → count
}

func (m *Metric) add(n int64) {
	m.mu.Lock()
	m.val += n
	m.mu.Unlock()
}

func (m *Metric) max(v int64) {
	m.mu.Lock()
	if !m.set || v > m.val {
		m.val = v
		m.set = true
	}
	m.mu.Unlock()
}

func (m *Metric) setIdx(idx, v int64) {
	m.mu.Lock()
	if !m.set || idx >= m.idx {
		m.val = v
		m.idx = idx
		m.set = true
	}
	m.mu.Unlock()
}

// bucketOf maps v to its power-of-two bucket: the bit length of v for
// positive values, 0 for v <= 0 (negative observations are clamped — the
// pipeline's quantities are non-negative).
func bucketOf(v int64) int {
	b := 0
	for x := v; x > 0; x >>= 1 {
		b++
	}
	return b
}

func (m *Metric) observe(v int64) {
	m.mu.Lock()
	if m.buckets == nil {
		m.buckets = map[int]int64{}
	}
	m.buckets[bucketOf(v)]++
	m.count++
	m.sum += v
	m.mu.Unlock()
}

// Registry holds every metric of one observation session, keyed by name.
// It is safe for concurrent use; reads take a shared lock, the first
// update of a new name upgrades to an exclusive one.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*Metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*Metric{}}
}

// metric returns the named metric, creating it on first use. The first
// registration fixes kind and volatility; a later update under a
// conflicting kind returns a detached throwaway metric instead of
// corrupting the series — observability must degrade, not crash.
func (r *Registry) metric(name string, kind Kind, volatile bool) *Metric {
	r.mu.RLock()
	m := r.metrics[name]
	r.mu.RUnlock()
	if m == nil {
		r.mu.Lock()
		m = r.metrics[name]
		if m == nil {
			m = &Metric{Name: name, Kind: kind, Volatile: volatile}
			r.metrics[name] = m
		}
		r.mu.Unlock()
	}
	if m.Kind != kind {
		return &Metric{Name: name, Kind: kind}
	}
	return m
}

// Value returns the scalar value of a counter/max/gauge metric (0 when
// absent) — the hook tests and report views use to read back a series.
func (r *Registry) Value(name string) int64 {
	r.mu.RLock()
	m := r.metrics[name]
	r.mu.RUnlock()
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.Kind == KindHist {
		return m.sum
	}
	return m.val
}

// Bucket is one histogram bucket in a snapshot: Bit is the value's bit
// length (values in [2^(Bit-1), 2^Bit)), N its observation count.
type Bucket struct {
	Bit int   `json:"bit"`
	N   int64 `json:"n"`
}

// MetricSnapshot is the exported state of one metric. Volatile is only ever
// true in full exports — the canonical snapshot filters those metrics out,
// so the field never perturbs canonical bytes.
type MetricSnapshot struct {
	Name     string   `json:"name"`
	Kind     string   `json:"kind"`
	Volatile bool     `json:"volatile,omitempty"`
	Value    int64    `json:"value"`
	Count    int64    `json:"count,omitempty"`
	Sum      int64    `json:"sum,omitempty"`
	Buckets  []Bucket `json:"buckets,omitempty"`
}

// Snapshot exports every metric, sorted by name. Volatile metrics are
// included only when includeVolatile is set; the deterministic subset is
// byte-identical across worker counts once serialised.
func (r *Registry) Snapshot(includeVolatile bool) []MetricSnapshot {
	r.mu.RLock()
	ms := make([]*Metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.RUnlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })

	out := make([]MetricSnapshot, 0, len(ms))
	for _, m := range ms {
		if m.Volatile && !includeVolatile {
			continue
		}
		m.mu.Lock()
		s := MetricSnapshot{Name: m.Name, Kind: m.Kind.String(),
			Volatile: m.Volatile, Value: m.val}
		if m.Kind == KindHist {
			s.Value = 0
			s.Count = m.count
			s.Sum = m.sum
			bits := make([]int, 0, len(m.buckets))
			for b := range m.buckets {
				bits = append(bits, b)
			}
			sort.Ints(bits)
			for _, b := range bits {
				s.Buckets = append(s.Buckets, Bucket{Bit: b, N: m.buckets[b]})
			}
		}
		m.mu.Unlock()
		out = append(out, s)
	}
	return out
}

// WriteSnapshot serialises the deterministic metrics as indented JSON —
// the canonical snapshot the determinism tests compare byte for byte.
func (r *Registry) WriteSnapshot(w io.Writer) error {
	return writeSnapshotJSON(w, r.Snapshot(false))
}

// WriteSnapshotAll serialises every metric including the volatile ones —
// what the -metrics flag writes for humans.
func (r *Registry) WriteSnapshotAll(w io.Writer) error {
	return writeSnapshotJSON(w, r.Snapshot(true))
}

func writeSnapshotJSON(w io.Writer, snaps []MetricSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}{Metrics: snaps})
}
