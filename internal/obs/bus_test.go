package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestBusDeliversInOrder(t *testing.T) {
	o := New(Config{})
	sub := o.Subscribe(16)
	defer sub.Close()
	o.Emit(BusEvent{Kind: EvUnitLeased, Unit: "tg/a"})
	o.Emit(BusEvent{Kind: EvUnitCompleted, Unit: "tg/a"})
	o.Emit(BusEvent{Kind: EvVerdict, Unit: "tg/a", Verdict: "found-by-mc"})

	var kinds []EventKind
	var seqs []uint64
	for {
		ev, ok := sub.TryNext()
		if !ok {
			break
		}
		kinds = append(kinds, ev.Kind)
		seqs = append(seqs, ev.Seq)
	}
	if len(kinds) != 3 || kinds[0] != EvUnitLeased || kinds[1] != EvUnitCompleted || kinds[2] != EvVerdict {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Errorf("seq not contiguous: %v", seqs)
		}
	}
	if got := o.Bus().Published(); got != 3 {
		t.Errorf("Published = %d, want 3", got)
	}
}

// TestBusBackpressureDropsOldest is the backpressure contract: a stalled
// subscriber (one that never drains) loses its oldest events — counted in
// the subscription and in the obs.events_dropped metric — while Emit
// never blocks.
func TestBusBackpressureDropsOldest(t *testing.T) {
	o := New(Config{})
	sub := o.Subscribe(4)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		o.Emit(BusEvent{Kind: EvProgress, Detail: string(rune('a' + i))})
	}
	if got := sub.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	if got := o.Metrics().Value("obs.events_dropped"); got != 6 {
		t.Errorf("obs.events_dropped = %d, want 6", got)
	}
	// The survivors are the newest four, still in order.
	var got []string
	for {
		ev, ok := sub.TryNext()
		if !ok {
			break
		}
		got = append(got, ev.Detail)
	}
	if strings.Join(got, "") != "ghij" {
		t.Errorf("surviving events = %q, want ghij", strings.Join(got, ""))
	}
}

func TestSubscriptionNextWakesOnCloseAndCancel(t *testing.T) {
	o := New(Config{})

	sub := o.Subscribe(4)
	done := make(chan bool)
	go func() {
		_, ok := sub.Next(nil)
		done <- ok
	}()
	o.Emit(BusEvent{Kind: EvProgress, Detail: "x"})
	if ok := <-done; !ok {
		t.Fatal("Next returned !ok for a delivered event")
	}

	// Close wakes a blocked Next with ok=false once the ring is empty.
	go func() {
		_, ok := sub.Next(nil)
		done <- ok
	}()
	sub.Close()
	if ok := <-done; ok {
		t.Fatal("Next returned ok after Close on an empty ring")
	}

	// A cancel channel wakes Next the same way.
	sub2 := o.Subscribe(4)
	defer sub2.Close()
	cancel := make(chan struct{})
	go func() {
		_, ok := sub2.Next(cancel)
		done <- ok
	}()
	close(cancel)
	if ok := <-done; ok {
		t.Fatal("Next returned ok after cancel")
	}
}

func TestBusCloseDrainsRacedEvents(t *testing.T) {
	o := New(Config{})
	sub := o.Subscribe(8)
	o.Emit(BusEvent{Kind: EvProgress, Detail: "before-close"})
	sub.Close()
	ev, ok := sub.Next(nil)
	if !ok || ev.Detail != "before-close" {
		t.Fatalf("event published before Close was lost: ok=%v ev=%+v", ok, ev)
	}
	if _, ok := sub.Next(nil); ok {
		t.Fatal("drained subscription still yields events")
	}
}

func TestNilObserverBusIsInert(t *testing.T) {
	var o *Observer
	o.Emit(BusEvent{Kind: EvProgress, Detail: "x"}) // must not panic
	if sub := o.Subscribe(4); sub != nil {
		t.Error("Subscribe on nil observer != nil")
	}
	if o.Bus() != nil {
		t.Error("Bus on nil observer != nil")
	}
	if o.Bus().Published() != 0 || o.Bus().Stage() != "" {
		t.Error("nil bus reports nonzero state")
	}
	if o.FlightDump() != nil {
		t.Error("FlightDump on nil observer != nil")
	}
}

func TestStageTracksStageStartEvents(t *testing.T) {
	o := New(Config{})
	sp := o.Span("stage", "testgen", "30/testgen")
	if got := o.Bus().Stage(); got != "testgen" {
		t.Errorf("Stage = %q, want testgen", got)
	}
	sub := o.Subscribe(8)
	sp.End()
	ev, ok := sub.TryNext()
	if !ok || ev.Kind != EvStageFinish || ev.Stage != "testgen" {
		t.Errorf("End(stage) published %+v, want stage.finish/testgen", ev)
	}
}

func TestNamedObserverLabelsEvents(t *testing.T) {
	o := New(Config{})
	sub := o.Subscribe(8)
	defer sub.Close()
	w := o.Named("worker-7")
	w.Emit(BusEvent{Kind: EvUnitCompleted, Unit: "tg/x"})
	ev, ok := sub.TryNext()
	if !ok || ev.Worker != "worker-7" {
		t.Errorf("derived handle event = %+v, want worker=worker-7 (shared bus)", ev)
	}
	// An explicit Worker wins over the label.
	w.Emit(BusEvent{Kind: EvUnitCompleted, Unit: "tg/y", Worker: "other"})
	if ev, _ := sub.TryNext(); ev.Worker != "other" {
		t.Errorf("explicit Worker overridden: %+v", ev)
	}
}

func TestEmitConcurrentWithSubscribeAndClose(t *testing.T) {
	o := New(Config{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				o.Emit(BusEvent{Kind: EvProgress, Detail: "spin"})
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sub := o.Subscribe(4)
				sub.TryNext()
				sub.Close()
			}
		}()
	}
	wg.Wait()
	if got := o.Bus().Published(); got != 800 {
		t.Errorf("Published = %d, want 800", got)
	}
}
