package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestTelemetryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "worker-1.telem.json")
	in := &Telemetry{
		ID: "worker-1", Seq: 7, WallMS: 1234,
		Done: 3, Total: 9, Appended: 3,
		Metrics: []MetricSnapshot{{Name: "mc.verdicts", Kind: "counter", Value: 3}},
		Flight:  []string{"+0.001s #1 unit.leased unit=tg/a"},
	}
	if err := WriteTelemetry(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTelemetry(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Seq != in.Seq || out.Done != in.Done ||
		out.Total != in.Total || out.Appended != in.Appended {
		t.Errorf("round trip mutated snapshot: %+v", out)
	}
	if len(out.Flight) != 1 || out.Flight[0] != in.Flight[0] {
		t.Errorf("flight lost in round trip: %v", out.Flight)
	}

	// Rewrites replace atomically and leave no temp files — the property
	// the coordinator's lock-free reads depend on.
	in.Seq = 8
	if err := WriteTelemetry(path, in); err != nil {
		t.Fatal(err)
	}
	if out, err = ReadTelemetry(path); err != nil || out.Seq != 8 {
		t.Fatalf("rewrite not visible: %+v, %v", out, err)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, ".tmp-*")); len(m) != 0 {
		t.Errorf("leftover temp files: %v", m)
	}
}

func TestReadTelemetryErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadTelemetry(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("absent file must error")
	}
	bad := filepath.Join(dir, "torn.json")
	os.WriteFile(bad, []byte("{\"id\": \"w"), 0o644)
	if _, err := ReadTelemetry(bad); err == nil {
		t.Error("torn JSON must error")
	}
}
