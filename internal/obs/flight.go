package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// flightSize is the per-process flight-recorder capacity: enough recent
// events to explain a crash without ever growing with run length.
const flightSize = 64

// Flight is a fixed-size ring of recent event lines — the per-process
// flight recorder. It records every bus event (one rendered line each) and
// is dumped on panic, quarantine, or worker death so that every
// `unavailable` verdict carries its last-N-events post-mortem. A nil
// Flight is inert.
type Flight struct {
	mu    sync.Mutex
	buf   [flightSize]string
	start int
	n     int
}

func (f *Flight) record(ev BusEvent) {
	if f == nil {
		return
	}
	line := ev.Line()
	f.mu.Lock()
	if f.n == len(f.buf) {
		f.buf[f.start] = line
		f.start = (f.start + 1) % len(f.buf)
	} else {
		f.buf[(f.start+f.n)%len(f.buf)] = line
		f.n++
	}
	f.mu.Unlock()
}

// Dump returns the recorded lines, oldest first.
func (f *Flight) Dump() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, f.n)
	for i := 0; i < f.n; i++ {
		out = append(out, f.buf[(f.start+i)%len(f.buf)])
	}
	return out
}

// FlightDump returns the observer's recent-event ring, oldest first (nil
// for a nil observer). Derived Worker/Named handles share one recorder.
func (o *Observer) FlightDump() []string {
	if o == nil {
		return nil
	}
	return o.flight.Dump()
}

// WriteCrash writes a flight-recorder dump to path with the same
// temp+rename discipline as the verdict cache, so a concurrent reader
// never sees a torn file. The dump is volatile diagnostic output; it never
// feeds a canonical export.
func WriteCrash(path, reason string, flight []string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-crash-*")
	if err != nil {
		return err
	}
	fmt.Fprintf(tmp, "wcet crash report\nreason: %s\ntime: %s\nlast %d event(s):\n",
		reason, time.Now().Format(time.RFC3339), len(flight))
	for _, line := range flight {
		fmt.Fprintf(tmp, "  %s\n", line)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
