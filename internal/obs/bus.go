package obs

import (
	"fmt"
	"sync"
	"time"
)

// EventKind names a structured bus event. Kinds are part of the wire
// surface (/events SSE frames, telemetry sidecars, flight-recorder dumps);
// add new kinds rather than repurposing existing ones.
type EventKind string

// Bus event kinds. Stage events bracket the pipeline stages; unit events
// follow one work unit (a ga/ GA search, a tg/ model-check query, a meas/
// measurement vector) through its lifecycle; worker events track the
// distributed coordinator's view of its fleet.
const (
	EvStageStart      EventKind = "stage.start"
	EvStageFinish     EventKind = "stage.finish"
	EvUnitLeased      EventKind = "unit.leased"
	EvUnitCompleted   EventKind = "unit.completed"
	EvUnitRetried     EventKind = "unit.retried"
	EvUnitQuarantined EventKind = "unit.quarantined"
	EvVerdict         EventKind = "verdict"
	EvDegradation     EventKind = "degradation"
	EvWorkerSpawned   EventKind = "worker.spawned"
	EvWorkerExited    EventKind = "worker.exited"
	EvProgress        EventKind = "progress"
)

// BusEvent is one structured telemetry event. Every field is volatile by
// construction: events exist for live consumers (SSE subscribers, the
// flight recorder, the progress stream) and never feed a canonical export.
// Seq and WallMS are assigned at publish time.
type BusEvent struct {
	Seq    uint64    `json:"seq"`
	WallMS int64     `json:"wall_ms"`
	Kind   EventKind `json:"kind"`
	Stage  string    `json:"stage,omitempty"`
	Unit   string    `json:"unit,omitempty"`
	Worker string    `json:"worker,omitempty"`
	// Verdict carries the MC outcome on EvVerdict events.
	Verdict string `json:"verdict,omitempty"`
	// Detail is free-form human-readable context (the full text of
	// EvProgress lines, causes, durations).
	Detail string `json:"detail,omitempty"`
}

// Line renders the event as one human-readable flight-recorder line.
func (ev BusEvent) Line() string {
	s := fmt.Sprintf("+%d.%03ds #%d %s", ev.WallMS/1000, ev.WallMS%1000, ev.Seq, ev.Kind)
	if ev.Worker != "" {
		s += " worker=" + ev.Worker
	}
	if ev.Stage != "" {
		s += " stage=" + ev.Stage
	}
	if ev.Unit != "" {
		s += " unit=" + ev.Unit
	}
	if ev.Verdict != "" {
		s += " verdict=" + ev.Verdict
	}
	if ev.Detail != "" {
		s += " " + ev.Detail
	}
	return s
}

// Bus fans published events out to subscribers. Publishing never blocks:
// each subscriber owns a bounded drop-oldest ring, so a stalled consumer
// loses its oldest events (counted in the obs.events_dropped metric) while
// the analysis proceeds at full speed.
type Bus struct {
	mu    sync.Mutex
	seq   uint64
	stage string
	subs  []*Subscription
	// onDrop counts dropped events into the owning registry (volatile).
	onDrop func(n int64)
}

func newBus(onDrop func(n int64)) *Bus {
	return &Bus{onDrop: onDrop}
}

// publish stamps the event and delivers it to every subscriber. Never
// blocks; nil-safe so a nil bus (nil observer) publishes nowhere.
func (b *Bus) publish(ev *BusEvent) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	if ev.Kind == EvStageStart {
		b.stage = ev.Stage
	}
	subs := b.subs
	b.mu.Unlock()
	for _, s := range subs {
		s.push(*ev)
	}
}

// Published returns the total number of events published so far.
func (b *Bus) Published() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Stage returns the most recent EvStageStart stage name ("" before the
// first stage) — the minimal live status when no journal is available.
func (b *Bus) Stage() string {
	if b == nil {
		return ""
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stage
}

func (b *Bus) subscribe(buf int) *Subscription {
	if buf < 1 {
		buf = 1
	}
	s := &Subscription{
		bus:    b,
		buf:    make([]BusEvent, buf),
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	b.mu.Lock()
	subs := make([]*Subscription, 0, len(b.subs)+1)
	subs = append(subs, b.subs...)
	b.subs = append(subs, s)
	b.mu.Unlock()
	return s
}

func (b *Bus) unsubscribe(s *Subscription) {
	b.mu.Lock()
	subs := make([]*Subscription, 0, len(b.subs))
	for _, x := range b.subs {
		if x != s {
			subs = append(subs, x)
		}
	}
	b.subs = subs
	b.mu.Unlock()
}

// Subscription is one consumer's bounded view of the bus. Obtain with
// Observer.Subscribe, drain with Next or TryNext, and Close when done.
type Subscription struct {
	bus *Bus

	mu      sync.Mutex
	buf     []BusEvent // ring storage
	start   int        // index of oldest buffered event
	n       int        // buffered count
	dropped uint64

	notify    chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// push appends the event, evicting the oldest if the ring is full.
func (s *Subscription) push(ev BusEvent) {
	s.mu.Lock()
	if s.n == len(s.buf) {
		s.start = (s.start + 1) % len(s.buf)
		s.n--
		s.dropped++
		if s.bus.onDrop != nil {
			s.bus.onDrop(1)
		}
	}
	s.buf[(s.start+s.n)%len(s.buf)] = ev
	s.n++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// TryNext pops the oldest buffered event without blocking.
func (s *Subscription) TryNext() (BusEvent, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return BusEvent{}, false
	}
	ev := s.buf[s.start]
	s.start = (s.start + 1) % len(s.buf)
	s.n--
	return ev, true
}

// Next blocks until an event is available, the subscription is closed, or
// cancel is closed (pass a context's Done channel; nil never cancels).
func (s *Subscription) Next(cancel <-chan struct{}) (BusEvent, bool) {
	for {
		if ev, ok := s.TryNext(); ok {
			return ev, true
		}
		select {
		case <-s.done:
			// Drain events that raced with Close.
			if ev, ok := s.TryNext(); ok {
				return ev, true
			}
			return BusEvent{}, false
		case <-cancel:
			return BusEvent{}, false
		case <-s.notify:
		}
	}
}

// Dropped returns how many events this subscription has evicted unread.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close detaches the subscription from the bus and wakes blocked Next
// callers. Safe to call more than once.
func (s *Subscription) Close() {
	s.closeOnce.Do(func() {
		s.bus.unsubscribe(s)
		close(s.done)
	})
}

// Subscribe attaches a consumer with a ring of buf events (minimum 1).
// Returns nil on a nil observer — guard before calling Next in a loop.
func (o *Observer) Subscribe(buf int) *Subscription {
	if o == nil {
		return nil
	}
	return o.bus.subscribe(buf)
}

// Bus returns the observer's event bus (nil for a nil observer). Derived
// Worker/Named handles share one bus.
func (o *Observer) Bus() *Bus {
	if o == nil {
		return nil
	}
	return o.bus
}

// Emit publishes a structured event to the bus, records it in the flight
// recorder, and — for EvProgress events — renders it to the progress
// writer. Seq and WallMS are stamped here; Worker defaults to the
// observer's label (set by Named).
func (o *Observer) Emit(ev BusEvent) {
	if o == nil {
		return
	}
	if ev.Worker == "" {
		ev.Worker = o.label
	}
	ev.WallMS = time.Since(o.epoch).Milliseconds()
	o.bus.publish(&ev)
	o.flight.record(ev)
	if ev.Kind == EvProgress && o.progress != nil {
		prefix := ""
		if ev.Worker != "" {
			prefix = "[" + ev.Worker + "] "
		}
		progressMu.Lock()
		fmt.Fprintf(o.progress, "[%8.3fs] %s%s\n",
			float64(ev.WallMS)/1000, prefix, ev.Detail)
		progressMu.Unlock()
	}
}
