package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlightRingKeepsNewest(t *testing.T) {
	o := New(Config{})
	for i := 0; i < flightSize+10; i++ {
		o.Emit(BusEvent{Kind: EvProgress, Detail: fmt.Sprintf("ev-%d", i)})
	}
	dump := o.FlightDump()
	if len(dump) != flightSize {
		t.Fatalf("dump length = %d, want %d", len(dump), flightSize)
	}
	if !strings.Contains(dump[0], "ev-10") {
		t.Errorf("oldest retained line = %q, want ev-10 (first 10 evicted)", dump[0])
	}
	if !strings.Contains(dump[len(dump)-1], fmt.Sprintf("ev-%d", flightSize+9)) {
		t.Errorf("newest line = %q, want ev-%d", dump[len(dump)-1], flightSize+9)
	}
}

func TestFlightSharedAcrossDerivedHandles(t *testing.T) {
	o := New(Config{})
	o.Named("w1").Emit(BusEvent{Kind: EvUnitCompleted, Unit: "tg/a"})
	o.Worker(3).Emit(BusEvent{Kind: EvUnitCompleted, Unit: "tg/b"})
	dump := o.FlightDump()
	if len(dump) != 2 {
		t.Fatalf("dump = %v, want 2 lines from derived handles", dump)
	}
	if !strings.Contains(dump[0], "worker=w1") || !strings.Contains(dump[0], "unit=tg/a") {
		t.Errorf("line = %q, want worker=w1 unit=tg/a", dump[0])
	}
}

func TestWriteCrashFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.journal.crash")
	flight := []string{"+0.001s #1 unit.leased unit=tg/a", "+0.500s #2 progress stalling"}
	if err := WriteCrash(path, "quarantined: unit killed its worker 2 time(s)", flight); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"wcet crash report",
		"reason: quarantined: unit killed its worker 2 time(s)",
		"last 2 event(s):",
		"  +0.001s #1 unit.leased unit=tg/a",
		"  +0.500s #2 progress stalling",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("crash file missing %q:\n%s", want, text)
		}
	}
	// temp+rename: no stray temp files left behind.
	if m, _ := filepath.Glob(filepath.Join(dir, ".tmp-*")); len(m) != 0 {
		t.Errorf("leftover temp files: %v", m)
	}
}
