package obs

// Status is the live snapshot served at /status. It keeps the determinism
// rule visible in the wire format: Deterministic holds fields that are
// pure functions of the analysed program, the options, and the journal
// contents (two pollers reading the same journal bytes get the same
// values); Volatile holds wall-clock and fleet data that depends on
// scheduling. There is deliberately no ETA — the model checker's runtime
// is not predictable enough to promise one.
type Status struct {
	Deterministic StatusCore     `json:"deterministic"`
	Volatile      StatusVolatile `json:"volatile"`
}

// StatusCore is the deterministic half of a status snapshot.
type StatusCore struct {
	// Fingerprint is the journal identity (program + deterministic
	// options) the snapshot was computed against.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Stage is the frontier stage the run is in: "pending", "ga", "mc",
	// "campaign", "fallback", "exhaustive" or "done".
	Stage string `json:"stage"`
	// Stages lists per-stage unit progress in pipeline order.
	Stages []StageStatus `json:"stages,omitempty"`
	// Quarantined lists unit keys withdrawn from retry by the ledger.
	Quarantined []string `json:"quarantined,omitempty"`
}

// StageStatus is one stage's unit progress.
type StageStatus struct {
	Stage string `json:"stage"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// StatusVolatile is the volatile half of a status snapshot: process
// wall-clock, bus accounting, and the fleet view aggregated from worker
// telemetry sidecars.
type StatusVolatile struct {
	ElapsedMS       int64  `json:"elapsed_ms"`
	EventsPublished uint64 `json:"events_published"`
	EventsDropped   int64  `json:"events_dropped"`
	// BusStage is the most recent stage.start seen on this process's bus;
	// unlike Deterministic.Stage it needs no journal.
	BusStage string `json:"bus_stage,omitempty"`
	// InFlight is the fleet's total leased-but-incomplete unit count.
	InFlight int            `json:"in_flight,omitempty"`
	Workers  []WorkerStatus `json:"workers,omitempty"`
	// Remote lists per-agent host state for machine-spanning runs — the
	// place a degraded run shows its downgrade: a host marked "down" had
	// its leases re-leased onto the local fallback launcher.
	Remote []RemoteHost `json:"remote,omitempty"`
	// Err reports a status-computation failure (e.g. journal unreadable)
	// without taking the endpoint down.
	Err string `json:"error,omitempty"`
}

// RemoteHost is one remote agent's state as the remote launcher sees it.
type RemoteHost struct {
	Addr string `json:"addr"`
	// State is "up" or "down"; down is sticky for the run — the host
	// exhausted a lease's reconnect budget and its work went local.
	State string `json:"state"`
	// Leases counts leases routed to this host; Redials the reconnect
	// attempts its streams needed.
	Leases  int64 `json:"leases"`
	Redials int64 `json:"redials,omitempty"`
}

// WorkerStatus is one distributed worker's latest telemetry, as read from
// its sidecar file by the coordinator.
type WorkerStatus struct {
	ID string `json:"id"`
	// Done/Total count the worker's assigned units.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Appended counts records the worker has written to its journal.
	Appended int `json:"appended"`
	// AgeMS is how stale the sidecar file is — the secondary liveness
	// signal the coordinator watches alongside journal growth.
	AgeMS int64 `json:"age_ms"`
}
