package obs

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"testgen.mc.steps":   "wcet_testgen_mc_steps",
		"ledger.workers":     "wcet_ledger_workers",
		"odd-name with sp":   "wcet_odd_name_with_sp",
		"already_underscore": "wcet_already_underscore",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusExposition(t *testing.T) {
	o := New(Config{})
	o.Count("mc.verdicts", 3)
	o.SetMax("bdd.nodes_peak", 1024)
	o.Hist("mc.steps", 1) // bit 1: le 1
	o.Hist("mc.steps", 5) // bit 3: le 7
	o.CountV("obs.events_dropped", 2)

	var buf bytes.Buffer
	if err := o.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP wcet_mc_verdicts mc.verdicts (counter, deterministic)",
		"# TYPE wcet_mc_verdicts counter",
		"wcet_mc_verdicts 3",
		"# TYPE wcet_bdd_nodes_peak gauge",
		"wcet_bdd_nodes_peak 1024",
		"# TYPE wcet_mc_steps histogram",
		"wcet_mc_steps_bucket{le=\"+Inf\"} 2",
		"wcet_mc_steps_sum 6",
		"wcet_mc_steps_count 2",
		"# HELP wcet_obs_events_dropped obs.events_dropped (counter, volatile)",
		"wcet_obs_events_dropped 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// Histogram buckets must be cumulative and non-decreasing, with the
	// +Inf bucket equal to the count — the invariant Prometheus scrapers
	// assume.
	last := int64(-1)
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "wcet_mc_steps_bucket") {
			continue
		}
		fields := strings.Fields(line)
		n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n < last {
			t.Errorf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = n
	}
	if last != 2 {
		t.Errorf("final (+Inf) bucket = %d, want 2", last)
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}
