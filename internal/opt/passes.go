package opt

import (
	"fmt"
	"sort"

	"wcet/internal/tsys"
)

// ---------------------------------------------------------------------------
// Reverse CSE

// maxInlineSize bounds substituted-expression growth.
const maxInlineSize = 24

// ReverseCSE replaces reads of compiler temporaries by their defining
// expressions — the contrary of common-subexpression elimination. A
// temporary is a non-input variable assigned exactly once; substitution is
// performed forward within the defining chain (the straight-line block) for
// as long as neither the temporary nor its operands are reassigned. When
// every read has been inlined the defining assignment disappears, together
// with the temporary's state bits.
func ReverseCSE(m *tsys.Model) PassStats {
	return statsFor("ReverseCSE", m, func() string {
		inlined := 0
		// Walk each chain in edge order.
		for _, chain := range chains(m) {
			avail := map[tsys.VarID]tsys.Expr{} // candidate definitions in flight
			for _, e := range chain {
				// Substitute into guard and RHSs, in ascending VarID order:
				// when two in-flight definitions interact (t2's definition
				// reads t1), the substitution result depends on which is
				// inlined first, so map-iteration order would leak into the
				// rewritten model and the Table 2 numbers.
				for _, v := range sortedVarIDs(avail) {
					def := avail[v]
					if e.Guard != nil {
						if g := tsys.Subst(e.Guard, v, def); g != e.Guard && tsys.Size(g) <= maxInlineSize {
							e.Guard = g
							inlined++
						}
					}
					for i := range e.Assigns {
						if r := tsys.Subst(e.Assigns[i].RHS, v, def); r != e.Assigns[i].RHS &&
							tsys.Size(r) <= maxInlineSize {
							e.Assigns[i].RHS = r
							inlined++
						}
					}
				}
				// Kill definitions whose operands (or themselves) are written.
				// Each kill decision only reads `written` and the definition
				// itself, so the iteration order over `avail` cannot change
				// the surviving set.
				written := map[tsys.VarID]bool{}
				for _, a := range e.Assigns {
					written[a.Var] = true
				}
				for v, def := range avail {
					reads := map[tsys.VarID]bool{}
					tsys.ReadVars(def, reads)
					kill := written[v]
					for w := range written {
						if reads[w] {
							kill = true
						}
					}
					if kill {
						delete(avail, v)
					}
				}
				// Record new candidate definitions: the RHS must not read
				// anything this edge writes (including the target itself),
				// or the inlined expression would see post-state values.
				for _, a := range e.Assigns {
					v := m.Vars[a.Var]
					if v.Input || tsys.Size(a.RHS) > maxInlineSize {
						continue
					}
					reads := map[tsys.VarID]bool{}
					tsys.ReadVars(a.RHS, reads)
					selfRef := false
					for w := range written {
						if reads[w] {
							selfRef = true
						}
					}
					if !selfRef {
						avail[a.Var] = a.RHS
					}
				}
			}
		}
		// Drop defining assignments of temporaries that are no longer read.
		removed := removeDeadDefs(m)
		return fmt.Sprintf("inlined %d reads, removed %d temporaries", inlined, removed)
	})
}

// sortedVarIDs returns the keys of an availability map in ascending order,
// pinning every substitution sequence to one canonical order.
func sortedVarIDs(avail map[tsys.VarID]tsys.Expr) []tsys.VarID {
	ids := make([]tsys.VarID, 0, len(avail))
	for v := range avail {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// chains groups edges by chain id, preserving model order.
func chains(m *tsys.Model) [][]*tsys.Edge {
	idx := map[int]int{}
	var out [][]*tsys.Edge
	for _, e := range m.Edges {
		i, ok := idx[e.Chain]
		if !ok {
			i = len(out)
			idx[e.Chain] = i
			out = append(out, nil)
		}
		out[i] = append(out[i], e)
	}
	return out
}

// removeDeadDefs deletes assignments to non-input variables that are read
// nowhere, zeroes those variables out of the state vector, and contracts
// the emptied transitions. Returns the number of removed variables.
func removeDeadDefs(m *tsys.Model) int {
	read := map[tsys.VarID]bool{}
	for _, e := range m.Edges {
		if e.Guard != nil {
			tsys.ReadVars(e.Guard, read)
		}
		for _, a := range e.Assigns {
			tsys.ReadVars(a.RHS, read)
		}
	}
	removed := 0
	dead := map[tsys.VarID]bool{}
	for _, v := range m.Vars {
		if !v.Input && !read[v.ID] && v.Bits > 0 {
			hasAssign := false
			for _, e := range m.Edges {
				for _, a := range e.Assigns {
					if a.Var == v.ID {
						hasAssign = true
					}
				}
			}
			if hasAssign || v.Init == tsys.InitFree {
				dead[v.ID] = true
				v.Bits = 0
				v.Init = tsys.InitConst
				v.InitVal = 0
				removed++
			}
		}
	}
	if removed == 0 {
		return 0
	}
	for _, e := range m.Edges {
		var keep []tsys.Assign
		for _, a := range e.Assigns {
			if !dead[a.Var] {
				keep = append(keep, a)
			}
		}
		e.Assigns = keep
	}
	Contract(m)
	return removed
}

// ---------------------------------------------------------------------------
// Live-variable analysis

// LiveVars runs backward liveness over the location graph, removes dead
// assignments and never-read variables, and lets non-interfering variables
// share a state slot (the paper's memory-location sharing).
func LiveVars(m *tsys.Model) PassStats {
	return statsFor("LiveVars", m, func() string {
		liveAt := liveness(m)

		// Dead assignment elimination.
		deadAssigns := 0
		for _, e := range m.Edges {
			var keep []tsys.Assign
			for _, a := range e.Assigns {
				if liveAt[e.To][a.Var] {
					keep = append(keep, a)
				} else {
					deadAssigns++
				}
			}
			e.Assigns = keep
		}
		removed := removeDeadDefs(m)

		// Slot sharing: two non-input live ranges interfere when both are
		// live at some location (or both live at init with free values).
		liveAt = liveness(m)
		candidates := []tsys.VarID{}
		for _, v := range m.Vars {
			if !v.Input && v.Bits > 0 && !liveAt[m.Init][v.ID] {
				candidates = append(candidates, v.ID)
			}
		}
		interferes := func(a, b tsys.VarID) bool {
			for _, lv := range liveAt {
				if lv[a] && lv[b] {
					return true
				}
			}
			return false
		}
		merged := 0
		rep := map[tsys.VarID]tsys.VarID{}
		var classes [][]tsys.VarID
		for _, c := range candidates {
			placed := false
			for ci := range classes {
				ok := true
				for _, o := range classes[ci] {
					if interferes(c, o) || m.Vars[o].Signed != m.Vars[c].Signed {
						ok = false
						break
					}
				}
				if ok {
					classes[ci] = append(classes[ci], c)
					placed = true
					break
				}
			}
			if !placed {
				classes = append(classes, []tsys.VarID{c})
			}
		}
		for _, cl := range classes {
			if len(cl) < 2 {
				continue
			}
			// Representative: the widest member.
			sort.Slice(cl, func(i, j int) bool { return m.Vars[cl[i]].Bits > m.Vars[cl[j]].Bits })
			r := cl[0]
			for _, o := range cl[1:] {
				rep[o] = r
				m.Vars[o].Bits = 0
				m.Vars[o].Init = tsys.InitConst
				m.Vars[o].InitVal = 0
				merged++
			}
		}
		if merged > 0 {
			rename := func(e tsys.Expr) tsys.Expr { return renameVars(e, rep) }
			for _, e := range m.Edges {
				if e.Guard != nil {
					e.Guard = rename(e.Guard)
				}
				for i := range e.Assigns {
					e.Assigns[i].RHS = rename(e.Assigns[i].RHS)
					if r, ok := rep[e.Assigns[i].Var]; ok {
						e.Assigns[i].Var = r
					}
				}
			}
		}
		return fmt.Sprintf("dead assigns %d, unused vars %d, shared slots %d",
			deadAssigns, removed, merged)
	})
}

func renameVars(e tsys.Expr, rep map[tsys.VarID]tsys.VarID) tsys.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *tsys.Const:
		return x
	case *tsys.Ref:
		if r, ok := rep[x.Var]; ok {
			return &tsys.Ref{Var: r}
		}
		return x
	case *tsys.Un:
		return &tsys.Un{Op: x.Op, X: renameVars(x.X, rep)}
	case *tsys.Bin:
		return &tsys.Bin{Op: x.Op, X: renameVars(x.X, rep), Y: renameVars(x.Y, rep)}
	case *tsys.CondE:
		return &tsys.CondE{C: renameVars(x.C, rep), T: renameVars(x.T, rep), F: renameVars(x.F, rep)}
	case *tsys.CastE:
		return &tsys.CastE{Bits: x.Bits, Signed: x.Signed, X: renameVars(x.X, rep)}
	}
	return e
}

// liveness computes the live set per location (backward fixpoint).
func liveness(m *tsys.Model) map[tsys.Loc]map[tsys.VarID]bool {
	live := map[tsys.Loc]map[tsys.VarID]bool{}
	get := func(l tsys.Loc) map[tsys.VarID]bool {
		if live[l] == nil {
			live[l] = map[tsys.VarID]bool{}
		}
		return live[l]
	}
	for changed := true; changed; {
		changed = false
		for _, e := range m.Edges {
			in := map[tsys.VarID]bool{}
			// use(guard) ∪ use(RHS) ∪ (live(To) − defs)
			if e.Guard != nil {
				tsys.ReadVars(e.Guard, in)
			}
			defs := map[tsys.VarID]bool{}
			for _, a := range e.Assigns {
				tsys.ReadVars(a.RHS, in)
				defs[a.Var] = true
			}
			// Both map ranges below only build set unions (insert-only, no
			// value depends on visit order), so the fixpoint — and with it
			// the rewritten model — is order-independent.
			for v := range get(e.To) {
				if !defs[v] {
					in[v] = true
				}
			}
			src := get(e.From)
			for v := range in {
				if !src[v] {
					src[v] = true
					changed = true
				}
			}
		}
	}
	return live
}

// ---------------------------------------------------------------------------
// Statement concatenation

// Concat merges consecutive transitions lowered from the same basic block
// when their statements are independent, halving (or better) the number of
// steps the model checker must execute through straight-line code.
func Concat(m *tsys.Model) PassStats {
	return statsFor("Concat", m, func() string {
		merged := 0
		for {
			inDeg := map[tsys.Loc]int{}
			outEdges := map[tsys.Loc][]*tsys.Edge{}
			for _, e := range m.Edges {
				inDeg[e.To]++
				outEdges[e.From] = append(outEdges[e.From], e)
			}
			var e1, e2 *tsys.Edge
			for _, a := range m.Edges {
				if a.Guard != nil || len(a.Assigns) == 0 {
					continue
				}
				succ := outEdges[a.To]
				if len(succ) != 1 || inDeg[a.To] != 1 {
					continue
				}
				b := succ[0]
				if b.Guard != nil || len(b.Assigns) == 0 || b.Chain != a.Chain || b == a {
					continue
				}
				if !independent(a, b) {
					continue
				}
				e1, e2 = a, b
				break
			}
			if e1 == nil {
				break
			}
			e1.Assigns = append(e1.Assigns, e2.Assigns...)
			e1.To = e2.To
			removeEdge(m, e2)
			merged++
		}
		CompactLocs(m)
		return fmt.Sprintf("merged %d transitions", merged)
	})
}

// independent reports whether two consecutive assignment edges commute into
// one parallel step: the first may not write anything the second reads or
// writes, and the second may not write anything the first reads.
func independent(a, b *tsys.Edge) bool {
	wa, ra := map[tsys.VarID]bool{}, map[tsys.VarID]bool{}
	wb, rb := map[tsys.VarID]bool{}, map[tsys.VarID]bool{}
	for _, as := range a.Assigns {
		wa[as.Var] = true
		tsys.ReadVars(as.RHS, ra)
	}
	for _, bs := range b.Assigns {
		wb[bs.Var] = true
		tsys.ReadVars(bs.RHS, rb)
	}
	// Order-independent: each range computes a pure any-of predicate over
	// the read/write sets, so no iteration order reaches the verdict.
	for v := range wa {
		if rb[v] || wb[v] {
			return false
		}
	}
	for v := range wb {
		if ra[v] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Dead variable and code elimination

// DeadElim removes variables (and the code feeding them) that cannot
// influence control flow: only guard supports, closed under data
// dependencies of assignments to kept variables, survive.
func DeadElim(m *tsys.Model) PassStats {
	return statsFor("DeadElim", m, func() string {
		relevant := map[tsys.VarID]bool{}
		for _, e := range m.Edges {
			if e.Guard != nil {
				tsys.ReadVars(e.Guard, relevant)
			}
		}
		for changed := true; changed; {
			changed = false
			for _, e := range m.Edges {
				for _, a := range e.Assigns {
					if !relevant[a.Var] {
						continue
					}
					before := len(relevant)
					tsys.ReadVars(a.RHS, relevant)
					if len(relevant) != before {
						changed = true
					}
				}
			}
		}
		droppedAssigns := 0
		droppedVars := 0
		for _, e := range m.Edges {
			var keep []tsys.Assign
			for _, a := range e.Assigns {
				if relevant[a.Var] {
					keep = append(keep, a)
				} else {
					droppedAssigns++
				}
			}
			e.Assigns = keep
		}
		for _, v := range m.Vars {
			if !relevant[v.ID] && !v.Input && v.Bits > 0 {
				v.Bits = 0
				v.Init = tsys.InitConst
				v.InitVal = 0
				droppedVars++
			}
		}
		Contract(m)
		return fmt.Sprintf("dropped %d assignments, %d variables", droppedAssigns, droppedVars)
	})
}

// ---------------------------------------------------------------------------
// Structural helpers

// Contract removes no-op transitions (no guard, no assignments) whose
// source has exactly one outgoing edge, rerouting predecessors directly to
// the target, then renumbers locations.
//
// The contraction is computed in one pass: every contractible location has
// a unique no-op successor, so the rerouting every predecessor ultimately
// receives is the transitive chase through those successors. Chasing with
// memoization replaces the former remove-one-victim-and-rescan fixpoint —
// which rebuilt an out-edge map per victim and dominated the per-path
// lowering profile — with O(E) slice walks. A cycle of no-op transitions
// cannot be chased to a fixed endpoint; that (structurally degenerate, and
// absent from lowered path models) case falls back to the fixpoint, whose
// one-at-a-time order defines the result.
func Contract(m *tsys.Model) {
	n := locSpan(m)
	outdeg := make([]int, n)
	for _, e := range m.Edges {
		outdeg[e.From]++
	}
	next := make([]tsys.Loc, n)
	hasNext := make([]bool, n)
	for _, e := range m.Edges {
		if e.Guard == nil && len(e.Assigns) == 0 && e.From != e.To &&
			outdeg[e.From] == 1 && e.From != m.Trap {
			next[e.From], hasNext[e.From] = e.To, true
		}
	}
	const (
		unresolved = uint8(iota)
		inProgress
		resolved
	)
	state := make([]uint8, n)
	final := make([]tsys.Loc, n)
	cyclic := false
	var resolve func(l tsys.Loc) tsys.Loc
	resolve = func(l tsys.Loc) tsys.Loc {
		if !hasNext[l] {
			return l
		}
		switch state[l] {
		case resolved:
			return final[l]
		case inProgress:
			cyclic = true
			return l
		}
		state[l] = inProgress
		f := resolve(next[l])
		state[l] = resolved
		final[l] = f
		return f
	}
	for l := 0; l < n; l++ {
		resolve(tsys.Loc(l))
	}
	if cyclic {
		contractFixpoint(m)
		return
	}
	// Reroute every surviving edge through the chase and drop the no-op
	// edges themselves — their sources are bypassed and CompactLocs would
	// discard them as unreachable anyway.
	kept := m.Edges[:0]
	for _, e := range m.Edges {
		if hasNext[e.From] {
			continue
		}
		e.To = resolve(e.To)
		kept = append(kept, e)
	}
	m.Edges = kept
	m.Init = resolve(m.Init)
	CompactLocs(m)
}

// locSpan returns an exclusive upper bound on the location values in use,
// for slice-indexed per-location tables.
func locSpan(m *tsys.Model) int {
	n := m.NLocs
	for _, e := range m.Edges {
		if int(e.From) >= n {
			n = int(e.From) + 1
		}
		if int(e.To) >= n {
			n = int(e.To) + 1
		}
	}
	if m.Trap != tsys.NoLoc && int(m.Trap) >= n {
		n = int(m.Trap) + 1
	}
	if int(m.Init) >= n {
		n = int(m.Init) + 1
	}
	return n
}

// contractFixpoint is the one-victim-at-a-time contraction; its scan order
// defines Contract's result when no-op transitions form a cycle.
func contractFixpoint(m *tsys.Model) {
	for {
		outEdges := map[tsys.Loc][]*tsys.Edge{}
		for _, e := range m.Edges {
			outEdges[e.From] = append(outEdges[e.From], e)
		}
		var victim *tsys.Edge
		for _, e := range m.Edges {
			if e.Guard == nil && len(e.Assigns) == 0 && e.From != e.To &&
				len(outEdges[e.From]) == 1 && e.From != m.Trap {
				victim = e
				break
			}
		}
		if victim == nil {
			break
		}
		for _, e := range m.Edges {
			if e.To == victim.From {
				e.To = victim.To
			}
		}
		if m.Init == victim.From {
			m.Init = victim.To
		}
		removeEdge(m, victim)
	}
	CompactLocs(m)
}

func removeEdge(m *tsys.Model, victim *tsys.Edge) {
	for i, e := range m.Edges {
		if e == victim {
			m.Edges = append(m.Edges[:i], m.Edges[i+1:]...)
			return
		}
	}
}

// CompactLocs renumbers locations reachable from Init (keeping the trap),
// shrinking the location-register width after structural passes. The BFS
// and the renumbering run over slice-indexed tables: this sits on the hot
// per-path lowering-and-slicing path, where map-backed sets dominated the
// profile.
func CompactLocs(m *tsys.Model) {
	n := locSpan(m)
	// Out-adjacency as a bucketed CSR layout: one count pass, one fill pass.
	counts := make([]int, n+1)
	for _, e := range m.Edges {
		counts[e.From+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	adj := make([]*tsys.Edge, len(m.Edges))
	fill := make([]int, n)
	copy(fill, counts[:n])
	for _, e := range m.Edges {
		adj[fill[e.From]] = e
		fill[e.From]++
	}
	seen := make([]bool, n)
	seen[m.Init] = true
	order := make([]tsys.Loc, 1, n)
	order[0] = m.Init
	for i := 0; i < len(order); i++ {
		l := order[i]
		for _, e := range adj[counts[l]:counts[l+1]] {
			if !seen[e.To] {
				seen[e.To] = true
				order = append(order, e.To)
			}
		}
	}
	if m.Trap != tsys.NoLoc && !seen[m.Trap] {
		seen[m.Trap] = true
		order = append(order, m.Trap)
	}
	remap := make([]tsys.Loc, n)
	for i, l := range order {
		remap[l] = tsys.Loc(i)
	}
	kept := m.Edges[:0]
	for _, e := range m.Edges {
		if !seen[e.From] {
			continue // unreachable
		}
		e.From = remap[e.From]
		e.To = remap[e.To]
		kept = append(kept, e)
	}
	m.Edges = kept
	m.Init = remap[m.Init]
	if m.Trap != tsys.NoLoc {
		m.Trap = remap[m.Trap]
	}
	m.NLocs = len(order)
}
