package opt

import (
	"reflect"
	"strings"
	"testing"

	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cc/token"
	"wcet/internal/cfg"
	"wcet/internal/model"
	"wcet/internal/paths"
	"wcet/internal/tsys"

	"wcet/internal/c2m"
)

// chainedTempModel builds the regression scenario for the ReverseCSE
// ordering bug: two live temporaries whose definitions interact. t1's
// definition is a wide expression over the input a; t2's definition reads
// t1 (and absorbs it at its defining edge); a later use reads both. Whether
// the use ends up with t1's or t2's definition inlined depends on which is
// substituted first — both fit alone, but not together, under
// maxInlineSize — so iterating the availability map in hash order leaked
// map randomisation into the optimised model.
func chainedTempModel() *tsys.Model {
	m := &tsys.Model{Name: "chained"}
	a := m.NewVar("a", 8, false)
	a.Input = true
	t1 := m.NewVar("t1", 8, false)
	t2 := m.NewVar("t2", 8, false)
	x := m.NewVar("x", 8, false)

	l0, l1, l2, l3, l4 := m.NewLoc(), m.NewLoc(), m.NewLoc(), m.NewLoc(), m.NewLoc()
	m.Init = l0
	m.Trap = l4

	ra := func() tsys.Expr { return &tsys.Ref{Var: a.ID} }
	// t1 = a+a+a+a+a+a+a — size 13, inlinable alone but not alongside
	// another definition of similar size (maxInlineSize is 24).
	wide := ra()
	for i := 0; i < 6; i++ {
		wide = &tsys.Bin{Op: token.PLUS, X: wide, Y: ra()}
	}
	m.AddEdge(&tsys.Edge{From: l0, To: l1, Chain: 1,
		Assigns: []tsys.Assign{{Var: t1.ID, RHS: wide}}})
	// t2 = t1 + 1 — reads t1, so the chained definition grows to size 15
	// when t1 is inlined at this edge.
	m.AddEdge(&tsys.Edge{From: l1, To: l2, Chain: 1,
		Assigns: []tsys.Assign{{Var: t2.ID,
			RHS: &tsys.Bin{Op: token.PLUS, X: &tsys.Ref{Var: t1.ID}, Y: &tsys.Const{Val: 1}}}}})
	// x = t1 + t2 — both definitions are available; only one fits.
	m.AddEdge(&tsys.Edge{From: l2, To: l3, Chain: 1,
		Assigns: []tsys.Assign{{Var: x.ID,
			RHS: &tsys.Bin{Op: token.PLUS, X: &tsys.Ref{Var: t1.ID}, Y: &tsys.Ref{Var: t2.ID}}}}})
	// Keep x observable so the dead-definition sweep cannot erase the
	// difference.
	m.AddEdge(&tsys.Edge{From: l3, To: l4, Chain: 1,
		Guard: &tsys.Bin{Op: token.GT, X: &tsys.Ref{Var: x.ID}, Y: &tsys.Const{Val: 0}}})
	return m
}

// TestReverseCSEDeterministic pins the fix: the pass must substitute
// available definitions in ascending VarID order, giving byte-identical
// models on every run. Run with -count=20 to stress map-order randomisation.
func TestReverseCSEDeterministic(t *testing.T) {
	first := ""
	for i := 0; i < 30; i++ {
		m := chainedTempModel()
		ReverseCSE(m)
		s := m.String()
		if i == 0 {
			first = s
			continue
		}
		if s != first {
			t.Fatalf("run %d produced a different model:\n--- run 0 ---\n%s\n--- run %d ---\n%s",
				i, first, i, s)
		}
	}
	// The canonical order substitutes t1 (lower VarID) first, so the use
	// site must carry t1's widened definition and keep reading t2.
	if !strings.Contains(first, "t2") {
		t.Errorf("canonical result should still read t2:\n%s", first)
	}
}

// TestReverseCSEStatsDeterministic pins the PassStats detail string, which
// also depended on substitution order through the inlined-read counter.
func TestReverseCSEStatsDeterministic(t *testing.T) {
	first := ""
	for i := 0; i < 20; i++ {
		ps := ReverseCSE(chainedTempModel())
		if i == 0 {
			first = ps.Detail
			continue
		}
		if ps.Detail != first {
			t.Fatalf("run %d stats %q differ from run 0 stats %q", i, ps.Detail, first)
		}
	}
}

// TestPipelineDeterministicOnWiper mirrors PR 1's determinism tests at the
// opt layer: the full six-pass pipeline over paths of the wiper-controller
// model must produce deep-equal transition systems on every run.
func TestPipelineDeterministicOnWiper(t *testing.T) {
	src := model.Wiper().Emit("wiper_control")
	f, err := parser.ParseFile("wiper.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(f.Func("wiper_control"))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := paths.Enumerate(cfg.WholeFunction(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) > 4 {
		ps = ps[:4]
	}
	const runs = 6
	for pi, p := range ps {
		var ref *tsys.Model
		var refStats []PassStats
		for run := 0; run < runs; run++ {
			low, err := c2m.LowerPath(g, c2m.Options{NaiveWidths: true}, p)
			if err != nil {
				t.Fatal(err)
			}
			stats := All(low.Model)
			if run == 0 {
				ref = low.Model
				refStats = stats
				continue
			}
			if !reflect.DeepEqual(low.Model, ref) {
				t.Fatalf("path %d: optimised model differs between run 0 and run %d:\n%s\nvs\n%s",
					pi, run, ref, low.Model)
			}
			if !reflect.DeepEqual(stats, refStats) {
				t.Fatalf("path %d: pass stats differ between run 0 and run %d: %v vs %v",
					pi, run, stats, refStats)
			}
		}
	}
}
