package opt_test

import (
	"testing"

	"wcet/internal/c2m"
	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/mc"
	"wcet/internal/opt"
	"wcet/internal/paths"
	"wcet/internal/tsys"
)

// lowerSrc parses and lowers a function, returning the path-trap model for
// the lexically first end-to-end path plus the lowering result.
func lowerSrc(t *testing.T, src, name string, naive bool) (*tsys.Model, *c2m.Result, *cfg.Graph, *ast.File) {
	t.Helper()
	f, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatalf("sem: %v", err)
	}
	g, err := cfg.Build(f.Func(name))
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	ps, err := paths.Enumerate(cfg.WholeFunction(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	low, err := c2m.LowerPath(g, c2m.Options{NaiveWidths: naive}, ps[len(ps)-1])
	if err != nil {
		t.Fatal(err)
	}
	return low.Model, low, g, f
}

const optSrc = `
/*@ input */ /*@ range 0 1 */ int sw;
/*@ input */ /*@ range 0 50 */ char a;
char level, out;
char dbg;
int f(void) {
    char t1;
    char unused;
    t1 = (char)(a + 1);
    level = (char)(t1 * 2);
    dbg = (char)(level + 5);
    if (sw == 1) {
        if (level > 40) {
            out = 2;
        } else {
            out = 1;
        }
    } else {
        out = 0;
    }
    return out;
}`

func TestVarInit(t *testing.T) {
	m, _, _, _ := lowerSrc(t, optSrc, "f", true)
	freeBefore := countFree(m)
	st := opt.VarInit(m)
	if countFree(m) != inputCount(m) {
		t.Errorf("after VarInit, free vars = %d, want only the %d inputs", countFree(m), inputCount(m))
	}
	if freeBefore <= inputCount(m) {
		t.Error("test premise broken: baseline should have free non-inputs")
	}
	if st.BitsBefore != st.BitsAfter {
		t.Error("VarInit must not change |D| (state bits)")
	}
}

func countFree(m *tsys.Model) int {
	n := 0
	for _, v := range m.Vars {
		if v.Init == tsys.InitFree {
			n++
		}
	}
	return n
}

func inputCount(m *tsys.Model) int {
	n := 0
	for _, v := range m.Vars {
		if v.Input {
			n++
		}
	}
	return n
}

func TestRangeAnalysisShrinksWidths(t *testing.T) {
	m, _, _, _ := lowerSrc(t, optSrc, "f", true)
	opt.VarInit(m) // pin non-inputs so intervals are seeded tightly
	bitsBefore := m.StateBits()
	st := opt.RangeAnalysis(m)
	if st.BitsAfter >= bitsBefore {
		t.Fatalf("range analysis did not shrink state bits: %d → %d", bitsBefore, st.BitsAfter)
	}
	// The boolean input must drop to 1 bit, byte variables to ≤ 8 bits.
	for _, v := range m.Vars {
		if v.Bits == 0 {
			continue
		}
		switch v.Name {
		case "sw":
			if v.Bits != 1 {
				t.Errorf("sw width = %d, want 1", v.Bits)
			}
		case "a":
			if v.Bits > 7 {
				t.Errorf("a width = %d, want ≤ 7 (range 0..50)", v.Bits)
			}
		case "level", "out", "dbg", "t1":
			if v.Bits > 8 {
				t.Errorf("%s width = %d, want ≤ 8", v.Name, v.Bits)
			}
		}
	}
}

func TestReverseCSEInlinesTemp(t *testing.T) {
	m, _, _, _ := lowerSrc(t, optSrc, "f", true)
	st := opt.ReverseCSE(m)
	// t1 is assigned once and read once right after: it must be gone.
	for _, v := range m.Vars {
		if v.Name == "t1" && v.Bits != 0 {
			t.Errorf("t1 still occupies %d bits after ReverseCSE (%s)", v.Bits, st.Detail)
		}
	}
}

func TestLiveVarsRemovesUnused(t *testing.T) {
	m, _, _, _ := lowerSrc(t, optSrc, "f", true)
	opt.LiveVars(m)
	for _, v := range m.Vars {
		if v.Name == "unused" && v.Bits != 0 {
			t.Error("unused variable survived LiveVars")
		}
	}
}

func TestDeadElimDropsNonControlFlow(t *testing.T) {
	m, _, _, _ := lowerSrc(t, optSrc, "f", true)
	edgesBefore := len(m.Edges)
	st := opt.DeadElim(m)
	// dbg feeds no guard: its assignment and bits must be gone.
	for _, v := range m.Vars {
		if v.Name == "dbg" && v.Bits != 0 {
			t.Errorf("dbg survived DeadElim (%s)", st.Detail)
		}
		if v.Name == "out" && v.Bits != 0 {
			// out never reaches a guard either — also removable.
			t.Errorf("out survived DeadElim")
		}
		if v.Name == "level" && v.Bits == 0 {
			t.Error("level is control-flow relevant and must survive")
		}
	}
	if len(m.Edges) >= edgesBefore {
		t.Error("DeadElim should contract emptied transitions")
	}
}

func TestConcatMergesIndependent(t *testing.T) {
	src := `
/*@ input */ int a;
int x, y, z, r;
int f(void) {
    x = a + 1;
    y = a + 2;
    z = a + 3;
    if (x + y + z > 10) { r = 1; }
    return r;
}`
	m, _, _, _ := lowerSrc(t, src, "f", true)
	edgesBefore := len(m.Edges)
	st := opt.Concat(m)
	if st.EdgesAfter >= edgesBefore {
		t.Errorf("Concat merged nothing: %s", st.Detail)
	}
	// x, y, z assignments are pairwise independent: they should share edges.
	maxAssigns := 0
	for _, e := range m.Edges {
		if len(e.Assigns) > maxAssigns {
			maxAssigns = len(e.Assigns)
		}
	}
	if maxAssigns < 2 {
		t.Error("no transition carries multiple parallel assignments")
	}
}

func TestConcatRespectsDependence(t *testing.T) {
	src := `
/*@ input */ int a;
int x, y, r;
int f(void) {
    x = a + 1;
    y = x * 2;
    if (y > 4) { r = 1; }
    return r;
}`
	m, low, g, file := lowerSrc(t, src, "f", true)
	_ = low
	_ = g
	_ = file
	opt.Concat(m)
	// y = x*2 reads x written by the previous statement: they must not be
	// merged into one parallel step.
	for _, e := range m.Edges {
		writes := map[tsys.VarID]bool{}
		for _, as := range e.Assigns {
			writes[as.Var] = true
		}
		for _, as := range e.Assigns {
			reads := map[tsys.VarID]bool{}
			tsys.ReadVars(as.RHS, reads)
			for w := range writes {
				if reads[w] && w != as.Var {
					t.Fatalf("dependent statements merged into one transition")
				}
			}
		}
	}
}

// TestOptimisationsPreserveReachability is the key soundness property: for
// every end-to-end path of a program, the optimised and unoptimised models
// agree on trap reachability, and optimised witnesses still drive the
// interpreter down the target path.
func TestOptimisationsPreserveReachability(t *testing.T) {
	src := `
/*@ input */ /*@ range 0 3 */ int sel;
/*@ input */ /*@ range -10 10 */ char a;
char level, out;
int f(void) {
    char t;
    t = (char)(a * 2);
    level = (char)(t + 1);
    out = 0;
    switch (sel) {
    case 0:
        if (level > 5) { out = 1; }
        break;
    case 1:
        if (level < -5) { out = 2; }
        break;
    default:
        out = 3;
        break;
    }
    return out;
}`
	f, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(f.Func("f"))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := paths.Enumerate(cfg.WholeFunction(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		low, err := c2m.LowerPath(g, c2m.Options{NaiveWidths: true}, p)
		if err != nil {
			t.Fatal(err)
		}
		baseline := low.Model.Clone()
		// The baseline leaves non-inputs free, which over-approximates
		// feasibility; pin them for a fair comparison (VarInit is part of
		// the sound pipeline).
		opt.VarInit(baseline)
		optd := baseline.Clone()
		opt.All(optd)

		rb, err := mc.CheckSymbolic(baseline, mc.Options{})
		if err != nil {
			t.Fatalf("baseline check: %v", err)
		}
		ro, err := mc.CheckSymbolic(optd, mc.Options{})
		if err != nil {
			t.Fatalf("optimised check: %v", err)
		}
		if rb.Reachable != ro.Reachable {
			t.Errorf("path %s: baseline reachable=%v, optimised=%v",
				p.Key(), rb.Reachable, ro.Reachable)
		}
		if ro.Reachable && ro.Stats.StateBits >= rb.Stats.StateBits {
			t.Errorf("path %s: optimisation did not shrink state bits (%d vs %d)",
				p.Key(), ro.Stats.StateBits, rb.Stats.StateBits)
		}
	}
}

func TestAllPipelineStats(t *testing.T) {
	m, _, _, _ := lowerSrc(t, optSrc, "f", true)
	before := m.StateBits()
	stats := opt.All(m)
	if len(stats) != 6 {
		t.Fatalf("pipeline ran %d passes, want 6", len(stats))
	}
	if m.StateBits() >= before {
		t.Errorf("full pipeline did not shrink state bits: %d → %d", before, m.StateBits())
	}
}
