// Package opt implements the paper's Section 3.2 state-space optimisations
// over the transition-system IR:
//
//	Reverse CSE              — inline compiler temporaries back into their uses
//	Live-Variable Analysis   — dead-assignment removal, unused-variable
//	                           removal, and memory-slot sharing
//	Statement Concatenation  — merge independent consecutive transitions
//	Variable Range Analysis  — shrink variable widths via interval analysis
//	Variable Initialisation  — pin uninitialised non-input variables
//	Dead Variable & Code Elimination — drop everything that cannot influence
//	                           control flow
//
// Each pass mutates the model in place and reports what it changed; callers
// that need the original should Clone() first. All runs the full pipeline in
// the canonical order.
package opt

import (
	"fmt"

	"wcet/internal/tsys"
)

// PassStats reports the effect of one pass.
type PassStats struct {
	Name        string
	BitsBefore  int
	BitsAfter   int
	EdgesBefore int
	EdgesAfter  int
	Detail      string
}

func (p PassStats) String() string {
	return fmt.Sprintf("%-22s bits %3d → %3d, edges %3d → %3d  %s",
		p.Name, p.BitsBefore, p.BitsAfter, p.EdgesBefore, p.EdgesAfter, p.Detail)
}

func statsFor(name string, m *tsys.Model, f func() string) PassStats {
	ps := PassStats{Name: name, BitsBefore: m.StateBits(), EdgesBefore: len(m.Edges)}
	ps.Detail = f()
	ps.BitsAfter = m.StateBits()
	ps.EdgesAfter = len(m.Edges)
	return ps
}

// All applies every optimisation in the canonical order and returns the
// per-pass reports.
func All(m *tsys.Model) []PassStats {
	return []PassStats{
		ReverseCSE(m),
		DeadElim(m),
		LiveVars(m),
		RangeAnalysis(m),
		VarInit(m),
		Concat(m),
	}
}

// ---------------------------------------------------------------------------
// Variable Initialisation

// VarInit pins every uninitialised non-input variable to zero. The state
// space |D| is unchanged but the reachable set |DR| collapses to one initial
// assignment per input valuation.
func VarInit(m *tsys.Model) PassStats {
	return statsFor("VarInit", m, func() string {
		n := 0
		for _, v := range m.Vars {
			if !v.Input && v.Init == tsys.InitFree {
				v.Init = tsys.InitConst
				v.InitVal = 0
				n++
			}
		}
		return fmt.Sprintf("pinned %d variables", n)
	})
}

// ---------------------------------------------------------------------------
// Variable Range Analysis

// interval is a conservative value range.
type interval struct{ lo, hi int64 }

func (a interval) union(b interval) interval {
	if b.lo < a.lo {
		a.lo = b.lo
	}
	if b.hi > a.hi {
		a.hi = b.hi
	}
	return a
}

func typeInterval(v *tsys.Var) interval {
	if v.Signed {
		hi := int64(1)<<uint(v.Bits-1) - 1
		return interval{-hi - 1, hi}
	}
	return interval{0, int64(1)<<uint(v.Bits) - 1}
}

// RangeAnalysis shrinks variable widths using a flow-insensitive interval
// fixpoint seeded from range annotations (the information a code generator
// derives from the Simulink model) and assignment right-hand sides.
func RangeAnalysis(m *tsys.Model) PassStats {
	return statsFor("RangeAnalysis", m, func() string {
		cur := make([]interval, len(m.Vars))
		for i, v := range m.Vars {
			switch {
			case v.Bits == 0:
				cur[i] = interval{0, 0}
			case v.Input && v.HasRange:
				cur[i] = interval{v.Lo, v.Hi}
			case v.Init == tsys.InitConst && !v.Input:
				cur[i] = interval{v.InitVal, v.InitVal}
			case !v.Input && v.Init == tsys.InitFree:
				// Uninitialised: any representable value.
				cur[i] = typeInterval(v)
			default:
				cur[i] = typeInterval(v)
			}
		}
		// Fixpoint with widening: after a few rounds, jump to type bounds.
		const widenAfter = 8
		for round := 0; ; round++ {
			changed := false
			for _, e := range m.Edges {
				for _, a := range e.Assigns {
					iv := evalInterval(m, a.RHS, cur)
					// Store clamps through the variable's type.
					tv := typeInterval(m.Vars[a.Var])
					if iv.lo < tv.lo || iv.hi > tv.hi {
						// Wrapping possible: full type range.
						iv = tv
					}
					nu := cur[a.Var].union(iv)
					if nu != cur[a.Var] {
						if round >= widenAfter {
							nu = cur[a.Var].union(tv)
						}
						cur[a.Var] = nu
						changed = true
					}
				}
			}
			if !changed {
				break
			}
			if round > widenAfter*4 {
				break
			}
		}
		shrunk := 0
		for i, v := range m.Vars {
			if v.Bits == 0 {
				continue
			}
			iv := cur[i]
			bits, signed := widthFor(iv)
			if bits < v.Bits {
				v.Bits = bits
				v.Signed = signed
				shrunk++
			}
			v.Lo, v.Hi, v.HasRange = iv.lo, iv.hi, true
		}
		return fmt.Sprintf("narrowed %d variables", shrunk)
	})
}

// widthFor computes the two's-complement width covering an interval.
func widthFor(iv interval) (bits int, signed bool) {
	signed = iv.lo < 0
	need := func(v int64) int {
		n := 0
		if v < 0 {
			v = -v - 1
		}
		for v > 0 {
			n++
			v >>= 1
		}
		return n
	}
	bits = need(iv.hi)
	if n := need(iv.lo); n > bits {
		bits = n
	}
	if signed {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits, signed
}

// evalInterval conservatively evaluates an expression over intervals.
func evalInterval(m *tsys.Model, e tsys.Expr, cur []interval) interval {
	full := interval{-(1 << 33), 1 << 33}
	switch x := e.(type) {
	case *tsys.Const:
		return interval{x.Val, x.Val}
	case *tsys.Ref:
		return cur[x.Var]
	case *tsys.Un:
		sub := evalInterval(m, x.X, cur)
		switch x.Op.String() {
		case "-":
			return interval{-sub.hi, -sub.lo}
		case "+":
			return sub
		case "!":
			return interval{0, 1}
		case "~":
			return interval{^sub.hi, ^sub.lo}
		}
		return full
	case *tsys.Bin:
		switch x.Op.String() {
		case "==", "!=", "<", ">", "<=", ">=", "&&", "||":
			return interval{0, 1}
		}
		a := evalInterval(m, x.X, cur)
		b := evalInterval(m, x.Y, cur)
		switch x.Op.String() {
		case "+":
			return interval{satAdd(a.lo, b.lo), satAdd(a.hi, b.hi)}
		case "-":
			return interval{satAdd(a.lo, -b.hi), satAdd(a.hi, -b.lo)}
		case "*":
			c := []int64{satMul(a.lo, b.lo), satMul(a.lo, b.hi), satMul(a.hi, b.lo), satMul(a.hi, b.hi)}
			lo, hi := c[0], c[0]
			for _, v := range c[1:] {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			return interval{lo, hi}
		case "/":
			if k, ok := x.Y.(*tsys.Const); ok && k.Val > 0 {
				return interval{a.lo / k.Val, a.hi / k.Val}
			}
			return full
		case "%":
			if k, ok := x.Y.(*tsys.Const); ok && k.Val > 0 {
				if a.lo >= 0 {
					return interval{0, k.Val - 1}
				}
				return interval{-(k.Val - 1), k.Val - 1}
			}
			return full
		case "<<":
			if k, ok := x.Y.(*tsys.Const); ok && k.Val >= 0 && k.Val < 32 {
				return interval{satMul(a.lo, 1<<uint(k.Val)), satMul(a.hi, 1<<uint(k.Val))}
			}
			return full
		case ">>":
			if k, ok := x.Y.(*tsys.Const); ok && k.Val >= 0 && k.Val < 32 {
				return interval{a.lo >> uint(k.Val), a.hi >> uint(k.Val)}
			}
			return full
		case "&":
			if a.lo >= 0 && b.lo >= 0 {
				hi := a.hi
				if b.hi < hi {
					hi = b.hi
				}
				return interval{0, hi}
			}
			return full
		case "|", "^":
			if a.lo >= 0 && b.lo >= 0 {
				return interval{0, nextPow2(maxI(a.hi, b.hi)) - 1}
			}
			return full
		}
		return full
	case *tsys.CondE:
		t := evalInterval(m, x.T, cur)
		f := evalInterval(m, x.F, cur)
		return t.union(f)
	case *tsys.CastE:
		sub := evalInterval(m, x.X, cur)
		var tr interval
		if x.Signed {
			hi := int64(1)<<uint(x.Bits-1) - 1
			tr = interval{-hi - 1, hi}
		} else {
			tr = interval{0, int64(1)<<uint(x.Bits) - 1}
		}
		if sub.lo >= tr.lo && sub.hi <= tr.hi {
			return sub
		}
		return tr
	}
	return full
}

func satAdd(a, b int64) int64 {
	const lim = int64(1) << 40
	c := a + b
	if c > lim {
		return lim
	}
	if c < -lim {
		return -lim
	}
	return c
}

func satMul(a, b int64) int64 {
	const lim = int64(1) << 40
	if a == 0 || b == 0 {
		return 0
	}
	c := a * b
	if a == c/b && c <= lim && c >= -lim {
		return c
	}
	if (a > 0) == (b > 0) {
		return lim
	}
	return -lim
}

func nextPow2(v int64) int64 {
	p := int64(1)
	for p <= v {
		p <<= 1
	}
	return p
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
