package opt_test

import (
	"testing"

	"wcet/internal/mc"
	"wcet/internal/opt"
	"wcet/internal/tsys"
)

// findVar returns the named variable or fails the test.
func findVar(t *testing.T, m *tsys.Model, name string) *tsys.Var {
	t.Helper()
	for _, v := range m.Vars {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("variable %q not found", name)
	return nil
}

// TestSliceTrapDropsIrrelevant: lowerSrc picks the lexically-last path —
// the else branch, whose only guard reads sw. The per-trap slice must zero
// everything else (dbg, unused, out, and the a → t1 → level chain no
// surviving guard depends on) while keeping the branch input sw.
func TestSliceTrapDropsIrrelevant(t *testing.T) {
	m, _, _, _ := lowerSrc(t, optSrc, "f", true)
	opt.VarInit(m)
	st := opt.SliceTrap(m)
	for _, name := range []string{"dbg", "unused", "out", "a"} {
		if v := findVar(t, m, name); v.Bits != 0 {
			t.Errorf("%s survived the slice with %d bits (%s)", name, v.Bits, st.Detail)
		}
	}
	if v := findVar(t, m, "sw"); v.Bits == 0 {
		t.Error("guard-relevant input sw was sliced away")
	}
	if st.BitsAfter >= st.BitsBefore {
		t.Errorf("slice did not shrink state bits: %d → %d", st.BitsBefore, st.BitsAfter)
	}
}

// TestSliceTrapPreservesVerdict: slicing the lexically-first path's model
// must not change the symbolic verdict.
func TestSliceTrapPreservesVerdict(t *testing.T) {
	m, _, _, _ := lowerSrc(t, optSrc, "f", true)
	opt.VarInit(m)
	sliced := m.Clone()
	opt.SliceTrap(sliced)
	// NoSlice on both checks: the engine must see exactly the models this
	// test prepared, not re-slice them itself.
	full, err := mc.CheckSymbolic(m, mc.Options{NoSlice: true})
	if err != nil {
		t.Fatalf("unsliced: %v", err)
	}
	sres, err := mc.CheckSymbolic(sliced, mc.Options{NoSlice: true})
	if err != nil {
		t.Fatalf("sliced: %v", err)
	}
	if full.Reachable != sres.Reachable {
		t.Fatalf("slice changed the verdict: %v vs %v", full.Reachable, sres.Reachable)
	}
	if sres.Stats.StateBits >= full.Stats.StateBits {
		t.Errorf("slice did not shrink the checked state vector: %d vs %d",
			sres.Stats.StateBits, full.Stats.StateBits)
	}
}

// TestSliceTrapNoTrap: without a trap the pass must be an exact no-op.
func TestSliceTrapNoTrap(t *testing.T) {
	m, _, _, _ := lowerSrc(t, optSrc, "f", true)
	m.Trap = tsys.NoLoc
	edges, bits := len(m.Edges), m.StateBits()
	st := opt.SliceTrap(m)
	if len(m.Edges) != edges || m.StateBits() != bits {
		t.Errorf("no-trap slice modified the model: %s", st.Detail)
	}
}

// TestSliceTrapUnreachableTrap: a trap no edge can reach leaves nothing on
// any trap-reaching run — the transition slice must drop every edge.
func TestSliceTrapUnreachableTrap(t *testing.T) {
	m, _, _, _ := lowerSrc(t, optSrc, "f", true)
	m.Trap = m.NewLoc() // fresh location, no incoming edges
	opt.SliceTrap(m)
	if len(m.Edges) != 0 {
		t.Errorf("%d edges survived a statically unreachable trap", len(m.Edges))
	}
	res, err := mc.CheckSymbolic(m, mc.Options{NoSlice: true})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if res.Reachable {
		t.Error("sliced model reports an unreachable trap as reachable")
	}
}

// TestSliceTrapComposesWithAll: run after the full Section 3.2 pipeline the
// slice must still be sound (same verdict) and must never grow the model.
func TestSliceTrapComposesWithAll(t *testing.T) {
	m, _, _, _ := lowerSrc(t, optSrc, "f", true)
	opt.All(m)
	before, err := mc.CheckSymbolic(m, mc.Options{NoSlice: true})
	if err != nil {
		t.Fatalf("optimised: %v", err)
	}
	st := opt.SliceTrap(m)
	after, err := mc.CheckSymbolic(m, mc.Options{NoSlice: true})
	if err != nil {
		t.Fatalf("optimised+sliced: %v", err)
	}
	if before.Reachable != after.Reachable {
		t.Fatalf("slice after All changed the verdict: %v vs %v",
			before.Reachable, after.Reachable)
	}
	if st.BitsAfter > st.BitsBefore || st.EdgesAfter > st.EdgesBefore {
		t.Errorf("slice grew the model: bits %d→%d, edges %d→%d",
			st.BitsBefore, st.BitsAfter, st.EdgesBefore, st.EdgesAfter)
	}
}
