package opt

import (
	"fmt"

	"wcet/internal/tsys"
)

// SliceTrap specialises a model to one reachability query: it removes every
// transition and state variable that cannot influence whether the trap
// location is reached. Unlike the Section 3.2 pipeline — which preserves the
// model's full observable behaviour and therefore spares inputs — the slice
// is only valid for the single query "is Trap reachable, and with which
// initial input values", which is exactly what the hybrid generator asks per
// path. It runs per query, after the general pipeline, and composes with it.
//
// Two reductions:
//
//   - Transition slice: an edge whose target cannot reach the trap can never
//     lie on a trap-reaching run; it is dropped (as are edges leaving the
//     trap itself — the query stops there). Reachability of the trap is
//     untouched because every prefix of a trap-reaching run survives.
//
//   - Variable slice: relevance is seeded by the guards of the surviving
//     edges and closed under the data dependencies of their assignments —
//     DeadElim's closure, but restricted to the sliced edge set. Everything
//     else is cut to zero width, including input variables: an input no
//     surviving guard (transitively) depends on cannot change the verdict,
//     and any initial value of it extends a witness. Witness extraction
//     skips zero-width inputs; the generator fills them from the base
//     environment and validates the result by replay.
//
// Dropping a variable from the state vector removes its two BDD levels and
// its identity next-state constraint from every transition relation — for
// the unoptimised translations of Table 2 this is the bulk of the state
// bits, since every dbg/unused chain keeps its width until here.
func SliceTrap(m *tsys.Model) PassStats {
	return statsFor("TrapSlice", m, func() string {
		if m.Trap == tsys.NoLoc {
			return "no trap; skipped"
		}
		// Backward reachability to the trap over the location graph.
		canReach := map[tsys.Loc]bool{m.Trap: true}
		for changed := true; changed; {
			changed = false
			for _, e := range m.Edges {
				if canReach[e.To] && !canReach[e.From] && e.From != m.Trap {
					canReach[e.From] = true
					changed = true
				}
			}
		}
		var kept []*tsys.Edge
		droppedEdges := 0
		for _, e := range m.Edges {
			if canReach[e.To] && e.From != m.Trap {
				kept = append(kept, e)
			} else {
				droppedEdges++
			}
		}
		m.Edges = kept

		// Relevance closure over the surviving edges.
		relevant := map[tsys.VarID]bool{}
		for _, e := range m.Edges {
			if e.Guard != nil {
				tsys.ReadVars(e.Guard, relevant)
			}
		}
		for changed := true; changed; {
			changed = false
			for _, e := range m.Edges {
				for _, a := range e.Assigns {
					if !relevant[a.Var] {
						continue
					}
					before := len(relevant)
					tsys.ReadVars(a.RHS, relevant)
					if len(relevant) != before {
						changed = true
					}
				}
			}
		}
		for _, e := range m.Edges {
			var keepAssigns []tsys.Assign
			for _, a := range e.Assigns {
				if relevant[a.Var] {
					keepAssigns = append(keepAssigns, a)
				}
			}
			e.Assigns = keepAssigns
		}
		droppedVars, droppedInputs := 0, 0
		for _, v := range m.Vars {
			if relevant[v.ID] || v.Bits == 0 {
				continue
			}
			if v.Input {
				droppedInputs++
			}
			droppedVars++
			v.Bits = 0
			v.Init = tsys.InitConst
			v.InitVal = 0
			v.HasRange = false
		}
		Contract(m)
		return fmt.Sprintf("dropped %d edges, %d variables (%d inputs)",
			droppedEdges, droppedVars, droppedInputs)
	})
}
