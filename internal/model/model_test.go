package model

import (
	"testing"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/interp"
)

func TestWiperModelShape(t *testing.T) {
	d := Wiper()
	if err := d.Chart.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Chart.States); got != 9 {
		t.Errorf("states = %d, want 9 (the paper's chart)", got)
	}
	if n := d.NumBlocks(); n < 60 || n > 80 {
		t.Errorf("blocks = %d, want ≈70 (the paper's model)", n)
	}
}

func TestChartValidateCatchesErrors(t *testing.T) {
	c := &Chart{
		Name:     "bad",
		StateVar: "s",
		States:   []State{{Name: "A", ID: 0}, {Name: "B", ID: 1}},
		Inputs:   []Signal{{Name: "x", Lo: 0, Hi: 1}},
		Outputs:  []string{"y"},
		Transitions: []Transition{
			{From: "A", To: "MISSING", Guard: Guard{[]GuardTerm{{"x", "==", 1}}}},
		},
	}
	if err := c.Validate(); err == nil {
		t.Error("missing target state not reported")
	}
	c.Transitions[0].To = "B"
	c.Transitions[0].Guard.Terms[0].Signal = "zz"
	if err := c.Validate(); err == nil {
		t.Error("unknown guard signal not reported")
	}
}

func TestEmittedCodeCompiles(t *testing.T) {
	d := Wiper()
	src := d.Emit("wiper_control")
	f, err := parser.ParseFile("wiper.c", src)
	if err != nil {
		t.Fatalf("emitted code does not parse: %v\n%s", err, src)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatalf("emitted code does not check: %v", err)
	}
	g, err := cfg.Build(f.Func("wiper_control"))
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	if g.CondBranches() < 9 {
		t.Errorf("emitted CFG has only %d decisions", g.CondBranches())
	}
}

// TestEmittedCodeMatchesChartSemantics runs all 108 input vectors through
// both the chart oracle and the interpreted generated code.
func TestEmittedCodeMatchesChartSemantics(t *testing.T) {
	d := Wiper()
	src := d.Emit("wiper_control")
	f, err := parser.ParseFile("wiper.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(f.Func("wiper_control"))
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(f, interp.Options{})

	decl := func(name string) *ast.VarDecl {
		for _, gl := range f.Globals {
			if gl.Name == name {
				return gl
			}
		}
		t.Fatalf("global %q missing", name)
		return nil
	}
	selD, washD, endD, stateD := decl("sel"), decl("wash"), decl("endpos"), decl("state")
	nextD, motorD, pumpD := decl("next_state"), decl("motor"), decl("pump")

	for sel := int64(0); sel <= 2; sel++ {
		for wash := int64(0); wash <= 1; wash++ {
			for endpos := int64(0); endpos <= 1; endpos++ {
				for state := int64(0); state <= 8; state++ {
					env := interp.Env{selD: sel, washD: wash, endD: endpos, stateD: state}
					if _, err := m.Run(g, env); err != nil {
						t.Fatalf("run: %v", err)
					}
					wantNext, wantOuts, err := d.Chart.Step(
						map[string]int64{"sel": sel, "wash": wash, "endpos": endpos}, state)
					if err != nil {
						t.Fatal(err)
					}
					if env[nextD] != wantNext {
						t.Errorf("sel=%d wash=%d end=%d state=%d: next=%d, oracle %d",
							sel, wash, endpos, state, env[nextD], wantNext)
					}
					if env[motorD] != wantOuts["motor"] || env[pumpD] != wantOuts["pump"] {
						t.Errorf("sel=%d wash=%d end=%d state=%d: outputs motor=%d pump=%d, oracle %v",
							sel, wash, endpos, state, env[motorD], env[pumpD], wantOuts)
					}
				}
			}
		}
	}
}

func TestEveryStateReachable(t *testing.T) {
	d := Wiper()
	c := d.Chart
	reach := map[int64]bool{0: true}
	for changed := true; changed; {
		changed = false
		for _, s := range c.States {
			if !reach[s.ID] {
				continue
			}
			for _, tr := range c.TransitionsFrom(s.Name) {
				id := c.state(tr.To).ID
				if !reach[id] {
					reach[id] = true
					changed = true
				}
			}
		}
	}
	for _, s := range c.States {
		if !reach[s.ID] {
			t.Errorf("state %s unreachable from OFF", s.Name)
		}
	}
}
