package model

import (
	"fmt"
	"strings"
)

// Emit generates the C-subset source of the controller function in
// TargetLink style: one function whose body is a switch over the state
// variable with nested if/else chains, followed by the diagram's output
// conditioning blocks.
//
// The previous state is an input (range-annotated), so the generated
// function is a pure step function suitable for exhaustive end-to-end
// measurement and for path forcing.
func (d *Diagram) Emit(funcName string) string {
	c := d.Chart
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	w("/* %s — generated from model %q (%d blocks, %d chart states). */",
		funcName, d.Name, d.NumBlocks(), len(c.States))
	for _, in := range c.Inputs {
		w("/*@ input */ /*@ range %d %d */ int %s;", in.Lo, in.Hi, in.Name)
	}
	w("/*@ input */ /*@ range 0 %d */ int %s;", len(c.States)-1, c.StateVar)
	for _, out := range c.Outputs {
		w("int %s;", out)
	}
	w("int next_%s;", c.StateVar)
	w("char motor_cmd;")
	w("")
	w("void %s(void) {", funcName)
	w("    switch (%s) {", c.StateVar)
	for _, s := range c.States {
		w("    case %d: /* %s */", s.ID, s.Name)
		trans := c.TransitionsFrom(s.Name)
		indent := "        "
		for i, t := range trans {
			kw := "if"
			if i > 0 {
				kw = "} else if"
			}
			w("%s%s (%s) {", indent, kw, t.Guard.C())
			target := c.state(t.To)
			w("%s    next_%s = %d;", indent, c.StateVar, target.ID)
			for _, a := range effectiveActions(t, target) {
				w("%s    %s = %d;", indent, a.Output, a.Value)
			}
		}
		if len(trans) > 0 {
			w("%s} else {", indent)
			w("%s    next_%s = %d;", indent, c.StateVar, s.ID)
			for _, a := range s.During {
				w("%s    %s = %d;", indent, a.Output, a.Value)
			}
			w("%s}", indent)
		} else {
			w("%snext_%s = %d;", indent, c.StateVar, s.ID)
			for _, a := range s.During {
				w("%s%s = %d;", indent, a.Output, a.Value)
			}
		}
		w("        break;")
	}
	w("    default:")
	w("        next_%s = 0;", c.StateVar)
	for _, out := range c.Outputs {
		w("        %s = 0;", out)
	}
	w("        break;")
	w("    }")
	// Output conditioning from the diagram blocks.
	for _, blk := range d.Blocks {
		switch blk.Kind {
		case GainShift:
			if blk.Out != "" && len(blk.In) == 1 {
				w("    %s = (char)(%s << %d);", blk.Out, blk.In[0], blk.Params["shift"])
			}
		case Saturation:
			if blk.Out == "motor_cmd" && len(blk.In) == 1 {
				w("    if (%s > %d) { %s = (char)(%d); }",
					blk.In[0], blk.Params["hi"], blk.Out, blk.Params["hi"])
				w("    if (%s < %d) { %s = (char)(%d); }",
					blk.In[0], blk.Params["lo"], blk.Out, blk.Params["lo"])
			}
		}
	}
	w("}")
	return b.String()
}

// effectiveActions merges a transition's explicit actions with the target
// state's during-actions (explicit actions win).
func effectiveActions(t Transition, target State) []Action {
	set := map[string]int64{}
	order := []string{}
	for _, a := range target.During {
		if _, ok := set[a.Output]; !ok {
			order = append(order, a.Output)
		}
		set[a.Output] = a.Value
	}
	for _, a := range t.Actions {
		if _, ok := set[a.Output]; !ok {
			order = append(order, a.Output)
		}
		set[a.Output] = a.Value
	}
	out := make([]Action, 0, len(order))
	for _, o := range order {
		out = append(out, Action{Output: o, Value: set[o]})
	}
	return out
}

// Step executes the chart semantics directly on the model (the reference
// oracle for the generated code): given input values and the current state
// id, it returns the next state id and the outputs.
func (c *Chart) Step(inputs map[string]int64, state int64) (int64, map[string]int64, error) {
	var cur *State
	for i := range c.States {
		if c.States[i].ID == state {
			cur = &c.States[i]
		}
	}
	outs := map[string]int64{}
	if cur == nil {
		// Out-of-range state: the generated default arm resets.
		for _, o := range c.Outputs {
			outs[o] = 0
		}
		return 0, outs, nil
	}
	for _, t := range c.TransitionsFrom(cur.Name) {
		sat := true
		for _, g := range t.Guard.Terms {
			v, ok := inputs[g.Signal]
			if !ok {
				return 0, nil, fmt.Errorf("model: missing input %q", g.Signal)
			}
			if !cmp(v, g.Op, g.Value) {
				sat = false
				break
			}
		}
		if sat {
			target := c.state(t.To)
			for _, a := range effectiveActions(t, target) {
				outs[a.Output] = a.Value
			}
			return target.ID, outs, nil
		}
	}
	for _, a := range cur.During {
		outs[a.Output] = a.Value
	}
	return cur.ID, outs, nil
}

func cmp(a int64, op string, b int64) bool {
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}
