package model

import "fmt"

// Wiper builds the case-study model: an automotive wiper controller with a
// two-step speed selector (off/slow/fast), a water-pump button and an
// end-position switch, as a 9-state chart inside a ~70-block diagram.
func Wiper() *Diagram {
	chart := &Chart{
		Name:     "wiper_chart",
		StateVar: "state",
		Inputs: []Signal{
			{Name: "sel", Lo: 0, Hi: 2},    // 0 off, 1 slow, 2 fast
			{Name: "wash", Lo: 0, Hi: 1},   // water-pump button
			{Name: "endpos", Lo: 0, Hi: 1}, // wipers at park position
		},
		Outputs: []string{"motor", "pump"},
		// The slice order is the emitted case order (TargetLink dispatches
		// with a compare chain, so later cases cost more cycles to reach);
		// PARKED — the state with the most transitions — sits early, which
		// is what makes the per-segment maxima combine pessimistically in
		// the timing schema, as in the paper's case study.
		States: []State{
			{Name: "OFF", ID: 0, During: []Action{{"motor", 0}, {"pump", 0}}},
			{Name: "PARKED", ID: 8, During: []Action{{"motor", 0}, {"pump", 0}}},
			{Name: "SLOW", ID: 1, During: []Action{{"motor", 1}, {"pump", 0}}},
			{Name: "FAST", ID: 2, During: []Action{{"motor", 2}, {"pump", 0}}},
			{Name: "RETURN", ID: 3, During: []Action{{"motor", 1}, {"pump", 0}}},
			{Name: "WASH_OFF", ID: 4, During: []Action{{"motor", 1}, {"pump", 1}}},
			{Name: "WASH_SLOW", ID: 5, During: []Action{{"motor", 1}, {"pump", 1}}},
			{Name: "WASH_FAST", ID: 6, During: []Action{{"motor", 2}, {"pump", 1}}},
			{Name: "POSTWASH", ID: 7, During: []Action{{"motor", 1}, {"pump", 0}}},
		},
		Transitions: []Transition{
			// OFF: washing wins, then speed selection.
			{From: "OFF", To: "WASH_OFF", Guard: Guard{[]GuardTerm{{"wash", "==", 1}}}},
			{From: "OFF", To: "SLOW", Guard: Guard{[]GuardTerm{{"sel", "==", 1}}}},
			{From: "OFF", To: "FAST", Guard: Guard{[]GuardTerm{{"sel", "==", 2}}}},
			// SLOW.
			{From: "SLOW", To: "WASH_SLOW", Guard: Guard{[]GuardTerm{{"wash", "==", 1}}}},
			{From: "SLOW", To: "FAST", Guard: Guard{[]GuardTerm{{"sel", "==", 2}}}},
			{From: "SLOW", To: "RETURN", Guard: Guard{[]GuardTerm{{"sel", "==", 0}}}},
			// FAST.
			{From: "FAST", To: "WASH_FAST", Guard: Guard{[]GuardTerm{{"wash", "==", 1}}}},
			{From: "FAST", To: "SLOW", Guard: Guard{[]GuardTerm{{"sel", "==", 1}}}},
			{From: "FAST", To: "RETURN", Guard: Guard{[]GuardTerm{{"sel", "==", 0}}}},
			// RETURN runs the wipers to the park position, then stops.
			{From: "RETURN", To: "PARKED", Guard: Guard{[]GuardTerm{{"endpos", "==", 1}}}},
			{From: "RETURN", To: "SLOW", Guard: Guard{[]GuardTerm{{"sel", "==", 1}}}},
			{From: "RETURN", To: "FAST", Guard: Guard{[]GuardTerm{{"sel", "==", 2}}}},
			// Washing states: stay while the button is held.
			{From: "WASH_OFF", To: "POSTWASH", Guard: Guard{[]GuardTerm{{"wash", "==", 0}}}},
			{From: "WASH_SLOW", To: "SLOW", Guard: Guard{[]GuardTerm{{"wash", "==", 0}}}},
			{From: "WASH_FAST", To: "FAST", Guard: Guard{[]GuardTerm{{"wash", "==", 0}}}},
			// Post-wash wipe ends at the park position.
			{From: "POSTWASH", To: "PARKED", Guard: Guard{[]GuardTerm{{"endpos", "==", 1}}}},
			{From: "POSTWASH", To: "WASH_OFF", Guard: Guard{[]GuardTerm{{"wash", "==", 1}}}},
			// PARKED returns to OFF (debounced idle) or restarts.
			{From: "PARKED", To: "OFF", Guard: Guard{[]GuardTerm{{"sel", "==", 0}, {"wash", "==", 0}}}},
			{From: "PARKED", To: "SLOW", Guard: Guard{[]GuardTerm{{"sel", "==", 1}}}},
			{From: "PARKED", To: "FAST", Guard: Guard{[]GuardTerm{{"sel", "==", 2}}}},
			{From: "PARKED", To: "WASH_OFF", Guard: Guard{[]GuardTerm{{"wash", "==", 1}}}},
		},
	}

	d := &Diagram{Name: "wiper_model", Chart: chart}
	add := func(b Block) { d.Blocks = append(d.Blocks, b) }

	// Inports and outports.
	for _, in := range chart.Inputs {
		add(Block{Kind: Inport, Name: "In_" + in.Name, Out: in.Name})
	}
	add(Block{Kind: Inport, Name: "In_state", Out: "state"})
	add(Block{Kind: Outport, Name: "Out_motor", In: []string{"motor_cmd"}})
	add(Block{Kind: Outport, Name: "Out_pump", In: []string{"pump"}})
	add(Block{Kind: Outport, Name: "Out_state", In: []string{"next_state"}})

	// Input conditioning: saturate the selector, debounce-ish logic.
	add(Block{Kind: Saturation, Name: "SatSel", In: []string{"sel"},
		Out: "sel", Params: map[string]int64{"lo": 0, "hi": 2}})
	add(Block{Kind: Saturation, Name: "SatWash", In: []string{"wash"},
		Out: "wash", Params: map[string]int64{"lo": 0, "hi": 1}})
	add(Block{Kind: Saturation, Name: "SatEnd", In: []string{"endpos"},
		Out: "endpos", Params: map[string]int64{"lo": 0, "hi": 1}})
	add(Block{Kind: Saturation, Name: "SatState", In: []string{"state"},
		Out: "state", Params: map[string]int64{"lo": 0, "hi": 8}})

	// The chart itself.
	add(Block{Kind: Chartref, Name: chart.Name, In: []string{"sel", "wash", "endpos", "state"},
		Out: "motor"})

	// Output conditioning: scale the motor command for the power stage
	// (shift by 5 ≈ fixed-point gain), saturate, drive the outport signal.
	add(Block{Kind: GainShift, Name: "MotorGain", In: []string{"motor"},
		Out: "motor_cmd", Params: map[string]int64{"shift": 5}})
	add(Block{Kind: Saturation, Name: "MotorSat", In: []string{"motor_cmd"},
		Out: "motor_cmd", Params: map[string]int64{"lo": 0, "hi": 100}})

	// Filler conditioning blocks to reach the paper's ≈70-block scale:
	// per-signal range checks, logic gates for the diagnosis output.
	for i := 0; i < 18; i++ {
		add(Block{Kind: Relational, Name: fmt.Sprintf("RelChk%d", i)})
	}
	for i := 0; i < 18; i++ {
		add(Block{Kind: LogicalOp, Name: fmt.Sprintf("Logic%d", i)})
	}
	for i := 0; i < 12; i++ {
		add(Block{Kind: Constant, Name: fmt.Sprintf("Const%d", i)})
	}
	for i := 0; i < 6; i++ {
		add(Block{Kind: UnitDelay, Name: fmt.Sprintf("Delay%d", i)})
	}
	return d
}
