// Package model is the MatLab/Simulink + TargetLink stand-in for the
// paper's Section 4 case study: a structured Stateflow-style chart plus a
// small block diagram, and a code generator that emits the C-subset source
// of a single wiper_control function in the nested switch/if style of
// TargetLink output.
//
// The paper's chart has 9 states and the surrounding model about 70 blocks;
// Wiper() reproduces those numbers. The previous controller state is a
// model input (the paper enforces test data "on the input parameters and
// the state of the application" through glue code), which keeps the input
// space small enough for exhaustive end-to-end measurement: 3·2·2·9 = 108
// vectors.
package model

import (
	"fmt"
	"strings"
)

// Signal is an input signal with its range.
type Signal struct {
	Name   string
	Lo, Hi int64
}

// Guard is a conjunction of simple comparisons over input signals.
type Guard struct {
	Terms []GuardTerm
}

// GuardTerm compares one signal with a constant.
type GuardTerm struct {
	Signal string
	Op     string // "==", "!=", "<", "<=", ">", ">="
	Value  int64
}

// C renders the guard as a C expression ("1" when empty).
func (g Guard) C() string {
	if len(g.Terms) == 0 {
		return "1"
	}
	parts := make([]string, len(g.Terms))
	for i, t := range g.Terms {
		parts[i] = fmt.Sprintf("%s %s %d", t.Signal, t.Op, t.Value)
	}
	return strings.Join(parts, " && ")
}

// Action assigns a constant to an output.
type Action struct {
	Output string
	Value  int64
}

// Transition moves the chart between states; transitions of one state are
// evaluated in priority order.
type Transition struct {
	From, To string
	Guard    Guard
	Actions  []Action
}

// State is one chart state with its during-actions (outputs driven while
// the state is active).
type State struct {
	Name   string
	ID     int64
	During []Action
}

// Chart is a Stateflow-style state machine.
type Chart struct {
	Name        string
	States      []State
	Transitions []Transition
	Inputs      []Signal
	Outputs     []string
	// StateVar names the generated state variable.
	StateVar string
}

// Validate checks structural sanity: unique state names/ids, transitions
// referencing defined states and signals.
func (c *Chart) Validate() error {
	ids := map[int64]bool{}
	names := map[string]bool{}
	for _, s := range c.States {
		if names[s.Name] {
			return fmt.Errorf("model: duplicate state %q", s.Name)
		}
		if ids[s.ID] {
			return fmt.Errorf("model: duplicate state id %d", s.ID)
		}
		names[s.Name] = true
		ids[s.ID] = true
	}
	sigs := map[string]bool{}
	for _, in := range c.Inputs {
		sigs[in.Name] = true
	}
	outs := map[string]bool{}
	for _, o := range c.Outputs {
		outs[o] = true
	}
	for _, t := range c.Transitions {
		if !names[t.From] || !names[t.To] {
			return fmt.Errorf("model: transition %s→%s references unknown state", t.From, t.To)
		}
		for _, g := range t.Guard.Terms {
			if !sigs[g.Signal] {
				return fmt.Errorf("model: guard references unknown signal %q", g.Signal)
			}
		}
		for _, a := range t.Actions {
			if !outs[a.Output] {
				return fmt.Errorf("model: action targets unknown output %q", a.Output)
			}
		}
	}
	for _, s := range c.States {
		for _, a := range s.During {
			if !outs[a.Output] {
				return fmt.Errorf("model: during-action targets unknown output %q", a.Output)
			}
		}
	}
	return nil
}

// State lookup by name.
func (c *Chart) state(name string) State {
	for _, s := range c.States {
		if s.Name == name {
			return s
		}
	}
	return State{}
}

// TransitionsFrom lists a state's transitions in priority order.
func (c *Chart) TransitionsFrom(name string) []Transition {
	var out []Transition
	for _, t := range c.Transitions {
		if t.From == name {
			out = append(out, t)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Block diagram

// BlockKind enumerates the Simulink-style blocks the emitter understands.
type BlockKind int

// Block kinds.
const (
	Inport BlockKind = iota
	Outport
	Constant
	Saturation
	GainShift // multiply by 2^k (shift — TargetLink's fixed-point gain)
	SwitchSel // out = cond ? a : b
	Chartref  // placeholder for the chart itself
	LogicalOp
	Relational
	UnitDelay
)

// Block is one diagram block.
type Block struct {
	Kind BlockKind
	Name string
	// Params carries kind-specific settings (limits, shift amounts, …).
	Params map[string]int64
	// In lists the input connections (signal or block names).
	In []string
	// Out is the produced signal name ("" for sinks).
	Out string
}

// Diagram is the surrounding block model.
type Diagram struct {
	Name   string
	Chart  *Chart
	Blocks []Block
}

// NumBlocks reports the diagram size (the paper's model has ≈70 blocks).
func (d *Diagram) NumBlocks() int { return len(d.Blocks) }
