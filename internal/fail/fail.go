// Package fail is the analysis pipeline's structured error taxonomy.
//
// A long-running analysis distinguishes four ways a stage can stop short of
// a result, because callers react differently to each:
//
//   - ErrBudgetExceeded — a resource budget ran out (wall-clock deadline,
//     model-checker step/state cap, BDD node cap, GA evaluation cap). The
//     stage's result is unknown, not wrong; the pipeline degrades to a
//     safe-but-less-precise answer where it can.
//   - ErrCancelled — the caller withdrew the request (root context
//     cancelled). The pipeline unwinds promptly and returns no result.
//   - ErrWorkerPanic — a worker goroutine panicked. The panic is recovered,
//     the remaining work is cancelled, and the error carries the stack.
//   - ErrInfrastructure — the stage itself is broken (malformed input,
//     unsupported construct, simulator fault): retrying or degrading cannot
//     help, the analysis input or the tool must change.
//
// Every error is an *Error carrying the failing stage and, when known, the
// path or item it was working on, so a degradation ledger can attribute
// each unknown to its cause. All errors match the sentinels via errors.Is
// and unwrap to their cause via errors.As / errors.Unwrap.
package fail

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel kinds. Match with errors.Is; construct via the helpers below.
var (
	// ErrBudgetExceeded marks a stage stopped by a resource budget
	// (deadline, step/state/node cap, evaluation cap).
	ErrBudgetExceeded = errors.New("budget exceeded")
	// ErrCancelled marks work abandoned because the caller cancelled the
	// root context.
	ErrCancelled = errors.New("cancelled")
	// ErrWorkerPanic marks a recovered panic on a worker goroutine.
	ErrWorkerPanic = errors.New("worker panic")
	// ErrInfrastructure marks a non-recoverable tooling or input failure.
	ErrInfrastructure = errors.New("infrastructure failure")
)

// Error is an attributed pipeline error: which kind of failure, in which
// stage, on which path/item, caused by what.
type Error struct {
	// Kind is one of the package sentinels.
	Kind error
	// Stage names the pipeline stage ("mc", "testgen", "measure",
	// "partition", "core", …). Empty until attributed.
	Stage string
	// Path attributes the failure to one work item — a target path key, a
	// vector index, a sweep bound — when one is known.
	Path string
	// Msg is the human-readable detail.
	Msg string
	// Cause is the underlying error, if any (unwrapped by errors.As).
	Cause error
	// Stack holds the recovered goroutine stack for worker panics. It is
	// deliberately excluded from Error() so error strings stay comparable
	// across runs and worker counts.
	Stack []byte
}

// Error renders "stage: kind: msg (path): cause". The stack is omitted —
// retrieve it via errors.As and the Stack field.
func (e *Error) Error() string {
	s := ""
	if e.Stage != "" {
		s += e.Stage + ": "
	}
	s += e.Kind.Error()
	if e.Msg != "" {
		s += ": " + e.Msg
	}
	if e.Path != "" {
		s += " (" + e.Path + ")"
	}
	if e.Cause != nil {
		s += ": " + e.Cause.Error()
	}
	return s
}

// Is matches the error's kind, so errors.Is(err, fail.ErrBudgetExceeded)
// works without unwrapping through Cause.
func (e *Error) Is(target error) bool { return target == e.Kind }

// Unwrap exposes the cause chain (e.g. context.Canceled under an
// ErrCancelled, or a recovered error value under an ErrWorkerPanic).
func (e *Error) Unwrap() error { return e.Cause }

// Budget builds an ErrBudgetExceeded for a stage.
func Budget(stage, format string, args ...any) *Error {
	return &Error{Kind: ErrBudgetExceeded, Stage: stage, Msg: fmt.Sprintf(format, args...)}
}

// Cancelled builds an ErrCancelled for a stage.
func Cancelled(stage string, cause error) *Error {
	return &Error{Kind: ErrCancelled, Stage: stage, Cause: cause}
}

// Infra builds an ErrInfrastructure for a stage.
func Infra(stage string, cause error) *Error {
	return &Error{Kind: ErrInfrastructure, Stage: stage, Cause: cause}
}

// Panic builds an ErrWorkerPanic from a recovered value and its stack.
func Panic(stage string, recovered any, stack []byte) *Error {
	e := &Error{Kind: ErrWorkerPanic, Stage: stage, Msg: fmt.Sprint(recovered), Stack: stack}
	if err, ok := recovered.(error); ok {
		e.Cause = err
		e.Msg = ""
	}
	return e
}

// Context converts a context error into the pipeline taxonomy: a deadline
// that expired is a spent wall-clock budget, an explicit cancel is a
// withdrawn request. A nil ctxErr returns nil.
func Context(stage string, ctxErr error) error {
	switch {
	case ctxErr == nil:
		return nil
	case errors.Is(ctxErr, context.DeadlineExceeded):
		return &Error{Kind: ErrBudgetExceeded, Stage: stage, Msg: "deadline exceeded", Cause: ctxErr}
	default:
		return &Error{Kind: ErrCancelled, Stage: stage, Cause: ctxErr}
	}
}

// Attribute fills in missing stage/path attribution on an *Error in the
// chain, or wraps a foreign error as ErrInfrastructure with the given
// attribution. Existing attribution is never overwritten, so the innermost
// (most precise) stage wins. A nil err returns nil.
func Attribute(err error, stage, path string) error {
	if err == nil {
		return nil
	}
	var fe *Error
	if errors.As(err, &fe) {
		if fe.Stage == "" {
			fe.Stage = stage
		}
		if fe.Path == "" {
			fe.Path = path
		}
		return err
	}
	return &Error{Kind: ErrInfrastructure, Stage: stage, Path: path, Cause: err}
}

// From classifies an arbitrary stage error into the taxonomy: context
// errors map like Context, an *Error keeps its kind (gaining attribution),
// anything else is ErrInfrastructure. A nil err returns nil.
func From(stage string, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Context(stage, err)
	}
	return Attribute(err, stage, "")
}

// Interrupted reports whether err is a budget or cancellation stop — the
// two kinds a degraded analysis may absorb as "unknown" rather than abort.
func Interrupted(err error) bool {
	return errors.Is(err, ErrBudgetExceeded) || errors.Is(err, ErrCancelled) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ---------------------------------------------------------------------------
// Journal replay: a degradation cause that crossed a process boundary.

// Kind labels, the serialized form of the sentinels in a run journal.
const (
	KindBudget = "budget"
	KindCancel = "cancelled"
	KindPanic  = "panic"
	KindInfra  = "infra"
)

// KindLabel classifies err into its serializable kind label ("" for nil or
// foreign errors, which the taxonomy would have wrapped as infra anyway).
func KindLabel(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrBudgetExceeded):
		return KindBudget
	case errors.Is(err, ErrCancelled):
		return KindCancel
	case errors.Is(err, ErrWorkerPanic):
		return KindPanic
	default:
		return KindInfra
	}
}

// replayed is an error reconstructed from a journal record: it renders the
// exact string the original run produced and still matches its sentinel
// kind under errors.Is, so a resumed report is byte-identical to — and
// programmatically indistinguishable from — the uninterrupted one.
type replayed struct {
	kind error
	msg  string
}

func (r *replayed) Error() string        { return r.msg }
func (r *replayed) Is(target error) bool { return target == r.kind }

// Replayed reconstructs a journaled cause from its kind label and rendered
// message. Unknown labels conservatively map to ErrInfrastructure; a nil
// is returned for an empty label (no cause was journaled).
func Replayed(kind, msg string) error {
	if kind == "" {
		return nil
	}
	sentinel := ErrInfrastructure
	switch kind {
	case KindBudget:
		sentinel = ErrBudgetExceeded
	case KindCancel:
		sentinel = ErrCancelled
	case KindPanic:
		sentinel = ErrWorkerPanic
	}
	return &replayed{kind: sentinel, msg: msg}
}
