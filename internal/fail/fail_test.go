package fail

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestConstructorsMatchTheirSentinels(t *testing.T) {
	cases := []struct {
		err  error
		kind error
	}{
		{Budget("mc", "steps out after %d", 5), ErrBudgetExceeded},
		{Cancelled("core", context.Canceled), ErrCancelled},
		{Infra("measure", errors.New("sim fault")), ErrInfrastructure},
		{Panic("par", "boom", []byte("stack")), ErrWorkerPanic},
	}
	kinds := []error{ErrBudgetExceeded, ErrCancelled, ErrInfrastructure, ErrWorkerPanic}
	for _, c := range cases {
		for _, k := range kinds {
			got := errors.Is(c.err, k)
			want := k == c.kind
			if got != want {
				t.Errorf("errors.Is(%v, %v) = %v, want %v", c.err, k, got, want)
			}
		}
	}
}

func TestErrorStringExcludesStack(t *testing.T) {
	e := Panic("testgen", "boom", []byte("goroutine 7 [running]:\nmain.explode()"))
	if got := e.Error(); got != "testgen: worker panic: boom" {
		t.Errorf("Error() = %q, want attribution without the stack", got)
	}
	var fe *Error
	if !errors.As(e, &fe) || len(fe.Stack) == 0 {
		t.Error("stack must stay retrievable via errors.As")
	}
}

func TestErrorStringFormat(t *testing.T) {
	cause := errors.New("root")
	e := &Error{Kind: ErrBudgetExceeded, Stage: "mc", Path: "B1-B2", Msg: "step budget", Cause: cause}
	want := "mc: budget exceeded: step budget (B1-B2): root"
	if e.Error() != want {
		t.Errorf("Error() = %q, want %q", e.Error(), want)
	}
}

func TestPanicWithErrorValueBecomesCause(t *testing.T) {
	root := errors.New("exploded")
	e := Panic("measure", root, nil)
	if !errors.Is(e, ErrWorkerPanic) || !errors.Is(e, root) {
		t.Errorf("panic over an error value must match both the kind and the cause: %v", e)
	}
}

func TestContextMapping(t *testing.T) {
	if Context("mc", nil) != nil {
		t.Error("nil context error must map to nil")
	}
	if err := Context("mc", context.DeadlineExceeded); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("deadline must map to budget exceeded, got %v", err)
	}
	if err := Context("mc", context.Canceled); !errors.Is(err, ErrCancelled) {
		t.Errorf("cancel must map to cancelled, got %v", err)
	}
}

func TestAttributeInnermostStageWins(t *testing.T) {
	inner := Budget("mc", "node budget")
	out := Attribute(inner, "testgen", "B1-B3")
	var fe *Error
	if !errors.As(out, &fe) {
		t.Fatal("attributed error lost its type")
	}
	if fe.Stage != "mc" {
		t.Errorf("existing stage overwritten: %q", fe.Stage)
	}
	if fe.Path != "B1-B3" {
		t.Errorf("empty path not filled: %q", fe.Path)
	}
}

func TestAttributeWrapsForeignErrors(t *testing.T) {
	root := fmt.Errorf("file missing")
	out := Attribute(root, "core", "")
	if !errors.Is(out, ErrInfrastructure) || !errors.Is(out, root) {
		t.Errorf("foreign error must become attributed infrastructure failure: %v", out)
	}
	if Attribute(nil, "core", "x") != nil {
		t.Error("nil must stay nil")
	}
}

func TestFromClassifies(t *testing.T) {
	if err := From("mc", context.Canceled); !errors.Is(err, ErrCancelled) {
		t.Errorf("From(ctx cancel) = %v", err)
	}
	if err := From("mc", context.DeadlineExceeded); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("From(ctx deadline) = %v", err)
	}
	if err := From("mc", Budget("", "x")); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("From(*Error) = %v", err)
	}
	if err := From("mc", errors.New("misc")); !errors.Is(err, ErrInfrastructure) {
		t.Errorf("From(foreign) = %v", err)
	}
	if From("mc", nil) != nil {
		t.Error("From(nil) must be nil")
	}
}

func TestInterrupted(t *testing.T) {
	for _, err := range []error{
		Budget("mc", "x"), Cancelled("core", nil),
		context.Canceled, context.DeadlineExceeded,
	} {
		if !Interrupted(err) {
			t.Errorf("Interrupted(%v) = false", err)
		}
	}
	for _, err := range []error{Infra("m", errors.New("x")), Panic("p", "b", nil), errors.New("misc")} {
		if Interrupted(err) {
			t.Errorf("Interrupted(%v) = true", err)
		}
	}
}
