package ast

import "wcet/internal/cc/token"

// Visitor is called for each node during Walk; returning false prunes the
// subtree below the node.
type Visitor func(Node) bool

// Walk traverses the AST rooted at n in depth-first source order.
func Walk(n Node, v Visitor) {
	if n == nil || !v(n) {
		return
	}
	switch x := n.(type) {
	case *File:
		for _, g := range x.Globals {
			Walk(g, v)
		}
		for _, f := range x.Funcs {
			Walk(f, v)
		}
	case *FuncDecl:
		for _, p := range x.Params {
			Walk(p, v)
		}
		if x.Body != nil {
			Walk(x.Body, v)
		}
	case *VarDecl:
		if x.Init != nil {
			Walk(x.Init, v)
		}
	case *Block:
		for _, s := range x.Stmts {
			Walk(s, v)
		}
	case *DeclStmt:
		Walk(x.Decl, v)
	case *ExprStmt:
		Walk(x.X, v)
	case *EmptyStmt:
	case *IfStmt:
		Walk(x.Cond, v)
		Walk(x.Then, v)
		if x.Else != nil {
			Walk(x.Else, v)
		}
	case *SwitchStmt:
		Walk(x.Tag, v)
		for _, c := range x.Clauses {
			Walk(c, v)
		}
	case *CaseClause:
		for _, val := range x.Vals {
			Walk(val, v)
		}
		for _, s := range x.Body {
			Walk(s, v)
		}
	case *WhileStmt:
		Walk(x.Cond, v)
		Walk(x.Body, v)
	case *DoWhileStmt:
		Walk(x.Body, v)
		Walk(x.Cond, v)
	case *ForStmt:
		if x.Init != nil {
			Walk(x.Init, v)
		}
		if x.Cond != nil {
			Walk(x.Cond, v)
		}
		if x.Post != nil {
			Walk(x.Post, v)
		}
		Walk(x.Body, v)
	case *BreakStmt, *ContinueStmt:
	case *ReturnStmt:
		if x.X != nil {
			Walk(x.X, v)
		}
	case *Ident, *IntLit:
	case *UnaryExpr:
		Walk(x.X, v)
	case *BinaryExpr:
		Walk(x.X, v)
		Walk(x.Y, v)
	case *AssignExpr:
		Walk(x.LHS, v)
		Walk(x.RHS, v)
	case *CondExpr:
		Walk(x.Cond, v)
		Walk(x.Then, v)
		Walk(x.Else, v)
	case *CallExpr:
		for _, a := range x.Args {
			Walk(a, v)
		}
	}
}

// Idents returns every identifier referenced below n, in source order.
func Idents(n Node) []*Ident {
	var out []*Ident
	Walk(n, func(m Node) bool {
		if id, ok := m.(*Ident); ok {
			out = append(out, id)
		}
		return true
	})
	return out
}

// ReadVars returns the names of variables read (not purely written) below n.
func ReadVars(n Node) map[string]bool {
	reads := map[string]bool{}
	var walk func(Node, bool)
	walk = func(m Node, lvalue bool) {
		switch x := m.(type) {
		case nil:
			return
		case *Ident:
			if !lvalue {
				reads[x.Name] = true
			}
		case *AssignExpr:
			// Compound assignment also reads the LHS.
			walk(x.LHS, x.Op == token.ASSIGN)
			walk(x.RHS, false)
		case *UnaryExpr:
			// ++/-- read and write.
			walk(x.X, false)
		case *BinaryExpr:
			walk(x.X, false)
			walk(x.Y, false)
		case *CondExpr:
			walk(x.Cond, false)
			walk(x.Then, false)
			walk(x.Else, false)
		case *CallExpr:
			for _, a := range x.Args {
				walk(a, false)
			}
		case *IntLit:
		default:
			Walk(m, func(inner Node) bool {
				if inner == m {
					return true
				}
				walk(inner, false)
				return false
			})
		}
	}
	walk(n, false)
	return reads
}

// WrittenVars returns the names of variables assigned below n.
func WrittenVars(n Node) map[string]bool {
	writes := map[string]bool{}
	Walk(n, func(m Node) bool {
		switch x := m.(type) {
		case *AssignExpr:
			if id, ok := x.LHS.(*Ident); ok {
				writes[id.Name] = true
			}
		case *UnaryExpr:
			if x.Op == token.INC || x.Op == token.DEC {
				if id, ok := x.X.(*Ident); ok {
					writes[id.Name] = true
				}
			}
		case *VarDecl:
			if x.Init != nil {
				writes[x.Name] = true
			}
		}
		return true
	})
	return writes
}
