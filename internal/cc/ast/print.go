package ast

import (
	"fmt"
	"strings"

	"wcet/internal/cc/token"
)

// Print renders the AST back to compilable C-subset source. The output is
// not byte-identical to the input but is semantically equivalent; it is used
// by the synthetic program generator and the TargetLink-style emitter.
func Print(f *File) string {
	var p printer
	for _, g := range f.Globals {
		p.varDecl(g)
		p.buf.WriteString(";\n")
	}
	if len(f.Globals) > 0 {
		p.buf.WriteByte('\n')
	}
	for i, fn := range f.Funcs {
		if i > 0 {
			p.buf.WriteByte('\n')
		}
		p.funcDecl(fn)
	}
	return p.buf.String()
}

// PrintStmt renders a single statement (used in diagnostics).
func PrintStmt(s Stmt) string {
	var p printer
	p.stmt(s)
	return strings.TrimRight(p.buf.String(), "\n")
}

// ExprString renders an expression in C syntax.
func ExprString(e Expr) string {
	var p printer
	p.expr(e, 0)
	return p.buf.String()
}

type printer struct {
	buf    strings.Builder
	indent int
}

func (p *printer) nl() {
	p.buf.WriteByte('\n')
	for i := 0; i < p.indent; i++ {
		p.buf.WriteString("    ")
	}
}

func (p *printer) varDecl(d *VarDecl) {
	if d.Input {
		p.buf.WriteString("/*@ input */ ")
	}
	if d.Rng != nil {
		fmt.Fprintf(&p.buf, "/*@ range %d %d */ ", d.Rng.Lo, d.Rng.Hi)
	}
	if d.Volatile {
		p.buf.WriteString("volatile ")
	}
	fmt.Fprintf(&p.buf, "%s %s", d.Type, d.Name)
	if d.Init != nil {
		p.buf.WriteString(" = ")
		p.expr(d.Init, 0)
	}
}

func (p *printer) funcDecl(fn *FuncDecl) {
	fmt.Fprintf(&p.buf, "%s %s(", fn.Ret, fn.Name)
	if len(fn.Params) == 0 {
		p.buf.WriteString("void")
	}
	for i, par := range fn.Params {
		if i > 0 {
			p.buf.WriteString(", ")
		}
		p.varDecl(par)
	}
	p.buf.WriteString(") ")
	p.block(fn.Body)
	p.buf.WriteByte('\n')
}

func (p *printer) block(b *Block) {
	p.buf.WriteByte('{')
	p.indent++
	for _, s := range b.Stmts {
		p.nl()
		p.stmt(s)
	}
	p.indent--
	p.nl()
	p.buf.WriteByte('}')
}

func (p *printer) stmt(s Stmt) {
	switch x := s.(type) {
	case *Block:
		p.block(x)
	case *DeclStmt:
		p.varDecl(x.Decl)
		p.buf.WriteByte(';')
	case *ExprStmt:
		p.expr(x.X, 0)
		p.buf.WriteByte(';')
	case *EmptyStmt:
		p.buf.WriteByte(';')
	case *IfStmt:
		p.buf.WriteString("if (")
		p.expr(x.Cond, 0)
		p.buf.WriteString(") ")
		p.stmtAsBlock(x.Then)
		if x.Else != nil {
			p.buf.WriteString(" else ")
			if elseIf, ok := x.Else.(*IfStmt); ok {
				p.stmt(elseIf)
			} else {
				p.stmtAsBlock(x.Else)
			}
		}
	case *SwitchStmt:
		p.buf.WriteString("switch (")
		p.expr(x.Tag, 0)
		p.buf.WriteString(") {")
		p.indent++
		for _, c := range x.Clauses {
			p.nl()
			if c.Vals == nil {
				p.buf.WriteString("default:")
			} else {
				for i, v := range c.Vals {
					if i > 0 {
						p.nl()
					}
					p.buf.WriteString("case ")
					p.expr(v, 0)
					p.buf.WriteByte(':')
				}
			}
			p.indent++
			for _, bs := range c.Body {
				p.nl()
				p.stmt(bs)
			}
			p.indent--
		}
		p.indent--
		p.nl()
		p.buf.WriteByte('}')
	case *WhileStmt:
		if x.Bound > 0 {
			fmt.Fprintf(&p.buf, "/*@ loopbound %d */ ", x.Bound)
		}
		p.buf.WriteString("while (")
		p.expr(x.Cond, 0)
		p.buf.WriteString(") ")
		p.stmtAsBlock(x.Body)
	case *DoWhileStmt:
		if x.Bound > 0 {
			fmt.Fprintf(&p.buf, "/*@ loopbound %d */ ", x.Bound)
		}
		p.buf.WriteString("do ")
		p.stmtAsBlock(x.Body)
		p.buf.WriteString(" while (")
		p.expr(x.Cond, 0)
		p.buf.WriteString(");")
	case *ForStmt:
		if x.Bound > 0 {
			fmt.Fprintf(&p.buf, "/*@ loopbound %d */ ", x.Bound)
		}
		p.buf.WriteString("for (")
		switch init := x.Init.(type) {
		case nil:
			p.buf.WriteByte(';')
		case *DeclStmt:
			p.varDecl(init.Decl)
			p.buf.WriteByte(';')
		case *ExprStmt:
			p.expr(init.X, 0)
			p.buf.WriteByte(';')
		}
		p.buf.WriteByte(' ')
		if x.Cond != nil {
			p.expr(x.Cond, 0)
		}
		p.buf.WriteString("; ")
		if x.Post != nil {
			p.expr(x.Post, 0)
		}
		p.buf.WriteString(") ")
		p.stmtAsBlock(x.Body)
	case *BreakStmt:
		p.buf.WriteString("break;")
	case *ContinueStmt:
		p.buf.WriteString("continue;")
	case *ReturnStmt:
		p.buf.WriteString("return")
		if x.X != nil {
			p.buf.WriteByte(' ')
			p.expr(x.X, 0)
		}
		p.buf.WriteByte(';')
	default:
		fmt.Fprintf(&p.buf, "/* ? %T */", s)
	}
}

func (p *printer) stmtAsBlock(s Stmt) {
	if b, ok := s.(*Block); ok {
		p.block(b)
		return
	}
	p.block(&Block{Stmts: []Stmt{s}})
}

// Operator precedence for printing with minimal parentheses.
func prec(op token.Kind) int {
	switch op {
	case token.STAR, token.SLASH, token.PERCENT:
		return 10
	case token.PLUS, token.MINUS:
		return 9
	case token.SHL, token.SHR:
		return 8
	case token.LT, token.GT, token.LE, token.GE:
		return 7
	case token.EQ, token.NE:
		return 6
	case token.AMP:
		return 5
	case token.CARET:
		return 4
	case token.PIPE:
		return 3
	case token.LAND:
		return 2
	case token.LOR:
		return 1
	}
	return 0
}

func (p *printer) expr(e Expr, parent int) {
	switch x := e.(type) {
	case *Ident:
		p.buf.WriteString(x.Name)
	case *IntLit:
		fmt.Fprintf(&p.buf, "%d", x.Val)
	case *UnaryExpr:
		if x.Postfix {
			p.expr(x.X, 100)
			p.buf.WriteString(x.Op.String())
			return
		}
		p.buf.WriteString(x.Op.String())
		// Avoid "--x" when printing -(-x).
		if u, ok := x.X.(*UnaryExpr); ok && u.Op == x.Op && !u.Postfix {
			p.buf.WriteByte('(')
			p.expr(x.X, 0)
			p.buf.WriteByte(')')
			return
		}
		p.expr(x.X, 100)
	case *BinaryExpr:
		pr := prec(x.Op)
		if pr < parent {
			p.buf.WriteByte('(')
		}
		p.expr(x.X, pr)
		fmt.Fprintf(&p.buf, " %s ", x.Op)
		p.expr(x.Y, pr+1)
		if pr < parent {
			p.buf.WriteByte(')')
		}
	case *AssignExpr:
		if parent > 0 {
			p.buf.WriteByte('(')
		}
		p.expr(x.LHS, 100)
		fmt.Fprintf(&p.buf, " %s ", x.Op)
		p.expr(x.RHS, 0)
		if parent > 0 {
			p.buf.WriteByte(')')
		}
	case *CondExpr:
		if parent > 0 {
			p.buf.WriteByte('(')
		}
		p.expr(x.Cond, 3)
		p.buf.WriteString(" ? ")
		p.expr(x.Then, 0)
		p.buf.WriteString(" : ")
		p.expr(x.Else, 0)
		if parent > 0 {
			p.buf.WriteByte(')')
		}
	case *CallExpr:
		if x.Cast != nil {
			fmt.Fprintf(&p.buf, "(%s)", *x.Cast)
			p.expr(x.Args[0], 100)
			return
		}
		p.buf.WriteString(x.Name)
		p.buf.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				p.buf.WriteString(", ")
			}
			p.expr(a, 0)
		}
		p.buf.WriteByte(')')
	default:
		fmt.Fprintf(&p.buf, "/* ? %T */", e)
	}
}
