// Package ast defines the abstract syntax tree for the C subset, together
// with a visitor and a source printer.
//
// Every node carries the position of its first token; the CFG builder labels
// basic blocks with these line numbers exactly as the paper's Figure 1 does.
package ast

import (
	"wcet/internal/cc/token"
)

// ---------------------------------------------------------------------------
// Types

// TypeKind classifies the scalar types of the subset.
type TypeKind int

// Scalar type kinds.
const (
	TypeVoid TypeKind = iota
	TypeBool
	TypeChar
	TypeShort
	TypeInt
	TypeLong
)

// Type is a scalar C type. Bits and Signed determine the value domain used
// by the interpreter, the code generator and the model translator. The
// defaults mirror a 16-bit automotive target (HCS12): int is 16 bits.
type Type struct {
	Kind   TypeKind
	Signed bool
	Bits   int
}

// Predefined types of the 16-bit target.
var (
	Void  = Type{Kind: TypeVoid}
	Bool  = Type{Kind: TypeBool, Bits: 1}
	Char  = Type{Kind: TypeChar, Signed: true, Bits: 8}
	UChar = Type{Kind: TypeChar, Bits: 8}
	Short = Type{Kind: TypeShort, Signed: true, Bits: 16}
	Int   = Type{Kind: TypeInt, Signed: true, Bits: 16}
	UInt  = Type{Kind: TypeInt, Bits: 16}
	Long  = Type{Kind: TypeLong, Signed: true, Bits: 32}
	ULong = Type{Kind: TypeLong, Bits: 32}
)

// String renders the type in C syntax.
func (t Type) String() string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeBool:
		return "_Bool"
	case TypeChar:
		if t.Signed {
			return "char"
		}
		return "unsigned char"
	case TypeShort:
		if t.Signed {
			return "short"
		}
		return "unsigned short"
	case TypeInt:
		if t.Signed {
			return "int"
		}
		return "unsigned int"
	case TypeLong:
		if t.Signed {
			return "long"
		}
		return "unsigned long"
	}
	return "?"
}

// IsVoid reports whether t is the void type.
func (t Type) IsVoid() bool { return t.Kind == TypeVoid }

// MinMax returns the representable value range of the type.
func (t Type) MinMax() (lo, hi int64) {
	if t.Bits <= 0 {
		return 0, 0
	}
	if t.Signed {
		hi = int64(1)<<(t.Bits-1) - 1
		lo = -hi - 1
		return lo, hi
	}
	return 0, int64(1)<<t.Bits - 1
}

// ---------------------------------------------------------------------------
// Annotations

// Range is a value-range annotation (/*@ range lo hi */), standing in for
// the annotations a code generator derives from the Simulink model.
type Range struct {
	Lo, Hi int64
}

// Width returns the number of bits needed to represent the annotated range
// (including a sign bit when Lo < 0).
func (r Range) Width() int {
	need := func(v int64) int {
		bits := 0
		if v < 0 {
			v = -v - 1
		}
		for v > 0 {
			bits++
			v >>= 1
		}
		return bits
	}
	w := need(r.Hi)
	if n := need(r.Lo); n > w {
		w = n
	}
	if r.Lo < 0 {
		w++
	}
	if w == 0 {
		w = 1
	}
	return w
}

// ---------------------------------------------------------------------------
// Nodes

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// File is a translation unit: a list of global declarations and functions.
type File struct {
	Name    string
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Pos implements Node; it reports the position of the first declaration.
func (f *File) Pos() token.Pos {
	if len(f.Globals) > 0 {
		return f.Globals[0].NamePos
	}
	if len(f.Funcs) > 0 {
		return f.Funcs[0].NamePos
	}
	return token.Pos{}
}

// Func returns the function with the given name, or nil.
func (f *File) Func(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// VarDecl declares a scalar variable, optionally initialised.
type VarDecl struct {
	NamePos  token.Pos
	Name     string
	Type     Type
	Init     Expr   // may be nil
	Rng      *Range // may be nil; from /*@ range lo hi */
	Input    bool   // from /*@ input */: unconstrained initial value in the model
	Volatile bool
}

// Pos implements Node.
func (d *VarDecl) Pos() token.Pos { return d.NamePos }

// FuncDecl is a function definition.
type FuncDecl struct {
	NamePos token.Pos
	Name    string
	Ret     Type
	Params  []*VarDecl
	Body    *Block
}

// Pos implements Node.
func (d *FuncDecl) Pos() token.Pos { return d.NamePos }

// ---------------------------------------------------------------------------
// Statements

// Block is a brace-delimited statement list. Transparent blocks are
// synthesised by the parser for multi-declarator statements ("int a, b;")
// and do not open a scope.
type Block struct {
	Lbrace      token.Pos
	Stmts       []Stmt
	Transparent bool
}

// DeclStmt is a local variable declaration used as a statement.
type DeclStmt struct {
	Decl *VarDecl
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X Expr
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct {
	Semi token.Pos
}

// IfStmt is if/else.
type IfStmt struct {
	IfPos token.Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
}

// CaseClause is one case (or default) arm of a switch.
type CaseClause struct {
	CasePos token.Pos
	Vals    []Expr // nil for default; constant expressions
	Body    []Stmt
	// Falls reports whether control flow falls through to the next clause
	// (i.e. the body does not end in break/return). Set by the parser.
	Falls bool
}

// Pos implements Node.
func (c *CaseClause) Pos() token.Pos { return c.CasePos }

// SwitchStmt is a switch over an integer expression. Only the common
// generated-code shape is supported: a brace-delimited list of case clauses.
type SwitchStmt struct {
	SwitchPos token.Pos
	Tag       Expr
	Clauses   []*CaseClause
}

// WhileStmt is a while loop. Bound is the annotated maximum iteration count
// (0 when absent).
type WhileStmt struct {
	WhilePos token.Pos
	Cond     Expr
	Body     Stmt
	Bound    int
}

// DoWhileStmt is a do/while loop.
type DoWhileStmt struct {
	DoPos token.Pos
	Body  Stmt
	Cond  Expr
	Bound int
}

// ForStmt is a for loop; any of Init/Cond/Post may be nil.
type ForStmt struct {
	ForPos token.Pos
	Init   Stmt // DeclStmt or ExprStmt
	Cond   Expr
	Post   Expr
	Body   Stmt
	Bound  int
}

// BreakStmt exits the innermost loop or switch.
type BreakStmt struct {
	BreakPos token.Pos
}

// ContinueStmt continues the innermost loop.
type ContinueStmt struct {
	ContinuePos token.Pos
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	ReturnPos token.Pos
	X         Expr // may be nil
}

// Pos implementations.
func (s *Block) Pos() token.Pos        { return s.Lbrace }
func (s *DeclStmt) Pos() token.Pos     { return s.Decl.NamePos }
func (s *ExprStmt) Pos() token.Pos     { return s.X.Pos() }
func (s *EmptyStmt) Pos() token.Pos    { return s.Semi }
func (s *IfStmt) Pos() token.Pos       { return s.IfPos }
func (s *SwitchStmt) Pos() token.Pos   { return s.SwitchPos }
func (s *WhileStmt) Pos() token.Pos    { return s.WhilePos }
func (s *DoWhileStmt) Pos() token.Pos  { return s.DoPos }
func (s *ForStmt) Pos() token.Pos      { return s.ForPos }
func (s *BreakStmt) Pos() token.Pos    { return s.BreakPos }
func (s *ContinueStmt) Pos() token.Pos { return s.ContinuePos }
func (s *ReturnStmt) Pos() token.Pos   { return s.ReturnPos }

func (*Block) stmtNode()        {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*EmptyStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*SwitchStmt) stmtNode()   {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}

// ---------------------------------------------------------------------------
// Expressions

// Ident references a variable.
type Ident struct {
	NamePos token.Pos
	Name    string
	// Decl is resolved by the semantic pass.
	Decl *VarDecl
}

// IntLit is an integer (or character) literal.
type IntLit struct {
	LitPos token.Pos
	Val    int64
}

// UnaryExpr is -x, ~x, !x, +x, ++x, --x, x++, x--.
type UnaryExpr struct {
	OpPos   token.Pos
	Op      token.Kind
	X       Expr
	Postfix bool // true for x++ / x--
}

// BinaryExpr is a binary operation, including && and || (which the CFG
// builder expands into short-circuit control flow).
type BinaryExpr struct {
	Op   token.Kind
	X, Y Expr
}

// AssignExpr is an assignment, possibly compound (+= etc.).
type AssignExpr struct {
	Op  token.Kind // ASSIGN or op-assign kind
	LHS Expr       // must be an *Ident in the subset
	RHS Expr
}

// CondExpr is the ternary c ? t : f.
type CondExpr struct {
	Cond Expr
	Then Expr
	Else Expr
}

// CallExpr calls a named function. Calls to undeclared functions are treated
// as opaque external routines with a fixed cost (the paper's printf1()...).
// C casts are lowered to CallExpr markers with Cast set.
type CallExpr struct {
	NamePos token.Pos
	Name    string
	Args    []Expr
	// Decl is resolved by the semantic pass when the callee is defined in
	// the same file; nil for external routines.
	Decl *FuncDecl
	// Cast, when non-nil, marks this node as a C cast to the given type.
	Cast *Type
}

// Pos implementations.
func (e *Ident) Pos() token.Pos      { return e.NamePos }
func (e *IntLit) Pos() token.Pos     { return e.LitPos }
func (e *UnaryExpr) Pos() token.Pos  { return e.OpPos }
func (e *BinaryExpr) Pos() token.Pos { return e.X.Pos() }
func (e *AssignExpr) Pos() token.Pos { return e.LHS.Pos() }
func (e *CondExpr) Pos() token.Pos   { return e.Cond.Pos() }
func (e *CallExpr) Pos() token.Pos   { return e.NamePos }

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*AssignExpr) exprNode() {}
func (*CondExpr) exprNode()   {}
func (*CallExpr) exprNode()   {}
