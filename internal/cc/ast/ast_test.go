package ast

import (
	"testing"

	"wcet/internal/cc/token"
)

func TestTypeStrings(t *testing.T) {
	cases := map[string]Type{
		"void": Void, "_Bool": Bool, "char": Char, "unsigned char": UChar,
		"short": Short, "int": Int, "unsigned int": UInt,
		"long": Long, "unsigned long": ULong,
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestTypeMinMax(t *testing.T) {
	cases := []struct {
		typ    Type
		lo, hi int64
	}{
		{Char, -128, 127},
		{UChar, 0, 255},
		{Int, -32768, 32767},
		{UInt, 0, 65535},
		{Bool, 0, 1},
		{Long, -2147483648, 2147483647},
	}
	for _, c := range cases {
		lo, hi := c.typ.MinMax()
		if lo != c.lo || hi != c.hi {
			t.Errorf("%s: MinMax = [%d,%d], want [%d,%d]", c.typ, lo, hi, c.lo, c.hi)
		}
	}
}

func TestRangeWidth(t *testing.T) {
	cases := []struct {
		rng  Range
		want int
	}{
		{Range{0, 1}, 1},
		{Range{0, 2}, 2},
		{Range{0, 255}, 8},
		{Range{-1, 0}, 1},
		{Range{-128, 127}, 8},
		{Range{-1, 1}, 2},
		{Range{0, 0}, 1},
		{Range{-20, 50}, 7},
	}
	for _, c := range cases {
		if got := c.rng.Width(); got != c.want {
			t.Errorf("Width(%v) = %d, want %d", c.rng, got, c.want)
		}
	}
}

// Small AST for walk/read/write tests: { a = b + 1; c++; ext(a, d); }
func sampleBlock() (*Block, map[string]*VarDecl) {
	decls := map[string]*VarDecl{}
	for _, n := range []string{"a", "b", "c", "d"} {
		decls[n] = &VarDecl{Name: n, Type: Int}
	}
	id := func(n string) *Ident { return &Ident{Name: n, Decl: decls[n]} }
	return &Block{Stmts: []Stmt{
		&ExprStmt{X: &AssignExpr{Op: token.ASSIGN, LHS: id("a"),
			RHS: &BinaryExpr{Op: token.PLUS, X: id("b"), Y: &IntLit{Val: 1}}}},
		&ExprStmt{X: &UnaryExpr{Op: token.INC, X: id("c"), Postfix: true}},
		&ExprStmt{X: &CallExpr{Name: "ext", Args: []Expr{id("a"), id("d")}}},
	}}, decls
}

func TestWalkVisitsEverything(t *testing.T) {
	blk, _ := sampleBlock()
	idents := Idents(blk)
	names := map[string]int{}
	for _, id := range idents {
		names[id.Name]++
	}
	if names["a"] != 2 || names["b"] != 1 || names["c"] != 1 || names["d"] != 1 {
		t.Errorf("ident visits = %v", names)
	}
}

func TestWalkPrune(t *testing.T) {
	blk, _ := sampleBlock()
	count := 0
	Walk(blk, func(n Node) bool {
		count++
		_, isStmt := n.(*ExprStmt)
		return !isStmt // prune below statements
	})
	if count != 4 { // block + 3 statements
		t.Errorf("visited %d nodes with pruning, want 4", count)
	}
}

func TestReadWrittenVars(t *testing.T) {
	blk, _ := sampleBlock()
	reads := ReadVars(blk)
	if !reads["b"] || !reads["d"] {
		t.Errorf("reads = %v, want b and d", reads)
	}
	if reads["a"] != true {
		// a is read by the call argument.
		t.Error("a is read as a call argument")
	}
	writes := WrittenVars(blk)
	if !writes["a"] || !writes["c"] {
		t.Errorf("writes = %v, want a and c", writes)
	}
	if writes["b"] || writes["d"] {
		t.Errorf("writes = %v: b/d are never written", writes)
	}
}

func TestCompoundAssignReadsLHS(t *testing.T) {
	d := &VarDecl{Name: "x", Type: Int}
	e := &AssignExpr{Op: token.ADDASSIGN, LHS: &Ident{Name: "x", Decl: d}, RHS: &IntLit{Val: 1}}
	reads := ReadVars(&ExprStmt{X: e})
	if !reads["x"] {
		t.Error("x += 1 must read x")
	}
	plain := &AssignExpr{Op: token.ASSIGN, LHS: &Ident{Name: "x", Decl: d}, RHS: &IntLit{Val: 1}}
	reads2 := ReadVars(&ExprStmt{X: plain})
	if reads2["x"] {
		t.Error("x = 1 must not read x")
	}
}

func TestPrintExpressionForms(t *testing.T) {
	a := &Ident{Name: "a"}
	b := &Ident{Name: "b"}
	cases := []struct {
		e    Expr
		want string
	}{
		{&BinaryExpr{Op: token.PLUS, X: a, Y: &BinaryExpr{Op: token.STAR, X: b, Y: &IntLit{Val: 2}}},
			"a + b * 2"},
		{&BinaryExpr{Op: token.STAR, X: &BinaryExpr{Op: token.PLUS, X: a, Y: b}, Y: &IntLit{Val: 2}},
			"(a + b) * 2"},
		{&UnaryExpr{Op: token.MINUS, X: a}, "-a"},
		{&UnaryExpr{Op: token.INC, X: a, Postfix: true}, "a++"},
		{&CondExpr{Cond: a, Then: &IntLit{Val: 1}, Else: &IntLit{Val: 0}}, "a ? 1 : 0"},
		{&CallExpr{Name: "f", Args: []Expr{a, b}}, "f(a, b)"},
		{&CallExpr{Name: "__cast_char", Args: []Expr{a}, Cast: &Char}, "(char)a"},
	}
	for _, c := range cases {
		if got := ExprString(c.e); got != c.want {
			t.Errorf("ExprString = %q, want %q", got, c.want)
		}
	}
}

func TestFileFuncLookup(t *testing.T) {
	f := &File{Funcs: []*FuncDecl{{Name: "a"}, {Name: "b"}}}
	if f.Func("b") == nil || f.Func("missing") != nil {
		t.Error("Func lookup broken")
	}
	if !f.Pos().IsValid() {
		// Funcs carry no positions here; Pos falls back to zero. Just make
		// sure it does not panic on sparse files.
		_ = f.Pos()
	}
}
