package sem

import (
	"strings"
	"testing"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	f, err := parser.ParseFile("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(f)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func TestResolution(t *testing.T) {
	info := mustCheck(t, `
int g;
void f(int p) { int l; l = g + p; }
`)
	fn := info.File.Func("f")
	vars := info.FuncVars[fn]
	names := map[string]bool{}
	for _, v := range vars {
		names[v.Name] = true
	}
	for _, want := range []string{"g", "p", "l"} {
		if !names[want] {
			t.Errorf("variable %q missing from FuncVars", want)
		}
	}
	// Every ident in the body must be resolved.
	ast.Walk(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Decl == nil {
			t.Errorf("unresolved identifier %q", id.Name)
		}
		return true
	})
}

func TestUndeclared(t *testing.T) {
	if _, err := check(t, `void f(void) { x = 1; }`); err == nil {
		t.Error("expected undeclared-variable error")
	}
}

func TestRedeclaration(t *testing.T) {
	if _, err := check(t, `void f(void) { int a; int a; }`); err == nil {
		t.Error("expected redeclaration error")
	}
	// Shadowing in a nested scope is legal.
	mustCheck(t, `void f(void) { int a; { int a; a = 1; } a = 2; }`)
}

func TestBreakContinuePlacement(t *testing.T) {
	if _, err := check(t, `void f(void) { break; }`); err == nil {
		t.Error("expected error: break outside loop/switch")
	}
	if _, err := check(t, `void f(void) { continue; }`); err == nil {
		t.Error("expected error: continue outside loop")
	}
	mustCheck(t, `int x; void f(void) { while (x) { if (x) break; continue; } }`)
	mustCheck(t, `int x; void f(void) { switch (x) { case 1: break; } }`)
}

func TestSwitchRules(t *testing.T) {
	if _, err := check(t, `int x; void f(void) { switch (x) { case 1: case 1: break; } }`); err == nil {
		t.Error("expected duplicate case error")
	}
	if _, err := check(t, `int x; void f(void) { switch (x) { default: break; default: break; } }`); err == nil {
		t.Error("expected multiple-default error")
	}
	info := mustCheck(t, `int x; void f(void) { switch (x) { case 2+3: break; case -1: break; } }`)
	vals := map[int64]bool{}
	for _, v := range info.CaseVals {
		vals[v] = true
	}
	if !vals[5] || !vals[-1] {
		t.Errorf("case values = %v, want {5, -1}", vals)
	}
}

func TestNonConstCase(t *testing.T) {
	if _, err := check(t, `int x, y; void f(void) { switch (x) { case y: break; } }`); err == nil {
		t.Error("expected non-constant case error")
	}
}

func TestReturnInVoid(t *testing.T) {
	if _, err := check(t, `void f(void) { return 1; }`); err == nil {
		t.Error("expected return-with-value error")
	}
	mustCheck(t, `int f(void) { return 1; }`)
	mustCheck(t, `void f(void) { return; }`)
}

func TestCallArity(t *testing.T) {
	if _, err := check(t, `
int add(int a, int b) { return a + b; }
void f(void) { add(1); }
`); err == nil {
		t.Error("expected arity error")
	}
}

func TestExternalsCollected(t *testing.T) {
	info := mustCheck(t, `void f(void) { printf1(); printf2(); printf1(); }`)
	if len(info.Externals) != 2 {
		t.Errorf("externals = %v, want 2 distinct", info.Externals)
	}
}

func TestConstEval(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"-4", -4},
		{"~0", -1},
		{"!5", 0},
		{"!0", 1},
		{"16>>2", 4},
		{"1<<10", 1024},
		{"7%3", 1},
		{"7/2", 3},
		{"5&3", 1},
		{"5|3", 7},
		{"5^3", 6},
	}
	for _, c := range cases {
		f, err := parser.ParseFile("c.c", "int g = "+c.src+";")
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		got, err := ConstEval(f.Globals[0].Init)
		if err != nil {
			t.Errorf("ConstEval(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("ConstEval(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestConstEvalErrors(t *testing.T) {
	for _, src := range []string{"1/0", "1%0"} {
		f, err := parser.ParseFile("c.c", "int g = "+src+";")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ConstEval(f.Globals[0].Init); err == nil {
			t.Errorf("ConstEval(%q): expected error", src)
		}
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, err := check(t, "void f(void) {\n    x = 1;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error %q should mention line 2", err)
	}
}
