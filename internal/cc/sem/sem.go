// Package sem resolves names, checks the static rules of the C subset and
// computes constant values for case labels.
//
// The checker is deliberately pragmatic: generated automotive code is well
// typed by construction, so the pass focuses on what downstream stages need —
// every identifier resolved to its declaration, every case label constant,
// and a complete variable inventory per function.
package sem

import (
	"fmt"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/token"
)

// Error is a semantic error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Info is the result of checking one file.
type Info struct {
	File *ast.File
	// FuncVars maps each function to every variable visible in it
	// (globals + params + locals), in declaration order.
	FuncVars map[*ast.FuncDecl][]*ast.VarDecl
	// CaseVals maps each case-label expression to its constant value.
	CaseVals map[ast.Expr]int64
	// Externals lists called-but-undefined function names (opaque routines).
	Externals []string
}

// Check resolves and checks f.
func Check(f *ast.File) (*Info, error) {
	info := &Info{
		File:     f,
		FuncVars: map[*ast.FuncDecl][]*ast.VarDecl{},
		CaseVals: map[ast.Expr]int64{},
	}
	c := &checker{info: info, file: f, externals: map[string]bool{}}
	// Global scope.
	gscope := newScope(nil)
	for _, g := range f.Globals {
		if err := gscope.declare(g); err != nil {
			return nil, err
		}
		if g.Init != nil {
			if err := c.expr(g.Init, gscope); err != nil {
				return nil, err
			}
		}
	}
	for _, fn := range f.Funcs {
		if err := c.checkFunc(fn, gscope); err != nil {
			return nil, err
		}
	}
	for name := range c.externals {
		info.Externals = append(info.Externals, name)
	}
	return info, nil
}

// CheckFunc parses-level helper: check a whole file and return info, failing
// if the named function is missing.
func CheckFunc(f *ast.File, name string) (*Info, *ast.FuncDecl, error) {
	info, err := Check(f)
	if err != nil {
		return nil, nil, err
	}
	fn := f.Func(name)
	if fn == nil {
		return nil, nil, fmt.Errorf("sem: function %q not found", name)
	}
	return info, fn, nil
}

type scope struct {
	parent *scope
	vars   map[string]*ast.VarDecl
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, vars: map[string]*ast.VarDecl{}}
}

func (s *scope) declare(d *ast.VarDecl) error {
	if _, ok := s.vars[d.Name]; ok {
		return &Error{Pos: d.NamePos, Msg: fmt.Sprintf("redeclaration of %q", d.Name)}
	}
	s.vars[d.Name] = d
	return nil
}

func (s *scope) lookup(name string) *ast.VarDecl {
	for sc := s; sc != nil; sc = sc.parent {
		if d, ok := sc.vars[name]; ok {
			return d
		}
	}
	return nil
}

type checker struct {
	info      *Info
	file      *ast.File
	externals map[string]bool
	cur       *ast.FuncDecl
	loopDepth int
	swDepth   int
}

func (c *checker) checkFunc(fn *ast.FuncDecl, gscope *scope) error {
	c.cur = fn
	vars := make([]*ast.VarDecl, 0, len(c.file.Globals)+len(fn.Params))
	vars = append(vars, c.file.Globals...)
	fscope := newScope(gscope)
	for _, p := range fn.Params {
		if err := fscope.declare(p); err != nil {
			return err
		}
		vars = append(vars, p)
	}
	c.info.FuncVars[fn] = vars
	if fn.Body == nil {
		return nil
	}
	if err := c.stmt(fn.Body, fscope); err != nil {
		return err
	}
	return nil
}

func (c *checker) addVar(d *ast.VarDecl) {
	c.info.FuncVars[c.cur] = append(c.info.FuncVars[c.cur], d)
}

func (c *checker) stmt(s ast.Stmt, sc *scope) error {
	switch x := s.(type) {
	case *ast.Block:
		inner := sc
		if !x.Transparent {
			inner = newScope(sc)
		}
		for _, st := range x.Stmts {
			if err := c.stmt(st, inner); err != nil {
				return err
			}
		}
	case *ast.DeclStmt:
		if x.Decl.Init != nil {
			if err := c.expr(x.Decl.Init, sc); err != nil {
				return err
			}
		}
		if err := sc.declare(x.Decl); err != nil {
			return err
		}
		c.addVar(x.Decl)
	case *ast.ExprStmt:
		return c.expr(x.X, sc)
	case *ast.EmptyStmt:
	case *ast.IfStmt:
		if err := c.expr(x.Cond, sc); err != nil {
			return err
		}
		if err := c.stmt(x.Then, sc); err != nil {
			return err
		}
		if x.Else != nil {
			return c.stmt(x.Else, sc)
		}
	case *ast.SwitchStmt:
		if err := c.expr(x.Tag, sc); err != nil {
			return err
		}
		c.swDepth++
		defer func() { c.swDepth-- }()
		seen := map[int64]bool{}
		defaults := 0
		for _, cl := range x.Clauses {
			if cl.Vals == nil {
				defaults++
				if defaults > 1 {
					return &Error{Pos: cl.CasePos, Msg: "multiple default labels"}
				}
			}
			for _, v := range cl.Vals {
				cv, err := ConstEval(v)
				if err != nil {
					return &Error{Pos: v.Pos(), Msg: "case label is not constant: " + err.Error()}
				}
				if seen[cv] {
					return &Error{Pos: v.Pos(), Msg: fmt.Sprintf("duplicate case value %d", cv)}
				}
				seen[cv] = true
				c.info.CaseVals[v] = cv
			}
			inner := newScope(sc)
			for _, st := range cl.Body {
				if err := c.stmt(st, inner); err != nil {
					return err
				}
			}
		}
	case *ast.WhileStmt:
		if err := c.expr(x.Cond, sc); err != nil {
			return err
		}
		c.loopDepth++
		err := c.stmt(x.Body, sc)
		c.loopDepth--
		return err
	case *ast.DoWhileStmt:
		c.loopDepth++
		if err := c.stmt(x.Body, sc); err != nil {
			c.loopDepth--
			return err
		}
		c.loopDepth--
		return c.expr(x.Cond, sc)
	case *ast.ForStmt:
		inner := newScope(sc)
		if x.Init != nil {
			if err := c.stmt(x.Init, inner); err != nil {
				return err
			}
		}
		if x.Cond != nil {
			if err := c.expr(x.Cond, inner); err != nil {
				return err
			}
		}
		if x.Post != nil {
			if err := c.expr(x.Post, inner); err != nil {
				return err
			}
		}
		c.loopDepth++
		err := c.stmt(x.Body, inner)
		c.loopDepth--
		return err
	case *ast.BreakStmt:
		if c.loopDepth == 0 && c.swDepth == 0 {
			return &Error{Pos: x.BreakPos, Msg: "break outside loop or switch"}
		}
	case *ast.ContinueStmt:
		if c.loopDepth == 0 {
			return &Error{Pos: x.ContinuePos, Msg: "continue outside loop"}
		}
	case *ast.ReturnStmt:
		if x.X != nil {
			if c.cur.Ret.IsVoid() {
				return &Error{Pos: x.ReturnPos, Msg: "return with value in void function"}
			}
			return c.expr(x.X, sc)
		}
	default:
		return fmt.Errorf("sem: unhandled statement %T", s)
	}
	return nil
}

func (c *checker) expr(e ast.Expr, sc *scope) error {
	switch x := e.(type) {
	case *ast.Ident:
		d := sc.lookup(x.Name)
		if d == nil {
			return &Error{Pos: x.NamePos, Msg: fmt.Sprintf("undeclared variable %q", x.Name)}
		}
		x.Decl = d
	case *ast.IntLit:
	case *ast.UnaryExpr:
		return c.expr(x.X, sc)
	case *ast.BinaryExpr:
		if err := c.expr(x.X, sc); err != nil {
			return err
		}
		return c.expr(x.Y, sc)
	case *ast.AssignExpr:
		if err := c.expr(x.LHS, sc); err != nil {
			return err
		}
		return c.expr(x.RHS, sc)
	case *ast.CondExpr:
		if err := c.expr(x.Cond, sc); err != nil {
			return err
		}
		if err := c.expr(x.Then, sc); err != nil {
			return err
		}
		return c.expr(x.Else, sc)
	case *ast.CallExpr:
		if x.Cast != nil {
			if len(x.Args) != 1 {
				return &Error{Pos: x.NamePos, Msg: "cast takes one operand"}
			}
			return c.expr(x.Args[0], sc)
		}
		if fn := c.file.Func(x.Name); fn != nil {
			x.Decl = fn
			if len(x.Args) != len(fn.Params) {
				return &Error{Pos: x.NamePos,
					Msg: fmt.Sprintf("call to %s with %d args, want %d", x.Name, len(x.Args), len(fn.Params))}
			}
		} else {
			c.externals[x.Name] = true
		}
		for _, a := range x.Args {
			if err := c.expr(a, sc); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("sem: unhandled expression %T", e)
	}
	return nil
}

// ConstEval evaluates a constant integer expression (literals, unary +,-,~,!,
// and binary arithmetic over constants).
func ConstEval(e ast.Expr) (int64, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Val, nil
	case *ast.UnaryExpr:
		v, err := ConstEval(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case token.MINUS:
			return -v, nil
		case token.PLUS:
			return v, nil
		case token.TILDE:
			return ^v, nil
		case token.BANG:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *ast.BinaryExpr:
		a, err := ConstEval(x.X)
		if err != nil {
			return 0, err
		}
		b, err := ConstEval(x.Y)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case token.PLUS:
			return a + b, nil
		case token.MINUS:
			return a - b, nil
		case token.STAR:
			return a * b, nil
		case token.SLASH:
			if b == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return a / b, nil
		case token.PERCENT:
			if b == 0 {
				return 0, fmt.Errorf("modulo by zero")
			}
			return a % b, nil
		case token.SHL:
			return a << uint(b&63), nil
		case token.SHR:
			return a >> uint(b&63), nil
		case token.AMP:
			return a & b, nil
		case token.PIPE:
			return a | b, nil
		case token.CARET:
			return a ^ b, nil
		}
	}
	return 0, fmt.Errorf("not a constant expression")
}
