package token

import (
	"strings"
	"testing"
)

func TestEveryKindHasName(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds(); k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}

func TestKeywordsRoundTrip(t *testing.T) {
	for spelling, kind := range Keywords {
		if spelling == "bool" {
			continue // alias of _Bool
		}
		if kind.String() != spelling {
			t.Errorf("keyword %q stringifies as %q", spelling, kind)
		}
	}
}

func TestBaseOp(t *testing.T) {
	cases := map[Kind]Kind{
		ADDASSIGN: PLUS, SUBASSIGN: MINUS, MULASSIGN: STAR,
		DIVASSIGN: SLASH, MODASSIGN: PERCENT, ANDASSIGN: AMP,
		ORASSIGN: PIPE, XORASSIGN: CARET, SHLASSIGN: SHL, SHRASSIGN: SHR,
		ASSIGN: ASSIGN,
	}
	for in, want := range cases {
		if got := in.BaseOp(); got != want {
			t.Errorf("BaseOp(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestIsAssignOp(t *testing.T) {
	for _, k := range []Kind{ASSIGN, ADDASSIGN, SHRASSIGN} {
		if !k.IsAssignOp() {
			t.Errorf("%s must be an assignment operator", k)
		}
	}
	for _, k := range []Kind{PLUS, EQ, LAND, IDENT} {
		if k.IsAssignOp() {
			t.Errorf("%s must not be an assignment operator", k)
		}
	}
}

func TestPos(t *testing.T) {
	p := Pos{File: "a.c", Line: 3, Col: 7}
	if p.String() != "a.c:3:7" {
		t.Errorf("pos = %q", p.String())
	}
	if (Pos{Line: 2, Col: 1}).String() != "2:1" {
		t.Error("file-less position format")
	}
	if (Pos{}).IsValid() {
		t.Error("zero position must be invalid")
	}
	if !p.IsValid() {
		t.Error("set position must be valid")
	}
}

func TestTokenString(t *testing.T) {
	id := Token{Kind: IDENT, Text: "foo"}
	if !strings.Contains(id.String(), "foo") {
		t.Error("ident token string lacks the name")
	}
	if (Token{Kind: SEMICOLON}).String() != ";" {
		t.Error("punctuation token string")
	}
}
