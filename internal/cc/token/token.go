// Package token defines the lexical tokens of the C subset accepted by the
// WCET analyser's front end, together with source positions.
//
// The subset is the language emitted by TargetLink-style code generators for
// control applications: scalar integer types, if/else, switch, the three loop
// forms, assignments, calls, and the usual C expression operators.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	COMMENT

	// Literals and identifiers.
	IDENT  // wiper_state
	INTLIT // 42, 0x2A, 'a'

	// Keywords.
	KwInt
	KwChar
	KwShort
	KwLong
	KwUnsigned
	KwSigned
	KwVoid
	KwBool // _Bool, recognised for range-friendly declarations
	KwIf
	KwElse
	KwSwitch
	KwCase
	KwDefault
	KwWhile
	KwDo
	KwFor
	KwBreak
	KwContinue
	KwReturn
	KwConst
	KwVolatile

	// Punctuation and operators.
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]
	SEMICOLON // ;
	COMMA     // ,
	COLON     // :
	QUESTION  // ?

	ASSIGN     // =
	ADDASSIGN  // +=
	SUBASSIGN  // -=
	MULASSIGN  // *=
	DIVASSIGN  // /=
	MODASSIGN  // %=
	ANDASSIGN  // &=
	ORASSIGN   // |=
	XORASSIGN  // ^=
	SHLASSIGN  // <<=
	SHRASSIGN  // >>=
	INC        // ++
	DEC        // --
	PLUS       // +
	MINUS      // -
	STAR       // *
	SLASH      // /
	PERCENT    // %
	AMP        // &
	PIPE       // |
	CARET      // ^
	TILDE      // ~
	BANG       // !
	SHL        // <<
	SHR        // >>
	LT         // <
	GT         // >
	LE         // <=
	GE         // >=
	EQ         // ==
	NE         // !=
	LAND       // &&
	LOR        // ||
	kindsCount // sentinel for tests
)

var kindNames = map[Kind]string{
	EOF:        "EOF",
	COMMENT:    "comment",
	IDENT:      "identifier",
	INTLIT:     "integer literal",
	KwInt:      "int",
	KwChar:     "char",
	KwShort:    "short",
	KwLong:     "long",
	KwUnsigned: "unsigned",
	KwSigned:   "signed",
	KwVoid:     "void",
	KwBool:     "_Bool",
	KwIf:       "if",
	KwElse:     "else",
	KwSwitch:   "switch",
	KwCase:     "case",
	KwDefault:  "default",
	KwWhile:    "while",
	KwDo:       "do",
	KwFor:      "for",
	KwBreak:    "break",
	KwContinue: "continue",
	KwReturn:   "return",
	KwConst:    "const",
	KwVolatile: "volatile",
	LPAREN:     "(",
	RPAREN:     ")",
	LBRACE:     "{",
	RBRACE:     "}",
	LBRACKET:   "[",
	RBRACKET:   "]",
	SEMICOLON:  ";",
	COMMA:      ",",
	COLON:      ":",
	QUESTION:   "?",
	ASSIGN:     "=",
	ADDASSIGN:  "+=",
	SUBASSIGN:  "-=",
	MULASSIGN:  "*=",
	DIVASSIGN:  "/=",
	MODASSIGN:  "%=",
	ANDASSIGN:  "&=",
	ORASSIGN:   "|=",
	XORASSIGN:  "^=",
	SHLASSIGN:  "<<=",
	SHRASSIGN:  ">>=",
	INC:        "++",
	DEC:        "--",
	PLUS:       "+",
	MINUS:      "-",
	STAR:       "*",
	SLASH:      "/",
	PERCENT:    "%",
	AMP:        "&",
	PIPE:       "|",
	CARET:      "^",
	TILDE:      "~",
	BANG:       "!",
	SHL:        "<<",
	SHR:        ">>",
	LT:         "<",
	GT:         ">",
	LE:         "<=",
	GE:         ">=",
	EQ:         "==",
	NE:         "!=",
	LAND:       "&&",
	LOR:        "||",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// NumKinds reports the number of defined token kinds (used by tests).
func NumKinds() int { return int(kindsCount) }

// Keywords maps keyword spellings to their kinds.
var Keywords = map[string]Kind{
	"int":      KwInt,
	"char":     KwChar,
	"short":    KwShort,
	"long":     KwLong,
	"unsigned": KwUnsigned,
	"signed":   KwSigned,
	"void":     KwVoid,
	"_Bool":    KwBool,
	"bool":     KwBool,
	"if":       KwIf,
	"else":     KwElse,
	"switch":   KwSwitch,
	"case":     KwCase,
	"default":  KwDefault,
	"while":    KwWhile,
	"do":       KwDo,
	"for":      KwFor,
	"break":    KwBreak,
	"continue": KwContinue,
	"return":   KwReturn,
	"const":    KwConst,
	"volatile": KwVolatile,
}

// Pos is a source position: 1-based line and column plus file name.
type Pos struct {
	File string
	Line int
	Col  int
}

// String renders the position in file:line:col form.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a lexed token with its source text and position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
	// Val holds the value of an INTLIT after lexing.
	Val int64
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// IsAssignOp reports whether the kind is an assignment operator (= or op=).
func (k Kind) IsAssignOp() bool {
	switch k {
	case ASSIGN, ADDASSIGN, SUBASSIGN, MULASSIGN, DIVASSIGN, MODASSIGN,
		ANDASSIGN, ORASSIGN, XORASSIGN, SHLASSIGN, SHRASSIGN:
		return true
	}
	return false
}

// BaseOp returns the underlying binary operator of a compound assignment,
// e.g. ADDASSIGN → PLUS. For plain ASSIGN it returns ASSIGN.
func (k Kind) BaseOp() Kind {
	switch k {
	case ADDASSIGN:
		return PLUS
	case SUBASSIGN:
		return MINUS
	case MULASSIGN:
		return STAR
	case DIVASSIGN:
		return SLASH
	case MODASSIGN:
		return PERCENT
	case ANDASSIGN:
		return AMP
	case ORASSIGN:
		return PIPE
	case XORASSIGN:
		return CARET
	case SHLASSIGN:
		return SHL
	case SHRASSIGN:
		return SHR
	}
	return ASSIGN
}
