// Package parser builds the AST for the C subset via recursive descent.
//
// Annotation comments are honoured:
//
//	/*@ input */          — variable gets an unconstrained initial value
//	/*@ range lo hi */    — value-range annotation (from the code generator)
//	/*@ loopbound n */    — maximum iteration count of the following loop
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/lexer"
	"wcet/internal/cc/token"
)

// Error is a syntax error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

// ParseFile parses an entire translation unit.
func ParseFile(name, src string) (*ast.File, error) {
	lx := lexer.New(name, src)
	toks, err := lx.All()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, file: &ast.File{Name: name}}
	if err := p.parseUnit(); err != nil {
		return nil, err
	}
	return p.file, nil
}

// ParseFunc parses a source fragment that must contain at least one function
// and returns the named function (or the only function when name is "").
func ParseFunc(src, name string) (*ast.FuncDecl, *ast.File, error) {
	f, err := ParseFile("<src>", src)
	if err != nil {
		return nil, nil, err
	}
	if name == "" {
		if len(f.Funcs) == 0 {
			return nil, nil, fmt.Errorf("parser: no function in source")
		}
		return f.Funcs[0], f, nil
	}
	fn := f.Func(name)
	if fn == nil {
		return nil, nil, fmt.Errorf("parser: function %q not found", name)
	}
	return fn, f, nil
}

type pendingAnn struct {
	input bool
	rng   *ast.Range
	bound int
}

type parser struct {
	toks []token.Token
	pos  int
	file *ast.File
	ann  pendingAnn
}

func (p *parser) cur() token.Token { return p.toks[p.pos] }

// skipComments consumes comment tokens, recording annotations.
func (p *parser) skipComments() {
	for p.toks[p.pos].Kind == token.COMMENT {
		p.recordAnnotation(p.toks[p.pos].Text)
		p.pos++
	}
}

func (p *parser) recordAnnotation(text string) {
	if !strings.HasPrefix(text, "/*@") {
		return
	}
	body := strings.TrimSuffix(strings.TrimPrefix(text, "/*@"), "*/")
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return
	}
	switch fields[0] {
	case "input":
		p.ann.input = true
	case "range":
		if len(fields) >= 3 {
			lo, err1 := strconv.ParseInt(fields[1], 10, 64)
			hi, err2 := strconv.ParseInt(fields[2], 10, 64)
			if err1 == nil && err2 == nil && lo <= hi {
				p.ann.rng = &ast.Range{Lo: lo, Hi: hi}
			}
		}
	case "loopbound":
		if len(fields) >= 2 {
			if n, err := strconv.Atoi(fields[1]); err == nil && n > 0 {
				p.ann.bound = n
			}
		}
	}
}

func (p *parser) takeAnn() pendingAnn {
	a := p.ann
	p.ann = pendingAnn{}
	return a
}

func (p *parser) next() token.Token {
	p.skipComments()
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) peekKind() token.Kind {
	p.skipComments()
	return p.toks[p.pos].Kind
}

// peekKindAt looks ahead n non-comment tokens.
func (p *parser) peekKindAt(n int) token.Kind {
	i := p.pos
	seen := 0
	for i < len(p.toks) {
		if p.toks[i].Kind == token.COMMENT {
			i++
			continue
		}
		if seen == n {
			return p.toks[i].Kind
		}
		seen++
		i++
	}
	return token.EOF
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	p.skipComments()
	t := p.toks[p.pos]
	if t.Kind != k {
		return t, &Error{Pos: t.Pos, Msg: fmt.Sprintf("expected %s, found %s", k, t)}
	}
	p.pos++
	return t, nil
}

func (p *parser) errHere(format string, args ...any) error {
	p.skipComments()
	return &Error{Pos: p.toks[p.pos].Pos, Msg: fmt.Sprintf(format, args...)}
}

// ---------------------------------------------------------------------------
// Declarations

func (p *parser) atType() bool {
	switch p.peekKind() {
	case token.KwInt, token.KwChar, token.KwShort, token.KwLong,
		token.KwUnsigned, token.KwSigned, token.KwVoid, token.KwBool,
		token.KwConst, token.KwVolatile:
		return true
	}
	return false
}

// parseType parses a type-specifier sequence, returning the type and whether
// volatile appeared.
func (p *parser) parseType() (ast.Type, bool, error) {
	signed, unsigned := false, false
	volatile := false
	var base token.Kind
	haveBase := false
	for {
		switch p.peekKind() {
		case token.KwConst:
			p.next()
		case token.KwVolatile:
			p.next()
			volatile = true
		case token.KwSigned:
			p.next()
			signed = true
		case token.KwUnsigned:
			p.next()
			unsigned = true
		case token.KwInt, token.KwChar, token.KwShort, token.KwLong, token.KwVoid, token.KwBool:
			if haveBase {
				// "short int" / "long int": int after short/long is absorbed.
				if p.peekKind() == token.KwInt && (base == token.KwShort || base == token.KwLong) {
					p.next()
					continue
				}
				goto done
			}
			base = p.peekKind()
			haveBase = true
			p.next()
		default:
			goto done
		}
	}
done:
	if !haveBase {
		if signed || unsigned {
			base = token.KwInt
		} else {
			return ast.Void, volatile, p.errHere("expected type specifier")
		}
	}
	var t ast.Type
	switch base {
	case token.KwVoid:
		t = ast.Void
	case token.KwBool:
		t = ast.Bool
	case token.KwChar:
		t = ast.Char
		if unsigned {
			t = ast.UChar
		}
	case token.KwShort:
		t = ast.Short
		if unsigned {
			t = ast.Type{Kind: ast.TypeShort, Bits: 16}
		}
	case token.KwLong:
		t = ast.Long
		if unsigned {
			t = ast.ULong
		}
	default: // int
		t = ast.Int
		if unsigned {
			t = ast.UInt
		}
	}
	return t, volatile, nil
}

func (p *parser) parseUnit() error {
	for p.peekKind() != token.EOF {
		if !p.atType() {
			return p.errHere("expected declaration, found %s", p.cur())
		}
		ann := p.takeAnn()
		typ, vol, err := p.parseType()
		if err != nil {
			return err
		}
		nameTok, err := p.expect(token.IDENT)
		if err != nil {
			return err
		}
		if p.peekKind() == token.LPAREN {
			fn, err := p.parseFuncRest(typ, nameTok)
			if err != nil {
				return err
			}
			if fn != nil {
				p.file.Funcs = append(p.file.Funcs, fn)
			}
			continue
		}
		// Global variable declaration list.
		for {
			d := &ast.VarDecl{NamePos: nameTok.Pos, Name: nameTok.Text, Type: typ,
				Rng: ann.rng, Input: ann.input, Volatile: vol}
			if p.peekKind() == token.ASSIGN {
				p.next()
				e, err := p.parseAssignExpr()
				if err != nil {
					return err
				}
				d.Init = e
			}
			p.file.Globals = append(p.file.Globals, d)
			if p.peekKind() != token.COMMA {
				break
			}
			p.next()
			nameTok, err = p.expect(token.IDENT)
			if err != nil {
				return err
			}
		}
		if _, err := p.expect(token.SEMICOLON); err != nil {
			return err
		}
	}
	return nil
}

// parseFuncRest parses a function from its '(' onward. Returns nil (and no
// error) for a bare prototype.
func (p *parser) parseFuncRest(ret ast.Type, nameTok token.Token) (*ast.FuncDecl, error) {
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	fn := &ast.FuncDecl{NamePos: nameTok.Pos, Name: nameTok.Text, Ret: ret}
	if p.peekKind() == token.KwVoid && p.peekKindAt(1) == token.RPAREN {
		p.next()
	}
	for p.peekKind() != token.RPAREN {
		ann := p.takeAnn()
		typ, vol, err := p.parseType()
		if err != nil {
			return nil, err
		}
		nt, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, &ast.VarDecl{
			NamePos: nt.Pos, Name: nt.Text, Type: typ,
			Rng: ann.rng, Input: ann.input, Volatile: vol,
		})
		if p.peekKind() == token.COMMA {
			p.next()
			continue
		}
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	if p.peekKind() == token.SEMICOLON {
		p.next()
		return nil, nil // prototype only
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseBlock() (*ast.Block, error) {
	lb, err := p.expect(token.LBRACE)
	if err != nil {
		return nil, err
	}
	b := &ast.Block{Lbrace: lb.Pos}
	for p.peekKind() != token.RBRACE {
		if p.peekKind() == token.EOF {
			return nil, p.errHere("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *parser) parseStmt() (ast.Stmt, error) {
	switch p.peekKind() {
	case token.LBRACE:
		return p.parseBlock()
	case token.SEMICOLON:
		t := p.next()
		return &ast.EmptyStmt{Semi: t.Pos}, nil
	case token.KwIf:
		return p.parseIf()
	case token.KwSwitch:
		return p.parseSwitch()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwDo:
		return p.parseDoWhile()
	case token.KwFor:
		return p.parseFor()
	case token.KwBreak:
		t := p.next()
		if _, err := p.expect(token.SEMICOLON); err != nil {
			return nil, err
		}
		return &ast.BreakStmt{BreakPos: t.Pos}, nil
	case token.KwContinue:
		t := p.next()
		if _, err := p.expect(token.SEMICOLON); err != nil {
			return nil, err
		}
		return &ast.ContinueStmt{ContinuePos: t.Pos}, nil
	case token.KwReturn:
		t := p.next()
		ret := &ast.ReturnStmt{ReturnPos: t.Pos}
		if p.peekKind() != token.SEMICOLON {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ret.X = e
		}
		if _, err := p.expect(token.SEMICOLON); err != nil {
			return nil, err
		}
		return ret, nil
	}
	if p.atType() {
		d, err := p.parseLocalDecl()
		if err != nil {
			return nil, err
		}
		return d, nil
	}
	// Expression statement.
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	return &ast.ExprStmt{X: e}, nil
}

// parseLocalDecl parses "type name [= init] {, name [= init]} ;" and returns
// a single DeclStmt or a Block wrapping multiple DeclStmts.
func (p *parser) parseLocalDecl() (ast.Stmt, error) {
	ann := p.takeAnn()
	typ, vol, err := p.parseType()
	if err != nil {
		return nil, err
	}
	var decls []ast.Stmt
	for {
		nt, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		d := &ast.VarDecl{NamePos: nt.Pos, Name: nt.Text, Type: typ,
			Rng: ann.rng, Input: ann.input, Volatile: vol}
		if p.peekKind() == token.ASSIGN {
			p.next()
			e, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		decls = append(decls, &ast.DeclStmt{Decl: d})
		if p.peekKind() != token.COMMA {
			break
		}
		p.next()
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	if len(decls) == 1 {
		return decls[0], nil
	}
	// Multiple declarators: keep them as sibling statements via a
	// transparent block (no scope; the CFG builder flattens it).
	return &ast.Block{Lbrace: decls[0].Pos(), Stmts: decls, Transparent: true}, nil
}

func (p *parser) parseIf() (ast.Stmt, error) {
	t := p.next() // if
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st := &ast.IfStmt{IfPos: t.Pos, Cond: cond, Then: then}
	if p.peekKind() == token.KwElse {
		p.next()
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *parser) parseSwitch() (ast.Stmt, error) {
	t := p.next() // switch
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBRACE); err != nil {
		return nil, err
	}
	sw := &ast.SwitchStmt{SwitchPos: t.Pos, Tag: tag}
	var cur *ast.CaseClause
	flush := func() {
		if cur != nil {
			cur.Falls = !endsControl(cur.Body)
			sw.Clauses = append(sw.Clauses, cur)
			cur = nil
		}
	}
	for p.peekKind() != token.RBRACE {
		switch p.peekKind() {
		case token.KwCase:
			ct := p.next()
			v, err := p.parseCondExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.COLON); err != nil {
				return nil, err
			}
			if cur != nil && len(cur.Body) == 0 && cur.Vals != nil {
				// case 1: case 2: body — merge labels into one clause.
				cur.Vals = append(cur.Vals, v)
				continue
			}
			flush()
			cur = &ast.CaseClause{CasePos: ct.Pos, Vals: []ast.Expr{v}}
		case token.KwDefault:
			dt := p.next()
			if _, err := p.expect(token.COLON); err != nil {
				return nil, err
			}
			flush()
			cur = &ast.CaseClause{CasePos: dt.Pos}
		case token.EOF:
			return nil, p.errHere("unexpected EOF in switch")
		default:
			if cur == nil {
				return nil, p.errHere("statement before first case label")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			cur.Body = append(cur.Body, s)
		}
	}
	p.next() // }
	flush()
	return sw, nil
}

// endsControl reports whether the statement list definitely transfers
// control at its end (break/continue/return), so a switch clause does not
// fall through.
func endsControl(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	switch last := body[len(body)-1].(type) {
	case *ast.BreakStmt, *ast.ContinueStmt, *ast.ReturnStmt:
		return true
	case *ast.Block:
		return endsControl(last.Stmts)
	}
	return false
}

func (p *parser) parseWhile() (ast.Stmt, error) {
	ann := p.takeAnn()
	t := p.next() // while
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &ast.WhileStmt{WhilePos: t.Pos, Cond: cond, Body: body, Bound: ann.bound}, nil
}

func (p *parser) parseDoWhile() (ast.Stmt, error) {
	ann := p.takeAnn()
	t := p.next() // do
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.KwWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	return &ast.DoWhileStmt{DoPos: t.Pos, Body: body, Cond: cond, Bound: ann.bound}, nil
}

func (p *parser) parseFor() (ast.Stmt, error) {
	ann := p.takeAnn()
	t := p.next() // for
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	st := &ast.ForStmt{ForPos: t.Pos, Bound: ann.bound}
	// Init clause.
	if p.peekKind() != token.SEMICOLON {
		if p.atType() {
			d, err := p.parseLocalDecl() // consumes the semicolon
			if err != nil {
				return nil, err
			}
			st.Init = d
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Init = &ast.ExprStmt{X: e}
			if _, err := p.expect(token.SEMICOLON); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	// Cond clause.
	if p.peekKind() != token.SEMICOLON {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = e
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	// Post clause.
	if p.peekKind() != token.RPAREN {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Post = e
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) parseExpr() (ast.Expr, error) { return p.parseAssignExpr() }

func (p *parser) parseAssignExpr() (ast.Expr, error) {
	lhs, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	if p.peekKind().IsAssignOp() {
		op := p.next().Kind
		if _, ok := lhs.(*ast.Ident); !ok {
			return nil, p.errHere("assignment target must be a variable")
		}
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &ast.AssignExpr{Op: op, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) parseCondExpr() (ast.Expr, error) {
	c, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.peekKind() == token.QUESTION {
		p.next()
		t, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.COLON); err != nil {
			return nil, err
		}
		f, err := p.parseCondExpr()
		if err != nil {
			return nil, err
		}
		return &ast.CondExpr{Cond: c, Then: t, Else: f}, nil
	}
	return c, nil
}

func binPrec(k token.Kind) int {
	switch k {
	case token.LOR:
		return 1
	case token.LAND:
		return 2
	case token.PIPE:
		return 3
	case token.CARET:
		return 4
	case token.AMP:
		return 5
	case token.EQ, token.NE:
		return 6
	case token.LT, token.GT, token.LE, token.GE:
		return 7
	case token.SHL, token.SHR:
		return 8
	case token.PLUS, token.MINUS:
		return 9
	case token.STAR, token.SLASH, token.PERCENT:
		return 10
	}
	return 0
}

func (p *parser) parseBinary(minPrec int) (ast.Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		pr := binPrec(p.peekKind())
		if pr == 0 || pr < minPrec {
			return lhs, nil
		}
		op := p.next().Kind
		rhs, err := p.parseBinary(pr + 1)
		if err != nil {
			return nil, err
		}
		lhs = &ast.BinaryExpr{Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (ast.Expr, error) {
	switch p.peekKind() {
	case token.MINUS, token.PLUS, token.TILDE, token.BANG:
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{OpPos: t.Pos, Op: t.Kind, X: x}, nil
	case token.INC, token.DEC:
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if _, ok := x.(*ast.Ident); !ok {
			return nil, &Error{Pos: t.Pos, Msg: "++/-- target must be a variable"}
		}
		return &ast.UnaryExpr{OpPos: t.Pos, Op: t.Kind, X: x}, nil
	case token.LPAREN:
		// Cast or parenthesised expression.
		if p.isCastAhead() {
			p.next() // (
			typ, _, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RPAREN); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			// Casts are modelled as truncating assignments downstream; the
			// AST keeps them as a call-like marker to preserve semantics.
			t := typ
			return &ast.CallExpr{NamePos: x.Pos(), Name: castName(typ), Args: []ast.Expr{x}, Cast: &t}, nil
		}
	}
	return p.parsePostfix()
}

func castName(t ast.Type) string { return "__cast_" + sanitize(t.String()) }

func sanitize(s string) string { return strings.ReplaceAll(s, " ", "_") }

// isCastAhead reports whether the upcoming tokens are "( type )".
func (p *parser) isCastAhead() bool {
	if p.peekKind() != token.LPAREN {
		return false
	}
	k := p.peekKindAt(1)
	switch k {
	case token.KwInt, token.KwChar, token.KwShort, token.KwLong,
		token.KwUnsigned, token.KwSigned, token.KwBool, token.KwVoid,
		token.KwConst, token.KwVolatile:
		return true
	}
	return false
}

func (p *parser) parsePostfix() (ast.Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peekKind() {
		case token.INC, token.DEC:
			t := p.next()
			if _, ok := x.(*ast.Ident); !ok {
				return nil, &Error{Pos: t.Pos, Msg: "++/-- target must be a variable"}
			}
			x = &ast.UnaryExpr{OpPos: t.Pos, Op: t.Kind, X: x, Postfix: true}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	p.skipComments()
	t := p.cur()
	switch t.Kind {
	case token.INTLIT:
		p.next()
		return &ast.IntLit{LitPos: t.Pos, Val: t.Val}, nil
	case token.IDENT:
		p.next()
		if p.peekKind() == token.LPAREN {
			p.next()
			call := &ast.CallExpr{NamePos: t.Pos, Name: t.Text}
			for p.peekKind() != token.RPAREN {
				a, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.peekKind() == token.COMMA {
					p.next()
				}
			}
			p.next() // )
			return call, nil
		}
		return &ast.Ident{NamePos: t.Pos, Name: t.Text}, nil
	case token.LPAREN:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, &Error{Pos: t.Pos, Msg: fmt.Sprintf("unexpected %s in expression", t)}
}
