package parser

import (
	"strings"
	"testing"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/token"
)

func mustParse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := ParseFile("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return f
}

func TestGlobalsAndFunction(t *testing.T) {
	f := mustParse(t, `
int g1;
int g2 = 5, g3;
void f(void) { g1 = g2 + g3; }
`)
	if len(f.Globals) != 3 {
		t.Fatalf("globals = %d, want 3", len(f.Globals))
	}
	if f.Globals[1].Init == nil {
		t.Error("g2 missing initializer")
	}
	fn := f.Func("f")
	if fn == nil || len(fn.Body.Stmts) != 1 {
		t.Fatal("function f not parsed correctly")
	}
}

func TestPrototypeSkipped(t *testing.T) {
	f := mustParse(t, `
void ext(int a);
void f(void) { ext(1); }
`)
	if len(f.Funcs) != 1 || f.Funcs[0].Name != "f" {
		t.Fatalf("funcs = %v, want only f", len(f.Funcs))
	}
}

func TestIfElseChain(t *testing.T) {
	f := mustParse(t, `
int x;
void f(void) {
    if (x == 0) { x = 1; } else if (x == 1) x = 2; else { x = 3; }
}
`)
	ifStmt, ok := f.Func("f").Body.Stmts[0].(*ast.IfStmt)
	if !ok {
		t.Fatal("expected IfStmt")
	}
	elseIf, ok := ifStmt.Else.(*ast.IfStmt)
	if !ok {
		t.Fatal("expected else-if chain")
	}
	if elseIf.Else == nil {
		t.Error("inner else missing")
	}
}

func TestSwitchClausesAndFallthrough(t *testing.T) {
	f := mustParse(t, `
int x, y;
void f(void) {
    switch (x) {
    case 0:
        y = 1;
        break;
    case 1:
    case 2:
        y = 2;
    default:
        y = 3;
        break;
    }
}
`)
	sw := f.Func("f").Body.Stmts[0].(*ast.SwitchStmt)
	if len(sw.Clauses) != 3 {
		t.Fatalf("clauses = %d, want 3", len(sw.Clauses))
	}
	if len(sw.Clauses[1].Vals) != 2 {
		t.Errorf("merged case labels = %d, want 2", len(sw.Clauses[1].Vals))
	}
	if sw.Clauses[0].Falls {
		t.Error("case 0 should not fall through (ends in break)")
	}
	if !sw.Clauses[1].Falls {
		t.Error("case 1/2 should fall through")
	}
	if sw.Clauses[2].Vals != nil {
		t.Error("default clause should have nil Vals")
	}
}

func TestLoopsAndBounds(t *testing.T) {
	f := mustParse(t, `
int i, n;
void f(void) {
    /*@ loopbound 10 */ while (i < n) { i = i + 1; }
    /*@ loopbound 5 */ for (i = 0; i < 5; i++) { n += i; }
    /*@ loopbound 3 */ do { i--; } while (i > 0);
}
`)
	body := f.Func("f").Body.Stmts
	if w := body[0].(*ast.WhileStmt); w.Bound != 10 {
		t.Errorf("while bound = %d, want 10", w.Bound)
	}
	if fr := body[1].(*ast.ForStmt); fr.Bound != 5 {
		t.Errorf("for bound = %d, want 5", fr.Bound)
	}
	if d := body[2].(*ast.DoWhileStmt); d.Bound != 3 {
		t.Errorf("do bound = %d, want 3", d.Bound)
	}
}

func TestAnnotations(t *testing.T) {
	f := mustParse(t, `
/*@ input */ /*@ range 0 2 */ int selector;
int other;
`)
	if !f.Globals[0].Input {
		t.Error("input annotation lost")
	}
	if r := f.Globals[0].Rng; r == nil || r.Lo != 0 || r.Hi != 2 {
		t.Errorf("range annotation = %v, want [0,2]", f.Globals[0].Rng)
	}
	if f.Globals[1].Input || f.Globals[1].Rng != nil {
		t.Error("annotation leaked to next declaration")
	}
}

func TestExpressionPrecedence(t *testing.T) {
	f := mustParse(t, `
int a, b, c, r;
void f(void) { r = a + b * c; }
`)
	assign := f.Func("f").Body.Stmts[0].(*ast.ExprStmt).X.(*ast.AssignExpr)
	add, ok := assign.RHS.(*ast.BinaryExpr)
	if !ok || add.Op != token.PLUS {
		t.Fatalf("expected +, got %v", assign.RHS)
	}
	mul, ok := add.Y.(*ast.BinaryExpr)
	if !ok || mul.Op != token.STAR {
		t.Fatal("b*c should bind tighter than +")
	}
}

func TestShortCircuitAndTernary(t *testing.T) {
	f := mustParse(t, `
int a, b, r;
void f(void) { r = a && b || !a ? 1 : 0; }
`)
	cond, ok := f.Func("f").Body.Stmts[0].(*ast.ExprStmt).X.(*ast.AssignExpr).RHS.(*ast.CondExpr)
	if !ok {
		t.Fatal("expected ternary at top")
	}
	or, ok := cond.Cond.(*ast.BinaryExpr)
	if !ok || or.Op != token.LOR {
		t.Fatal("|| should be ternary condition")
	}
}

func TestCompoundAssignAndIncDec(t *testing.T) {
	f := mustParse(t, `
int a;
void f(void) { a += 2; a--; ++a; }
`)
	body := f.Func("f").Body.Stmts
	if as := body[0].(*ast.ExprStmt).X.(*ast.AssignExpr); as.Op != token.ADDASSIGN {
		t.Errorf("op = %v, want +=", as.Op)
	}
	if u := body[1].(*ast.ExprStmt).X.(*ast.UnaryExpr); !u.Postfix || u.Op != token.DEC {
		t.Error("a-- should be postfix DEC")
	}
	if u := body[2].(*ast.ExprStmt).X.(*ast.UnaryExpr); u.Postfix || u.Op != token.INC {
		t.Error("++a should be prefix INC")
	}
}

func TestCasts(t *testing.T) {
	f := mustParse(t, `
int a; char c;
void f(void) { a = (int)c; c = (unsigned char)(a + 1); }
`)
	call, ok := f.Func("f").Body.Stmts[0].(*ast.ExprStmt).X.(*ast.AssignExpr).RHS.(*ast.CallExpr)
	if !ok || !strings.HasPrefix(call.Name, "__cast_") {
		t.Fatalf("cast should lower to __cast_ marker, got %T", call)
	}
}

func TestMultiDeclaratorLocal(t *testing.T) {
	f := mustParse(t, `
void f(void) { int a = 1, b, c = 3; a = b + c; }
`)
	blk, ok := f.Func("f").Body.Stmts[0].(*ast.Block)
	if !ok || len(blk.Stmts) != 3 {
		t.Fatalf("multi declarator should expand to 3 decls, got %T", f.Func("f").Body.Stmts[0])
	}
}

func TestFigure1ProgramParses(t *testing.T) {
	// The paper's Figure 1 listing, with printfN() as external calls.
	f := mustParse(t, `
int main() {
    int i;
    printf1();
    printf2();
    if (i == 0)
    {
        printf3();
        if (i == 0) {
            printf4();
        } else {
            printf5();
        }
    }
    if (i == 0)
    {
        printf6();
        printf7();
    }
    printf8();
}
`)
	fn := f.Func("main")
	if fn == nil {
		t.Fatal("main not found")
	}
	if len(fn.Body.Stmts) != 6 {
		t.Errorf("main has %d statements, want 6", len(fn.Body.Stmts))
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"int ;",
		"void f(void) { if x { } }",
		"void f(void) { break; }", // caught by sem, parses fine — skip
		"void f(void) { 1 = 2; }",
		"void f(void) { switch (x) { y = 1; } }",
		"void f(void) { a = ; }",
		"void f(void) {",
	}
	for _, src := range bad {
		if src == "void f(void) { break; }" {
			continue
		}
		full := "int x, y, a;\n" + src
		if _, err := ParseFile("bad.c", full); err == nil {
			t.Errorf("expected syntax error for %q", src)
		}
	}
}

func TestPrintRoundTrip(t *testing.T) {
	src := `
int sel, state, out;
void control(void) {
    switch (state) {
    case 0:
        if (sel == 1) {
            out = 10;
        } else {
            out = 0;
        }
        break;
    default:
        out = out + 1;
        break;
    }
}
`
	f1 := mustParse(t, src)
	printed := ast.Print(f1)
	f2, err := ParseFile("rt.c", printed)
	if err != nil {
		t.Fatalf("re-parse of printed source failed: %v\n%s", err, printed)
	}
	if ast.Print(f2) != printed {
		t.Errorf("print/parse/print is not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s",
			printed, ast.Print(f2))
	}
}
