package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"wcet/internal/cc/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	l := New("test.c", src)
	toks, err := l.All()
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestKeywordsAndIdents(t *testing.T) {
	got := kinds(t, "int x; if (x) while_y = 1;")
	want := []token.Kind{
		token.KwInt, token.IDENT, token.SEMICOLON,
		token.KwIf, token.LPAREN, token.IDENT, token.RPAREN,
		token.IDENT, token.ASSIGN, token.INTLIT, token.SEMICOLON,
		token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestIntegerLiterals(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"42", 42},
		{"0", 0},
		{"0x2A", 42},
		{"0X2a", 42},
		{"052", 42},
		{"'a'", 97},
		{"'\\n'", 10},
		{"'\\0'", 0},
		{"65535", 65535},
		{"42u", 42},
		{"42UL", 42},
	}
	for _, c := range cases {
		l := New("t.c", c.src)
		tok, err := l.Next()
		if err != nil {
			t.Errorf("lex %q: %v", c.src, err)
			continue
		}
		if tok.Kind != token.INTLIT || tok.Val != c.want {
			t.Errorf("lex %q: got kind=%s val=%d, want INTLIT %d", c.src, tok.Kind, tok.Val, c.want)
		}
	}
}

func TestOperatorsLongestMatch(t *testing.T) {
	got := kinds(t, "a <<= b >> c <= d << e < f")
	want := []token.Kind{
		token.IDENT, token.SHLASSIGN, token.IDENT, token.SHR, token.IDENT,
		token.LE, token.IDENT, token.SHL, token.IDENT, token.LT, token.IDENT,
		token.EOF,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %s, want %s (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestPositions(t *testing.T) {
	l := New("f.c", "int\n  x;")
	tk, _ := l.Next()
	if tk.Pos.Line != 1 || tk.Pos.Col != 1 {
		t.Errorf("int at %v, want 1:1", tk.Pos)
	}
	tk, _ = l.Next()
	if tk.Pos.Line != 2 || tk.Pos.Col != 3 {
		t.Errorf("x at %v, want 2:3", tk.Pos)
	}
}

func TestCommentsSkippedButAnnotationsKept(t *testing.T) {
	l := New("t.c", "// line\n/* block */ int /*@ range 0 3 */ x;")
	toks, err := l.All()
	if err != nil {
		t.Fatal(err)
	}
	var sawAnn bool
	for _, tk := range toks {
		if tk.Kind == token.COMMENT {
			if !strings.HasPrefix(tk.Text, "/*@") {
				t.Errorf("non-annotation comment leaked: %q", tk.Text)
			}
			sawAnn = true
		}
	}
	if !sawAnn {
		t.Error("annotation comment was dropped")
	}
}

func TestPreprocessorLinesSkipped(t *testing.T) {
	got := kinds(t, "#include <stdio.h>\nint x;")
	want := []token.Kind{token.KwInt, token.IDENT, token.SEMICOLON, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestUnterminatedComment(t *testing.T) {
	l := New("t.c", "/* never closed")
	if _, err := l.All(); err == nil {
		t.Error("expected error for unterminated comment")
	}
}

func TestUnexpectedCharacter(t *testing.T) {
	l := New("t.c", "int x; @")
	if _, err := l.All(); err == nil {
		t.Error("expected error for @")
	}
}

// Property: any decimal literal round-trips through the lexer.
func TestQuickDecimalRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		l := New("q.c", strings.TrimSpace(" "+itoa(int64(v))))
		tok, err := l.Next()
		return err == nil && tok.Kind == token.INTLIT && tok.Val == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// Property: lexing is insensitive to extra interior whitespace between tokens.
func TestQuickWhitespaceInsensitive(t *testing.T) {
	f := func(nSpaces uint8) bool {
		sep := strings.Repeat(" ", int(nSpaces%8)+1)
		a := kindsNoErr("int" + sep + "x" + sep + "=" + sep + "1;")
		b := kindsNoErr("int x = 1;")
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func kindsNoErr(src string) []token.Kind {
	l := New("q.c", src)
	toks, err := l.All()
	if err != nil {
		return nil
	}
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}
