// Package lexer turns C-subset source text into a token stream.
//
// The lexer is hand written, keeps precise line/column positions, folds
// character constants into integer literals (as C does), and recognises the
// analyser's annotation comments (/*@ ... */) which stand in for the range
// annotations a production code generator would emit.
package lexer

import (
	"fmt"
	"strconv"
	"strings"

	"wcet/internal/cc/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans a source buffer.
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int

	// KeepComments controls whether comment tokens are emitted (annotation
	// comments /*@ ... */ are always emitted so the parser can attach them).
	KeepComments bool
}

// New returns a lexer over src; file is used in positions.
func New(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f'
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// Next returns the next token. At end of input it returns an EOF token
// forever. Lexical errors are returned alongside a best-effort token.
func (l *Lexer) Next() (token.Token, error) {
	for {
		// Skip whitespace.
		for l.off < len(l.src) && isSpace(l.peek()) {
			l.advance()
		}
		if l.off >= len(l.src) {
			return token.Token{Kind: token.EOF, Pos: l.pos()}, nil
		}
		start := l.pos()
		c := l.peek()

		// Comments and preprocessor-like lines.
		if c == '/' && l.peek2() == '/' {
			begin := l.off
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			if l.KeepComments {
				return token.Token{Kind: token.COMMENT, Text: l.src[begin:l.off], Pos: start}, nil
			}
			continue
		}
		if c == '/' && l.peek2() == '*' {
			begin := l.off
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			text := l.src[begin:l.off]
			if !closed {
				return token.Token{Kind: token.COMMENT, Text: text, Pos: start},
					&Error{Pos: start, Msg: "unterminated block comment"}
			}
			if l.KeepComments || strings.HasPrefix(text, "/*@") {
				return token.Token{Kind: token.COMMENT, Text: text, Pos: start}, nil
			}
			continue
		}
		if c == '#' && l.col == 1 {
			// Tolerate and skip preprocessor directives: the analyser works
			// on preprocessed (include-resolved) sources, but generated code
			// sometimes retains harmless #line markers.
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}

		switch {
		case isIdentStart(c):
			begin := l.off
			for l.off < len(l.src) && isIdentCont(l.peek()) {
				l.advance()
			}
			text := l.src[begin:l.off]
			if k, ok := token.Keywords[text]; ok {
				return token.Token{Kind: k, Text: text, Pos: start}, nil
			}
			return token.Token{Kind: token.IDENT, Text: text, Pos: start}, nil

		case isDigit(c):
			return l.lexNumber(start)

		case c == '\'':
			return l.lexCharConst(start)
		}

		// Operators and punctuation.
		return l.lexOperator(start)
	}
}

func (l *Lexer) lexNumber(start token.Pos) (token.Token, error) {
	begin := l.off
	base := 10
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		base = 16
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
	} else {
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if strings.HasPrefix(l.src[begin:l.off], "0") && l.off-begin > 1 {
			base = 8
		}
	}
	text := l.src[begin:l.off]
	// Swallow integer suffixes (u, U, l, L combinations).
	for l.off < len(l.src) {
		switch l.peek() {
		case 'u', 'U', 'l', 'L':
			l.advance()
		default:
			goto done
		}
	}
done:
	digits := text
	if base == 16 {
		digits = text[2:]
	} else if base == 8 {
		digits = text[1:]
		if digits == "" {
			digits = "0"
		}
	}
	v, err := strconv.ParseInt(digits, base, 64)
	if err != nil {
		// Try unsigned 64-bit before giving up.
		if u, uerr := strconv.ParseUint(digits, base, 64); uerr == nil {
			v = int64(u)
			err = nil
		}
	}
	tok := token.Token{Kind: token.INTLIT, Text: l.src[begin:l.off], Pos: start, Val: v}
	if err != nil {
		return tok, &Error{Pos: start, Msg: fmt.Sprintf("bad integer literal %q", text)}
	}
	return tok, nil
}

func (l *Lexer) lexCharConst(start token.Pos) (token.Token, error) {
	begin := l.off
	l.advance() // opening quote
	if l.off >= len(l.src) {
		return token.Token{Kind: token.INTLIT, Pos: start}, &Error{Pos: start, Msg: "unterminated character constant"}
	}
	var v int64
	c := l.advance()
	if c == '\\' {
		if l.off >= len(l.src) {
			return token.Token{Kind: token.INTLIT, Pos: start}, &Error{Pos: start, Msg: "unterminated escape"}
		}
		e := l.advance()
		switch e {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case 'r':
			v = '\r'
		case '0':
			v = 0
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		default:
			return token.Token{Kind: token.INTLIT, Pos: start},
				&Error{Pos: start, Msg: fmt.Sprintf("unsupported escape \\%c", e)}
		}
	} else {
		v = int64(c)
	}
	if l.off >= len(l.src) || l.peek() != '\'' {
		return token.Token{Kind: token.INTLIT, Pos: start, Val: v},
			&Error{Pos: start, Msg: "unterminated character constant"}
	}
	l.advance()
	return token.Token{Kind: token.INTLIT, Text: l.src[begin:l.off], Pos: start, Val: v}, nil
}

// three-, two- and one-character operators, longest match first.
var operators = []struct {
	text string
	kind token.Kind
}{
	{"<<=", token.SHLASSIGN},
	{">>=", token.SHRASSIGN},
	{"<<", token.SHL},
	{">>", token.SHR},
	{"<=", token.LE},
	{">=", token.GE},
	{"==", token.EQ},
	{"!=", token.NE},
	{"&&", token.LAND},
	{"||", token.LOR},
	{"+=", token.ADDASSIGN},
	{"-=", token.SUBASSIGN},
	{"*=", token.MULASSIGN},
	{"/=", token.DIVASSIGN},
	{"%=", token.MODASSIGN},
	{"&=", token.ANDASSIGN},
	{"|=", token.ORASSIGN},
	{"^=", token.XORASSIGN},
	{"++", token.INC},
	{"--", token.DEC},
	{"(", token.LPAREN},
	{")", token.RPAREN},
	{"{", token.LBRACE},
	{"}", token.RBRACE},
	{"[", token.LBRACKET},
	{"]", token.RBRACKET},
	{";", token.SEMICOLON},
	{",", token.COMMA},
	{":", token.COLON},
	{"?", token.QUESTION},
	{"=", token.ASSIGN},
	{"+", token.PLUS},
	{"-", token.MINUS},
	{"*", token.STAR},
	{"/", token.SLASH},
	{"%", token.PERCENT},
	{"&", token.AMP},
	{"|", token.PIPE},
	{"^", token.CARET},
	{"~", token.TILDE},
	{"!", token.BANG},
	{"<", token.LT},
	{">", token.GT},
}

func (l *Lexer) lexOperator(start token.Pos) (token.Token, error) {
	rest := l.src[l.off:]
	for _, op := range operators {
		if strings.HasPrefix(rest, op.text) {
			for range op.text {
				l.advance()
			}
			return token.Token{Kind: op.kind, Text: op.text, Pos: start}, nil
		}
	}
	c := l.advance()
	return token.Token{Kind: token.EOF, Pos: start},
		&Error{Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
}

// All lexes the entire input, returning tokens up to and including EOF.
func (l *Lexer) All() ([]token.Token, error) {
	var toks []token.Token
	for {
		t, err := l.Next()
		if err != nil {
			return toks, err
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, nil
		}
	}
}
