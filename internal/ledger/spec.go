package ledger

// Spec is the serializable analysis description a coordinator ships to
// its worker processes. It carries the source text plus every
// deterministic option — explicitly, field by field, because the Options
// tree holds func-typed and pointer fields (GA hooks, observer, order
// book, cost model) that cannot cross a process boundary. SpecFor rejects
// options that set any of those: a distributed run supports exactly the
// options whose identity the journal fingerprint can pin. A reflection
// test keeps this file honest when option structs grow fields.

import (
	"fmt"
	"time"

	"wcet/internal/core"
	"wcet/internal/faults"
	"wcet/internal/ga"
	"wcet/internal/mc"
	"wcet/internal/retry"
	"wcet/internal/sim"
	"wcet/internal/testgen"
)

// Spec describes one analysis, completely and serializably.
type Spec struct {
	// Source is the full C translation unit; FuncName selects the analysed
	// function ("" = first).
	Source   string
	FuncName string

	Bound         int64
	Exhaustive    bool
	MaxExhaustive int
	MCTimeout     time.Duration
	// Workers is the per-process pipeline fan-out each worker uses
	// (0 = one per CPU). Results are worker-count invariant.
	Workers int

	GA struct {
		Pop, MaxGens, Stagnation, Tournament int
		MutRate, CrossRate                   float64
		Seed                                 int64
		MaxEvaluations                       int
	}
	SkipGA, SkipMC bool
	MC             struct {
		MaxSteps, MaxStates, MaxNodes int
		Timeout                       time.Duration
		NoSlice, NoReorder, NoPool    bool
	}
	RetryMaxAttempts  int
	RetryBackoffBase  int
	FailoverMaxStates int
	MaxInstructions   int64

	// Faults arms deterministic fault injection inside every worker — the
	// chaos suites' lever. Empty for production runs.
	Faults []FaultRule
}

// FaultRule is the serializable form of a faults.Rule (whose Err field is
// an error value and cannot cross a process boundary — injected failures
// surface as generic infrastructure errors).
type FaultRule struct {
	// Site names the injection point (e.g. "testgen.mc"); Index selects
	// one call (-1 = all).
	Site  string
	Index int
	// Mode is "fail", "panic" or "stall".
	Mode string
	// Delay is the stall duration (stall mode only; 0 = the injector's
	// default).
	Delay time.Duration
	// MaxFires bounds how often the rule fires (0 = always) — transient
	// faults heal after MaxFires, exercising the retry path.
	MaxFires int
}

// rules maps the spec's serialized fault rules back to injector rules.
func (s *Spec) rules() []faults.Rule {
	out := make([]faults.Rule, len(s.Faults))
	for i, fr := range s.Faults {
		r := faults.Rule{Site: fr.Site, Index: fr.Index, Delay: fr.Delay, MaxFires: fr.MaxFires}
		switch fr.Mode {
		case "panic":
			r.Mode = faults.Panic
		case "stall":
			r.Mode = faults.Stall
		default:
			r.Mode = faults.Fail
		}
		out[i] = r
	}
	return out
}

// SpecFor builds the spec for analysing src under opt, rejecting options
// a worker process cannot reconstruct: runtime hooks (GA Stop/OnTrace),
// non-serializable state (order book, custom cost model, verdict cache),
// and run-scoped objects (journal, observer) that the coordinator owns.
func SpecFor(src string, opt core.Options) (Spec, error) {
	var zero Spec
	switch {
	case opt.TestGen.GA.Stop != nil || opt.TestGen.GA.OnTrace != nil || opt.TestGen.GA.Obs != nil:
		return zero, fmt.Errorf("ledger: GA hooks (Stop/OnTrace/Obs) cannot cross a process boundary")
	case opt.TestGen.MC.Orders != nil:
		return zero, fmt.Errorf("ledger: a learned-order book is in-process state; distributed runs cannot share one")
	case len(opt.TestGen.Base) != 0:
		return zero, fmt.Errorf("ledger: a base environment binds AST declarations; distributed runs do not support one")
	case opt.SimOptions.Costs != nil:
		return zero, fmt.Errorf("ledger: a custom cost model is not serializable; distributed runs use the default")
	case opt.Cache != nil:
		return zero, fmt.Errorf("ledger: the verdict cache is not supported in distributed mode (the journal is the shared store)")
	case opt.Journal != nil:
		return zero, fmt.Errorf("ledger: set Config.JournalPath, not Options.Journal — the coordinator owns the canonical journal")
	}
	s := Spec{
		Source:            src,
		FuncName:          opt.FuncName,
		Bound:             opt.Bound,
		Exhaustive:        opt.Exhaustive,
		MaxExhaustive:     opt.MaxExhaustive,
		MCTimeout:         opt.MCTimeout,
		Workers:           opt.Workers,
		SkipGA:            opt.TestGen.SkipGA,
		SkipMC:            opt.TestGen.SkipMC,
		RetryMaxAttempts:  opt.TestGen.Retry.MaxAttempts,
		RetryBackoffBase:  opt.TestGen.Retry.BackoffBase,
		FailoverMaxStates: opt.TestGen.FailoverMaxStates,
		MaxInstructions:   opt.SimOptions.MaxInstructions,
	}
	g := opt.TestGen.GA
	s.GA.Pop, s.GA.MaxGens, s.GA.Stagnation, s.GA.Tournament = g.Pop, g.MaxGens, g.Stagnation, g.Tournament
	s.GA.MutRate, s.GA.CrossRate = g.MutRate, g.CrossRate
	s.GA.Seed, s.GA.MaxEvaluations = g.Seed, g.MaxEvaluations
	m := opt.TestGen.MC
	s.MC.MaxSteps, s.MC.MaxStates, s.MC.MaxNodes = m.MaxSteps, m.MaxStates, m.MaxNodes
	s.MC.Timeout = m.Timeout
	s.MC.NoSlice, s.MC.NoReorder, s.MC.NoPool = m.NoSlice, m.NoReorder, m.NoPool
	return s, nil
}

// Options reconstructs the analysis options the spec describes. The
// coordinator and every worker call this, so all of them compute the same
// journal fingerprint.
func (s *Spec) Options() core.Options {
	return core.Options{
		FuncName:      s.FuncName,
		Bound:         s.Bound,
		Exhaustive:    s.Exhaustive,
		MaxExhaustive: s.MaxExhaustive,
		MCTimeout:     s.MCTimeout,
		Workers:       s.Workers,
		SimOptions:    sim.Options{MaxInstructions: s.MaxInstructions},
		TestGen: testgen.Config{
			GA: ga.Config{
				Pop: s.GA.Pop, MaxGens: s.GA.MaxGens, Stagnation: s.GA.Stagnation,
				Tournament: s.GA.Tournament, MutRate: s.GA.MutRate, CrossRate: s.GA.CrossRate,
				Seed: s.GA.Seed, MaxEvaluations: s.GA.MaxEvaluations,
			},
			SkipGA: s.SkipGA,
			SkipMC: s.SkipMC,
			MC: mc.Options{
				MaxSteps: s.MC.MaxSteps, MaxStates: s.MC.MaxStates, MaxNodes: s.MC.MaxNodes,
				Timeout: s.MC.Timeout, NoSlice: s.MC.NoSlice, NoReorder: s.MC.NoReorder,
				NoPool: s.MC.NoPool,
			},
			Retry:             retry.Policy{MaxAttempts: s.RetryMaxAttempts, BackoffBase: s.RetryBackoffBase},
			FailoverMaxStates: s.FailoverMaxStates,
		},
	}
}
