package ledger

import (
	"fmt"
	"sort"

	"wcet/internal/journal"
)

// Merge folds a worker journal's records for the given keys into the
// canonical journal, first write wins: keys the canonical journal already
// holds are skipped, so merging is idempotent and — because every record
// is a pure function of (program, fingerprint, key) — commutative across
// merge orders and duplicated work. Keys are merged in sorted order and
// completion records are fsynced (journal.SetSync), making the canonical
// file's bytes a deterministic function of the record *set*, not of which
// worker finished first. Returns the number of records merged.
//
// The worker journal is read lock-free (journal.ReadFile): the usual
// caller is harvesting a journal whose writer is dead, and a torn final
// frame simply truncates the snapshot at the last intact record.
func Merge(dst *journal.Journal, workerJournal string, keys []string) (int, error) {
	records, fp, err := journal.ReadFile(workerJournal)
	if err != nil {
		return 0, fmt.Errorf("ledger: read worker journal: %w", err)
	}
	if want, ok := dst.Fingerprint(); ok && fp != "" && fp != want {
		return 0, fmt.Errorf("ledger: worker journal %s has fingerprint %s, canonical has %s",
			workerJournal, short(fp), short(want))
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	dst.SetSync(true)
	defer dst.SetSync(false)
	merged := 0
	for _, k := range sorted {
		val, ok := records[k]
		if !ok || dst.Has(k) {
			continue
		}
		if err := dst.Put(k, val); err != nil {
			return merged, fmt.Errorf("ledger: merge %q: %w", k, err)
		}
		merged++
	}
	return merged, nil
}
