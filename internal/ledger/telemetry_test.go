package ledger

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wcet/internal/journal"
	"wcet/internal/obs"
)

func TestReadFleetAggregatesSidecars(t *testing.T) {
	dir := t.TempDir()
	write := func(id string, done, total int) {
		path := filepath.Join(dir, id+".telem.json")
		if err := obs.WriteTelemetry(path, &obs.Telemetry{
			ID: id, Seq: 1, Done: done, Total: total, Appended: done,
		}); err != nil {
			t.Fatal(err)
		}
	}
	write("worker-1-r001-w01", 3, 5)
	write("worker-1-r001-w00", 5, 5)
	// A torn sidecar (mid-rename crash artifact) is skipped, not fatal.
	os.WriteFile(filepath.Join(dir, "worker-1-r001-w02.telem.json"), []byte("{\"id\":"), 0o644)

	fleet := ReadFleet(dir)
	if len(fleet) != 2 {
		t.Fatalf("fleet = %+v, want 2 workers (torn sidecar skipped)", fleet)
	}
	// Sorted by sidecar path: w00 before w01.
	if fleet[0].ID != "worker-1-r001-w00" || fleet[1].ID != "worker-1-r001-w01" {
		t.Errorf("fleet order = [%s, %s]", fleet[0].ID, fleet[1].ID)
	}
	if fleet[1].Done != 3 || fleet[1].Total != 5 || fleet[1].Appended != 3 {
		t.Errorf("worker row = %+v", fleet[1])
	}
	if fleet[0].AgeMS < 0 || fleet[0].AgeMS > 60_000 {
		t.Errorf("AgeMS = %d, want a recent age", fleet[0].AgeMS)
	}
}

func TestReadFleetEmptyDir(t *testing.T) {
	if fleet := ReadFleet(t.TempDir()); len(fleet) != 0 {
		t.Errorf("fleet of empty dir = %+v", fleet)
	}
}

// TestReadFleetRemoteHarvesterSidecars covers the sidecar states a
// machine-spanning run produces: the remote launcher forwards agent-side
// snapshots as raw bytes, so a partition leaves a *stale* sidecar, a
// never-connected stream leaves an *absent* one, and wire damage that
// slipped through leaves a *torn* one. ReadFleet must aggregate the
// survivors, skip the damage, and surface staleness as age — never panic,
// never invent liveness.
func TestReadFleetRemoteHarvesterSidecars(t *testing.T) {
	dir := t.TempDir()
	// A healthy forwarded snapshot.
	if err := obs.WriteTelemetry(filepath.Join(dir, "worker-9-r001-w00.telem.json"),
		&obs.Telemetry{ID: "worker-9-r001-w00", Seq: 7, Done: 2, Total: 4, Appended: 2}); err != nil {
		t.Fatal(err)
	}
	// A stale one: the stream died mid-run and nothing has refreshed it.
	stalePath := filepath.Join(dir, "worker-9-r001-w01.telem.json")
	if err := obs.WriteTelemetry(stalePath,
		&obs.Telemetry{ID: "worker-9-r001-w01", Seq: 3, Done: 1, Total: 4, Appended: 1}); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Minute)
	if err := os.Chtimes(stalePath, old, old); err != nil {
		t.Fatal(err)
	}
	// Torn forwards: truncated JSON, empty file, binary garbage. The
	// remote harvester writes temp+rename so these should not happen, but
	// an agent-side crash mid-snapshot can still ship a torn payload.
	os.WriteFile(filepath.Join(dir, "worker-9-r001-w02.telem.json"), []byte(`{"id":"worker-9-r`), 0o644)
	os.WriteFile(filepath.Join(dir, "worker-9-r001-w03.telem.json"), nil, 0o644)
	os.WriteFile(filepath.Join(dir, "worker-9-r001-w04.telem.json"), []byte{0x00, 0xff, 0x13}, 0o644)
	// w05 is absent entirely: leased, but its stream never connected.

	fleet := ReadFleet(dir)
	if len(fleet) != 2 {
		t.Fatalf("fleet = %+v, want exactly the 2 intact sidecars", fleet)
	}
	if fleet[0].ID != "worker-9-r001-w00" || fleet[1].ID != "worker-9-r001-w01" {
		t.Errorf("fleet order = [%s, %s]", fleet[0].ID, fleet[1].ID)
	}
	if fleet[1].AgeMS < 60_000 {
		t.Errorf("stale sidecar AgeMS = %d, want >= 60000 — staleness must be visible, not papered over", fleet[1].AgeMS)
	}
}

// TestFreshSidecarNeverExtendsLease pins the liveness asymmetry for
// remote-harvested sidecars: telemetry can only ever *shorten* a lease.
// A worker whose journal stops growing must die at the LeaseTicks clock
// even while a (torn, but constantly refreshed) sidecar keeps a recent
// mtime — a chattering-but-stuck remote stream must not keep its lease
// alive.
func TestFreshSidecarNeverExtendsLease(t *testing.T) {
	dir := t.TempDir()
	j, err := journal.Open(filepath.Join(dir, "run.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	h := &stuckHandle{killed: make(chan struct{})}
	l := &lease{
		id:        "worker-test-r001-w00",
		keys:      []string{"tg/a"},
		journal:   filepath.Join(dir, "w.journal"),
		telemetry: filepath.Join(dir, "w.telem.json"),
		handle:    h,
	}
	// A torn sidecar that stays fresh: rewrite garbage on every tick, the
	// way a half-partitioned remote stream might.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				os.WriteFile(l.telemetry, []byte(`{"id":`), 0o644)
			}
		}
	}()

	cfg := Config{
		PollInterval:     time.Millisecond,
		LeaseTicks:       30,
		HeartbeatTimeout: time.Hour, // the heartbeat must not be what fires
	}.withDefaults()
	fatal := map[string]int{}
	res := &Result{}
	done := make(chan error, 1)
	go func() {
		done <- pollRound(context.Background(), j, []*lease{l}, cfg, fatal,
			map[string][]string{}, res)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pollRound never killed the stuck worker — the fresh sidecar extended its lease")
	}
	select {
	case <-h.killed:
	default:
		t.Error("worker was never killed")
	}
	if fatal["tg/a"] != 1 || res.Reclaimed != 1 {
		t.Errorf("fatal=%v reclaimed=%d, want the unit reclaimed exactly once", fatal, res.Reclaimed)
	}
}

// stuckHandle models a worker that never exits on its own but dies
// immediately when killed.
type stuckHandle struct {
	killed chan struct{}
}

func (h *stuckHandle) Done() (bool, error) {
	select {
	case <-h.killed:
		return true, os.ErrDeadlineExceeded
	default:
		return false, nil
	}
}

func (h *stuckHandle) Kill() {
	select {
	case <-h.killed:
	default:
		close(h.killed)
	}
}

// TestHeartbeatKillsStaleWorker: a worker whose telemetry sidecar has
// gone stale past HeartbeatTimeout is killed by pollRound well before the
// journal-growth lease (LeaseTicks) would expire — the sidecar is a
// secondary liveness signal that only ever shortens a lease.
func TestHeartbeatKillsStaleWorker(t *testing.T) {
	dir := t.TempDir()
	j, err := journal.Open(filepath.Join(dir, "run.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	l := &lease{
		id:        "worker-test-r001-w00",
		keys:      []string{"tg/poison"},
		journal:   filepath.Join(dir, "w.journal"),
		telemetry: filepath.Join(dir, "w.telem.json"),
		handle:    &stuckHandle{killed: make(chan struct{})},
	}
	// The worker wrote telemetry once (with a flight dump), then froze:
	// age the sidecar past the heartbeat timeout.
	if err := obs.WriteTelemetry(l.telemetry, &obs.Telemetry{
		ID: l.id, Seq: 1, Total: 1,
		Flight: []string{"+0.001s #1 stage.start stage=testgen"},
	}); err != nil {
		t.Fatal(err)
	}
	stale := time.Now().Add(-time.Minute)
	if err := os.Chtimes(l.telemetry, stale, stale); err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		PollInterval:     time.Millisecond,
		LeaseTicks:       1_000_000, // journal clock effectively disabled
		HeartbeatTimeout: 50 * time.Millisecond,
	}.withDefaults()
	fatal := map[string]int{}
	postmortem := map[string][]string{}
	res := &Result{}

	start := time.Now()
	if err := pollRound(context.Background(), j, []*lease{l}, cfg, fatal, postmortem, res); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("heartbeat kill took %v — lease clock must not have been the trigger", elapsed)
	}
	if fatal["tg/poison"] != 1 {
		t.Errorf("fatal = %v, want one death for tg/poison", fatal)
	}
	if res.Reclaimed != 1 {
		t.Errorf("Reclaimed = %d, want 1", res.Reclaimed)
	}
	// The dead worker's flight dump was harvested into the post-mortem
	// stash before the sidecar was cleaned up.
	if len(postmortem["tg/poison"]) == 0 {
		t.Error("postmortem empty: sidecar flight not harvested")
	}
	if _, err := os.Stat(l.telemetry); !os.IsNotExist(err) {
		t.Error("settled lease left its telemetry sidecar behind")
	}
}

// TestHeartbeatAbsentSidecarDoesNotKill: a worker that has never written
// telemetry (ProcLauncher crash before the first snapshot, or telemetry
// disabled) must not be heartbeat-killed — only the journal-growth lease
// applies.
func TestHeartbeatAbsentSidecarDoesNotKill(t *testing.T) {
	dir := t.TempDir()
	j, err := journal.Open(filepath.Join(dir, "run.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	h := &stuckHandle{killed: make(chan struct{})}
	l := &lease{
		id:        "worker-test-r001-w00",
		keys:      []string{"tg/a"},
		journal:   filepath.Join(dir, "w.journal"),
		telemetry: filepath.Join(dir, "w.telem.json"), // never written
		handle:    h,
	}
	cfg := Config{
		PollInterval:     time.Millisecond,
		LeaseTicks:       40, // the journal clock is what must fire
		HeartbeatTimeout: 5 * time.Millisecond,
	}.withDefaults()

	if err := pollRound(context.Background(), j, []*lease{l}, cfg, map[string]int{},
		map[string][]string{}, &Result{}); err != nil {
		t.Fatal(err)
	}
	// The worker was killed — but only after the lease expired, which
	// takes at least LeaseTicks polls; a heartbeat kill would have fired
	// within ~HeartbeatTimeout. We can't time-assert robustly, so assert
	// the observable contract: the kill happened (pollRound returned) and
	// nothing crashed on the absent sidecar.
	select {
	case <-h.killed:
	default:
		t.Error("worker was never killed")
	}
}
