package ledger

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wcet/internal/journal"
	"wcet/internal/obs"
)

func TestReadFleetAggregatesSidecars(t *testing.T) {
	dir := t.TempDir()
	write := func(id string, done, total int) {
		path := filepath.Join(dir, id+".telem.json")
		if err := obs.WriteTelemetry(path, &obs.Telemetry{
			ID: id, Seq: 1, Done: done, Total: total, Appended: done,
		}); err != nil {
			t.Fatal(err)
		}
	}
	write("worker-1-r001-w01", 3, 5)
	write("worker-1-r001-w00", 5, 5)
	// A torn sidecar (mid-rename crash artifact) is skipped, not fatal.
	os.WriteFile(filepath.Join(dir, "worker-1-r001-w02.telem.json"), []byte("{\"id\":"), 0o644)

	fleet := ReadFleet(dir)
	if len(fleet) != 2 {
		t.Fatalf("fleet = %+v, want 2 workers (torn sidecar skipped)", fleet)
	}
	// Sorted by sidecar path: w00 before w01.
	if fleet[0].ID != "worker-1-r001-w00" || fleet[1].ID != "worker-1-r001-w01" {
		t.Errorf("fleet order = [%s, %s]", fleet[0].ID, fleet[1].ID)
	}
	if fleet[1].Done != 3 || fleet[1].Total != 5 || fleet[1].Appended != 3 {
		t.Errorf("worker row = %+v", fleet[1])
	}
	if fleet[0].AgeMS < 0 || fleet[0].AgeMS > 60_000 {
		t.Errorf("AgeMS = %d, want a recent age", fleet[0].AgeMS)
	}
}

func TestReadFleetEmptyDir(t *testing.T) {
	if fleet := ReadFleet(t.TempDir()); len(fleet) != 0 {
		t.Errorf("fleet of empty dir = %+v", fleet)
	}
}

// stuckHandle models a worker that never exits on its own but dies
// immediately when killed.
type stuckHandle struct {
	killed chan struct{}
}

func (h *stuckHandle) Done() (bool, error) {
	select {
	case <-h.killed:
		return true, os.ErrDeadlineExceeded
	default:
		return false, nil
	}
}

func (h *stuckHandle) Kill() {
	select {
	case <-h.killed:
	default:
		close(h.killed)
	}
}

// TestHeartbeatKillsStaleWorker: a worker whose telemetry sidecar has
// gone stale past HeartbeatTimeout is killed by pollRound well before the
// journal-growth lease (LeaseTicks) would expire — the sidecar is a
// secondary liveness signal that only ever shortens a lease.
func TestHeartbeatKillsStaleWorker(t *testing.T) {
	dir := t.TempDir()
	j, err := journal.Open(filepath.Join(dir, "run.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	l := &lease{
		id:        "worker-test-r001-w00",
		keys:      []string{"tg/poison"},
		journal:   filepath.Join(dir, "w.journal"),
		telemetry: filepath.Join(dir, "w.telem.json"),
		handle:    &stuckHandle{killed: make(chan struct{})},
	}
	// The worker wrote telemetry once (with a flight dump), then froze:
	// age the sidecar past the heartbeat timeout.
	if err := obs.WriteTelemetry(l.telemetry, &obs.Telemetry{
		ID: l.id, Seq: 1, Total: 1,
		Flight: []string{"+0.001s #1 stage.start stage=testgen"},
	}); err != nil {
		t.Fatal(err)
	}
	stale := time.Now().Add(-time.Minute)
	if err := os.Chtimes(l.telemetry, stale, stale); err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		PollInterval:     time.Millisecond,
		LeaseTicks:       1_000_000, // journal clock effectively disabled
		HeartbeatTimeout: 50 * time.Millisecond,
	}.withDefaults()
	fatal := map[string]int{}
	postmortem := map[string][]string{}
	res := &Result{}

	start := time.Now()
	if err := pollRound(context.Background(), j, []*lease{l}, cfg, fatal, postmortem, res); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("heartbeat kill took %v — lease clock must not have been the trigger", elapsed)
	}
	if fatal["tg/poison"] != 1 {
		t.Errorf("fatal = %v, want one death for tg/poison", fatal)
	}
	if res.Reclaimed != 1 {
		t.Errorf("Reclaimed = %d, want 1", res.Reclaimed)
	}
	// The dead worker's flight dump was harvested into the post-mortem
	// stash before the sidecar was cleaned up.
	if len(postmortem["tg/poison"]) == 0 {
		t.Error("postmortem empty: sidecar flight not harvested")
	}
	if _, err := os.Stat(l.telemetry); !os.IsNotExist(err) {
		t.Error("settled lease left its telemetry sidecar behind")
	}
}

// TestHeartbeatAbsentSidecarDoesNotKill: a worker that has never written
// telemetry (ProcLauncher crash before the first snapshot, or telemetry
// disabled) must not be heartbeat-killed — only the journal-growth lease
// applies.
func TestHeartbeatAbsentSidecarDoesNotKill(t *testing.T) {
	dir := t.TempDir()
	j, err := journal.Open(filepath.Join(dir, "run.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	h := &stuckHandle{killed: make(chan struct{})}
	l := &lease{
		id:        "worker-test-r001-w00",
		keys:      []string{"tg/a"},
		journal:   filepath.Join(dir, "w.journal"),
		telemetry: filepath.Join(dir, "w.telem.json"), // never written
		handle:    h,
	}
	cfg := Config{
		PollInterval:     time.Millisecond,
		LeaseTicks:       40, // the journal clock is what must fire
		HeartbeatTimeout: 5 * time.Millisecond,
	}.withDefaults()

	if err := pollRound(context.Background(), j, []*lease{l}, cfg, map[string]int{},
		map[string][]string{}, &Result{}); err != nil {
		t.Fatal(err)
	}
	// The worker was killed — but only after the lease expired, which
	// takes at least LeaseTicks polls; a heartbeat kill would have fired
	// within ~HeartbeatTimeout. We can't time-assert robustly, so assert
	// the observable contract: the kill happened (pollRound returned) and
	// nothing crashed on the absent sidecar.
	select {
	case <-h.killed:
	default:
		t.Error("worker was never killed")
	}
}
