package ledger_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"wcet/internal/core"
	"wcet/internal/journal"
	"wcet/internal/ledger"
)

func distConfig(dir string) ledger.Config {
	return ledger.Config{
		JournalPath:  filepath.Join(dir, "run.journal"),
		Workers:      3,
		PollInterval: 2 * time.Millisecond,
		LeaseTicks:   200,
	}
}

// TestDistributedRunMatchesSingleProcess is the core determinism
// acceptance: a 3-worker distributed run must produce a report
// byte-identical to the single-process reference.
func TestDistributedRunMatchesSingleProcess(t *testing.T) {
	dir := t.TempDir()
	want, _, _ := referenceRun(t, dir)

	spec, err := ledger.SpecFor(stepSrc, stepOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ledger.Run(context.Background(), spec, distConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("healthy run quarantined %v", res.Quarantined)
	}
	if res.Rounds == 0 || res.Spawned == 0 {
		t.Errorf("distributed run did no distributed work (rounds=%d, spawned=%d)", res.Rounds, res.Spawned)
	}
	if got := canonicalBytes(t, res.Report); !bytes.Equal(got, want) {
		t.Errorf("distributed report differs from single-process reference:\n--- reference\n%s\n--- distributed\n%s", want, got)
	}
}

// TestDistributedRunSurvivesWorkerDeaths kills the first round's workers
// one durable append into their two-unit shards — a death mid-shard in
// every first-round worker. The run must reclaim the incomplete units,
// re-lease them solo, and still converge to the reference report with
// nothing quarantined (single deaths never reach the fatality threshold).
func TestDistributedRunSurvivesWorkerDeaths(t *testing.T) {
	dir := t.TempDir()
	want, _, _ := referenceRun(t, dir)

	var mu sync.Mutex
	killAfter := []int{1, 1} // appends before death, doled out to the first spawns
	launcher := &ledger.GoLauncher{
		Hook: func(_ string, kill func()) func(string, int) {
			mu.Lock()
			defer mu.Unlock()
			if len(killAfter) == 0 {
				return nil
			}
			n := killAfter[0]
			killAfter = killAfter[1:]
			return func(_ string, total int) {
				if total >= n {
					kill()
				}
			}
		},
	}

	spec, err := ledger.SpecFor(stepSrc, stepOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := distConfig(dir)
	cfg.Workers = 2 // four first-round units → two units per shard
	cfg.Launcher = launcher
	res, err := ledger.Run(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("single deaths must not quarantine, got %v", res.Quarantined)
	}
	if res.Reclaimed == 0 {
		t.Error("both first-round workers died mid-shard but nothing was reclaimed")
	}
	if got := canonicalBytes(t, res.Report); !bytes.Equal(got, want) {
		t.Errorf("report after worker deaths differs from reference:\n--- reference\n%s\n--- distributed\n%s", want, got)
	}
}

// TestDistributedCoordinatorRestartResumes models a coordinator crash:
// the first coordinator is cancelled mid-run (its workers are killed and
// harvested), a second coordinator reuses the same journal and work dir,
// and the final report still matches the reference — the canonical
// journal plus leftover worker journals carry all surviving progress.
func TestDistributedCoordinatorRestartResumes(t *testing.T) {
	dir := t.TempDir()
	want, _, _ := referenceRun(t, dir)
	spec, err := ledger.SpecFor(stepSrc, stepOptions())
	if err != nil {
		t.Fatal(err)
	}

	// First coordinator: cancel as soon as any worker journals a record.
	ctx, cancel := context.WithCancel(context.Background())
	cfg := distConfig(dir)
	cfg.Launcher = &ledger.GoLauncher{
		Hook: func(_ string, _ func()) func(string, int) {
			return func(_ string, _ int) { cancel() }
		},
	}
	if _, err := ledger.Run(ctx, spec, cfg); err == nil {
		t.Fatal("first coordinator finished despite cancellation")
	}

	// Second coordinator: fresh config, same journal path and work dir.
	res, err := ledger.Run(context.Background(), spec, distConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalBytes(t, res.Report); !bytes.Equal(got, want) {
		t.Errorf("restarted coordinator diverged from reference:\n--- reference\n%s\n--- restarted\n%s", want, got)
	}
	if res.Report.ResumedUnits == 0 {
		t.Error("restarted coordinator resumed nothing")
	}
	// The work dir must be clean: no worker journals or assignments left.
	for _, pat := range []string{"worker-*.journal", "worker-*.json"} {
		if m, _ := filepath.Glob(filepath.Join(dir, pat)); len(m) != 0 {
			t.Errorf("leftover work files after a clean finish: %v", m)
		}
	}
}

// TestDistributedQuarantineAfterRepeatedDeaths: a unit whose model-checker
// call stalls forever kills its worker through lease expiry every time it
// is leased. After MaxFatalities deaths it must be quarantined — recorded
// as an unresolved (unavailable) unit in the degradation ledger — instead
// of hanging the run, and with an input space too large to enumerate the
// report's soundness is BoundUnavailable.
func TestDistributedQuarantineAfterRepeatedDeaths(t *testing.T) {
	dir := t.TempDir()
	opt := stepOptions()
	opt.Exhaustive = false
	opt.MaxExhaustive = 10 // 63 vectors > 10: no exhaustive fallback possible
	opt.TestGen.SkipGA = true

	spec, err := ledger.SpecFor(stepSrc, opt)
	if err != nil {
		t.Fatal(err)
	}
	spec.Faults = []ledger.FaultRule{
		{Site: "testgen.mc", Index: 0, Mode: "stall", Delay: 30 * time.Second},
	}
	cfg := distConfig(dir)
	cfg.Workers = 2
	cfg.LeaseTicks = 10 // expire stalled leases after ~20ms
	cfg.MaxFatalities = 2

	res, err := ledger.Run(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 1 || !strings.HasPrefix(res.Quarantined[0], "tg/") {
		t.Fatalf("quarantined = %v, want exactly one tg/ unit", res.Quarantined)
	}
	if res.Reclaimed < 2 {
		t.Errorf("reclaimed = %d, want at least 2 (one per death of the poisoned unit)", res.Reclaimed)
	}
	if res.Report.Soundness != core.BoundUnavailable {
		t.Errorf("soundness = %v, want BoundUnavailable (quarantined unit, space not enumerable)", res.Report.Soundness)
	}
	found := false
	for _, d := range res.Report.Degradations {
		if strings.Contains(strings.ToLower(cause(d)), "quarantined") {
			found = true
			// The dead worker's flight recorder rides the quarantine record
			// into the degradation ledger: the post-mortem names the last
			// events the worker saw before its death.
			if len(d.Flight) == 0 {
				t.Errorf("quarantined degradation carries no flight dump: %+v", d)
			}
		}
	}
	if !found {
		t.Errorf("no degradation attributes the quarantine; ledger: %+v", res.Report.Degradations)
	}
	// The .crash file next to the canonical journal holds the same dump.
	crash, err := os.ReadFile(filepath.Join(dir, "run.journal.crash"))
	if err != nil {
		t.Fatalf("no crash file written on quarantine: %v", err)
	}
	if !strings.Contains(string(crash), "wcet crash report") ||
		!strings.Contains(string(crash), res.Quarantined[0]) {
		t.Errorf("crash file does not name the quarantined unit:\n%s", crash)
	}

	// The canonical journal carries the quarantine record: a plain
	// single-process resume over it must see the same degraded state and
	// not hang on the poisoned unit.
	file, fn, g, err := core.Frontend(stepSrc, "step")
	if err != nil {
		t.Fatal(err)
	}
	j, err := journal.Open(filepath.Join(dir, "run.journal"))
	if err != nil {
		t.Fatal(err)
	}
	opt2 := opt
	opt2.Journal = j
	rep, err := core.AnalyzeGraphCtx(context.Background(), file, fn, g, opt2)
	j.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalBytes(t, rep), canonicalBytes(t, res.Report); !bytes.Equal(got, want) {
		t.Errorf("single-process resume over the quarantined journal diverged:\n--- distributed\n%s\n--- resume\n%s", want, got)
	}
}

func cause(d core.Degradation) string {
	if d.Cause == nil {
		return ""
	}
	return d.Cause.Error()
}
