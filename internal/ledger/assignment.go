package ledger

import (
	"encoding/json"
	"fmt"
	"os"
)

// Assignment is one worker's lease, written to disk as JSON: the units it
// owns, the private journal it must append to, and the full analysis spec
// so the worker is self-contained — a worker process needs nothing but
// the assignment path to do its job (which is what makes workers
// kill-anywhere: no in-memory handshake exists to lose).
type Assignment struct {
	// ID names the lease ("r003-w01") for logs and journal filenames.
	ID string
	// Fingerprint is the canonical journal's binding fingerprint; the
	// worker refuses the lease if its own option reconstruction disagrees
	// (a version-skewed binary would otherwise poison the merge).
	Fingerprint string
	// Keys are the unit keys this worker owns, in pipeline order.
	Keys []string
	// Journal is the worker's private journal path, pre-seeded by the
	// coordinator with a copy of the canonical records.
	Journal string
	// Telemetry, when non-empty, is the sidecar file the worker
	// periodically rewrites (temp+rename) with its live progress, registry
	// snapshot and flight recorder; TelemetryMS is the rewrite interval in
	// milliseconds (<= 0: the worker's default). The coordinator tails the
	// sidecars for fleet /status aggregation and as a secondary liveness
	// signal, and harvests the flight dump as a post-mortem on death.
	Telemetry   string `json:",omitempty"`
	TelemetryMS int    `json:",omitempty"`
	// Verbose routes the worker's progress stream to stderr, prefixed
	// with the worker id.
	Verbose bool `json:",omitempty"`
	// Spec is the complete analysis description.
	Spec Spec
}

// WriteAssignment persists a to path (atomically: temp file + rename, so
// a worker never reads a torn assignment).
func WriteAssignment(path string, a *Assignment) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("ledger: encode assignment: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadAssignment loads an assignment written by WriteAssignment.
func ReadAssignment(path string) (*Assignment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Assignment
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("ledger: decode assignment %s: %w", path, err)
	}
	if len(a.Keys) == 0 {
		return nil, fmt.Errorf("ledger: assignment %s leases no keys", path)
	}
	if a.Journal == "" {
		return nil, fmt.Errorf("ledger: assignment %s names no worker journal", path)
	}
	return &a, nil
}
