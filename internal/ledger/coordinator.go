package ledger

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"wcet/internal/core"
	"wcet/internal/journal"
	"wcet/internal/obs"
	"wcet/internal/testgen"
)

// maxRounds is a hard backstop against a livelocked protocol. Real runs
// terminate far earlier: every round either completes frontier units
// (merged records shrink the frontier) or records fatalities, and
// fatalities are capped per unit by quarantine.
const maxRounds = 1000

// runSeq makes lease ids unique across Run invocations within one
// process. The pid alone is not enough: a second Run from the same
// process would reuse "worker-<pid>-r001-w00", and lease ids must be
// globally unique per logical lease — remote agents treat a start request
// for a known id as a reconnect to the existing worker, so a collision
// would silently replay a previous run's worker instead of spawning one.
var runSeq atomic.Int64

// lease tracks one outstanding worker shard.
type lease struct {
	id         string
	keys       []string
	journal    string // the worker's private journal path
	assignment string
	telemetry  string // the worker's sidecar telemetry path
	handle     Handle
	lastSize   int64
	quiet      int // consecutive polls without journal growth
	settled    bool
}

// Run executes the analysis described by spec as a distributed run:
// coordinator in-process, workers via cfg.Launcher, canonical journal at
// cfg.JournalPath. It is crash-safe on both sides — workers can be killed
// at any instant, and a killed coordinator restarted with the same
// arguments harvests every surviving record and resumes from the
// frontier. See the package comment for the protocol.
func Run(ctx context.Context, spec Spec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.JournalPath == "" {
		return nil, fmt.Errorf("ledger: Config.JournalPath is required (the canonical journal is the ledger)")
	}
	opt := spec.Options()
	file, fn, g, err := core.Frontend(spec.Source, spec.FuncName)
	if err != nil {
		return nil, err
	}
	fp := core.FingerprintOf(file, fn, g, opt)

	// One open handle serves planning, merging and the final assembly: the
	// journal's advisory lock is per open file description, so a second
	// Open of the canonical path — even in this process — would fail.
	j, err := journal.Open(cfg.JournalPath)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	if _, err := j.Bind(fp); err != nil {
		return nil, err
	}

	workDir := cfg.WorkDir
	if workDir == "" {
		workDir = filepath.Dir(cfg.JournalPath)
	}
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return nil, err
	}

	res := &Result{}
	// A predecessor coordinator may have died with worker journals (and
	// even live orphan workers) on disk. Harvest everything that matches
	// our fingerprint before planning: those records are pure, so merging
	// them is exactly as good as having run the workers ourselves. Worker
	// journal names embed the coordinator pid and a per-process run
	// sequence, so our own spawns can never collide with a predecessor's
	// leftovers — not even a predecessor Run in this same process.
	if err := recoverWorkJournals(j, workDir, cfg, res); err != nil {
		return nil, err
	}

	// A launcher that can carry an observer gets the coordinator's:
	// GoLauncher workers publish their unit lifecycle to the same bus (so
	// /events sees them live), the remote launcher lands its remote.*
	// counters in the same registry. Launchers keep their own when set.
	if s, ok := cfg.Launcher.(interface{ SetObs(*obs.Observer) }); ok {
		s.SetObs(cfg.Obs)
	}

	seq := runSeq.Add(1)
	fatal := map[string]int{} // unit key -> worker deaths while leased and incomplete
	// postmortem stashes the flight-recorder dump harvested from a dead
	// worker's telemetry sidecar, per incomplete unit key, so a later
	// quarantine of that unit carries its last-events context.
	postmortem := map[string][]string{}

	for round := 1; ; round++ {
		if round > maxRounds {
			return nil, fmt.Errorf("ledger: no convergence after %d rounds (protocol livelock?)", maxRounds)
		}
		planOpt := opt
		planOpt.Journal = j
		fr, err := core.FrontierOf(file, fn, g, planOpt)
		if err != nil {
			return nil, err
		}
		if fr.Stage == core.StageDone {
			break
		}
		res.Rounds++
		cfg.Obs.Progressf("ledger: round %d: stage %s, %d unit(s) to lease", round, fr.Stage, len(fr.Keys))

		leases, err := startRound(ctx, j, spec, cfg, fp, workDir, seq, round, fr.Keys, fatal, res)
		if err != nil {
			killAll(leases)
			settleAll(j, leases, cfg, fatal, postmortem, res)
			return nil, err
		}
		if err := pollRound(ctx, j, leases, cfg, fatal, postmortem, res); err != nil {
			return nil, err
		}

		// Quarantine pass: a unit that was leased and incomplete across
		// MaxFatalities worker deaths is taken out of circulation with a
		// fabricated degraded record — for generation units. A measurement
		// unit cannot be dropped (its vector's cycle count is part of the
		// maxima), so it fails the run instead.
		for _, k := range sortedKeys(fatal) {
			if fatal[k] < cfg.MaxFatalities || j.Has(k) {
				continue
			}
			reason := fmt.Sprintf("quarantined: unit killed its worker %d time(s)", fatal[k])
			flight := postmortem[k]
			j.SetSync(true)
			err := testgen.Quarantine(j, k, reason, flight)
			j.SetSync(false)
			if err != nil {
				return nil, fmt.Errorf("ledger: unit %q killed its worker %d time(s) and %w", k, fatal[k], err)
			}
			res.Quarantined = append(res.Quarantined, k)
			cfg.Obs.CountV("ledger.units_quarantined", 1)
			cfg.Obs.Progressf("ledger: %s", reason+" ("+k+")")
			cfg.Obs.Emit(obs.BusEvent{Kind: obs.EvUnitQuarantined, Unit: k, Detail: reason})
			// The .crash file next to the canonical journal carries the dead
			// worker's flight dump — the post-mortem a human reads first.
			if werr := obs.WriteCrash(cfg.JournalPath+".crash", reason+" ("+k+")", flight); werr != nil {
				cfg.Obs.Progressf("ledger: crash dump: %v", werr)
			}
			delete(fatal, k)
		}
	}

	// Assembly: the canonical journal now holds every record the pipeline
	// needs, so this is a pure replay — byte-identical to a single-process
	// run over the same record set.
	opt.Journal = j
	opt.Obs = cfg.Obs
	rep, err := core.AnalyzeGraphCtx(ctx, file, fn, g, opt)
	if err != nil {
		return nil, err
	}
	res.Report = rep
	sort.Strings(res.Quarantined)
	return res, nil
}

// startRound shards the frontier keys and launches one worker per shard.
// Suspect units (at least one prior fatality) are leased solo and first,
// so a repeat death attributes to exactly one unit; clean units are split
// into contiguous chunks across cfg.Workers processes.
func startRound(ctx context.Context, j *journal.Journal, spec Spec, cfg Config, fp, workDir string, seq int64, round int, keys []string, fatal map[string]int, res *Result) ([]*lease, error) {
	var suspects, clean []string
	for _, k := range keys {
		if fatal[k] > 0 {
			suspects = append(suspects, k)
		} else {
			clean = append(clean, k)
		}
	}
	var shards [][]string
	for _, k := range suspects {
		shards = append(shards, []string{k})
	}
	if n := len(clean); n > 0 {
		w := cfg.Workers
		if w > n {
			w = n
		}
		for i := 0; i < w; i++ {
			lo, hi := i*n/w, (i+1)*n/w
			shards = append(shards, clean[lo:hi])
		}
	}

	// Every worker journal starts as a copy of the canonical journal, so
	// prior-stage records replay inside the worker instead of recomputing.
	seed, err := os.ReadFile(cfg.JournalPath)
	if err != nil {
		return nil, err
	}

	var leases []*lease
	for i, shard := range shards {
		id := fmt.Sprintf("worker-%d-%d-r%03d-w%02d", os.Getpid(), seq, round, i)
		l := &lease{
			id:         id,
			keys:       shard,
			journal:    filepath.Join(workDir, id+".journal"),
			assignment: filepath.Join(workDir, id+".json"),
			telemetry:  filepath.Join(workDir, id+".telem.json"),
		}
		if err := os.WriteFile(l.journal, seed, 0o644); err != nil {
			return leases, err
		}
		os.Remove(l.telemetry) // no stale heartbeat may vouch for a new worker
		a := &Assignment{ID: id, Fingerprint: fp, Keys: shard, Journal: l.journal,
			Telemetry:   l.telemetry,
			TelemetryMS: int(cfg.TelemetryInterval / time.Millisecond),
			Verbose:     cfg.WorkerVerbose,
			Spec:        spec}
		if err := WriteAssignment(l.assignment, a); err != nil {
			return leases, err
		}
		h, err := cfg.Launcher.Start(ctx, l.assignment)
		if err != nil {
			return leases, err
		}
		l.handle = h
		l.lastSize = int64(len(seed))
		leases = append(leases, l)
		res.Spawned++
		cfg.Obs.CountV("ledger.workers_spawned", 1)
		cfg.Obs.CountV("ledger.leases_granted", int64(len(shard)))
		cfg.Obs.Emit(obs.BusEvent{Kind: obs.EvWorkerSpawned, Worker: id,
			Detail: fmt.Sprintf("units=%d round=%d", len(shard), round)})
		for _, k := range shard {
			cfg.Obs.Emit(obs.BusEvent{Kind: obs.EvUnitLeased, Unit: k, Worker: id})
		}
	}
	return leases, nil
}

// pollRound watches the round's leases until every worker has exited and
// been settled. The lease clock is logical: a worker whose journal file
// does not grow for LeaseTicks consecutive polls is presumed wedged and
// killed; the kill surfaces as an ordinary death at the next poll.
func pollRound(ctx context.Context, j *journal.Journal, leases []*lease, cfg Config, fatal map[string]int, postmortem map[string][]string, res *Result) error {
	live := len(leases)
	for live > 0 {
		select {
		case <-ctx.Done():
			killAll(leases)
			settleAll(j, leases, cfg, fatal, postmortem, res)
			return ctx.Err()
		case <-time.After(cfg.PollInterval):
		}
		for _, l := range leases {
			if l.settled {
				continue
			}
			if done, werr := l.handle.Done(); done {
				settle(j, l, werr, cfg, fatal, postmortem, res)
				live--
				continue
			}
			if size := fileSize(l.journal); size != l.lastSize {
				l.lastSize, l.quiet = size, 0
			} else if l.quiet++; l.quiet >= cfg.LeaseTicks {
				cfg.Obs.Progressf("ledger: lease %s expired (%d quiet polls), killing worker", l.id, l.quiet)
				l.handle.Kill()
				l.quiet = 0 // await the exit; Kill is idempotent
			}
			// Secondary liveness: a worker that has written telemetry at
			// least once but then let the sidecar go stale past
			// HeartbeatTimeout is dead or wedged enough to kill early. This
			// only ever *shortens* a lease — the journal-growth clock above
			// stays the hard deadline, so a worker with no telemetry (or a
			// wedged one whose heartbeat goroutine still ticks) is still
			// bounded by LeaseTicks.
			if fi, err := os.Stat(l.telemetry); err == nil && time.Since(fi.ModTime()) > cfg.HeartbeatTimeout {
				cfg.Obs.Progressf("ledger: worker %s heartbeat lost (telemetry %s stale), killing worker",
					l.id, time.Since(fi.ModTime()).Round(time.Millisecond))
				l.handle.Kill()
			}
		}
	}
	return nil
}

// settle harvests one exited worker: merge every owned record the journal
// holds (up to the last intact frame), then account any owned unit still
// missing from the canonical journal as a fatality against that unit —
// whether the worker crashed, was killed, stalled out its lease, or even
// exited "cleanly" without finishing (that last case would otherwise
// livelock the round loop).
func settle(j *journal.Journal, l *lease, werr error, cfg Config, fatal map[string]int, postmortem map[string][]string, res *Result) {
	l.settled = true
	merged, err := Merge(j, l.journal, l.keys)
	if err != nil {
		cfg.Obs.Progressf("ledger: harvest %s: %v", l.id, err)
	}
	cfg.Obs.CountV("ledger.merged_records", int64(merged))
	// Harvest the sidecar before cleanup: a dead worker's last telemetry
	// snapshot carries its flight recorder — the only post-mortem that
	// survives a SIGKILL.
	var flight []string
	if telem, err := obs.ReadTelemetry(l.telemetry); err == nil && len(telem.Flight) > 0 {
		flight = telem.Flight
	}
	var incomplete []string
	for _, k := range l.keys {
		if !j.Has(k) {
			incomplete = append(incomplete, k)
		}
	}
	if len(incomplete) > 0 {
		for _, k := range incomplete {
			fatal[k]++
			if flight != nil {
				postmortem[k] = append([]string{fmt.Sprintf("worker %s died: %v", l.id, werr)}, flight...)
			}
		}
		res.Reclaimed += len(incomplete)
		cfg.Obs.CountV("ledger.leases_reclaimed", int64(len(incomplete)))
		cfg.Obs.Progressf("ledger: %s died (%v) with %d unit(s) incomplete; reclaimed",
			l.id, werr, len(incomplete))
	}
	cfg.Obs.Emit(obs.BusEvent{Kind: obs.EvWorkerExited, Worker: l.id,
		Detail: fmt.Sprintf("merged=%d incomplete=%d err=%v", merged, len(incomplete), werr)})
	os.Remove(l.journal)
	os.Remove(l.assignment)
	os.Remove(l.telemetry)
}

func killAll(leases []*lease) {
	for _, l := range leases {
		if !l.settled && l.handle != nil {
			l.handle.Kill()
		}
	}
}

// settleAll drains every unsettled lease on the abort path, waiting for
// each worker to actually exit so its journal tail is final.
func settleAll(j *journal.Journal, leases []*lease, cfg Config, fatal map[string]int, postmortem map[string][]string, res *Result) {
	for _, l := range leases {
		if l.settled || l.handle == nil {
			continue
		}
		for {
			if done, werr := l.handle.Done(); done {
				settle(j, l, werr, cfg, fatal, postmortem, res)
				break
			}
			time.Sleep(cfg.PollInterval)
		}
	}
}

// recoverWorkJournals harvests worker journals left behind by a dead
// coordinator: every record in a fingerprint-matching worker journal is
// merged first-write-wins, then the file (and its assignment) is removed.
// Orphan workers may still be appending to an unlinked file; that is
// harmless — their records are pure duplicates of work the new run will
// redo or has already merged, and their journal names embed the dead
// coordinator's pid so they can never collide with this run's spawns.
func recoverWorkJournals(j *journal.Journal, workDir string, cfg Config, res *Result) error {
	paths, err := filepath.Glob(filepath.Join(workDir, "worker-*.journal"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	want, _ := j.Fingerprint()
	for _, p := range paths {
		records, fp, err := journal.ReadFile(p)
		if err == nil && fp == want {
			keys := make([]string, 0, len(records))
			for k := range records {
				keys = append(keys, k)
			}
			merged, err := Merge(j, p, keys)
			if err != nil {
				return err
			}
			if merged > 0 {
				cfg.Obs.CountV("ledger.merged_records", int64(merged))
				cfg.Obs.Progressf("ledger: recovered %d record(s) from %s", merged, filepath.Base(p))
			}
		}
		os.Remove(p)
		os.Remove(strings.TrimSuffix(p, ".journal") + ".json")
		os.Remove(strings.TrimSuffix(p, ".journal") + ".telem.json")
	}
	return nil
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return -1
	}
	return fi.Size()
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
