package ledger

import (
	"os"
	"path/filepath"
	"sort"
	"time"

	"wcet/internal/obs"
)

// ReadFleet scans workDir for worker telemetry sidecars and returns one
// WorkerStatus per live sidecar, sorted by worker id. It is the
// coordinator-side (or status-server-side) aggregation half of the fleet
// telemetry protocol: workers rewrite their sidecar atomically, so any
// file that parses is a consistent snapshot; files that vanish between
// glob and read (a settling lease cleaning up) are simply skipped. AgeMS
// is measured from the sidecar's mtime — the staleness signal a human
// watching /status uses to spot a wedged worker before the coordinator's
// lease clock does.
func ReadFleet(workDir string) []obs.WorkerStatus {
	paths, err := filepath.Glob(filepath.Join(workDir, "worker-*.telem.json"))
	if err != nil {
		return nil
	}
	sort.Strings(paths)
	var fleet []obs.WorkerStatus
	for _, p := range paths {
		t, err := obs.ReadTelemetry(p)
		if err != nil {
			continue
		}
		ws := obs.WorkerStatus{
			ID:       t.ID,
			Done:     t.Done,
			Total:    t.Total,
			Appended: t.Appended,
		}
		if fi, err := os.Stat(p); err == nil {
			ws.AgeMS = time.Since(fi.ModTime()).Milliseconds()
		}
		fleet = append(fleet, ws)
	}
	return fleet
}
