package ledger_test

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"wcet/internal/core"
	"wcet/internal/ga"
	"wcet/internal/journal"
	"wcet/internal/ledger"
	"wcet/internal/testgen"
)

// The step function from the core tests: three-way switch over an
// annotated input plus a data-dependent branch — small enough to analyse
// in milliseconds, rich enough to exercise every pipeline stage (GA,
// model checker, campaign, exhaustive sweep: 3·21 = 63 input vectors).
const stepSrc = `
/*@ input */ /*@ range 0 2 */ int sel;
/*@ input */ /*@ range 0 20 */ char x;
int r;
void step(void) {
    r = 0;
    switch (sel) {
    case 0:
        if (x > 10) { r = 1; } else { r = 2; }
        break;
    case 1:
        r = x * 2;
        r = r + 1;
        break;
    default:
        r = 9;
        break;
    }
}
`

func stepOptions() core.Options {
	return core.Options{
		FuncName:   "step",
		Bound:      8,
		Exhaustive: true,
		Workers:    1,
		TestGen: testgen.Config{
			GA: ga.Config{Seed: 5, Pop: 32, MaxGens: 40, Stagnation: 10},
		},
	}
}

func canonicalBytes(t *testing.T, rep *core.Report) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := rep.WriteCanonical(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// referenceRun performs the single-process journaled run every
// distributed test compares against, returning its canonical report bytes
// and the journal's record set.
func referenceRun(t *testing.T, dir string) ([]byte, map[string][]byte, string) {
	t.Helper()
	file, fn, g, err := core.Frontend(stepSrc, "step")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "reference.journal")
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	opt := stepOptions()
	opt.Journal = j
	rep, err := core.AnalyzeGraphCtx(context.Background(), file, fn, g, opt)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	records, fp, err := journal.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 || fp == "" {
		t.Fatalf("reference journal is empty (records=%d, fp=%q)", len(records), fp)
	}
	return canonicalBytes(t, rep), records, fp
}

// TestMergeShuffleDeterminism is the merge-determinism suite: the
// reference run's records are split across three worker journals with
// overlapping (duplicated) units, then merged into a fresh canonical
// journal under several merge orders. Every order must converge to the
// same record set, and replaying the merged journal must reproduce the
// reference report byte for byte — merging is idempotent and commutative
// because records are content-addressed and pure.
func TestMergeShuffleDeterminism(t *testing.T) {
	dir := t.TempDir()
	wantReport, records, fp := referenceRun(t, dir)
	keys := make([]string, 0, len(records))
	for k := range records {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	n := len(keys)
	if n < 6 {
		t.Fatalf("reference run journaled only %d units; the overlap split needs more", n)
	}

	// Three overlapping shards: every key is in at least one, several are
	// in two or three — the duplicated-completion case.
	shards := [][]string{
		keys[:2*n/3],
		keys[n/3:],
		append(append([]string{}, keys[:n/4]...), keys[n/2:]...),
	}
	workerPaths := make([]string, len(shards))
	for i, shard := range shards {
		p := filepath.Join(dir, "worker-"+string(rune('a'+i))+".journal")
		w, err := journal.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Bind(fp); err != nil {
			t.Fatal(err)
		}
		for _, k := range shard {
			if err := w.Put(k, records[k]); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		workerPaths[i] = p
	}

	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}}
	for oi, order := range orders {
		mergedPath := filepath.Join(dir, "merged-"+string(rune('0'+oi))+".journal")
		dst, err := journal.Open(mergedPath)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dst.Bind(fp); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, wi := range order {
			m, err := ledger.Merge(dst, workerPaths[wi], shards[wi])
			if err != nil {
				t.Fatal(err)
			}
			total += m
		}
		if total != n {
			t.Errorf("order %v: merged %d records, want exactly %d (duplicates must not double-merge)", order, total, n)
		}
		// A repeat merge of any worker must be a no-op.
		if m, err := ledger.Merge(dst, workerPaths[order[0]], shards[order[0]]); err != nil || m != 0 {
			t.Errorf("order %v: re-merge merged %d records (err %v), want 0", order, m, err)
		}
		dst.Close()

		got, gotFP, err := journal.ReadFile(mergedPath)
		if err != nil {
			t.Fatal(err)
		}
		if gotFP != fp {
			t.Errorf("order %v: merged journal fingerprint %q, want %q", order, gotFP, fp)
		}
		if !reflect.DeepEqual(got, records) {
			t.Errorf("order %v: merged record set differs from the reference run's", order)
		}

		// Replaying the merged journal must assemble the reference report.
		file, fn, g, err := core.Frontend(stepSrc, "step")
		if err != nil {
			t.Fatal(err)
		}
		j, err := journal.Open(mergedPath)
		if err != nil {
			t.Fatal(err)
		}
		opt := stepOptions()
		opt.Journal = j
		rep, err := core.AnalyzeGraphCtx(context.Background(), file, fn, g, opt)
		j.Close()
		if err != nil {
			t.Fatal(err)
		}
		if rep.ResumedUnits == 0 {
			t.Errorf("order %v: replay recomputed everything — fingerprint mismatch?", order)
		}
		if got := canonicalBytes(t, rep); !bytes.Equal(got, wantReport) {
			t.Errorf("order %v: replayed report differs from reference:\n--- reference\n%s\n--- merged\n%s",
				order, wantReport, got)
		}
	}
}

// TestMergeRejectsForeignFingerprint: a worker journal bound to a
// different analysis must never leak records into the canonical journal.
func TestMergeRejectsForeignFingerprint(t *testing.T) {
	dir := t.TempDir()
	foreign, err := journal.Open(filepath.Join(dir, "foreign.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := foreign.Bind("fp-alien"); err != nil {
		t.Fatal(err)
	}
	if err := foreign.Put("ga/k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	foreign.Close()

	dst, err := journal.Open(filepath.Join(dir, "canonical.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if _, err := dst.Bind("fp-real"); err != nil {
		t.Fatal(err)
	}
	if _, err := ledger.Merge(dst, filepath.Join(dir, "foreign.journal"), []string{"ga/k"}); err == nil {
		t.Fatal("Merge accepted a worker journal with a foreign fingerprint")
	}
	if dst.Has("ga/k") {
		t.Error("foreign record leaked into the canonical journal")
	}
}
