package ledger

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"

	"wcet/internal/obs"
)

// Launcher starts workers on behalf of the coordinator. Two
// implementations ship: GoLauncher (goroutine workers — cheap, hermetic,
// the default) and ProcLauncher (real processes — genuine SIGKILL
// semantics, what the chaos suites and the CLI use). The coordinator is
// indifferent: it observes workers only through their journal files and
// the Handle, which is exactly the information that survives a worker
// being killed at any instant.
type Launcher interface {
	// Start launches one worker on the given assignment file. The context
	// bounds the worker's analysis work (process launchers may ignore it;
	// the coordinator kills explicitly).
	Start(ctx context.Context, assignmentPath string) (Handle, error)
}

// Handle tracks one launched worker.
type Handle interface {
	// Done reports whether the worker has exited, and with what error
	// (nil = clean exit with all owned units journaled). It never blocks.
	Done() (bool, error)
	// Kill terminates the worker immediately (SIGKILL for processes,
	// context cancellation for goroutines). Idempotent.
	Kill()
}

// ProcLauncher launches workers as separate OS processes running this
// binary (or Command) with the assignment path appended. Crash isolation
// is real: a worker taking SIGKILL, segfaulting, or being OOM-killed
// cannot corrupt the coordinator, and its journal survives to be
// harvested.
type ProcLauncher struct {
	// Command is the worker argv prefix; the assignment path is appended.
	// Default: [<this executable>, "-ledger-worker"].
	Command []string
	// Env, when set, returns extra environment entries for each spawn (on
	// top of the parent's environment) — the chaos suites' lever for
	// handing each worker its own kill schedule.
	Env func(assignmentPath string) []string
}

// Start implements Launcher.
func (p *ProcLauncher) Start(ctx context.Context, assignmentPath string) (Handle, error) {
	argv := p.Command
	if len(argv) == 0 {
		self, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("ledger: locate worker binary: %w", err)
		}
		argv = []string{self, "-ledger-worker"}
	}
	cmd := exec.Command(argv[0], append(argv[1:], assignmentPath)...)
	cmd.Env = os.Environ()
	if p.Env != nil {
		cmd.Env = append(cmd.Env, p.Env(assignmentPath)...)
	}
	cmd.Stdout = os.Stderr // worker diagnostics must not pollute coordinator stdout
	cmd.Stderr = os.Stderr
	// Workers get their own process group: a Ctrl-C (SIGINT to the
	// coordinator's foreground group) or a group-targeted SIGKILL no longer
	// takes workers down with the coordinator, so their journals keep
	// growing and the harvest-on-restart path has something to harvest.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("ledger: spawn worker: %w", err)
	}
	h := &procHandle{pid: cmd.Process.Pid, done: make(chan struct{})}
	go func() {
		h.err = cmd.Wait()
		close(h.done)
	}()
	return h, nil
}

type procHandle struct {
	pid  int
	done chan struct{}
	err  error
	kill sync.Once
}

func (h *procHandle) Done() (bool, error) {
	select {
	case <-h.done:
		return true, h.err
	default:
		return false, nil
	}
}

func (h *procHandle) Kill() {
	// The worker leads its own process group (Setpgid above), so signal
	// the group: anything the worker spawned dies with it. Fall back to
	// the pid alone if the group is already gone.
	h.kill.Do(func() {
		if err := syscall.Kill(-h.pid, syscall.SIGKILL); err != nil {
			_ = syscall.Kill(h.pid, syscall.SIGKILL)
		}
	})
}

// GoLauncher runs workers as goroutines inside the coordinator process.
// The protocol is identical — each worker still reads its assignment file
// and writes its private journal — but Kill is cooperative (context
// cancellation), so it models stalls and cancellations, not SIGKILL.
// It is the default because it needs no re-exec plumbing in the host
// binary, and it is what the deterministic tests and benchmarks use.
type GoLauncher struct {
	// Hook, when set, builds each worker's journal append hook and is
	// handed that worker's kill switch — the chaos lever: a hook that
	// calls kill after N appends dies at a durable point, leaving exactly
	// the journal state a SIGKILL right after the append would leave.
	Hook func(assignmentPath string, kill func()) func(key string, total int)
	// Obs, when set, is shared with every worker (the coordinator's Run
	// fills it in from Config.Obs when unset): in-process workers publish
	// to the coordinator's bus, so /events sees their unit lifecycle live.
	Obs *obs.Observer
}

// SetObs hands the coordinator's observer to workers that do not already
// have one (ledger.Run calls it on any launcher exposing the method).
func (g *GoLauncher) SetObs(o *obs.Observer) {
	if g.Obs == nil {
		g.Obs = o
	}
}

// Start implements Launcher.
func (g *GoLauncher) Start(ctx context.Context, assignmentPath string) (Handle, error) {
	ctx, cancel := context.WithCancel(ctx)
	h := &goHandle{cancel: cancel, done: make(chan struct{})}
	opts := WorkerOptions{Obs: g.Obs}
	if g.Hook != nil {
		opts.AppendHook = g.Hook(assignmentPath, cancel)
	}
	go func() {
		h.err = RunWorker(ctx, assignmentPath, opts)
		close(h.done)
	}()
	return h, nil
}

type goHandle struct {
	cancel context.CancelFunc
	done   chan struct{}
	err    error
}

func (h *goHandle) Done() (bool, error) {
	select {
	case <-h.done:
		return true, h.err
	default:
		return false, nil
	}
}

func (h *goHandle) Kill() { h.cancel() }
