package ledger_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"wcet/internal/ledger"
)

// TestProcLauncherKillSignalsProcessGroup pins the Setpgid contract: a
// worker leads its own process group, and Kill signals the group, so
// anything the worker spawned dies with it — while a kill aimed at the
// *coordinator's* group can no longer reap workers as collateral. The
// stand-in worker is a shell that forks a child and parks; after Kill,
// both the shell and its child must be gone.
func TestProcLauncherKillSignalsProcessGroup(t *testing.T) {
	dir := t.TempDir()
	pidFile := filepath.Join(dir, "child.pid")
	script := fmt.Sprintf("sleep 60 & echo $! > %s; wait", pidFile)
	p := &ledger.ProcLauncher{Command: []string{"/bin/sh", "-c", script}}
	h, err := p.Start(context.Background(), filepath.Join(dir, "ignored.json"))
	if err != nil {
		t.Fatal(err)
	}

	var childPid int
	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(pidFile); err == nil {
			if pid, err := strconv.Atoi(strings.TrimSpace(string(data))); err == nil && pid > 0 {
				childPid = pid
				break
			}
		}
		if time.Now().After(deadline) {
			h.Kill()
			t.Fatal("worker shell never wrote its child pid")
		}
		time.Sleep(5 * time.Millisecond)
	}

	h.Kill()
	for {
		if done, _ := h.Done(); done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never exited after Kill")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The grandchild must die with the group; signal 0 probes existence.
	// SIGKILL delivery is asynchronous, so poll briefly.
	for {
		if err := syscall.Kill(childPid, 0); err != nil {
			break // ESRCH: gone
		}
		if time.Now().After(deadline) {
			_ = syscall.Kill(childPid, syscall.SIGKILL)
			t.Fatal("worker's child survived the group kill")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
