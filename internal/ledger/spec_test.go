package ledger_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"wcet/internal/core"
	"wcet/internal/ga"
	"wcet/internal/interp"
	"wcet/internal/isa"
	"wcet/internal/ledger"
	"wcet/internal/mc"
	"wcet/internal/retry"
	"wcet/internal/sim"
	"wcet/internal/testgen"
	"wcet/internal/vcache"
)

// serializableOptions fills every spec-covered field with a distinctive
// non-zero value, so a silent drop in either direction of the round trip
// is visible.
func serializableOptions() core.Options {
	return core.Options{
		FuncName:      "step",
		Bound:         7,
		Exhaustive:    true,
		MaxExhaustive: 321,
		MCTimeout:     9 * time.Second,
		Workers:       5,
		SimOptions:    sim.Options{MaxInstructions: 123456},
		TestGen: testgen.Config{
			GA: ga.Config{
				Pop: 11, MaxGens: 22, Stagnation: 33, MutRate: 0.125,
				CrossRate: 0.75, Tournament: 4, Seed: 2005, MaxEvaluations: 5000,
			},
			SkipGA:            false,
			SkipMC:            true,
			Retry:             retry.Policy{MaxAttempts: 6, BackoffBase: 17},
			FailoverMaxStates: 4242,
		},
	}
}

func TestSpecRoundTrip(t *testing.T) {
	opt := serializableOptions()
	spec, err := ledger.SpecFor("int f(void) { return 0; }", opt)
	if err != nil {
		t.Fatal(err)
	}
	got := spec.Options()
	if !reflect.DeepEqual(got, opt) {
		t.Errorf("SpecFor ∘ Options is not the identity on serializable options:\ngot  %+v\nwant %+v", got, opt)
	}

	// The spec must survive its on-disk representation too.
	data, err := json.Marshal(&spec)
	if err != nil {
		t.Fatal(err)
	}
	var back ledger.Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, spec) {
		t.Errorf("JSON round trip lost information:\ngot  %+v\nwant %+v", back, spec)
	}
}

func TestSpecForRejectsNonSerializableOptions(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"ga-stop-hook", func(o *core.Options) { o.TestGen.GA.Stop = func() bool { return false } }},
		{"ga-trace-hook", func(o *core.Options) { o.TestGen.GA.OnTrace = func(interp.Env, *interp.Trace) {} }},
		{"order-book", func(o *core.Options) { o.TestGen.MC.Orders = mc.NewOrderBook() }},
		{"base-env", func(o *core.Options) { o.TestGen.Base = interp.Env{nil: 1} }},
		{"cost-model", func(o *core.Options) { o.SimOptions.Costs = &isa.CostModel{} }},
		{"vcache", func(o *core.Options) { o.Cache = &vcache.Store{} }},
	}
	for _, tc := range cases {
		opt := serializableOptions()
		tc.mutate(&opt)
		if _, err := ledger.SpecFor("int f(void){return 0;}", opt); err == nil {
			t.Errorf("%s: SpecFor accepted a non-serializable option", tc.name)
		}
	}
}

// TestSpecCoversOptionSurface is the tripwire that keeps spec.go honest:
// every field of every option struct the spec flattens must be classified
// here — serialized (round-trips through SpecFor/Options), recursed
// (a nested struct whose own fields are classified), resolved (forced by
// the pipeline, carrying no information), run-scoped (owned by the
// coordinator, never shipped), or rejected (SpecFor errors on it). A new
// field in any of these structs fails this test until the spec gains it
// or this table consciously excludes it.
func TestSpecCoversOptionSurface(t *testing.T) {
	surface := map[reflect.Type]map[string]string{
		reflect.TypeOf(core.Options{}): {
			"FuncName": "serialized", "Bound": "serialized", "TestGen": "recursed",
			"MCTimeout": "serialized", "Exhaustive": "serialized", "MaxExhaustive": "serialized",
			"SimOptions": "recursed", "Workers": "serialized",
			"Obs": "run-scoped", "Journal": "rejected", "Cache": "rejected",
		},
		reflect.TypeOf(testgen.Config{}): {
			"GA": "recursed", "Workers": "serialized", "SkipGA": "serialized",
			"SkipMC": "serialized", "Optimise": "resolved", "MC": "recursed",
			"Base": "rejected", "Retry": "recursed", "FailoverMaxStates": "serialized",
		},
		reflect.TypeOf(ga.Config{}): {
			"Pop": "serialized", "MaxGens": "serialized", "Stagnation": "serialized",
			"MutRate": "serialized", "CrossRate": "serialized", "Tournament": "serialized",
			"Seed": "serialized", "MaxEvaluations": "serialized",
			"Stop": "rejected", "Obs": "rejected", "OnTrace": "rejected",
		},
		reflect.TypeOf(mc.Options{}): {
			"MaxSteps": "serialized", "MaxStates": "serialized", "MaxNodes": "serialized",
			"Timeout": "serialized", "NoSlice": "serialized", "NoReorder": "serialized",
			"NoPool": "serialized", "Orders": "rejected",
		},
		reflect.TypeOf(sim.Options{}): {
			"MaxInstructions": "serialized", "Costs": "rejected",
		},
		reflect.TypeOf(retry.Policy{}): {
			"MaxAttempts": "serialized", "BackoffBase": "serialized",
		},
	}
	for typ, fields := range surface {
		for i := 0; i < typ.NumField(); i++ {
			name := typ.Field(i).Name
			if _, ok := fields[name]; !ok {
				t.Errorf("%s.%s is not classified in the spec surface table — teach ledger.Spec about it (or reject it in SpecFor) and classify it here", typ, name)
			}
			delete(fields, name)
		}
		for name := range fields {
			t.Errorf("%s.%s is classified but no longer exists", typ, name)
		}
	}
}

func TestReadAssignmentValidates(t *testing.T) {
	dir := t.TempDir()
	spec, err := ledger.SpecFor("int f(void){return 0;}", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/a.json"
	good := &ledger.Assignment{ID: "r001-w00", Fingerprint: "fp", Keys: []string{"ga/k"}, Journal: dir + "/w.journal", Spec: spec}
	if err := ledger.WriteAssignment(path, good); err != nil {
		t.Fatal(err)
	}
	back, err := ledger.ReadAssignment(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, good) {
		t.Errorf("assignment round trip:\ngot  %+v\nwant %+v", back, good)
	}
	for name, a := range map[string]*ledger.Assignment{
		"no-keys":    {ID: "x", Journal: "j"},
		"no-journal": {ID: "x", Keys: []string{"k"}},
	} {
		if err := ledger.WriteAssignment(path, a); err != nil {
			t.Fatal(err)
		}
		if _, err := ledger.ReadAssignment(path); err == nil {
			t.Errorf("%s: ReadAssignment accepted an invalid assignment", name)
		} else if !strings.Contains(err.Error(), "assignment") {
			t.Errorf("%s: unhelpful error %v", name, err)
		}
	}
}
