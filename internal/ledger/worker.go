package ledger

import (
	"context"
	"fmt"
	"os"
	"time"

	"wcet/internal/core"
	"wcet/internal/faults"
	"wcet/internal/journal"
	"wcet/internal/obs"
)

// WorkerOptions tune RunWorker beyond the assignment file.
type WorkerOptions struct {
	// AppendHook, when set, observes every journal append ((key, total
	// appended)) before the scope is updated — the chaos suites' lever for
	// killing a worker after N durable records.
	AppendHook func(key string, total int)
	// Obs receives the worker's observability stream (nil disables it).
	Obs *obs.Observer
}

// RunWorker executes one assignment to completion: it rebuilds the
// analysis from the spec, verifies the fingerprint matches the lease,
// opens its private journal, and runs the ordinary pipeline scoped to the
// owned keys. It returns nil exactly when every owned unit has a durable
// record in the worker journal — partial progress is still harvested by
// the coordinator from the journal file, which is why a worker can be
// killed at any instant without losing completed units.
//
// The pipeline's own report is discarded: in a scoped run it is
// intentionally partial (unowned units are skipped), and only the
// canonical journal's replay produces the real one.
func RunWorker(ctx context.Context, assignmentPath string, w WorkerOptions) error {
	a, err := ReadAssignment(assignmentPath)
	if err != nil {
		return err
	}
	spec := &a.Spec
	opt := spec.Options()
	file, fn, g, err := core.Frontend(spec.Source, spec.FuncName)
	if err != nil {
		return fmt.Errorf("ledger: worker frontend: %w", err)
	}
	if fp := core.FingerprintOf(file, fn, g, opt); fp != a.Fingerprint {
		return fmt.Errorf("ledger: fingerprint mismatch: lease %s has %s, worker computes %s (version skew?)",
			a.ID, short(a.Fingerprint), short(fp))
	}

	j, err := journal.Open(a.Journal)
	if err != nil {
		return fmt.Errorf("ledger: worker journal: %w", err)
	}
	defer j.Close()

	// Worker observability: the handed-down observer (GoLauncher shares the
	// coordinator's bus) or — for process workers with telemetry enabled —
	// a self-built one, so the flight recorder and registry exist to
	// snapshot into the sidecar. Either way the handle is labeled with the
	// lease id: progress lines interleaved on a shared stderr stay
	// attributable, and bus events carry the worker.
	ob := w.Obs
	if ob == nil && a.Telemetry != "" {
		c := obs.Config{}
		if a.Verbose {
			c.Progress = os.Stderr
		}
		ob = obs.New(c)
	}
	ob = ob.Named(a.ID)

	// Owned units that already have records (a re-leased shard after a
	// partial death) count as complete up front, so a fully-journaled
	// shard drains immediately and the worker exits without recomputing.
	scope := journal.NewScope(a.Keys)
	for _, k := range a.Keys {
		if j.Has(k) {
			scope.Complete(k)
		}
	}
	j.SetAppendHook(func(key string, total int) {
		if w.AppendHook != nil {
			w.AppendHook(key, total)
		}
		scope.Complete(key)
	})

	// Draining the scope cancels the pipeline: once every owned unit is
	// durable there is nothing left this worker is allowed to compute, so
	// tearing the run down early is pure wall-clock savings — correctness
	// never depends on it (the coordinator merges only owned keys).
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	scope.OnDrained(cancel)

	ctx = journal.WithScope(ctx, scope)
	if len(spec.Faults) > 0 {
		ctx = faults.With(ctx, faults.New(spec.rules()...))
	}
	opt.Journal = j
	opt.Obs = ob

	// Telemetry sidecar: rewrite a snapshot of (progress, registry, flight
	// ring) every interval with temp+rename, plus once on the way out so a
	// clean exit leaves its final state. A SIGKILLed worker leaves its last
	// periodic snapshot — exactly the post-mortem the coordinator harvests.
	if a.Telemetry != "" {
		interval := time.Duration(a.TelemetryMS) * time.Millisecond
		if interval <= 0 {
			interval = 100 * time.Millisecond
		}
		total := len(a.Keys)
		var seq int64
		writeTelem := func() {
			seq++
			_ = obs.WriteTelemetry(a.Telemetry, &obs.Telemetry{
				ID:       a.ID,
				Seq:      seq,
				WallMS:   ob.Elapsed().Milliseconds(),
				Done:     total - len(scope.Remaining()),
				Total:    total,
				Appended: j.Appended(),
				Metrics:  ob.Metrics().Snapshot(true),
				Flight:   ob.FlightDump(),
			})
		}
		writeTelem()
		stop := make(chan struct{})
		ticker := time.NewTicker(interval)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					writeTelem()
				}
			}
		}()
		defer func() {
			close(stop)
			writeTelem()
		}()
	}

	_, runErr := core.AnalyzeGraphCtx(ctx, file, fn, g, opt)
	if scope.Drained() {
		// The lease is fulfilled; a cancellation error from our own
		// drain-teardown is expected and meaningless.
		return nil
	}
	if runErr != nil {
		return fmt.Errorf("ledger: worker %s incomplete (%d unit(s) left): %w",
			a.ID, len(scope.Remaining()), runErr)
	}
	return fmt.Errorf("ledger: worker %s exited cleanly with %d owned unit(s) unjournaled",
		a.ID, len(scope.Remaining()))
}

func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}
