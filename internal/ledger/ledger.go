// Package ledger is the fault-tolerant distributed execution layer: a
// coordinator/worker protocol over the run-journal format in which the
// journal is promoted from a crash-resume log to a multi-process work
// ledger.
//
// # Protocol
//
// The coordinator owns the canonical run journal (exclusively — the
// journal's advisory file lock makes a second writer impossible). Each
// round it computes the pipeline's work frontier (core.FrontierOf): the
// first stage with unresolved unit keys — GA searches, model-checker
// verdicts, measurement vectors — exactly the keys the stages journal.
// It shards those keys across worker processes, seeding each worker's
// private journal with a copy of the canonical records so prior stages
// replay instead of recomputing, and hands each shard out under a lease.
// Workers run the ordinary analysis pipeline restricted to their owned
// keys (journal.Scope) and exit when every owned unit has a durable
// record. The coordinator merges completed records back into the
// canonical journal — first write wins, fsync on — and iterates until the
// frontier is empty, then assembles the report by replaying the canonical
// journal in process.
//
// # Determinism
//
// The final report is byte-identical to a single-process run by
// construction, not by luck: every journaled unit is a pure function of
// (program, options fingerprint, unit key) — scoped workers disable the
// two schedule-dependent shortcuts (the GA skip fast path and the
// done-snapshot coverage filter) so even speculative GA outcomes are pure
// — and the pipeline's folds (coverage board, measurement maxima) are
// order-insensitive. Merging is therefore idempotent and commutative:
// duplicated units, shuffled merge orders and repeated crashes converge
// to the same record set, and the assembly replays that set exactly as a
// resumed single-process run would.
//
// # Fault tolerance
//
// Leases carry a logical deadline measured in coordinator polls with no
// durable progress (worker journal growth). A worker that crashes, is
// SIGKILLed, stalls, or tears its final frame mid-append has its journal
// harvested up to the last intact record and its incomplete units
// reclaimed and reassigned — re-computation is safe because records are
// pure, and in-worker transient retries stay deterministic via
// SeedForAttempt and the retry taxonomy (budget and infeasibility
// verdicts journal as results, so they are never re-attempted). Every
// worker death marks its incomplete units suspect; suspects are re-leased
// solo so a repeat death attributes unambiguously, and a unit that kills
// its worker Config.MaxFatalities times is quarantined: generation units
// get a fabricated degraded record (testgen.Quarantine) that lands the
// path in the report's degradation ledger as unavailable, while
// measurement units fail the run — dropping a measured vector would
// silently lower maxima, which is unsound. The coordinator itself is
// crash-safe: killing and restarting it re-opens the canonical journal,
// harvests any leftover worker journals (fingerprint-checked), and
// resumes from the frontier exactly like a single-process -resume.
package ledger

import (
	"time"

	"wcet/internal/core"
	"wcet/internal/obs"
)

// Config tunes a distributed run. The zero value is usable: 4 workers,
// in-process launcher, 25ms polls, leases of 400 quiet polls, quarantine
// after 2 fatalities.
type Config struct {
	// JournalPath is the canonical run journal (required). The coordinator
	// holds its file lock for the whole run.
	JournalPath string
	// Workers is the number of worker processes leased per round
	// (default 4). Suspect units are re-leased solo on top of this.
	Workers int
	// Launcher starts workers. Default: a GoLauncher (workers as in-process
	// goroutines — cheap, but kill is cooperative cancellation). Use
	// ProcLauncher for real process isolation and SIGKILL semantics.
	Launcher Launcher
	// PollInterval is the coordinator's lease clock tick (default 25ms).
	PollInterval time.Duration
	// LeaseTicks is the lease's logical deadline: a worker whose journal
	// file does not grow for this many consecutive polls is presumed
	// crashed, stalled or wedged; it is killed and its incomplete units
	// reclaimed (default 400 — 10s at the default poll interval).
	LeaseTicks int
	// MaxFatalities quarantines a unit after this many worker deaths with
	// the unit leased and incomplete (default 2: a unit that kills its
	// worker twice is taken out of circulation).
	MaxFatalities int
	// WorkDir holds per-worker journals and assignment files (default:
	// the canonical journal's directory).
	WorkDir string
	// TelemetryInterval is how often each worker rewrites its sidecar
	// telemetry file (default 100ms). The sidecar is volatile fleet
	// telemetry: per-worker progress for /status aggregation, a registry
	// snapshot, and the flight recorder harvested as the post-mortem when
	// the worker dies.
	TelemetryInterval time.Duration
	// HeartbeatTimeout is the secondary liveness signal: once a worker's
	// telemetry sidecar has been seen, a sidecar older than this is
	// treated as a dead heartbeat and the worker is killed without
	// waiting out the journal-growth lease (default 2s, floored at 4×
	// TelemetryInterval). Journal growth remains the hard lease deadline —
	// a wedged worker whose telemetry goroutine still ticks is caught by
	// LeaseTicks, never outlived by its heartbeat.
	HeartbeatTimeout time.Duration
	// WorkerVerbose forwards the coordinator's verbosity to workers: their
	// progress streams go to stderr, prefixed with the worker id.
	WorkerVerbose bool
	// Obs receives the coordinator's observability stream (volatile
	// counters: spawns, leases, reclaims, quarantines) and is threaded
	// into the in-process report assembly. nil disables observation.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Launcher == nil {
		c.Launcher = &GoLauncher{}
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
	if c.LeaseTicks <= 0 {
		c.LeaseTicks = 400
	}
	if c.MaxFatalities <= 0 {
		c.MaxFatalities = 2
	}
	if c.TelemetryInterval <= 0 {
		c.TelemetryInterval = 100 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 2 * time.Second
	}
	if min := 4 * c.TelemetryInterval; c.HeartbeatTimeout < min {
		c.HeartbeatTimeout = min
	}
	return c
}

// Result is a distributed run's outcome.
type Result struct {
	// Report is the assembled analysis report, byte-identical
	// (Report.WriteCanonical) to a single-process run's — unless units
	// were quarantined, in which case it matches a single-process run
	// whose same units degraded.
	Report *core.Report
	// Quarantined lists the unit keys recorded as unavailable after
	// repeated worker deaths, sorted (empty for healthy runs).
	Quarantined []string
	// Rounds counts frontier rounds that leased work; Spawned counts
	// worker launches; Reclaimed counts lease reclamations of incomplete
	// units (kills, crashes and stalls included).
	Rounds    int
	Spawned   int
	Reclaimed int
}
