// Package faults is the pipeline's deterministic fault-injection harness.
// Tests (and only tests) use it to make a stage fail, stall, or panic at a
// precisely chosen point, so every degradation path of the analysis can be
// exercised end to end.
//
// An Injector rides the context — faults.With attaches it, instrumented
// sites call faults.Fire(ctx, site, index) — so production code pays one
// nil check and no API surface. Sites key every call with a deterministic
// index (the target's position, the vector's position, the BFS step
// number), never an arrival counter: which call fires is therefore
// independent of goroutine scheduling and of the Workers knob, which is
// what lets the resilience tests demand byte-identical reports across
// worker counts even under injected faults.
//
// Instrumented sites:
//
//	"testgen.search"  — one GA search attempt; index = target position
//	"testgen.mc"      — one residue model-checker attempt; index = target position
//	"testgen.failover" — entry of an explicit-engine failover; index = target position
//	"mc.check"        — entry of a symbolic model-checker run; index 0
//	"mc.step"         — one symbolic BFS iteration; index = step number
//	"measure.campaign" — entry of a measurement campaign; index 0
//	"measure.run"     — one simulator replay attempt; index = vector position
//	"measure.exhaustive" — one exhaustive-sweep replay attempt; index = vector position
//	"partition.point" — one sweep sample; index = bound position
//
// Sites that sit inside a retry loop (the per-attempt ones above) are
// re-consulted on every attempt; rules with MaxFires model transient
// faults that the retry policy heals, rules without it model persistent
// ones that exhaust the attempt budget.
package faults

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// Mode is what an injected fault does at its site.
type Mode int

// Fault modes.
const (
	// Fail makes the site return an error.
	Fail Mode = iota
	// Panic makes the site panic (exercising worker panic isolation).
	Panic
	// Stall blocks the site for Delay or until the context is cancelled,
	// then returns the context error if cancelled (exercising deadlines).
	Stall
)

func (m Mode) String() string {
	switch m {
	case Fail:
		return "fail"
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Rule arms one injection: at Site, on the call with the given Index.
type Rule struct {
	// Site names the instrumented call site.
	Site string
	// Index selects the deterministic call index to fire on; -1 fires on
	// every call at the site.
	Index int
	// Mode selects the failure behaviour.
	Mode Mode
	// Err is the injected error for Fail (default: a generated one naming
	// site and index).
	Err error
	// Delay is the Stall duration (default 50ms).
	Delay time.Duration
	// Prob arms the rule probabilistically: when > 0, the rule fires only
	// when a hash of (Seed, Site, Index) falls below Prob. The decision is
	// a pure function of those values — deterministic across schedules and
	// worker counts. Index must be -1 to give every call its own draw.
	Prob float64
	// Seed drives the probabilistic draw.
	Seed int64
	// MaxFires, when > 0, bounds how many times the rule fires per
	// (site, index) pair — the transient-fault model: the first MaxFires
	// calls at a pair fail, later calls (the retry policy's subsequent
	// attempts) succeed. Counting per pair, never globally, keeps firing
	// independent of goroutine scheduling and worker count.
	MaxFires int
}

// PanicValue is the value injected panics carry, so tests can recognise
// their own explosions in recovered errors.
type PanicValue struct {
	Site  string
	Index int
}

func (p PanicValue) String() string {
	return fmt.Sprintf("injected panic at %s#%d", p.Site, p.Index)
}

// Injector holds armed rules and a log of fired injections.
type Injector struct {
	mu    sync.Mutex
	rules []Rule
	log   []string
	// fires counts firings per rule and (site, index) pair, for MaxFires.
	fires map[fireKey]int
}

type fireKey struct {
	rule  int
	site  string
	index int
}

// New builds an injector with the given rules armed.
func New(rules ...Rule) *Injector {
	return &Injector{rules: rules, fires: map[fireKey]int{}}
}

// Fired returns the sorted log of injections that fired, as
// "site#index:mode" strings. Sorting makes the log comparable across
// schedules even when several sites fire concurrently.
func (in *Injector) Fired() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := append([]string(nil), in.log...)
	sort.Strings(out)
	return out
}

// match finds the first armed rule covering (site, index), consuming one
// firing from rules bounded by MaxFires.
func (in *Injector) match(site string, index int) (Rule, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for ri, r := range in.rules {
		if r.Site != site {
			continue
		}
		covers := false
		if r.Prob > 0 {
			covers = draw(r.Seed, site, index) < r.Prob
		} else {
			covers = r.Index == -1 || r.Index == index
		}
		if !covers {
			continue
		}
		if r.MaxFires > 0 {
			k := fireKey{rule: ri, site: site, index: index}
			if in.fires[k] >= r.MaxFires {
				continue // transient fault already consumed at this pair
			}
			in.fires[k]++
		}
		return r, true
	}
	return Rule{}, false
}

func (in *Injector) record(site string, index int, mode Mode) {
	in.mu.Lock()
	in.log = append(in.log, fmt.Sprintf("%s#%d:%s", site, index, mode))
	in.mu.Unlock()
}

// draw maps (seed, site, index) to [0,1) with an FNV hash — a pure
// function, so probabilistic rules fire identically on every run and every
// worker count.
func draw(seed int64, site string, index int) float64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(site))
	binary.LittleEndian.PutUint64(b[:], uint64(index))
	h.Write(b[:])
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}

type ctxKey struct{}

// With attaches an injector to the context. A nil injector detaches.
func With(ctx context.Context, in *Injector) context.Context {
	return context.WithValue(ctx, ctxKey{}, in)
}

// From retrieves the context's injector, or nil.
func From(ctx context.Context) *Injector {
	in, _ := ctx.Value(ctxKey{}).(*Injector)
	return in
}

// Fire checks for an armed fault at (site, index). Without an injector on
// the context it is a nil-check no-op. With a matching rule it fails,
// panics, or stalls per the rule's mode; the non-nil return value is the
// error the site must surface.
func Fire(ctx context.Context, site string, index int) error {
	in := From(ctx)
	if in == nil {
		return nil
	}
	r, ok := in.match(site, index)
	if !ok {
		return nil
	}
	in.record(site, index, r.Mode)
	switch r.Mode {
	case Panic:
		panic(PanicValue{Site: site, Index: index})
	case Stall:
		d := r.Delay
		if d == 0 {
			d = 50 * time.Millisecond
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
	if r.Err != nil {
		return r.Err
	}
	return fmt.Errorf("injected fault at %s#%d", site, index)
}
