package faults

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestNoInjectorIsNoOp(t *testing.T) {
	if err := Fire(context.Background(), "mc.step", 3); err != nil {
		t.Errorf("Fire without injector = %v, want nil", err)
	}
}

func TestFailRuleFiresOnExactIndexOnly(t *testing.T) {
	custom := errors.New("boom")
	ctx := With(context.Background(), New(Rule{Site: "measure.run", Index: 2, Err: custom}))
	for i := 0; i < 5; i++ {
		err := Fire(ctx, "measure.run", i)
		if i == 2 && err != custom {
			t.Errorf("index 2: got %v, want the armed error", err)
		}
		if i != 2 && err != nil {
			t.Errorf("index %d: got %v, want nil", i, err)
		}
	}
	if err := Fire(ctx, "measure.exhaustive", 2); err != nil {
		t.Errorf("other site fired: %v", err)
	}
}

func TestWildcardIndexFiresEverywhere(t *testing.T) {
	ctx := With(context.Background(), New(Rule{Site: "mc.step", Index: -1}))
	for i := 0; i < 3; i++ {
		if err := Fire(ctx, "mc.step", i); err == nil {
			t.Errorf("index %d: wildcard rule did not fire", i)
		}
	}
}

func TestDefaultErrorNamesSiteAndIndex(t *testing.T) {
	ctx := With(context.Background(), New(Rule{Site: "testgen.mc", Index: 4}))
	err := Fire(ctx, "testgen.mc", 4)
	if err == nil || err.Error() != "injected fault at testgen.mc#4" {
		t.Errorf("default error = %v", err)
	}
}

func TestPanicModeCarriesPanicValue(t *testing.T) {
	ctx := With(context.Background(), New(Rule{Site: "measure.run", Index: 1, Mode: Panic}))
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok || pv.Site != "measure.run" || pv.Index != 1 {
			t.Errorf("recovered %v, want PanicValue{measure.run, 1}", r)
		}
	}()
	Fire(ctx, "measure.run", 1)
	t.Fatal("panic mode did not panic")
}

func TestStallReturnsContextErrorWhenCancelled(t *testing.T) {
	in := New(Rule{Site: "mc.check", Index: 0, Mode: Stall, Delay: time.Minute})
	ctx, cancel := context.WithCancel(With(context.Background(), in))
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Fire(ctx, "mc.check", 0)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("stalled site must surface the context error, got %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Error("stall ignored the cancellation")
	}
}

func TestStallCompletesWithoutCancel(t *testing.T) {
	ctx := With(context.Background(), New(Rule{Site: "mc.check", Index: 0, Mode: Stall, Delay: time.Millisecond}))
	if err := Fire(ctx, "mc.check", 0); err != nil {
		t.Errorf("completed stall must return nil, got %v", err)
	}
}

func TestProbabilisticRuleIsPureInSeedSiteIndex(t *testing.T) {
	fire := func() []string {
		in := New(Rule{Site: "measure.run", Index: -1, Prob: 0.3, Seed: 99})
		ctx := With(context.Background(), in)
		for i := 0; i < 200; i++ {
			Fire(ctx, "measure.run", i)
		}
		return in.Fired()
	}
	a, b := fire(), fire()
	if !reflect.DeepEqual(a, b) {
		t.Error("probabilistic rule fired differently on identical runs")
	}
	if len(a) == 0 || len(a) == 200 {
		t.Errorf("prob 0.3 fired %d/200 times, want a strict subset", len(a))
	}
}

func TestFiredLogIsSortedAndLabelled(t *testing.T) {
	in := New(Rule{Site: "mc.step", Index: -1})
	ctx := With(context.Background(), in)
	Fire(ctx, "mc.step", 2)
	Fire(ctx, "mc.step", 0)
	want := []string{"mc.step#0:fail", "mc.step#2:fail"}
	if got := in.Fired(); !reflect.DeepEqual(got, want) {
		t.Errorf("Fired() = %v, want %v", got, want)
	}
}

func TestMaxFiresModelsTransientFaults(t *testing.T) {
	in := New(Rule{Site: "measure.run", Index: -1, MaxFires: 2})
	ctx := With(context.Background(), in)
	// Each (site, index) pair gets its own budget of 2 firings: attempts 1
	// and 2 fail, attempt 3 succeeds — independently per pair.
	for _, index := range []int{0, 1} {
		for attempt := 1; attempt <= 2; attempt++ {
			if err := Fire(ctx, "measure.run", index); err == nil {
				t.Errorf("index %d attempt %d: transient fault did not fire", index, attempt)
			}
		}
		if err := Fire(ctx, "measure.run", index); err != nil {
			t.Errorf("index %d attempt 3: fault still firing after MaxFires: %v", index, err)
		}
	}
	if got := len(in.Fired()); got != 4 {
		t.Errorf("fired %d times, want 4 (2 per pair)", got)
	}
}
