package codegen

import (
	"testing"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/isa"
)

func compile(t *testing.T, src, name string) (*Compiled, *ast.File) {
	t.Helper()
	f, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatalf("sem: %v", err)
	}
	g, err := cfg.Build(f.Func(name))
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	img, err := Compile(g, f)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	return img, f
}

func TestEveryBlockHasMark(t *testing.T) {
	img, _ := compile(t, `
int a, r;
int f(void) {
    if (a) { r = 1; } else { r = 2; }
    return r;
}`, "f")
	marks := map[int64]bool{}
	for _, in := range img.Prog {
		if in.Op == isa.MARK {
			marks[in.Imm] = true
		}
	}
	for _, n := range img.G.Nodes {
		if !marks[int64(n.ID)] {
			t.Errorf("block B%d has no MARK", n.ID)
		}
	}
	// BlockPC points at the MARK of each block.
	for _, n := range img.G.Nodes {
		pc := img.BlockPC[n.ID]
		if img.Prog[pc].Op != isa.MARK || img.Prog[pc].Imm != int64(n.ID) {
			t.Errorf("BlockPC[%d] does not point at its MARK", n.ID)
		}
	}
}

func TestBranchTargetsResolved(t *testing.T) {
	img, _ := compile(t, `
int a, r;
int f(void) {
    switch (a) { case 1: r = 1; break; case 2: r = 2; break; default: r = 0; }
    if (a > 5) { r = r + 1; }
    return r;
}`, "f")
	for pc, in := range img.Prog {
		switch in.Op {
		case isa.JMP:
			if int(in.A) < 0 || int(in.A) >= len(img.Prog) {
				t.Errorf("pc %d: jmp to %d out of range", pc, in.A)
			}
		case isa.BEQZ, isa.BNEZ:
			if int(in.B) < 0 || int(in.B) >= len(img.Prog) {
				t.Errorf("pc %d: branch to %d out of range", pc, in.B)
			}
		}
	}
}

func TestVarAddressesUniqueAndTyped(t *testing.T) {
	img, f := compile(t, `
int a; char c; unsigned char u;
int f(void) { a = c + u; return a; }`, "f")
	seen := map[int]bool{}
	for _, addr := range img.VarAddr {
		if seen[addr] {
			t.Errorf("address %d assigned twice", addr)
		}
		seen[addr] = true
	}
	for _, g := range f.Globals {
		addr := img.VarAddr[g]
		if img.VarType[addr] != g.Type {
			t.Errorf("%s: stored type %v, want %v", g.Name, img.VarType[addr], g.Type)
		}
	}
}

func TestStoresTruncate(t *testing.T) {
	img, f := compile(t, `
char c;
int f(void) { c = (char)(200); return c; }`, "f")
	_ = f
	// Every ST to the char address is preceded by a TRUNC of 8 bits.
	var cAddr int32 = -1
	for d, addr := range img.VarAddr {
		if d.Name == "c" {
			cAddr = int32(addr)
		}
	}
	for pc, in := range img.Prog {
		if in.Op == isa.ST && in.A == cAddr {
			if pc == 0 || img.Prog[pc-1].Op != isa.TRUNC || img.Prog[pc-1].C != 8 {
				t.Error("store to char not preceded by 8-bit TRUNC")
			}
		}
	}
}

func TestCalleesCompiled(t *testing.T) {
	img, _ := compile(t, `
int helper(int x) { return x * 2; }
int f(void) { return helper(21); }`, "f")
	if _, ok := img.FuncPC["helper"]; !ok {
		t.Fatal("callee not compiled")
	}
	calls := 0
	for _, in := range img.Prog {
		if in.Op == isa.CALL {
			calls++
			if int(in.A) != img.FuncPC["helper"] {
				t.Error("call target not fixed up")
			}
		}
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
}

func TestExternalsInterned(t *testing.T) {
	img, _ := compile(t, `
int f(void) { printf1(); printf2(); printf1(); return 0; }`, "f")
	if len(img.ExtNames) != 2 {
		t.Errorf("externals = %v, want 2 distinct", img.ExtNames)
	}
}

func TestSymbolicShiftRejected(t *testing.T) {
	f, err := parser.ParseFile("t.c", `int a, b, r; int f(void) { r = a << b; return r; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(f.Func("f"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(g, f); err == nil {
		t.Error("symbolic shift amount must be rejected")
	}
}
