package codegen

import (
	"fmt"

	"wcet/internal/cc/ast"
	"wcet/internal/isa"
)

// Defined callees are compiled as straight AST bodies (no MARK points: the
// measurement granularity of this reproduction is the analysed function;
// callee time is attributed to the calling block, exactly as an external
// routine's would be).

func appendUnique(list []*ast.FuncDecl, fn *ast.FuncDecl) []*ast.FuncDecl {
	for _, f := range list {
		if f == fn {
			return list
		}
	}
	return append(list, fn)
}

func (cp *compiler) compileCallees() error {
	for len(cp.pendingCallees) > 0 {
		fn := cp.pendingCallees[0]
		cp.pendingCallees = cp.pendingCallees[1:]
		if _, done := cp.c.FuncPC[fn.Name]; done {
			continue
		}
		cp.c.FuncPC[fn.Name] = len(cp.c.Prog)
		cc := &calleeCompiler{cp: cp}
		if err := cc.stmt(fn.Body); err != nil {
			return err
		}
		// Fall-off return.
		cp.emit(isa.Instr{Op: isa.LDI, A: cp.c.RetReg, Imm: 0})
		cp.emit(isa.Instr{Op: isa.RET})
	}
	return nil
}

type calleeCompiler struct {
	cp *compiler
	// breakFix / continueFix hold jump-instruction indices awaiting their
	// target, per nesting level.
	breakFix    [][]int
	continueFix [][]int
}

func (cc *calleeCompiler) here() int { return len(cc.cp.c.Prog) }

func (cc *calleeCompiler) patch(indices []int, target int) {
	for _, idx := range indices {
		switch cc.cp.c.Prog[idx].Op {
		case isa.JMP:
			cc.cp.c.Prog[idx].A = int32(target)
		case isa.BEQZ, isa.BNEZ:
			cc.cp.c.Prog[idx].B = int32(target)
		}
	}
}

func (cc *calleeCompiler) stmt(s ast.Stmt) error {
	cp := cc.cp
	switch x := s.(type) {
	case *ast.Block:
		for _, st := range x.Stmts {
			if err := cc.stmt(st); err != nil {
				return err
			}
		}
	case *ast.EmptyStmt:
	case *ast.ExprStmt, *ast.DeclStmt:
		return cp.item(s)
	case *ast.IfStmt:
		r, err := cp.expr(x.Cond)
		if err != nil {
			return err
		}
		toElse := cp.emit(isa.Instr{Op: isa.BEQZ, A: r})
		if err := cc.stmt(x.Then); err != nil {
			return err
		}
		if x.Else == nil {
			cc.patch([]int{toElse}, cc.here())
			return nil
		}
		skip := cp.emit(isa.Instr{Op: isa.JMP})
		cc.patch([]int{toElse}, cc.here())
		if err := cc.stmt(x.Else); err != nil {
			return err
		}
		cc.patch([]int{skip}, cc.here())
	case *ast.WhileStmt:
		head := cc.here()
		r, err := cp.expr(x.Cond)
		if err != nil {
			return err
		}
		exit := cp.emit(isa.Instr{Op: isa.BEQZ, A: r})
		cc.breakFix = append(cc.breakFix, nil)
		cc.continueFix = append(cc.continueFix, nil)
		if err := cc.stmt(x.Body); err != nil {
			return err
		}
		cc.patch(cc.continueFix[len(cc.continueFix)-1], cc.here())
		cp.emit(isa.Instr{Op: isa.JMP, A: int32(head)})
		cc.patch([]int{exit}, cc.here())
		cc.patch(cc.breakFix[len(cc.breakFix)-1], cc.here())
		cc.breakFix = cc.breakFix[:len(cc.breakFix)-1]
		cc.continueFix = cc.continueFix[:len(cc.continueFix)-1]
	case *ast.DoWhileStmt:
		head := cc.here()
		cc.breakFix = append(cc.breakFix, nil)
		cc.continueFix = append(cc.continueFix, nil)
		if err := cc.stmt(x.Body); err != nil {
			return err
		}
		cc.patch(cc.continueFix[len(cc.continueFix)-1], cc.here())
		r, err := cp.expr(x.Cond)
		if err != nil {
			return err
		}
		cp.emit(isa.Instr{Op: isa.BNEZ, A: r, B: int32(head)})
		cc.patch(cc.breakFix[len(cc.breakFix)-1], cc.here())
		cc.breakFix = cc.breakFix[:len(cc.breakFix)-1]
		cc.continueFix = cc.continueFix[:len(cc.continueFix)-1]
	case *ast.ForStmt:
		if x.Init != nil {
			if err := cc.stmt(x.Init); err != nil {
				return err
			}
		}
		head := cc.here()
		var exit int = -1
		if x.Cond != nil {
			r, err := cp.expr(x.Cond)
			if err != nil {
				return err
			}
			exit = cp.emit(isa.Instr{Op: isa.BEQZ, A: r})
		}
		cc.breakFix = append(cc.breakFix, nil)
		cc.continueFix = append(cc.continueFix, nil)
		if err := cc.stmt(x.Body); err != nil {
			return err
		}
		cc.patch(cc.continueFix[len(cc.continueFix)-1], cc.here())
		if x.Post != nil {
			if _, err := cp.expr(x.Post); err != nil {
				return err
			}
		}
		cp.emit(isa.Instr{Op: isa.JMP, A: int32(head)})
		if exit >= 0 {
			cc.patch([]int{exit}, cc.here())
		}
		cc.patch(cc.breakFix[len(cc.breakFix)-1], cc.here())
		cc.breakFix = cc.breakFix[:len(cc.breakFix)-1]
		cc.continueFix = cc.continueFix[:len(cc.continueFix)-1]
	case *ast.SwitchStmt:
		return cc.switchStmt(x)
	case *ast.BreakStmt:
		if len(cc.breakFix) == 0 {
			return &Error{Pos: x.BreakPos, Msg: "break outside loop/switch"}
		}
		idx := cp.emit(isa.Instr{Op: isa.JMP})
		cc.breakFix[len(cc.breakFix)-1] = append(cc.breakFix[len(cc.breakFix)-1], idx)
	case *ast.ContinueStmt:
		if len(cc.continueFix) == 0 {
			return &Error{Pos: x.ContinuePos, Msg: "continue outside loop"}
		}
		idx := cp.emit(isa.Instr{Op: isa.JMP})
		cc.continueFix[len(cc.continueFix)-1] = append(cc.continueFix[len(cc.continueFix)-1], idx)
	case *ast.ReturnStmt:
		if x.X != nil {
			r, err := cp.expr(x.X)
			if err != nil {
				return err
			}
			cp.emit(isa.Instr{Op: isa.MOV, A: cp.c.RetReg, B: r})
		}
		cp.emit(isa.Instr{Op: isa.RET})
	default:
		return fmt.Errorf("codegen: unsupported callee statement %T", s)
	}
	return nil
}

func (cc *calleeCompiler) switchStmt(x *ast.SwitchStmt) error {
	cp := cc.cp
	tag, err := cp.expr(x.Tag)
	if err != nil {
		return err
	}
	// Compare chain into per-clause bodies with fallthrough.
	entryFix := make([][]int, len(x.Clauses))
	dflt := -1
	for i, cl := range x.Clauses {
		if cl.Vals == nil {
			dflt = i
			continue
		}
		for _, v := range cl.Vals {
			cv, ok := constInt(v)
			if !ok {
				return &Error{Pos: v.Pos(), Msg: "non-constant case label"}
			}
			lit := cp.reg()
			cp.emit(isa.Instr{Op: isa.LDI, A: lit, Imm: cv})
			hit := cp.reg()
			cp.emit(isa.Instr{Op: isa.SEQ, A: hit, B: tag, C: lit})
			entryFix[i] = append(entryFix[i], cp.emit(isa.Instr{Op: isa.BNEZ, A: hit}))
		}
	}
	toDefault := cp.emit(isa.Instr{Op: isa.JMP})
	cc.breakFix = append(cc.breakFix, nil)
	for i, cl := range x.Clauses {
		cc.patch(entryFix[i], cc.here())
		if i == dflt {
			cc.patch([]int{toDefault}, cc.here())
		}
		for _, st := range cl.Body {
			if err := cc.stmt(st); err != nil {
				return err
			}
		}
	}
	if dflt < 0 {
		cc.patch([]int{toDefault}, cc.here())
	}
	cc.patch(cc.breakFix[len(cc.breakFix)-1], cc.here())
	cc.breakFix = cc.breakFix[:len(cc.breakFix)-1]
	return nil
}
