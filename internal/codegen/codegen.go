// Package codegen compiles the C-subset CFG to the virtual HCS12-flavoured
// ISA, inserting a MARK observation point at the start of every basic block
// so that one simulator run serves any instrumentation plan.
//
// Switch statements compile to compare chains (the dispatch TargetLink
// emits for small label sets), so later cases cost more cycles to reach —
// one of the effects that makes block timing path-dependent.
package codegen

import (
	"fmt"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/token"
	"wcet/internal/cfg"
	"wcet/internal/isa"
)

// Compiled is the executable image of one function.
type Compiled struct {
	G    *cfg.Graph
	Prog []isa.Instr
	// BlockPC maps each basic block to its first instruction.
	BlockPC map[cfg.NodeID]int
	// VarAddr assigns one memory word per variable.
	VarAddr map[*ast.VarDecl]int
	// VarType records each address's declared type for store truncation.
	VarType []ast.Type
	// ExtNames numbers external routines.
	ExtNames []string
	// FuncPC maps defined callees to their entry (compiled after main body).
	FuncPC map[string]int
	// RetReg is the register convention for return values.
	RetReg int32
}

// Error reports an uncompilable construct.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: codegen: %s", e.Pos, e.Msg) }

type compiler struct {
	c              *Compiled
	file           *ast.File
	nextReg        int32
	extIDs         map[string]int
	pendingCallees []*ast.FuncDecl
	// pending fixups: instruction index → block target.
	blockFix map[int]cfg.NodeID
	// pending call fixups: instruction index → callee name.
	callFix map[int]string
}

// Compile lowers the graph (and any defined functions it calls) to ISA code.
func Compile(g *cfg.Graph, file *ast.File) (*Compiled, error) {
	cp := &compiler{
		c: &Compiled{
			G:       g,
			BlockPC: map[cfg.NodeID]int{},
			VarAddr: map[*ast.VarDecl]int{},
			FuncPC:  map[string]int{},
			RetReg:  0,
		},
		file:     file,
		extIDs:   map[string]int{},
		blockFix: map[int]cfg.NodeID{},
		callFix:  map[int]string{},
	}
	cp.nextReg = 1 // r0 is the return-value register

	// Allocate addresses for every variable in the program (globals first,
	// then function locals/params as encountered).
	alloc := func(d *ast.VarDecl) {
		if _, ok := cp.c.VarAddr[d]; ok {
			return
		}
		cp.c.VarAddr[d] = len(cp.c.VarType)
		cp.c.VarType = append(cp.c.VarType, d.Type)
	}
	for _, gl := range file.Globals {
		alloc(gl)
	}
	ast.Walk(file, func(n ast.Node) bool {
		if d, ok := n.(*ast.VarDecl); ok {
			alloc(d)
		}
		return true
	})

	// Main body.
	if err := cp.compileGraph(g); err != nil {
		return nil, err
	}
	// Defined callees, compiled as straight AST bodies.
	if err := cp.compileCallees(); err != nil {
		return nil, err
	}
	// Fix block branch targets.
	for idx, blk := range cp.blockFix {
		pc, ok := cp.c.BlockPC[blk]
		if !ok {
			return nil, fmt.Errorf("codegen: missing block B%d", blk)
		}
		switch cp.c.Prog[idx].Op {
		case isa.JMP, isa.CALL:
			cp.c.Prog[idx].A = int32(pc)
		case isa.BEQZ, isa.BNEZ:
			cp.c.Prog[idx].B = int32(pc)
		}
	}
	for idx, name := range cp.callFix {
		pc, ok := cp.c.FuncPC[name]
		if !ok {
			return nil, fmt.Errorf("codegen: missing function %s", name)
		}
		cp.c.Prog[idx].A = int32(pc)
	}
	return cp.c, nil
}

func (cp *compiler) emit(i isa.Instr) int {
	cp.c.Prog = append(cp.c.Prog, i)
	return len(cp.c.Prog) - 1
}

func (cp *compiler) reg() int32 {
	r := cp.nextReg
	cp.nextReg++
	return r
}

func (cp *compiler) compileGraph(g *cfg.Graph) error {
	// Emit blocks in id order; entry is block 0 by construction? Not
	// necessarily — ensure the entry block is first.
	order := make([]cfg.NodeID, 0, len(g.Nodes))
	order = append(order, g.Entry)
	for _, n := range g.Nodes {
		if n.ID != g.Entry {
			order = append(order, n.ID)
		}
	}
	for _, id := range order {
		n := g.Node(id)
		cp.c.BlockPC[id] = len(cp.c.Prog)
		cp.emit(isa.Instr{Op: isa.MARK, Imm: int64(id)})
		for _, item := range n.Items {
			if err := cp.item(item); err != nil {
				return err
			}
		}
		if err := cp.term(g, n); err != nil {
			return err
		}
	}
	return nil
}

func (cp *compiler) term(g *cfg.Graph, n *cfg.Node) error {
	switch n.Term.Kind {
	case cfg.TermGoto:
		cp.blockFix[cp.emit(isa.Instr{Op: isa.JMP})] = n.Term.To
	case cfg.TermReturn:
		if n.Term.Val != nil {
			r, err := cp.expr(n.Term.Val)
			if err != nil {
				return err
			}
			cp.emit(isa.Instr{Op: isa.MOV, A: cp.c.RetReg, B: r})
		}
		cp.blockFix[cp.emit(isa.Instr{Op: isa.JMP})] = n.Term.To
	case cfg.TermBranch:
		r, err := cp.expr(n.Term.Cond)
		if err != nil {
			return err
		}
		cp.blockFix[cp.emit(isa.Instr{Op: isa.BEQZ, A: r})] = n.Term.False
		cp.blockFix[cp.emit(isa.Instr{Op: isa.JMP})] = n.Term.True
	case cfg.TermSwitch:
		tag, err := cp.expr(n.Term.Tag)
		if err != nil {
			return err
		}
		// Compare chain: later cases cost more to reach.
		for _, c := range n.Term.Cases {
			for _, v := range c.Vals {
				lit := cp.reg()
				cp.emit(isa.Instr{Op: isa.LDI, A: lit, Imm: v})
				hit := cp.reg()
				cp.emit(isa.Instr{Op: isa.SEQ, A: hit, B: tag, C: lit})
				cp.blockFix[cp.emit(isa.Instr{Op: isa.BNEZ, A: hit})] = c.To
			}
		}
		cp.blockFix[cp.emit(isa.Instr{Op: isa.JMP})] = n.Term.Default
	case cfg.TermExit:
		cp.emit(isa.Instr{Op: isa.HALT})
	}
	return nil
}

func (cp *compiler) item(s ast.Stmt) error {
	switch x := s.(type) {
	case *ast.ExprStmt:
		// External calls in statement position need no result register.
		if call, ok := x.X.(*ast.CallExpr); ok && call.Cast == nil && call.Decl == nil {
			for _, a := range call.Args {
				if _, err := cp.expr(a); err != nil {
					return err
				}
			}
			cp.emit(isa.Instr{Op: isa.EXT, Imm: int64(cp.extID(call.Name))})
			return nil
		}
		_, err := cp.expr(x.X)
		return err
	case *ast.DeclStmt:
		if x.Decl.Init == nil {
			return nil
		}
		r, err := cp.expr(x.Decl.Init)
		if err != nil {
			return err
		}
		cp.store(x.Decl, r)
		return nil
	}
	return &Error{Pos: s.Pos(), Msg: fmt.Sprintf("unsupported item %T", s)}
}

// store truncates through the declared type and writes memory.
func (cp *compiler) store(d *ast.VarDecl, r int32) {
	t := d.Type
	if t.Bits > 0 && t.Bits < 64 {
		sign := int32(0)
		if t.Signed {
			sign = 1
		}
		cp.emit(isa.Instr{Op: isa.TRUNC, A: r, B: sign, C: int32(t.Bits)})
	}
	cp.emit(isa.Instr{Op: isa.ST, A: int32(cp.c.VarAddr[d]), B: r})
}

func (cp *compiler) load(d *ast.VarDecl) int32 {
	r := cp.reg()
	cp.emit(isa.Instr{Op: isa.LD, A: r, B: int32(cp.c.VarAddr[d])})
	return r
}

func (cp *compiler) expr(e ast.Expr) (int32, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		r := cp.reg()
		cp.emit(isa.Instr{Op: isa.LDI, A: r, Imm: x.Val})
		return r, nil
	case *ast.Ident:
		if x.Decl == nil {
			return 0, &Error{Pos: x.NamePos, Msg: "unresolved identifier " + x.Name}
		}
		return cp.load(x.Decl), nil
	case *ast.UnaryExpr:
		return cp.unary(x)
	case *ast.BinaryExpr:
		return cp.binary(x)
	case *ast.AssignExpr:
		return cp.assign(x)
	case *ast.CondExpr:
		// Arms are side-effect free (checked by the CFG builder for
		// conditions; we enforce purity here too): compute both, select.
		c, err := cp.expr(x.Cond)
		if err != nil {
			return 0, err
		}
		tv, err := cp.expr(x.Then)
		if err != nil {
			return 0, err
		}
		fv, err := cp.expr(x.Else)
		if err != nil {
			return 0, err
		}
		// r = f ^ ((t ^ f) & -(c != 0))
		b := cp.reg()
		cp.emit(isa.Instr{Op: isa.BOOL, A: b, B: c})
		m := cp.reg()
		cp.emit(isa.Instr{Op: isa.NEG, A: m, B: b})
		d := cp.reg()
		cp.emit(isa.Instr{Op: isa.XOR, A: d, B: tv, C: fv})
		d2 := cp.reg()
		cp.emit(isa.Instr{Op: isa.AND, A: d2, B: d, C: m})
		r := cp.reg()
		cp.emit(isa.Instr{Op: isa.XOR, A: r, B: fv, C: d2})
		return r, nil
	case *ast.CallExpr:
		return cp.call(x)
	}
	return 0, &Error{Pos: e.Pos(), Msg: fmt.Sprintf("unsupported expression %T", e)}
}

func (cp *compiler) unary(x *ast.UnaryExpr) (int32, error) {
	if x.Op == token.INC || x.Op == token.DEC {
		id := x.X.(*ast.Ident)
		old := cp.load(id.Decl)
		one := cp.reg()
		cp.emit(isa.Instr{Op: isa.LDI, A: one, Imm: 1})
		nv := cp.reg()
		op := isa.ADD
		if x.Op == token.DEC {
			op = isa.SUB
		}
		cp.emit(isa.Instr{Op: op, A: nv, B: old, C: one})
		cp.store(id.Decl, nv)
		if x.Postfix {
			return old, nil
		}
		return cp.load(id.Decl), nil
	}
	r, err := cp.expr(x.X)
	if err != nil {
		return 0, err
	}
	out := cp.reg()
	switch x.Op {
	case token.MINUS:
		cp.emit(isa.Instr{Op: isa.NEG, A: out, B: r})
	case token.PLUS:
		return r, nil
	case token.TILDE:
		cp.emit(isa.Instr{Op: isa.NOT, A: out, B: r})
	case token.BANG:
		b := cp.reg()
		cp.emit(isa.Instr{Op: isa.BOOL, A: b, B: r})
		one := cp.reg()
		cp.emit(isa.Instr{Op: isa.LDI, A: one, Imm: 1})
		cp.emit(isa.Instr{Op: isa.XOR, A: out, B: b, C: one})
	default:
		return 0, &Error{Pos: x.OpPos, Msg: "bad unary operator"}
	}
	return out, nil
}

func (cp *compiler) binary(x *ast.BinaryExpr) (int32, error) {
	// Short-circuit forms: operands are pure in the accepted subset, so a
	// branch-free evaluation is faithful; it also keeps block timing
	// constant, as real generated code mostly does.
	if x.Op == token.LAND || x.Op == token.LOR {
		a, err := cp.expr(x.X)
		if err != nil {
			return 0, err
		}
		b, err := cp.expr(x.Y)
		if err != nil {
			return 0, err
		}
		ba := cp.reg()
		cp.emit(isa.Instr{Op: isa.BOOL, A: ba, B: a})
		bb := cp.reg()
		cp.emit(isa.Instr{Op: isa.BOOL, A: bb, B: b})
		out := cp.reg()
		if x.Op == token.LAND {
			cp.emit(isa.Instr{Op: isa.AND, A: out, B: ba, C: bb})
		} else {
			cp.emit(isa.Instr{Op: isa.OR, A: out, B: ba, C: bb})
		}
		return out, nil
	}
	a, err := cp.expr(x.X)
	if err != nil {
		return 0, err
	}
	b, err := cp.expr(x.Y)
	if err != nil {
		return 0, err
	}
	out := cp.reg()
	simple := map[token.Kind]isa.Op{
		token.PLUS: isa.ADD, token.MINUS: isa.SUB, token.STAR: isa.MUL,
		token.SLASH: isa.DIV, token.PERCENT: isa.MOD,
		token.AMP: isa.AND, token.PIPE: isa.OR, token.CARET: isa.XOR,
		token.EQ: isa.SEQ, token.NE: isa.SNE,
		token.LT: isa.SLT, token.LE: isa.SLE,
	}
	if op, ok := simple[x.Op]; ok {
		cp.emit(isa.Instr{Op: op, A: out, B: a, C: b})
		return out, nil
	}
	switch x.Op {
	case token.GT:
		cp.emit(isa.Instr{Op: isa.SLT, A: out, B: b, C: a})
	case token.GE:
		cp.emit(isa.Instr{Op: isa.SLE, A: out, B: b, C: a})
	case token.NE:
		cp.emit(isa.Instr{Op: isa.SNE, A: out, B: a, C: b})
	case token.SHL, token.SHR:
		k, ok := constInt(x.Y)
		if !ok {
			return 0, &Error{Pos: x.Pos(), Msg: "shift amounts must be constant"}
		}
		op := isa.SHL
		if x.Op == token.SHR {
			op = isa.ASR // C >> on signed int is arithmetic on this target
		}
		cp.emit(isa.Instr{Op: op, A: out, B: a, C: int32(k)})
	default:
		return 0, &Error{Pos: x.Pos(), Msg: "bad binary operator " + x.Op.String()}
	}
	return out, nil
}

// extID interns an external routine name.
func (cp *compiler) extID(name string) int {
	id, ok := cp.extIDs[name]
	if !ok {
		id = len(cp.c.ExtNames)
		cp.extIDs[name] = id
		cp.c.ExtNames = append(cp.c.ExtNames, name)
	}
	return id
}

func constInt(e ast.Expr) (int64, bool) {
	if l, ok := e.(*ast.IntLit); ok {
		return l.Val, true
	}
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.MINUS {
		if v, ok := constInt(u.X); ok {
			return -v, true
		}
	}
	return 0, false
}

func (cp *compiler) assign(x *ast.AssignExpr) (int32, error) {
	id := x.LHS.(*ast.Ident)
	r, err := cp.expr(x.RHS)
	if err != nil {
		return 0, err
	}
	if x.Op != token.ASSIGN {
		old := cp.load(id.Decl)
		out := cp.reg()
		switch x.Op.BaseOp() {
		case token.PLUS:
			cp.emit(isa.Instr{Op: isa.ADD, A: out, B: old, C: r})
		case token.MINUS:
			cp.emit(isa.Instr{Op: isa.SUB, A: out, B: old, C: r})
		case token.STAR:
			cp.emit(isa.Instr{Op: isa.MUL, A: out, B: old, C: r})
		case token.SLASH:
			cp.emit(isa.Instr{Op: isa.DIV, A: out, B: old, C: r})
		case token.PERCENT:
			cp.emit(isa.Instr{Op: isa.MOD, A: out, B: old, C: r})
		case token.AMP:
			cp.emit(isa.Instr{Op: isa.AND, A: out, B: old, C: r})
		case token.PIPE:
			cp.emit(isa.Instr{Op: isa.OR, A: out, B: old, C: r})
		case token.CARET:
			cp.emit(isa.Instr{Op: isa.XOR, A: out, B: old, C: r})
		case token.SHL:
			k, ok := constInt(x.RHS)
			if !ok {
				return 0, &Error{Pos: x.Pos(), Msg: "shift amounts must be constant"}
			}
			cp.emit(isa.Instr{Op: isa.SHL, A: out, B: old, C: int32(k)})
		case token.SHR:
			k, ok := constInt(x.RHS)
			if !ok {
				return 0, &Error{Pos: x.Pos(), Msg: "shift amounts must be constant"}
			}
			cp.emit(isa.Instr{Op: isa.ASR, A: out, B: old, C: int32(k)})
		default:
			return 0, &Error{Pos: x.Pos(), Msg: "bad compound assignment"}
		}
		r = out
	}
	cp.store(id.Decl, r)
	return r, nil
}

func (cp *compiler) call(x *ast.CallExpr) (int32, error) {
	if x.Cast != nil {
		r, err := cp.expr(x.Args[0])
		if err != nil {
			return 0, err
		}
		t := *x.Cast
		if t.Bits > 0 && t.Bits < 64 {
			sign := int32(0)
			if t.Signed {
				sign = 1
			}
			out := cp.reg()
			cp.emit(isa.Instr{Op: isa.MOV, A: out, B: r})
			cp.emit(isa.Instr{Op: isa.TRUNC, A: out, B: sign, C: int32(t.Bits)})
			return out, nil
		}
		return r, nil
	}
	if x.Decl == nil {
		// External: evaluate arguments, then a fixed-cost EXT; the result
		// register models the routine's (unknown, zero-modelled) value.
		for _, a := range x.Args {
			if _, err := cp.expr(a); err != nil {
				return 0, err
			}
		}
		cp.emit(isa.Instr{Op: isa.EXT, Imm: int64(cp.extID(x.Name))})
		r := cp.reg()
		cp.emit(isa.Instr{Op: isa.LDI, A: r, Imm: 0})
		return r, nil
	}
	// Defined callee: store arguments to the parameter slots, CALL.
	for i, a := range x.Args {
		r, err := cp.expr(a)
		if err != nil {
			return 0, err
		}
		cp.store(x.Decl.Params[i], r)
	}
	cp.callFix[cp.emit(isa.Instr{Op: isa.CALL})] = x.Name
	cp.pendingCallees = appendUnique(cp.pendingCallees, x.Decl)
	out := cp.reg()
	cp.emit(isa.Instr{Op: isa.MOV, A: out, B: cp.c.RetReg})
	return out, nil
}
