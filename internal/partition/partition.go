// Package partition implements the paper's CFG partitioning algorithm
// (Section 2): the control flow graph is decomposed into program segments
// (PS) following the abstract syntax tree, top-down. A PS whose internal
// path count does not exceed the path bound b is measured as a whole — two
// instrumentation points and one measurement per path. Larger segments are
// decomposed into their nested segments plus residual basic blocks.
//
// On the paper's Figure 1 program the accounting reproduces Table 1 exactly:
//
//	b=1  → ip=22, m=11
//	b=2…5 → ip=16, m=9
//	b=6,7 → ip=2,  m=6
package partition

import (
	"context"
	"fmt"
	"strings"

	"wcet/internal/cfg"
	"wcet/internal/fail"
	"wcet/internal/faults"
	"wcet/internal/journal"
	"wcet/internal/obs"
	"wcet/internal/par"
)

// PS is a program segment: a single-entry subgraph of the CFG, arranged in
// the hierarchy induced by the abstract syntax tree.
type PS struct {
	// Kind mirrors the structural origin: "function", "then", "else",
	// "case", "default", "loop-body".
	Kind string
	// Region is the segment's block set with its entry.
	Region cfg.Region
	// Paths is the number of entry→exit paths inside the segment.
	Paths cfg.Count
	// Children are the nested segments, in source order.
	Children []*PS
}

// BuildTree derives the PS tree of a graph from its structural arms,
// keeping only arms that are valid program segments (entered via a single
// control edge). Invalid arms — e.g. switch clauses that are fallen into —
// are dissolved: their nested segments are lifted to the parent.
//
// A graph without an arm tree (hand-assembled instead of produced by
// cfg.Build) is an input defect reported as fail.ErrInfrastructure — a
// long-running analysis service must reject such a graph, not crash on it.
func BuildTree(g *cfg.Graph) (*PS, error) {
	if g.Arms == nil {
		return nil, fail.Infra("partition", fmt.Errorf("graph has no arm tree (built without cfg.Build?)"))
	}
	root := buildPS(g, g.Arms)
	if root == nil {
		// The function arm is always single-entry; reaching this means the
		// arm tree is inconsistent with the graph.
		return nil, fail.Infra("partition", fmt.Errorf("function arm rejected (inconsistent arm tree)"))
	}
	return root, nil
}

func buildPS(g *cfg.Graph, a *cfg.Arm) *PS {
	var kids []*PS
	for _, c := range a.Children {
		kids = append(kids, liftValid(g, c)...)
	}
	if a.Kind != "function" && !a.SingleEntry(g) {
		return nil
	}
	ps := &PS{
		Kind:     a.Kind,
		Region:   a.Region(g),
		Paths:    a.Region(g).PathCount(),
		Children: kids,
	}
	return ps
}

func liftValid(g *cfg.Graph, a *cfg.Arm) []*PS {
	if ps := buildPS(g, a); ps != nil {
		return []*PS{ps}
	}
	var out []*PS
	for _, c := range a.Children {
		out = append(out, liftValid(g, c)...)
	}
	return out
}

// String renders the PS tree for diagnostics.
func (ps *PS) String() string {
	var b strings.Builder
	var rec func(*PS, int)
	rec = func(p *PS, depth int) {
		fmt.Fprintf(&b, "%s%s entry=B%d blocks=%d paths=%s\n",
			strings.Repeat("  ", depth), p.Kind, p.Region.Entry, p.Region.Size(), p.Paths)
		for _, c := range p.Children {
			rec(c, depth+1)
		}
	}
	rec(ps, 0)
	return b.String()
}

// UnitKind distinguishes the two measured unit shapes.
type UnitKind int

// Unit kinds.
const (
	// WholePS: the segment is measured end to end, once per internal path.
	WholePS UnitKind = iota
	// SingleBlock: a residual basic block measured on its own.
	SingleBlock
)

// Unit is one measured item of an instrumentation plan.
type Unit struct {
	Kind  UnitKind
	PS    *PS        // set for WholePS
	Block cfg.NodeID // set for SingleBlock
	// Paths is the number of measurements the unit requires.
	Paths cfg.Count
}

// Plan is the instrumentation and measurement plan for one path bound.
type Plan struct {
	G     *cfg.Graph
	Tree  *PS
	Bound cfg.Count
	Units []Unit
	// IP is the number of instrumentation points (two per unit).
	IP int
	// M is the total number of measurements (path-forcing runs).
	M cfg.Count
}

// IPFused is the instrumentation point count under the paper's footnote-1
// "intelligent instrumentation", which fuses the stop of one unit with the
// start of the next: ip/2 + 1.
func (p *Plan) IPFused() int { return p.IP/2 + 1 }

// Partition computes the plan for path bound b over a prebuilt PS tree.
func Partition(g *cfg.Graph, tree *PS, bound cfg.Count) *Plan {
	p := &Plan{G: g, Tree: tree, Bound: bound, M: cfg.NewCount(0)}
	p.visit(tree)
	return p
}

// PartitionBound is Partition with an integer bound, building the PS tree
// itself.
func PartitionBound(g *cfg.Graph, b int64) (*Plan, error) {
	tree, err := BuildTree(g)
	if err != nil {
		return nil, err
	}
	return Partition(g, tree, cfg.NewCount(b)), nil
}

// MustBuildTree is BuildTree for graphs known to come from cfg.Build
// (tests and examples); it panics on the input defect BuildTree reports.
func MustBuildTree(g *cfg.Graph) *PS {
	tree, err := BuildTree(g)
	if err != nil {
		panic(err)
	}
	return tree
}

// MustPartitionBound is PartitionBound with the MustBuildTree contract.
func MustPartitionBound(g *cfg.Graph, b int64) *Plan {
	plan, err := PartitionBound(g, b)
	if err != nil {
		panic(err)
	}
	return plan
}

func (p *Plan) visit(ps *PS) {
	if !ps.Paths.IsInf() && ps.Paths.CmpCount(p.Bound) <= 0 {
		p.Units = append(p.Units, Unit{Kind: WholePS, PS: ps, Paths: ps.Paths})
		p.IP += 2
		p.M = p.M.Add(ps.Paths)
		return
	}
	covered := map[cfg.NodeID]bool{}
	for _, c := range ps.Children {
		p.visit(c)
		for id := range c.Region.Set {
			covered[id] = true
		}
	}
	for _, id := range ps.Region.Nodes() {
		if covered[id] {
			continue
		}
		p.Units = append(p.Units, Unit{Kind: SingleBlock, Block: id, Paths: cfg.NewCount(1)})
		p.IP += 2
		p.M = p.M.Add(cfg.NewCount(1))
	}
}

// Point is one sweep sample for the Figures 2 and 3 series.
type Point struct {
	Bound   cfg.Count
	IP      int
	IPFused int
	M       cfg.Count
}

// Sweep evaluates the plan across the given bounds. Each bound's partition
// pass is independent (the PS tree is built once and only read), so the
// optional workers argument fans the sweep out over a worker pool; results
// are collected indexed by bound position, making the series identical for
// every worker count. Omitted or 1 sweeps serially; 0 uses one worker per
// CPU.
func Sweep(g *cfg.Graph, bounds []cfg.Count, workers ...int) ([]Point, error) {
	w := 1
	if len(workers) > 0 {
		w = par.Workers(workers[0])
	}
	return SweepCtx(context.Background(), g, bounds, w)
}

// pointRecord is the journaled form of one sweep sample: the per-PS
// partition decision for one bound, with counts round-tripped through
// their decimal rendering (big integers do not survive JSON numbers).
type pointRecord struct {
	Bound   string
	IP      int
	IPFused int
	M       string
}

// SweepCtx is Sweep under a context: cancellation stops the remaining
// bounds cooperatively, and a panicking per-bound pass is isolated into a
// deterministic fail.ErrWorkerPanic attributed to its bound instead of
// crashing the sweep. Each bound's decision is one durable unit: with a
// run journal on the context ("sweep/<bound>"), an interrupted sweep
// resumes by replaying finished points.
func SweepCtx(ctx context.Context, g *cfg.Graph, bounds []cfg.Count, workers int) ([]Point, error) {
	w := par.Workers(workers)
	tree, err := BuildTree(g)
	if err != nil {
		return nil, err
	}
	o := obs.From(ctx)
	j := journal.From(ctx)
	out := make([]Point, len(bounds))
	err = par.ForEachCtx(ctx, len(bounds), w, func(ctx context.Context, i int) error {
		record := func(p Point) {
			out[i] = p
			// The point series is indexed by bound position, so the gauge's
			// logical index makes the last bound's ip win deterministically.
			o.Count("partition.sweep.points", 1)
			o.Set("partition.sweep.last_ip", int64(i), int64(p.IP))
		}
		var rec pointRecord
		if j.GetJSON("sweep/"+bounds[i].String(), &rec) {
			if b, okB := cfg.ParseCount(rec.Bound); okB {
				if m, okM := cfg.ParseCount(rec.M); okM {
					record(Point{Bound: b, IP: rec.IP, IPFused: rec.IPFused, M: m})
					o.Count("partition.journal.replayed", 1)
					return nil
				}
			}
		}
		if ferr := faults.Fire(ctx, "partition.point", i); ferr != nil {
			return fail.Attribute(fail.From("partition", ferr), "partition", bounds[i].String())
		}
		plan := Partition(g, tree, bounds[i])
		p := Point{Bound: bounds[i], IP: plan.IP, IPFused: plan.IPFused(), M: plan.M}
		_ = j.PutJSON("sweep/"+bounds[i].String(), &pointRecord{
			Bound: p.Bound.String(), IP: p.IP, IPFused: p.IPFused, M: p.M.String()})
		record(p)
		return nil
	})
	if err != nil {
		return nil, fail.Attribute(err, "partition", "")
	}
	return out, nil
}

// DefaultBounds produces a log-spaced bound series 1, 2, 4, … that runs past
// the whole-function path count (so the last point is the end-to-end
// measurement with ip = 2), capped at maxPoints samples.
func DefaultBounds(g *cfg.Graph, maxPoints int) []cfg.Count {
	total := cfg.WholeFunction(g).PathCount()
	var out []cfg.Count
	b := cfg.NewCount(1)
	for i := 0; i < maxPoints; i++ {
		out = append(out, b)
		if !total.IsInf() && b.CmpCount(total) >= 0 {
			break
		}
		b = b.Mul(cfg.NewCount(2))
	}
	return out
}
