package partition

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"wcet/internal/cfg"
	"wcet/internal/fail"
	"wcet/internal/faults"
	"wcet/internal/journal"
)

// TestBuildTreeRejectsGraphWithoutArmTree is the regression for the old
// panic: a hand-assembled graph (no AST arm tree) must come back as a
// structured input error, never crash the process.
func TestBuildTreeRejectsGraphWithoutArmTree(t *testing.T) {
	g := &cfg.Graph{} // built by hand, not by cfg.Build — Arms is nil
	tree, err := BuildTree(g)
	if tree != nil || !errors.Is(err, fail.ErrInfrastructure) {
		t.Fatalf("BuildTree(no arms) = (%v, %v), want ErrInfrastructure", tree, err)
	}
	if plan, err := PartitionBound(g, 4); plan != nil || !errors.Is(err, fail.ErrInfrastructure) {
		t.Errorf("PartitionBound(no arms) = (%v, %v), want ErrInfrastructure", plan, err)
	}
	if pts, err := Sweep(g, DefaultBounds(g, 4)); pts != nil || !errors.Is(err, fail.ErrInfrastructure) {
		t.Errorf("Sweep(no arms) = (%v, %v), want ErrInfrastructure", pts, err)
	}
}

func TestSweepInjectedFaultAttributedToBound(t *testing.T) {
	g := buildGraph(t, figure1, "main")
	bounds := DefaultBounds(g, 8)
	ctx := faults.With(context.Background(),
		faults.New(faults.Rule{Site: "partition.point", Index: 2}))
	pts, err := SweepCtx(ctx, g, bounds, 4)
	if pts != nil || err == nil {
		t.Fatalf("injected fault not surfaced: (%v, %v)", pts, err)
	}
	var fe *fail.Error
	if !errors.As(err, &fe) || fe.Stage != "partition" || fe.Path != bounds[2].String() {
		t.Errorf("fault not attributed to its bound: %v", err)
	}
}

func TestSweepInjectedPanicDeterministicAcrossWorkers(t *testing.T) {
	g := buildGraph(t, figure1, "main")
	bounds := DefaultBounds(g, 8)
	run := func(workers int) string {
		ctx := faults.With(context.Background(),
			faults.New(faults.Rule{Site: "partition.point", Index: 1, Mode: faults.Panic}))
		_, err := SweepCtx(ctx, g, bounds, workers)
		if !errors.Is(err, fail.ErrWorkerPanic) {
			t.Fatalf("workers=%d: got %v, want ErrWorkerPanic", workers, err)
		}
		return err.Error()
	}
	if s, p := run(1), run(8); s != p {
		t.Errorf("panic error differs across workers:\n  1: %s\n  8: %s", s, p)
	}
}

func TestSweepCancelled(t *testing.T) {
	g := buildGraph(t, figure1, "main")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SweepCtx(ctx, g, DefaultBounds(g, 8), 4); !errors.Is(err, fail.ErrCancelled) {
		t.Errorf("cancelled sweep: got %v, want ErrCancelled", err)
	}
}

// TestSweepJournalResumeSkipsPartitioning: a journaled sweep replays its
// points without re-partitioning — pinned by arming a fault at every sweep
// site on the resumed run — and big-integer measurement counts survive the
// round trip through their decimal rendering.
func TestSweepJournalResumeSkipsPartitioning(t *testing.T) {
	g := buildGraph(t, figure1, "main")
	bounds := DefaultBounds(g, 8)
	j, err := journal.Open(filepath.Join(t.TempDir(), "j"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	jctx := journal.With(context.Background(), j)
	first, err := SweepCtx(jctx, g, bounds, 4)
	if err != nil {
		t.Fatal(err)
	}
	rctx := faults.With(jctx, faults.New(faults.Rule{Site: "partition.point", Index: -1}))
	resumed, err := SweepCtx(rctx, g, bounds, 4)
	if err != nil {
		t.Fatalf("replayed sweep re-partitioned: %v", err)
	}
	if len(first) != len(resumed) {
		t.Fatalf("point counts differ: %d vs %d", len(first), len(resumed))
	}
	for i := range first {
		a, b := first[i], resumed[i]
		if a.Bound.CmpCount(b.Bound) != 0 || a.IP != b.IP || a.IPFused != b.IPFused ||
			a.M.CmpCount(b.M) != 0 {
			t.Errorf("point %d differs after replay: %+v vs %+v", i, a, b)
		}
	}
}
