package partition

import (
	"testing"

	"wcet/internal/cfg"
)

func TestGeneralPartitionCoversEveryBlockOnce(t *testing.T) {
	g := buildGraph(t, figure1, "main")
	for _, b := range []int64{1, 2, 3, 6, 100} {
		plan := GeneralPartition(g, cfg.NewCount(b))
		seen := map[cfg.NodeID]int{}
		for _, u := range plan.Units {
			switch u.Kind {
			case SingleBlock:
				seen[u.Block]++
			case WholePS:
				for id := range u.PS.Region.Set {
					seen[id]++
				}
			}
		}
		for _, n := range g.Nodes {
			if seen[n.ID] != 1 {
				t.Errorf("b=%d: block B%d covered %d times", b, n.ID, seen[n.ID])
			}
		}
		if plan.IP != 2*len(plan.Units) {
			t.Errorf("b=%d: ip accounting broken", b)
		}
	}
}

// TestGeneralNeverWorseThanSimple is the paper's expectation for its
// announced extension: the general partitioning needs at most as many
// instrumentation points as the AST-based one at every bound.
func TestGeneralNeverWorseThanSimple(t *testing.T) {
	sources := map[string]string{
		"main": figure1,
		"f": `int a, b, c; void f(void) {
			if (a) { if (b) { c = 1; } else { c = 2; } c = c + 1; } else { c = 3; }
			switch (c) { case 1: a = 1; break; case 2: a = 2; break; default: a = 0; }
			if (b) { b = 0; }
			c = a + b;
		}`,
	}
	for name, src := range sources {
		g := buildGraph(t, src, name)
		tree := MustBuildTree(g)
		for b := int64(1); b <= 64; b *= 2 {
			simple := Partition(g, tree, cfg.NewCount(b))
			general := GeneralPartition(g, cfg.NewCount(b))
			if general.IP > simple.IP {
				t.Errorf("%s b=%d: general ip %d > simple ip %d", name, b, general.IP, simple.IP)
			}
		}
	}
}

// TestGeneralImprovesOnChains: a straight-line suffix after a decision is a
// dominator region the simple partitioning cannot merge; the general one
// measures it as one segment.
func TestGeneralImprovesOnChains(t *testing.T) {
	g := buildGraph(t, `
int a, r;
void f(void) {
    if (a) { r = 1; }
    r = r + 1;
    r = r * 2;
    r = r - 3;
    r = r ^ 1;
}`, "f")
	b := cfg.NewCount(1)
	simple := Partition(g, MustBuildTree(g), b)
	general := GeneralPartition(g, b)
	if general.IP >= simple.IP {
		t.Errorf("general ip %d should beat simple ip %d on chain suffixes",
			general.IP, simple.IP)
	}
	// Both stay at one measurement per unit at b=1… measurements may only
	// shrink (merging 1-path chains costs nothing).
	if general.M.CmpCount(simple.M) > 0 {
		t.Errorf("general m %s exceeds simple m %s at b=1", general.M, simple.M)
	}
}

func TestGeneralSegmentsAreSingleEntry(t *testing.T) {
	g := buildGraph(t, figure1, "main")
	plan := GeneralPartition(g, cfg.NewCount(2))
	for _, u := range plan.Units {
		if u.Kind != WholePS {
			continue
		}
		entries := 0
		for _, n := range g.Nodes {
			if u.PS.Region.Set[n.ID] {
				continue
			}
			for _, e := range g.Succs(n.ID) {
				if u.PS.Region.Set[e.To] {
					entries++
					if e.To != u.PS.Region.Entry {
						t.Errorf("general segment entered at non-root B%d", e.To)
					}
				}
			}
		}
		if u.PS.Region.Entry != g.Entry && entries != 1 {
			t.Errorf("general segment has %d entry edges", entries)
		}
	}
}

func TestGeneralEndToEndAtLargeBound(t *testing.T) {
	g := buildGraph(t, figure1, "main")
	plan := GeneralPartition(g, cfg.NewCount(1000))
	if plan.IP != 2 || plan.M.Cmp(6) != 0 {
		t.Errorf("general at huge bound: ip=%d m=%s, want 2/6", plan.IP, plan.M)
	}
}
