package partition

import (
	"testing"

	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
)

// figure1 is the paper's Figure 1 listing.
const figure1 = `
int main() {
    int i;
    printf1();
    printf2();
    if (i == 0)
    {
        printf3();
        if (i == 0) {
            printf4();
        } else {
            printf5();
        }
    }
    if (i == 0)
    {
        printf6();
        printf7();
    }
    printf8();
}
`

func buildGraph(t *testing.T, src, name string) *cfg.Graph {
	t.Helper()
	f, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatalf("sem: %v", err)
	}
	g, err := cfg.Build(f.Func(name))
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return g
}

// TestTable1 reproduces the paper's Table 1 exactly.
func TestTable1(t *testing.T) {
	g := buildGraph(t, figure1, "main")
	want := []struct {
		b  int64
		ip int
		m  int64
	}{
		{1, 22, 11},
		{2, 16, 9},
		{3, 16, 9},
		{4, 16, 9},
		{5, 16, 9},
		{6, 2, 6},
		{7, 2, 6},
	}
	tree := MustBuildTree(g)
	for _, w := range want {
		plan := Partition(g, tree, cfg.NewCount(w.b))
		if plan.IP != w.ip || plan.M.Cmp(w.m) != 0 {
			t.Errorf("b=%d: ip=%d m=%s, want ip=%d m=%d\ntree:\n%s",
				w.b, plan.IP, plan.M, w.ip, w.m, tree)
		}
	}
}

func TestTable1Fused(t *testing.T) {
	// Footnote 1: fusing consecutive instrumentation points gives ip/2+1.
	g := buildGraph(t, figure1, "main")
	plan := MustPartitionBound(g, 1)
	if plan.IPFused() != 12 {
		t.Errorf("fused ip = %d, want 12", plan.IPFused())
	}
}

func TestTreeShapeFigure1(t *testing.T) {
	g := buildGraph(t, figure1, "main")
	tree := MustBuildTree(g)
	if tree.Kind != "function" {
		t.Fatalf("root kind = %q", tree.Kind)
	}
	if tree.Paths.Cmp(6) != 0 {
		t.Errorf("root paths = %s, want 6", tree.Paths)
	}
	// Direct children: outer then-arm (4 blocks, 2 paths) and second if's
	// then-arm (1 block, 1 path).
	if len(tree.Children) != 2 {
		t.Fatalf("root children = %d, want 2\n%s", len(tree.Children), tree)
	}
	outer := tree.Children[0]
	if outer.Region.Size() != 4 || outer.Paths.Cmp(2) != 0 {
		t.Errorf("outer then-arm: blocks=%d paths=%s, want 4 blocks 2 paths",
			outer.Region.Size(), outer.Paths)
	}
	// Its nested segments are the inner if's arms.
	if len(outer.Children) != 2 {
		t.Errorf("outer arm children = %d, want 2", len(outer.Children))
	}
	second := tree.Children[1]
	if second.Region.Size() != 1 || second.Paths.Cmp(1) != 0 {
		t.Errorf("second then-arm: blocks=%d paths=%s, want 1 block 1 path",
			second.Region.Size(), second.Paths)
	}
}

func TestSegmentsAreSingleEntry(t *testing.T) {
	for _, src := range []string{
		figure1,
		`int x, y; void f(void) {
			switch (x) { case 0: y = 1; break; case 1: y = 2; default: y = 3; break; }
		}`,
		`int i, s; void f(void) { /*@ loopbound 3 */ while (i) { if (s) { s = 0; } i = i - 1; } }`,
	} {
		name := "f"
		if src == figure1 {
			name = "main"
		}
		g := buildGraph(t, src, name)
		tree := MustBuildTree(g)
		var check func(*PS)
		check = func(ps *PS) {
			entries := 0
			for _, n := range g.Nodes {
				if ps.Region.Set[n.ID] {
					continue
				}
				for _, e := range g.Succs(n.ID) {
					if ps.Region.Set[e.To] {
						entries++
						if e.To != ps.Region.Entry {
							t.Errorf("PS %s entered at non-entry block B%d", ps.Kind, e.To)
						}
					}
				}
			}
			if ps.Kind != "function" && entries != 1 {
				t.Errorf("PS %s has %d entry edges, want 1", ps.Kind, entries)
			}
			for _, c := range ps.Children {
				check(c)
			}
		}
		check(tree)
	}
}

func TestFallthroughClauseDissolved(t *testing.T) {
	g := buildGraph(t, `
int x, y;
void f(void) {
    switch (x) {
    case 0:
        y = 0;
    case 1:
        if (y) { y = 2; }
        break;
    default:
        y = 3;
        break;
    }
}`, "f")
	tree := MustBuildTree(g)
	// Clause 1 is fallen into: it is not a PS, but the if's then-arm inside
	// it must be lifted to the root.
	kinds := map[string]int{}
	tree.Walk(func(ps *PS) { kinds[ps.Kind]++ })
	if kinds["case"] != 1 {
		t.Errorf("case segments = %d, want 1 (fall-into clause dissolved)", kinds["case"])
	}
	if kinds["then"] != 1 {
		t.Errorf("then segments = %d, want 1 (lifted from dissolved clause)", kinds["then"])
	}
	if kinds["default"] != 1 {
		t.Errorf("default segments = %d, want 1", kinds["default"])
	}
}

func (ps *PS) Walk(f func(*PS)) {
	f(ps)
	for _, c := range ps.Children {
		c.Walk(f)
	}
}

// TestAccountingInvariants checks, across several programs and bounds, the
// structural invariants of the plan: ip = 2×units, m ≥ units, every block
// covered exactly once, and monotonicity (ip non-increasing in b for the
// bounds tested, m… not necessarily monotone, but ≥ path count of whole
// function? no: m shrinks as segments merge).
func TestAccountingInvariants(t *testing.T) {
	sources := map[string]string{
		"main": figure1,
		"f": `int a, b, c; void f(void) {
			if (a) { if (b) { c = 1; } else { c = 2; } } else { c = 3; }
			switch (c) { case 1: a = 1; break; case 2: a = 2; break; default: a = 0; }
			if (b) { b = 0; }
		}`,
	}
	for name, src := range sources {
		g := buildGraph(t, src, name)
		tree := MustBuildTree(g)
		prevIP := 1 << 30
		for b := int64(1); b <= 64; b *= 2 {
			plan := Partition(g, tree, cfg.NewCount(b))
			if plan.IP != 2*len(plan.Units) {
				t.Errorf("%s b=%d: ip=%d != 2×units=%d", name, b, plan.IP, 2*len(plan.Units))
			}
			if plan.IP > prevIP {
				t.Errorf("%s: ip increased from %d to %d when b grew to %d", name, prevIP, plan.IP, b)
			}
			prevIP = plan.IP
			// Coverage: every block appears in exactly one unit.
			seen := map[cfg.NodeID]int{}
			for _, u := range plan.Units {
				switch u.Kind {
				case SingleBlock:
					seen[u.Block]++
				case WholePS:
					for id := range u.PS.Region.Set {
						// Only blocks not covered by a deeper unit... whole
						// PS covers all its blocks.
						seen[id]++
					}
				}
			}
			for _, n := range g.Nodes {
				if seen[n.ID] != 1 {
					t.Errorf("%s b=%d: block B%d covered %d times", name, b, n.ID, seen[n.ID])
				}
			}
		}
	}
}

func TestSweepEndsAtEndToEnd(t *testing.T) {
	g := buildGraph(t, figure1, "main")
	bounds := DefaultBounds(g, 64)
	points, err := Sweep(g, bounds)
	if err != nil {
		t.Fatal(err)
	}
	last := points[len(points)-1]
	if last.IP != 2 {
		t.Errorf("final sweep point ip = %d, want 2 (end-to-end)", last.IP)
	}
	if last.M.Cmp(6) != 0 {
		t.Errorf("final sweep point m = %s, want 6", last.M)
	}
	first := points[0]
	if first.IP != 2*g.NumNodes() {
		t.Errorf("first sweep point ip = %d, want %d", first.IP, 2*g.NumNodes())
	}
}

func TestUnboundedLoopNeverMeasuredWhole(t *testing.T) {
	g := buildGraph(t, `int i; void f(void) { while (i) { i = i - 1; } }`, "f")
	tree := MustBuildTree(g)
	plan := Partition(g, tree, cfg.NewCount(1_000_000))
	for _, u := range plan.Units {
		if u.Kind == WholePS && u.PS.Paths.IsInf() {
			t.Error("segment with unbounded paths measured as a whole")
		}
	}
	if plan.M.IsInf() {
		t.Error("plan measurement count must stay finite")
	}
}
