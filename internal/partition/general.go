package partition

import (
	"wcet/internal/cfg"
)

// General PS partitioning — the extension the paper announces as ongoing
// work ("We are currently extending the CFG partitioning algorithm to
// produce a general PS partitioning. This is expected to result in
// improvements in the number of instrumentation points at low measurement
// cycle costs.").
//
// Instead of restricting candidate segments to AST arms, every dominator
// subtree rooted at a block with a single entering edge is a valid program
// segment (any edge into the subtree from outside must target its root, by
// the definition of dominance). The partitioner walks the dominator tree
// top-down and measures a subtree as a whole as soon as its path count fits
// the bound; otherwise the root block becomes a residual measurement and
// the children are visited recursively. Because the candidate set strictly
// contains the structural arms, the general partition never needs more
// instrumentation points than the simple one at the same bound.

// GeneralPartition computes a plan over dominator-subtree segments.
func GeneralPartition(g *cfg.Graph, bound cfg.Count) *Plan {
	p := &Plan{G: g, Bound: bound, M: cfg.NewCount(0)}
	idom := g.Dominators()
	children := cfg.DomTree(idom)

	// subtree sets, computed once bottom-up.
	subtree := make([]map[cfg.NodeID]bool, len(g.Nodes))
	var collect func(v cfg.NodeID) map[cfg.NodeID]bool
	collect = func(v cfg.NodeID) map[cfg.NodeID]bool {
		if subtree[v] != nil {
			return subtree[v]
		}
		set := map[cfg.NodeID]bool{v: true}
		for _, c := range children[v] {
			for id := range collect(c) {
				set[id] = true
			}
		}
		subtree[v] = set
		return set
	}
	collect(g.Entry)

	// singleEntry reports whether the subtree of v is entered by exactly
	// one edge from outside (or v is the function entry).
	singleEntry := func(v cfg.NodeID) bool {
		if v == g.Entry {
			return true
		}
		set := subtree[v]
		entries := 0
		for _, p := range g.Preds(v) {
			if !set[p] {
				entries++
			}
		}
		// Dominance guarantees no outside edge targets a non-root member.
		return entries == 1
	}

	var visit func(v cfg.NodeID)
	visit = func(v cfg.NodeID) {
		region := cfg.Region{G: g, Entry: v, Set: subtree[v]}
		if singleEntry(v) {
			paths := region.PathCount()
			if !paths.IsInf() && paths.CmpCount(bound) <= 0 {
				ps := &PS{Kind: "dom-region", Region: region, Paths: paths}
				p.Units = append(p.Units, Unit{Kind: WholePS, PS: ps, Paths: paths})
				p.IP += 2
				p.M = p.M.Add(paths)
				return
			}
		}
		// Residual root block, recurse into dominated subtrees.
		p.Units = append(p.Units, Unit{Kind: SingleBlock, Block: v, Paths: cfg.NewCount(1)})
		p.IP += 2
		p.M = p.M.Add(cfg.NewCount(1))
		for _, c := range children[v] {
			visit(c)
		}
	}
	visit(g.Entry)
	return p
}

// GeneralSweep evaluates the general partitioning across bounds.
func GeneralSweep(g *cfg.Graph, bounds []cfg.Count) []Point {
	out := make([]Point, 0, len(bounds))
	for _, b := range bounds {
		plan := GeneralPartition(g, b)
		out = append(out, Point{Bound: b, IP: plan.IP, IPFused: plan.IPFused(), M: plan.M})
	}
	return out
}
