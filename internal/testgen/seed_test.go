package testgen

import (
	"testing"

	"wcet/internal/ga"
)

// TestSeedForPinsDerivation pins the seed derivation: per-target GA seeds
// are a pure function of (base seed, path key). The old driver allocated
// seeds with a seed++ walk over the target slice — skipping the increment
// for incidentally-covered targets — so adding, removing or covering one
// target silently reshuffled every later target's search. These constants
// must never change without a deliberate, documented break.
func TestSeedForPinsDerivation(t *testing.T) {
	cases := []struct {
		base int64
		key  string
		want int64
	}{
		{0, "", -9133579918834762733},
		{0, "A1", 4446308850417804110},
		{1, "A1", 1111255406592815370},
		{2005, "A1-B2", -6415189749196062806},
		{-7, "C3", -5740269759680963385},
	}
	for _, c := range cases {
		if got := SeedFor(c.base, c.key); got != c.want {
			t.Errorf("SeedFor(%d, %q) = %d, want %d", c.base, c.key, got, c.want)
		}
	}
}

// TestSeedForSensitivity: distinct keys and distinct base seeds must give
// distinct streams — the derivation may not collapse either input.
func TestSeedForSensitivity(t *testing.T) {
	seen := map[int64]string{}
	for _, key := range []string{"A1", "A2", "B1", "A1-B2", "B2-A1", ""} {
		s := SeedFor(42, key)
		if prev, dup := seen[s]; dup {
			t.Errorf("keys %q and %q collide on seed %d", prev, key, s)
		}
		seen[s] = key
	}
	if SeedFor(1, "A1") == SeedFor(2, "A1") {
		t.Error("base seed does not influence the derivation")
	}
}

// TestSeedsIndependentOfTargetPosition is the regression test for the
// seed-coupling bug: the same target must get the same search outcome
// whether it is the only target or sits behind others in the slice. The
// needle (a == 173 && b == a + 9) makes the search outcome (and, when
// found, the winning environment) visibly seed-dependent.
func TestSeedsIndependentOfTargetPosition(t *testing.T) {
	gen := setup(t, hybridSrc, "f")
	all := endToEndPaths(t, gen)
	conf := Config{
		GA:      ga.Config{Seed: 42, Pop: 40, MaxGens: 60, Stagnation: 15},
		SkipMC:  true,
		Workers: 1,
	}
	full, err := gen.Generate(all, conf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range full.Results {
		// A target that no earlier search covered incidentally ran its own
		// search in the full run; alone, it runs the identical search.
		solo, err := gen.Generate(all[i:i+1], conf)
		if err != nil {
			t.Fatal(err)
		}
		got := solo.Results[0]
		if got.Verdict == FoundByHeuristic && want.Verdict == FoundByHeuristic {
			continue // both covered; envs may differ via incidental coverage
		}
		if got.Verdict != want.Verdict && want.Verdict != FoundByHeuristic {
			t.Errorf("target %s: verdict %s alone vs %s in full slice",
				want.Path.Key(), got.Verdict, want.Verdict)
		}
	}
}

// TestGenerateDeterministicAcrossWorkers: the hybrid generator must produce
// identical reports (verdicts, environments, evaluation counts) for every
// worker count, including incidental-coverage bookkeeping.
func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	gen := setup(t, hybridSrc, "f")
	targets := endToEndPaths(t, gen)
	run := func(workers int) *Report {
		rep, err := gen.Generate(targets, Config{
			GA:       ga.Config{Seed: 42, Pop: 40, MaxGens: 60, Stagnation: 15},
			Optimise: true,
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range rep.Results {
			rep.Results[i].MCStats.Duration = 0 // wall time is not deterministic
		}
		return rep
	}
	want := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if got.TotalGAEvals != want.TotalGAEvals {
			t.Errorf("workers=%d: TotalGAEvals %d != %d", w, got.TotalGAEvals, want.TotalGAEvals)
		}
		if got.TotalMCSteps != want.TotalMCSteps {
			t.Errorf("workers=%d: TotalMCSteps %d != %d", w, got.TotalMCSteps, want.TotalMCSteps)
		}
		if got.HeuristicShare != want.HeuristicShare {
			t.Errorf("workers=%d: HeuristicShare %v != %v", w, got.HeuristicShare, want.HeuristicShare)
		}
		for i := range want.Results {
			a, b := want.Results[i], got.Results[i]
			if a.Verdict != b.Verdict {
				t.Errorf("workers=%d: target %s verdict %s != %s", w, a.Path.Key(), b.Verdict, a.Verdict)
			}
			if len(a.Env) != len(b.Env) {
				t.Errorf("workers=%d: target %s env size %d != %d", w, a.Path.Key(), len(b.Env), len(a.Env))
				continue
			}
			for d, v := range a.Env {
				if b.Env[d] != v {
					t.Errorf("workers=%d: target %s env[%s] = %d != %d",
						w, a.Path.Key(), d.Name, b.Env[d], v)
				}
			}
		}
	}
}
