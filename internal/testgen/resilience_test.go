package testgen

import (
	"context"
	"errors"
	"testing"

	"wcet/internal/fail"
	"wcet/internal/faults"
	"wcet/internal/ga"
)

func TestVerdictStrings(t *testing.T) {
	cases := []struct {
		v    Verdict
		want string
	}{
		{FoundByHeuristic, "heuristic"},
		{FoundByModelChecker, "model-checker"},
		{Infeasible, "infeasible"},
		{Unknown, "unknown"},
		{Verdict(42), "verdict(42)"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(c.v), got, c.want)
		}
	}
}

// needleSrc has one path the GA essentially cannot hit (a 1-in-65536
// equality), guaranteeing a model-checker residue to inject faults into.
const needleSrc = `
/*@ input */ int a;
int r;
int f(void) {
    r = 0;
    if (a == 12345) { r = 1; }
    return r;
}`

func smallGA() ga.Config {
	return ga.Config{Seed: 7, Pop: 8, MaxGens: 4, Stagnation: 2}
}

func TestInjectedMCFaultDegradesToUnknown(t *testing.T) {
	gen := setup(t, needleSrc, "f")
	targets := endToEndPaths(t, gen)
	ctx := faults.With(context.Background(), faults.New(
		faults.Rule{Site: "testgen.mc", Index: -1, Err: fail.Budget("mc", "injected step budget")}))
	rep, err := gen.GenerateCtx(ctx, targets, Config{GA: smallGA(), Optimise: true})
	if err != nil {
		t.Fatalf("a per-path fault must degrade, not abort: %v", err)
	}
	unknowns := 0
	for _, r := range rep.Results {
		if r.Verdict != Unknown {
			continue
		}
		unknowns++
		if !errors.Is(r.Err, fail.ErrBudgetExceeded) {
			t.Errorf("path %s: cause = %v, want the injected budget error", r.Path.Key(), r.Err)
		}
		var fe *fail.Error
		if !errors.As(r.Err, &fe) || fe.Path != r.Path.Key() {
			t.Errorf("path %s: cause not attributed to its path: %v", r.Path.Key(), r.Err)
		}
	}
	if unknowns == 0 {
		t.Fatal("no residue target degraded — the fault never fired")
	}
}

func TestUnknownCausesIdenticalAcrossWorkers(t *testing.T) {
	gen := setup(t, needleSrc, "f")
	targets := endToEndPaths(t, gen)
	run := func(workers int) []string {
		ctx := faults.With(context.Background(), faults.New(
			faults.Rule{Site: "testgen.mc", Index: -1, Err: fail.Budget("mc", "injected")}))
		conf := Config{GA: smallGA(), Optimise: true, Workers: workers}
		rep, err := gen.GenerateCtx(ctx, targets, conf)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, r := range rep.Results {
			if r.Verdict == Unknown {
				out = append(out, r.Err.Error())
			}
		}
		return out
	}
	serial, parallel := run(1), run(8)
	if len(serial) == 0 {
		t.Fatal("no degradations recorded")
	}
	if len(serial) != len(parallel) {
		t.Fatalf("degradation counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("degradation %d differs:\n  workers=1: %s\n  workers=8: %s", i, serial[i], parallel[i])
		}
	}
}

func TestGenerateCancelledAborts(t *testing.T) {
	gen := setup(t, needleSrc, "f")
	targets := endToEndPaths(t, gen)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := gen.GenerateCtx(ctx, targets, Config{GA: smallGA(), Optimise: true})
	if !errors.Is(err, fail.ErrCancelled) {
		t.Fatalf("got (%v, %v), want ErrCancelled", rep, err)
	}
}

func TestInjectedPanicIsolatedAndDeterministic(t *testing.T) {
	gen := setup(t, needleSrc, "f")
	targets := endToEndPaths(t, gen)
	run := func(workers int) string {
		ctx := faults.With(context.Background(), faults.New(
			faults.Rule{Site: "testgen.search", Index: 0, Mode: faults.Panic}))
		_, err := gen.GenerateCtx(ctx, targets, Config{GA: smallGA(), Optimise: true, Workers: workers})
		if !errors.Is(err, fail.ErrWorkerPanic) {
			t.Fatalf("workers=%d: got %v, want ErrWorkerPanic", workers, err)
		}
		return err.Error()
	}
	if s, p := run(1), run(8); s != p {
		t.Errorf("panic error differs across workers:\n  1: %s\n  8: %s", s, p)
	}
}

func TestGAEvaluationBudgetBoundsEffort(t *testing.T) {
	gen := setup(t, needleSrc, "f")
	targets := endToEndPaths(t, gen)
	conf := Config{
		GA:     ga.Config{Seed: 7, Pop: 16, MaxGens: 1000, Stagnation: 1000, MaxEvaluations: 40},
		SkipMC: true,
	}
	rep, err := gen.Generate(targets, conf)
	if err != nil {
		t.Fatal(err)
	}
	// Each target's search is capped independently, so total effort is at
	// most targets × cap.
	if max := len(targets) * 40; rep.TotalGAEvals > max {
		t.Errorf("GA evaluations = %d, want ≤ %d under MaxEvaluations", rep.TotalGAEvals, max)
	}
}
