// Package testgen implements the paper's hybrid test-data generation
// (Section 3): heuristic search first — cheap, expected to cover more than
// 90% of the required paths — then model checking for the residue, which
// either produces the missing data or proves the path infeasible.
package testgen

import (
	"context"
	"fmt"

	"wcet/internal/c2m"
	"wcet/internal/cc/ast"
	"wcet/internal/cfg"
	"wcet/internal/fail"
	"wcet/internal/faults"
	"wcet/internal/ga"
	"wcet/internal/interp"
	"wcet/internal/mc"
	"wcet/internal/obs"
	"wcet/internal/opt"
	"wcet/internal/par"
	"wcet/internal/paths"
	"wcet/internal/tsys"
)

// Verdict classifies one target path after generation.
type Verdict int

// Verdicts.
const (
	// FoundByHeuristic: the genetic search produced covering test data.
	FoundByHeuristic Verdict = iota
	// FoundByModelChecker: the model checker produced the data.
	FoundByModelChecker
	// Infeasible: the model checker proved no input executes the path.
	Infeasible
	// Unknown: generation stopped without data and without a proof — the
	// model checker was disabled, ran out of budget, or failed. The cause
	// is recorded in PathResult.Err; the final report must treat the
	// path's segment as degraded, never as infeasible.
	Unknown
)

func (v Verdict) String() string {
	switch v {
	case FoundByHeuristic:
		return "heuristic"
	case FoundByModelChecker:
		return "model-checker"
	case Infeasible:
		return "infeasible"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// PathResult is the outcome for one target path.
type PathResult struct {
	Path    paths.Path
	Verdict Verdict
	// Env is the covering input assignment for found paths.
	Env interp.Env
	// GAEvaluations and MCStats record the effort spent.
	GAEvaluations int
	MCStats       mc.Stats
	// Err records a model-checker failure (Verdict == Unknown).
	Err error
}

// Report aggregates a generation run.
//
// The roll-up fields (TotalGAEvals, TotalMCSteps, PeakMCNodes,
// HeuristicShare) are views of the same single accumulation that feeds the
// observability registry (testgen.ga.evaluations, testgen.mc.steps,
// testgen.mc.peak_nodes, testgen.heuristic_share_bp): both are written
// from one merge pass in GenerateCtx, so the report and a metrics snapshot
// taken from the same run can never disagree.
type Report struct {
	Results []PathResult
	// HeuristicShare is the fraction of feasible paths covered by the GA —
	// the paper expects > 0.9 on real code.
	HeuristicShare float64
	TotalGAEvals   int
	TotalMCSteps   int
	// PeakMCNodes is the largest BDD node count any single model-checker
	// call reached (each call owns a fresh manager, so the per-call peaks
	// are independent and their max is worker-count invariant).
	PeakMCNodes int
}

// Config tunes the hybrid driver.
type Config struct {
	// GA configures the heuristic stage; GA.Seed seeds reproducibility.
	// Each target's search is seeded with SeedFor(GA.Seed, path key), so
	// per-target results do not depend on the target's slice position.
	GA ga.Config
	// Workers bounds the generator's fan-out: GA searches and
	// model-checker calls run on up to Workers goroutines, each with its
	// own interpreter machine (model-checker runs already build a fresh
	// BDD manager per call). 0 (the default) uses one worker per CPU,
	// 1 runs serially. The Report is identical for every value.
	Workers int
	// SkipGA jumps straight to the model checker (for comparison runs).
	SkipGA bool
	// SkipMC disables the model checker stage (heuristic-only baseline).
	SkipMC bool
	// Optimise runs the Section 3.2 pipeline on every path model before
	// checking (recommended; off reproduces the naive translator).
	Optimise bool
	// MC bounds each model-checker run.
	MC mc.Options
	// Base provides values for non-input variables at function entry.
	Base interp.Env
}

// Generator owns the analysed function.
type Generator struct {
	File   *ast.File
	Fn     *ast.FuncDecl
	G      *cfg.Graph
	M      *interp.Machine
	Inputs []ga.Variable
}

// New builds a generator; inputs are the function parameters plus globals
// annotated /*@ input */.
func New(file *ast.File, fn *ast.FuncDecl, g *cfg.Graph) *Generator {
	gen := &Generator{File: file, Fn: fn, G: g, M: interp.New(file, interp.Options{})}
	for _, p := range fn.Params {
		gen.Inputs = append(gen.Inputs, ga.DomainOf(p))
	}
	for _, gl := range file.Globals {
		if gl.Input {
			gen.Inputs = append(gen.Inputs, ga.DomainOf(gl))
		}
	}
	return gen
}

// InputDecls lists the input declarations in order.
func (gen *Generator) InputDecls() []*ast.VarDecl {
	out := make([]*ast.VarDecl, len(gen.Inputs))
	for i, v := range gen.Inputs {
		out[i] = v.Decl
	}
	return out
}

// Generate produces test data for every target path.
//
// Both stages fan out over conf.Workers goroutines. GA searches run
// speculatively — each on a worker-private interpreter, collecting its
// incidental coverage locally — and a coverage board folds the outcomes in
// target order, replaying the serial driver's skip rule (a target is
// skipped when an earlier counted search already covers it); see gaBoard.
// Model-checker calls on the residue are independent (one fresh BDD
// manager per call) and merge indexed by target position. The Report is
// therefore identical for every worker count.
func (gen *Generator) Generate(targets []paths.Path, conf Config) (*Report, error) {
	return gen.GenerateCtx(context.Background(), targets, conf)
}

// GenerateCtx is Generate under a context. Cancelling ctx aborts both
// stages cooperatively and returns a structured fail.ErrCancelled (an
// expired deadline returns fail.ErrBudgetExceeded); a worker panic in
// either stage is isolated into a deterministic fail.ErrWorkerPanic. A
// per-path failure, by contrast, never aborts the run: a model-checker
// call that runs out of budget (conf.MC caps and Timeout) or fails leaves
// its target Unknown with the cause recorded in PathResult.Err, and the
// analysis continues — degrading the final report is the caller's job.
func (gen *Generator) GenerateCtx(ctx context.Context, targets []paths.Path, conf Config) (*Report, error) {
	workers := par.Workers(conf.Workers)
	o := obs.From(ctx)
	rep := &Report{}
	n := len(targets)
	keys := make([]string, n)
	for i, p := range targets {
		keys[i] = p.Key()
	}

	// Stage 1: heuristic search. Covered paths accumulate incidentally:
	// every candidate a GA evaluates is checked against the open targets.
	board := newGABoard(keys)
	if !conf.SkipGA {
		err := par.ForEachWorkerCtx(ctx, n, workers, func(worker int) func(context.Context, int) error {
			m := interp.New(gen.File, gen.M.Opt)
			ow := o.Worker(worker)
			return func(ctx context.Context, i int) error {
				if ferr := faults.Fire(ctx, "testgen.search", i); ferr != nil {
					return fail.From("testgen", ferr)
				}
				if board.trySkip(i) {
					return nil
				}
				gen.searchTarget(ctx, m, board, targets, i, conf, ow)
				return nil
			}
		})
		if err != nil {
			return nil, fail.Attribute(err, "testgen", "")
		}
	}
	covered := board.counted
	rep.TotalGAEvals = board.evals
	o.Progressf("testgen: GA covered %d/%d targets (%d counted evaluations)",
		len(covered), n, board.evals)

	// Stage 2: model checking for the residue.
	results := make([]PathResult, n)
	var residue []int
	for i, p := range targets {
		results[i] = PathResult{Path: p}
		if env, ok := covered[keys[i]]; ok {
			results[i].Verdict = FoundByHeuristic
			results[i].Env = env
			continue
		}
		if conf.SkipMC {
			results[i].Verdict = Unknown
			continue
		}
		residue = append(residue, i)
	}
	o.Progressf("testgen: model checking %d residue paths", len(residue))
	merr := par.ForEachWorkerCtx(ctx, len(residue), workers, func(worker int) func(context.Context, int) error {
		m := interp.New(gen.File, gen.M.Opt)
		ow := o.Worker(worker)
		return func(ctx context.Context, k int) error {
			i := residue[k]
			pr := &results[i]
			// The residue set and each call's outcome are pure functions of
			// program + config, so the per-path span is deterministic; its
			// logical key nests it under the testgen stage span.
			sp := ow.Span("testgen", "mc.path", "30/testgen/mc/"+keys[i],
				"path", keys[i])
			var res *mc.Result
			var env interp.Env
			err := faults.Fire(ctx, "testgen.mc", i)
			if err == nil {
				res, env, err = gen.checkPathCtx(ctx, m, targets[i], conf)
			}
			if err != nil {
				// Root-context cancellation unwinds the whole run; any
				// per-path failure — budget, per-path timeout, unsupported
				// construct — degrades this one target to Unknown.
				if ctx.Err() != nil {
					return fail.Context("testgen", ctx.Err())
				}
				pr.Verdict = Unknown
				pr.Err = fail.Attribute(err, "testgen", keys[i])
				sp.End("verdict", pr.Verdict, "cause", pr.Err.Error())
				return nil
			}
			pr.MCStats = res.Stats
			if res.Reachable {
				pr.Verdict = FoundByModelChecker
				pr.Env = env
			} else {
				pr.Verdict = Infeasible
			}
			sp.End("verdict", pr.Verdict,
				"steps", res.Stats.Steps, "peak-nodes", res.Stats.PeakNodes)
			return nil
		}
	})
	if merr != nil {
		return nil, fail.Attribute(merr, "testgen", "")
	}

	// Deterministic merge in target order. This single pass feeds both the
	// Report roll-ups and the metrics registry, so the two views agree by
	// construction.
	heuristicHits := 0
	feasible := 0
	var byVerdict [4]int
	for i := range results {
		byVerdict[results[i].Verdict]++
		switch results[i].Verdict {
		case FoundByHeuristic:
			heuristicHits++
			feasible++
		case FoundByModelChecker:
			feasible++
		}
		rep.TotalMCSteps += results[i].MCStats.Steps
		if results[i].MCStats.PeakNodes > rep.PeakMCNodes {
			rep.PeakMCNodes = results[i].MCStats.PeakNodes
		}
	}
	rep.Results = results
	if feasible > 0 {
		rep.HeuristicShare = float64(heuristicHits) / float64(feasible)
	}
	if o != nil {
		o.Count("testgen.ga.evaluations", int64(rep.TotalGAEvals))
		o.Count("testgen.mc.steps", int64(rep.TotalMCSteps))
		o.SetMax("testgen.mc.peak_nodes", int64(rep.PeakMCNodes))
		o.Count("testgen.paths.heuristic", int64(byVerdict[FoundByHeuristic]))
		o.Count("testgen.paths.model_checker", int64(byVerdict[FoundByModelChecker]))
		o.Count("testgen.paths.infeasible", int64(byVerdict[Infeasible]))
		o.Count("testgen.paths.unknown", int64(byVerdict[Unknown]))
		o.Set("testgen.heuristic_share_bp", 0, int64(rep.HeuristicShare*10000))
	}
	return rep, nil
}

// searchTarget runs one speculative GA search on a worker-private machine.
// Incidental coverage is collected into the outcome — never into shared
// state — so the search is a pure function of (target, seed) and the board
// can fold it deterministically. The context only feeds the search's Stop
// hook: cancellation cuts the search short, which is observable — but
// GenerateCtx abandons the whole run on cancellation, so no timing-
// dependent outcome ever reaches a returned Report.
func (gen *Generator) searchTarget(ctx context.Context, m *interp.Machine, board *gaBoard,
	targets []paths.Path, i int, conf Config, ow *obs.Observer) {

	p := targets[i]
	gaConf := conf.GA
	gaConf.Obs = ow
	gaConf.Seed = SeedFor(conf.GA.Seed, board.keys[i])
	gaConf.Stop = func() bool { return ctx.Err() != nil }
	// Targets already covered by decided counted searches keep their board
	// environment no matter what this search observes; skip their checks.
	done := board.snapshot()
	o := &gaOutcome{cover: map[string]interp.Env{}}
	gaConf.OnTrace = func(env interp.Env, tr *interp.Trace) {
		for j, q := range targets {
			key := board.keys[j]
			if done[key] {
				continue
			}
			if _, ok := o.cover[key]; ok {
				continue
			}
			if paths.Covers(gen.G, tr, q) {
				o.cover[key] = env.Clone()
			}
		}
	}
	res := ga.Search(gen.G, m, gen.Inputs, p, conf.Base, gaConf)
	o.evals = res.Stats.Evaluations
	if res.Found {
		env := conf.Base.Clone()
		for d, v := range res.Env {
			env[d] = v
		}
		o.found = true
		o.env = env
	}
	board.deliver(i, o)
}

// CheckPath runs the model checker for one path and maps the witness back
// to an interpreter environment.
func (gen *Generator) CheckPath(p paths.Path, conf Config) (*mc.Result, interp.Env, error) {
	return gen.checkPathCtx(context.Background(), gen.M, p, conf)
}

// checkPathCtx is CheckPath with an explicit machine for the witness
// replay, so concurrent callers can use worker-private interpreters, and a
// context bounding the model-checker call (together with conf.MC's step,
// node and per-call timeout budgets).
func (gen *Generator) checkPathCtx(ctx context.Context, m *interp.Machine, p paths.Path, conf Config) (*mc.Result, interp.Env, error) {
	low, err := c2m.LowerPath(gen.G, c2m.Options{NaiveWidths: !conf.Optimise}, p)
	if err != nil {
		return nil, nil, err
	}
	model := low.Model
	// Pin non-inputs so model semantics match the interpreter's
	// zero-initialised locals, with base-env overrides (the paper's
	// variable-initialisation optimisation, applied soundly).
	for _, v := range model.Vars {
		if v.Input {
			continue
		}
		v.Init = tsys.InitConst
		v.InitVal = 0
		if d := low.DeclOf[v.ID]; d != nil {
			if val, ok := conf.Base[d]; ok {
				v.InitVal = val
			}
		}
	}
	if conf.Optimise {
		opt.All(model)
	}
	res, err := mc.CheckSymbolicCtx(ctx, model, conf.MC)
	if err != nil {
		return nil, nil, err
	}
	if !res.Reachable {
		return res, nil, nil
	}
	env := conf.Base.Clone()
	for id, val := range res.Witness {
		if d := low.DeclOf[id]; d != nil {
			env[d] = val
		}
	}
	// Validate by replay: the witness must actually cover the path.
	tr, err := m.Run(gen.G, env.Clone())
	if err != nil {
		return nil, nil, fmt.Errorf("testgen: witness replay failed: %w", err)
	}
	if !paths.Covers(gen.G, tr, p) {
		return nil, nil, fmt.Errorf("testgen: witness does not cover path %s", p.Key())
	}
	return res, env, nil
}

// Summary renders the report compactly.
func (rep *Report) Summary() string {
	byVerdict := map[Verdict]int{}
	for _, r := range rep.Results {
		byVerdict[r.Verdict]++
	}
	keys := []Verdict{FoundByHeuristic, FoundByModelChecker, Infeasible, Unknown}
	s := ""
	for _, k := range keys {
		if byVerdict[k] > 0 {
			s += fmt.Sprintf("%s:%d ", k, byVerdict[k])
		}
	}
	return fmt.Sprintf("%spaths:%d heuristic-share:%.0f%% ga-evals:%d mc-steps:%d",
		s, len(rep.Results), rep.HeuristicShare*100, rep.TotalGAEvals, rep.TotalMCSteps)
}
