// Package testgen implements the paper's hybrid test-data generation
// (Section 3): heuristic search first — cheap, expected to cover more than
// 90% of the required paths — then model checking for the residue, which
// either produces the missing data or proves the path infeasible.
package testgen

import (
	"fmt"

	"wcet/internal/c2m"
	"wcet/internal/cc/ast"
	"wcet/internal/cfg"
	"wcet/internal/ga"
	"wcet/internal/interp"
	"wcet/internal/mc"
	"wcet/internal/opt"
	"wcet/internal/paths"
	"wcet/internal/tsys"
)

// Verdict classifies one target path after generation.
type Verdict int

// Verdicts.
const (
	// FoundByHeuristic: the genetic search produced covering test data.
	FoundByHeuristic Verdict = iota
	// FoundByModelChecker: the model checker produced the data.
	FoundByModelChecker
	// Infeasible: the model checker proved no input executes the path.
	Infeasible
	// Unknown: generation failed within budget without a proof (only
	// possible when the model checker is disabled or errors out).
	Unknown
)

func (v Verdict) String() string {
	switch v {
	case FoundByHeuristic:
		return "heuristic"
	case FoundByModelChecker:
		return "model-checker"
	case Infeasible:
		return "infeasible"
	}
	return "unknown"
}

// PathResult is the outcome for one target path.
type PathResult struct {
	Path    paths.Path
	Verdict Verdict
	// Env is the covering input assignment for found paths.
	Env interp.Env
	// GAEvaluations and MCStats record the effort spent.
	GAEvaluations int
	MCStats       mc.Stats
	// Err records a model-checker failure (Verdict == Unknown).
	Err error
}

// Report aggregates a generation run.
type Report struct {
	Results []PathResult
	// HeuristicShare is the fraction of feasible paths covered by the GA —
	// the paper expects > 0.9 on real code.
	HeuristicShare float64
	TotalGAEvals   int
	TotalMCSteps   int
}

// Config tunes the hybrid driver.
type Config struct {
	// GA configures the heuristic stage; GA.Seed seeds reproducibility.
	GA ga.Config
	// SkipGA jumps straight to the model checker (for comparison runs).
	SkipGA bool
	// SkipMC disables the model checker stage (heuristic-only baseline).
	SkipMC bool
	// Optimise runs the Section 3.2 pipeline on every path model before
	// checking (recommended; off reproduces the naive translator).
	Optimise bool
	// MC bounds each model-checker run.
	MC mc.Options
	// Base provides values for non-input variables at function entry.
	Base interp.Env
}

// Generator owns the analysed function.
type Generator struct {
	File   *ast.File
	Fn     *ast.FuncDecl
	G      *cfg.Graph
	M      *interp.Machine
	Inputs []ga.Variable
}

// New builds a generator; inputs are the function parameters plus globals
// annotated /*@ input */.
func New(file *ast.File, fn *ast.FuncDecl, g *cfg.Graph) *Generator {
	gen := &Generator{File: file, Fn: fn, G: g, M: interp.New(file, interp.Options{})}
	for _, p := range fn.Params {
		gen.Inputs = append(gen.Inputs, ga.DomainOf(p))
	}
	for _, gl := range file.Globals {
		if gl.Input {
			gen.Inputs = append(gen.Inputs, ga.DomainOf(gl))
		}
	}
	return gen
}

// InputDecls lists the input declarations in order.
func (gen *Generator) InputDecls() []*ast.VarDecl {
	out := make([]*ast.VarDecl, len(gen.Inputs))
	for i, v := range gen.Inputs {
		out[i] = v.Decl
	}
	return out
}

// Generate produces test data for every target path.
func (gen *Generator) Generate(targets []paths.Path, conf Config) (*Report, error) {
	rep := &Report{}

	// Covered paths accumulate incidentally: every candidate the GA
	// evaluates is checked against all still-open targets.
	covered := map[string]interp.Env{}
	open := map[string]paths.Path{}
	for _, p := range targets {
		open[p.Key()] = p
	}

	if !conf.SkipGA {
		seed := conf.GA.Seed
		for _, p := range targets {
			if _, done := covered[p.Key()]; done {
				continue
			}
			gaConf := conf.GA
			gaConf.Seed = seed
			seed++
			gaConf.OnTrace = func(env interp.Env, tr *interp.Trace) {
				for key, q := range open {
					if _, done := covered[key]; done {
						continue
					}
					if paths.Covers(gen.G, tr, q) {
						covered[key] = env.Clone()
					}
				}
			}
			res := ga.Search(gen.G, gen.M, gen.Inputs, p, conf.Base, gaConf)
			rep.TotalGAEvals += res.Stats.Evaluations
			if res.Found {
				if _, done := covered[p.Key()]; !done {
					env := conf.Base.Clone()
					for d, v := range res.Env {
						env[d] = v
					}
					covered[p.Key()] = env
				}
			}
		}
	}

	heuristicHits := 0
	feasible := 0
	for _, p := range targets {
		pr := PathResult{Path: p}
		if env, ok := covered[p.Key()]; ok {
			pr.Verdict = FoundByHeuristic
			pr.Env = env
			heuristicHits++
			feasible++
			rep.Results = append(rep.Results, pr)
			continue
		}
		if conf.SkipMC {
			pr.Verdict = Unknown
			rep.Results = append(rep.Results, pr)
			continue
		}
		res, env, err := gen.CheckPath(p, conf)
		if err != nil {
			pr.Verdict = Unknown
			pr.Err = err
			rep.Results = append(rep.Results, pr)
			continue
		}
		pr.MCStats = res.Stats
		rep.TotalMCSteps += res.Stats.Steps
		if res.Reachable {
			pr.Verdict = FoundByModelChecker
			pr.Env = env
			feasible++
		} else {
			pr.Verdict = Infeasible
		}
		rep.Results = append(rep.Results, pr)
	}
	if feasible > 0 {
		rep.HeuristicShare = float64(heuristicHits) / float64(feasible)
	}
	return rep, nil
}

// CheckPath runs the model checker for one path and maps the witness back
// to an interpreter environment.
func (gen *Generator) CheckPath(p paths.Path, conf Config) (*mc.Result, interp.Env, error) {
	low, err := c2m.LowerPath(gen.G, c2m.Options{NaiveWidths: !conf.Optimise}, p)
	if err != nil {
		return nil, nil, err
	}
	model := low.Model
	// Pin non-inputs so model semantics match the interpreter's
	// zero-initialised locals, with base-env overrides (the paper's
	// variable-initialisation optimisation, applied soundly).
	for _, v := range model.Vars {
		if v.Input {
			continue
		}
		v.Init = tsys.InitConst
		v.InitVal = 0
		if d := low.DeclOf[v.ID]; d != nil {
			if val, ok := conf.Base[d]; ok {
				v.InitVal = val
			}
		}
	}
	if conf.Optimise {
		opt.All(model)
	}
	res, err := mc.CheckSymbolic(model, conf.MC)
	if err != nil {
		return nil, nil, err
	}
	if !res.Reachable {
		return res, nil, nil
	}
	env := conf.Base.Clone()
	for id, val := range res.Witness {
		if d := low.DeclOf[id]; d != nil {
			env[d] = val
		}
	}
	// Validate by replay: the witness must actually cover the path.
	tr, err := gen.M.Run(gen.G, env.Clone())
	if err != nil {
		return nil, nil, fmt.Errorf("testgen: witness replay failed: %w", err)
	}
	if !paths.Covers(gen.G, tr, p) {
		return nil, nil, fmt.Errorf("testgen: witness does not cover path %s", p.Key())
	}
	return res, env, nil
}

// Summary renders the report compactly.
func (rep *Report) Summary() string {
	byVerdict := map[Verdict]int{}
	for _, r := range rep.Results {
		byVerdict[r.Verdict]++
	}
	keys := []Verdict{FoundByHeuristic, FoundByModelChecker, Infeasible, Unknown}
	s := ""
	for _, k := range keys {
		if byVerdict[k] > 0 {
			s += fmt.Sprintf("%s:%d ", k, byVerdict[k])
		}
	}
	return fmt.Sprintf("%spaths:%d heuristic-share:%.0f%% ga-evals:%d mc-steps:%d",
		s, len(rep.Results), rep.HeuristicShare*100, rep.TotalGAEvals, rep.TotalMCSteps)
}
