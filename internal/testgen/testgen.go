// Package testgen implements the paper's hybrid test-data generation
// (Section 3): heuristic search first — cheap, expected to cover more than
// 90% of the required paths — then model checking for the residue, which
// either produces the missing data or proves the path infeasible.
package testgen

import (
	"context"
	"errors"
	"fmt"

	"wcet/internal/bdd"
	"wcet/internal/c2m"
	"wcet/internal/cc/ast"
	"wcet/internal/cfg"
	"wcet/internal/fail"
	"wcet/internal/faults"
	"wcet/internal/ga"
	"wcet/internal/interp"
	"wcet/internal/journal"
	"wcet/internal/mc"
	"wcet/internal/obs"
	"wcet/internal/opt"
	"wcet/internal/par"
	"wcet/internal/paths"
	"wcet/internal/retry"
	"wcet/internal/tsys"
	"wcet/internal/vcache"
)

// Verdict classifies one target path after generation.
type Verdict int

// Verdicts.
const (
	// FoundByHeuristic: the genetic search produced covering test data.
	FoundByHeuristic Verdict = iota
	// FoundByModelChecker: the model checker produced the data.
	FoundByModelChecker
	// Infeasible: the model checker proved no input executes the path.
	Infeasible
	// Unknown: generation stopped without data and without a proof — the
	// model checker was disabled, ran out of budget, or failed. The cause
	// is recorded in PathResult.Err; the final report must treat the
	// path's segment as degraded, never as infeasible.
	Unknown
)

func (v Verdict) String() string {
	switch v {
	case FoundByHeuristic:
		return "heuristic"
	case FoundByModelChecker:
		return "model-checker"
	case Infeasible:
		return "infeasible"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// PathResult is the outcome for one target path.
type PathResult struct {
	Path    paths.Path
	Verdict Verdict
	// Env is the covering input assignment for found paths.
	Env interp.Env
	// GAEvaluations and MCStats record the effort spent.
	GAEvaluations int
	MCStats       mc.Stats
	// Err records a model-checker failure (Verdict == Unknown).
	Err error
	// Attempts is the retry/failover history when this path needed more
	// than one attempt (nil for the common first-try case): the GA stage's
	// counted search history, the model-checker stage's per-attempt
	// outcomes, and any engine failover, in that order. The history is a
	// pure function of program + config, identical across worker counts and
	// across kill/resume cycles.
	Attempts []string
	// Cached marks a stage-2 verdict served from the persistent verdict
	// cache instead of re-proved this run. Like Report.CachedUnits it is
	// volatile by design — a warm run and a clean run differ here and in
	// no deterministic field — so canonical exports exclude it.
	Cached bool
	// Flight is the flight-recorder dump attached by the ledger when this
	// unit was quarantined after repeatedly killing its worker: the dead
	// worker's last events, harvested from its telemetry sidecar. Volatile
	// diagnostics — excluded from every canonical export.
	Flight []string
}

// Report aggregates a generation run.
//
// The roll-up fields (TotalGAEvals, TotalMCSteps, PeakMCNodes,
// HeuristicShare) are views of the same single accumulation that feeds the
// observability registry (testgen.ga.evaluations, testgen.mc.steps,
// testgen.mc.peak_nodes, testgen.heuristic_share_bp): both are written
// from one merge pass in GenerateCtx, so the report and a metrics snapshot
// taken from the same run can never disagree.
type Report struct {
	Results []PathResult
	// HeuristicShare is the fraction of feasible paths covered by the GA —
	// the paper expects > 0.9 on real code.
	HeuristicShare float64
	TotalGAEvals   int
	TotalMCSteps   int
	// PeakMCNodes is the largest BDD node count any single model-checker
	// call reached (each call's manager is fresh or reset-to-fresh, so the
	// per-call peaks are independent and their max is worker-count
	// invariant).
	PeakMCNodes int
	// CachedUnits counts work units (GA searches and model-checker
	// verdicts) replayed from the persistent verdict cache instead of
	// recomputed — the cross-run analogue of the journal's resumed units.
	// Deterministic given a fixed cache state, volatile across cache
	// states, so canonical exports exclude it.
	CachedUnits int
}

// Config tunes the hybrid driver.
type Config struct {
	// GA configures the heuristic stage; GA.Seed seeds reproducibility.
	// Each target's search is seeded with SeedFor(GA.Seed, path key), so
	// per-target results do not depend on the target's slice position.
	GA ga.Config
	// Workers bounds the generator's fan-out: GA searches and
	// model-checker calls run on up to Workers goroutines, each with its
	// own interpreter machine (model-checker runs lease private, pooled
	// BDD managers). 0 (the default) uses one worker per CPU, 1 runs
	// serially. The Report is identical for every value.
	Workers int
	// SkipGA jumps straight to the model checker (for comparison runs).
	SkipGA bool
	// SkipMC disables the model checker stage (heuristic-only baseline).
	SkipMC bool
	// Optimise runs the Section 3.2 pipeline on every path model before
	// checking (recommended; off reproduces the naive translator).
	Optimise bool
	// MC bounds each model-checker run. MC.NoSlice, MC.NoReorder and
	// MC.NoPool are the symbolic engine's A/B levers; they default to off
	// (all levers enabled).
	MC mc.Options
	// Base provides values for non-input variables at function entry.
	Base interp.Env
	// Retry bounds per-unit retrying of transient failures (infrastructure
	// errors, per-call stalls). The zero value retries up to 3 attempts with
	// logical backoff; deterministic budgets, infeasibility proofs and
	// cancellation never retry. See internal/retry.
	Retry retry.Policy
	// FailoverMaxStates caps the input-space size up to which a symbolic
	// run that exhausted its BDD node budget fails over to the explicit
	// engine (which enumerates initial states exactly, so it is immune to
	// BDD blow-up but exponential in input bits). 0 selects the default
	// 65536 states; negative disables failover.
	FailoverMaxStates int
}

// failoverMax resolves the effective failover input-space cap.
func (c Config) failoverMax() float64 {
	if c.FailoverMaxStates < 0 {
		return 0
	}
	if c.FailoverMaxStates == 0 {
		return 1 << 16
	}
	return float64(c.FailoverMaxStates)
}

// Generator owns the analysed function.
type Generator struct {
	File   *ast.File
	Fn     *ast.FuncDecl
	G      *cfg.Graph
	M      *interp.Machine
	Inputs []ga.Variable
}

// New builds a generator; inputs are the function parameters plus globals
// annotated /*@ input */.
func New(file *ast.File, fn *ast.FuncDecl, g *cfg.Graph) *Generator {
	gen := &Generator{File: file, Fn: fn, G: g, M: interp.New(file, interp.Options{})}
	for _, p := range fn.Params {
		gen.Inputs = append(gen.Inputs, ga.DomainOf(p))
	}
	for _, gl := range file.Globals {
		if gl.Input {
			gen.Inputs = append(gen.Inputs, ga.DomainOf(gl))
		}
	}
	return gen
}

// InputDecls lists the input declarations in order.
func (gen *Generator) InputDecls() []*ast.VarDecl {
	out := make([]*ast.VarDecl, len(gen.Inputs))
	for i, v := range gen.Inputs {
		out[i] = v.Decl
	}
	return out
}

// emitVerdict publishes one stage-2 verdict to the event bus (a no-op for
// a nil observer). Bus events are volatile telemetry; this never touches
// the canonical stream.
func emitVerdict(ow *obs.Observer, key string, v Verdict, detail string) {
	ow.Emit(obs.BusEvent{Kind: obs.EvVerdict, Stage: "mc",
		Unit: "tg/" + key, Verdict: v.String(), Detail: detail})
}

// Generate produces test data for every target path.
//
// Both stages fan out over conf.Workers goroutines. GA searches run
// speculatively — each on a worker-private interpreter, collecting its
// incidental coverage locally — and a coverage board folds the outcomes in
// target order, replaying the serial driver's skip rule (a target is
// skipped when an earlier counted search already covers it); see gaBoard.
// Model-checker calls on the residue are independent (one fresh BDD
// manager per call) and merge indexed by target position. The Report is
// therefore identical for every worker count.
func (gen *Generator) Generate(targets []paths.Path, conf Config) (*Report, error) {
	return gen.GenerateCtx(context.Background(), targets, conf)
}

// GenerateCtx is Generate under a context. Cancelling ctx aborts both
// stages cooperatively and returns a structured fail.ErrCancelled (an
// expired deadline returns fail.ErrBudgetExceeded); a worker panic in
// either stage is isolated into a deterministic fail.ErrWorkerPanic. A
// per-path failure, by contrast, never aborts the run: a model-checker
// call that runs out of budget (conf.MC caps and Timeout) or fails leaves
// its target Unknown with the cause recorded in PathResult.Err, and the
// analysis continues — degrading the final report is the caller's job.
func (gen *Generator) GenerateCtx(ctx context.Context, targets []paths.Path, conf Config) (*Report, error) {
	workers := par.Workers(conf.Workers)
	o := obs.From(ctx)
	j := journal.From(ctx)
	// A distributed worker computes only its leased unit keys; everything
	// else is a sibling's. Scoped runs also disable the incidental-coverage
	// skip fast path and search with an empty done-snapshot, so every owned
	// record is the full pure outcome of (target, seed) — the canonical
	// coverage fold discards exactly the entries a serial run's skip logic
	// would have, so the merged journal replays to the identical report.
	scope := journal.ScopeFrom(ctx)
	vc := vcache.From(ctx)
	// The persistent cache only sees pure runs: an attached order book
	// makes node statistics depend on learned state, and an active fault
	// injector makes attempt histories depend on injected failures —
	// either would store records that are not functions of their keys.
	if !conf.cacheable() || faults.From(ctx) != nil {
		vc = nil
	}
	rep := &Report{}
	n := len(targets)
	keys := make([]string, n)
	for i, p := range targets {
		keys[i] = p.Key()
	}

	// Stage 1: heuristic search. Covered paths accumulate incidentally:
	// every candidate a GA evaluates is checked against the open targets.
	// Each search is one durable unit: a journaled outcome replays into the
	// coverage fold without re-running (the fold discards superseded
	// outcomes identically either way, so replay order cannot matter), a
	// transient failure retries with a per-attempt seed, and an exhausted
	// attempt budget degrades the one target — it simply gets no heuristic
	// coverage and falls through to the model checker — instead of
	// aborting the run.
	board := newGABoard(keys)
	gaKeys := gen.gaCacheKeys(vc, keys, conf)
	cachedGA := make([]bool, n)
	if !conf.SkipGA {
		err := par.ForEachWorkerCtx(ctx, n, workers, func(worker int) func(context.Context, int) error {
			m := interp.New(gen.File, gen.M.Opt)
			ow := o.Worker(worker)
			return func(ctx context.Context, i int) error {
				if rec, ok := loadGA(j, keys[i]); ok {
					board.deliver(i, gen.unpackGA(rec))
					o.Count("testgen.journal.replayed", 1)
					ow.Emit(obs.BusEvent{Kind: obs.EvUnitCompleted, Stage: "ga",
						Unit: "ga/" + keys[i], Detail: "replayed"})
					// The journal is authoritative for this run; copy the
					// replayed unit into the cache so the next run hits.
					if gaKeys != nil {
						storeGAVC(vc, gaKeys[i], rec)
					}
					return nil
				}
				if !scope.Owns("ga/" + keys[i]) {
					// A sibling worker's unit: contribute nothing, compute
					// nothing. The zero outcome keeps the local fold moving.
					board.deliver(i, &gaOutcome{})
					return nil
				}
				if gaKeys != nil {
					if rec, ok := loadGAVC(vc, gaKeys[i]); ok {
						// Journal the cache hit too: the run stays resumable,
						// and on resume the journal (checked first) wins.
						saveGA(j, keys[i], rec)
						board.deliver(i, gen.unpackGA(rec))
						cachedGA[i] = true
						o.Count("testgen.vcache.replayed", 1)
						return nil
					}
				}
				skipped := false
				var outcome *gaOutcome
				// The fault site fires before the skip check on every
				// attempt: whether index i is consulted must not depend on
				// the (schedule-dependent) incidental-coverage fast path.
				attempts, err := retry.Do(ctx, conf.Retry, func(attempt int) error {
					if ferr := faults.Fire(ctx, "testgen.search", i); ferr != nil {
						return fail.From("testgen", ferr)
					}
					// Scoped runs never take the skip fast path: the local fold
					// is a lower bound of the canonical one (unowned outcomes
					// fold as zero), so a local skip could journal a zero record
					// where the canonical run needs the full pure outcome.
					if scope == nil && board.trySkip(i) {
						skipped = true
						return nil
					}
					outcome = gen.searchTarget(ctx, m, board, targets, i, attempt, conf, ow, scope != nil)
					return nil
				})
				if err != nil {
					if ctx.Err() != nil {
						return fail.Context("testgen", ctx.Err())
					}
					outcome = &gaOutcome{}
				}
				// A context that died mid-search truncates the GA via its Stop
				// hook, making the outcome timing-dependent. It must not reach
				// the journal (or the board): abandon it as cancelled in-flight
				// work — the resumed run re-searches from scratch.
				if ctx.Err() != nil {
					return fail.Context("testgen", ctx.Err())
				}
				if skipped {
					saveGA(j, keys[i], &gaRecord{})
					if gaKeys != nil {
						storeGAVC(vc, gaKeys[i], &gaRecord{})
					}
					ow.Emit(obs.BusEvent{Kind: obs.EvUnitCompleted, Stage: "ga",
						Unit: "ga/" + keys[i], Detail: "skipped"})
					return nil
				}
				if len(attempts) > 1 {
					outcome.attempts = retry.History(attempts)
					ow.Emit(obs.BusEvent{Kind: obs.EvUnitRetried, Stage: "ga",
						Unit: "ga/" + keys[i], Detail: fmt.Sprintf("attempts=%d", len(attempts))})
				}
				rec := gen.packGA(outcome)
				saveGA(j, keys[i], rec)
				if gaKeys != nil {
					storeGAVC(vc, gaKeys[i], rec)
				}
				board.deliver(i, outcome)
				ow.Emit(obs.BusEvent{Kind: obs.EvUnitCompleted, Stage: "ga",
					Unit: "ga/" + keys[i], Detail: fmt.Sprintf("found=%t evals=%d", outcome.found, outcome.evals)})
				return nil
			}
		})
		if err != nil {
			return nil, fail.Attribute(err, "testgen", "")
		}
	}
	covered := board.counted
	rep.TotalGAEvals = board.evals
	o.Progressf("testgen: GA covered %d/%d targets (%d counted evaluations)",
		len(covered), n, board.evals)

	// Stage 2: model checking for the residue. Each residue path is one
	// durable unit with a retry loop (transient failures only), a
	// symbolic→explicit engine failover for BDD node-budget blow-ups on
	// small input spaces, and a journal record replayed on resume.
	results := make([]PathResult, n)
	var residue []int
	for i, p := range targets {
		results[i] = PathResult{Path: p, Attempts: board.attemptsFor(keys[i])}
		if env, ok := covered[keys[i]]; ok {
			results[i].Verdict = FoundByHeuristic
			results[i].Env = env
			continue
		}
		if conf.SkipMC {
			results[i].Verdict = Unknown
			continue
		}
		residue = append(residue, i)
	}
	o.Progressf("testgen: model checking %d residue paths", len(residue))
	// Prepass (cache attached): lower every residue path once, in residue
	// order, and probe the store exactly once per distinct cache key —
	// against its pre-run state. Hits are therefore a pure function of
	// (program, configuration, cache state at bind), never of worker
	// scheduling: a record this run stores is invisible to this run, and
	// when two residue paths slice to the identical query only the first
	// owns the key (probes it, stores it) — a duplicate shares the owner's
	// probe result, or proves itself exactly as it would without a cache.
	// The prepass stops at lowerQuery — the sliced, unoptimised query the
	// key digests — so a hit never pays the optimisation pipeline; the
	// worker optimises only the models it actually has to prove.
	var (
		lows      []*c2m.Result
		lowErrs   []error
		ckeys     []vcache.Key
		cachedRec []*tgRecord
		ownsKey   []bool
	)
	if vc != nil {
		lows = make([]*c2m.Result, len(residue))
		lowErrs = make([]error, len(residue))
		ckeys = make([]vcache.Key, len(residue))
		cachedRec = make([]*tgRecord, len(residue))
		ownsKey = make([]bool, len(residue))
		owner := map[vcache.Key]int{}
		for k, i := range residue {
			low, err := gen.lowerQuery(targets[i], conf)
			if err != nil {
				lowErrs[k] = err
				continue
			}
			lows[k] = low
			ckeys[k] = gen.mcCacheKey(low, conf)
			if first, seen := owner[ckeys[k]]; seen {
				cachedRec[k] = cachedRec[first]
				continue
			}
			owner[ckeys[k]] = k
			ownsKey[k] = true
			if rec, ok := loadTGVC(vc, ckeys[k]); ok {
				cachedRec[k] = rec
			}
		}
	}
	merr := par.ForEachWorkerCtx(ctx, len(residue), workers, func(worker int) func(context.Context, int) error {
		m := interp.New(gen.File, gen.M.Opt)
		ow := o.Worker(worker)
		return func(ctx context.Context, k int) error {
			i := residue[k]
			pr := &results[i]
			// The residue set and each call's outcome are pure functions of
			// program + config, so the per-path span is deterministic; its
			// logical key nests it under the testgen stage span.
			sp := ow.Span("testgen", "mc.path", "30/testgen/mc/"+keys[i],
				"path", keys[i])
			if rec, ok := loadTG(j, keys[i]); ok {
				pr.Verdict = Verdict(rec.Verdict)
				pr.Env = unpackEnv(rec.Env, gen.declByName())
				pr.MCStats = rec.stats()
				pr.Attempts = rec.Attempts
				pr.Err = fail.Replayed(rec.CauseKind, rec.CauseMsg)
				pr.Flight = rec.Flight
				o.Count("testgen.journal.replayed", 1)
				emitVerdict(ow, keys[i], pr.Verdict, "replayed")
				// Journal replay wins over the cache, and feeds it (first
				// owner of the key only, so duplicate queries write once).
				if vc != nil && ownsKey[k] && lows[k] != nil {
					storeTGVC(vc, ckeys[k], rec)
				}
				if pr.Err != nil {
					sp.End("verdict", pr.Verdict, "cause", pr.Err.Error())
				} else {
					sp.End("verdict", pr.Verdict,
						"steps", pr.MCStats.Steps, "peak-nodes", pr.MCStats.PeakNodes)
				}
				return nil
			}
			if !scope.Owns("tg/" + keys[i]) {
				// A sibling's residue unit: leave it locally Unknown without
				// journaling anything — the owner's record is merged by the
				// coordinator before any stage that consumes it.
				pr.Verdict = Unknown
				sp.End("verdict", pr.Verdict, "cause", "unowned")
				return nil
			}
			// Lower once per unit: the checked model is a pure function of
			// program + config, identical across retry attempts, so the
			// attempt loop must not pay the lowering and optimisation
			// pipeline again. The symbolic query likewise persists across
			// attempts (its expensive state builds lazily on first use and
			// is dropped on failure, so retries stay deterministic). With a
			// cache attached the prepass already lowered this unit.
			var low *c2m.Result
			var lerr error
			if vc != nil {
				low, lerr = lows[k], lowErrs[k]
			} else {
				low, lerr = gen.lowerPath(targets[i], conf)
			}
			if lerr != nil {
				if ctx.Err() != nil {
					return fail.Context("testgen", ctx.Err())
				}
				pr.Verdict = Unknown
				pr.Err = fail.Attribute(lerr, "testgen", keys[i])
				saveTG(j, keys[i], packTG(gen, pr, fail.KindLabel(pr.Err), pr.Err.Error()))
				emitVerdict(ow, keys[i], pr.Verdict, pr.Err.Error())
				sp.End("verdict", pr.Verdict, "cause", pr.Err.Error())
				return nil
			}
			if vc != nil {
				if rec := cachedRec[k]; rec != nil {
					env := unpackEnv(rec.Env, gen.declByName())
					// A cached Found verdict may cross program edits (its
					// sliced query was identical); re-validate the concrete
					// environment on the current program exactly like a
					// fresh witness, failing closed into a recompute.
					if rec.Verdict != int(FoundByModelChecker) || gen.validEnv(m, targets[i], env) {
						pr.Verdict = Verdict(rec.Verdict)
						pr.Env = env
						pr.MCStats = rec.stats()
						pr.Attempts = rec.Attempts
						pr.Err = fail.Replayed(rec.CauseKind, rec.CauseMsg)
						pr.Cached = true
						saveTG(j, keys[i], rec)
						o.Count("testgen.vcache.replayed", 1)
						emitVerdict(ow, keys[i], pr.Verdict, "cached")
						if pr.Err != nil {
							sp.End("verdict", pr.Verdict, "cause", pr.Err.Error())
						} else {
							sp.End("verdict", pr.Verdict,
								"steps", pr.MCStats.Steps, "peak-nodes", pr.MCStats.PeakNodes)
						}
						return nil
					}
				}
			}
			// With a cache attached the prepass stopped at lowerQuery; this
			// model must be proved after all, so it pays the optimisation
			// pipeline now — exactly what lowerPath would have produced.
			if vc != nil && conf.Optimise {
				opt.All(low.Model)
			}
			q := mc.NewSymbolicQuery(low.Model, conf.MC)
			defer q.Close()
			var res *mc.Result
			var env interp.Env
			attempts, err := retry.Do(ctx, conf.Retry, func(attempt int) error {
				if ferr := faults.Fire(ctx, "testgen.mc", i); ferr != nil {
					return fail.From("testgen", ferr)
				}
				var aerr error
				res, aerr = q.CheckCtx(ctx)
				if aerr != nil {
					return aerr
				}
				env = nil
				if res.Reachable {
					env, aerr = gen.witnessEnv(m, low, targets[i], res.Witness, conf)
				}
				return aerr
			})
			history := retry.History(attempts)
			// Failover: a BDD node budget is deterministic — retrying the
			// symbolic engine reproduces the blow-up — but a small input
			// space can be enumerated exactly by the explicit engine, which
			// checks the very model the symbolic engine just gave up on.
			var lim *bdd.LimitError
			if err != nil && ctx.Err() == nil && errors.As(err, &lim) {
				if space := inputSpace(low.Model); space <= conf.failoverMax() {
					history = append(history,
						fmt.Sprintf("failover: explicit engine (%.0f initial states)", space))
					o.Count("testgen.failover.explicit", 1)
					if ferr := faults.Fire(ctx, "testgen.failover", i); ferr != nil {
						err = fail.From("testgen", ferr)
					} else if xres, xerr := mc.CheckExplicitCtx(ctx, low.Model, conf.MC); xerr != nil {
						err = xerr
					} else {
						res, env, err = xres, nil, nil
						if xres.Reachable {
							env, err = gen.witnessEnv(m, low, targets[i], xres.Witness, conf)
						}
					}
				}
			}
			if len(history) > 1 {
				pr.Attempts = append(pr.Attempts, history...)
				ow.Emit(obs.BusEvent{Kind: obs.EvUnitRetried, Stage: "mc",
					Unit: "tg/" + keys[i], Detail: fmt.Sprintf("attempts=%d", len(history))})
			}
			if err != nil {
				// Root-context cancellation unwinds the whole run; any
				// per-path failure — budget, per-path timeout, unsupported
				// construct — degrades this one target to Unknown.
				if ctx.Err() != nil {
					return fail.Context("testgen", ctx.Err())
				}
				pr.Verdict = Unknown
				pr.Err = fail.Attribute(err, "testgen", keys[i])
				rec := packTG(gen, pr, fail.KindLabel(pr.Err), pr.Err.Error())
				saveTG(j, keys[i], rec)
				if vc != nil && ownsKey[k] {
					storeTGVC(vc, ckeys[k], rec)
				}
				emitVerdict(ow, keys[i], pr.Verdict, pr.Err.Error())
				sp.End("verdict", pr.Verdict, "cause", pr.Err.Error())
				return nil
			}
			pr.MCStats = res.Stats
			if res.Reachable {
				pr.Verdict = FoundByModelChecker
				pr.Env = env
			} else {
				pr.Verdict = Infeasible
			}
			rec := packTG(gen, pr, "", "")
			saveTG(j, keys[i], rec)
			if vc != nil && ownsKey[k] {
				storeTGVC(vc, ckeys[k], rec)
			}
			emitVerdict(ow, keys[i],
				pr.Verdict, fmt.Sprintf("steps=%d", res.Stats.Steps))
			sp.End("verdict", pr.Verdict,
				"steps", res.Stats.Steps, "peak-nodes", res.Stats.PeakNodes)
			return nil
		}
	})
	if merr != nil {
		return nil, fail.Attribute(merr, "testgen", "")
	}

	// Deterministic merge in target order. This single pass feeds both the
	// Report roll-ups and the metrics registry, so the two views agree by
	// construction.
	heuristicHits := 0
	feasible := 0
	retried := 0
	for _, c := range cachedGA {
		if c {
			rep.CachedUnits++
		}
	}
	var byVerdict [4]int
	for i := range results {
		byVerdict[results[i].Verdict]++
		if results[i].Cached {
			rep.CachedUnits++
		}
		if len(results[i].Attempts) > 0 {
			retried++
		}
		switch results[i].Verdict {
		case FoundByHeuristic:
			heuristicHits++
			feasible++
		case FoundByModelChecker:
			feasible++
		}
		rep.TotalMCSteps += results[i].MCStats.Steps
		if results[i].MCStats.PeakNodes > rep.PeakMCNodes {
			rep.PeakMCNodes = results[i].MCStats.PeakNodes
		}
	}
	rep.Results = results
	if feasible > 0 {
		rep.HeuristicShare = float64(heuristicHits) / float64(feasible)
	}
	if o != nil {
		o.Count("testgen.ga.evaluations", int64(rep.TotalGAEvals))
		o.Count("testgen.mc.steps", int64(rep.TotalMCSteps))
		o.SetMax("testgen.mc.peak_nodes", int64(rep.PeakMCNodes))
		o.Count("testgen.paths.heuristic", int64(byVerdict[FoundByHeuristic]))
		o.Count("testgen.paths.model_checker", int64(byVerdict[FoundByModelChecker]))
		o.Count("testgen.paths.infeasible", int64(byVerdict[Infeasible]))
		o.Count("testgen.paths.unknown", int64(byVerdict[Unknown]))
		o.Count("testgen.paths.retried", int64(retried))
		o.Set("testgen.heuristic_share_bp", 0, int64(rep.HeuristicShare*10000))
	}
	return rep, nil
}

// searchTarget runs one speculative GA search on a worker-private machine
// and returns its outcome; the caller decides delivery (and journaling).
// Incidental coverage is collected into the outcome — never into shared
// state — so the search is a pure function of (target, attempt seed) and
// the board can fold it deterministically. The context only feeds the
// search's Stop hook: cancellation cuts the search short, which is
// observable — the caller must abandon (never journal or deliver) an
// outcome produced under a dead context, so no timing-dependent result
// ever reaches a returned Report or a resumed run.
//
// pure (distributed workers) records the complete incidental coverage,
// unfiltered by the local board state: a scoped worker's board folds
// sibling outcomes as zero, so filtering against it would journal records
// that depend on which keys this worker happened to own.
func (gen *Generator) searchTarget(ctx context.Context, m *interp.Machine, board *gaBoard,
	targets []paths.Path, i, attempt int, conf Config, ow *obs.Observer, pure bool) *gaOutcome {

	p := targets[i]
	gaConf := conf.GA
	gaConf.Obs = ow
	gaConf.Seed = SeedForAttempt(conf.GA.Seed, board.keys[i], attempt)
	gaConf.Stop = func() bool { return ctx.Err() != nil }
	// Targets already covered by decided counted searches keep their board
	// environment no matter what this search observes; skip their checks.
	var done map[string]bool
	if !pure {
		done = board.snapshot()
	}
	o := &gaOutcome{cover: map[string]interp.Env{}}
	gaConf.OnTrace = func(env interp.Env, tr *interp.Trace) {
		for j, q := range targets {
			key := board.keys[j]
			if done[key] {
				continue
			}
			if _, ok := o.cover[key]; ok {
				continue
			}
			if paths.Covers(gen.G, tr, q) {
				o.cover[key] = env.Clone()
			}
		}
	}
	res := ga.Search(gen.G, m, gen.Inputs, p, conf.Base, gaConf)
	o.evals = res.Stats.Evaluations
	if res.Found {
		env := conf.Base.Clone()
		for d, v := range res.Env {
			env[d] = v
		}
		o.found = true
		o.env = env
	}
	return o
}

// CheckPath runs the model checker for one path and maps the witness back
// to an interpreter environment.
func (gen *Generator) CheckPath(p paths.Path, conf Config) (*mc.Result, interp.Env, error) {
	return gen.checkPathCtx(context.Background(), gen.M, p, conf)
}

// checkPathCtx is CheckPath with an explicit machine for the witness
// replay, so concurrent callers can use worker-private interpreters, and a
// context bounding the model-checker call (together with conf.MC's step,
// node and per-call timeout budgets).
func (gen *Generator) checkPathCtx(ctx context.Context, m *interp.Machine, p paths.Path, conf Config) (*mc.Result, interp.Env, error) {
	low, err := gen.lowerPath(p, conf)
	if err != nil {
		return nil, nil, err
	}
	res, err := mc.CheckSymbolicCtx(ctx, low.Model, conf.MC)
	if err != nil {
		return nil, nil, err
	}
	if !res.Reachable {
		return res, nil, nil
	}
	env, err := gen.witnessEnv(m, low, p, res.Witness, conf)
	if err != nil {
		return nil, nil, err
	}
	return res, env, nil
}

// lowerQuery builds the per-path query up to — but not including — the
// Section 3.2 optimisation pipeline: lowering, the sound
// variable-initialisation pinning, and (unless mc.Options.NoSlice) the
// per-trap program slice. The sliced-but-unoptimised model this returns is
// the verdict cache's key content: every downstream transformation — the
// optimisation pipeline, the engine's own idempotent re-slice — is a
// deterministic function of it plus config fields digested alongside the
// model, so a cached verdict's statistics are a pure function of the key.
// Crucially it costs a small fraction of the optimisation pipeline, which
// is what lets a warm run compute every path's key and still come out far
// ahead of re-proving.
func (gen *Generator) lowerQuery(p paths.Path, conf Config) (*c2m.Result, error) {
	low, err := c2m.LowerPath(gen.G, c2m.Options{NaiveWidths: !conf.Optimise}, p)
	if err != nil {
		return nil, err
	}
	model := low.Model
	// Pin non-inputs so model semantics match the interpreter's
	// zero-initialised locals, with base-env overrides (the paper's
	// variable-initialisation optimisation, applied soundly).
	for _, v := range model.Vars {
		if v.Input {
			continue
		}
		v.Init = tsys.InitConst
		v.InitVal = 0
		if d := low.DeclOf[v.ID]; d != nil {
			if val, ok := conf.Base[d]; ok {
				v.InitVal = val
			}
		}
	}
	if !conf.MC.NoSlice {
		opt.SliceTrap(model)
	}
	return low, nil
}

// lowerPath builds the checked model for one path: lowerQuery plus the
// Section 3.2 optimisation pipeline (optional). The result is a pure
// function of program + config, so the symbolic engine and an
// explicit-engine failover check the same model. Slicing before optimising
// means the expensive passes only see the trap-relevant fragment — and a
// verdict-cache hit, which is keyed on the lowerQuery model, skips the
// pipeline entirely.
func (gen *Generator) lowerPath(p paths.Path, conf Config) (*c2m.Result, error) {
	low, err := gen.lowerQuery(p, conf)
	if err != nil {
		return nil, err
	}
	if conf.Optimise {
		opt.All(low.Model)
	}
	return low, nil
}

// witnessEnv maps a trap-reaching witness back to an interpreter
// environment and validates it by replay: the witness must actually cover
// the path, whichever engine produced it.
func (gen *Generator) witnessEnv(m *interp.Machine, low *c2m.Result, p paths.Path,
	witness map[tsys.VarID]int64, conf Config) (interp.Env, error) {

	env := conf.Base.Clone()
	for id, val := range witness {
		if d := low.DeclOf[id]; d != nil {
			env[d] = val
		}
	}
	tr, err := m.Run(gen.G, env.Clone())
	if err != nil {
		return nil, fmt.Errorf("testgen: witness replay failed: %w", err)
	}
	if !paths.Covers(gen.G, tr, p) {
		return nil, fmt.Errorf("testgen: witness does not cover path %s", p.Key())
	}
	return env, nil
}

// inputSpace sizes a model's initial state space: the product of the free
// (non-pinned) variables' domains. It decides whether an explicit-engine
// failover is tractable.
func inputSpace(model *tsys.Model) float64 {
	total := 1.0
	for _, v := range model.Vars {
		if v.Init == tsys.InitConst {
			continue
		}
		var lo, hi int64
		switch {
		case v.HasRange:
			lo, hi = v.Lo, v.Hi
		case v.Signed:
			hi = int64(1)<<uint(v.Bits-1) - 1
			lo = -hi - 1
		default:
			lo, hi = 0, int64(1)<<uint(v.Bits)-1
		}
		total *= float64(hi-lo) + 1
		if total > 1e18 {
			return total
		}
	}
	return total
}

// Summary renders the report compactly.
func (rep *Report) Summary() string {
	byVerdict := map[Verdict]int{}
	for _, r := range rep.Results {
		byVerdict[r.Verdict]++
	}
	keys := []Verdict{FoundByHeuristic, FoundByModelChecker, Infeasible, Unknown}
	s := ""
	for _, k := range keys {
		if byVerdict[k] > 0 {
			s += fmt.Sprintf("%s:%d ", k, byVerdict[k])
		}
	}
	return fmt.Sprintf("%spaths:%d heuristic-share:%.0f%% ga-evals:%d mc-steps:%d",
		s, len(rep.Results), rep.HeuristicShare*100, rep.TotalGAEvals, rep.TotalMCSteps)
}
