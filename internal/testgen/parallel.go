package testgen

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"wcet/internal/interp"
)

// SeedFor derives the GA seed for one target path: a stable hash of the
// path key mixed with the configured base seed, finished with a splitmix64
// avalanche so adjacent keys get decorrelated streams.
//
// Seeds used to be allocated by a `seed++` walk over the target slice, which
// coupled every target's search to the position — and to the coverage
// verdicts — of all targets before it: adding, removing or reordering one
// target silently reshuffled every later search. Deriving the seed from the
// path key makes each search a pure function of (target, base seed), which
// both fixes that latent bug in serial mode and is what allows searches to
// run concurrently with byte-identical results.
func SeedFor(base int64, pathKey string) int64 {
	h := fnv.New64a()
	io.WriteString(h, pathKey)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// SeedForAttempt derives the GA seed for one retry attempt at a target.
// Attempt 1 (and anything below) is exactly SeedFor — a run that never
// retries produces bit-identical seeds to the pre-retry pipeline — and
// later attempts salt the path key so a healed transient failure explores a
// fresh, but still fully deterministic, stream.
func SeedForAttempt(base int64, pathKey string, attempt int) int64 {
	if attempt <= 1 {
		return SeedFor(base, pathKey)
	}
	return SeedFor(base, fmt.Sprintf("%s\x00attempt=%d", pathKey, attempt))
}

// gaOutcome is one target's finished (or skipped) GA search. A search is
// speculative: whether it counts is decided by the board's fold, not by the
// worker that ran it.
type gaOutcome struct {
	// found/env carry the search's own covering assignment (base + genes).
	found bool
	env   interp.Env
	// evals is the search's fitness-evaluation count.
	evals int
	// cover holds the first covering assignment the search's candidate
	// traces produced for each target key (incidental coverage).
	cover map[string]interp.Env
	// attempts is the retry history when the search needed more than one
	// attempt (nil otherwise). It surfaces in PathResult.Attempts only when
	// the search counts, because discarded speculative work — and therefore
	// its history — is schedule-dependent.
	attempts []string
}

// gaBoard folds speculative per-target GA searches into the canonical
// serial outcome.
//
// The serial driver's rule is: target j's search is skipped iff some
// earlier search that ran covers j incidentally. That rule is a chain over
// target order, so the board replays it as a fold: outcomes are delivered
// in any order, but decided strictly in target order (the frontier).
// A decided search either counts — its incidental coverage and result merge
// into the board, lowest search index winning each key — or is discarded,
// contributing nothing, exactly as if it had never run. Workers consult the
// board before starting a search and skip targets whose fate is already
// sealed; everything else runs speculatively. The fold's result is a pure
// function of the per-search outcomes, which are pure functions of
// (target, seed) — so coverage, chosen environments and evaluation counts
// are identical for every worker count, including 1.
type gaBoard struct {
	mu       sync.Mutex
	keys     []string
	outcomes []*gaOutcome
	frontier int // first undecided target index
	// counted maps covered target keys to their canonical environment.
	counted map[string]interp.Env
	// evals sums evaluations over counted searches only.
	evals int
	// attempts maps a target key to its counted search's retry history.
	// Only counted searches contribute — whether a discarded speculative
	// search ran at all depends on scheduling, so recording its history
	// would leak the schedule into the report.
	attempts map[string][]string
}

func newGABoard(keys []string) *gaBoard {
	return &gaBoard{
		keys:     keys,
		outcomes: make([]*gaOutcome, len(keys)),
		counted:  map[string]interp.Env{},
		attempts: map[string][]string{},
	}
}

// attemptsFor returns the counted retry history for a target key, if any.
func (b *gaBoard) attemptsFor(key string) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempts[key]
}

// snapshot returns the keys currently covered by decided, counted searches.
// A running search may skip coverage checks for these: all of them carry a
// final environment that supersedes anything the search would record.
func (b *gaBoard) snapshot() map[string]bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]bool, len(b.counted))
	for k := range b.counted {
		out[k] = true
	}
	return out
}

// trySkip marks target i as skipped when a decided lower-index search
// already covers it — the serial driver's incidental-coverage fast path.
// It returns false when the search must run (possibly speculatively).
func (b *gaBoard) trySkip(i int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.counted[b.keys[i]]; !ok {
		return false
	}
	b.outcomes[i] = &gaOutcome{}
	b.advanceLocked()
	return true
}

// deliver hands in a finished speculative search and decides any newly
// completable prefix.
func (b *gaBoard) deliver(i int, o *gaOutcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.outcomes[i] = o
	b.advanceLocked()
}

func (b *gaBoard) advanceLocked() {
	for b.frontier < len(b.outcomes) && b.outcomes[b.frontier] != nil {
		o := b.outcomes[b.frontier]
		key := b.keys[b.frontier]
		b.frontier++
		if _, done := b.counted[key]; done {
			// Skipped — or speculative work discarded because a counted
			// earlier search covered this target first.
			continue
		}
		for k, env := range o.cover {
			if _, done := b.counted[k]; !done {
				b.counted[k] = env
			}
		}
		if o.found {
			if _, done := b.counted[key]; !done {
				b.counted[key] = o.env
			}
		}
		b.evals += o.evals
		if len(o.attempts) > 0 {
			b.attempts[key] = o.attempts
		}
	}
}
