package testgen

import (
	"testing"

	"wcet/internal/ga"
)

func TestBranchCoverageFull(t *testing.T) {
	gen := setup(t, `
/*@ input */ /*@ range 0 3 */ int sel;
/*@ input */ /*@ range 0 100 */ char x;
int r;
void f(void) {
    r = 0;
    switch (sel) {
    case 0: r = 1; break;
    case 1: if (x > 50) { r = 2; } break;
    default: r = 3; break;
    }
}`, "f")
	cov, err := gen.Cover("branch", Config{
		GA:       ga.Config{Seed: 1, Pop: 30, MaxGens: 40, Stagnation: 10},
		Optimise: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cov.Unknown != 0 {
		t.Errorf("unknown targets: %s", cov)
	}
	if cov.Ratio() != 1 {
		t.Errorf("branch coverage incomplete: %s", cov)
	}
	// Every decision edge of this program is feasible.
	if cov.Infeasible != 0 {
		t.Errorf("unexpected infeasible branches: %s", cov)
	}
}

func TestBranchCoverageDetectsDeadBranch(t *testing.T) {
	gen := setup(t, `
/*@ input */ /*@ range 0 10 */ int a;
int r;
void f(void) {
    r = 0;
    if (a > 5) {
        if (a > 20) { r = 1; }
    }
}`, "f")
	cov, err := gen.Cover("branch", Config{
		GA:       ga.Config{Seed: 2, Pop: 30, MaxGens: 40, Stagnation: 10},
		Optimise: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// a ≤ 10, so the true edge of (a > 20) is infeasible.
	if cov.Infeasible != 1 {
		t.Errorf("infeasible branches = %d, want 1 (%s)", cov.Infeasible, cov)
	}
	if cov.Ratio() != 1 {
		t.Errorf("feasible-branch coverage incomplete: %s", cov)
	}
}

func TestStatementCoverage(t *testing.T) {
	gen := setup(t, `
/*@ input */ /*@ range 0 1 */ int a;
int r;
void f(void) {
    if (a == 1) { r = 1; } else { r = 2; }
    r = r + 1;
}`, "f")
	cov, err := gen.Cover("statement", Config{
		GA:       ga.Config{Seed: 3, Pop: 20, MaxGens: 30, Stagnation: 8},
		Optimise: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cov.Ratio() != 1 || cov.Unknown != 0 {
		t.Errorf("statement coverage incomplete: %s", cov)
	}
}

func TestUnknownCriterionRejected(t *testing.T) {
	gen := setup(t, `int x; void f(void) { x = 1; }`, "f")
	if _, err := gen.Cover("mcdc", Config{}); err == nil {
		t.Error("unknown criterion must error")
	}
}
