package testgen

// Integration tests for the persistent verdict cache: warm-equals-cold
// report identity, cross-edit reuse of sliced verdicts, journal-beats-
// cache precedence (and journal→cache population), budget-keyed reuse of
// degraded verdicts, order-book bypass, and fail-closed recovery from a
// poisoned record.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"wcet/internal/ga"
	"wcet/internal/journal"
	"wcet/internal/mc"
	"wcet/internal/vcache"
)

// renderResults flattens a report's deterministic fields — the same ones
// the journal replays — into a comparable string. Volatile fields
// (MCStats.Duration, Cached) are excluded on purpose.
func renderResults(rep *Report) string {
	var b strings.Builder
	for _, r := range rep.Results {
		fmt.Fprintf(&b, "%s %s ga=%d steps=%d nodes=%d bits=%d mem=%d states=%g",
			r.Path.Key(), r.Verdict, r.GAEvaluations, r.MCStats.Steps, r.MCStats.PeakNodes,
			r.MCStats.StateBits, r.MCStats.MemoryBytes, r.MCStats.States)
		names := make([]string, 0, len(r.Env))
		vals := map[string]int64{}
		for d, v := range r.Env {
			names = append(names, d.Name)
			vals[d.Name] = v
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, " %s=%d", n, vals[n])
		}
		if r.Err != nil {
			fmt.Fprintf(&b, " err=%q", r.Err.Error())
		}
		for _, a := range r.Attempts {
			fmt.Fprintf(&b, " attempt=%q", a)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "share=%g ga=%d steps=%d peak=%d\n",
		rep.HeuristicShare, rep.TotalGAEvals, rep.TotalMCSteps, rep.PeakMCNodes)
	return b.String()
}

func openStore(t *testing.T) *vcache.Store {
	t.Helper()
	vc, err := vcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return vc
}

func runWithCache(t *testing.T, gen *Generator, vc *vcache.Store, conf Config) *Report {
	t.Helper()
	ctx := vcache.With(context.Background(), vc)
	rep, err := gen.GenerateCtx(ctx, endToEndPaths(t, gen), conf)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func hybridConf() Config {
	return Config{
		GA:       ga.Config{Seed: 42, Pop: 40, MaxGens: 60, Stagnation: 15},
		Optimise: true,
	}
}

// TestVCacheWarmRunIdentical: a warm rerun of the identical program must
// serve every unit from the cache and produce a report whose deterministic
// fields match the cold run's exactly.
func TestVCacheWarmRunIdentical(t *testing.T) {
	gen := setup(t, hybridSrc, "f")
	vc := openStore(t)
	cold := runWithCache(t, gen, vc, hybridConf())
	if cold.CachedUnits != 0 {
		t.Fatalf("cold run claims %d cached units", cold.CachedUnits)
	}
	if vc.Len() == 0 {
		t.Fatal("cold run stored nothing")
	}
	warm := runWithCache(t, gen, vc, hybridConf())
	n := len(cold.Results)
	residue := 0
	for _, r := range cold.Results {
		if r.Verdict != FoundByHeuristic {
			residue++
		}
	}
	if want := n + residue; warm.CachedUnits != want {
		t.Fatalf("warm run cached %d units, want %d (all %d GA searches + %d MC verdicts)",
			warm.CachedUnits, want, n, residue)
	}
	if got, want := renderResults(warm), renderResults(cold); got != want {
		t.Fatalf("warm report diverges from cold:\n--- cold\n%s--- warm\n%s", want, got)
	}
	for _, r := range warm.Results {
		if r.Verdict != FoundByHeuristic && !r.Cached {
			t.Errorf("warm stage-2 verdict for %s not marked Cached", r.Path.Key())
		}
	}
}

// TestVCacheHitsSurviveEdit: after an edit to one guard constant, the
// sliced queries of paths that never reach that guard are unchanged —
// their verdicts (including the infeasibility proofs) must replay from the
// cache, while the paths through the edited region re-prove; and the warm
// report must be identical to a clean cold analysis of the edited program.
//
// The edit targets a guard on purpose: an edit to a trap-irrelevant
// assignment (say the value stored to r) is zero-widthed out of every
// slice and hits everywhere, which is correct but tests nothing.
func TestVCacheHitsSurviveEdit(t *testing.T) {
	edited := strings.Replace(hybridSrc, "a < 120", "a < 110", 1)
	if edited == hybridSrc {
		t.Fatal("edit did not apply")
	}
	conf := hybridConf()
	conf.SkipGA = true // every path is a model-checker unit: exact counting

	vc := openStore(t)
	genA := setup(t, hybridSrc, "f")
	runWithCache(t, genA, vc, conf)

	genB := setup(t, edited, "f")
	warm := runWithCache(t, genB, vc, conf)
	clean := runWithCache(t, setup(t, edited, "f"), nil, conf)

	// White-box cross-check: a path hits exactly when its sliced key is
	// byte-identical across the edit. The CFGs are isomorphic, so path keys
	// line up one-to-one.
	keysA := map[string]vcache.Key{}
	for _, p := range endToEndPaths(t, genA) {
		low, err := genA.lowerQuery(p, conf)
		if err != nil {
			t.Fatal(err)
		}
		keysA[p.Key()] = genA.mcCacheKey(low, conf)
	}
	stable := 0
	for _, r := range warm.Results {
		low, err := genB.lowerQuery(r.Path, conf)
		if err != nil {
			t.Fatal(err)
		}
		hit := genB.mcCacheKey(low, conf) == keysA[r.Path.Key()]
		if hit {
			stable++
		}
		if hit != r.Cached {
			t.Errorf("path %s: key stable=%v but Cached=%v", r.Path.Key(), hit, r.Cached)
		}
	}
	if stable == 0 || stable == len(warm.Results) {
		t.Fatalf("edit left %d of %d sliced keys stable; want a strict subset", stable, len(warm.Results))
	}
	if warm.CachedUnits != stable {
		t.Fatalf("warm run cached %d units, want %d (the stable sliced keys)", warm.CachedUnits, stable)
	}
	if got, want := renderResults(warm), renderResults(clean); got != want {
		t.Fatalf("warm post-edit report diverges from clean:\n--- clean\n%s--- warm\n%s", want, got)
	}
}

// TestVCacheJournalWinsAndFeedsCache: units present in the run journal
// replay from the journal — never from the cache — and are copied into
// the cache so the next (journal-less) run hits.
func TestVCacheJournalWinsAndFeedsCache(t *testing.T) {
	conf := hybridConf()
	conf.SkipGA = true
	gen := setup(t, hybridSrc, "f")

	jpath := t.TempDir() + "/run.journal"
	j, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	ctx := journal.With(context.Background(), j)
	targets := endToEndPaths(t, gen)
	first, err := gen.GenerateCtx(ctx, targets, conf)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Resume against the populated journal with an empty cache attached:
	// every unit must come from the journal (CachedUnits stays 0), and the
	// cache must come out populated.
	j2, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	vc := openStore(t)
	ctx = vcache.With(journal.With(context.Background(), j2), vc)
	resumed, err := gen.GenerateCtx(ctx, targets, conf)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.CachedUnits != 0 {
		t.Fatalf("journal replay lost to the cache: %d cached units", resumed.CachedUnits)
	}
	if j2.Hits() == 0 {
		t.Fatal("nothing replayed from the journal")
	}
	if vc.Len() == 0 {
		t.Fatal("journaled units were not copied into the cache")
	}

	// A journal-less run against that cache replays everything.
	warm := runWithCache(t, gen, vc, conf)
	if warm.CachedUnits != len(warm.Results) {
		t.Fatalf("cached %d of %d units after journal population", warm.CachedUnits, len(warm.Results))
	}
	if got, want := renderResults(warm), renderResults(first); got != want {
		t.Fatalf("cache-replayed report diverges from the journaled original:\n--- first\n%s--- warm\n%s", want, got)
	}
}

// TestVCacheBudgetsKeyDegradedVerdicts: an Unknown produced by a node
// budget is reusable only under the identical budget — the key digests the
// budgets, so a changed budget misses and recomputes rather than replaying
// a stale degradation.
func TestVCacheBudgetsKeyDegradedVerdicts(t *testing.T) {
	conf := hybridConf()
	conf.SkipGA = true
	conf.MC = mc.Options{MaxNodes: 8}
	conf.FailoverMaxStates = -1 // keep the budget blow-up degraded
	gen := setup(t, hybridSrc, "f")
	vc := openStore(t)

	starved := runWithCache(t, gen, vc, conf)
	unknown := 0
	for _, r := range starved.Results {
		if r.Verdict == Unknown {
			unknown++
		}
	}
	if unknown == 0 {
		t.Fatal("node budget of 8 degraded nothing; the premise is broken")
	}

	// Identical budgets: the degraded verdicts replay, causes included.
	replay := runWithCache(t, gen, vc, conf)
	if replay.CachedUnits != len(replay.Results) {
		t.Fatalf("cached %d of %d under identical budgets", replay.CachedUnits, len(replay.Results))
	}
	if got, want := renderResults(replay), renderResults(starved); got != want {
		t.Fatalf("replayed degraded report diverges:\n--- cold\n%s--- warm\n%s", want, got)
	}

	// A lifted budget must miss everything and resolve the paths.
	lifted := conf
	lifted.MC = mc.Options{}
	resolved := runWithCache(t, gen, vc, lifted)
	if resolved.CachedUnits != 0 {
		t.Fatalf("budget change still hit %d cached units", resolved.CachedUnits)
	}
	for _, r := range resolved.Results {
		if r.Verdict == Unknown {
			t.Errorf("path %s still unknown without the starved budget: %v", r.Path.Key(), r.Err)
		}
	}
}

// TestVCacheOrderBookBypass: a configuration carrying a learned-order book
// must not touch the cache at all — node statistics under a book are not a
// pure function of the key.
func TestVCacheOrderBookBypass(t *testing.T) {
	conf := hybridConf()
	conf.SkipGA = true
	conf.MC.Orders = mc.NewOrderBook()
	gen := setup(t, hybridSrc, "f")
	vc := openStore(t)
	runWithCache(t, gen, vc, conf)
	if vc.Len() != 0 {
		t.Fatalf("order-book run stored %d records", vc.Len())
	}
	again := runWithCache(t, gen, vc, conf)
	if again.CachedUnits != 0 || vc.Counters().Hits != 0 {
		t.Fatal("order-book run consulted the cache")
	}
}

// TestVCachePoisonedEnvFailsClosed: a Found record whose environment does
// not cover its path on the current program (a stale or corrupted entry)
// must be recomputed, not trusted. Each key is poisoned with an
// environment that genuinely covers a *different* path — the strongest
// form of staleness, since the env is plausible but wrong for its key.
func TestVCachePoisonedEnvFailsClosed(t *testing.T) {
	conf := hybridConf()
	conf.SkipGA = true
	gen := setup(t, hybridSrc, "f")
	targets := endToEndPaths(t, gen)
	vc := openStore(t)

	clean := runWithCache(t, gen, nil, conf)
	type donor struct {
		pathKey string
		env     envRecord
	}
	var donors []donor
	for _, r := range clean.Results {
		if r.Env == nil {
			continue
		}
		e := envRecord{}
		for d, v := range r.Env {
			e[d.Name] = v
		}
		donors = append(donors, donor{r.Path.Key(), e})
	}
	if len(donors) < 2 {
		t.Fatalf("need at least two covered paths to cross-poison, have %d", len(donors))
	}
	for _, p := range targets {
		var env envRecord
		for _, d := range donors {
			if d.pathKey != p.Key() {
				env = d.env
				break
			}
		}
		low, err := gen.lowerQuery(p, conf)
		if err != nil {
			t.Fatal(err)
		}
		vc.Put(gen.mcCacheKey(low, conf), &tgRecord{Verdict: int(FoundByModelChecker), Env: env})
	}

	rep := runWithCache(t, gen, vc, conf)
	if rep.CachedUnits != 0 {
		t.Fatalf("%d poisoned records replayed", rep.CachedUnits)
	}
	if got, want := renderResults(rep), renderResults(clean); got != want {
		t.Fatalf("recovery from poisoned cache diverges from clean:\n--- clean\n%s--- got\n%s", want, got)
	}
}
