package testgen

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"wcet/internal/fail"
	"wcet/internal/faults"
	"wcet/internal/mc"
)

// needleRangedSrc hides a 1-in-30001 needle inside a small, explicitly
// enumerable input space: the GA cannot hit it, and a starved symbolic
// engine can fail over to exact enumeration.
const needleRangedSrc = `
/*@ input */ /*@ range 0 30000 */ int a;
int r;
int f(void) {
    r = 0;
    if (a == 23456) { r = 1; }
    return r;
}`

// TestNodeBudgetFailsOverToExplicitEngine: when the symbolic engine
// exhausts a (tiny) BDD node budget on a small input space, the driver
// fails over to the explicit engine and still decides every path — with
// the failover recorded in the attempt history, identically at every
// worker count.
func TestNodeBudgetFailsOverToExplicitEngine(t *testing.T) {
	gen := setup(t, needleRangedSrc, "f")
	targets := endToEndPaths(t, gen)
	run := func(workers int) *Report {
		rep, err := gen.GenerateCtx(context.Background(), targets, Config{
			GA: smallGA(), Optimise: true, Workers: workers,
			MC: mc.Options{MaxNodes: 64},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rep
	}
	serial := run(1)
	a := gen.InputDecls()[0]
	foundNeedle := false
	failovers := 0
	for _, r := range serial.Results {
		if r.Verdict == Unknown {
			t.Errorf("path %s stayed unknown despite failover: %v", r.Path.Key(), r.Err)
		}
		for _, line := range r.Attempts {
			if strings.Contains(line, "failover: explicit engine") {
				failovers++
			}
		}
		if r.Verdict == FoundByModelChecker && r.Env != nil && r.Env[a] == 23456 {
			foundNeedle = true
		}
	}
	if failovers == 0 {
		t.Fatal("no attempt history mentions the explicit-engine failover")
	}
	if !foundNeedle {
		t.Error("the explicit engine never produced the a=23456 witness")
	}
	parallel := run(8)
	zeroDurations(serial)
	zeroDurations(parallel)
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("failover reports differ across worker counts")
	}
}

func zeroDurations(rep *Report) {
	for i := range rep.Results {
		rep.Results[i].MCStats.Duration = 0
	}
}

// TestFailoverDisabledDegradesToUnknown: with failover off, the same node
// budget exhaustion degrades the residue to Unknown with a budget cause.
func TestFailoverDisabledDegradesToUnknown(t *testing.T) {
	gen := setup(t, needleRangedSrc, "f")
	targets := endToEndPaths(t, gen)
	rep, err := gen.GenerateCtx(context.Background(), targets, Config{
		GA: smallGA(), Optimise: true,
		MC:                mc.Options{MaxNodes: 64},
		FailoverMaxStates: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	unknowns := 0
	for _, r := range rep.Results {
		if r.Verdict != Unknown {
			continue
		}
		unknowns++
		if !errors.Is(r.Err, fail.ErrBudgetExceeded) {
			t.Errorf("path %s: cause = %v, want the exhausted node budget", r.Path.Key(), r.Err)
		}
	}
	if unknowns == 0 {
		t.Fatal("node budget never exhausted — the starved symbolic run decided everything")
	}
}

// TestTransientFaultsRetriedDeterministically: transient infrastructure
// faults on both stages are healed by the retry policy, the surviving
// attempt histories land in the report, and the whole report — histories
// included — is identical across worker counts.
func TestTransientFaultsRetriedDeterministically(t *testing.T) {
	gen := setup(t, needleSrc, "f")
	targets := endToEndPaths(t, gen)
	run := func(workers int) *Report {
		ctx := faults.With(context.Background(), faults.New(
			faults.Rule{Site: "testgen.search", Index: -1, MaxFires: 1,
				Err: fail.Infra("testgen", errors.New("injected transient search fault"))},
			faults.Rule{Site: "testgen.mc", Index: -1, MaxFires: 1,
				Err: fail.Infra("testgen", errors.New("injected transient mc fault"))}))
		rep, err := gen.GenerateCtx(ctx, targets, Config{
			GA: smallGA(), Optimise: true, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: transient faults within the attempt budget must heal: %v", workers, err)
		}
		return rep
	}
	serial := run(1)
	retried := 0
	for _, r := range serial.Results {
		if r.Verdict == Unknown {
			t.Errorf("path %s: healed run left an unknown: %v", r.Path.Key(), r.Err)
		}
		if len(r.Attempts) > 0 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("no path carries an attempt history — the retries never happened")
	}
	parallel := run(8)
	zeroDurations(serial)
	zeroDurations(parallel)
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("retried reports differ across worker counts")
	}
}

// TestBudgetFaultNeverRetried: a deterministic budget verdict must not be
// retried — pinned with a MaxFires=1 rule: a single retry would get past
// it and decide the path, so the path staying Unknown proves no second
// attempt ran.
func TestBudgetFaultNeverRetried(t *testing.T) {
	gen := setup(t, needleSrc, "f")
	targets := endToEndPaths(t, gen)
	ctx := faults.With(context.Background(), faults.New(
		faults.Rule{Site: "testgen.mc", Index: -1, MaxFires: 1,
			Err: fail.Budget("mc", "injected deterministic budget")}))
	rep, err := gen.GenerateCtx(ctx, targets, Config{GA: smallGA(), Optimise: true})
	if err != nil {
		t.Fatal(err)
	}
	unknowns := 0
	for _, r := range rep.Results {
		if r.Verdict != Unknown {
			continue
		}
		unknowns++
		if len(r.Attempts) != 0 {
			t.Errorf("path %s: budget fault has attempt history %v — it was retried", r.Path.Key(), r.Attempts)
		}
	}
	if unknowns == 0 {
		t.Fatal("the injected budget fault never fired — or it was retried past MaxFires")
	}
}
