package testgen

// Verdict-cache keys and codecs for the hybrid generator: the per-unit
// records that cross the journal boundary (gaRecord, tgRecord) also cross
// the persistent cache boundary, under content-addressed keys instead of
// run-local path keys.
//
// The two stages cache under very different keys because their outcomes
// have very different dependency cones:
//
//   - A stage-2 model-checker verdict is a function of the *checked query*
//     alone: the per-trap-sliced transition system plus the deterministic
//     model-checker options and budgets. The slice drops every edge whose
//     target cannot reach the path's trap and zero-widths the variables
//     only those edges touch, then renumbers locations canonically (BFS
//     from the initial location) — so an edit in a region a path cannot
//     see leaves its sliced model, and therefore its key, byte-identical,
//     and the stored verdict replays. The key digests the slice *before*
//     the Section 3.2 optimisation pipeline runs: the pipeline is a
//     deterministic function of the sliced model and of flags digested in
//     the key, so nothing is lost — and computing a key costs a small
//     fraction of the optimisation-plus-fixpoint work a hit skips. This is
//     what makes re-analysis after an edit incremental where it matters:
//     optimising and model checking are the expensive stages.
//
//   - A stage-1 GA outcome is a function of the *whole program* (fitness
//     evaluation interprets the full function; incidental coverage is
//     collected against every open target), so its key digests the
//     canonically printed program, the full target list and the GA
//     configuration. Any source edit misses — by design; re-running the
//     cheap heuristic stage is the price of its whole-program semantics.
//
// Keys deliberately digest budgets (MC step/state/node caps, per-call
// timeout, retry policy, failover cap): a degraded or Unknown verdict is
// only reusable under the budgets that produced it, and making the budgets
// part of the identity enforces that by construction.
//
// Configurations carrying an mc.OrderBook are not cached at all: learned
// variable orders change reorder behaviour and node statistics, so a
// cached stat block would not be a pure function of the key.

import (
	"sort"

	"wcet/internal/c2m"
	"wcet/internal/cc/ast"
	"wcet/internal/interp"
	"wcet/internal/paths"
	"wcet/internal/vcache"
)

// cacheable reports whether the configuration's outcomes may cross the
// persistent cache boundary at all.
func (c Config) cacheable() bool { return c.MC.Orders == nil }

// digestEnv folds an environment as sorted name=value pairs. Names, not
// declaration pointers, define the identity — the same convention the
// journal codec uses to serialize environments.
func digestEnv(h *vcache.Hasher, env interp.Env) {
	names := make([]string, 0, len(env))
	vals := make(map[string]int64, len(env))
	for d, v := range env {
		names = append(names, d.Name)
		vals[d.Name] = v
	}
	sort.Strings(names)
	h.Int(int64(len(names)))
	for _, n := range names {
		h.Str(n)
		h.Int(vals[n])
	}
}

// digestRetry folds the retry policy; attempt histories are part of every
// cached record, and they are only a pure function of the unit when the
// attempt budget that shaped them is part of the key.
func digestRetry(h *vcache.Hasher, c Config) {
	h.Int(int64(c.Retry.MaxAttempts))
	h.Int(int64(c.Retry.BackoffBase))
}

// gaCacheKeys builds the stage-1 keys for every target up front (one
// program print, shared across targets). Returns nil when the cache is
// absent or the configuration is uncacheable.
func (gen *Generator) gaCacheKeys(vc *vcache.Store, keys []string, conf Config) []vcache.Key {
	if vc == nil || !conf.cacheable() {
		return nil
	}
	prog := ast.Print(gen.File)
	out := make([]vcache.Key, len(keys))
	for i := range keys {
		h := vcache.NewKey("wcet-vcache-ga-v1")
		h.Str(prog)
		h.Str(gen.Fn.Name)
		// The full target list in order: incidental coverage makes every
		// outcome depend on which other targets were open, and the board
		// fold decides in target order.
		h.Int(int64(len(keys)))
		for _, k := range keys {
			h.Str(k)
		}
		h.Int(int64(i))
		h.Str(keys[i])
		h.Int(conf.GA.Seed)
		h.Int(int64(conf.GA.Pop))
		h.Int(int64(conf.GA.MaxGens))
		h.Int(int64(conf.GA.Stagnation))
		h.Float(conf.GA.MutRate)
		h.Float(conf.GA.CrossRate)
		h.Int(int64(conf.GA.Tournament))
		h.Int(int64(conf.GA.MaxEvaluations))
		digestRetry(h, conf)
		digestEnv(h, conf.Base)
		out[i] = h.Sum()
	}
	return out
}

// mcCacheKey builds the stage-2 verdict key from a lowerQuery result: the
// sliced, unoptimised query's canonical digest plus every deterministic
// option the verdict, statistics, environment and attempts history are a
// function of. The slice is what buys cross-edit stability, and digesting
// *before* the optimisation pipeline is what makes the key cheap: a warm
// run computes it without paying opt.All, and everything downstream of the
// digested model (opt.All under conf.Optimise, the engine's own idempotent
// re-slice) is a deterministic function of it — so equal keys mean equal
// verdicts and equal statistics.
func (gen *Generator) mcCacheKey(low *c2m.Result, conf Config) vcache.Key {
	h := vcache.NewKey("wcet-vcache-mc-v2")
	model := low.Model
	model.WriteDigest(h.Writer())
	// The structural digest excludes names, but cached environments are
	// serialized by name: fold the names so a pure rename can never serve
	// an environment with stale bindings.
	h.Int(int64(len(model.Vars)))
	for _, v := range model.Vars {
		h.Str(v.Name)
	}
	h.Int(int64(conf.MC.MaxSteps))
	h.Int(int64(conf.MC.MaxStates))
	h.Int(int64(conf.MC.MaxNodes))
	h.Int(int64(conf.MC.Timeout))
	h.Bool(conf.MC.NoSlice)
	h.Bool(conf.MC.NoReorder)
	h.Bool(conf.MC.NoPool)
	h.Bool(conf.Optimise)
	h.Int(int64(conf.FailoverMaxStates))
	digestRetry(h, conf)
	digestEnv(h, conf.Base)
	return h.Sum()
}

// loadGAVC / storeGAVC move stage-1 records across the cache boundary.
func loadGAVC(vc *vcache.Store, k vcache.Key) (*gaRecord, bool) {
	if vc == nil {
		return nil, false
	}
	var r gaRecord
	if !vc.Get(k, &r) {
		return nil, false
	}
	return &r, true
}

func storeGAVC(vc *vcache.Store, k vcache.Key, r *gaRecord) {
	if vc == nil {
		return
	}
	// A full cache disk is the store owner's problem; the analysis itself
	// proceeds (it simply will not hit here next run).
	_ = vc.Put(k, r)
}

// loadTGVC / storeTGVC move stage-2 verdicts across the cache boundary.
func loadTGVC(vc *vcache.Store, k vcache.Key) (*tgRecord, bool) {
	if vc == nil {
		return nil, false
	}
	var r tgRecord
	if !vc.Get(k, &r) {
		return nil, false
	}
	return &r, true
}

func storeTGVC(vc *vcache.Store, k vcache.Key, r *tgRecord) {
	if vc == nil {
		return
	}
	_ = vc.Put(k, r)
}

// validEnv replays a cached covering environment on the current program
// and requires it to still cover the target path. Cached Found verdicts
// may cross program edits (their sliced query was identical), so the
// environment gets the same concrete re-validation a fresh witness gets in
// witnessEnv — a stale record fails closed into a recompute, never into a
// wrong report.
func (gen *Generator) validEnv(m *interp.Machine, p paths.Path, env interp.Env) bool {
	if env == nil {
		return false
	}
	tr, err := m.Run(gen.G, env.Clone())
	if err != nil {
		return false
	}
	return paths.Covers(gen.G, tr, p)
}
