package testgen

// Journal codec for the hybrid generator: every finished unit of stage-1
// (one GA search outcome) and stage-2 (one residue verdict) work is stored
// in the run journal under a content-addressed key, so an interrupted run
// resumes by replaying stored outcomes instead of recomputing them.
//
// Environments are serialized as name → value pairs over every variable
// they bind — not just inputs. GA fitness evaluation runs the interpreter
// on the candidate environment in place, so a recorded environment is a
// post-execution state that also binds locals and written globals; a
// replayed run must reproduce those bindings exactly for the resumed
// report to stay byte-identical. Names, not pointers, cross the process
// boundary; on replay a resolver maps names back to the function's
// declarations (globals, parameters and body-local declarations, with the
// innermost declaration winning a name).
//
// Model-checker stats are journaled without their Duration: wall clock is
// the one volatile field, and replaying zero there keeps every
// deterministic report field byte-identical while never leaking one run's
// timing into another.

import (
	"wcet/internal/cc/ast"
	"wcet/internal/interp"
	"wcet/internal/journal"
	"wcet/internal/mc"
)

// envRecord is a serialized environment: variable name → value.
type envRecord map[string]int64

func (gen *Generator) packEnv(env interp.Env) envRecord {
	if env == nil {
		return nil
	}
	out := envRecord{}
	for d, v := range env {
		out[d.Name] = v
	}
	return out
}

// declByName builds the replay resolver: every declaration visible to the
// analysed function, keyed by name. Function-local declarations are walked
// after the globals, so an inner declaration wins a shared name.
func (gen *Generator) declByName() map[string]*ast.VarDecl {
	m := map[string]*ast.VarDecl{}
	for _, g := range gen.File.Globals {
		m[g.Name] = g
	}
	ast.Walk(gen.Fn, func(n ast.Node) bool {
		if d, ok := n.(*ast.VarDecl); ok {
			m[d.Name] = d
		}
		return true
	})
	return m
}

func unpackEnv(rec envRecord, decls map[string]*ast.VarDecl) interp.Env {
	if rec == nil {
		return nil
	}
	env := interp.Env{}
	for name, v := range rec {
		if d := decls[name]; d != nil {
			env[d] = v
		}
	}
	return env
}

// gaRecord is one journaled stage-1 search outcome ("ga/<path key>"). A
// skipped search journals the zero record — replaying it reproduces the
// skip's (empty) contribution to the coverage fold.
type gaRecord struct {
	Found    bool
	Env      envRecord
	Evals    int
	Cover    map[string]envRecord
	Attempts []string
	// Quarantined marks a record fabricated by Quarantine rather than
	// computed; Flight carries the dead worker's last-events post-mortem.
	// Both are volatile diagnostics: they never reach a canonical export.
	Quarantined bool     `json:",omitempty"`
	Flight      []string `json:",omitempty"`
}

func (gen *Generator) packGA(o *gaOutcome) *gaRecord {
	r := &gaRecord{Found: o.found, Env: gen.packEnv(o.env), Evals: o.evals, Attempts: o.attempts}
	if len(o.cover) > 0 {
		r.Cover = map[string]envRecord{}
		for k, env := range o.cover {
			r.Cover[k] = gen.packEnv(env)
		}
	}
	return r
}

func (gen *Generator) unpackGA(r *gaRecord) *gaOutcome {
	decls := gen.declByName()
	o := &gaOutcome{found: r.Found, env: unpackEnv(r.Env, decls),
		evals: r.Evals, attempts: r.Attempts, cover: map[string]interp.Env{}}
	for k, rec := range r.Cover {
		o.cover[k] = unpackEnv(rec, decls)
	}
	return o
}

// tgRecord is one journaled stage-2 verdict ("tg/<path key>"). The cause of
// an Unknown verdict crosses the boundary as (kind label, rendered string)
// and is reconstructed with fail.Replayed, so a resumed report renders the
// identical degradation ledger. Cancelled work is never journaled — a
// withdrawn request is not a verdict.
type tgRecord struct {
	Verdict     int
	Env         envRecord
	Steps       int
	PeakNodes   int
	StateBits   int
	MemoryBytes int64
	States      float64
	CauseKind   string
	CauseMsg    string
	Attempts    []string
	// Quarantined marks a record fabricated by Quarantine rather than
	// computed; Flight carries the dead worker's last-events post-mortem.
	// Both are volatile diagnostics: they never reach a canonical export.
	Quarantined bool     `json:",omitempty"`
	Flight      []string `json:",omitempty"`
}

func packTG(gen *Generator, pr *PathResult, causeKind, causeMsg string) *tgRecord {
	return &tgRecord{
		Verdict:     int(pr.Verdict),
		Env:         gen.packEnv(pr.Env),
		Steps:       pr.MCStats.Steps,
		PeakNodes:   pr.MCStats.PeakNodes,
		StateBits:   pr.MCStats.StateBits,
		MemoryBytes: pr.MCStats.MemoryBytes,
		States:      pr.MCStats.States,
		CauseKind:   causeKind,
		CauseMsg:    causeMsg,
		Attempts:    pr.Attempts,
	}
}

func (r *tgRecord) stats() mc.Stats {
	return mc.Stats{Steps: r.Steps, PeakNodes: r.PeakNodes, StateBits: r.StateBits,
		MemoryBytes: r.MemoryBytes, States: r.States}
}

func loadGA(j *journal.Journal, key string) (*gaRecord, bool) {
	var r gaRecord
	if !j.GetJSON("ga/"+key, &r) {
		return nil, false
	}
	return &r, true
}

func saveGA(j *journal.Journal, key string, r *gaRecord) {
	// A full journal disk is an infrastructure problem for the run's owner;
	// the analysis itself proceeds (it simply cannot resume past here).
	_ = j.PutJSON("ga/"+key, r)
}

func loadTG(j *journal.Journal, key string) (*tgRecord, bool) {
	var r tgRecord
	if !j.GetJSON("tg/"+key, &r) {
		return nil, false
	}
	return &r, true
}

func saveTG(j *journal.Journal, key string, r *tgRecord) {
	_ = j.PutJSON("tg/"+key, r)
}
