package testgen

import (
	"fmt"

	"wcet/internal/cfg"
	"wcet/internal/paths"
)

// Structural-coverage target construction — the paper notes the hybrid
// generator "can be used for testing because various structural code
// coverage criteria may be satisfied". Each criterion reduces to a set of
// single-step paths the generator then covers or proves infeasible.

// BranchTargets returns one target per decision outcome (branch coverage):
// for every conditional or switch edge, the one-block path taking it.
func BranchTargets(g *cfg.Graph) []paths.Path {
	var out []paths.Path
	for _, n := range g.Nodes {
		succs := g.Succs(n.ID)
		if len(succs) < 2 {
			continue
		}
		for _, e := range succs {
			out = append(out, paths.Path{Blocks: []cfg.NodeID{n.ID}, Exit: e})
		}
	}
	return out
}

// StatementTargets returns one target per basic block (statement coverage).
func StatementTargets(g *cfg.Graph) []paths.Path {
	var out []paths.Path
	for _, n := range g.Nodes {
		succs := g.Succs(n.ID)
		if len(succs) == 0 {
			out = append(out, paths.Path{Blocks: []cfg.NodeID{n.ID},
				Exit: cfg.Edge{From: n.ID, To: cfg.NoNode, Kind: "end"}})
			continue
		}
		// Any outgoing edge witnesses execution of the block.
		out = append(out, paths.Path{Blocks: []cfg.NodeID{n.ID}, Exit: succs[0]})
	}
	return out
}

// Coverage summarises a criterion run.
type Coverage struct {
	Criterion string
	Total     int
	Covered   int
	// Infeasible targets cannot be executed by any input; they do not count
	// against coverage (the criterion is "all feasible items").
	Infeasible int
	Unknown    int
	Report     *Report
}

// Ratio is covered / (total - infeasible).
func (c *Coverage) Ratio() float64 {
	feasible := c.Total - c.Infeasible
	if feasible <= 0 {
		return 1
	}
	return float64(c.Covered) / float64(feasible)
}

func (c *Coverage) String() string {
	return fmt.Sprintf("%s coverage: %d/%d feasible items (%.0f%%), %d infeasible, %d unknown",
		c.Criterion, c.Covered, c.Total-c.Infeasible, c.Ratio()*100, c.Infeasible, c.Unknown)
}

// Cover runs the hybrid generator against a coverage criterion.
func (gen *Generator) Cover(criterion string, conf Config) (*Coverage, error) {
	var targets []paths.Path
	switch criterion {
	case "branch":
		targets = BranchTargets(gen.G)
	case "statement":
		targets = StatementTargets(gen.G)
	default:
		return nil, fmt.Errorf("testgen: unknown coverage criterion %q", criterion)
	}
	rep, err := gen.Generate(targets, conf)
	if err != nil {
		return nil, err
	}
	cov := &Coverage{Criterion: criterion, Total: len(targets), Report: rep}
	for _, r := range rep.Results {
		switch r.Verdict {
		case FoundByHeuristic, FoundByModelChecker:
			cov.Covered++
		case Infeasible:
			cov.Infeasible++
		default:
			cov.Unknown++
		}
	}
	return cov, nil
}
