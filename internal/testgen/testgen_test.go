package testgen

import (
	"testing"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/ga"
	"wcet/internal/interp"
	"wcet/internal/paths"
)

func setup(t *testing.T, src, name string) *Generator {
	t.Helper()
	f, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatalf("sem: %v", err)
	}
	fn := f.Func(name)
	g, err := cfg.Build(fn)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return New(f, fn, g)
}

const hybridSrc = `
/*@ input */ /*@ range 0 200 */ int a;
/*@ input */ /*@ range 0 200 */ int b;
int r;
int f(void) {
    r = 0;
    if (a > 100) { r = 1; }
    if (a == 173 && b == a + 9) { r = r + 2; }
    if (a > 150) {
        if (a < 120) { r = 9; }
    }
    return r;
}`

func endToEndPaths(t *testing.T, gen *Generator) []paths.Path {
	t.Helper()
	ps, err := paths.Enumerate(cfg.WholeFunction(gen.G), 0)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestHybridCoversEverythingFeasible(t *testing.T) {
	gen := setup(t, hybridSrc, "f")
	targets := endToEndPaths(t, gen)
	rep, err := gen.Generate(targets, Config{
		GA:       ga.Config{Seed: 42, Pop: 40, MaxGens: 60, Stagnation: 15},
		Optimise: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Verdict]int{}
	for _, r := range rep.Results {
		counts[r.Verdict]++
		if r.Verdict == Unknown {
			t.Errorf("path %s unknown: %v", r.Path.Key(), r.Err)
		}
		// Every found datum must replay onto its path.
		if r.Verdict == FoundByHeuristic || r.Verdict == FoundByModelChecker {
			tr, err := gen.M.Run(gen.G, r.Env.Clone())
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if !paths.Covers(gen.G, tr, r.Path) {
				t.Errorf("datum for %s does not cover it", r.Path.Key())
			}
		}
	}
	// Cross-decision constraints (a==173 needs a>100 and a>150; a<120
	// contradicts a>150) leave exactly 4 of the 12 end-to-end paths
	// feasible.
	if counts[Infeasible] != 8 {
		t.Errorf("infeasible = %d, want 8 (%s)", counts[Infeasible], rep.Summary())
	}
	if counts[FoundByHeuristic]+counts[FoundByModelChecker] != 4 {
		t.Errorf("coverage incomplete: %s", rep.Summary())
	}
	// The equality needle (a==173 && b==a+9) should be beyond the GA's easy
	// reach only sometimes; whichever stage finds it, the split must be
	// recorded coherently.
	if rep.HeuristicShare < 0.5 {
		t.Errorf("heuristic share %.2f unexpectedly low (%s)", rep.HeuristicShare, rep.Summary())
	}
}

func TestModelCheckerOnlyFindsNeedle(t *testing.T) {
	gen := setup(t, `
/*@ input */ int a;
int r;
int f(void) {
    r = 0;
    if (a == -30000) { r = 1; }
    return r;
}`, "f")
	targets := endToEndPaths(t, gen)
	rep, err := gen.Generate(targets, Config{SkipGA: true, Optimise: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Verdict == Unknown || r.Verdict == FoundByHeuristic {
			t.Errorf("path %s: verdict %s with GA disabled", r.Path.Key(), r.Verdict)
		}
	}
}

func TestHeuristicOnlyLeavesUnknowns(t *testing.T) {
	gen := setup(t, `
/*@ input */ int a;
int r;
int f(void) {
    r = 0;
    if (a > 5) {
        if (a < 3) { r = 1; }
    }
    return r;
}`, "f")
	targets := endToEndPaths(t, gen)
	rep, err := gen.Generate(targets, Config{
		GA:     ga.Config{Seed: 1, Pop: 20, MaxGens: 20, Stagnation: 5},
		SkipMC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	unknowns := 0
	for _, r := range rep.Results {
		if r.Verdict == Unknown {
			unknowns++
		}
	}
	if unknowns != 1 {
		t.Errorf("unknowns = %d, want 1 (the infeasible path, unresolvable without MC)", unknowns)
	}
}

func TestSegmentTargets(t *testing.T) {
	// Target paths inside program segments, not end-to-end — the actual
	// measurement scenario after partitioning.
	gen := setup(t, hybridSrc, "f")
	var segPaths []paths.Path
	// Use the then-arm segments from the partition tree.
	tree := buildTree(t, gen.G)
	for _, child := range tree {
		ps, err := paths.Enumerate(child, 0)
		if err != nil {
			t.Fatal(err)
		}
		segPaths = append(segPaths, ps...)
	}
	if len(segPaths) == 0 {
		t.Fatal("no segment paths")
	}
	rep, err := gen.Generate(segPaths, Config{
		GA:       ga.Config{Seed: 9, Pop: 40, MaxGens: 60, Stagnation: 15},
		Optimise: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Verdict == Unknown {
			t.Errorf("segment path %s unresolved: %v", r.Path.Key(), r.Err)
		}
	}
}

// buildTree returns the regions of the root's direct child segments.
func buildTree(t *testing.T, g *cfg.Graph) []cfg.Region {
	t.Helper()
	var out []cfg.Region
	if g.Arms == nil {
		t.Fatal("no arms")
	}
	for _, a := range g.Arms.Children {
		out = append(out, a.Region(g))
	}
	return out
}

func TestBaseEnvThreadsThroughBothStages(t *testing.T) {
	gen := setup(t, `
/*@ input */ /*@ range 0 3 */ int sel;
int state, r;
int f(void) {
    r = 0;
    if (state == 7) {
        if (sel == 2) { r = 1; }
    }
    return r;
}`, "f")
	var stateDecl *ast.VarDecl
	for _, gl := range gen.File.Globals {
		if gl.Name == "state" {
			stateDecl = gl
		}
	}
	targets := endToEndPaths(t, gen)
	base := interp.Env{stateDecl: 7}
	rep, err := gen.Generate(targets, Config{
		GA:       ga.Config{Seed: 4, Pop: 30, MaxGens: 40, Stagnation: 10},
		Optimise: true,
		Base:     base,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, r := range rep.Results {
		switch r.Verdict {
		case FoundByHeuristic, FoundByModelChecker:
			found++
		case Unknown:
			t.Errorf("unknown: %v", r.Err)
		}
	}
	// With state pinned to 7, all paths through state==7 are feasible;
	// with the same paths under state==0 most would be infeasible.
	if found < 2 {
		t.Errorf("found = %d, want ≥ 2 with base state=7 (%s)", found, rep.Summary())
	}
}
