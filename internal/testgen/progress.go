package testgen

// Distributed planning over the generator's journal records: Progress
// folds whatever stage-1/stage-2 records a journal already holds into the
// same coverage decision GenerateCtx would make — without computing
// anything and without touching the journal's resume accounting — so a
// coordinator can enumerate exactly the unit keys still unresolved.
// Quarantine fabricates the degraded record for a unit that repeatedly
// killed its worker, so the run converges to an attributed `unavailable`
// entry instead of wedging.

import (
	"fmt"
	"strings"

	"wcet/internal/fail"
	"wcet/internal/interp"
	"wcet/internal/journal"
	"wcet/internal/paths"
)

// Progress is the journal's view of a generation run: which stage-1 and
// stage-2 unit keys are still missing, and — once none are — the covering
// environments in target order, exactly as GenerateCtx would emit them.
type Progress struct {
	// MissingGA lists "ga/<key>" units with no journal record, in target
	// order. Non-empty means stage 1 is the frontier.
	MissingGA []string
	// MissingMC lists "tg/<key>" units needed (the residue after folding
	// stage 1) but not journaled, in target order. Meaningful only when
	// MissingGA is empty.
	MissingMC []string
	// Envs are the covering environments in target order (found paths
	// only), valid only when both missing lists are empty.
	Envs []interp.Env
	// Unknown reports whether any resolved target ends Unknown — the
	// signal that the run will need the exhaustive fallback (or end
	// unavailable). Valid only when both missing lists are empty.
	Unknown bool
	// GADone/GATotal and MCDone/MCTotal count journaled vs planned units
	// per stage, for live status views. The MC totals are only enumerable
	// once stage 1 is complete (the residue depends on the coverage fold)
	// and stay 0/0 before that.
	GADone, GATotal int
	MCDone, MCTotal int
	// Quarantined lists unit keys ("ga/…", "tg/…") whose records were
	// fabricated by Quarantine, in target order.
	Quarantined []string
}

// Progress folds the journal's records for targets under conf. It uses
// non-hit-counting reads only, and replays the stage-1 coverage fold so
// the residue it reports is precisely the set GenerateCtx would model
// check.
func (gen *Generator) Progress(j *journal.Journal, targets []paths.Path, conf Config) *Progress {
	p := &Progress{}
	n := len(targets)
	keys := make([]string, n)
	for i, t := range targets {
		keys[i] = t.Key()
	}
	board := newGABoard(keys)
	if !conf.SkipGA {
		p.GATotal = n
		recs := make([]*gaRecord, n)
		for i := range targets {
			rec, ok := peekGA(j, keys[i])
			if !ok {
				p.MissingGA = append(p.MissingGA, "ga/"+keys[i])
				continue
			}
			if rec.Quarantined {
				p.Quarantined = append(p.Quarantined, "ga/"+keys[i])
			}
			recs[i] = rec
		}
		p.GADone = n - len(p.MissingGA)
		if len(p.MissingGA) > 0 {
			return p
		}
		for i, rec := range recs {
			board.deliver(i, gen.unpackGA(rec))
		}
	}
	covered := board.counted
	decls := gen.declByName()
	for i := range targets {
		if env, ok := covered[keys[i]]; ok {
			p.Envs = append(p.Envs, env)
			continue
		}
		if conf.SkipMC {
			p.Unknown = true
			continue
		}
		p.MCTotal++
		rec, ok := peekTG(j, keys[i])
		if !ok {
			p.MissingMC = append(p.MissingMC, "tg/"+keys[i])
			continue
		}
		p.MCDone++
		if rec.Quarantined {
			p.Quarantined = append(p.Quarantined, "tg/"+keys[i])
		}
		switch Verdict(rec.Verdict) {
		case FoundByHeuristic, FoundByModelChecker:
			p.Envs = append(p.Envs, unpackEnv(rec.Env, decls))
		case Unknown:
			p.Unknown = true
		}
	}
	if len(p.MissingMC) > 0 {
		p.Envs = nil
	}
	return p
}

// Quarantine journals a fabricated degraded record for a generation unit
// key ("ga/…" or "tg/…") that cannot be computed — its computation
// repeatedly killed the worker running it. A quarantined GA search
// contributes nothing to coverage (its target falls through to the model
// checker); a quarantined model-checker unit becomes an Unknown verdict
// with an attributed infrastructure cause, landing the path in the
// degradation ledger. Measurement keys are refused: skipping a measured
// vector would silently lower per-unit maxima, which is unsound — such a
// unit must fail the run instead. flight, when non-nil, is the dead
// worker's flight-recorder dump — stored on the fabricated record so the
// degradation ledger entry carries its last-events post-mortem.
func Quarantine(j *journal.Journal, key, reason string, flight []string) error {
	switch {
	case strings.HasPrefix(key, "ga/"):
		return j.PutJSON(key, &gaRecord{Attempts: []string{reason},
			Quarantined: true, Flight: flight})
	case strings.HasPrefix(key, "tg/"):
		return j.PutJSON(key, &tgRecord{
			Verdict:     int(Unknown),
			CauseKind:   fail.KindInfra,
			CauseMsg:    reason,
			Quarantined: true,
			Flight:      flight,
		})
	default:
		return fmt.Errorf("testgen: unit %q cannot be quarantined: dropping it would be unsound", key)
	}
}

func peekGA(j *journal.Journal, key string) (*gaRecord, bool) {
	var r gaRecord
	if !j.PeekJSON("ga/"+key, &r) {
		return nil, false
	}
	return &r, true
}

func peekTG(j *journal.Journal, key string) (*tgRecord, bool) {
	var r tgRecord
	if !j.PeekJSON("tg/"+key, &r) {
		return nil, false
	}
	return &r, true
}
