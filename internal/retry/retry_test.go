package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"wcet/internal/fail"
)

func TestDoStopsOnSuccess(t *testing.T) {
	calls := 0
	hist, err := Do(context.Background(), Policy{}, func(n int) error {
		calls++
		if n < 2 {
			return fail.Infra("mc", fmt.Errorf("transient"))
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("got (calls=%d, %v), want success on attempt 2", calls, err)
	}
	want := []string{
		"attempt 1: mc: infrastructure failure: transient",
		"attempt 2 (backoff 1): ok",
	}
	got := History(hist)
	if len(got) != len(want) {
		t.Fatalf("history = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("history[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDoNeverRetriesDeterministicBudgets(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"step budget", fail.Budget("mc", "step budget exhausted after 10 steps")},
		{"cancelled", fail.Cancelled("testgen", context.Canceled)},
		{"panic", fail.Panic("measure", "boom", nil)},
	}
	for _, c := range cases {
		calls := 0
		_, err := Do(context.Background(), Policy{MaxAttempts: 5}, func(int) error {
			calls++
			return c.err
		})
		if calls != 1 {
			t.Errorf("%s: %d attempts, want 1 (non-retryable)", c.name, calls)
		}
		if !errors.Is(err, c.err.(*fail.Error).Kind) {
			t.Errorf("%s: error kind lost: %v", c.name, err)
		}
	}
}

func TestDoRetriesStallSignature(t *testing.T) {
	// A per-call wall-clock expiry (budget wrapping DeadlineExceeded) is
	// the stall signature and retries.
	stall := fail.Context("mc", context.DeadlineExceeded)
	calls := 0
	_, err := Do(context.Background(), Policy{MaxAttempts: 3}, func(int) error {
		calls++
		return stall
	})
	if calls != 3 {
		t.Errorf("stall: %d attempts, want 3", calls)
	}
	if !errors.Is(err, fail.ErrBudgetExceeded) {
		t.Errorf("exhausted stall retries: %v, want budget kind preserved", err)
	}
}

func TestDoExhaustsAttemptsDeterministically(t *testing.T) {
	run := func() ([]string, error) {
		var calls []int
		hist, err := Do(context.Background(), Policy{MaxAttempts: 4, BackoffBase: 2},
			func(n int) error {
				calls = append(calls, n)
				return fail.Infra("measure", fmt.Errorf("flake %d", n))
			})
		return History(hist), err
	}
	h1, e1 := run()
	h2, e2 := run()
	if len(h1) != 4 {
		t.Fatalf("history length = %d, want 4", len(h1))
	}
	if h1[3] != "attempt 4 (backoff 8): measure: infrastructure failure: flake 4" {
		t.Errorf("final line = %q", h1[3])
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Errorf("history differs across runs at %d: %q vs %q", i, h1[i], h2[i])
		}
	}
	if e1.Error() != e2.Error() {
		t.Errorf("exhaustion error differs: %q vs %q", e1, e2)
	}
}

func TestDoHonoursParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := Do(ctx, Policy{MaxAttempts: 5}, func(int) error {
		calls++
		cancel()
		return fail.Infra("mc", fmt.Errorf("transient"))
	})
	if calls != 1 {
		t.Errorf("%d attempts after parent cancel, want 1", calls)
	}
	if !errors.Is(err, fail.ErrCancelled) {
		t.Errorf("got %v, want ErrCancelled from the parent context", err)
	}
}

func TestBackoffShape(t *testing.T) {
	p := Policy{MaxAttempts: 5, BackoffBase: 3}
	want := []int{0, 3, 6, 12, 24}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %d, want %d", i+1, got, w)
		}
	}
	if Retryable(nil) {
		t.Error("nil error must not be retryable")
	}
}
