// Package retry is the pipeline's deterministic retry policy, driven by
// the internal/fail error taxonomy.
//
// A long-running analysis meets two different kinds of per-unit failure.
// Transient ones — an infrastructure fault (a flaky simulator run, an
// injected chaos fault) or a stalled call that tripped its own wall-clock
// timeout — may succeed on a second attempt, so they retry up to a bounded
// attempt budget. Deterministic ones cannot: a model-checker step, state or
// node budget produces the same exhaustion on every attempt (the caller may
// instead fail over to a different engine), an infeasibility proof is a
// result rather than a failure, and cancellation means the caller withdrew
// the request. Retrying those would burn time without changing the outcome,
// so the policy refuses.
//
// Backoff is logical, not wall-clock: each attempt records how many
// logical ticks of backoff preceded it, but Do never sleeps. Sleeping
// would make attempt timing — and therefore any timing-adjacent outcome —
// depend on the scheduler, which is exactly what the pipeline's
// determinism guarantee forbids; the recorded ticks preserve the policy's
// shape (exponential, bounded) for ledgers, logs and tests. The attempt
// history is part of the degradation ledger, so two runs (at any worker
// count, killed and resumed any number of times) render identical
// histories for identical failures.
package retry

import (
	"context"
	"errors"
	"fmt"

	"wcet/internal/fail"
)

// Policy bounds the retry loop for one unit of work.
type Policy struct {
	// MaxAttempts is the total attempt budget per unit, first try included
	// (default 3). 1 disables retrying. Negative clamps to 1.
	MaxAttempts int
	// BackoffBase is the logical backoff before the second attempt
	// (default 1 tick); it doubles per further attempt.
	BackoffBase int
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 1
	}
	return p
}

// Attempts returns the policy's effective attempt budget.
func (p Policy) Attempts() int { return p.withDefaults().MaxAttempts }

// Backoff returns the logical ticks of backoff preceding the given
// (1-based) attempt: 0 before the first, BackoffBase·2^(n-2) after.
func (p Policy) Backoff(attempt int) int {
	p = p.withDefaults()
	if attempt <= 1 {
		return 0
	}
	return p.BackoffBase << (attempt - 2)
}

// Attempt records one try of a unit of work for the attempt history.
type Attempt struct {
	// N is the 1-based attempt number.
	N int
	// Backoff is the logical backoff (ticks) that preceded this attempt.
	Backoff int
	// Err is the attempt's outcome (nil on success).
	Err error
}

// String renders one history line, deterministically.
func (a Attempt) String() string {
	out := fmt.Sprintf("attempt %d", a.N)
	if a.Backoff > 0 {
		out += fmt.Sprintf(" (backoff %d)", a.Backoff)
	}
	if a.Err == nil {
		return out + ": ok"
	}
	return out + ": " + a.Err.Error()
}

// History renders an attempt slice as ledger-ready lines.
func History(attempts []Attempt) []string {
	if len(attempts) == 0 {
		return nil
	}
	out := make([]string, len(attempts))
	for i, a := range attempts {
		out[i] = a.String()
	}
	return out
}

// Retryable reports whether another attempt at the same operation could
// plausibly succeed:
//
//   - infrastructure failures retry — they cover the transient class
//     (simulator flakes, injected faults);
//   - a wall-clock expiry (ErrBudgetExceeded wrapping DeadlineExceeded) is
//     the signature of a stalled call and retries — the stall, not the
//     work, consumed the budget;
//   - deterministic budgets (step/state/node/evaluation caps), cancellation
//     and worker panics never retry.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, fail.ErrCancelled) || errors.Is(err, fail.ErrWorkerPanic) {
		return false
	}
	if errors.Is(err, fail.ErrInfrastructure) {
		return true
	}
	return errors.Is(err, fail.ErrBudgetExceeded) && errors.Is(err, context.DeadlineExceeded)
}

// Do runs op under the policy: attempts are numbered from 1, a nil return
// stops with success, a non-retryable error stops immediately, and a
// retryable error consumes attempts until the budget is spent. The parent
// context is consulted between attempts so a cancelled run never keeps
// retrying; a retryable per-call deadline expiry is distinguished from a
// parent expiry by the ctx check, not by the error.
//
// The returned history always contains every attempt made, and the error
// is the last attempt's (nil on success) — deterministic for
// deterministic ops, which injected faults are by construction.
func Do(ctx context.Context, p Policy, op func(attempt int) error) ([]Attempt, error) {
	p = p.withDefaults()
	var history []Attempt
	for n := 1; n <= p.MaxAttempts; n++ {
		if cerr := fail.Context("", ctx.Err()); cerr != nil {
			return history, cerr
		}
		err := op(n)
		history = append(history, Attempt{N: n, Backoff: p.Backoff(n), Err: err})
		if err == nil {
			return history, nil
		}
		if !Retryable(err) || n == p.MaxAttempts {
			return history, err
		}
	}
	return history, nil // unreachable: the loop always returns
}
