// Package isa defines the HCS12-flavoured virtual instruction set executed
// by the cycle-accurate simulator — the stand-in for the paper's Motorola
// HCS12 evaluation board.
//
// The machine is a load/store register machine with a fresh virtual
// register file per call frame and one memory word per C variable. Cycle
// costs are modelled after the HCS12's: memory accesses cost more than
// register ALU operations, multiplication and division are multi-cycle, and
// conditional branches are cheaper when not taken. The conditional-branch
// asymmetry and the compare-chain switch dispatch are what make measured
// block times path-dependent — the source of the timing-schema
// overestimation the paper's case study exhibits (274 vs 250 cycles).
package isa

import "fmt"

// Op is an instruction opcode.
type Op uint8

// Opcodes.
const (
	NOP Op = iota
	// LDI r, imm — load immediate.
	LDI
	// LD r, addr — load memory word.
	LD
	// ST addr, r — store register (with the variable's width truncation).
	ST
	// MOV r, r2 — register move.
	MOV
	// ALU: A = dest, B, C = operands.
	ADD
	SUB
	MUL
	DIV
	MOD
	AND
	OR
	XOR
	NOT // A = dest, B = operand
	NEG
	SHL // shift left by constant C
	SHR // logical shift right by constant C
	ASR // arithmetic shift right by constant C
	// Comparisons set A to 0/1.
	SEQ
	SNE
	SLT
	SLE
	// TRUNC r, bits(C), signed(B != 0) — wrap to a declared C type.
	TRUNC
	// BOOL r, r2 — normalise to 0/1.
	BOOL
	// JMP pc.
	JMP
	// BEQZ r, pc / BNEZ r, pc — conditional branches (taken costs more).
	BEQZ
	BNEZ
	// CALL pc / RET — defined function linkage; return value in register 0
	// of the caller's frame after RETV.
	CALL
	RET
	// EXT id — external routine with a fixed modelled cost.
	EXT
	// MARK id — basic-block boundary observation point (zero cost: an
	// idealised instrumentation point; the ip metric counts effort, not
	// time).
	MARK
	// HALT ends execution.
	HALT
)

var opNames = [...]string{
	NOP: "nop", LDI: "ldi", LD: "ld", ST: "st", MOV: "mov",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", MOD: "mod",
	AND: "and", OR: "or", XOR: "xor", NOT: "not", NEG: "neg",
	SHL: "shl", SHR: "shr", ASR: "asr",
	SEQ: "seq", SNE: "sne", SLT: "slt", SLE: "sle",
	TRUNC: "trunc", BOOL: "bool",
	JMP: "jmp", BEQZ: "beqz", BNEZ: "bnez",
	CALL: "call", RET: "ret", EXT: "ext", MARK: "mark", HALT: "halt",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", int(o))
}

// Instr is one instruction. Operand meaning depends on the opcode; A is
// usually the destination register.
type Instr struct {
	Op      Op
	A, B, C int32
	// Imm carries immediates (LDI) and ids (EXT, MARK).
	Imm int64
}

// String disassembles the instruction.
func (i Instr) String() string {
	switch i.Op {
	case LDI:
		return fmt.Sprintf("ldi   r%d, #%d", i.A, i.Imm)
	case LD:
		return fmt.Sprintf("ld    r%d, [%d]", i.A, i.B)
	case ST:
		return fmt.Sprintf("st    [%d], r%d", i.A, i.B)
	case MOV:
		return fmt.Sprintf("mov   r%d, r%d", i.A, i.B)
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SEQ, SNE, SLT, SLE:
		return fmt.Sprintf("%-5s r%d, r%d, r%d", i.Op, i.A, i.B, i.C)
	case NOT, NEG, BOOL:
		return fmt.Sprintf("%-5s r%d, r%d", i.Op, i.A, i.B)
	case SHL, SHR, ASR:
		return fmt.Sprintf("%-5s r%d, r%d, #%d", i.Op, i.A, i.B, i.C)
	case TRUNC:
		sign := "u"
		if i.B != 0 {
			sign = "s"
		}
		return fmt.Sprintf("trunc r%d, %s%d", i.A, sign, i.C)
	case JMP:
		return fmt.Sprintf("jmp   %d", i.A)
	case BEQZ:
		return fmt.Sprintf("beqz  r%d, %d", i.A, i.B)
	case BNEZ:
		return fmt.Sprintf("bnez  r%d, %d", i.A, i.B)
	case CALL:
		return fmt.Sprintf("call  %d", i.A)
	case RET:
		return "ret"
	case EXT:
		return fmt.Sprintf("ext   #%d", i.Imm)
	case MARK:
		return fmt.Sprintf("mark  #%d", i.Imm)
	case HALT:
		return "halt"
	}
	return i.Op.String()
}

// CostModel gives per-instruction cycle costs.
type CostModel struct {
	// Costs[op] is the base cost; branches use Taken/NotTaken.
	Costs map[Op]int64
	// BranchTaken / BranchNotTaken model the HCS12 Bcc asymmetry.
	BranchTaken    int64
	BranchNotTaken int64
	// ExtCost maps external-routine ids to their modelled cost; ExtDefault
	// applies otherwise.
	ExtCost    map[int]int64
	ExtDefault int64
}

// DefaultCosts returns the HCS12-flavoured cycle model.
func DefaultCosts() *CostModel {
	return &CostModel{
		Costs: map[Op]int64{
			NOP: 1, LDI: 1, LD: 3, ST: 3, MOV: 1,
			ADD: 1, SUB: 1, AND: 1, OR: 1, XOR: 1, NOT: 1, NEG: 1,
			SHL: 1, SHR: 1, ASR: 1,
			MUL: 3, DIV: 11, MOD: 13,
			SEQ: 1, SNE: 1, SLT: 1, SLE: 1,
			TRUNC: 1, BOOL: 1,
			JMP: 3, CALL: 4, RET: 5,
			MARK: 0, HALT: 0,
		},
		BranchTaken:    3,
		BranchNotTaken: 1,
		ExtDefault:     8,
		ExtCost:        map[int]int64{},
	}
}

// Cost returns the cost of a non-branch instruction.
func (cm *CostModel) Cost(i Instr) int64 {
	if i.Op == EXT {
		if c, ok := cm.ExtCost[int(i.Imm)]; ok {
			return c
		}
		return cm.ExtDefault
	}
	return cm.Costs[i.Op]
}
