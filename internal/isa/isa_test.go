package isa

import (
	"strings"
	"testing"
)

func TestOpNames(t *testing.T) {
	for op := NOP; op <= HALT; op++ {
		if strings.HasPrefix(op.String(), "op") {
			t.Errorf("opcode %d has no mnemonic", int(op))
		}
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: LDI, A: 3, Imm: 42}, "ldi   r3, #42"},
		{Instr{Op: LD, A: 1, B: 7}, "ld    r1, [7]"},
		{Instr{Op: ST, A: 7, B: 1}, "st    [7], r1"},
		{Instr{Op: ADD, A: 1, B: 2, C: 3}, "add   r1, r2, r3"},
		{Instr{Op: TRUNC, A: 4, B: 1, C: 8}, "trunc r4, s8"},
		{Instr{Op: TRUNC, A: 4, B: 0, C: 8}, "trunc r4, u8"},
		{Instr{Op: BEQZ, A: 2, B: 99}, "beqz  r2, 99"},
		{Instr{Op: MARK, Imm: 5}, "mark  #5"},
		{Instr{Op: EXT, Imm: 2}, "ext   #2"},
		{Instr{Op: HALT}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
}

func TestDefaultCosts(t *testing.T) {
	cm := DefaultCosts()
	// HCS12 flavour: memory ops cost more than register ALU ops; multiply
	// and divide are multi-cycle; branches are asymmetric; marks are free.
	if cm.Costs[LD] <= cm.Costs[ADD] {
		t.Error("loads must cost more than register adds")
	}
	if cm.Costs[MUL] <= cm.Costs[ADD] || cm.Costs[DIV] <= cm.Costs[MUL] {
		t.Error("mul/div cost ordering broken")
	}
	if cm.BranchTaken <= cm.BranchNotTaken {
		t.Error("taken branches must cost more")
	}
	if cm.Costs[MARK] != 0 {
		t.Error("observation points must be free")
	}
	if cm.Cost(Instr{Op: EXT, Imm: 0}) != cm.ExtDefault {
		t.Error("unknown external must use the default cost")
	}
	cm.ExtCost[3] = 20
	if cm.Cost(Instr{Op: EXT, Imm: 3}) != 20 {
		t.Error("per-routine external cost ignored")
	}
}
