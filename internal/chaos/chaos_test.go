package chaos

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/core"
	"wcet/internal/fail"
	"wcet/internal/faults"
	"wcet/internal/ga"
	"wcet/internal/model"
	"wcet/internal/testgen"
)

func wiper(t *testing.T) (*ast.File, *ast.FuncDecl, *cfg.Graph) {
	t.Helper()
	src := model.Wiper().Emit("wiper_control")
	file, err := parser.ParseFile("wiper.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sem.Check(file); err != nil {
		t.Fatal(err)
	}
	fn := file.Func("wiper_control")
	g, err := cfg.Build(fn)
	if err != nil {
		t.Fatal(err)
	}
	return file, fn, g
}

func wiperOptions(workers int) core.Options {
	return core.Options{
		Bound:      8,
		Exhaustive: true,
		Workers:    workers,
		TestGen: testgen.Config{
			GA:       ga.Config{Seed: 2005, Pop: 48, MaxGens: 80, Stagnation: 20},
			Optimise: true,
			Workers:  workers,
		},
	}
}

// TestSoakKillResumeConvergesByteIdentical is the core durability soak: the
// wiper analysis killed mid-flight several times (with torn tails between
// lives) converges to a report byte-identical to a clean run — at serial
// and parallel worker counts, and with the same bytes across worker counts.
func TestSoakKillResumeConvergesByteIdentical(t *testing.T) {
	file, fn, g := wiper(t)
	var refs [][]byte
	for _, workers := range []int{1, 8} {
		res, err := Soak(file, fn, g, wiperOptions(workers), Config{
			Seed:        41,
			Kills:       3,
			TornWrites:  5,
			JournalPath: filepath.Join(t.TempDir(), "run.journal"),
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Identical {
			t.Errorf("workers=%d: resumed report differs from clean run:\n--- clean\n%s\n--- resumed\n%s",
				workers, res.Reference, res.Final)
		}
		if res.Kills == 0 {
			t.Errorf("workers=%d: campaign never killed a life (Lives=%d) — soak exercised nothing", workers, res.Lives)
		}
		if res.Kills > 0 && res.ResumedUnits == 0 {
			t.Errorf("workers=%d: killed %d times yet final life replayed nothing", workers, res.Kills)
		}
		refs = append(refs, res.Reference)
	}
	if !bytes.Equal(refs[0], refs[1]) {
		t.Errorf("clean canonical reports differ across worker counts:\n--- workers=1\n%s\n--- workers=8\n%s", refs[0], refs[1])
	}
}

// TestSoakUnderInjectedFaults layers the full fault menu over the kills:
// transient infrastructure failures healed by retry, a stall that
// completes, a persistent budget fault that degrades one path into the
// exhaustive fallback, and a one-shot panic that takes a whole life down.
// The converged report must still match the clean run under the same heal
// rules byte for byte.
func TestSoakUnderInjectedFaults(t *testing.T) {
	file, fn, g := wiper(t)
	heal := []faults.Rule{
		// Healed by the retry policy (MaxFires < default MaxAttempts).
		{Site: "testgen.search", Index: 1, MaxFires: 2,
			Err: fail.Infra("testgen", errors.New("injected transient search fault"))},
		{Site: "measure.run", Index: 0, MaxFires: 1,
			Err: fail.Infra("measure", errors.New("injected transient replay fault"))},
		// A stall that completes is invisible in the report.
		{Site: "measure.campaign", Index: 0, Mode: faults.Stall, Delay: time.Millisecond},
		// Persistent budget fault: never retried, degrades the path into the
		// ledger and the exhaustive fallback.
		{Site: "testgen.mc", Index: 3, Err: fail.Budget("mc", "injected node budget")},
	}
	crash := []faults.Rule{
		{Site: "testgen.search", Index: 2, Mode: faults.Panic},
	}
	for _, workers := range []int{1, 8} {
		res, err := Soak(file, fn, g, wiperOptions(workers), Config{
			Seed:        1907,
			Kills:       3,
			TornWrites:  4,
			Rules:       heal,
			Crash:       crash,
			JournalPath: filepath.Join(t.TempDir(), "run.journal"),
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Identical {
			t.Errorf("workers=%d: faulted campaign diverged from clean run:\n--- clean\n%s\n--- resumed\n%s",
				workers, res.Reference, res.Final)
		}
		if res.Crashes == 0 {
			t.Errorf("workers=%d: the one-shot panic never crashed a life", workers)
		}
	}
}

// TestSoakRejectsBadConfig pins the harness input contract.
func TestSoakRejectsBadConfig(t *testing.T) {
	file, fn, g := wiper(t)
	if _, err := Soak(file, fn, g, wiperOptions(1), Config{}); err == nil {
		t.Error("missing JournalPath accepted")
	}
	if _, err := Soak(file, fn, g, wiperOptions(1), Config{
		JournalPath: filepath.Join(t.TempDir(), "j"),
		Crash:       []faults.Rule{{Site: "testgen.search", Index: -1, Mode: faults.Panic}},
	}); err == nil {
		t.Error("crash rule with wildcard index accepted")
	}
}
