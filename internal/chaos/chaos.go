// Package chaos is the pipeline's crash-and-recovery soak harness: it runs
// the full analysis under seed-driven fault campaigns that combine injected
// faults (transient infrastructure failures, stalls, one-shot panics) with
// repeated mid-flight kills of the process, then asserts the durability
// contract — a run that was interrupted any number of times and resumed
// from its journal produces a report byte-identical to an uninterrupted
// clean run.
//
// A "kill" is modelled in-process: the journal's append hook cancels the
// run's context after a chosen number of durable appends, which is exactly
// the state a SIGKILL leaves behind (everything appended so far is on disk,
// everything in flight is lost). Optional torn writes chop bytes off the
// journal tail between lives, exercising the torn-frame recovery path.
//
// Fault rules split into two classes with different lifecycles:
//
//   - Heal rules (Config.Rules) are armed identically in the reference run
//     and in every chaos life. They must be report-preserving: transient
//     failures the retry policy heals, stalls that complete, or persistent
//     failures that land in the degradation ledger — all of which render
//     identically whether the unit ran once or was recomputed after a kill,
//     because each life arms a fresh injector and unit outcomes are pure
//     functions of (unit, attempt).
//
//   - Crash rules (Config.Crash) model transient faults that take the whole
//     process down (injected panics). Each fires in at most one life,
//     aborting it, and is removed afterwards — the reboot clears the fault.
//     They are excluded from the reference run: an aborted life journals
//     nothing for the exploding unit, so the converged report must not
//     carry any trace of it. Crash rules need an explicit Index (not -1) so
//     the harness can tell from the fired log which rule to retire.
package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"

	"wcet/internal/cc/ast"
	"wcet/internal/cfg"
	"wcet/internal/core"
	"wcet/internal/fail"
	"wcet/internal/faults"
	"wcet/internal/journal"
)

// Config parameterises one soak campaign. The same Config (and Seed) always
// replays the same campaign: kill points, torn-write sizes and fault
// schedules are all drawn from the seeded generator or from the injectors'
// deterministic matching.
type Config struct {
	// Seed drives every random draw of the campaign.
	Seed int64
	// Kills is the number of mid-flight kills to attempt. A life may finish
	// before its kill point is reached; the campaign then converges early
	// and Result.Kills reports what actually happened.
	Kills int
	// KillSpread bounds how many fresh journal appends a life is allowed
	// before its kill fires: 1 + rand.Intn(KillSpread). Small values kill
	// early (more lives re-execute the same units), large values let lives
	// run long. Default 6.
	KillSpread int
	// Rules are the report-preserving heal rules, armed fresh each life and
	// in the reference run.
	Rules []faults.Rule
	// Crash are one-shot process-killing rules (see package comment).
	Crash []faults.Rule
	// TornWrites, when > 0, chops 1..TornWrites bytes off the journal tail
	// after every aborted life, simulating a torn final frame.
	TornWrites int
	// JournalPath is the journal file the campaign lives in. Required.
	JournalPath string
}

// Result is the campaign outcome.
type Result struct {
	// Reference is the canonical rendering of the uninterrupted clean run.
	Reference []byte
	// Final is the canonical rendering of the report the resumed run
	// converged to.
	Final []byte
	// Identical reports bytes.Equal(Reference, Final) — the durability
	// contract.
	Identical bool
	// Lives is the total number of analysis attempts, including the final
	// successful one.
	Lives int
	// Kills counts lives ended by the kill hook.
	Kills int
	// Crashes counts lives ended by an injected panic.
	Crashes int
	// ResumedUnits is the journal-replay count of the final, successful
	// life — evidence that the convergence actually resumed rather than
	// recomputed everything.
	ResumedUnits int
}

// Soak runs one campaign over the given analysis target. opt.Journal must
// be nil: the harness owns journal placement.
func Soak(file *ast.File, fn *ast.FuncDecl, g *cfg.Graph, opt core.Options, c Config) (*Result, error) {
	if opt.Journal != nil {
		return nil, fmt.Errorf("chaos: opt.Journal must be nil (the harness owns the journal)")
	}
	if c.JournalPath == "" {
		return nil, fmt.Errorf("chaos: Config.JournalPath is required")
	}
	for _, r := range c.Crash {
		if r.Index < 0 {
			return nil, fmt.Errorf("chaos: crash rule at %s needs an explicit index", r.Site)
		}
	}
	spread := c.KillSpread
	if spread <= 0 {
		spread = 6
	}
	rng := rand.New(rand.NewSource(c.Seed))
	res := &Result{}

	// Reference: the clean, uninterrupted run under the heal rules only.
	refRep, err := core.AnalyzeGraphCtx(
		faults.With(context.Background(), faults.New(c.Rules...)),
		file, fn, g, opt)
	if err != nil {
		return nil, fmt.Errorf("chaos: reference run failed: %w", err)
	}
	if res.Reference, err = canonical(refRep); err != nil {
		return nil, err
	}

	pending := append([]faults.Rule(nil), c.Crash...)
	maxLives := c.Kills + len(c.Crash) + 4
	for {
		res.Lives++
		if res.Lives > maxLives {
			return nil, fmt.Errorf("chaos: campaign did not converge after %d lives", maxLives)
		}
		rep, inj, err := runLife(file, fn, g, opt, c, pending, rng, res.Kills < c.Kills, spread)
		pending = retireFired(pending, inj)
		if err == nil {
			res.ResumedUnits = rep.ResumedUnits
			if res.Final, err = canonical(rep); err != nil {
				return nil, err
			}
			res.Identical = bytes.Equal(res.Reference, res.Final)
			return res, nil
		}
		switch {
		case errors.Is(err, fail.ErrCancelled):
			res.Kills++
		case errors.Is(err, fail.ErrWorkerPanic):
			res.Crashes++
		default:
			return nil, fmt.Errorf("chaos: life %d died of an unexpected cause: %w", res.Lives, err)
		}
		if c.TornWrites > 0 {
			if err := tearTail(c.JournalPath, 1+rng.Intn(c.TornWrites)); err != nil {
				return nil, err
			}
		}
	}
}

// runLife executes one analysis attempt against the campaign journal, with
// a fresh injector and, when armed, a kill hook that cancels the run after
// a seeded number of fresh appends.
func runLife(file *ast.File, fn *ast.FuncDecl, g *cfg.Graph, opt core.Options,
	c Config, pending []faults.Rule, rng *rand.Rand, arm bool, spread int) (*core.Report, *faults.Injector, error) {
	j, err := journal.Open(c.JournalPath)
	if err != nil {
		return nil, nil, fmt.Errorf("chaos: reopening journal: %w", err)
	}
	defer j.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if arm {
		// The hook runs after the append is durable, so every killed life
		// still makes progress: at least one fresh record survives it.
		killAt := j.Len() + 1 + rng.Intn(spread)
		j.SetAppendHook(func(_ string, total int) {
			if total >= killAt {
				cancel()
			}
		})
	}
	inj := faults.New(append(append([]faults.Rule(nil), c.Rules...), pending...)...)
	o := opt
	o.Journal = j
	rep, err := core.AnalyzeGraphCtx(faults.With(ctx, inj), file, fn, g, o)
	return rep, inj, err
}

// retireFired drops crash rules whose (site, index) appears in the fired
// log — the transient fault took its one life and is gone.
func retireFired(pending []faults.Rule, inj *faults.Injector) []faults.Rule {
	if len(pending) == 0 || inj == nil {
		return pending
	}
	fired := map[string]bool{}
	for _, f := range inj.Fired() {
		fired[f] = true
	}
	var out []faults.Rule
	for _, r := range pending {
		if !fired[fmt.Sprintf("%s#%d:%s", r.Site, r.Index, r.Mode)] {
			out = append(out, r)
		}
	}
	return out
}

// tearTail truncates the journal file by n bytes (clamped at zero),
// simulating a torn final write.
func tearTail(path string, n int) error {
	st, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("chaos: torn write: %w", err)
	}
	size := st.Size() - int64(n)
	if size < 0 {
		size = 0
	}
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("chaos: torn write: %w", err)
	}
	return nil
}

func canonical(rep *core.Report) ([]byte, error) {
	var b bytes.Buffer
	if err := rep.WriteCanonical(&b); err != nil {
		return nil, fmt.Errorf("chaos: rendering report: %w", err)
	}
	return b.Bytes(), nil
}
