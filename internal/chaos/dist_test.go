package chaos

// Multi-process distributed chaos: the ledger's coordinator/worker
// protocol under real SIGKILL. The test binary re-execs itself in two
// roles, dispatched by TestMain before the test framework parses flags:
//
//	CHAOS_LEDGER_WORKER=1  — run one ledger worker on the assignment file
//	                         passed as the last argument; when
//	                         CHAOS_KILL_AFTER=N is set, SIGKILL our own
//	                         process the moment the Nth record is durable.
//	CHAOS_LEDGER_COORD=1   — run a whole distributed coordinator (spec
//	                         from CHAOS_SPEC_FILE, canonical journal at
//	                         CHAOS_JOURNAL), spawning workers via the
//	                         worker role with a kill schedule from
//	                         CHAOS_KILL_SCHEDULE. When CHAOS_REMOTE_AGENTS
//	                         lists agent addresses, leases go through a
//	                         remote.Launcher instead (fault-injecting
//	                         transport when CHAOS_REMOTE_CHAOS=1, local
//	                         ProcLauncher fallback). The parent test
//	                         SIGKILLs this process mid-run to model a
//	                         coordinator crash.
//	CHAOS_REMOTE_AGENT=1   — run a remote execution agent on a loopback
//	                         port, spawning workers by re-execing this
//	                         binary in the worker role; write the bound
//	                         address to CHAOS_AGENT_ADDR_FILE and park
//	                         until SIGKILLed from outside.
//
// The worker role is checked first: a worker spawned by the coordinator
// or agent role inherits the parent's environment and carries both flags.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"wcet/internal/core"
	"wcet/internal/faults"
	"wcet/internal/journal"
	"wcet/internal/ledger"
	"wcet/internal/model"
	"wcet/internal/remote"
	"wcet/internal/retry"
)

func TestMain(m *testing.M) {
	switch {
	case os.Getenv("CHAOS_LEDGER_WORKER") == "1":
		os.Exit(distWorkerMain())
	case os.Getenv("CHAOS_LEDGER_COORD") == "1":
		os.Exit(distCoordMain())
	case os.Getenv("CHAOS_REMOTE_AGENT") == "1":
		os.Exit(distAgentMain())
	}
	os.Exit(m.Run())
}

// distWorkerMain is the re-exec worker role: a real ledger worker process
// that optionally SIGKILLs itself after N durable appends — the genuine
// kill-anywhere case, not a modelled one.
func distWorkerMain() int {
	assignment := os.Args[len(os.Args)-1]
	var opts ledger.WorkerOptions
	if n, err := strconv.Atoi(os.Getenv("CHAOS_KILL_AFTER")); err == nil && n > 0 {
		opts.AppendHook = func(_ string, total int) {
			if total >= n {
				_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
	if err := ledger.RunWorker(context.Background(), assignment, opts); err != nil {
		fmt.Fprintln(os.Stderr, "chaos worker:", err)
		return 1
	}
	return 0
}

// distCoordMain is the re-exec coordinator role, so the parent test can
// SIGKILL an entire distributed run (coordinator included) from outside.
func distCoordMain() int {
	data, err := os.ReadFile(os.Getenv("CHAOS_SPEC_FILE"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos coord:", err)
		return 1
	}
	var spec ledger.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		fmt.Fprintln(os.Stderr, "chaos coord:", err)
		return 1
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos coord:", err)
		return 1
	}
	proc := &ledger.ProcLauncher{
		Command: []string{self},
		Env:     killScheduleEnv(os.Getenv("CHAOS_KILL_SCHEDULE")),
	}
	var launcher ledger.Launcher = proc
	if agents := os.Getenv("CHAOS_REMOTE_AGENTS"); agents != "" {
		var tr remote.Transport
		if os.Getenv("CHAOS_REMOTE_CHAOS") == "1" {
			tr = remote.NewFaultTransport(nil, remoteChaosRules()...)
		}
		launcher = &remote.Launcher{
			Agents:      strings.Split(agents, ","),
			Transport:   tr,
			Fallback:    proc,
			Policy:      retry.Policy{MaxAttempts: 5},
			BackoffTick: 5 * time.Millisecond,
		}
	}
	cfg := ledger.Config{
		JournalPath:  os.Getenv("CHAOS_JOURNAL"),
		Workers:      4,
		PollInterval: 10 * time.Millisecond,
		LeaseTicks:   1000,
		Launcher:     launcher,
	}
	if _, err := ledger.Run(context.Background(), spec, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "chaos coord:", err)
		return 1
	}
	return 0
}

// distAgentMain is the re-exec agent role: a standalone remote-execution
// agent process the parent test can SIGKILL to model a machine dying. It
// spawns workers by re-execing this binary, publishes its bound address
// through a file, then parks forever — only an external kill ends it.
func distAgentMain() int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos agent:", err)
		return 1
	}
	agent, err := remote.StartAgent("127.0.0.1:0", remote.AgentConfig{
		Exec:    []string{self},
		Env:     func(string) []string { return []string{"CHAOS_LEDGER_WORKER=1"} },
		WorkDir: os.Getenv("CHAOS_AGENT_WORKDIR"),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos agent:", err)
		return 1
	}
	addrFile := os.Getenv("CHAOS_AGENT_ADDR_FILE")
	if err := os.WriteFile(addrFile+".tmp", []byte(agent.Addr()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "chaos agent:", err)
		return 1
	}
	if err := os.Rename(addrFile+".tmp", addrFile); err != nil {
		fmt.Fprintln(os.Stderr, "chaos agent:", err)
		return 1
	}
	select {} // parked until SIGKILLed
}

// remoteChaosRules is the deterministic wire-damage campaign both
// coordinator incarnations arm against every agent: a torn stream early in
// the first connection, a one-dial partition, a second tear deep enough to
// land mid-frame once real records flow, and a duplicated window that
// garbles message framing. Firing is keyed on per-address dial indexes, so
// the campaign replays identically however leases land.
func remoteChaosRules() []remote.NetRule {
	return []remote.NetRule{
		{Dial: 0, Mode: remote.Tear, After: 97},
		{Dial: 1, Mode: remote.Refuse},
		{Dial: 3, Mode: remote.Tear, After: 1203},
		{Dial: 5, Mode: remote.Duplicate, After: 301},
	}
}

// killScheduleEnv builds a ProcLauncher env hook that doles the comma-
// separated append counts out to the first spawned workers, one each;
// later spawns run unkilled.
func killScheduleEnv(schedule string) func(string) []string {
	var mu sync.Mutex
	var pending []string
	if schedule != "" {
		pending = strings.Split(schedule, ",")
	}
	return func(string) []string {
		env := []string{"CHAOS_LEDGER_WORKER=1"}
		mu.Lock()
		if len(pending) > 0 {
			env = append(env, "CHAOS_KILL_AFTER="+pending[0])
			pending = pending[1:]
		}
		mu.Unlock()
		return env
	}
}

func distWiperOptions() core.Options {
	opt := wiperOptions(0)
	opt.FuncName = "wiper_control"
	return opt
}

// healRules is the fault campaign armed identically in the reference run
// and in every worker process: a transient search failure the retry
// policy heals. Unit records are pure per (unit, attempt), so the healed
// attempt history renders identically however often the unit's worker was
// killed and re-leased.
func healRules() []faults.Rule {
	return []faults.Rule{{Site: "testgen.search", Index: 1, MaxFires: 2}}
}

func healFaultRules() []ledger.FaultRule {
	return []ledger.FaultRule{{Site: "testgen.search", Index: 1, Mode: "fail", MaxFires: 2}}
}

// TestDistSoakKillEverywhereByteIdentical is the distributed chaos
// acceptance on the wiper case study: a 4-worker run under fault
// injection, with workers SIGKILLed at three distinct progress points
// (after 1, 3 and 2 durable appends) and the coordinator process itself
// SIGKILLed mid-run and restarted, must converge to a canonical report
// byte-identical to the single-process reference.
func TestDistSoakKillEverywhereByteIdentical(t *testing.T) {
	file, fn, g := wiper(t)
	opt := distWiperOptions()

	ref, err := core.AnalyzeGraphCtx(
		faults.With(context.Background(), faults.New(healRules()...)),
		file, fn, g, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := canonical(ref)
	if err != nil {
		t.Fatal(err)
	}

	spec, err := ledger.SpecFor(model.Wiper().Emit("wiper_control"), opt)
	if err != nil {
		t.Fatal(err)
	}
	spec.Faults = healFaultRules()

	dir := t.TempDir()
	jpath := filepath.Join(dir, "run.journal")
	specPath := filepath.Join(dir, "spec.json")
	data, err := json.Marshal(&spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(specPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: a whole coordinator process, workers being SIGKILLed after
	// 1 and 3 appends. The coordinator gets its own process group, but its
	// workers deliberately do NOT share it (ProcLauncher starts each in its
	// own group): the group SIGKILL below models a Ctrl-C-style kill that
	// takes the coordinator down and leaves the surviving workers running
	// as orphans, still appending to their journals — exactly what the
	// restarted coordinator must harvest.
	coord := exec.Command(self)
	coord.Env = append(os.Environ(),
		"CHAOS_LEDGER_COORD=1",
		"CHAOS_SPEC_FILE="+specPath,
		"CHAOS_JOURNAL="+jpath,
		"CHAOS_KILL_SCHEDULE=1,3",
	)
	coord.Stdout = os.Stderr
	coord.Stderr = os.Stderr
	coord.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for durable progress in the canonical journal — at least the
	// records harvested from the two killed workers — then SIGKILL the
	// whole coordinator group mid-run.
	deadline := time.Now().Add(3 * time.Minute)
	for {
		if records, _, err := journal.ReadFile(jpath); err == nil && len(records) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			_ = syscall.Kill(-coord.Process.Pid, syscall.SIGKILL)
			t.Fatal("coordinator made no mergeable progress within the deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := syscall.Kill(-coord.Process.Pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = coord.Wait()
	preRecords, _, err := journal.ReadFile(jpath)
	if err != nil {
		t.Fatalf("canonical journal unreadable after coordinator kill: %v", err)
	}
	if len(preRecords) == 0 {
		t.Fatal("no durable progress survived the coordinator kill")
	}

	// Orphan liveness: with workers in their own process groups, the
	// coordinator's death must not have taken them down — their private
	// journals keep growing (the kill landed early in the run, so the
	// surviving workers still hold unfinished units). If Setpgid were
	// lost, the group kill would reap them and no journal would ever grow
	// again.
	workerSize := func() int64 {
		paths, _ := filepath.Glob(filepath.Join(dir, "worker-*.journal"))
		var total int64
		for _, p := range paths {
			if fi, err := os.Stat(p); err == nil {
				total += fi.Size()
			}
		}
		return total
	}
	base := workerSize()
	grew := false
	for end := time.Now().Add(time.Minute); time.Now().Before(end); {
		if workerSize() > base {
			grew = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !grew {
		t.Error("no worker journal grew after the coordinator died — workers did not survive the group kill")
	}

	// Phase 2: restart the coordinator in-process on the same journal and
	// work dir, with one more worker SIGKILL (after 2 appends). It must
	// harvest phase 1's worker journals and converge.
	cfg := ledger.Config{
		JournalPath:  jpath,
		Workers:      4,
		PollInterval: 10 * time.Millisecond,
		LeaseTicks:   1000,
		Launcher: &ledger.ProcLauncher{
			Command: []string{self},
			Env:     killScheduleEnv("2"),
		},
	}
	res, err := ledger.Run(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("single kills must never quarantine, got %v", res.Quarantined)
	}
	if res.Report.ResumedUnits == 0 {
		t.Error("restarted coordinator resumed nothing from phase 1")
	}
	got, err := canonical(res.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("distributed chaos run diverged from single-process reference:\n--- reference\n%s\n--- distributed\n%s", want, got)
	}
}

// TestDistStallQuarantineUnavailable: a unit whose model-checker call
// stalls forever wedges every worker process it is leased to; the lease
// expires, the coordinator SIGKILLs the real process, re-leases the unit
// solo, and after the second death quarantines it as an unresolved unit —
// the run terminates with a BoundUnavailable report instead of hanging.
func TestDistStallQuarantineUnavailable(t *testing.T) {
	const stepSrc = `
/*@ input */ /*@ range 0 2 */ int sel;
/*@ input */ /*@ range 0 20 */ char x;
int r;
void step(void) {
    r = 0;
    switch (sel) {
    case 0:
        if (x > 10) { r = 1; } else { r = 2; }
        break;
    case 1:
        r = x * 2;
        r = r + 1;
        break;
    default:
        r = 9;
        break;
    }
}
`
	opt := core.Options{
		FuncName:      "step",
		Bound:         8,
		MaxExhaustive: 10, // 63 vectors: too many to enumerate, so no fallback
	}
	opt.TestGen.SkipGA = true
	opt.TestGen.GA.Seed = 5
	spec, err := ledger.SpecFor(stepSrc, opt)
	if err != nil {
		t.Fatal(err)
	}
	spec.Faults = []ledger.FaultRule{
		{Site: "testgen.mc", Index: 0, Mode: "stall", Delay: 5 * time.Minute},
	}
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := ledger.Config{
		JournalPath:   filepath.Join(dir, "run.journal"),
		Workers:       2,
		PollInterval:  5 * time.Millisecond,
		LeaseTicks:    60, // stalled workers are killed after ~300ms of silence
		MaxFatalities: 2,
		Launcher: &ledger.ProcLauncher{
			Command: []string{self},
			Env:     killScheduleEnv(""),
		},
	}
	res, err := ledger.Run(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 1 || !strings.HasPrefix(res.Quarantined[0], "tg/") {
		t.Fatalf("quarantined = %v, want exactly one tg/ unit", res.Quarantined)
	}
	if res.Reclaimed < 2 {
		t.Errorf("reclaimed = %d, want >= 2 (the poisoned unit must be reclaimed once per death)", res.Reclaimed)
	}
	if res.Report.Soundness != core.BoundUnavailable {
		t.Errorf("soundness = %v, want BoundUnavailable", res.Report.Soundness)
	}
}
