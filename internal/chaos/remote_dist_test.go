package chaos

// Machine-spanning chaos: the remote launcher under real network damage
// and real process death. Two agent processes serve leases over loopback
// TCP through a fault-injecting transport that tears streams mid-frame,
// refuses dials and duplicates delivered bytes; one agent is SIGKILLed
// mid-run, then the whole coordinator process is SIGKILLed and restarted
// in-process to harvest the partially-streamed worker journals. The
// canonical report must come out byte-identical to the single-process
// reference — the ledger's merge discipline plus the client-side
// byte-prefix invariant (only complete CRC-verified frames are appended
// locally) make every torn stream recoverable or re-derivable.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"wcet/internal/core"
	"wcet/internal/journal"
	"wcet/internal/ledger"
	"wcet/internal/model"
	"wcet/internal/remote"
	"wcet/internal/retry"
)

// startAgentProc launches one agent role process and waits for its bound
// address. The caller owns the process; it only dies by SIGKILL.
func startAgentProc(t *testing.T, dir, name string) (*exec.Cmd, string) {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(dir, name+".addr")
	workDir := filepath.Join(dir, name+"-work")
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(),
		"CHAOS_REMOTE_AGENT=1",
		"CHAOS_AGENT_ADDR_FILE="+addrFile,
		"CHAOS_AGENT_WORKDIR="+workDir,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return cmd, string(data)
		}
		if time.Now().After(deadline) {
			t.Fatalf("agent %s never published its address", name)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// unmergedWorkerRecords reports whether any coordinator-side worker
// journal in dir holds a record the canonical journal does not — i.e.
// partially-streamed progress a restarted coordinator can harvest.
func unmergedWorkerRecords(dir, jpath string) bool {
	canon, _, err := journal.ReadFile(jpath)
	if err != nil {
		return false
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "worker-*.journal"))
	for _, p := range paths {
		records, _, err := journal.ReadFile(p)
		if err != nil {
			continue
		}
		for k := range records {
			if _, ok := canon[k]; !ok {
				return true
			}
		}
	}
	return false
}

// TestRemoteNetChaosByteIdentical is the machine-spanning acceptance on
// the wiper case study: a 4-worker run leased across two agent processes
// through a transport that deterministically tears, refuses and
// duplicates; one agent SIGKILLed mid-run, then the coordinator process
// group SIGKILLed and the run restarted in-process against the surviving
// agent (the dead one still listed, so the unreachable-host path runs
// too). The final canonical report must be byte-identical to the
// single-process reference.
func TestRemoteNetChaosByteIdentical(t *testing.T) {
	file, fn, g := wiper(t)
	opt := distWiperOptions()

	ref, err := core.AnalyzeGraphCtx(context.Background(), file, fn, g, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := canonical(ref)
	if err != nil {
		t.Fatal(err)
	}

	spec, err := ledger.SpecFor(model.Wiper().Emit("wiper_control"), opt)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	jpath := filepath.Join(dir, "run.journal")
	specPath := filepath.Join(dir, "spec.json")
	data, err := json.Marshal(&spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(specPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}

	agent0, addr0 := startAgentProc(t, dir, "agent0")
	_ = agent0
	agent1, addr1 := startAgentProc(t, dir, "agent1")

	// Phase 1: an external coordinator process leasing over both agents
	// through the chaos transport. Its own process group, so the SIGKILL
	// below takes down the coordinator and its remote-handle goroutines
	// but leaves the agent processes (started by us, not it) running.
	coord := exec.Command(self)
	coord.Env = append(os.Environ(),
		"CHAOS_LEDGER_COORD=1",
		"CHAOS_SPEC_FILE="+specPath,
		"CHAOS_JOURNAL="+jpath,
		"CHAOS_REMOTE_AGENTS="+addr0+","+addr1,
		"CHAOS_REMOTE_CHAOS=1",
	)
	coord.Stdout = os.Stderr
	coord.Stderr = os.Stderr
	coord.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	records := func() int {
		r, _, err := journal.ReadFile(jpath)
		if err != nil {
			return 0
		}
		return len(r)
	}
	deadline := time.Now().Add(3 * time.Minute)
	waitRecords := func(n int, what string) {
		t.Helper()
		for records() < n {
			if time.Now().After(deadline) {
				_ = syscall.Kill(-coord.Process.Pid, syscall.SIGKILL)
				t.Fatalf("%s: canonical journal stuck at %d records", what, records())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// First durable merges must land despite the armed tears/refusals.
	waitRecords(1, "before agent kill")

	// Kill one whole agent machine. Its in-flight streams break for good;
	// the launcher's reconnect budget runs dry, the host is marked down,
	// and the units are reclaimed onto the surviving agent. Progress must
	// continue.
	if err := agent1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	killedAt := records()
	waitRecords(killedAt+1, "after agent kill")

	// Let the run advance until some worker journal holds record bytes the
	// canonical journal does not — partially-streamed progress — then
	// SIGKILL the whole coordinator group mid-stream.
	for !unmergedWorkerRecords(dir, jpath) {
		if time.Now().After(deadline) {
			_ = syscall.Kill(-coord.Process.Pid, syscall.SIGKILL)
			t.Fatal("no partially-streamed worker progress appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := syscall.Kill(-coord.Process.Pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = coord.Wait()
	// Re-check after the kill: a settle may have merged the pending records
	// in the window before the signal landed.
	expectResume := unmergedWorkerRecords(dir, jpath)
	if records() == 0 {
		t.Fatal("no durable progress survived the coordinator kill")
	}

	// Phase 2: restart the coordinator in-process on the same journal,
	// still listing the dead agent — its refused dials must burn through
	// the backoff budget, mark the host down and reroute, not wedge or
	// quarantine. The chaos transport is re-armed from scratch, so the
	// harvest-and-resume run is itself torn at the same dial indexes.
	launcher := &remote.Launcher{
		Agents:      []string{addr0, addr1},
		Transport:   remote.NewFaultTransport(nil, remoteChaosRules()...),
		Fallback:    &ledger.ProcLauncher{Command: []string{self}, Env: killScheduleEnv("")},
		Policy:      retry.Policy{MaxAttempts: 5},
		BackoffTick: 5 * time.Millisecond,
	}
	cfg := ledger.Config{
		JournalPath:  jpath,
		Workers:      4,
		PollInterval: 10 * time.Millisecond,
		LeaseTicks:   1000,
		Launcher:     launcher,
	}
	res, err := ledger.Run(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("network chaos must never quarantine, got %v", res.Quarantined)
	}
	if expectResume && res.Report.ResumedUnits == 0 {
		t.Error("restarted coordinator resumed nothing from the partially-streamed journals")
	}
	got, err := canonical(res.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("remote chaos run diverged from single-process reference:\n--- reference\n%s\n--- remote\n%s", want, got)
	}

	// The dead host must be visible as degraded fleet state if it was ever
	// leased to in phase 2 (with 4 workers and a round-robin pick it is),
	// and the surviving host must have carried leases.
	var sawUp, sawDown bool
	for _, h := range launcher.Hosts() {
		switch {
		case h.Addr == addr0 && h.State == "up" && h.Leases > 0:
			sawUp = true
		case h.Addr == addr1 && h.State == "down":
			sawDown = true
		}
	}
	if !sawUp {
		t.Errorf("surviving agent not up with leases: %+v", launcher.Hosts())
	}
	if !sawDown {
		t.Logf("dead agent never leased in phase 2 (run finished on one host): %+v", launcher.Hosts())
	}
	if fired := launcher.Transport.(*remote.FaultTransport).Fired(); len(fired) == 0 {
		t.Error("chaos transport fired nothing — the campaign never touched the wire")
	} else {
		t.Logf("phase-2 wire faults: %s", strings.Join(fired, ", "))
	}
}
