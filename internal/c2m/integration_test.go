package c2m

import (
	"math/rand"
	"testing"

	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/gen"
	"wcet/internal/interp"
	"wcet/internal/tsys"
)

// TestRandomProgramsModelAgreesWithInterpreter: for seeded synthetic
// programs and random inputs, walking the lowered transition system
// deterministically must end in exactly the state the interpreter computes
// — the semantic link between what the model checker reasons about and what
// the measurement subsystem executes.
func TestRandomProgramsModelAgreesWithInterpreter(t *testing.T) {
	seeds := []int64{11, 12, 13, 14, 15}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		prog := gen.Generate(gen.Config{Seed: seed, Branches: 20})
		f, err := parser.ParseFile("gen.c", prog.Source)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		if _, err := sem.Check(f); err != nil {
			t.Fatalf("seed %d: sem: %v", seed, err)
		}
		g, err := cfg.Build(f.Func(prog.FuncName))
		if err != nil {
			t.Fatalf("seed %d: cfg: %v", seed, err)
		}
		low, err := Lower(g, Options{})
		if err != nil {
			t.Fatalf("seed %d: lower: %v", seed, err)
		}
		m := interp.New(f, interp.Options{})

		rng := rand.New(rand.NewSource(seed * 31))
		for trial := 0; trial < 10; trial++ {
			env := interp.Env{}
			vals := make([]int64, len(low.Model.Vars))
			for _, d := range f.Globals {
				if !d.Input {
					continue
				}
				lo, hi := d.Type.MinMax()
				if d.Rng != nil {
					lo, hi = d.Rng.Lo, d.Rng.Hi
				}
				v := lo + rng.Int63n(hi-lo+1)
				env[d] = v
				vals[low.VarOf[d]] = v
			}
			if _, err := m.Run(g, env); err != nil {
				t.Fatalf("seed %d trial %d: interp: %v", seed, trial, err)
			}
			final, ok := walk(t, low.Model, vals)
			if !ok {
				t.Fatalf("seed %d trial %d: model walk stuck", seed, trial)
			}
			for d, id := range low.VarOf {
				if final[id] != env[d] {
					t.Fatalf("seed %d trial %d: %s = %d (model) vs %d (interp)",
						seed, trial, d.Name, final[id], env[d])
				}
			}
		}
	}
}

// walk executes the deterministic base model.
func walk(t *testing.T, m *tsys.Model, vals []int64) ([]int64, bool) {
	t.Helper()
	out := m.OutEdges()
	loc := m.Init
	for steps := 0; steps < 1_000_000; steps++ {
		edges := out[loc]
		if len(edges) == 0 {
			return vals, true
		}
		var taken *tsys.Edge
		for _, e := range edges {
			enabled := e.Guard == nil
			if !enabled {
				v, err := tsys.Eval(m, e.Guard, vals)
				if err != nil {
					t.Fatalf("guard: %v", err)
				}
				enabled = v != 0
			}
			if enabled {
				if taken != nil {
					t.Fatal("nondeterminism in base model")
				}
				taken = e
			}
		}
		if taken == nil {
			return vals, false
		}
		next := append([]int64(nil), vals...)
		for _, a := range taken.Assigns {
			v, err := tsys.Eval(m, a.RHS, vals)
			if err != nil {
				t.Fatalf("assign: %v", err)
			}
			mv := m.Vars[a.Var]
			next[a.Var] = tsys.TruncateBits(v, mv.Bits, mv.Signed)
		}
		vals = next
		loc = taken.To
	}
	return vals, false
}
