// Package c2m lowers a C-subset CFG into the transition-system IR — the
// equivalent of the paper's C-to-SAL conversion.
//
// The baseline translation is deliberately naive, exactly as the paper
// describes its unoptimised translator: every variable is stored as a
// 16-bit signed integer and every statement is one transition. The passes
// in internal/opt then reproduce the paper's Section 3.2 optimisations on
// top. Assignment semantics stay exact regardless of storage width: every
// assignment truncates through the variable's declared C type.
package c2m

import (
	"fmt"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/token"
	"wcet/internal/cfg"
	"wcet/internal/paths"
	"wcet/internal/tsys"
)

// Options tune the lowering.
type Options struct {
	// NaiveWidths stores every variable in 16 signed bits (the paper's
	// unoptimised translator default). When false, declared widths are used
	// directly.
	NaiveWidths bool
	// Inputs marks the model input variables. Function parameters and
	// globals annotated /*@ input */ are added automatically.
	Inputs map[*ast.VarDecl]bool
}

// Result of a lowering.
type Result struct {
	Model *tsys.Model
	// VarOf maps C declarations to model variables.
	VarOf map[*ast.VarDecl]tsys.VarID
	// DeclOf is the inverse of VarOf.
	DeclOf map[tsys.VarID]*ast.VarDecl
	// EntryLoc maps each basic block to the location at its entry.
	EntryLoc map[cfg.NodeID]tsys.Loc
	// ExitLoc is the location of the function's exit block.
	ExitLoc tsys.Loc
}

// Error reports a construct outside the translatable subset.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: c2m: %s", e.Pos, e.Msg) }

// Lower translates the whole function.
func Lower(g *cfg.Graph, opt Options) (*Result, error) {
	lw, err := newLowering(g, opt)
	if err != nil {
		return nil, err
	}
	if err := lw.lowerBlocks(); err != nil {
		return nil, err
	}
	lw.res.Model.Trap = tsys.NoLoc
	return lw.res, nil
}

// LowerPath translates the function plus a forced copy of the given path:
// execution may nondeterministically enter the path copy at the path's
// first block; inside the copy every decision is constrained to the path's
// choice, and completing the copy reaches the model's Trap location.
// Reaching the trap is therefore exactly "the program executes the path",
// and an initial state of a trap-reaching run is a test datum.
func LowerPath(g *cfg.Graph, opt Options, p paths.Path) (*Result, error) {
	lw, err := newLowering(g, opt)
	if err != nil {
		return nil, err
	}
	if err := lw.lowerBlocks(); err != nil {
		return nil, err
	}
	if err := lw.addPathChain(p); err != nil {
		return nil, err
	}
	return lw.res, nil
}

type lowering struct {
	g   *cfg.Graph
	opt Options
	res *Result
	// chain counts per-block item groups for the concatenation pass.
	chainSeq int
}

func newLowering(g *cfg.Graph, opt Options) (*lowering, error) {
	m := &tsys.Model{Name: g.Fn.Name}
	res := &Result{
		Model:    m,
		VarOf:    map[*ast.VarDecl]tsys.VarID{},
		DeclOf:   map[tsys.VarID]*ast.VarDecl{},
		EntryLoc: map[cfg.NodeID]tsys.Loc{},
	}
	lw := &lowering{g: g, opt: opt, res: res}

	// Collect every variable referenced or declared in the function.
	var decls []*ast.VarDecl
	seen := map[*ast.VarDecl]bool{}
	add := func(d *ast.VarDecl) {
		if d != nil && !seen[d] {
			seen[d] = true
			decls = append(decls, d)
		}
	}
	for _, p := range g.Fn.Params {
		add(p)
	}
	ast.Walk(g.Fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			add(x.Decl)
		case *ast.VarDecl:
			add(x)
		}
		return true
	})
	for _, d := range decls {
		bits, signed := d.Type.Bits, d.Type.Signed
		if lw.opt.NaiveWidths {
			bits, signed = 16, true
		}
		if bits <= 0 {
			bits = 16
		}
		v := m.NewVar(d.Name, bits, signed)
		input := d.Input || lw.opt.Inputs[d] || isParam(g.Fn, d)
		v.Input = input
		v.Init = tsys.InitFree
		if d.Rng != nil {
			v.Lo, v.Hi = d.Rng.Lo, d.Rng.Hi
			v.HasRange = true
		}
		res.VarOf[d] = v.ID
		res.DeclOf[v.ID] = d
	}

	// Allocate block entry locations.
	for _, n := range g.Nodes {
		res.EntryLoc[n.ID] = m.NewLoc()
	}
	m.Init = res.EntryLoc[g.Entry]
	res.ExitLoc = res.EntryLoc[g.Exit]
	return lw, nil
}

func isParam(fn *ast.FuncDecl, d *ast.VarDecl) bool {
	for _, p := range fn.Params {
		if p == d {
			return true
		}
	}
	return false
}

func (lw *lowering) lowerBlocks() error {
	for _, n := range lw.g.Nodes {
		last, err := lw.lowerItems(n, lw.res.EntryLoc[n.ID])
		if err != nil {
			return err
		}
		if err := lw.lowerTerm(n, last, lw.res.EntryLoc, nil); err != nil {
			return err
		}
	}
	return nil
}

// curChain reports the chain id of the block most recently lowered.
func (lw *lowering) curChain() int { return lw.chainSeq }

// lowerItems lowers a block's straight-line items starting at loc, returning
// the location after the last item.
func (lw *lowering) lowerItems(n *cfg.Node, loc tsys.Loc) (tsys.Loc, error) {
	m := lw.res.Model
	lw.chainSeq++
	chain := lw.chainSeq
	cur := loc
	for _, item := range n.Items {
		assigns, err := lw.lowerItem(item)
		if err != nil {
			return cur, err
		}
		if len(assigns) == 0 {
			continue // external calls: timing only, no state effect
		}
		next := m.NewLoc()
		m.AddEdge(&tsys.Edge{From: cur, To: next, Assigns: assigns, Chain: chain})
		cur = next
	}
	return cur, nil
}

// lowerTerm lowers a terminator. When forced is true, only the edge matching
// forcedTo (a block id) is emitted and it targets trapOrLoc instead.
func (lw *lowering) lowerTerm(n *cfg.Node, from tsys.Loc, entry map[cfg.NodeID]tsys.Loc,
	forcedEdge *forcedTarget) error {

	m := lw.res.Model
	emit := func(guard tsys.Expr, to cfg.NodeID) {
		target, ok := tsys.NoLoc, false
		if forcedEdge != nil {
			if to == forcedEdge.block {
				target, ok = forcedEdge.loc, true
			}
		} else {
			target, ok = entry[to], true
		}
		if !ok {
			return // forced lowering drops off-path edges
		}
		m.AddEdge(&tsys.Edge{From: from, To: target, Guard: guard, Chain: lw.curChain()})
	}
	switch n.Term.Kind {
	case cfg.TermGoto:
		emit(nil, n.Term.To)
	case cfg.TermReturn:
		// The returned value does not affect reachability.
		emit(nil, n.Term.To)
	case cfg.TermBranch:
		cond, err := lw.lowerExpr(n.Term.Cond)
		if err != nil {
			return err
		}
		emit(cond, n.Term.True)
		emit(&tsys.Un{Op: token.BANG, X: cond}, n.Term.False)
	case cfg.TermSwitch:
		tag, err := lw.lowerExpr(n.Term.Tag)
		if err != nil {
			return err
		}
		var notAny tsys.Expr
		for _, c := range n.Term.Cases {
			var match tsys.Expr
			for _, v := range c.Vals {
				eq := &tsys.Bin{Op: token.EQ, X: tag, Y: &tsys.Const{Val: v}}
				if match == nil {
					match = eq
				} else {
					match = &tsys.Bin{Op: token.LOR, X: match, Y: eq}
				}
				ne := &tsys.Bin{Op: token.NE, X: tag, Y: &tsys.Const{Val: v}}
				if notAny == nil {
					notAny = ne
				} else {
					notAny = &tsys.Bin{Op: token.LAND, X: notAny, Y: ne}
				}
			}
			emit(match, c.To)
		}
		emit(notAny, n.Term.Default) // nil when there are no cases: always
	case cfg.TermExit:
		// Terminal.
	}
	return nil
}

type forcedTarget struct {
	block cfg.NodeID
	loc   tsys.Loc
}

// lowerItem turns one straight-line statement into parallel assignments.
func (lw *lowering) lowerItem(s ast.Stmt) ([]tsys.Assign, error) {
	switch x := s.(type) {
	case *ast.DeclStmt:
		if x.Decl.Init == nil {
			return nil, nil
		}
		rhs, err := lw.lowerExpr(x.Decl.Init)
		if err != nil {
			return nil, err
		}
		return []tsys.Assign{lw.assignTo(x.Decl, rhs)}, nil
	case *ast.ExprStmt:
		return lw.lowerEffect(x.X)
	}
	return nil, &Error{Pos: s.Pos(), Msg: fmt.Sprintf("unsupported block item %T", s)}
}

func (lw *lowering) lowerEffect(e ast.Expr) ([]tsys.Assign, error) {
	switch x := e.(type) {
	case *ast.AssignExpr:
		id := x.LHS.(*ast.Ident)
		rhs, err := lw.lowerExpr(x.RHS)
		if err != nil {
			return nil, err
		}
		if x.Op != token.ASSIGN {
			rhs = &tsys.Bin{Op: x.Op.BaseOp(), X: lw.ref(id.Decl), Y: rhs}
		}
		return []tsys.Assign{lw.assignTo(id.Decl, rhs)}, nil
	case *ast.UnaryExpr:
		if x.Op == token.INC || x.Op == token.DEC {
			id := x.X.(*ast.Ident)
			op := token.PLUS
			if x.Op == token.DEC {
				op = token.MINUS
			}
			rhs := &tsys.Bin{Op: op, X: lw.ref(id.Decl), Y: &tsys.Const{Val: 1}}
			return []tsys.Assign{lw.assignTo(id.Decl, rhs)}, nil
		}
	case *ast.CallExpr:
		if x.Cast == nil && x.Decl == nil {
			// External routine: no model-visible effect.
			return nil, nil
		}
		if x.Decl != nil {
			return nil, &Error{Pos: x.NamePos,
				Msg: "calls to defined functions are not supported by the model translator (inline them)"}
		}
	}
	return nil, &Error{Pos: e.Pos(), Msg: fmt.Sprintf("unsupported statement expression %T", e)}
}

// assignTo wraps the RHS in the declared-type truncation.
func (lw *lowering) assignTo(d *ast.VarDecl, rhs tsys.Expr) tsys.Assign {
	bits, signed := d.Type.Bits, d.Type.Signed
	if bits > 0 && bits < 64 {
		rhs = &tsys.CastE{Bits: bits, Signed: signed, X: rhs}
	}
	return tsys.Assign{Var: lw.res.VarOf[d], RHS: rhs}
}

func (lw *lowering) ref(d *ast.VarDecl) tsys.Expr {
	return &tsys.Ref{Var: lw.res.VarOf[d]}
}

func (lw *lowering) lowerExpr(e ast.Expr) (tsys.Expr, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return &tsys.Const{Val: x.Val}, nil
	case *ast.Ident:
		if x.Decl == nil {
			return nil, &Error{Pos: x.NamePos, Msg: "unresolved identifier " + x.Name}
		}
		return lw.ref(x.Decl), nil
	case *ast.UnaryExpr:
		if x.Op == token.INC || x.Op == token.DEC {
			return nil, &Error{Pos: x.OpPos, Msg: "++/-- inside expressions is not supported; use it as a statement"}
		}
		sub, err := lw.lowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &tsys.Un{Op: x.Op, X: sub}, nil
	case *ast.BinaryExpr:
		a, err := lw.lowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		b, err := lw.lowerExpr(x.Y)
		if err != nil {
			return nil, err
		}
		return &tsys.Bin{Op: x.Op, X: a, Y: b}, nil
	case *ast.CondExpr:
		c, err := lw.lowerExpr(x.Cond)
		if err != nil {
			return nil, err
		}
		tv, err := lw.lowerExpr(x.Then)
		if err != nil {
			return nil, err
		}
		fv, err := lw.lowerExpr(x.Else)
		if err != nil {
			return nil, err
		}
		return &tsys.CondE{C: c, T: tv, F: fv}, nil
	case *ast.AssignExpr:
		return nil, &Error{Pos: x.Pos(), Msg: "nested assignment is not supported"}
	case *ast.CallExpr:
		if x.Cast != nil {
			sub, err := lw.lowerExpr(x.Args[0])
			if err != nil {
				return nil, err
			}
			return &tsys.CastE{Bits: x.Cast.Bits, Signed: x.Cast.Signed, X: sub}, nil
		}
		return nil, &Error{Pos: x.NamePos, Msg: "call with used value is not supported in the model"}
	}
	return nil, &Error{Pos: e.Pos(), Msg: fmt.Sprintf("unsupported expression %T", e)}
}

// addPathChain appends the forced path copy and sets the trap.
func (lw *lowering) addPathChain(p paths.Path) error {
	m := lw.res.Model
	if len(p.Blocks) == 0 {
		return fmt.Errorf("c2m: empty path")
	}
	// Chain entry locations, one per path block.
	chainEntry := make([]tsys.Loc, len(p.Blocks))
	for i := range p.Blocks {
		chainEntry[i] = m.NewLoc()
	}
	trap := m.NewLoc()
	m.Trap = trap

	for i, id := range p.Blocks {
		n := lw.g.Node(id)
		last, err := lw.lowerItems(n, chainEntry[i])
		if err != nil {
			return err
		}
		var target forcedTarget
		if i+1 < len(p.Blocks) {
			target = forcedTarget{block: p.Blocks[i+1], loc: chainEntry[i+1]}
		} else if p.Exit.To == cfg.NoNode {
			// Path ends at the function exit: the exit block has no
			// terminator edges; trap directly.
			m.AddEdge(&tsys.Edge{From: last, To: trap})
			continue
		} else {
			target = forcedTarget{block: p.Exit.To, loc: trap}
		}
		if err := lw.lowerTerm(n, last, nil, &target); err != nil {
			return err
		}
	}

	// Divert into the chain at the path's first block.
	first := p.Blocks[0]
	if first == lw.g.Entry {
		// Fresh initial location choosing between normal and forced entry.
		ni := m.NewLoc()
		m.AddEdge(&tsys.Edge{From: ni, To: m.Init})
		m.AddEdge(&tsys.Edge{From: ni, To: chainEntry[0]})
		m.Init = ni
		return nil
	}
	firstLoc := lw.res.EntryLoc[first]
	for _, e := range append([]*tsys.Edge(nil), m.Edges...) {
		if e.To == firstLoc {
			m.AddEdge(&tsys.Edge{From: e.From, To: chainEntry[0], Guard: e.Guard,
				Assigns: append([]tsys.Assign(nil), e.Assigns...), Chain: e.Chain})
		}
	}
	return nil
}
