package c2m

import (
	"testing"
	"testing/quick"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/interp"
	"wcet/internal/paths"
	"wcet/internal/tsys"
)

type fixture struct {
	file *ast.File
	g    *cfg.Graph
	m    *interp.Machine
}

func setup(t *testing.T, src, name string) *fixture {
	t.Helper()
	f, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatalf("sem: %v", err)
	}
	g, err := cfg.Build(f.Func(name))
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return &fixture{file: f, g: g, m: interp.New(f, interp.Options{})}
}

func (fx *fixture) global(name string) *ast.VarDecl {
	for _, g := range fx.file.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

const lowSrc = `
/*@ input */ int a;
/*@ input */ char b;
int r;
char c;
int f(void) {
    r = 0;
    c = (char)(a + b);
    if (c > 10) { r = 1; } else { r = 2; }
    switch (b & 3) {
    case 0: r = r + 1; break;
    case 1: r = r * 2;
    default: r = r - 1; break;
    }
    return r;
}`

func TestLowerStructure(t *testing.T) {
	fx := setup(t, lowSrc, "f")
	low, err := Lower(fx.g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := low.Model
	if m.Trap != tsys.NoLoc {
		t.Error("plain lowering must not set a trap")
	}
	if len(m.Vars) != 4 {
		t.Errorf("vars = %d, want 4", len(m.Vars))
	}
	inputs := 0
	for _, v := range m.Vars {
		if v.Input {
			inputs++
		}
	}
	if inputs != 2 {
		t.Errorf("inputs = %d, want 2", inputs)
	}
	// Every block has an entry location; edges reference valid locations.
	for _, n := range fx.g.Nodes {
		if _, ok := low.EntryLoc[n.ID]; !ok {
			t.Errorf("block B%d has no location", n.ID)
		}
	}
	for _, e := range m.Edges {
		if int(e.From) >= m.NLocs || int(e.To) >= m.NLocs {
			t.Errorf("edge %d→%d out of range", e.From, e.To)
		}
	}
}

func TestNaiveWidths(t *testing.T) {
	fx := setup(t, lowSrc, "f")
	naive, err := Lower(fx.g, Options{NaiveWidths: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range naive.Model.Vars {
		if v.Bits != 16 || !v.Signed {
			t.Errorf("naive var %s: bits=%d signed=%v, want 16-bit signed", v.Name, v.Bits, v.Signed)
		}
	}
	precise, err := Lower(fx.g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bID := precise.VarOf[fx.global("b")]
	if precise.Model.Vars[bID].Bits != 8 {
		t.Errorf("precise char width = %d, want 8", precise.Model.Vars[bID].Bits)
	}
}

// deterministicWalk executes the lowered model concretely from its initial
// location with the given variable values; returns final values.
func deterministicWalk(t *testing.T, m *tsys.Model, vals []int64) []int64 {
	t.Helper()
	out := m.OutEdges()
	loc := m.Init
	for steps := 0; steps < 100000; steps++ {
		edges := out[loc]
		if len(edges) == 0 {
			return vals
		}
		var taken *tsys.Edge
		for _, e := range edges {
			if e.Guard == nil {
				if taken != nil {
					t.Fatalf("nondeterministic location %d", loc)
				}
				taken = e
				continue
			}
			v, err := tsys.Eval(m, e.Guard, vals)
			if err != nil {
				t.Fatalf("guard eval: %v", err)
			}
			if v != 0 {
				if taken != nil {
					t.Fatalf("two enabled edges at location %d", loc)
				}
				taken = e
			}
		}
		if taken == nil {
			t.Fatalf("deadlock at location %d", loc)
		}
		next := append([]int64(nil), vals...)
		for _, a := range taken.Assigns {
			v, err := tsys.Eval(m, a.RHS, vals)
			if err != nil {
				t.Fatalf("assign eval: %v", err)
			}
			mv := m.Vars[a.Var]
			next[a.Var] = tsys.TruncateBits(v, mv.Bits, mv.Signed)
		}
		vals = next
		loc = taken.To
	}
	t.Fatal("walk did not terminate")
	return nil
}

// Property: for random inputs, walking the lowered model ends with exactly
// the variable values the interpreter computes.
func TestQuickModelMatchesInterpreter(t *testing.T) {
	fx := setup(t, lowSrc, "f")
	low, err := Lower(fx.g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aD, bD := fx.global("a"), fx.global("b")
	f := func(a int16, b int8) bool {
		env := interp.Env{aD: int64(a), bD: int64(b)}
		if _, err := fx.m.Run(fx.g, env); err != nil {
			return false
		}
		vals := make([]int64, len(low.Model.Vars))
		vals[low.VarOf[aD]] = int64(a)
		vals[low.VarOf[bD]] = int64(b)
		final := deterministicWalk(t, low.Model, vals)
		for d, id := range low.VarOf {
			if final[id] != env[d] {
				t.Logf("a=%d b=%d: model %s=%d interp %d", a, b, d.Name, final[id], env[d])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLowerPathChainAndTrap(t *testing.T) {
	fx := setup(t, lowSrc, "f")
	all, err := paths.Enumerate(cfg.WholeFunction(fx.g), 0)
	if err != nil {
		t.Fatal(err)
	}
	low, err := LowerPath(fx.g, Options{}, all[0])
	if err != nil {
		t.Fatal(err)
	}
	if low.Model.Trap == tsys.NoLoc {
		t.Fatal("path lowering must set the trap")
	}
	// The trap must have no outgoing edges.
	for _, e := range low.Model.Edges {
		if e.From == low.Model.Trap {
			t.Error("trap location has outgoing edges")
		}
	}
	// The path lowering has strictly more locations than the plain one
	// (the forced chain).
	plain, err := Lower(fx.g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if low.Model.NLocs <= plain.Model.NLocs {
		t.Error("path chain missing")
	}
}

func TestRejectsDefinedCalls(t *testing.T) {
	fx := setup(t, `
int g(void) { return 1; }
int r;
int f(void) { r = g(); return r; }`, "f")
	if _, err := Lower(fx.g, Options{}); err == nil {
		t.Error("defined-function call must be rejected by the translator")
	}
}

func TestExternalCallsIgnored(t *testing.T) {
	fx := setup(t, `
int r;
int f(void) { printf1(); r = 1; return r; }`, "f")
	low, err := Lower(fx.g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range low.Model.Edges {
		for _, a := range e.Assigns {
			if low.Model.Vars[a.Var].Name == "printf1" {
				t.Error("external call leaked into the model")
			}
		}
	}
}

func TestRangeAnnotationsCarried(t *testing.T) {
	fx := setup(t, `
/*@ input */ /*@ range 3 9 */ int a;
int r;
int f(void) { r = a; return r; }`, "f")
	low, err := Lower(fx.g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := low.Model.Vars[low.VarOf[fx.global("a")]]
	if !v.HasRange || v.Lo != 3 || v.Hi != 9 {
		t.Errorf("range not carried: %+v", v)
	}
}
