package sim

import (
	"math/rand"
	"testing"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/codegen"
	"wcet/internal/gen"
	"wcet/internal/interp"
)

// TestRandomProgramsAgree is the repository's strongest differential test:
// seeded synthetic TargetLink-style programs are executed on both the AST
// interpreter and the compiled simulator with random inputs; the final
// values of every variable, and the visited block sequence, must agree.
func TestRandomProgramsAgree(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		prog := gen.Generate(gen.Config{Seed: seed, Branches: 25})
		f, err := parser.ParseFile("gen.c", prog.Source)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		if _, err := sem.Check(f); err != nil {
			t.Fatalf("seed %d: sem: %v", seed, err)
		}
		g, err := cfg.Build(f.Func(prog.FuncName))
		if err != nil {
			t.Fatalf("seed %d: cfg: %v", seed, err)
		}
		img, err := codegen.Compile(g, f)
		if err != nil {
			t.Fatalf("seed %d: codegen: %v", seed, err)
		}
		vm := New(img, Options{})
		m := interp.New(f, interp.Options{})

		rng := rand.New(rand.NewSource(seed * 977))
		for trial := 0; trial < 20; trial++ {
			env1 := interp.Env{}
			env2 := interp.Env{}
			for _, d := range f.Globals {
				if !d.Input {
					continue
				}
				lo, hi := d.Type.MinMax()
				if d.Rng != nil {
					lo, hi = d.Rng.Lo, d.Rng.Hi
				}
				v := lo + rng.Int63n(hi-lo+1)
				env1[d] = v
				env2[d] = v
			}
			itr, err1 := m.Run(g, env1)
			str, err2 := vm.Run(env2)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed %d trial %d: error disagreement: interp=%v sim=%v",
					seed, trial, err1, err2)
			}
			if err1 != nil {
				continue // both faulted (e.g. division by zero): agreed
			}
			// Block sequences agree.
			blocks := str.BlockSequence()
			if len(blocks) != len(itr.Blocks) {
				t.Fatalf("seed %d trial %d: block count %d vs %d",
					seed, trial, len(blocks), len(itr.Blocks))
			}
			for i := range blocks {
				if blocks[i] != itr.Blocks[i] {
					t.Fatalf("seed %d trial %d: path diverges at step %d", seed, trial, i)
				}
			}
			// Final variable values agree (the interpreter's env holds them).
			for d, addr := range img.VarAddr {
				want := valueOf(env1, d)
				if got := str.FinalMem[addr]; got != want {
					t.Fatalf("seed %d trial %d: %s = %d (sim) vs %d (interp)",
						seed, trial, d.Name, got, want)
				}
			}
		}
	}
}

func valueOf(env interp.Env, d *ast.VarDecl) int64 {
	return env[d]
}
