package sim

import (
	"testing"
	"testing/quick"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/codegen"
	"wcet/internal/interp"
)

type fixture struct {
	file *ast.File
	fn   *ast.FuncDecl
	g    *cfg.Graph
	vm   *VM
	m    *interp.Machine
}

func setup(t *testing.T, src, name string) *fixture {
	t.Helper()
	f, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatalf("sem: %v", err)
	}
	fn := f.Func(name)
	g, err := cfg.Build(fn)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	img, err := codegen.Compile(g, f)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	return &fixture{file: f, fn: fn, g: g, vm: New(img, Options{}), m: interp.New(f, interp.Options{})}
}

func (fx *fixture) global(name string) *ast.VarDecl {
	for _, g := range fx.file.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

const mixedSrc = `
int a, b;
int f(void) {
    int r;
    char c;
    r = 0;
    c = (char)(a + 100);
    if (a > b) { r = a - b; } else { r = b - a; }
    switch (b & 3) {
    case 0: r = r + c; break;
    case 1: r = r * 2; break;
    case 2: r = r / 2; break;
    default: r = r % 7;
    }
    if (a != 0 && b != 0) { r = r ^ 5; }
    return r;
}`

// Differential property: the VM computes the same result and visits the
// same block sequence as the interpreter.
func TestQuickVMMatchesInterpreter(t *testing.T) {
	fx := setup(t, mixedSrc, "f")
	aD, bD := fx.global("a"), fx.global("b")
	f := func(a, b int16) bool {
		env1 := interp.Env{aD: int64(a), bD: int64(b)}
		env2 := interp.Env{aD: int64(a), bD: int64(b)}
		itr, err1 := fx.m.Run(fx.g, env1)
		str, err2 := fx.vm.Run(env2)
		if err1 != nil || err2 != nil {
			return false
		}
		if itr.Ret != str.Ret {
			t.Logf("a=%d b=%d: interp=%d vm=%d", a, b, itr.Ret, str.Ret)
			return false
		}
		blocks := str.BlockSequence()
		if len(blocks) != len(itr.Blocks) {
			return false
		}
		for i := range blocks {
			if blocks[i] != itr.Blocks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCyclesDeterministicPerInput(t *testing.T) {
	fx := setup(t, mixedSrc, "f")
	aD, bD := fx.global("a"), fx.global("b")
	t1, err := fx.vm.Run(interp.Env{aD: 5, bD: 2})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := fx.vm.Run(interp.Env{aD: 5, bD: 2})
	if err != nil {
		t.Fatal(err)
	}
	if t1.Total != t2.Total {
		t.Errorf("same input, different cycles: %d vs %d", t1.Total, t2.Total)
	}
	if t1.Total <= 0 {
		t.Error("run consumed no cycles")
	}
}

func TestBranchAsymmetryVisible(t *testing.T) {
	fx := setup(t, `
int a, r;
int f(void) {
    if (a > 0) { r = 1; } else { r = 1; }
    return r;
}`, "f")
	aD := fx.global("a")
	tTaken, err := fx.vm.Run(interp.Env{aD: 1})
	if err != nil {
		t.Fatal(err)
	}
	tNot, err := fx.vm.Run(interp.Env{aD: -1})
	if err != nil {
		t.Fatal(err)
	}
	if tTaken.Total == tNot.Total {
		t.Error("then and else paths cost identically; branch asymmetry lost")
	}
}

func TestSwitchCompareChainCosts(t *testing.T) {
	fx := setup(t, `
int s, r;
int f(void) {
    switch (s) {
    case 0: r = 1; break;
    case 1: r = 1; break;
    case 2: r = 1; break;
    case 3: r = 1; break;
    }
    return r;
}`, "f")
	sD := fx.global("s")
	var prev int64 = -1
	for v := int64(0); v <= 3; v++ {
		tr, err := fx.vm.Run(interp.Env{sD: v})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && tr.Total <= prev {
			t.Errorf("case %d not costlier than case %d (%d vs %d): compare chain broken",
				v, v-1, tr.Total, prev)
		}
		prev = tr.Total
	}
}

func TestExternalCallCost(t *testing.T) {
	fx := setup(t, `
int r;
int f(void) { printf1(); r = 1; return r; }`, "f")
	tr, err := fx.vm.Run(interp.Env{})
	if err != nil {
		t.Fatal(err)
	}
	base := setup(t, `
int r;
int f(void) { r = 1; return r; }`, "f")
	tr2, err := base.vm.Run(interp.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total-tr2.Total != fx.vm.Costs().ExtDefault {
		t.Errorf("external call cost = %d, want %d", tr.Total-tr2.Total, fx.vm.Costs().ExtDefault)
	}
}

func TestDefinedFunctionCall(t *testing.T) {
	fx := setup(t, `
int add(int x, int y) { return x + y; }
int f(void) { return add(20, 22); }`, "f")
	tr, err := fx.vm.Run(interp.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ret != 42 {
		t.Errorf("ret = %d, want 42", tr.Ret)
	}
}

func TestCalleeWithControlFlow(t *testing.T) {
	fx := setup(t, `
int absdiff(int x, int y) {
    if (x > y) { return x - y; }
    return y - x;
}
int sum3(int n) {
    int i, s;
    s = 0;
    /*@ loopbound 10 */ for (i = 0; i < n; i++) { s += i; }
    return s;
}
int f(void) { return absdiff(3, 10) * 100 + sum3(4); }`, "f")
	tr, err := fx.vm.Run(interp.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ret != 706 {
		t.Errorf("ret = %d, want 706", tr.Ret)
	}
}

func TestLoopCycleGrowth(t *testing.T) {
	fx := setup(t, `
int n, s;
int f(void) {
    int i;
    s = 0;
    /*@ loopbound 64 */ for (i = 0; i < n; i++) { s = s + i; }
    return s;
}`, "f")
	nD := fx.global("n")
	var prev int64
	for n := int64(0); n <= 10; n++ {
		tr, err := fx.vm.Run(interp.Env{nD: n})
		if err != nil {
			t.Fatal(err)
		}
		if n > 0 && tr.Total <= prev {
			t.Errorf("n=%d: cycles %d not greater than %d", n, tr.Total, prev)
		}
		prev = tr.Total
	}
}

func TestInstructionLimit(t *testing.T) {
	fx := setup(t, `
int f(void) { while (1) { } return 0; }`, "f")
	fx.vm.opt.MaxInstructions = 1000
	if _, err := fx.vm.Run(interp.Env{}); err != ErrLimit {
		t.Errorf("err = %v, want ErrLimit", err)
	}
}

func TestMarksMatchBlocks(t *testing.T) {
	fx := setup(t, mixedSrc, "f")
	aD, bD := fx.global("a"), fx.global("b")
	tr, err := fx.vm.Run(interp.Env{aD: 7, bD: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Events must be monotone in cycle and start at the entry block.
	if tr.Events[0].Block != fx.g.Entry {
		t.Error("first mark is not the entry block")
	}
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Cycle < tr.Events[i-1].Cycle {
			t.Error("mark cycles not monotone")
		}
	}
	last := tr.Events[len(tr.Events)-1]
	if last.Block != fx.g.Exit {
		t.Error("last mark is not the exit block")
	}
}
