// Package sim is the cycle-accurate virtual machine for the HCS12-flavoured
// ISA — the measurement target standing in for the paper's evaluation
// board. It executes a compiled image, advances a free-running cycle
// counter by each instruction's modelled cost, and records a timestamped
// event at every basic-block MARK, from which the measurement subsystem
// computes program-segment execution times.
package sim

import (
	"errors"
	"fmt"

	"wcet/internal/cc/ast"
	"wcet/internal/cfg"
	"wcet/internal/codegen"
	"wcet/internal/interp"
	"wcet/internal/isa"
)

// BlockEvent is one MARK observation.
type BlockEvent struct {
	Block cfg.NodeID
	// Cycle is the counter value when the block was entered.
	Cycle int64
}

// Trace is the timing record of one run.
type Trace struct {
	Events []BlockEvent
	// Total is the cycle count at HALT.
	Total int64
	// Ret is the function result (register 0 at HALT).
	Ret int64
	// Instructions counts executed instructions.
	Instructions int64
	// FinalMem snapshots variable memory at HALT (indexed like VarType).
	FinalMem []int64
}

// Options bound a run.
type Options struct {
	// MaxInstructions aborts runaway code (default 4M).
	MaxInstructions int64
	// Costs overrides the default cycle model.
	Costs *isa.CostModel
}

// ErrLimit is returned when the instruction budget is exhausted.
var ErrLimit = errors.New("sim: instruction limit exceeded")

// VM executes compiled images.
type VM struct {
	img   *codegen.Compiled
	costs *isa.CostModel
	opt   Options
}

// New builds a VM for the image.
func New(img *codegen.Compiled, opt Options) *VM {
	if opt.MaxInstructions == 0 {
		opt.MaxInstructions = 4 << 20
	}
	costs := opt.Costs
	if costs == nil {
		costs = isa.DefaultCosts()
	}
	return &VM{img: img, costs: costs, opt: opt}
}

// Costs exposes the active cycle model.
func (vm *VM) Costs() *isa.CostModel { return vm.costs }

// Clone returns an independent VM over the same image and cycle model.
// A VM keeps no state across runs (memory and registers are allocated per
// Run), but runs themselves are single-goroutine; parallel measurement
// campaigns give each worker its own clone.
func (vm *VM) Clone() *VM {
	c := *vm
	return &c
}

type frame struct {
	retPC int
	regs  []int64
}

// Run executes from the image start with memory initialised from env
// (variables absent from env start at zero).
func (vm *VM) Run(env interp.Env) (*Trace, error) {
	mem := make([]int64, len(vm.img.VarType))
	for d, v := range env {
		if addr, ok := vm.img.VarAddr[d]; ok {
			mem[addr] = interp.Truncate(v, vm.img.VarType[addr])
		}
	}
	tr := &Trace{}
	pc := 0
	cur := &frame{regs: make([]int64, 64)}
	var stack []*frame
	growTo := func(f *frame, r int32) {
		for int(r) >= len(f.regs) {
			f.regs = append(f.regs, make([]int64, len(f.regs))...)
		}
	}
	prog := vm.img.Prog
	var cycles int64

	for {
		if pc < 0 || pc >= len(prog) {
			return tr, fmt.Errorf("sim: pc %d out of range", pc)
		}
		in := prog[pc]
		tr.Instructions++
		if tr.Instructions > vm.opt.MaxInstructions {
			return tr, ErrLimit
		}
		growTo(cur, in.A)
		growTo(cur, in.B)
		growTo(cur, in.C)
		r := cur.regs
		nextPC := pc + 1
		cost := vm.costs.Cost(in)

		switch in.Op {
		case isa.NOP:
		case isa.LDI:
			r[in.A] = in.Imm
		case isa.LD:
			r[in.A] = mem[in.B]
		case isa.ST:
			r[in.B] = interp.Truncate(r[in.B], vm.img.VarType[in.A])
			mem[in.A] = r[in.B]
		case isa.MOV:
			r[in.A] = r[in.B]
		case isa.ADD:
			r[in.A] = r[in.B] + r[in.C]
		case isa.SUB:
			r[in.A] = r[in.B] - r[in.C]
		case isa.MUL:
			r[in.A] = r[in.B] * r[in.C]
		case isa.DIV:
			if r[in.C] == 0 {
				return tr, fmt.Errorf("sim: division by zero at pc %d", pc)
			}
			r[in.A] = r[in.B] / r[in.C]
		case isa.MOD:
			if r[in.C] == 0 {
				return tr, fmt.Errorf("sim: modulo by zero at pc %d", pc)
			}
			r[in.A] = r[in.B] % r[in.C]
		case isa.AND:
			r[in.A] = r[in.B] & r[in.C]
		case isa.OR:
			r[in.A] = r[in.B] | r[in.C]
		case isa.XOR:
			r[in.A] = r[in.B] ^ r[in.C]
		case isa.NOT:
			r[in.A] = ^r[in.B]
		case isa.NEG:
			r[in.A] = -r[in.B]
		case isa.SHL:
			r[in.A] = r[in.B] << uint(in.C&63)
		case isa.SHR:
			r[in.A] = int64(uint64(r[in.B]) >> uint(in.C&63))
		case isa.ASR:
			r[in.A] = r[in.B] >> uint(in.C&63)
		case isa.SEQ:
			r[in.A] = b2i(r[in.B] == r[in.C])
		case isa.SNE:
			r[in.A] = b2i(r[in.B] != r[in.C])
		case isa.SLT:
			r[in.A] = b2i(r[in.B] < r[in.C])
		case isa.SLE:
			r[in.A] = b2i(r[in.B] <= r[in.C])
		case isa.TRUNC:
			t := ast.Type{Bits: int(in.C), Signed: in.B != 0}
			r[in.A] = interp.Truncate(r[in.A], t)
		case isa.BOOL:
			r[in.A] = b2i(r[in.B] != 0)
		case isa.JMP:
			nextPC = int(in.A)
		case isa.BEQZ:
			if r[in.A] == 0 {
				nextPC = int(in.B)
				cost = vm.costs.BranchTaken
			} else {
				cost = vm.costs.BranchNotTaken
			}
		case isa.BNEZ:
			if r[in.A] != 0 {
				nextPC = int(in.B)
				cost = vm.costs.BranchTaken
			} else {
				cost = vm.costs.BranchNotTaken
			}
		case isa.CALL:
			if len(stack) > 256 {
				return tr, fmt.Errorf("sim: call stack overflow")
			}
			stack = append(stack, cur)
			nf := &frame{retPC: pc + 1, regs: make([]int64, 64)}
			cur = nf
			nextPC = int(in.A)
		case isa.RET:
			if len(stack) == 0 {
				return tr, fmt.Errorf("sim: return with empty stack")
			}
			ret := cur.regs[vm.img.RetReg]
			nextPC = cur.retPC
			cur = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			growTo(cur, vm.img.RetReg)
			cur.regs[vm.img.RetReg] = ret
		case isa.EXT:
			// Opaque external routine: time only.
		case isa.MARK:
			tr.Events = append(tr.Events, BlockEvent{Block: cfg.NodeID(in.Imm), Cycle: cycles})
		case isa.HALT:
			cycles += cost
			tr.Total = cycles
			tr.Ret = cur.regs[vm.img.RetReg]
			tr.FinalMem = append([]int64(nil), mem...)
			return tr, nil
		default:
			return tr, fmt.Errorf("sim: bad opcode %v at pc %d", in.Op, pc)
		}
		cycles += cost
		pc = nextPC
	}
}

func b2i(c bool) int64 {
	if c {
		return 1
	}
	return 0
}

// BlockSequence extracts the executed block ids.
func (t *Trace) BlockSequence() []cfg.NodeID {
	out := make([]cfg.NodeID, len(t.Events))
	for i, e := range t.Events {
		out[i] = e.Block
	}
	return out
}
