package paths

import (
	"testing"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/interp"
	"wcet/internal/partition"
)

type fixture struct {
	file *ast.File
	g    *cfg.Graph
	m    *interp.Machine
	fn   *ast.FuncDecl
}

func setup(t *testing.T, src, name string) *fixture {
	t.Helper()
	f, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatalf("sem: %v", err)
	}
	fn := f.Func(name)
	g, err := cfg.Build(fn)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return &fixture{file: f, g: g, m: interp.New(f, interp.Options{}), fn: fn}
}

func (fx *fixture) global(name string) *ast.VarDecl {
	for _, g := range fx.file.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

const branchy = `
int a, b, r;
int f(void) {
    r = 0;
    if (a > 0) {
        if (b > 0) { r = 1; } else { r = 2; }
    }
    if (a > 10) { r = r + 10; }
    return r;
}`

func TestEnumerateWholeFunction(t *testing.T) {
	fx := setup(t, branchy, "f")
	whole := cfg.WholeFunction(fx.g)
	ps, err := Enumerate(whole, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := whole.PathCount()
	if want.Cmp(int64(len(ps))) != 0 {
		t.Errorf("enumerated %d paths, PathCount says %s", len(ps), want)
	}
	// Keys must be unique.
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Key()] {
			t.Errorf("duplicate path key %s", p.Key())
		}
		seen[p.Key()] = true
	}
}

func TestEnumerateMatchesPathCountOnSegments(t *testing.T) {
	fx := setup(t, branchy, "f")
	tree := partition.MustBuildTree(fx.g)
	var check func(ps *partition.PS)
	check = func(ps *partition.PS) {
		got, err := Enumerate(ps.Region, 0)
		if err != nil {
			t.Fatalf("enumerate %s: %v", ps.Kind, err)
		}
		if ps.Paths.Cmp(int64(len(got))) != 0 {
			t.Errorf("%s: %d enumerated vs %s counted", ps.Kind, len(got), ps.Paths)
		}
		for _, c := range ps.Children {
			check(c)
		}
	}
	check(tree)
}

func TestCyclicRegionRejected(t *testing.T) {
	fx := setup(t, `int i; void f(void) { while (i) { i = i - 1; } }`, "f")
	if _, err := Enumerate(cfg.WholeFunction(fx.g), 0); err == nil {
		t.Error("expected ErrCyclic for looping region")
	}
}

func TestCoversEndToEnd(t *testing.T) {
	fx := setup(t, branchy, "f")
	whole := cfg.WholeFunction(fx.g)
	ps, err := Enumerate(whole, 0)
	if err != nil {
		t.Fatal(err)
	}
	aD, bD := fx.global("a"), fx.global("b")
	envs := []interp.Env{
		{aD: 5, bD: 5},
		{aD: 5, bD: -5},
		{aD: -5, bD: 0},
		{aD: 20, bD: 1},
	}
	covered := map[string]bool{}
	for _, env := range envs {
		tr, err := fx.m.Run(fx.g, env)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, p := range ps {
			if Covers(fx.g, tr, p) {
				covered[p.Key()] = true
				n++
			}
		}
		if n != 1 {
			t.Errorf("trace covers %d end-to-end paths, want exactly 1", n)
		}
	}
	if len(covered) != 4 {
		t.Errorf("4 distinct inputs covered %d distinct paths", len(covered))
	}
}

func TestFitnessZeroIffCovered(t *testing.T) {
	fx := setup(t, branchy, "f")
	whole := cfg.WholeFunction(fx.g)
	ps, _ := Enumerate(whole, 0)
	aD, bD := fx.global("a"), fx.global("b")
	tr, err := fx.m.Run(fx.g, interp.Env{aD: 5, bD: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		fit := Fitness(fx.g, tr, p)
		if Covers(fx.g, tr, p) != (fit == 0) {
			t.Errorf("path %s: covered=%v but fitness=%v", p.Key(), Covers(fx.g, tr, p), fit)
		}
	}
}

func TestFitnessMonotoneTowardTarget(t *testing.T) {
	fx := setup(t, `
int a, r;
int f(void) {
    if (a == 500) { r = 1; } else { r = 0; }
    return r;
}`, "f")
	whole := cfg.WholeFunction(fx.g)
	ps, _ := Enumerate(whole, 0)
	// Find the path through the then-arm (r = 1).
	var target Path
	found := false
	for _, p := range ps {
		for _, id := range p.Blocks {
			for _, item := range fx.g.Node(id).Items {
				if ast.PrintStmt(item) == "r = 1;" {
					target = p
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("target path not found")
	}
	aD := fx.global("a")
	var prev = 1e18
	for _, a := range []int64{0, 100, 400, 499, 500} {
		tr, err := fx.m.Run(fx.g, interp.Env{aD: a})
		if err != nil {
			t.Fatal(err)
		}
		fit := Fitness(fx.g, tr, target)
		if fit > prev {
			t.Errorf("fitness increased at a=%d: %v > %v", a, fit, prev)
		}
		prev = fit
	}
	if prev != 0 {
		t.Errorf("fitness at exact hit = %v, want 0", prev)
	}
}

func TestFitnessSegmentPath(t *testing.T) {
	// Cover a path inside a nested segment rather than end-to-end.
	fx := setup(t, branchy, "f")
	tree := partition.MustBuildTree(fx.g)
	if len(tree.Children) == 0 {
		t.Fatal("no segments")
	}
	seg := tree.Children[0] // then-arm of (a > 0)
	segPaths, err := Enumerate(seg.Region, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(segPaths) != 2 {
		t.Fatalf("segment paths = %d, want 2", len(segPaths))
	}
	aD, bD := fx.global("a"), fx.global("b")
	tr, err := fx.m.Run(fx.g, interp.Env{aD: 1, bD: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, p := range segPaths {
		if Covers(fx.g, tr, p) {
			n++
		}
	}
	if n != 1 {
		t.Errorf("trace covers %d segment paths, want 1", n)
	}
	// A trace that never enters the segment covers none and has positive
	// fitness for both.
	tr2, err := fx.m.Run(fx.g, interp.Env{aD: -1, bD: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range segPaths {
		if Covers(fx.g, tr2, p) {
			t.Error("non-entering trace claims coverage")
		}
		if Fitness(fx.g, tr2, p) <= 0 {
			t.Error("non-entering trace must have positive fitness")
		}
	}
}

func TestEnumerateLimit(t *testing.T) {
	fx := setup(t, branchy, "f")
	if _, err := Enumerate(cfg.WholeFunction(fx.g), 2); err == nil {
		t.Error("expected limit error")
	}
}
