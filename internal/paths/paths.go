// Package paths enumerates the execution paths inside a program segment and
// matches recorded traces against them.
//
// A path is the canonical unit of the paper's measurement plan: measuring a
// program segment "as a whole" means producing one run per path through the
// segment. The package also computes the search fitness (approach level +
// normalised branch distance, per Tracey et al.) that the genetic test-data
// generator minimises, and which the model checker replaces with an exact
// answer.
package paths

import (
	"fmt"
	"strings"

	"wcet/internal/cfg"
	"wcet/internal/interp"
)

// Path is one acyclic route through a region, from its entry block to an
// edge that leaves the region.
type Path struct {
	// Blocks is the in-region block sequence, beginning at the region entry.
	Blocks []cfg.NodeID
	// Exit is the edge leaving the region at the end of the path.
	Exit cfg.Edge
}

// Key returns a canonical identity string for the path.
func (p Path) Key() string {
	var b strings.Builder
	for i, id := range p.Blocks {
		if i > 0 {
			b.WriteByte('-')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	fmt.Fprintf(&b, ">%d", p.Exit.To)
	return b.String()
}

// ErrCyclic is returned when enumeration meets a cycle inside the region.
var ErrCyclic = fmt.Errorf("paths: region contains a cycle; decompose before enumerating")

// Enumerate lists every path of the region, in a deterministic order. The
// region must be acyclic (the partitioner never measures an unbounded
// region as a whole; bounded loop regions are decomposed for enumeration).
// The limit guards against explosion; 0 means no limit.
func Enumerate(r cfg.Region, limit int) ([]Path, error) {
	var out []Path
	var cur []cfg.NodeID
	onStack := map[cfg.NodeID]bool{}
	var dfs func(id cfg.NodeID) error
	dfs = func(id cfg.NodeID) error {
		if onStack[id] {
			return ErrCyclic
		}
		onStack[id] = true
		cur = append(cur, id)
		defer func() {
			onStack[id] = false
			cur = cur[:len(cur)-1]
		}()
		succs := r.G.Succs(id)
		if len(succs) == 0 {
			// Function exit block inside the region terminates a path.
			blocks := append([]cfg.NodeID(nil), cur...)
			out = append(out, Path{Blocks: blocks, Exit: cfg.Edge{From: id, To: cfg.NoNode, Kind: "end"}})
			if limit > 0 && len(out) > limit {
				return fmt.Errorf("paths: more than %d paths", limit)
			}
			return nil
		}
		for _, e := range succs {
			if !r.Set[e.To] {
				blocks := append([]cfg.NodeID(nil), cur...)
				out = append(out, Path{Blocks: blocks, Exit: e})
				if limit > 0 && len(out) > limit {
					return fmt.Errorf("paths: more than %d paths", limit)
				}
				continue
			}
			if err := dfs(e.To); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(r.Entry); err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Trace matching

// Step is one executed control transfer reconstructed from a trace.
type Step struct {
	Block cfg.NodeID
	Next  cfg.NodeID
	// Decision is the index into trace.Decisions when Block had multiple
	// successors, else -1.
	Decision int
}

// Steps reconstructs the per-block transfer list of a trace.
func Steps(g *cfg.Graph, tr *interp.Trace) []Step {
	steps := make([]Step, 0, len(tr.Blocks))
	di := 0
	for i := 0; i < len(tr.Blocks); i++ {
		s := Step{Block: tr.Blocks[i], Next: cfg.NoNode, Decision: -1}
		if i+1 < len(tr.Blocks) {
			s.Next = tr.Blocks[i+1]
		}
		if len(g.Succs(tr.Blocks[i])) > 1 {
			if di < len(tr.Decisions) && tr.Decisions[di].Block == tr.Blocks[i] {
				s.Decision = di
				di++
			}
		}
		steps = append(steps, s)
	}
	return steps
}

// Covers reports whether the trace executes the path: some visit of the
// path's entry block is followed by exactly the path's block sequence and
// then its exit edge.
func Covers(g *cfg.Graph, tr *interp.Trace, p Path) bool {
	blocks := tr.Blocks
	n := len(p.Blocks)
	for i := 0; i+n <= len(blocks); i++ {
		if blocks[i] != p.Blocks[0] {
			continue
		}
		ok := true
		for j := 0; j < n; j++ {
			if blocks[i+j] != p.Blocks[j] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Check the exit transfer.
		if p.Exit.To == cfg.NoNode {
			if i+n == len(blocks) {
				return true
			}
			continue
		}
		if i+n < len(blocks) && blocks[i+n] == p.Exit.To {
			return true
		}
	}
	return false
}

// Fitness scores how close the trace comes to covering the path: 0 means
// covered; larger is farther. The score is approachLevel + normalised
// branch distance at the first divergence, minimised over every visit of
// the path entry (Tracey-style objective for search-based test generation).
func Fitness(g *cfg.Graph, tr *interp.Trace, p Path) float64 {
	if Covers(g, tr, p) {
		return 0
	}
	steps := Steps(g, tr)
	best := float64(len(p.Blocks)) + 1
	seen := false
	for i := range steps {
		if steps[i].Block != p.Blocks[0] {
			continue
		}
		seen = true
		score := matchFrom(g, tr, steps, i, p)
		if score < best {
			best = score
		}
	}
	if !seen {
		// Entry never reached: worst approach level plus one.
		return float64(len(p.Blocks)) + 1
	}
	return best
}

func matchFrom(g *cfg.Graph, tr *interp.Trace, steps []Step, start int, p Path) float64 {
	n := len(p.Blocks)
	for j := 0; j < n; j++ {
		si := start + j
		if si >= len(steps) || steps[si].Block != p.Blocks[j] {
			// Diverged before this block: attribute to previous decision.
			return divergeScore(g, tr, steps, si-1, p, j)
		}
		var want cfg.NodeID
		if j+1 < n {
			want = p.Blocks[j+1]
		} else {
			want = p.Exit.To
			if want == cfg.NoNode {
				// Path ends at the function exit: matched fully.
				return 0
			}
		}
		if steps[si].Next != want {
			return divergeScore(g, tr, steps, si, p, j+1)
		}
	}
	return 0
}

// divergeScore computes approach level + normalised branch distance for a
// divergence at steps[si] with `matched` path blocks already matched.
func divergeScore(g *cfg.Graph, tr *interp.Trace, steps []Step, si int, p Path, matched int) float64 {
	approach := float64(len(p.Blocks) - matched)
	if si < 0 || si >= len(steps) {
		return approach + 1
	}
	st := steps[si]
	if st.Decision < 0 {
		return approach + 1
	}
	d := tr.Decisions[st.Decision]
	// Which successor edge would have kept us on the path?
	var want cfg.NodeID
	if matched < len(p.Blocks) {
		want = p.Blocks[matched]
	} else {
		want = p.Exit.To
	}
	succs := g.Succs(st.Block)
	for i, e := range succs {
		if e.To == want && i < len(d.Dists) {
			return approach + normalise(d.Dists[i])
		}
	}
	return approach + 1
}

// normalise maps a branch distance into [0,1).
func normalise(d float64) float64 {
	if d < 0 {
		d = -d
	}
	return d / (d + 1)
}
