package schema

import (
	"testing"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/codegen"
	"wcet/internal/interp"
	"wcet/internal/measure"
	"wcet/internal/partition"
	"wcet/internal/sim"
)

type fixture struct {
	file *ast.File
	g    *cfg.Graph
	vm   *sim.VM
}

func setup(t *testing.T, src, name string) *fixture {
	t.Helper()
	f, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatalf("sem: %v", err)
	}
	g, err := cfg.Build(f.Func(name))
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	img, err := codegen.Compile(g, f)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	return &fixture{file: f, g: g, vm: sim.New(img, sim.Options{})}
}

func (fx *fixture) global(name string) *ast.VarDecl {
	for _, g := range fx.file.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

const wcetSrc = `
/*@ input */ /*@ range 0 2 */ int sel;
/*@ input */ /*@ range 0 1 */ int flag;
int r;
int f(void) {
    r = 0;
    switch (sel) {
    case 0:
        r = 1;
        break;
    case 1:
        r = r + 2;
        r = r * 3;
        r = r - 1;
        break;
    default:
        if (flag == 1) { r = 7; r = r + r; } else { r = 5; }
        break;
    }
    if (flag == 1) { r = r + 1; }
    return r;
}`

func (fx *fixture) inputs(t *testing.T) []interp.Env {
	t.Helper()
	envs, err := measure.EnumerateInputs([]measure.InputVar{
		{Decl: fx.global("sel"), Lo: 0, Hi: 2},
		{Decl: fx.global("flag"), Lo: 0, Hi: 1},
	}, interp.Env{}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	return envs
}

// boundAt partitions with bound b, measures exhaustively and computes the
// schema bound.
func boundAt(t *testing.T, fx *fixture, b int64) int64 {
	t.Helper()
	plan := partition.MustPartitionBound(fx.g, b)
	res, err := measure.Campaign(plan, fx.vm, fx.inputs(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered() {
		t.Fatal("campaign did not cover every unit")
	}
	bound, err := Compute(res)
	if err != nil {
		t.Fatal(err)
	}
	return bound.WCET
}

func TestBoundIsSafe(t *testing.T) {
	fx := setup(t, wcetSrc, "f")
	exh, err := measure.ExhaustiveMax(fx.vm, fx.inputs(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int64{1, 2, 3, 6, 1000} {
		bound := boundAt(t, fx, b)
		if bound < exh {
			t.Errorf("b=%d: bound %d < exhaustive max %d (unsafe!)", b, bound, exh)
		}
	}
}

func TestEndToEndBoundIsExact(t *testing.T) {
	fx := setup(t, wcetSrc, "f")
	exh, err := measure.ExhaustiveMax(fx.vm, fx.inputs(t))
	if err != nil {
		t.Fatal(err)
	}
	// A single whole-function unit: the bound equals the exhaustive max.
	bound := boundAt(t, fx, 1_000_000)
	if bound != exh {
		t.Errorf("end-to-end bound %d != exhaustive %d", bound, exh)
	}
}

func TestFinerPartitionsOverestimate(t *testing.T) {
	fx := setup(t, wcetSrc, "f")
	blockBound := boundAt(t, fx, 1)
	endToEnd := boundAt(t, fx, 1_000_000)
	if blockBound < endToEnd {
		t.Errorf("block-level bound %d below end-to-end bound %d", blockBound, endToEnd)
	}
	// The branch-cost asymmetry must actually manifest as overestimation
	// at block granularity for this program.
	if blockBound == endToEnd {
		t.Logf("note: block-level bound is tight on this program (%d)", blockBound)
	}
}

func TestCriticalUnitsFormAPath(t *testing.T) {
	fx := setup(t, wcetSrc, "f")
	plan := partition.MustPartitionBound(fx.g, 1)
	res, err := measure.Campaign(plan, fx.vm, fx.inputs(t))
	if err != nil {
		t.Fatal(err)
	}
	bound, err := Compute(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(bound.CriticalUnits) == 0 {
		t.Fatal("no critical units")
	}
	sum := int64(0)
	for _, u := range bound.CriticalUnits {
		sum += res.UnitMax(u)
	}
	if sum != bound.WCET {
		t.Errorf("critical-unit sum %d != WCET %d", sum, bound.WCET)
	}
}

func TestUnmeasuredUnitRejected(t *testing.T) {
	fx := setup(t, wcetSrc, "f")
	plan := partition.MustPartitionBound(fx.g, 1)
	res, err := measure.Campaign(plan, fx.vm, fx.inputs(t)[:1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered() {
		t.Skip("single input unexpectedly covered everything")
	}
	if _, err := Compute(res); err == nil {
		t.Error("expected error for unmeasured units")
	}
}

const loopSrc = `
/*@ input */ /*@ range 0 3 */ int n;
int s;
int f(void) {
    int i;
    s = 0;
    /*@ loopbound 3 */ for (i = 0; i < n; i++) { s = s + i; }
    return s;
}`

func TestBoundedLoopAtBlockGranularity(t *testing.T) {
	fx := setup(t, loopSrc, "f")
	envs, err := measure.EnumerateInputs([]measure.InputVar{
		{Decl: fx.global("n"), Lo: 0, Hi: 3},
	}, interp.Env{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	exh, err := measure.ExhaustiveMax(fx.vm, envs)
	if err != nil {
		t.Fatal(err)
	}
	// Block granularity: the loop's back edge is visible in the contracted
	// graph and gets collapsed via the /*@ loopbound 3 */ annotation.
	plan := partition.MustPartitionBound(fx.g, 1)
	res, err := measure.Campaign(plan, fx.vm, envs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(res)
	if err != nil {
		t.Fatalf("bounded loop must be computable: %v", err)
	}
	if b.WCET < exh {
		t.Errorf("loop bound %d below exhaustive %d: unsafe", b.WCET, exh)
	}
	if b.WCET > exh*3 {
		t.Errorf("loop bound %d absurdly loose vs %d", b.WCET, exh)
	}
	// Whole-function measurement stays exact.
	plan2 := partition.MustPartitionBound(fx.g, 1000)
	res2, err := measure.Campaign(plan2, fx.vm, envs)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Covered() {
		t.Fatal("whole-function unit unobserved")
	}
	b2, err := Compute(res2)
	if err != nil {
		t.Fatalf("whole-function schema failed: %v", err)
	}
	if b2.WCET != exh {
		t.Errorf("bound %d != exhaustive %d", b2.WCET, exh)
	}
}

func TestUnboundedLoopRejected(t *testing.T) {
	fx := setup(t, `
/*@ input */ /*@ range 0 3 */ int n;
int s;
int f(void) {
    int i;
    s = 0;
    for (i = 0; i < n; i++) { s = s + i; }
    return s;
}`, "f")
	plan := partition.MustPartitionBound(fx.g, 1)
	envs, err := measure.EnumerateInputs([]measure.InputVar{
		{Decl: fx.global("n"), Lo: 0, Hi: 3},
	}, interp.Env{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := measure.Campaign(plan, fx.vm, envs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(res); err == nil {
		t.Error("unannotated loop must be rejected")
	}
}

func TestNestedBoundedLoops(t *testing.T) {
	fx := setup(t, `
/*@ input */ /*@ range 0 2 */ int n;
int s;
int f(void) {
    int i, j;
    s = 0;
    /*@ loopbound 2 */ for (i = 0; i < n; i++) {
        /*@ loopbound 3 */ for (j = 0; j < 3; j++) {
            s = s + j;
        }
    }
    return s;
}`, "f")
	envs, err := measure.EnumerateInputs([]measure.InputVar{
		{Decl: fx.global("n"), Lo: 0, Hi: 2},
	}, interp.Env{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	exh, err := measure.ExhaustiveMax(fx.vm, envs)
	if err != nil {
		t.Fatal(err)
	}
	plan := partition.MustPartitionBound(fx.g, 1)
	res, err := measure.Campaign(plan, fx.vm, envs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(res)
	if err != nil {
		t.Fatalf("nested bounded loops must be computable: %v", err)
	}
	if b.WCET < exh {
		t.Errorf("nested loop bound %d below exhaustive %d: unsafe", b.WCET, exh)
	}
}
