// Package schema computes the WCET bound from measured program-segment
// times with the paper's "simple timing schema approach": contract every
// whole-measured segment to a supernode weighted by its observed maximum,
// weight residual blocks by their observed maxima, and take the longest
// entry→exit path through the contracted graph.
//
// The bound is safe with respect to the measured cost model whenever every
// unit's worst path was exercised; it over-approximates the true WCET
// because per-unit maxima from different runs may not lie on one path —
// the 274-vs-250-cycle gap of the paper's case study.
package schema

import (
	"fmt"
	"sort"

	"wcet/internal/cfg"
	"wcet/internal/measure"
	"wcet/internal/partition"
)

// Bound is the result of the timing-schema computation.
type Bound struct {
	// WCET is the computed bound in cycles.
	WCET int64
	// CriticalUnits lists the plan-unit indices on the longest path of the
	// contracted (loop-collapsed) graph.
	CriticalUnits []int
	// UnitWeights are the effective per-unit weights after loop collapse
	// (collapsed headers carry their whole loop's worst-case cost).
	UnitWeights []int64
	// DegradedUnits lists (sorted) the plan units whose worst path is not
	// guaranteed exercised — units containing target paths the generator
	// left Unknown. Their measured maxima are lower bounds on the true
	// unit WCET, so the schema bound is only safe if a fallback (e.g. an
	// exhaustive input sweep) restored their coverage.
	DegradedUnits []int
	// CriticalDegraded reports whether the critical path crosses a
	// degraded unit — if it does, the headline WCET itself rests on
	// degraded coverage, not just some side branch.
	CriticalDegraded bool
}

// Compute contracts the plan's units and returns the longest-path bound.
// Loops left visible in the contracted graph (measured at block
// granularity) are collapsed using their /*@ loopbound */ annotations; an
// unannotated loop is an error.
func Compute(res *measure.Result) (*Bound, error) {
	return ComputeDegraded(res, nil)
}

// ComputeDegraded is Compute with a set of degraded plan units (indices
// into res.Plan.Units) to carry through into the bound's soundness
// annotations. The numeric result is unchanged — degradation is reported,
// never silently corrected.
func ComputeDegraded(res *measure.Result, degraded map[int]bool) (*Bound, error) {
	plan := res.Plan
	g := plan.G

	// Map every block to its unit.
	unitOf := make(map[cfg.NodeID]int, len(g.Nodes))
	for ui, u := range plan.Units {
		switch u.Kind {
		case partition.SingleBlock:
			unitOf[u.Block] = ui
		case partition.WholePS:
			for id := range u.PS.Region.Set {
				unitOf[id] = ui
			}
		}
	}
	for _, n := range g.Nodes {
		if _, ok := unitOf[n.ID]; !ok {
			return nil, fmt.Errorf("schema: block B%d not covered by the plan", n.ID)
		}
	}

	ug, err := buildUnitGraph(res, unitOf)
	if err != nil {
		return nil, err
	}
	if err := ug.collapseLoops(unitBoundFunc(plan)); err != nil {
		return nil, err
	}

	entry := ug.entry
	// Longest path via DFS with memoisation over the (now acyclic) graph.
	memo := make([]int64, len(plan.Units))
	state := make([]int, len(plan.Units)) // 0 new, 1 on stack, 2 done
	choice := make([]int, len(plan.Units))
	for i := range choice {
		choice[i] = -1
	}
	var longest func(u int) (int64, error)
	longest = func(u int) (int64, error) {
		switch state[u] {
		case 1:
			return 0, fmt.Errorf("schema: internal: cycle survived loop collapse at unit %d", u)
		case 2:
			return memo[u], nil
		}
		state[u] = 1
		best := int64(0)
		for v := range ug.succs[u] {
			if !ug.alive[v] {
				continue
			}
			c, err := longest(v)
			if err != nil {
				return 0, err
			}
			if choice[u] == -1 || c > best || (c == best && v < choice[u]) {
				if c >= best {
					choice[u] = v
				}
			}
			if c > best {
				best = c
			}
		}
		memo[u] = ug.weight[u] + best
		state[u] = 2
		return memo[u], nil
	}
	total, err := longest(entry)
	if err != nil {
		return nil, err
	}
	b := &Bound{WCET: total, UnitWeights: ug.weight}
	for u := entry; u != -1; u = choice[u] {
		b.CriticalUnits = append(b.CriticalUnits, u)
		if len(b.CriticalUnits) > len(plan.Units) {
			break
		}
	}
	for u := range degraded {
		if degraded[u] {
			b.DegradedUnits = append(b.DegradedUnits, u)
		}
	}
	sort.Ints(b.DegradedUnits)
	for _, u := range b.CriticalUnits {
		if degraded[u] {
			b.CriticalDegraded = true
			break
		}
	}
	return b, nil
}
