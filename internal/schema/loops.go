package schema

import (
	"fmt"
	"sort"

	"wcet/internal/cfg"
	"wcet/internal/measure"
	"wcet/internal/partition"
)

// Bounded-loop support: when the contracted unit graph contains cycles —
// loops measured at block granularity rather than swallowed by a
// whole-measured segment — each natural loop is collapsed into its header
// using the /*@ loopbound n */ annotation: the collapsed weight is
//
//	n × (longest path through one iteration) + (final header evaluation)
//
// which is safe whenever n bounds the iteration count and the per-unit
// maxima bound the per-visit costs. Nested loops collapse innermost first.

// unitGraph is the mutable contracted graph the schema works on.
type unitGraph struct {
	succs  map[int]map[int]bool
	weight []int64
	entry  int
	alive  map[int]bool
}

func (ug *unitGraph) addEdge(a, b int) {
	if a == b {
		return
	}
	if ug.succs[a] == nil {
		ug.succs[a] = map[int]bool{}
	}
	ug.succs[a][b] = true
}

// sortedSuccs returns the alive successors of u in ascending order, so
// graph walks do not depend on map iteration order.
func (ug *unitGraph) sortedSuccs(u int) []int {
	out := make([]int, 0, len(ug.succs[u]))
	for v := range ug.succs[u] {
		if ug.alive[v] {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// backEdges returns every DFS back edge (from, to) in deterministic order.
func (ug *unitGraph) backEdges() [][2]int {
	state := map[int]int{}
	var out [][2]int
	var dfs func(u int)
	dfs = func(u int) {
		state[u] = 1
		for _, v := range ug.sortedSuccs(u) {
			switch state[v] {
			case 0:
				dfs(v)
			case 1:
				out = append(out, [2]int{u, v})
			}
		}
		state[u] = 2
	}
	dfs(ug.entry)
	return out
}

// naturalLoop returns the natural loop of back edge u → h: h, u, and every
// node reaching u without passing h.
func (ug *unitGraph) naturalLoop(u, h int, preds map[int][]int) map[int]bool {
	loop := map[int]bool{h: true, u: true}
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == h {
			continue
		}
		for _, p := range preds[x] {
			if !loop[p] {
				loop[p] = true
				stack = append(stack, p)
			}
		}
	}
	return loop
}

// preds computes the predecessor map over alive nodes.
func (ug *unitGraph) preds() map[int][]int {
	out := map[int][]int{}
	for a, set := range ug.succs {
		if !ug.alive[a] {
			continue
		}
		for b := range set {
			if ug.alive[b] {
				out[b] = append(out[b], a)
			}
		}
	}
	return out
}

// collapseLoops rewrites the graph until it is acyclic. unitBound gives the
// iteration bound of a header unit (0 = unbounded → error).
func (ug *unitGraph) collapseLoops(unitBound func(int) int64) error {
	for guard := 0; ; guard++ {
		if guard > len(ug.weight)+2 {
			return fmt.Errorf("schema: loop collapse did not converge (irreducible flow?)")
		}
		edges := ug.backEdges()
		if len(edges) == 0 {
			return nil
		}
		// Collapse the innermost loop first: the natural loop with the
		// fewest members (nesting implies strict containment, so an inner
		// loop is always smaller than its enclosing one). Picking an outer
		// loop while an inner cycle survives would make the longest-path
		// step fail. DFS order used to decide this implicitly via map
		// iteration, failing nondeterministically on nested loops.
		preds := ug.preds()
		u, h := edges[0][0], edges[0][1]
		loop := ug.naturalLoop(u, h, preds)
		for _, e := range edges[1:] {
			cand := ug.naturalLoop(e[0], e[1], preds)
			if len(cand) < len(loop) {
				u, h, loop = e[0], e[1], cand
			}
		}
		// Reducibility: no outside node may enter the loop except at h.
		for b := range loop {
			if b == h {
				continue
			}
			for _, p := range preds[b] {
				if !loop[p] {
					return fmt.Errorf("schema: irreducible loop entry at unit %d", b)
				}
			}
		}
		n := unitBound(h)
		if n <= 0 {
			return fmt.Errorf("schema: loop at unit %d has no /*@ loopbound */ annotation", h)
		}
		// Longest path h→u strictly inside the loop (back edge excluded).
		iter, err := ug.longestWithin(loop, h, u)
		if err != nil {
			return err
		}
		ug.weight[h] = n*iter + ug.weight[h]
		// Collapse: h inherits every loop-leaving edge; members die.
		for x := range loop {
			for v := range ug.succs[x] {
				if !loop[v] && ug.alive[v] {
					ug.addEdge(h, v)
				}
			}
		}
		delete(ug.succs[u], h) // drop the back edge
		for x := range loop {
			if x == h {
				continue
			}
			ug.alive[x] = false
			delete(ug.succs, x)
		}
		// Remove edges from h into dead members.
		for v := range ug.succs[h] {
			if loop[v] && v != h {
				delete(ug.succs[h], v)
			}
		}
	}
}

// longestWithin computes the longest src→dst path inside the member set
// (weights of both endpoints included); the member subgraph must be acyclic
// once the back edge is ignored.
func (ug *unitGraph) longestWithin(members map[int]bool, src, dst int) (int64, error) {
	memo := map[int]int64{}
	state := map[int]int{}
	var dfs func(u int) (int64, error)
	dfs = func(u int) (int64, error) {
		if u == dst {
			return ug.weight[dst], nil
		}
		switch state[u] {
		case 1:
			return 0, fmt.Errorf("schema: nested loop not yet collapsed inside loop body")
		case 2:
			return memo[u], nil
		}
		state[u] = 1
		best := int64(-1)
		for v := range ug.succs[u] {
			if !members[v] || !ug.alive[v] || (u == src && false) {
				continue
			}
			if v == src {
				continue // ignore the back edge
			}
			c, err := dfs(v)
			if err != nil {
				return 0, err
			}
			if c > best {
				best = c
			}
		}
		if best < 0 {
			// Dead end inside the loop that never reaches dst: contributes
			// nothing to the iteration path.
			best = 0
		}
		memo[u] = ug.weight[u] + best
		state[u] = 2
		return memo[u], nil
	}
	return dfs(src)
}

// buildUnitGraph constructs the contracted graph and weight vector.
func buildUnitGraph(res *measure.Result, unitOf map[cfg.NodeID]int) (*unitGraph, error) {
	plan := res.Plan
	g := plan.G
	ug := &unitGraph{
		succs:  map[int]map[int]bool{},
		weight: make([]int64, len(plan.Units)),
		entry:  unitOf[g.Entry],
		alive:  map[int]bool{},
	}
	for i := range plan.Units {
		w := res.UnitMax(i)
		if w < 0 {
			return nil, fmt.Errorf("schema: unit %d was never measured", i)
		}
		ug.weight[i] = w
		ug.alive[i] = true
	}
	for _, n := range g.Nodes {
		for _, e := range g.Succs(n.ID) {
			ug.addEdge(unitOf[e.From], unitOf[e.To])
		}
	}
	return ug, nil
}

// unitBoundFunc derives the loop bound of a unit from its blocks' loop
// annotations (the maximum over contained headers).
func unitBoundFunc(plan *partition.Plan) func(int) int64 {
	g := plan.G
	return func(ui int) int64 {
		u := plan.Units[ui]
		switch u.Kind {
		case partition.SingleBlock:
			return int64(g.Node(u.Block).LoopBound)
		case partition.WholePS:
			best := int64(0)
			for id := range u.PS.Region.Set {
				if b := int64(g.Node(id).LoopBound); b > best {
					best = b
				}
			}
			return best
		}
		return 0
	}
}
