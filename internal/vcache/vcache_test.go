package vcache

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type rec struct {
	Verdict int
	Env     map[string]int64
}

func key(parts ...string) Key {
	h := NewKey("test-v1")
	for _, p := range parts {
		h.Str(p)
	}
	return h.Sum()
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := key("a")
	in := rec{Verdict: 2, Env: map[string]int64{"x": 7}}
	var out rec
	if s.Get(k, &out) {
		t.Fatal("hit on an empty store")
	}
	if err := s.Put(k, in); err != nil {
		t.Fatal(err)
	}
	if !s.Get(k, &out) {
		t.Fatal("miss after Put")
	}
	if out.Verdict != in.Verdict || out.Env["x"] != 7 {
		t.Fatalf("round trip mangled the record: %+v", out)
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.BytesWritten == 0 || c.BytesRead == 0 {
		t.Fatalf("counters off: %+v", c)
	}
}

func TestStorePersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key("persist"), rec{Verdict: 1}); err != nil {
		t.Fatal(err)
	}
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out rec
	if !again.Get(key("persist"), &out) || out.Verdict != 1 {
		t.Fatal("record did not survive a reopen")
	}
	if again.Len() != 1 {
		t.Fatalf("Len = %d, want 1", again.Len())
	}
}

func TestStoreFirstWriteWins(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := key("dup")
	if err := s.Put(k, rec{Verdict: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, rec{Verdict: 9}); err != nil {
		t.Fatal(err)
	}
	var out rec
	s.Get(k, &out)
	if out.Verdict != 1 {
		t.Fatalf("second Put overwrote the record: verdict %d", out.Verdict)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestStoreVersionMismatchResets(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key("old"), rec{Verdict: 1}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte("ancient\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out rec
	if fresh.Get(key("old"), &out) {
		t.Fatal("stale-format record survived a version reset")
	}
	if data, _ := os.ReadFile(filepath.Join(dir, "VERSION")); string(data) != Version {
		t.Fatalf("VERSION not rewritten: %q", data)
	}
}

func TestStoreCorruptRecordIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := key("corrupt")
	if err := s.Put(k, rec{Verdict: 3}); err != nil {
		t.Fatal(err)
	}
	name := k.String()
	path := filepath.Join(dir, "objects", name[:2], name[2:])
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out rec
	if s.Get(k, &out) {
		t.Fatal("corrupted record decoded as a hit")
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	var out rec
	if s.Get(key("x"), &out) {
		t.Fatal("nil store hit")
	}
	if err := s.Put(key("x"), rec{}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Dir() != "" || (s.Counters() != Counters{}) {
		t.Fatal("nil store not inert")
	}
}

func TestHasherDiscriminates(t *testing.T) {
	if key("ab", "c") == key("a", "bc") {
		t.Fatal("length prefixing failed: concatenation collision")
	}
	a := NewKey("v1")
	a.Int(1)
	b := NewKey("v1")
	b.Bool(true)
	if a.Sum() == b.Sum() {
		t.Fatal("typed encodings collide")
	}
	v1 := NewKey("v1")
	v2 := NewKey("v2")
	if v1.Sum() == v2.Sum() {
		t.Fatal("version tag not folded")
	}
	f1 := NewKey("v1")
	f1.Float(1.5)
	f2 := NewKey("v1")
	f2.Float(1.25)
	if f1.Sum() == f2.Sum() {
		t.Fatal("floats not folded")
	}
}

func TestCountersSub(t *testing.T) {
	a := Counters{Hits: 5, Misses: 3, BytesRead: 100, BytesWritten: 40}
	b := Counters{Hits: 2, Misses: 1, BytesRead: 60, BytesWritten: 40}
	d := a.Sub(b)
	if d.Hits != 3 || d.Misses != 2 || d.BytesRead != 40 || d.BytesWritten != 0 {
		t.Fatalf("Sub wrong: %+v", d)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := key("shared", string(rune('0'+i)))
				s.Put(k, rec{Verdict: i})
				var out rec
				if s.Get(k, &out) && out.Verdict != i {
					t.Errorf("worker %d read torn record for %d: %+v", w, i, out)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 20 {
		t.Fatalf("Len = %d, want 20", s.Len())
	}
}

func TestContextPlumbing(t *testing.T) {
	if From(context.Background()) != nil {
		t.Fatal("empty context carried a store")
	}
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := With(context.Background(), s)
	if From(ctx) != s {
		t.Fatal("store did not ride the context")
	}
	if From(With(ctx, nil)) != nil {
		t.Fatal("nil With did not detach")
	}
}
