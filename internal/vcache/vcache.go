// Package vcache is the persistent verdict cache behind incremental
// re-analysis: a content-addressed, on-disk store that memoizes the
// expensive per-path outcomes of the hybrid generator — model-checker
// verdicts with their deterministic statistics, attempts history and
// serialized cause, and GA search outcomes — across *runs*, so an edited
// program only re-proves the paths the edit can actually influence.
//
// # Keys
//
// Records are addressed by a 256-bit SHA-256 key built with NewKey: a
// versioned, length-disciplined fold of everything the cached outcome is a
// function of. For model-checker verdicts that is the *optimized, sliced*
// transition system (tsys.Model.WriteDigest) plus variable names and every
// deterministic model-checker option — the slice drops the parts of the
// program a path's trap cannot see, so an edit elsewhere leaves the key
// (and the cached verdict's validity) intact. The 64-bit FNV
// Model.Fingerprint is deliberately not used here: it is plenty for the
// in-process mc.OrderBook, but a persistent store shared across edits
// needs collision resistance, because a colliding key would silently
// replay a wrong verdict into a report.
//
// Degraded and Unknown verdicts are reusable exactly because the key
// digests the budgets (step, state and node caps, per-call timeout, retry
// policy, failover cap) that produced them: a hit is by construction an
// outcome obtained under identical budgets, so "ran out of budget" is as
// deterministic — and as cacheable — as "infeasible".
//
// # Store layout and crash safety
//
// A store is a directory:
//
//	DIR/VERSION            the store format version marker
//	DIR/objects/ab/<hex>   one JSON record per key, sharded by prefix
//
// Writes go to a temporary file in the objects directory and are renamed
// into place, so a crash mid-write leaves at most an orphan temp file,
// never a torn record; a record that fails to decode is treated as absent
// and recomputed. Opening a store whose VERSION differs resets it — a
// cache is disposable by definition, and stale-format records must never
// be consulted.
//
// # Interaction with the run journal
//
// The journal (internal/journal) and the cache answer different questions:
// the journal makes *one run* durable under a single (program, options)
// fingerprint and is authoritative for it; the cache carries verdicts
// *across* program edits. Callers consult the journal first — a journaled
// unit replays from the journal and is copied into the cache — and fall
// back to the cache, journaling any cache hit so the run stays resumable.
//
// All methods are nil-receiver safe, mirroring the journal, so pipeline
// stages thread a possibly-absent cache without branching.
package vcache

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Version is the store format version; a directory written by a different
// version is reset on Open.
const Version = "wcet-vcache-1\n"

// Key is a 256-bit content address.
type Key [sha256.Size]byte

// String renders the key in hex (the on-disk object name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Hasher folds typed values into a Key. Every value is written with a
// fixed-width or length-prefixed encoding, so two different value
// sequences cannot collide by concatenation.
type Hasher struct {
	h   hash.Hash
	buf [8]byte
}

// NewKey starts a key digest under a version tag; bumping the tag retires
// every record keyed under the old one without touching the store.
func NewKey(version string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.Str(version)
	return h
}

// Str folds a length-prefixed string.
func (h *Hasher) Str(s string) {
	h.Int(int64(len(s)))
	io.WriteString(h.h, s)
}

// Int folds a fixed-width integer.
func (h *Hasher) Int(v int64) {
	binary.LittleEndian.PutUint64(h.buf[:], uint64(v))
	h.h.Write(h.buf[:])
}

// Bool folds one byte.
func (h *Hasher) Bool(b bool) {
	if b {
		h.h.Write([]byte{1})
	} else {
		h.h.Write([]byte{0})
	}
}

// Float folds a float64 by its IEEE-754 bits.
func (h *Hasher) Float(v float64) { h.Int(int64(math.Float64bits(v))) }

// Writer exposes the underlying hash as an io.Writer, for streaming
// encoders such as tsys.Model.WriteDigest.
func (h *Hasher) Writer() io.Writer { return h.h }

// Sum finalises the key.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// Counters is a snapshot of the store's traffic. Hits and Misses are
// deterministic given a fixed cache state (every lookup is keyed by pure
// program+options content); the byte counts follow the record sizes.
type Counters struct {
	Hits, Misses            int64
	BytesRead, BytesWritten int64
}

// Sub returns the delta c − prev, for exporting one run's traffic from a
// long-lived store.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Hits:         c.Hits - prev.Hits,
		Misses:       c.Misses - prev.Misses,
		BytesRead:    c.BytesRead - prev.BytesRead,
		BytesWritten: c.BytesWritten - prev.BytesWritten,
	}
}

// Store is one open verdict cache. The zero value and the nil pointer are
// inert: every method on a nil *Store is a no-op miss, so call sites
// thread a possibly-absent cache without branching.
type Store struct {
	dir string

	hits, misses            atomic.Int64
	bytesRead, bytesWritten atomic.Int64

	// mu serialises Put's check-then-write; concurrent readers need no
	// lock (records are immutable once renamed into place).
	mu sync.Mutex
}

// Open opens (or creates) the store rooted at dir. A version mismatch —
// the directory was written by an older format — resets the store to
// empty rather than consulting unreadable records.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vcache: %w", err)
	}
	vfile := filepath.Join(dir, "VERSION")
	if data, err := os.ReadFile(vfile); err == nil {
		if string(data) != Version {
			if err := os.RemoveAll(filepath.Join(dir, "objects")); err != nil {
				return nil, fmt.Errorf("vcache: resetting stale store: %w", err)
			}
			if err := os.WriteFile(vfile, []byte(Version), 0o644); err != nil {
				return nil, fmt.Errorf("vcache: %w", err)
			}
		}
	} else {
		if err := os.WriteFile(vfile, []byte(Version), 0o644); err != nil {
			return nil, fmt.Errorf("vcache: %w", err)
		}
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("vcache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

func (s *Store) objectPath(k Key) string {
	name := k.String()
	return filepath.Join(s.dir, "objects", name[:2], name[2:])
}

// Get decodes the record stored under k into v, reporting whether a
// record existed and decoded cleanly. A missing or corrupted record is a
// miss — the unit is recomputed rather than trusted.
func (s *Store) Get(k Key, v any) bool {
	if s == nil {
		return false
	}
	data, err := os.ReadFile(s.objectPath(k))
	if err != nil || json.Unmarshal(data, v) != nil {
		s.misses.Add(1)
		return false
	}
	s.hits.Add(1)
	s.bytesRead.Add(int64(len(data)))
	return true
}

// Put stores v under k with a deterministic JSON encoding. Records are
// content-addressed, so the first write wins and re-putting a key is a
// no-op; the write itself is tmp+rename atomic, so a crash never leaves a
// torn record. A full disk is an infrastructure problem for the store's
// owner, reported but never fatal to the analysis.
func (s *Store) Put(k Key, v any) error {
	if s == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("vcache: encoding %s: %w", k, err)
	}
	path := s.objectPath(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("vcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("vcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("vcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("vcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("vcache: %w", err)
	}
	s.bytesWritten.Add(int64(len(data)))
	return nil
}

// Len walks the store and counts records (for tests and diagnostics).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	filepath.WalkDir(filepath.Join(s.dir, "objects"), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Base(path)[0] != '.' {
			n++
		}
		return nil
	})
	return n
}

// Counters snapshots the store's traffic since Open.
func (s *Store) Counters() Counters {
	if s == nil {
		return Counters{}
	}
	return Counters{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
	}
}

// ---------------------------------------------------------------------------
// Context plumbing — the cache rides the analysis context exactly like the
// journal, the fault injector and the observer.

type ctxKey struct{}

// With attaches a store to the context; nil detaches.
func With(ctx context.Context, s *Store) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// From retrieves the context's store, or nil.
func From(ctx context.Context) *Store {
	s, _ := ctx.Value(ctxKey{}).(*Store)
	return s
}
