package ga

import (
	"testing"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/interp"
	"wcet/internal/paths"
)

type fixture struct {
	file *ast.File
	g    *cfg.Graph
	m    *interp.Machine
}

func setup(t *testing.T, src, name string) *fixture {
	t.Helper()
	f, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatalf("sem: %v", err)
	}
	g, err := cfg.Build(f.Func(name))
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return &fixture{file: f, g: g, m: interp.New(f, interp.Options{})}
}

func (fx *fixture) global(name string) *ast.VarDecl {
	for _, g := range fx.file.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

func pathWithStmt(t *testing.T, fx *fixture, stmt string) paths.Path {
	t.Helper()
	ps, err := paths.Enumerate(cfg.WholeFunction(fx.g), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		for _, id := range p.Blocks {
			for _, item := range fx.g.Node(id).Items {
				if ast.PrintStmt(item) == stmt {
					return p
				}
			}
		}
	}
	t.Fatalf("no path contains %q", stmt)
	return paths.Path{}
}

func TestDomainOf(t *testing.T) {
	f, err := parser.ParseFile("t.c", `
/*@ range 0 2 */ int sel;
char c;
unsigned char u;
`)
	if err != nil {
		t.Fatal(err)
	}
	v := DomainOf(f.Globals[0])
	if v.Lo != 0 || v.Hi != 2 {
		t.Errorf("annotated domain = [%d,%d], want [0,2]", v.Lo, v.Hi)
	}
	v = DomainOf(f.Globals[1])
	if v.Lo != -128 || v.Hi != 127 {
		t.Errorf("char domain = [%d,%d]", v.Lo, v.Hi)
	}
	v = DomainOf(f.Globals[2])
	if v.Lo != 0 || v.Hi != 255 {
		t.Errorf("uchar domain = [%d,%d]", v.Lo, v.Hi)
	}
}

func TestFindsNeedleEquality(t *testing.T) {
	// A single equality against a 16-bit constant: the classic case where
	// random testing fails and branch distance shines.
	fx := setup(t, `
int a, r;
int f(void) {
    if (a == 12345) { r = 1; } else { r = 0; }
    return r;
}`, "f")
	target := pathWithStmt(t, fx, "r = 1;")
	res := Search(fx.g, fx.m, []Variable{DomainOf(fx.global("a"))}, target, interp.Env{}, Config{Seed: 1})
	if !res.Found {
		t.Fatalf("GA failed to find a == 12345 (best fitness %v after %d evals)",
			res.Stats.Best, res.Stats.Evaluations)
	}
	if got := res.Env[fx.global("a")]; got != 12345 {
		t.Errorf("found a = %d, want 12345", got)
	}
}

func TestFindsNestedConjunction(t *testing.T) {
	fx := setup(t, `
int a, b, r;
int f(void) {
    r = 0;
    if (a > 1000) {
        if (b == a + 7) {
            r = 1;
        }
    }
    return r;
}`, "f")
	target := pathWithStmt(t, fx, "r = 1;")
	res := Search(fx.g, fx.m,
		[]Variable{DomainOf(fx.global("a")), DomainOf(fx.global("b"))},
		target, interp.Env{}, Config{Seed: 7, MaxGens: 400, Stagnation: 120})
	if !res.Found {
		t.Fatalf("GA failed nested conjunction (best %v)", res.Stats.Best)
	}
	a := res.Env[fx.global("a")]
	b := res.Env[fx.global("b")]
	if !(a > 1000 && b == a+7) {
		t.Errorf("solution a=%d b=%d violates predicate", a, b)
	}
}

func TestRespectsBaseEnv(t *testing.T) {
	// state is not searched; only sel is. The target needs state == 3,
	// provided by base.
	fx := setup(t, `
int state, sel, r;
int f(void) {
    r = 0;
    if (state == 3) {
        if (sel == 1) { r = 1; }
    }
    return r;
}`, "f")
	target := pathWithStmt(t, fx, "r = 1;")
	base := interp.Env{fx.global("state"): 3}
	res := Search(fx.g, fx.m, []Variable{{Decl: fx.global("sel"), Lo: 0, Hi: 2}},
		target, base, Config{Seed: 3})
	if !res.Found {
		t.Fatal("GA failed with fixed state")
	}
	if res.Env[fx.global("sel")] != 1 {
		t.Errorf("sel = %d, want 1", res.Env[fx.global("sel")])
	}
}

func TestInfeasibleStagnates(t *testing.T) {
	fx := setup(t, `
int a, r;
int f(void) {
    r = 0;
    if (a > 5) {
        if (a < 3) { r = 1; }
    }
    return r;
}`, "f")
	target := pathWithStmt(t, fx, "r = 1;")
	res := Search(fx.g, fx.m, []Variable{DomainOf(fx.global("a"))},
		target, interp.Env{}, Config{Seed: 5, MaxGens: 60, Stagnation: 15})
	if res.Found {
		t.Error("GA claims to cover an infeasible path")
	}
	if res.Stats.Best <= 0 {
		t.Error("best fitness for infeasible path must stay positive")
	}
}

func TestOnTraceObservesEveryEvaluation(t *testing.T) {
	fx := setup(t, `
int a, r;
int f(void) { if (a == 77) { r = 1; } return r; }`, "f")
	target := pathWithStmt(t, fx, "r = 1;")
	count := 0
	conf := Config{Seed: 2, OnTrace: func(env interp.Env, tr *interp.Trace) { count++ }}
	res := Search(fx.g, fx.m, []Variable{DomainOf(fx.global("a"))}, target, interp.Env{}, conf)
	if count != res.Stats.Evaluations {
		t.Errorf("OnTrace fired %d times, evals = %d", count, res.Stats.Evaluations)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	fx := setup(t, `
int a, r;
int f(void) { if (a == 4242) { r = 1; } return r; }`, "f")
	target := pathWithStmt(t, fx, "r = 1;")
	r1 := Search(fx.g, fx.m, []Variable{DomainOf(fx.global("a"))}, target, interp.Env{}, Config{Seed: 11})
	r2 := Search(fx.g, fx.m, []Variable{DomainOf(fx.global("a"))}, target, interp.Env{}, Config{Seed: 11})
	if r1.Stats.Evaluations != r2.Stats.Evaluations || r1.Found != r2.Found {
		t.Errorf("same seed diverged: %+v vs %+v", r1.Stats, r2.Stats)
	}
}
