// Package ga implements search-based (heuristic) test-data generation with a
// genetic algorithm, the first stage of the paper's hybrid generator.
//
// The fitness function is the classic approach-level + normalised branch
// distance objective of Tracey et al.; the paper cites the same framework
// and expects heuristics to find more than 90% of the required test data
// before the model checker is consulted for the remainder.
package ga

import (
	"math/rand"

	"wcet/internal/cc/ast"
	"wcet/internal/cfg"
	"wcet/internal/interp"
	"wcet/internal/obs"
	"wcet/internal/paths"
)

// Variable is one searched input dimension with its domain.
type Variable struct {
	Decl   *ast.VarDecl
	Lo, Hi int64
}

// DomainOf derives the search domain of a declaration: the range annotation
// when present, the type's representable range otherwise.
func DomainOf(d *ast.VarDecl) Variable {
	if d.Rng != nil {
		return Variable{Decl: d, Lo: d.Rng.Lo, Hi: d.Rng.Hi}
	}
	lo, hi := d.Type.MinMax()
	return Variable{Decl: d, Lo: lo, Hi: hi}
}

// Config tunes the search.
type Config struct {
	// Pop is the population size (default 64).
	Pop int
	// MaxGens bounds the generations per target (default 200).
	MaxGens int
	// Stagnation stops the search after this many generations without
	// fitness improvement (default 40) — the paper's "coverage bound".
	Stagnation int
	// MutRate is the per-gene mutation probability (default 0.2).
	MutRate float64
	// CrossRate is the crossover probability (default 0.9).
	CrossRate float64
	// Tournament is the selection tournament size (default 3).
	Tournament int
	// Seed makes runs reproducible.
	Seed int64
	// MaxEvaluations caps the total fitness evaluations of one search
	// (0 = no cap beyond MaxGens × Pop) — the budget knob for the
	// heuristic stage. The cap is checked deterministically between
	// evaluations, so a capped search is still a pure function of its
	// arguments and Seed.
	MaxEvaluations int
	// Stop is polled between generations; when it returns true the search
	// stops early and reports not-found unless a covering candidate was
	// already seen. It exists for cooperative cancellation — unlike
	// MaxEvaluations, an externally triggered Stop makes the result
	// timing-dependent, so drivers only use it on paths that abandon the
	// whole analysis anyway.
	Stop func() bool
	// Obs receives volatile observability only: GA searches run
	// speculatively under the hybrid generator — whether a given search
	// runs at all depends on worker scheduling — so nothing a single
	// Search records may enter a canonical export. Deterministic GA
	// effort is the coverage board's counted fold, recorded by the
	// generator after the merge. nil disables recording.
	Obs *obs.Observer
	// OnTrace observes every executed candidate (for incidental coverage).
	// It is called synchronously from the goroutine running Search, but
	// drivers may run several Searches concurrently: a callback shared
	// across Search calls must either be safe for concurrent use or, like
	// the hybrid generator, capture only per-search state. It must not
	// influence the search — Search's result is a pure function of its
	// arguments and Seed.
	OnTrace func(env interp.Env, tr *interp.Trace)
}

func (c Config) withDefaults() Config {
	if c.Pop == 0 {
		c.Pop = 64
	}
	if c.MaxGens == 0 {
		c.MaxGens = 200
	}
	if c.Stagnation == 0 {
		c.Stagnation = 40
	}
	if c.MutRate == 0 {
		c.MutRate = 0.2
	}
	if c.CrossRate == 0 {
		c.CrossRate = 0.9
	}
	if c.Tournament == 0 {
		c.Tournament = 3
	}
	return c
}

// Stats reports search effort.
type Stats struct {
	Evaluations int
	Generations int
	Best        float64
}

// Result of one search.
type Result struct {
	// Env is the winning input assignment (inputs only) when Found.
	Env   interp.Env
	Found bool
	Stats Stats
}

// Search looks for inputs that drive execution down the target path.
// base supplies values for non-input variables (state); it is cloned per
// run. Runtime faults (division by zero on a candidate) score worst rather
// than aborting the search.
func Search(g *cfg.Graph, m *interp.Machine, inputs []Variable,
	target paths.Path, base interp.Env, conf Config) Result {

	conf = conf.withDefaults()
	sp := conf.Obs.SpanV("ga", "ga.search", "path", target.Key())
	rng := rand.New(rand.NewSource(conf.Seed))
	n := len(inputs)

	eval := func(genes []int64) float64 {
		env := base.Clone()
		for i, v := range inputs {
			env[v.Decl] = genes[i]
		}
		tr, err := m.Run(g, env)
		if err != nil {
			return float64(len(target.Blocks)) + 2
		}
		if conf.OnTrace != nil {
			conf.OnTrace(env, tr)
		}
		return paths.Fitness(g, tr, target)
	}

	randomGenes := func() []int64 {
		gs := make([]int64, n)
		for i, v := range inputs {
			gs[i] = randomIn(rng, v.Lo, v.Hi)
		}
		return gs
	}

	pop := make([]indiv, conf.Pop)
	stats := Stats{}
	best := indiv{fit: 1e18}
	// exhausted reports the evaluation budget spent; checked between
	// evaluations so capped runs stay deterministic.
	exhausted := func() bool {
		return conf.MaxEvaluations > 0 && stats.Evaluations >= conf.MaxEvaluations
	}
	for i := range pop {
		if exhausted() {
			pop = pop[:i]
			break
		}
		pop[i] = indiv{genes: randomGenes()}
		pop[i].fit = eval(pop[i].genes)
		stats.Evaluations++
		if pop[i].fit < best.fit {
			best = cloneIndiv(pop[i])
		}
	}

	stagnant := 0
	for gen := 0; gen < conf.MaxGens && best.fit > 0 && stagnant < conf.Stagnation &&
		len(pop) > 0 && !exhausted() && !(conf.Stop != nil && conf.Stop()); gen++ {
		stats.Generations++
		next := make([]indiv, 0, conf.Pop)
		// Elitism: carry the best through unchanged.
		next = append(next, cloneIndiv(best))
		for len(next) < conf.Pop && !exhausted() {
			a := tournament(rng, pop, conf.Tournament)
			b := tournament(rng, pop, conf.Tournament)
			child := crossover(rng, a.genes, b.genes, conf.CrossRate)
			mutate(rng, child, inputs, conf.MutRate)
			ind := indiv{genes: child}
			ind.fit = eval(ind.genes)
			stats.Evaluations++
			next = append(next, ind)
		}
		pop = next
		improved := false
		for i := range pop {
			if pop[i].fit < best.fit {
				best = cloneIndiv(pop[i])
				improved = true
			}
		}
		if improved {
			stagnant = 0
		} else {
			stagnant++
		}
	}
	stats.Best = best.fit

	res := Result{Stats: stats}
	if best.fit == 0 {
		env := interp.Env{}
		for i, v := range inputs {
			env[v.Decl] = best.genes[i]
		}
		res.Env = env
		res.Found = true
	}
	conf.Obs.CountV("ga.searches", 1)
	conf.Obs.CountV("ga.evaluations.speculative", int64(stats.Evaluations))
	sp.End("found", res.Found,
		"evals", stats.Evaluations, "gens", stats.Generations)
	return res
}

// indiv is one population member.
type indiv struct {
	genes []int64
	fit   float64
}

func cloneIndiv(in indiv) indiv {
	return indiv{genes: append([]int64(nil), in.genes...), fit: in.fit}
}

func randomIn(rng *rand.Rand, lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	span := uint64(hi - lo + 1)
	return lo + int64(rng.Uint64()%span)
}

func tournament(rng *rand.Rand, pop []indiv, k int) indiv {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.fit < best.fit {
			best = c
		}
	}
	return best
}

func crossover(rng *rand.Rand, a, b []int64, rate float64) []int64 {
	child := append([]int64(nil), a...)
	if rng.Float64() >= rate || len(a) == 0 {
		return child
	}
	cut := rng.Intn(len(a))
	for i := cut; i < len(a); i++ {
		child[i] = b[i]
	}
	return child
}

func mutate(rng *rand.Rand, genes []int64, vars []Variable, rate float64) {
	for i := range genes {
		if rng.Float64() >= rate {
			continue
		}
		v := vars[i]
		switch rng.Intn(3) {
		case 0: // random reset
			genes[i] = randomIn(rng, v.Lo, v.Hi)
		case 1: // small creep, the workhorse for branch distances
			delta := int64(rng.Intn(7)) - 3
			genes[i] = clamp(genes[i]+delta, v.Lo, v.Hi)
		case 2: // bit flip within the domain width
			bit := uint(rng.Intn(16))
			genes[i] = clamp(genes[i]^(1<<bit), v.Lo, v.Hi)
		}
	}
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
