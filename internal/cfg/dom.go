package cfg

// Dominators computes the immediate-dominator array for the graph using the
// Cooper–Harvey–Kennedy iterative algorithm. idom[Entry] == Entry; nodes
// unreachable from Entry (none after prune) get NoNode.
func (g *Graph) Dominators() []NodeID {
	order := g.ReversePostorder()
	rpoIndex := make([]int, len(g.Nodes))
	for i := range rpoIndex {
		rpoIndex[i] = -1
	}
	for i, id := range order {
		rpoIndex[id] = i
	}
	idom := make([]NodeID, len(g.Nodes))
	for i := range idom {
		idom[i] = NoNode
	}
	idom[g.Entry] = g.Entry

	intersect := func(a, b NodeID) NodeID {
		for a != b {
			for rpoIndex[a] > rpoIndex[b] {
				a = idom[a]
			}
			for rpoIndex[b] > rpoIndex[a] {
				b = idom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, id := range order {
			if id == g.Entry {
				continue
			}
			var newIdom NodeID = NoNode
			for _, p := range g.Preds(id) {
				if idom[p] == NoNode {
					continue
				}
				if newIdom == NoNode {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != NoNode && idom[id] != newIdom {
				idom[id] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// ReversePostorder returns the nodes reachable from Entry in reverse
// postorder of a depth-first traversal.
func (g *Graph) ReversePostorder() []NodeID {
	seen := make([]bool, len(g.Nodes))
	var post []NodeID
	var dfs func(NodeID)
	dfs = func(id NodeID) {
		seen[id] = true
		for _, e := range g.Succs(id) {
			if !seen[e.To] {
				dfs(e.To)
			}
		}
		post = append(post, id)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// DomTree converts an idom array into children lists.
func DomTree(idom []NodeID) [][]NodeID {
	children := make([][]NodeID, len(idom))
	for id, d := range idom {
		if d == NoNode || NodeID(id) == d {
			continue
		}
		children[d] = append(children[d], NodeID(id))
	}
	return children
}

// DomSubtree returns the set of nodes dominated by root (root included).
func DomSubtree(idom []NodeID, root NodeID) map[NodeID]bool {
	children := DomTree(idom)
	set := map[NodeID]bool{}
	var walk func(NodeID)
	walk = func(id NodeID) {
		set[id] = true
		for _, c := range children[id] {
			walk(c)
		}
	}
	walk(root)
	return set
}

// BackEdges returns the back edges of the graph (edges whose target
// dominates their source), which identify natural loops.
func (g *Graph) BackEdges() []Edge {
	idom := g.Dominators()
	dominates := func(a, b NodeID) bool {
		// Does a dominate b?
		for x := b; ; x = idom[x] {
			if x == a {
				return true
			}
			if x == idom[x] || idom[x] == NoNode {
				return x == a
			}
		}
	}
	var back []Edge
	for _, n := range g.Nodes {
		for _, e := range g.Succs(n.ID) {
			if dominates(e.To, e.From) {
				back = append(back, e)
			}
		}
	}
	return back
}
