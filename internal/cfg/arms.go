package cfg

// Arm is a structural region recorded during CFG construction: the block set
// of a branch arm (then/else/case/default) or loop body, in the hierarchy
// induced by the abstract syntax tree. The paper partitions "following the
// abstract syntax tree": arms are exactly the program-segment candidates.
type Arm struct {
	// Kind is "function", "then", "else", "case", "default" or "loop-body".
	Kind string
	// Entry is the block the arm is entered through.
	Entry NodeID
	// Set is the arm's block set (Entry included).
	Set map[NodeID]bool
	// Children are the arms nested directly inside this one.
	Children []*Arm
}

// Region returns the arm as a countable region of g.
func (a *Arm) Region(g *Graph) Region {
	return Region{G: g, Entry: a.Entry, Set: a.Set}
}

// Walk visits the arm tree pre-order.
func (a *Arm) Walk(f func(*Arm)) {
	f(a)
	for _, c := range a.Children {
		c.Walk(f)
	}
}

// SingleEntry reports whether the arm is a valid program segment of g: every
// edge from outside the block set enters at Entry, and there is exactly one
// such edge (the function arm is entered by the program, which also counts
// as one entry).
func (a *Arm) SingleEntry(g *Graph) bool {
	entries := 0
	for _, n := range g.Nodes {
		if a.Set[n.ID] {
			continue
		}
		for _, e := range g.Succs(n.ID) {
			if !a.Set[e.To] {
				continue
			}
			if e.To != a.Entry {
				return false
			}
			entries++
		}
	}
	if a.Kind == "function" {
		return true
	}
	return entries == 1
}

// armRecorder tracks arm construction inside the builder. Blocks created
// while an arm is being built are assigned to it by contiguous id span.
type armRecorder struct {
	root  *Arm
	stack []*Arm
	spans []int // span start per stack entry
	extra [][]NodeID
}

func (r *armRecorder) push(kind string, entry NodeID, nextID int, extra ...NodeID) {
	arm := &Arm{Kind: kind, Entry: entry, Set: map[NodeID]bool{}}
	if len(r.stack) == 0 {
		r.root = arm
	} else {
		top := r.stack[len(r.stack)-1]
		top.Children = append(top.Children, arm)
	}
	r.stack = append(r.stack, arm)
	r.spans = append(r.spans, nextID)
	r.extra = append(r.extra, extra)
}

func (r *armRecorder) pop(nextID int) {
	arm := r.stack[len(r.stack)-1]
	start := r.spans[len(r.spans)-1]
	arm.Set[arm.Entry] = true
	for id := start; id < nextID; id++ {
		arm.Set[NodeID(id)] = true
	}
	for _, id := range r.extra[len(r.extra)-1] {
		arm.Set[id] = true
	}
	r.stack = r.stack[:len(r.stack)-1]
	r.spans = r.spans[:len(r.spans)-1]
	r.extra = r.extra[:len(r.extra)-1]
}

// remap rewrites arm node ids after pruning; arms whose entry vanished are
// removed (their children are lifted into the parent).
func remapArms(a *Arm, remap []NodeID) *Arm {
	newSet := map[NodeID]bool{}
	for id := range a.Set {
		if nid := remap[id]; nid != NoNode {
			newSet[nid] = true
		}
	}
	a.Set = newSet
	var kids []*Arm
	for _, c := range a.Children {
		c = remapArms(c, remap)
		if c == nil {
			continue
		}
		if remap[c.Entry] == NoNode {
			// Dead arm: lift surviving grandchildren.
			kids = append(kids, c.Children...)
			continue
		}
		c.Entry = remap[c.Entry]
		kids = append(kids, c)
	}
	a.Children = kids
	if a.Kind != "function" && remap[a.Entry] == NoNode {
		return a // caller inspects entry and lifts children
	}
	if a.Kind == "function" {
		a.Entry = remap[a.Entry]
	}
	return a
}
