// Package cfg builds and analyses control flow graphs for the C subset.
//
// The construction mirrors the CFG of the paper's Figure 1:
//
//   - Branch conditions are evaluated at the end of the basic block that
//     also holds the preceding straight-line code (no dedicated condition
//     blocks for if/switch).
//   - An if with an else arm gets a dedicated join block; the join block
//     absorbs the statements that follow the if.
//   - An if without an else branches directly to the continuation block.
//   - The function has a distinguished empty entry block, an empty epilogue
//     block (the target of every return and of falling off the end), and a
//     distinguished exit block.
//
// With these rules the paper's example program yields exactly 11 basic
// blocks, reproducing Table 1.
package cfg

import (
	"fmt"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/token"
)

// NodeID indexes a basic block within its Graph.
type NodeID int

// NoNode is the invalid node id.
const NoNode NodeID = -1

// TermKind classifies block terminators.
type TermKind int

// Terminator kinds.
const (
	TermGoto   TermKind = iota // unconditional edge
	TermBranch                 // two-way conditional
	TermSwitch                 // multi-way on a tag value
	TermReturn                 // jump to the epilogue, with optional value
	TermExit                   // the exit block's pseudo-terminator
)

// SwitchCase is one outgoing case edge of a TermSwitch.
type SwitchCase struct {
	Vals []int64 // constant labels sharing this target
	To   NodeID
}

// Term is a basic block terminator.
type Term struct {
	Kind TermKind
	// Cond is the branch condition (TermBranch).
	Cond ast.Expr
	// Tag is the switch subject (TermSwitch).
	Tag ast.Expr
	// Val is the returned expression (TermReturn), possibly nil.
	Val ast.Expr
	// To is the target of TermGoto and TermReturn.
	To NodeID
	// True and False are the TermBranch targets.
	True, False NodeID
	// Cases and Default are the TermSwitch targets.
	Cases   []SwitchCase
	Default NodeID
}

// Node is a basic block.
type Node struct {
	ID   NodeID
	Line int // line of the first instruction (0 for synthetic blocks)
	// Items are the straight-line operations of the block, each either an
	// *ast.ExprStmt or an *ast.DeclStmt (declaration with initialiser).
	Items []ast.Stmt
	Term  Term
	// LoopBound is set on loop-header blocks from /*@ loopbound n */
	// annotations (0 when absent).
	LoopBound int
	// Label is a human-readable role tag: "entry", "exit", "epilogue",
	// "join", "header", or "".
	Label string
}

// Edge identifies one control edge by its source block and outcome.
type Edge struct {
	From NodeID
	To   NodeID
	// Kind describes the outcome: "goto", "true", "false", "case", "default",
	// "return".
	Kind string
	// CaseVals holds the labels of a "case" edge.
	CaseVals []int64
}

// Graph is the CFG of one function.
type Graph struct {
	Fn    *ast.FuncDecl
	Nodes []*Node
	Entry NodeID
	Exit  NodeID
	// Epilogue is the empty return block preceding Exit.
	Epilogue NodeID
	// Arms is the root of the structural region tree recorded during
	// construction (the whole function), used by the partitioner.
	Arms *Arm

	preds [][]NodeID // computed lazily
}

// Node returns the block with the given id.
func (g *Graph) Node(id NodeID) *Node { return g.Nodes[id] }

// NumNodes reports the number of basic blocks (including entry, epilogue
// and exit).
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// Succs returns the outgoing edges of block id in a deterministic order.
func (g *Graph) Succs(id NodeID) []Edge {
	n := g.Nodes[id]
	switch n.Term.Kind {
	case TermGoto:
		return []Edge{{From: id, To: n.Term.To, Kind: "goto"}}
	case TermBranch:
		return []Edge{
			{From: id, To: n.Term.True, Kind: "true"},
			{From: id, To: n.Term.False, Kind: "false"},
		}
	case TermSwitch:
		out := make([]Edge, 0, len(n.Term.Cases)+1)
		for _, c := range n.Term.Cases {
			out = append(out, Edge{From: id, To: c.To, Kind: "case", CaseVals: c.Vals})
		}
		out = append(out, Edge{From: id, To: n.Term.Default, Kind: "default"})
		return out
	case TermReturn:
		return []Edge{{From: id, To: n.Term.To, Kind: "return"}}
	case TermExit:
		return nil
	}
	return nil
}

// Preds returns the predecessor blocks of id.
func (g *Graph) Preds(id NodeID) []NodeID {
	if g.preds == nil {
		g.preds = make([][]NodeID, len(g.Nodes))
		for _, n := range g.Nodes {
			for _, e := range g.Succs(n.ID) {
				g.preds[e.To] = append(g.preds[e.To], n.ID)
			}
		}
	}
	return g.preds[id]
}

// InEdges returns every edge whose target is id.
func (g *Graph) InEdges(id NodeID) []Edge {
	var in []Edge
	for _, n := range g.Nodes {
		for _, e := range g.Succs(n.ID) {
			if e.To == id {
				in = append(in, e)
			}
		}
	}
	return in
}

// CondBranches counts two-way and multi-way decisions in the graph.
func (g *Graph) CondBranches() int {
	n := 0
	for _, b := range g.Nodes {
		switch b.Term.Kind {
		case TermBranch:
			n++
		case TermSwitch:
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Construction

// BuildError reports a construct the CFG builder cannot translate.
type BuildError struct {
	Pos token.Pos
	Msg string
}

func (e *BuildError) Error() string { return fmt.Sprintf("%s: cfg: %s", e.Pos, e.Msg) }

type builder struct {
	g    *Graph
	arms armRecorder
	// cur is the block currently receiving items; NoNode while unreachable.
	cur NodeID
	// breakTo/continueTo are the active jump targets.
	breakTo    []NodeID
	continueTo []NodeID
}

// Build constructs the CFG of fn. The function body must be present and the
// file semantically checked (identifiers resolved, case labels constant).
func Build(fn *ast.FuncDecl) (*Graph, error) {
	if fn.Body == nil {
		return nil, &BuildError{Pos: fn.NamePos, Msg: "function has no body"}
	}
	b := &builder{g: &Graph{Fn: fn}}
	entry := b.newBlock("entry", 0)
	b.g.Entry = entry
	b.arms.push("function", entry, 0)

	first := b.newBlock("", 0)
	b.g.Nodes[entry].Term = Term{Kind: TermGoto, To: first}
	b.cur = first

	// Epilogue and exit.
	epi := b.newBlock("epilogue", 0)
	exit := b.newBlock("exit", 0)
	b.g.Epilogue = epi
	b.g.Exit = exit
	b.g.Nodes[epi].Term = Term{Kind: TermGoto, To: exit}
	b.g.Nodes[exit].Term = Term{Kind: TermExit}

	if err := b.stmts(fn.Body.Stmts); err != nil {
		return nil, err
	}
	// Fall off the end of the body.
	b.seal(Term{Kind: TermReturn, To: epi})
	b.arms.pop(len(b.g.Nodes))
	b.g.Arms = b.arms.root
	b.g.prune()
	return b.g, nil
}

// prune removes unreachable blocks and renumbers the survivors.
func (g *Graph) prune() {
	reach := make([]bool, len(g.Nodes))
	stack := []NodeID{g.Entry}
	reach[g.Entry] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Succs(id) {
			if !reach[e.To] {
				reach[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	remap := make([]NodeID, len(g.Nodes))
	var kept []*Node
	for i, n := range g.Nodes {
		if reach[i] {
			remap[i] = NodeID(len(kept))
			n.ID = remap[i]
			kept = append(kept, n)
		} else {
			remap[i] = NoNode
		}
	}
	fix := func(id NodeID) NodeID {
		if id == NoNode {
			return NoNode
		}
		return remap[id]
	}
	for _, n := range kept {
		n.Term.To = fix(n.Term.To)
		n.Term.True = fix(n.Term.True)
		n.Term.False = fix(n.Term.False)
		n.Term.Default = fix(n.Term.Default)
		for i := range n.Term.Cases {
			n.Term.Cases[i].To = fix(n.Term.Cases[i].To)
		}
	}
	g.Nodes = kept
	g.Entry = fix(g.Entry)
	g.Exit = fix(g.Exit)
	g.Epilogue = fix(g.Epilogue)
	if g.Arms != nil {
		g.Arms = remapArms(g.Arms, remap)
	}
	g.preds = nil
}

func (b *builder) newBlock(label string, line int) NodeID {
	id := NodeID(len(b.g.Nodes))
	b.g.Nodes = append(b.g.Nodes, &Node{ID: id, Label: label, Line: line})
	return id
}

// seal terminates the current block (if any) with t.
func (b *builder) seal(t Term) {
	if b.cur == NoNode {
		return
	}
	b.g.Nodes[b.cur].Term = t
	b.cur = NoNode
}

// append adds a straight-line item to the current block, opening a fresh one
// if the builder is in dead code (after break/return) — dead blocks are
// pruned afterwards.
func (b *builder) append(s ast.Stmt) {
	if b.cur == NoNode {
		b.cur = b.newBlock("", lineOf(s))
	}
	n := b.g.Nodes[b.cur]
	if n.Line == 0 {
		n.Line = lineOf(s)
	}
	n.Items = append(n.Items, s)
}

func lineOf(n ast.Node) int {
	if n == nil {
		return 0
	}
	return n.Pos().Line
}

func (b *builder) stmts(list []ast.Stmt) error {
	for _, s := range list {
		if err := b.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) error {
	switch x := s.(type) {
	case *ast.Block:
		return b.stmts(x.Stmts)
	case *ast.EmptyStmt:
		return nil
	case *ast.DeclStmt:
		// Declarations without initialisers generate no code.
		if x.Decl.Init != nil {
			b.append(x)
		}
		return nil
	case *ast.ExprStmt:
		b.append(x)
		return nil
	case *ast.IfStmt:
		return b.ifStmt(x)
	case *ast.SwitchStmt:
		return b.switchStmt(x)
	case *ast.WhileStmt:
		return b.whileStmt(x)
	case *ast.DoWhileStmt:
		return b.doWhileStmt(x)
	case *ast.ForStmt:
		return b.forStmt(x)
	case *ast.BreakStmt:
		if len(b.breakTo) == 0 {
			return &BuildError{Pos: x.BreakPos, Msg: "break outside loop/switch"}
		}
		b.seal(Term{Kind: TermGoto, To: b.breakTo[len(b.breakTo)-1]})
		return nil
	case *ast.ContinueStmt:
		if len(b.continueTo) == 0 {
			return &BuildError{Pos: x.ContinuePos, Msg: "continue outside loop"}
		}
		b.seal(Term{Kind: TermGoto, To: b.continueTo[len(b.continueTo)-1]})
		return nil
	case *ast.ReturnStmt:
		b.ensureCur(lineOf(x))
		b.seal(Term{Kind: TermReturn, Val: x.X, To: b.g.Epilogue})
		return nil
	}
	return &BuildError{Pos: s.Pos(), Msg: fmt.Sprintf("unsupported statement %T", s)}
}

func (b *builder) ensureCur(line int) {
	if b.cur == NoNode {
		b.cur = b.newBlock("", line)
	}
}

func (b *builder) ifStmt(x *ast.IfStmt) error {
	if err := checkNoSideEffects(x.Cond); err != nil {
		return err
	}
	b.ensureCur(lineOf(x))
	condBlock := b.cur

	thenEntry := b.newBlock("", lineOf(x.Then))
	if x.Else == nil {
		// No else: branch false edge goes straight to the continuation.
		cont := b.newBlock("", 0)
		b.g.Nodes[condBlock].Term = Term{Kind: TermBranch, Cond: x.Cond, True: thenEntry, False: cont}
		b.arms.push("then", thenEntry, len(b.g.Nodes))
		b.cur = thenEntry
		if err := b.stmt(x.Then); err != nil {
			return err
		}
		b.seal(Term{Kind: TermGoto, To: cont})
		b.arms.pop(len(b.g.Nodes))
		b.cur = cont
		return nil
	}
	elseEntry := b.newBlock("", lineOf(x.Else))
	join := b.newBlock("join", 0)
	b.g.Nodes[condBlock].Term = Term{Kind: TermBranch, Cond: x.Cond, True: thenEntry, False: elseEntry}
	b.arms.push("then", thenEntry, len(b.g.Nodes))
	b.cur = thenEntry
	if err := b.stmt(x.Then); err != nil {
		return err
	}
	b.seal(Term{Kind: TermGoto, To: join})
	b.arms.pop(len(b.g.Nodes))
	b.arms.push("else", elseEntry, len(b.g.Nodes))
	b.cur = elseEntry
	if err := b.stmt(x.Else); err != nil {
		return err
	}
	b.seal(Term{Kind: TermGoto, To: join})
	b.arms.pop(len(b.g.Nodes))
	// The join block absorbs the continuation.
	b.cur = join
	return nil
}

func (b *builder) switchStmt(x *ast.SwitchStmt) error {
	if err := checkNoSideEffects(x.Tag); err != nil {
		return err
	}
	b.ensureCur(lineOf(x))
	tagBlock := b.cur
	b.cur = NoNode

	cont := b.newBlock("join", 0)
	term := Term{Kind: TermSwitch, Tag: x.Tag, Default: cont}

	// First pass: create clause entry blocks.
	entries := make([]NodeID, len(x.Clauses))
	for i, cl := range x.Clauses {
		entries[i] = b.newBlock("", lineOf(cl))
		if cl.Vals == nil {
			term.Default = entries[i]
		} else {
			vals := make([]int64, 0, len(cl.Vals))
			for _, v := range cl.Vals {
				cv, err := constVal(v)
				if err != nil {
					return &BuildError{Pos: v.Pos(), Msg: "non-constant case label"}
				}
				vals = append(vals, cv)
			}
			term.Cases = append(term.Cases, SwitchCase{Vals: vals, To: entries[i]})
		}
	}
	b.g.Nodes[tagBlock].Term = term

	// Second pass: clause bodies, with fallthrough to the next entry.
	b.breakTo = append(b.breakTo, cont)
	for i, cl := range x.Clauses {
		kind := "case"
		if cl.Vals == nil {
			kind = "default"
		}
		b.arms.push(kind, entries[i], len(b.g.Nodes))
		b.cur = entries[i]
		if err := b.stmts(cl.Body); err != nil {
			return err
		}
		fallTo := cont
		if i+1 < len(x.Clauses) {
			fallTo = entries[i+1]
		}
		b.seal(Term{Kind: TermGoto, To: fallTo})
		b.arms.pop(len(b.g.Nodes))
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.cur = cont
	return nil
}

func (b *builder) whileStmt(x *ast.WhileStmt) error {
	if err := checkNoSideEffects(x.Cond); err != nil {
		return err
	}
	header := b.newBlock("header", lineOf(x))
	b.g.Nodes[header].LoopBound = x.Bound
	b.seal(Term{Kind: TermGoto, To: header})

	body := b.newBlock("", lineOf(x.Body))
	cont := b.newBlock("", 0)
	b.g.Nodes[header].Term = Term{Kind: TermBranch, Cond: x.Cond, True: body, False: cont}

	b.breakTo = append(b.breakTo, cont)
	b.continueTo = append(b.continueTo, header)
	b.arms.push("loop-body", body, len(b.g.Nodes))
	b.cur = body
	if err := b.stmt(x.Body); err != nil {
		return err
	}
	b.seal(Term{Kind: TermGoto, To: header})
	b.arms.pop(len(b.g.Nodes))
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
	b.cur = cont
	return nil
}

func (b *builder) doWhileStmt(x *ast.DoWhileStmt) error {
	if err := checkNoSideEffects(x.Cond); err != nil {
		return err
	}
	body := b.newBlock("header", lineOf(x))
	b.g.Nodes[body].LoopBound = x.Bound
	b.seal(Term{Kind: TermGoto, To: body})

	latch := b.newBlock("", 0) // evaluates the condition
	cont := b.newBlock("", 0)

	b.breakTo = append(b.breakTo, cont)
	b.continueTo = append(b.continueTo, latch)
	b.arms.push("loop-body", body, len(b.g.Nodes), latch)
	b.cur = body
	if err := b.stmt(x.Body); err != nil {
		return err
	}
	b.seal(Term{Kind: TermGoto, To: latch})
	b.arms.pop(len(b.g.Nodes))
	b.g.Nodes[latch].Term = Term{Kind: TermBranch, Cond: x.Cond, True: body, False: cont}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
	b.cur = cont
	return nil
}

func (b *builder) forStmt(x *ast.ForStmt) error {
	if x.Cond != nil {
		if err := checkNoSideEffects(x.Cond); err != nil {
			return err
		}
	}
	if x.Init != nil {
		if err := b.stmt(x.Init); err != nil {
			return err
		}
	}
	header := b.newBlock("header", lineOf(x))
	b.g.Nodes[header].LoopBound = x.Bound
	b.seal(Term{Kind: TermGoto, To: header})

	body := b.newBlock("", lineOf(x.Body))
	cont := b.newBlock("", 0)
	post := b.newBlock("", 0) // continue target evaluating the post clause
	if x.Cond != nil {
		b.g.Nodes[header].Term = Term{Kind: TermBranch, Cond: x.Cond, True: body, False: cont}
	} else {
		b.g.Nodes[header].Term = Term{Kind: TermGoto, To: body}
	}

	b.breakTo = append(b.breakTo, cont)
	b.continueTo = append(b.continueTo, post)
	b.arms.push("loop-body", body, len(b.g.Nodes), post)
	b.cur = body
	if err := b.stmt(x.Body); err != nil {
		return err
	}
	b.seal(Term{Kind: TermGoto, To: post})
	b.cur = post
	if x.Post != nil {
		b.append(&ast.ExprStmt{X: x.Post})
	}
	b.seal(Term{Kind: TermGoto, To: header})
	b.arms.pop(len(b.g.Nodes))
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
	b.cur = cont
	return nil
}

func constVal(e ast.Expr) (int64, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Val, nil
	case *ast.UnaryExpr:
		if x.Op == token.MINUS {
			v, err := constVal(x.X)
			return -v, err
		}
	case *ast.BinaryExpr:
		a, err1 := constVal(x.X)
		c, err2 := constVal(x.Y)
		if err1 != nil || err2 != nil {
			break
		}
		switch x.Op {
		case token.PLUS:
			return a + c, nil
		case token.MINUS:
			return a - c, nil
		case token.STAR:
			return a * c, nil
		}
	}
	return 0, fmt.Errorf("not constant")
}

// checkNoSideEffects rejects conditions containing assignments, ++/-- or
// calls: decisions must be repeatable so that path forcing and measurement
// observe the same control flow.
func checkNoSideEffects(e ast.Expr) error {
	var bad ast.Node
	ast.Walk(e, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.AssignExpr:
			bad = n
			return false
		case *ast.UnaryExpr:
			u := n.(*ast.UnaryExpr)
			if u.Op == token.INC || u.Op == token.DEC {
				bad = n
				return false
			}
		case *ast.CallExpr:
			if n.(*ast.CallExpr).Cast == nil {
				bad = n
				return false
			}
		}
		return true
	})
	if bad != nil {
		return &BuildError{Pos: bad.Pos(), Msg: "condition must be side-effect free"}
	}
	return nil
}
