package cfg

import (
	"fmt"
	"strings"

	"wcet/internal/cc/ast"
)

// Dot renders the graph in Graphviz DOT syntax. Blocks are labelled with
// their id, role and first-instruction line, matching the node labelling of
// the paper's Figure 1.
func (g *Graph) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Fn.Name)
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range g.Nodes {
		label := fmt.Sprintf("B%d", n.ID)
		switch {
		case n.ID == g.Entry:
			label = "start"
		case n.ID == g.Exit:
			label = "end"
		case n.Label == "epilogue":
			label = fmt.Sprintf("B%d (epilogue)", n.ID)
		case n.Line > 0:
			label = fmt.Sprintf("B%d @%d", n.ID, n.Line)
		}
		var items []string
		for _, it := range n.Items {
			items = append(items, ast.PrintStmt(it))
		}
		text := label
		if len(items) > 0 {
			text += "\\n" + strings.Join(items, "\\n")
		}
		if n.Term.Kind == TermBranch {
			text += "\\nif " + ast.ExprString(n.Term.Cond)
		}
		if n.Term.Kind == TermSwitch {
			text += "\\nswitch " + ast.ExprString(n.Term.Tag)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", n.ID, escapeDot(text))
	}
	for _, n := range g.Nodes {
		for _, e := range g.Succs(n.ID) {
			attr := ""
			switch e.Kind {
			case "true":
				attr = ` [label="T"]`
			case "false":
				attr = ` [label="F"]`
			case "case":
				attr = fmt.Sprintf(` [label="%v"]`, e.CaseVals)
			case "default":
				attr = ` [label="def"]`
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", e.From, e.To, attr)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
