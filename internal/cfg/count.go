package cfg

import (
	"math"
	"math/big"
)

// Count is a path count: a non-negative big integer or infinity (for
// unbounded loops). Counts grow multiplicatively with program size, so the
// end-to-end measurement counts of Figure 3 overflow any fixed-width type.
type Count struct {
	inf bool
	v   *big.Int
}

// NewCount returns a finite count.
func NewCount(v int64) Count { return Count{v: big.NewInt(v)} }

// Inf returns the infinite count.
func Inf() Count { return Count{inf: true} }

// IsInf reports whether the count is infinite.
func (c Count) IsInf() bool { return c.inf }

// Int returns the big integer value; nil when infinite.
func (c Count) Int() *big.Int {
	if c.inf {
		return nil
	}
	if c.v == nil {
		return big.NewInt(0)
	}
	return c.v
}

// Int64 returns the value clamped to int64 (max int64 when infinite or too
// large).
func (c Count) Int64() int64 {
	const max = int64(^uint64(0) >> 1)
	if c.inf {
		return max
	}
	if c.v == nil {
		return 0
	}
	if !c.v.IsInt64() {
		return max
	}
	return c.v.Int64()
}

// Float64 returns the value as a float (inf when infinite).
func (c Count) Float64() float64 {
	if c.inf {
		return math.Inf(1)
	}
	f, _ := new(big.Float).SetInt(c.Int()).Float64()
	return f
}

// Add returns c + d.
func (c Count) Add(d Count) Count {
	if c.inf || d.inf {
		return Inf()
	}
	return Count{v: new(big.Int).Add(c.Int(), d.Int())}
}

// Mul returns c × d.
func (c Count) Mul(d Count) Count {
	if c.inf || d.inf {
		// 0 × ∞ is taken as ∞ here: an unbounded loop around dead code is
		// still an unbounded region.
		return Inf()
	}
	return Count{v: new(big.Int).Mul(c.Int(), d.Int())}
}

// Cmp compares c with the integer n: -1, 0, +1.
func (c Count) Cmp(n int64) int {
	if c.inf {
		return 1
	}
	return c.Int().Cmp(big.NewInt(n))
}

// CmpCount compares two counts.
func (c Count) CmpCount(d Count) int {
	switch {
	case c.inf && d.inf:
		return 0
	case c.inf:
		return 1
	case d.inf:
		return -1
	}
	return c.Int().Cmp(d.Int())
}

// String renders the count ("inf" when infinite).
func (c Count) String() string {
	if c.inf {
		return "inf"
	}
	return c.Int().String()
}

// ParseCount parses a String rendering back into a Count — "inf" or a
// decimal integer. It is the inverse needed to round-trip counts through a
// run journal.
func ParseCount(s string) (Count, bool) {
	if s == "inf" {
		return Inf(), true
	}
	v, ok := new(big.Int).SetString(s, 10)
	if !ok || v.Sign() < 0 {
		return Count{}, false
	}
	return Count{v: v}, true
}

// GobEncodeText is a tiny helper for reports.
func (c Count) Format() string { return c.String() }

// ---------------------------------------------------------------------------
// Region path counting

// Region is a set of nodes with a designated entry. Exits are the edges
// leaving the set.
type Region struct {
	G     *Graph
	Entry NodeID
	Set   map[NodeID]bool
}

// WholeFunction returns the region covering the entire graph.
func WholeFunction(g *Graph) Region {
	set := make(map[NodeID]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		set[n.ID] = true
	}
	return Region{G: g, Entry: g.Entry, Set: set}
}

// Nodes returns the member ids in ascending order.
func (r Region) Nodes() []NodeID {
	var out []NodeID
	for _, n := range r.G.Nodes {
		if r.Set[n.ID] {
			out = append(out, n.ID)
		}
	}
	return out
}

// Size reports the number of blocks in the region.
func (r Region) Size() int { return len(r.Set) }

// PathCount counts the distinct entry→exit paths through the region.
//
// Acyclic regions use a topological DP. Loops are handled by collapsing each
// natural loop (innermost first) into a single supernode whose path count is
// Σ_{k=0..bound} body^k when the header carries a loop-bound annotation, and
// ∞ otherwise. An exit of the region counts as one path endpoint.
func (r Region) PathCount() Count {
	// Work on an induced subgraph with virtual exit.
	ids := r.Nodes()
	index := map[NodeID]int{}
	for i, id := range ids {
		index[id] = i
	}
	nodes := make([]vnode, len(ids))
	mult := make([]Count, len(ids)) // per-node multiplicity (loop collapse)
	for i := range mult {
		mult[i] = NewCount(1)
	}
	for i, id := range ids {
		for _, e := range r.G.Succs(id) {
			if j, ok := index[e.To]; ok {
				nodes[i].succs = append(nodes[i].succs, j)
			} else {
				nodes[i].succs = append(nodes[i].succs, -1)
			}
		}
		// The exit block of the whole function has no successors: count its
		// termination as one exit.
		if len(nodes[i].succs) == 0 {
			nodes[i].succs = append(nodes[i].succs, -1)
		}
	}
	entry, ok := index[r.Entry]
	if !ok {
		return NewCount(0)
	}

	// Collapse natural loops until acyclic. Find back edges via DFS.
	for iter := 0; iter < len(ids)+2; iter++ {
		back := findBackEdge(nodes, entry)
		if back == nil {
			break
		}
		from, to := back[0], back[1]
		// Natural loop of the back edge: nodes that reach `from` without
		// passing through `to`.
		loop := map[int]bool{to: true, from: true}
		stack := []int{from}
		preds := predecessors(nodes)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if x == to {
				continue
			}
			for _, p := range preds[x] {
				if !loop[p] {
					loop[p] = true
					stack = append(stack, p)
				}
			}
		}
		// Path count of one iteration of the loop body: paths from `to`
		// back to `from` inside the loop... approximated as paths through
		// the loop subregion from header to the back edge source, which for
		// structured loops equals the body path count.
		bodyPaths := countDAGSub(nodes, mult, loop, to, from)
		bound := r.G.Nodes[ids[to]].LoopBound
		var loopCount Count
		if bound <= 0 || bodyPaths.IsInf() {
			loopCount = Inf()
		} else {
			// Σ_{k=0..bound} body^k
			sum := NewCount(1)
			pow := NewCount(1)
			for k := 1; k <= bound; k++ {
				pow = pow.Mul(bodyPaths)
				sum = sum.Add(pow)
			}
			loopCount = sum
		}
		// Collapse: header absorbs the loop; redirect edges.
		mult[to] = mult[to].Mul(loopCount)
		var newSuccs []int
		seenExit := map[int]bool{}
		for x := range loop {
			for _, s := range nodes[x].succs {
				if s == -1 {
					if !seenExit[-1] {
						newSuccs = append(newSuccs, -1)
						seenExit[-1] = true
					}
					continue
				}
				if loop[s] {
					continue
				}
				if !seenExit[s] {
					newSuccs = append(newSuccs, s)
					seenExit[s] = true
				}
			}
		}
		for x := range loop {
			if x != to {
				nodes[x].succs = nil // dead; unreachable after redirect
			}
		}
		nodes[to].succs = newSuccs
		// Redirect incoming edges of loop members (other than header) from
		// outside: with natural loops and a single header there are none.
	}
	if findBackEdge(nodes, entry) != nil {
		// Irreducible flow: give up precisely, report infinity.
		return Inf()
	}
	return countDAG(nodes, mult, entry)
}

func predecessors(nodes []vnode) [][]int {
	preds := make([][]int, len(nodes))
	for i, n := range nodes {
		for _, s := range n.succs {
			if s >= 0 {
				preds[s] = append(preds[s], i)
			}
		}
	}
	return preds
}

// findBackEdge returns [from, to] for some DFS back edge, or nil.
func findBackEdge(nodes []vnode, entry int) []int {
	state := make([]int, len(nodes)) // 0 unvisited, 1 on stack, 2 done
	var res []int
	var dfs func(int)
	dfs = func(u int) {
		state[u] = 1
		for _, v := range nodes[u].succs {
			if v < 0 || res != nil {
				continue
			}
			switch state[v] {
			case 0:
				dfs(v)
			case 1:
				res = []int{u, v}
			}
		}
		state[u] = 2
	}
	dfs(entry)
	return res
}

// countDAG counts entry→exit paths in an acyclic succ graph, weighting each
// node by its multiplicity.
func countDAG(nodes []vnode, mult []Count, entry int) Count {
	memo := make([]*Count, len(nodes))
	var paths func(int) Count
	paths = func(u int) Count {
		if memo[u] != nil {
			return *memo[u]
		}
		total := NewCount(0)
		for _, v := range nodes[u].succs {
			if v == -1 {
				total = total.Add(NewCount(1))
			} else {
				total = total.Add(paths(v))
			}
		}
		if len(nodes[u].succs) == 0 {
			// Collapsed dead node.
			total = NewCount(0)
		}
		total = total.Mul(mult[u])
		memo[u] = &total
		return total
	}
	return paths(entry)
}

// countDAGSub counts paths from src to dst restricted to `in`, treating dst
// as terminal.
func countDAGSub(nodes []vnode, mult []Count, in map[int]bool, src, dst int) Count {
	memo := map[int]*Count{}
	var paths func(int) Count
	paths = func(u int) Count {
		if u == dst {
			return mult[u]
		}
		if c, ok := memo[u]; ok {
			return *c
		}
		zero := NewCount(0)
		memo[u] = &zero // cycle guard: revisiting contributes 0
		total := NewCount(0)
		for _, v := range nodes[u].succs {
			if v < 0 || !in[v] {
				continue
			}
			total = total.Add(paths(v))
		}
		total = total.Mul(mult[u])
		memo[u] = &total
		return total
	}
	if !in[src] {
		return NewCount(0)
	}
	return paths(src)
}

// vnode is a node of the induced region subgraph used during counting;
// succs index into the node slice, -1 denotes a region exit.
type vnode struct {
	succs []int
}
