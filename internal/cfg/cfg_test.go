package cfg

import (
	"strings"
	"testing"
	"testing/quick"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
)

// Figure1Source is the paper's Figure 1 listing.
const Figure1Source = `
int main() {
    int i;
    printf1();
    printf2();
    if (i == 0)
    {
        printf3();
        if (i == 0) {
            printf4();
        } else {
            printf5();
        }
    }
    if (i == 0)
    {
        printf6();
        printf7();
    }
    printf8();
}
`

func buildFunc(t *testing.T, src, name string) *Graph {
	t.Helper()
	f, err := parser.ParseFile("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatalf("sem: %v", err)
	}
	fn := f.Func(name)
	if fn == nil {
		t.Fatalf("function %q missing", name)
	}
	g, err := Build(fn)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return g
}

func TestFigure1BlockCount(t *testing.T) {
	g := buildFunc(t, Figure1Source, "main")
	// The paper's CFG has 11 nodes (start, 9 labelled blocks, end), giving
	// ip = 22 at path bound 1 in Table 1.
	if g.NumNodes() != 11 {
		t.Fatalf("Figure 1 blocks = %d, want 11\n%s", g.NumNodes(), g.Dot())
	}
}

func TestFigure1PathCount(t *testing.T) {
	g := buildFunc(t, Figure1Source, "main")
	whole := WholeFunction(g)
	if got := whole.PathCount(); got.Cmp(6) != 0 {
		t.Errorf("whole-function paths = %s, want 6", got)
	}
}

func TestStraightLine(t *testing.T) {
	g := buildFunc(t, `int a, b; void f(void) { a = 1; b = 2; a = a + b; }`, "f")
	// entry, body, epilogue, exit.
	if g.NumNodes() != 4 {
		t.Fatalf("blocks = %d, want 4\n%s", g.NumNodes(), g.Dot())
	}
	if got := WholeFunction(g).PathCount(); got.Cmp(1) != 0 {
		t.Errorf("paths = %s, want 1", got)
	}
}

func TestIfWithoutElseNoJoinBlock(t *testing.T) {
	g := buildFunc(t, `int a; void f(void) { if (a) { a = 1; } a = 2; }`, "f")
	// entry, [cond], [a=1], [a=2], epilogue, exit = 6; no empty join.
	if g.NumNodes() != 6 {
		t.Fatalf("blocks = %d, want 6\n%s", g.NumNodes(), g.Dot())
	}
	if got := WholeFunction(g).PathCount(); got.Cmp(2) != 0 {
		t.Errorf("paths = %s, want 2", got)
	}
}

func TestIfElseHasJoinBlock(t *testing.T) {
	g := buildFunc(t, `int a; void f(void) { if (a) { a = 1; } else { a = 2; } a = 3; }`, "f")
	// entry, [cond], [a=1], [a=2], join(a=3), epilogue, exit = 7.
	if g.NumNodes() != 7 {
		t.Fatalf("blocks = %d, want 7\n%s", g.NumNodes(), g.Dot())
	}
	joins := 0
	for _, n := range g.Nodes {
		if n.Label == "join" {
			joins++
		}
	}
	if joins != 1 {
		t.Errorf("join blocks = %d, want 1", joins)
	}
}

func TestSwitchShape(t *testing.T) {
	g := buildFunc(t, `
int x, y;
void f(void) {
    switch (x) {
    case 0: y = 0; break;
    case 1: y = 1; break;
    default: y = 9; break;
    }
    y = y + 1;
}`, "f")
	var sw *Node
	for _, n := range g.Nodes {
		if n.Term.Kind == TermSwitch {
			sw = n
		}
	}
	if sw == nil {
		t.Fatal("no switch terminator")
	}
	if len(sw.Term.Cases) != 2 {
		t.Errorf("cases = %d, want 2", len(sw.Term.Cases))
	}
	if got := WholeFunction(g).PathCount(); got.Cmp(3) != 0 {
		t.Errorf("paths = %s, want 3", got)
	}
}

func TestSwitchFallthroughPaths(t *testing.T) {
	g := buildFunc(t, `
int x, y;
void f(void) {
    switch (x) {
    case 0: y = 0;
    case 1: y = 1; break;
    default: y = 9; break;
    }
}`, "f")
	// Paths: case0→case1→out, case1→out, default→out = 3.
	if got := WholeFunction(g).PathCount(); got.Cmp(3) != 0 {
		t.Errorf("paths = %s, want 3", got)
	}
}

func TestSwitchWithoutDefault(t *testing.T) {
	g := buildFunc(t, `
int x, y;
void f(void) {
    switch (x) {
    case 0: y = 0; break;
    case 1: y = 1; break;
    }
}`, "f")
	// Implicit default edge to the continuation: 3 paths.
	if got := WholeFunction(g).PathCount(); got.Cmp(3) != 0 {
		t.Errorf("paths = %s, want 3", got)
	}
}

func TestBoundedWhilePathCount(t *testing.T) {
	g := buildFunc(t, `
int i, a;
void f(void) {
    /*@ loopbound 3 */ while (i < 10) {
        if (a) { a = 0; } else { a = 1; }
        i = i + 1;
    }
}`, "f")
	// Body has 2 paths; Σ_{k=0..3} 2^k = 1+2+4+8 = 15.
	if got := WholeFunction(g).PathCount(); got.Cmp(15) != 0 {
		t.Errorf("paths = %s, want 15", got)
	}
}

func TestUnboundedLoopIsInfinite(t *testing.T) {
	g := buildFunc(t, `
int i;
void f(void) { while (i < 10) { i = i + 1; } }`, "f")
	if got := WholeFunction(g).PathCount(); !got.IsInf() {
		t.Errorf("paths = %s, want inf", got)
	}
}

func TestDoWhileAndFor(t *testing.T) {
	g := buildFunc(t, `
int i, s;
void f(void) {
    /*@ loopbound 2 */ do { s = s + i; } while (i > 0);
    /*@ loopbound 2 */ for (i = 0; i < 2; i++) { s = s + 1; }
}`, "f")
	got := WholeFunction(g).PathCount()
	if got.IsInf() {
		t.Fatalf("paths = inf, want finite")
	}
	if got.Cmp(1) <= 0 {
		t.Errorf("paths = %s, want > 1", got)
	}
}

func TestReturnsReachEpilogue(t *testing.T) {
	g := buildFunc(t, `
int a;
int f(void) {
    if (a) { return 1; }
    return 0;
}`, "f")
	// Both returns target the epilogue; exactly 2 paths.
	if got := WholeFunction(g).PathCount(); got.Cmp(2) != 0 {
		t.Errorf("paths = %s, want 2", got)
	}
	epi := g.Node(g.Epilogue)
	if epi.Term.Kind != TermGoto || epi.Term.To != g.Exit {
		t.Error("epilogue must fall into exit")
	}
	if len(g.Preds(g.Epilogue)) != 2 {
		t.Errorf("epilogue preds = %d, want 2", len(g.Preds(g.Epilogue)))
	}
}

func TestDeadCodePruned(t *testing.T) {
	g := buildFunc(t, `
int a;
int f(void) {
    return 1;
    a = 2;
}`, "f")
	for _, n := range g.Nodes {
		for _, it := range n.Items {
			if strings.Contains(ast.PrintStmt(it), "a = 2") {
				t.Error("dead statement survived prune")
			}
		}
	}
}

func TestSideEffectingConditionRejected(t *testing.T) {
	f, err := parser.ParseFile("t.c", `int a; void f(void) { if (a = 1) { a = 2; } }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(f.Func("f")); err == nil {
		t.Error("expected error for side-effecting condition")
	}
}

func TestDominators(t *testing.T) {
	g := buildFunc(t, Figure1Source, "main")
	idom := g.Dominators()
	if idom[g.Entry] != g.Entry {
		t.Error("entry must be its own idom")
	}
	// The exit is dominated by the epilogue.
	if idom[g.Exit] != g.Epilogue {
		t.Errorf("idom(exit) = %d, want epilogue %d", idom[g.Exit], g.Epilogue)
	}
	// Every node except entry has an idom.
	for id, d := range idom {
		if NodeID(id) != g.Entry && d == NoNode {
			t.Errorf("node %d missing idom", id)
		}
	}
}

func TestBackEdges(t *testing.T) {
	g := buildFunc(t, `
int i;
void f(void) { /*@ loopbound 4 */ while (i) { i = i - 1; } }`, "f")
	be := g.BackEdges()
	if len(be) != 1 {
		t.Fatalf("back edges = %d, want 1", len(be))
	}
	if g.Node(be[0].To).Label != "header" {
		t.Error("back edge should target the loop header")
	}
}

func TestDotOutput(t *testing.T) {
	g := buildFunc(t, Figure1Source, "main")
	dot := g.Dot()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "start") || !strings.Contains(dot, "end") {
		t.Error("dot output missing structure")
	}
}

// Property: in any freshly built graph the successor targets are valid and
// the predecessor relation is the inverse of the successor relation.
func TestGraphInvariants(t *testing.T) {
	sources := []string{
		Figure1Source,
		`int a; void f(void) { if (a) a = 1; else a = 2; }`,
		`int x, y; void f(void) { switch (x) { case 1: y = 1; default: y = 2; } }`,
		`int i; void f(void) { /*@ loopbound 9 */ for (i = 0; i < 9; i++) { if (i) { i = i + 1; } } }`,
	}
	for _, src := range sources {
		name := "f"
		if strings.Contains(src, "int main") {
			name = "main"
		}
		g := buildFunc(t, src, name)
		for _, n := range g.Nodes {
			for _, e := range g.Succs(n.ID) {
				if e.To < 0 || int(e.To) >= len(g.Nodes) {
					t.Fatalf("edge to invalid node %d", e.To)
				}
				found := false
				for _, p := range g.Preds(e.To) {
					if p == n.ID {
						found = true
					}
				}
				if !found {
					t.Fatalf("preds(%d) missing %d", e.To, n.ID)
				}
			}
		}
		// Exactly one exit with no successors.
		if len(g.Succs(g.Exit)) != 0 {
			t.Error("exit must have no successors")
		}
	}
}

// Property: path counts compose — a program of n sequential independent
// if-statements has exactly 2^n paths.
func TestQuickSequentialIfPaths(t *testing.T) {
	f := func(n uint8) bool {
		k := int(n%6) + 1
		var b strings.Builder
		b.WriteString("int a;\nvoid f(void) {\n")
		for i := 0; i < k; i++ {
			b.WriteString("if (a) { a = 1; }\n")
		}
		b.WriteString("}\n")
		file, err := parser.ParseFile("q.c", b.String())
		if err != nil {
			return false
		}
		if _, err := sem.Check(file); err != nil {
			return false
		}
		g, err := Build(file.Func("f"))
		if err != nil {
			return false
		}
		want := int64(1) << uint(k)
		return WholeFunction(g).PathCount().Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: nesting multiplies and chains add — if-else chains of depth d
// have d+1 paths.
func TestQuickIfElseChainPaths(t *testing.T) {
	f := func(n uint8) bool {
		d := int(n%5) + 1
		src := "int a;\nvoid f(void) {\n"
		for i := 0; i < d; i++ {
			src += "if (a) { a = 1; } else {\n"
		}
		src += "a = 0;\n"
		for i := 0; i < d; i++ {
			src += "}\n"
		}
		src += "}\n"
		file, err := parser.ParseFile("q.c", src)
		if err != nil {
			return false
		}
		if _, err := sem.Check(file); err != nil {
			return false
		}
		g, err := Build(file.Func("f"))
		if err != nil {
			return false
		}
		return WholeFunction(g).PathCount().Cmp(int64(d)+1) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
