// Package interp executes the C subset concretely.
//
// The executor runs over the CFG of the analysed function, recording the
// exact control path taken (block sequence and per-decision outcomes) plus
// Tracey-style branch distances at every decision — the measurement
// subsystem uses the path, the genetic test-data generator uses the
// distances, and exhaustive end-to-end runs use the step counts as an
// oracle for the cycle-accurate simulator.
//
// Semantics follow the 16-bit target: every variable holds its value
// truncated to its declared width; intermediate arithmetic is exact in
// int64 (the HCS12 ALU's behaviour for the generated-code patterns in
// scope). Reads of never-written locals yield 0 — C leaves them undefined,
// and the model checker's "variable initialisation" optimisation pins them
// to 0, so the interpreter matches the model.
package interp

import (
	"errors"
	"fmt"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/token"
	"wcet/internal/cfg"
)

// Env maps variables to their current values.
type Env map[*ast.VarDecl]int64

// Clone returns a copy of the environment.
func (e Env) Clone() Env {
	out := make(Env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// Decision records one executed control decision.
type Decision struct {
	// Block is the deciding basic block.
	Block cfg.NodeID
	// Taken is the index of the taken edge within cfg.Graph.Succs(Block).
	Taken int
	// Dists[i] is the branch distance to make edge i taken instead
	// (0 for the taken edge). Distances follow Tracey et al.
	Dists []float64
}

// Trace is the recorded execution of one run.
type Trace struct {
	// Blocks is the executed block sequence, entry to exit.
	Blocks []cfg.NodeID
	// Decisions are the multi-successor choices in execution order.
	Decisions []Decision
	// Steps counts executed items (statements), a rough cost proxy.
	Steps int
	// Ret is the function result (0 for void).
	Ret int64
}

// PathKey returns a canonical string identifying the taken path through the
// decision structure (block:edge pairs).
func (t *Trace) PathKey() string {
	key := make([]byte, 0, len(t.Decisions)*4)
	for _, d := range t.Decisions {
		key = append(key, byte('A'+d.Taken%26))
		key = appendInt(key, int(d.Block))
	}
	return string(key)
}

func appendInt(b []byte, v int) []byte {
	return append(b, fmt.Sprintf("%d", v)...)
}

// Options bound an execution.
type Options struct {
	// MaxSteps aborts runaway loops (default 1 << 20).
	MaxSteps int
	// MaxCallDepth bounds recursion through defined functions (default 64).
	MaxCallDepth int
}

func (o Options) withDefaults() Options {
	if o.MaxSteps == 0 {
		o.MaxSteps = 1 << 20
	}
	if o.MaxCallDepth == 0 {
		o.MaxCallDepth = 64
	}
	return o
}

// ErrStepLimit is returned when MaxSteps is exhausted.
var ErrStepLimit = errors.New("interp: step limit exceeded")

// RuntimeError is an execution fault (division by zero etc.).
type RuntimeError struct {
	Pos token.Pos
	Msg string
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("%s: runtime: %s", e.Pos, e.Msg) }

// Machine executes functions of one checked file.
type Machine struct {
	File *ast.File
	Opt  Options
}

// New returns a machine for the file.
func New(file *ast.File, opt Options) *Machine {
	return &Machine{File: file, Opt: opt.withDefaults()}
}

// Run executes the graph from its entry with the given environment. The
// environment is mutated in place (it carries globals across the run);
// locals are added as they are declared.
func (m *Machine) Run(g *cfg.Graph, env Env) (*Trace, error) {
	tr := &Trace{}
	st := &state{m: m, env: env, tr: tr}
	cur := g.Entry
	for {
		tr.Blocks = append(tr.Blocks, cur)
		node := g.Node(cur)
		for _, item := range node.Items {
			if err := st.exec(item); err != nil {
				return tr, err
			}
			tr.Steps++
			if tr.Steps > m.Opt.MaxSteps {
				return tr, ErrStepLimit
			}
		}
		switch node.Term.Kind {
		case cfg.TermGoto:
			cur = node.Term.To
		case cfg.TermReturn:
			if node.Term.Val != nil {
				v, err := st.eval(node.Term.Val)
				if err != nil {
					return tr, err
				}
				tr.Ret = v
			}
			cur = node.Term.To
		case cfg.TermBranch:
			v, err := st.eval(node.Term.Cond)
			if err != nil {
				return tr, err
			}
			dt, df := st.branchDist(node.Term.Cond)
			d := Decision{Block: cur, Dists: []float64{dt, df}}
			if v != 0 {
				d.Taken = 0
				cur = node.Term.True
			} else {
				d.Taken = 1
				cur = node.Term.False
			}
			tr.Decisions = append(tr.Decisions, d)
		case cfg.TermSwitch:
			v, err := st.eval(node.Term.Tag)
			if err != nil {
				return tr, err
			}
			succs := g.Succs(cur)
			d := Decision{Block: cur, Dists: make([]float64, len(succs))}
			taken := len(succs) - 1 // default edge is last
			for i, e := range succs {
				if e.Kind != "case" {
					d.Dists[i] = 1 // reaching default: any non-label value
					continue
				}
				best := 1e18
				hit := false
				for _, cv := range e.CaseVals {
					dist := absF(float64(v - cv))
					if dist < best {
						best = dist
					}
					if cv == v {
						hit = true
					}
				}
				d.Dists[i] = best
				if hit {
					taken = i
				}
			}
			if taken == len(succs)-1 {
				d.Dists[taken] = 0
			}
			d.Taken = taken
			cur = succs[taken].To
			tr.Decisions = append(tr.Decisions, d)
		case cfg.TermExit:
			return tr, nil
		default:
			return tr, fmt.Errorf("interp: bad terminator in block %d", cur)
		}
		if tr.Steps++; tr.Steps > m.Opt.MaxSteps {
			return tr, ErrStepLimit
		}
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ---------------------------------------------------------------------------
// Expression and statement evaluation

type state struct {
	m     *Machine
	env   Env
	tr    *Trace
	depth int
}

// control-flow sentinels for the AST-level statement executor (callee
// bodies only).
var (
	errBreak    = errors.New("break")
	errContinue = errors.New("continue")
)

type returned struct{ val int64 }

func (returned) Error() string { return "return" }

func (st *state) exec(s ast.Stmt) error {
	switch x := s.(type) {
	case *ast.ExprStmt:
		_, err := st.eval(x.X)
		return err
	case *ast.DeclStmt:
		if x.Decl.Init != nil {
			v, err := st.eval(x.Decl.Init)
			if err != nil {
				return err
			}
			st.env[x.Decl] = Truncate(v, x.Decl.Type)
		} else {
			st.env[x.Decl] = 0
		}
		return nil
	}
	return fmt.Errorf("interp: unexpected block item %T", s)
}

// Truncate wraps v to the representable range of t (two's complement).
func Truncate(v int64, t ast.Type) int64 {
	bits := t.Bits
	if bits <= 0 || bits >= 64 {
		return v
	}
	mask := (int64(1) << uint(bits)) - 1
	v &= mask
	if t.Signed && v&(int64(1)<<uint(bits-1)) != 0 {
		v -= int64(1) << uint(bits)
	}
	return v
}

func (st *state) eval(e ast.Expr) (int64, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Val, nil
	case *ast.Ident:
		if x.Decl == nil {
			return 0, &RuntimeError{Pos: x.NamePos, Msg: "unresolved identifier " + x.Name}
		}
		return st.env[x.Decl], nil
	case *ast.UnaryExpr:
		return st.evalUnary(x)
	case *ast.BinaryExpr:
		return st.evalBinary(x)
	case *ast.AssignExpr:
		return st.evalAssign(x)
	case *ast.CondExpr:
		c, err := st.eval(x.Cond)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return st.eval(x.Then)
		}
		return st.eval(x.Else)
	case *ast.CallExpr:
		return st.evalCall(x)
	}
	return 0, fmt.Errorf("interp: unexpected expression %T", e)
}

func (st *state) evalUnary(x *ast.UnaryExpr) (int64, error) {
	if x.Op == token.INC || x.Op == token.DEC {
		id := x.X.(*ast.Ident)
		old := st.env[id.Decl]
		delta := int64(1)
		if x.Op == token.DEC {
			delta = -1
		}
		st.env[id.Decl] = Truncate(old+delta, id.Decl.Type)
		if x.Postfix {
			return old, nil
		}
		return st.env[id.Decl], nil
	}
	v, err := st.eval(x.X)
	if err != nil {
		return 0, err
	}
	switch x.Op {
	case token.MINUS:
		return -v, nil
	case token.PLUS:
		return v, nil
	case token.TILDE:
		return ^v, nil
	case token.BANG:
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 0, &RuntimeError{Pos: x.OpPos, Msg: "bad unary operator"}
}

func (st *state) evalBinary(x *ast.BinaryExpr) (int64, error) {
	// Short-circuit operators.
	if x.Op == token.LAND || x.Op == token.LOR {
		a, err := st.eval(x.X)
		if err != nil {
			return 0, err
		}
		if x.Op == token.LAND && a == 0 {
			return 0, nil
		}
		if x.Op == token.LOR && a != 0 {
			return 1, nil
		}
		b, err := st.eval(x.Y)
		if err != nil {
			return 0, err
		}
		if b != 0 {
			return 1, nil
		}
		return 0, nil
	}
	a, err := st.eval(x.X)
	if err != nil {
		return 0, err
	}
	b, err := st.eval(x.Y)
	if err != nil {
		return 0, err
	}
	return applyBinary(x.Op, a, b, x.Pos())
}

func applyBinary(op token.Kind, a, b int64, pos token.Pos) (int64, error) {
	boolInt := func(c bool) int64 {
		if c {
			return 1
		}
		return 0
	}
	switch op {
	case token.PLUS:
		return a + b, nil
	case token.MINUS:
		return a - b, nil
	case token.STAR:
		return a * b, nil
	case token.SLASH:
		if b == 0 {
			return 0, &RuntimeError{Pos: pos, Msg: "division by zero"}
		}
		return a / b, nil
	case token.PERCENT:
		if b == 0 {
			return 0, &RuntimeError{Pos: pos, Msg: "modulo by zero"}
		}
		return a % b, nil
	case token.SHL:
		return a << uint(b&63), nil
	case token.SHR:
		return a >> uint(b&63), nil
	case token.AMP:
		return a & b, nil
	case token.PIPE:
		return a | b, nil
	case token.CARET:
		return a ^ b, nil
	case token.LT:
		return boolInt(a < b), nil
	case token.GT:
		return boolInt(a > b), nil
	case token.LE:
		return boolInt(a <= b), nil
	case token.GE:
		return boolInt(a >= b), nil
	case token.EQ:
		return boolInt(a == b), nil
	case token.NE:
		return boolInt(a != b), nil
	}
	return 0, &RuntimeError{Pos: pos, Msg: "bad binary operator " + op.String()}
}

func (st *state) evalAssign(x *ast.AssignExpr) (int64, error) {
	id := x.LHS.(*ast.Ident)
	rhs, err := st.eval(x.RHS)
	if err != nil {
		return 0, err
	}
	if x.Op != token.ASSIGN {
		v, err := applyBinary(x.Op.BaseOp(), st.env[id.Decl], rhs, x.Pos())
		if err != nil {
			return 0, err
		}
		rhs = v
	}
	rhs = Truncate(rhs, id.Decl.Type)
	st.env[id.Decl] = rhs
	return rhs, nil
}

func (st *state) evalCall(x *ast.CallExpr) (int64, error) {
	if x.Cast != nil {
		v, err := st.eval(x.Args[0])
		if err != nil {
			return 0, err
		}
		return Truncate(v, *x.Cast), nil
	}
	if x.Decl == nil {
		// External routine: evaluate arguments for side effects, result 0.
		for _, a := range x.Args {
			if _, err := st.eval(a); err != nil {
				return 0, err
			}
		}
		return 0, nil
	}
	if st.depth >= st.m.Opt.MaxCallDepth {
		return 0, &RuntimeError{Pos: x.NamePos, Msg: "call depth exceeded"}
	}
	// Bind parameters.
	saved := make(map[*ast.VarDecl]int64, len(x.Decl.Params))
	for i, p := range x.Decl.Params {
		v, err := st.eval(x.Args[i])
		if err != nil {
			return 0, err
		}
		saved[p] = st.env[p]
		st.env[p] = Truncate(v, p.Type)
	}
	st.depth++
	ret, err := st.execBody(x.Decl.Body)
	st.depth--
	for p, v := range saved {
		st.env[p] = v
	}
	return ret, err
}

// execBody runs a callee body at AST level (no tracing inside callees; the
// analysed function's own CFG drives the trace).
func (st *state) execBody(b *ast.Block) (int64, error) {
	err := st.stmtList(b.Stmts)
	if r, ok := err.(returned); ok {
		return r.val, nil
	}
	if err == errBreak || err == errContinue {
		return 0, fmt.Errorf("interp: stray break/continue")
	}
	return 0, err
}

func (st *state) stmtList(list []ast.Stmt) error {
	for _, s := range list {
		if err := st.stmtAST(s); err != nil {
			return err
		}
	}
	return nil
}

func (st *state) stmtAST(s ast.Stmt) error {
	st.tr.Steps++
	if st.tr.Steps > st.m.Opt.MaxSteps {
		return ErrStepLimit
	}
	switch x := s.(type) {
	case *ast.Block:
		return st.stmtList(x.Stmts)
	case *ast.EmptyStmt:
		return nil
	case *ast.ExprStmt, *ast.DeclStmt:
		return st.exec(s)
	case *ast.IfStmt:
		c, err := st.eval(x.Cond)
		if err != nil {
			return err
		}
		if c != 0 {
			return st.stmtAST(x.Then)
		}
		if x.Else != nil {
			return st.stmtAST(x.Else)
		}
		return nil
	case *ast.SwitchStmt:
		return st.switchAST(x)
	case *ast.WhileStmt:
		for {
			c, err := st.eval(x.Cond)
			if err != nil {
				return err
			}
			if c == 0 {
				return nil
			}
			if err := st.loopBody(x.Body); err != nil {
				if err == errBreak {
					return nil
				}
				return err
			}
		}
	case *ast.DoWhileStmt:
		for {
			if err := st.loopBody(x.Body); err != nil {
				if err == errBreak {
					return nil
				}
				return err
			}
			c, err := st.eval(x.Cond)
			if err != nil {
				return err
			}
			if c == 0 {
				return nil
			}
		}
	case *ast.ForStmt:
		if x.Init != nil {
			if err := st.stmtAST(x.Init); err != nil {
				return err
			}
		}
		for {
			if x.Cond != nil {
				c, err := st.eval(x.Cond)
				if err != nil {
					return err
				}
				if c == 0 {
					return nil
				}
			}
			if err := st.loopBody(x.Body); err != nil {
				if err == errBreak {
					return nil
				}
				return err
			}
			if x.Post != nil {
				if _, err := st.eval(x.Post); err != nil {
					return err
				}
			}
		}
	case *ast.BreakStmt:
		return errBreak
	case *ast.ContinueStmt:
		return errContinue
	case *ast.ReturnStmt:
		var v int64
		if x.X != nil {
			var err error
			v, err = st.eval(x.X)
			if err != nil {
				return err
			}
		}
		return returned{val: v}
	}
	return fmt.Errorf("interp: unexpected statement %T", s)
}

func (st *state) loopBody(body ast.Stmt) error {
	err := st.stmtAST(body)
	if err == errContinue {
		return nil
	}
	return err
}

func (st *state) switchAST(x *ast.SwitchStmt) error {
	tag, err := st.eval(x.Tag)
	if err != nil {
		return err
	}
	start := -1
	dflt := -1
	for i, cl := range x.Clauses {
		if cl.Vals == nil {
			dflt = i
			continue
		}
		for _, v := range cl.Vals {
			cv, cerr := constOrEval(st, v)
			if cerr != nil {
				return cerr
			}
			if cv == tag {
				start = i
			}
		}
		if start >= 0 {
			break
		}
	}
	if start < 0 {
		start = dflt
	}
	if start < 0 {
		return nil
	}
	for i := start; i < len(x.Clauses); i++ {
		if err := st.stmtList(x.Clauses[i].Body); err != nil {
			if err == errBreak {
				return nil
			}
			return err
		}
	}
	return nil
}

func constOrEval(st *state, e ast.Expr) (int64, error) {
	return st.eval(e)
}
