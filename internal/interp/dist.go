package interp

import (
	"wcet/internal/cc/ast"
	"wcet/internal/cc/token"
)

// Branch distances follow Tracey et al. ("A search-based automated test-data
// generation framework for safety-critical systems"): for each relational
// predicate the distance measures how far the operand values are from making
// the predicate true (or false), with a constant K=1 added so that an
// unsatisfied predicate always has positive distance. Conjunction sums the
// operand distances, disjunction takes the minimum.

const distK = 1.0

// branchDist returns (distance-to-true, distance-to-false) of a condition
// under the current environment. One of the two is always 0 — the side the
// condition currently evaluates to.
func (st *state) branchDist(e ast.Expr) (dt, df float64) {
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.BANG {
			t, f := st.branchDist(x.X)
			return f, t
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			at, af := st.branchDist(x.X)
			// C short-circuits: when the left side is false the right side
			// is unevaluated, but its distance still guides the search.
			bt, bf := st.branchDist(x.Y)
			return at + bt, minF(af, bf)
		case token.LOR:
			at, af := st.branchDist(x.X)
			bt, bf := st.branchDist(x.Y)
			return minF(at, bt), af + bf
		case token.EQ, token.NE, token.LT, token.LE, token.GT, token.GE:
			a, err1 := st.eval(x.X)
			b, err2 := st.eval(x.Y)
			if err1 != nil || err2 != nil {
				return distK, distK
			}
			return relDist(x.Op, a, b)
		}
	}
	// Generic predicate: its truth value gives a unit distance.
	v, err := st.eval(e)
	if err != nil {
		return distK, distK
	}
	if v != 0 {
		return 0, distK
	}
	return distK, 0
}

// relDist computes distances for a relational operator with operand values
// a and b.
func relDist(op token.Kind, a, b int64) (dt, df float64) {
	fa, fb := float64(a), float64(b)
	switch op {
	case token.EQ:
		if a == b {
			return 0, distK
		}
		return absF(fa-fb) + 0, 0 // false already holds
	case token.NE:
		if a != b {
			return 0, absF(fa - fb)
		}
		return distK, 0
	case token.LT:
		if a < b {
			return 0, fb - fa
		}
		return fa - fb + distK, 0
	case token.LE:
		if a <= b {
			return 0, fb - fa + distK
		}
		return fa - fb, 0
	case token.GT:
		if a > b {
			return 0, fa - fb
		}
		return fb - fa + distK, 0
	case token.GE:
		if a >= b {
			return 0, fa - fb + distK
		}
		return fb - fa, 0
	}
	return distK, distK
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
