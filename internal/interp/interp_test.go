package interp

import (
	"testing"
	"testing/quick"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
)

type fixture struct {
	file *ast.File
	fn   *ast.FuncDecl
	g    *cfg.Graph
	m    *Machine
}

func setup(t *testing.T, src, name string) *fixture {
	t.Helper()
	f, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatalf("sem: %v", err)
	}
	fn := f.Func(name)
	g, err := cfg.Build(fn)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return &fixture{file: f, fn: fn, g: g, m: New(f, Options{})}
}

func (fx *fixture) varByName(name string) *ast.VarDecl {
	for _, g := range fx.file.Globals {
		if g.Name == name {
			return g
		}
	}
	for _, p := range fx.fn.Params {
		if p.Name == name {
			return p
		}
	}
	var found *ast.VarDecl
	ast.Walk(fx.fn, func(n ast.Node) bool {
		if d, ok := n.(*ast.VarDecl); ok && d.Name == name {
			found = d
		}
		return true
	})
	return found
}

func run(t *testing.T, fx *fixture, env Env) *Trace {
	t.Helper()
	tr, err := fx.m.Run(fx.g, env)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return tr
}

func TestArithmetic(t *testing.T) {
	fx := setup(t, `
int a, b, r;
int f(void) {
    r = a * 3 + b / 2 - (a % 2);
    return r;
}`, "f")
	env := Env{fx.varByName("a"): 7, fx.varByName("b"): 9}
	tr := run(t, fx, env)
	want := int64(7*3 + 9/2 - 7%2)
	if tr.Ret != want {
		t.Errorf("ret = %d, want %d", tr.Ret, want)
	}
}

func TestTruncation16Bit(t *testing.T) {
	fx := setup(t, `
int a, r;
int f(void) { r = a + 1; return r; }`, "f")
	env := Env{fx.varByName("a"): 32767}
	tr := run(t, fx, env)
	if tr.Ret != -32768 {
		t.Errorf("32767+1 wrapped to %d, want -32768 (16-bit int)", tr.Ret)
	}
}

func TestCharTruncation(t *testing.T) {
	fx := setup(t, `
char c;
int f(void) { c = (char)(200); return c; }`, "f")
	tr := run(t, fx, Env{})
	if tr.Ret != -56 {
		t.Errorf("(char)200 = %d, want -56", tr.Ret)
	}
}

func TestUnsignedCharCast(t *testing.T) {
	fx := setup(t, `
int r;
int f(void) { r = (unsigned char)(-1); return r; }`, "f")
	tr := run(t, fx, Env{})
	if tr.Ret != 255 {
		t.Errorf("(unsigned char)-1 = %d, want 255", tr.Ret)
	}
}

func TestControlFlowTrace(t *testing.T) {
	fx := setup(t, `
int a, r;
int f(void) {
    if (a > 5) { r = 1; } else { r = 2; }
    return r;
}`, "f")
	tr := run(t, fx, Env{fx.varByName("a"): 9})
	if tr.Ret != 1 {
		t.Errorf("ret = %d, want 1", tr.Ret)
	}
	if len(tr.Decisions) != 1 || tr.Decisions[0].Taken != 0 {
		t.Errorf("decision = %+v, want true edge", tr.Decisions)
	}
	tr2 := run(t, fx, Env{fx.varByName("a"): 1})
	if tr2.Ret != 2 || tr2.Decisions[0].Taken != 1 {
		t.Errorf("false path: ret=%d taken=%d", tr2.Ret, tr2.Decisions[0].Taken)
	}
	if tr.PathKey() == tr2.PathKey() {
		t.Error("different paths must have different keys")
	}
}

func TestSwitchExecution(t *testing.T) {
	fx := setup(t, `
int x, r;
int f(void) {
    switch (x) {
    case 0: r = 10; break;
    case 1:
    case 2: r = 20; break;
    default: r = 99; break;
    }
    return r;
}`, "f")
	cases := map[int64]int64{0: 10, 1: 20, 2: 20, 3: 99, -5: 99}
	for in, want := range cases {
		tr := run(t, fx, Env{fx.varByName("x"): in})
		if tr.Ret != want {
			t.Errorf("x=%d: ret=%d, want %d", in, tr.Ret, want)
		}
	}
}

func TestSwitchFallthroughExec(t *testing.T) {
	fx := setup(t, `
int x, r;
int f(void) {
    r = 0;
    switch (x) {
    case 0: r = r + 1;
    case 1: r = r + 10; break;
    default: r = r + 100;
    }
    return r;
}`, "f")
	if tr := run(t, fx, Env{fx.varByName("x"): 0}); tr.Ret != 11 {
		t.Errorf("fallthrough x=0: ret=%d, want 11", tr.Ret)
	}
	if tr := run(t, fx, Env{fx.varByName("x"): 1}); tr.Ret != 10 {
		t.Errorf("x=1: ret=%d, want 10", tr.Ret)
	}
	if tr := run(t, fx, Env{fx.varByName("x"): 7}); tr.Ret != 100 {
		t.Errorf("x=7: ret=%d, want 100", tr.Ret)
	}
}

func TestLoops(t *testing.T) {
	fx := setup(t, `
int n, s;
int f(void) {
    int i;
    s = 0;
    /*@ loopbound 100 */ for (i = 0; i < n; i++) { s = s + i; }
    return s;
}`, "f")
	tr := run(t, fx, Env{fx.varByName("n"): 10})
	if tr.Ret != 45 {
		t.Errorf("sum 0..9 = %d, want 45", tr.Ret)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	fx := setup(t, `
int s;
int f(void) {
    int i;
    i = 0;
    s = 0;
    /*@ loopbound 20 */ while (i < 20) {
        i = i + 1;
        if (i % 2 == 0) { continue; }
        if (i > 9) { break; }
        s = s + i;
    }
    return s;
}`, "f")
	tr := run(t, fx, Env{})
	// odd i < 10: 1+3+5+7+9 = 25, but break fires at i=11 before adding.
	if tr.Ret != 25 {
		t.Errorf("ret = %d, want 25", tr.Ret)
	}
}

func TestShortCircuit(t *testing.T) {
	fx := setup(t, `
int a, b, r;
int f(void) {
    r = 0;
    if (a != 0 && 10 / a > 1) { r = 1; }
    if (b == 0 || 10 / b > 1) { r = r + 2; }
    return r;
}`, "f")
	// a = 0: division guarded by &&; b = 0: guarded by ||.
	tr := run(t, fx, Env{fx.varByName("a"): 0, fx.varByName("b"): 0})
	if tr.Ret != 2 {
		t.Errorf("ret = %d, want 2", tr.Ret)
	}
}

func TestDivisionByZeroError(t *testing.T) {
	fx := setup(t, `
int a, r;
int f(void) { r = 10 / a; return r; }`, "f")
	_, err := fx.m.Run(fx.g, Env{fx.varByName("a"): 0})
	if err == nil {
		t.Error("expected division-by-zero error")
	}
}

func TestStepLimit(t *testing.T) {
	fx := setup(t, `
int f(void) { while (1) { } return 0; }`, "f")
	fx.m.Opt.MaxSteps = 1000
	_, err := fx.m.Run(fx.g, Env{})
	if err != ErrStepLimit {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestDefinedFunctionCall(t *testing.T) {
	fx := setup(t, `
int add(int x, int y) { return x + y; }
int twice(int x) { return add(x, x); }
int f(void) { return twice(21); }`, "f")
	tr := run(t, fx, Env{})
	if tr.Ret != 42 {
		t.Errorf("ret = %d, want 42", tr.Ret)
	}
}

func TestExternalCallIsNoop(t *testing.T) {
	fx := setup(t, `
int r;
int f(void) { r = 5; printf1(); return r; }`, "f")
	tr := run(t, fx, Env{})
	if tr.Ret != 5 {
		t.Errorf("ret = %d, want 5", tr.Ret)
	}
}

func TestTernaryAndCompound(t *testing.T) {
	fx := setup(t, `
int a, r;
int f(void) {
    r = a > 0 ? a : -a;
    r += 5;
    r <<= 1;
    return r;
}`, "f")
	tr := run(t, fx, Env{fx.varByName("a"): -3})
	if tr.Ret != 16 {
		t.Errorf("ret = %d, want 16", tr.Ret)
	}
}

func TestIncDecSemantics(t *testing.T) {
	fx := setup(t, `
int a, r;
int f(void) {
    a = 5;
    r = a++;
    r = r * 10 + a;
    r = r * 10 + (--a);
    return r;
}`, "f")
	tr := run(t, fx, Env{})
	// r = 5; a=6 → 56 → 565 (fits 16-bit int).
	if tr.Ret != 565 {
		t.Errorf("ret = %d, want 565", tr.Ret)
	}
}

func TestBranchDistanceGuidesSearch(t *testing.T) {
	fx := setup(t, `
int a, r;
int f(void) {
    if (a == 100) { r = 1; } else { r = 0; }
    return r;
}`, "f")
	d1 := decisionDist(t, fx, 40)  // |40-100| = 60
	d2 := decisionDist(t, fx, 90)  // |90-100| = 10
	d3 := decisionDist(t, fx, 100) // hit
	if !(d1 > d2 && d2 > d3 && d3 == 0) {
		t.Errorf("distances not monotone: %v %v %v", d1, d2, d3)
	}
}

func decisionDist(t *testing.T, fx *fixture, a int64) float64 {
	t.Helper()
	tr := run(t, fx, Env{fx.varByName("a"): a})
	if len(tr.Decisions) != 1 {
		t.Fatalf("decisions = %d", len(tr.Decisions))
	}
	return tr.Decisions[0].Dists[0] // distance to the true edge
}

func TestSwitchDistances(t *testing.T) {
	fx := setup(t, `
int x, r;
int f(void) {
    switch (x) {
    case 10: r = 1; break;
    case 20: r = 2; break;
    default: r = 0;
    }
    return r;
}`, "f")
	tr := run(t, fx, Env{fx.varByName("x"): 13})
	if len(tr.Decisions) != 1 {
		t.Fatalf("decisions = %d, want 1", len(tr.Decisions))
	}
	d := tr.Decisions[0]
	// Succ order: case 10, case 20, default. x=13 → default taken.
	if d.Taken != 2 {
		t.Fatalf("taken = %d, want default", d.Taken)
	}
	if d.Dists[0] != 3 || d.Dists[1] != 7 {
		t.Errorf("case distances = %v, want [3 7 0]", d.Dists)
	}
}

// Property: execution result equals a Go reimplementation over random inputs
// for a representative arithmetic/control function.
func TestQuickOracleEquivalence(t *testing.T) {
	fx := setup(t, `
int a, b;
int f(void) {
    int r;
    r = 0;
    if (a > b) { r = a - b; } else { r = b - a; }
    if ((a & 1) == 0) { r = r * 2; }
    switch (b & 3) {
    case 0: r = r + 1; break;
    case 1: r = r + 2; break;
    default: r = r - 1;
    }
    return r;
}`, "f")
	oracle := func(a, b int64) int64 {
		trunc := func(v int64) int64 { return Truncate(v, ast.Int) }
		a, b = trunc(a), trunc(b)
		var r int64
		if a > b {
			r = trunc(a - b)
		} else {
			r = trunc(b - a)
		}
		if a&1 == 0 {
			r = trunc(r * 2)
		}
		switch b & 3 {
		case 0:
			r = trunc(r + 1)
		case 1:
			r = trunc(r + 2)
		default:
			r = trunc(r - 1)
		}
		return r
	}
	aDecl, bDecl := fx.varByName("a"), fx.varByName("b")
	f := func(a, b int16) bool {
		if a&1 != 0 && b&3 >= 2 {
			// exercised by other combinations anyway
		}
		tr, err := fx.m.Run(fx.g, Env{aDecl: int64(a), bDecl: int64(b)})
		if err != nil {
			return false
		}
		return tr.Ret == oracle(int64(a), int64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every execution's block sequence is a real path: consecutive
// blocks are connected by an edge.
func TestQuickTraceIsConnectedPath(t *testing.T) {
	fx := setup(t, `
int a, b;
int f(void) {
    int r;
    r = 0;
    if (a > 0) { if (b > 0) { r = 1; } else { r = 2; } }
    switch (a & 1) { case 0: r = r + 1; break; default: r = r - 1; }
    return r;
}`, "f")
	aDecl, bDecl := fx.varByName("a"), fx.varByName("b")
	f := func(a, b int16) bool {
		tr, err := fx.m.Run(fx.g, Env{aDecl: int64(a), bDecl: int64(b)})
		if err != nil {
			return false
		}
		if tr.Blocks[0] != fx.g.Entry || tr.Blocks[len(tr.Blocks)-1] != fx.g.Exit {
			return false
		}
		for i := 0; i+1 < len(tr.Blocks); i++ {
			ok := false
			for _, e := range fx.g.Succs(tr.Blocks[i]) {
				if e.To == tr.Blocks[i+1] {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
