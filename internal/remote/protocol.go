package remote

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"wcet/internal/ledger"
)

// Wire protocol. One connection carries one request and, for start
// requests, one reply stream. Every message is length-prefixed and typed:
//
//	message := type(1 byte) length(uint32 LE) payload(length bytes)
//
// Client→agent:
//
//	'r' — request: a JSON header; a start request is followed by exactly
//	      SeedLen raw seed-journal bytes (outside any message frame).
//
// Agent→client (the reply stream for a start request):
//
//	'd' — journal bytes: the agent-side worker journal's bytes from the
//	      requested offset on, streamed in file order. The client lands
//	      only complete CRC-verified frames, so a tear anywhere in the
//	      stream costs at most one partial frame, never corruption.
//	't' — telemetry: the worker's current sidecar JSON, forwarded whole.
//	'x' — exit: JSON {"error": "..."} ("" = clean); ends the stream.
//	'k' — kill acknowledged (the whole reply to a kill request).
//
// maxMsg bounds any single message: journal frames are already bounded
// at 1<<28 by the journal package, telemetry sidecars are far smaller.
const (
	msgRequest   = 'r'
	msgJournal   = 'd'
	msgTelemetry = 't'
	msgExit      = 'x'
	msgKilled    = 'k'

	maxMsg = 1 << 28
)

// request is the client→agent header.
type request struct {
	// Op is "start" or "kill".
	Op string `json:"op"`
	// ID is the lease id — the agent's idempotency key: a second start
	// for a known id attaches a new stream to the existing worker instead
	// of spawning another.
	ID string `json:"id"`
	// Offset is the agent-journal byte offset to stream from (start
	// only). The client's local copy is always an exact byte prefix of
	// the agent's file, so the offset is simply the client's file size.
	Offset int64 `json:"offset"`
	// Assignment is the coordinator's lease document (start only); the
	// agent rewrites its Journal/Telemetry paths into its own work dir.
	Assignment *ledger.Assignment `json:"assignment,omitempty"`
	// SeedLen counts the raw seed-journal bytes following the header.
	SeedLen int64 `json:"seed_len"`
}

type exitStatus struct {
	Error string `json:"error"`
}

func writeMsg(w io.Writer, typ byte, payload []byte) error {
	hdr := make([]byte, 5)
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readMsg(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxMsg {
		return 0, nil, fmt.Errorf("remote: implausible %d-byte message", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

func sendRequest(w io.Writer, req *request, seed []byte) error {
	req.SeedLen = int64(len(seed))
	hdr, err := json.Marshal(req)
	if err != nil {
		return err
	}
	if err := writeMsg(w, msgRequest, hdr); err != nil {
		return err
	}
	_, err = w.Write(seed)
	return err
}

func readRequest(r io.Reader) (*request, []byte, error) {
	typ, payload, err := readMsg(r)
	if err != nil {
		return nil, nil, err
	}
	if typ != msgRequest {
		return nil, nil, fmt.Errorf("remote: unexpected message type %q", typ)
	}
	var req request
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, nil, fmt.Errorf("remote: decode request: %w", err)
	}
	if req.SeedLen < 0 || req.SeedLen > maxMsg {
		return nil, nil, fmt.Errorf("remote: implausible %d-byte seed", req.SeedLen)
	}
	seed := make([]byte, req.SeedLen)
	if _, err := io.ReadFull(r, seed); err != nil {
		return nil, nil, fmt.Errorf("remote: read seed: %w", err)
	}
	return &req, seed, nil
}

func mustJSON(v any) []byte {
	data, _ := json.Marshal(v)
	return data
}
