// Package remote spans the work ledger across machines. A Launcher
// implements ledger.Launcher by shipping each lease — the serialized
// assignment plus the seed journal bytes — to a wcet agent on another
// host and streaming the worker's CRC-framed journal back as it appends,
// into exactly the local file the coordinator already polls for growth
// and merges from. The coordinator cannot tell a remote worker from a
// local one; leases, reclamation, restart harvest and quarantine all work
// unchanged.
//
// Robustness model, in one invariant: the local worker journal is always
// an exact byte prefix of the agent-side file. The client lands only
// complete CRC-verified frames, tracks its own file size as the resume
// offset, and on any stream damage — torn connection, duplicated bytes,
// garbled framing — simply redials and asks for "everything from offset
// N". Replayed or duplicated records beyond that are impossible by
// construction (the agent streams file bytes in order), and would be
// harmless anyway (journal replay is first-write-wins).
//
// Reconnects follow the retry package's logical backoff shape scaled by
// a wall-clock tick; a lease whose outage outlives the attempt budget
// finishes with an error, the coordinator reclaims its units as ordinary
// fatalities, and the launcher marks the host down — subsequent leases
// route to surviving agents, or to the Fallback launcher once none
// remain. Records are pure functions of (program, options, unit key), so
// the downgrade cannot change a byte of the final report.
package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"wcet/internal/journal"
	"wcet/internal/ledger"
	"wcet/internal/obs"
	"wcet/internal/retry"
)

// Launcher implements ledger.Launcher over a fleet of agents.
type Launcher struct {
	// Agents lists agent addresses; leases round-robin over live ones.
	Agents []string
	// Transport dials agents (default: the TCP transport). The chaos
	// suites substitute a FaultTransport here.
	Transport Transport
	// Fallback, when set, takes the leases once every agent is marked
	// down — the graceful-degradation path (typically a ProcLauncher).
	Fallback ledger.Launcher
	// Policy bounds reconnect attempts per outage, reusing the retry
	// package's logical backoff shape (default: 4 attempts, base 1 tick).
	// Any completed frame resets the budget — only a host that makes no
	// progress at all through the whole budget is given up on.
	Policy retry.Policy
	// BackoffTick converts one logical backoff tick to wall-clock
	// (default 25ms). The shape stays deterministic; only its wall
	// scaling is tunable.
	BackoffTick time.Duration
	// Obs receives remote.* counters and progress lines; ledger.Run
	// fills it from Config.Obs via SetObs when unset.
	Obs *obs.Observer

	mu    sync.Mutex
	next  int
	hosts map[string]*hostState
}

type hostState struct {
	down    bool
	leases  int64
	redials int64
}

// SetObs hands the coordinator's observer to the launcher (ledger.Run
// calls it on any launcher exposing the method when Obs is unset).
func (r *Launcher) SetObs(o *obs.Observer) {
	if r.Obs == nil {
		r.Obs = o
	}
}

// Hosts reports per-agent fleet state, for /status.
func (r *Launcher) Hosts() []obs.RemoteHost {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]obs.RemoteHost, 0, len(r.Agents))
	for _, addr := range r.Agents {
		rh := obs.RemoteHost{Addr: addr, State: "up"}
		if h := r.hosts[addr]; h != nil {
			rh.Leases, rh.Redials = h.leases, h.redials
			if h.down {
				rh.State = "down"
			}
		}
		out = append(out, rh)
	}
	return out
}

// Start implements ledger.Launcher: route the lease to the next live
// agent, or to the Fallback once every agent is down.
func (r *Launcher) Start(ctx context.Context, assignmentPath string) (ledger.Handle, error) {
	asg, err := ledger.ReadAssignment(assignmentPath)
	if err != nil {
		return nil, err
	}
	addr, ok := r.pickHost()
	if !ok {
		if r.Fallback == nil {
			return nil, errors.New("remote: every agent is down and no fallback launcher is configured")
		}
		r.Obs.CountV("remote.fallback_local", 1)
		r.Obs.Progressf("remote: all agents down; leasing %s to the local fallback", asg.ID)
		return r.Fallback.Start(ctx, assignmentPath)
	}
	h := &remoteHandle{
		launcher: r,
		addr:     addr,
		asg:      asg,
		done:     make(chan struct{}),
		killCh:   make(chan struct{}),
	}
	r.Obs.CountV("remote.leases", 1)
	go h.run(ctx)
	return h, nil
}

func (r *Launcher) pickHost() (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hosts == nil {
		r.hosts = map[string]*hostState{}
		for _, a := range r.Agents {
			r.hosts[a] = &hostState{}
		}
	}
	for i := 0; i < len(r.Agents); i++ {
		addr := r.Agents[(r.next+i)%len(r.Agents)]
		if h := r.hosts[addr]; h != nil && !h.down {
			r.next = (r.next + i + 1) % len(r.Agents)
			h.leases++
			return addr, true
		}
	}
	return "", false
}

func (r *Launcher) markDown(addr string) {
	r.mu.Lock()
	h := r.hosts[addr]
	first := h != nil && !h.down
	if h != nil {
		h.down = true
	}
	r.mu.Unlock()
	if first {
		r.Obs.CountV("remote.hosts_down", 1)
		r.Obs.Progressf("remote: agent %s unreachable past its backoff budget; marked down", addr)
	}
}

func (r *Launcher) noteRedial(addr string) {
	r.mu.Lock()
	if h := r.hosts[addr]; h != nil {
		h.redials++
	}
	r.mu.Unlock()
}

func (r *Launcher) transport() Transport {
	if r.Transport != nil {
		return r.Transport
	}
	return &TCP{}
}

func (r *Launcher) policy() retry.Policy {
	p := r.Policy
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	return p
}

func (r *Launcher) tick() time.Duration {
	if r.BackoffTick > 0 {
		return r.BackoffTick
	}
	return 25 * time.Millisecond
}

// remoteHandle is one remote lease's client side: a goroutine that dials,
// streams, verifies, appends, and redials until the worker exits or the
// outage budget is spent.
type remoteHandle struct {
	launcher *Launcher
	addr     string
	asg      *ledger.Assignment
	done     chan struct{}
	err      error

	killOnce sync.Once
	killCh   chan struct{}

	mu   sync.Mutex
	conn net.Conn // live stream; closed by Kill to unblock a read
}

// Done implements ledger.Handle.
func (h *remoteHandle) Done() (bool, error) {
	select {
	case <-h.done:
		return true, h.err
	default:
		return false, nil
	}
}

// Kill implements ledger.Handle: unblock the streaming goroutine, which
// sends a best-effort kill RPC so the agent SIGKILLs the worker's process
// group, then finishes. If the RPC cannot get through, the orphaned
// remote worker keeps appending on the agent's disk — harmless: records
// are pure, and nothing merges that file into this run again.
func (h *remoteHandle) Kill() {
	h.killOnce.Do(func() {
		close(h.killCh)
		h.mu.Lock()
		if h.conn != nil {
			h.conn.Close()
		}
		h.mu.Unlock()
	})
}

func (h *remoteHandle) killed() bool {
	select {
	case <-h.killCh:
		return true
	default:
		return false
	}
}

// setConn publishes the live stream so Kill can close it; a kill racing
// the publish still wins — the conn is closed under the same lock.
func (h *remoteHandle) setConn(c net.Conn) {
	h.mu.Lock()
	h.conn = c
	if c != nil && h.killed() {
		c.Close()
	}
	h.mu.Unlock()
}

func (h *remoteHandle) run(ctx context.Context) {
	r := h.launcher
	defer close(h.done)

	seed, err := os.ReadFile(h.asg.Journal)
	if err != nil {
		h.err = err
		return
	}
	out, err := os.OpenFile(h.asg.Journal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		h.err = err
		return
	}
	defer out.Close()
	offset := int64(len(seed))

	policy := r.policy()
	for attempt := 1; ; attempt++ {
		if h.killed() {
			h.finishKilled()
			return
		}
		if ctx.Err() != nil {
			h.err = ctx.Err()
			return
		}
		if attempt > policy.Attempts() {
			r.Obs.CountV("remote.giveups", 1)
			r.markDown(h.addr)
			h.err = fmt.Errorf("remote: agent %s unreachable after %d attempts (lease %s at offset %d)",
				h.addr, policy.Attempts(), h.asg.ID, offset)
			return
		}
		if attempt > 1 {
			// Deterministic logical backoff shape; wall-clock only scales it.
			wait := time.Duration(policy.Backoff(attempt)) * r.tick()
			select {
			case <-time.After(wait):
			case <-h.killCh:
				h.finishKilled()
				return
			case <-ctx.Done():
				h.err = ctx.Err()
				return
			}
			r.Obs.CountV("remote.reconnects", 1)
			r.noteRedial(h.addr)
		}
		dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		conn, err := r.transport().Dial(dctx, h.addr)
		cancel()
		if err != nil {
			r.Obs.CountV("remote.dial_failures", 1)
			continue
		}
		r.Obs.CountV("remote.dials", 1)
		h.setConn(conn)
		frames, exited, xerr := h.streamOnce(conn, out, &offset, seed)
		h.setConn(nil)
		conn.Close()
		if exited {
			h.err = xerr
			return
		}
		if h.killed() {
			h.finishKilled()
			return
		}
		r.Obs.CountV("remote.stream_breaks", 1)
		if frames > 0 {
			attempt = 0 // progress resets the outage budget
		}
	}
}

// streamOnce drives one connection: send the idempotent start request,
// then consume the reply stream, appending only complete CRC-verified
// frames to the local worker journal — the file size stays equal to the
// consumed agent offset, so resume is always exact. Any wire damage
// (short read, bad CRC, unknown type) just ends the stream; the caller
// redials and resumes.
func (h *remoteHandle) streamOnce(conn net.Conn, out *os.File, offset *int64, seed []byte) (frames int, exited bool, xerr error) {
	r := h.launcher
	req := &request{Op: "start", ID: h.asg.ID, Offset: *offset, Assignment: h.asg}
	if err := sendRequest(conn, req, seed); err != nil {
		return 0, false, nil
	}
	var pending []byte
	for {
		typ, payload, err := readMsg(conn)
		if err != nil {
			return frames, false, nil
		}
		switch typ {
		case msgJournal:
			pending = append(pending, payload...)
			for {
				_, _, n, ferr := journal.NextFrame(pending)
				if ferr != nil {
					return frames, false, nil // corrupted stream: resync via redial
				}
				if n == 0 {
					break
				}
				if _, werr := out.Write(pending[:n]); werr != nil {
					return frames, true, fmt.Errorf("remote: append worker journal: %w", werr)
				}
				*offset += int64(n)
				pending = pending[n:]
				frames++
				r.Obs.CountV("remote.frames", 1)
				r.Obs.CountV("remote.bytes", int64(n))
			}
		case msgTelemetry:
			if h.asg.Telemetry != "" && writeSidecar(h.asg.Telemetry, payload) == nil {
				r.Obs.CountV("remote.telemetry_snapshots", 1)
			}
		case msgExit:
			var st exitStatus
			if json.Unmarshal(payload, &st) != nil {
				return frames, false, nil
			}
			if st.Error != "" {
				return frames, true, fmt.Errorf("remote: worker %s on %s: %s", h.asg.ID, h.addr, st.Error)
			}
			return frames, true, nil
		default:
			return frames, false, nil
		}
	}
}

// finishKilled sends the kill RPC on a fresh short-deadline connection so
// the agent SIGKILLs the worker's process group, then finishes the
// handle. The dial deliberately ignores the run context — kills happen
// exactly when the run is being torn down.
func (h *remoteHandle) finishKilled() {
	r := h.launcher
	h.err = errors.New("remote: lease killed")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := Kill(ctx, r.transport(), h.addr, h.asg.ID); err != nil {
		r.Obs.CountV("remote.kill_rpc_failed", 1)
		return
	}
	r.Obs.CountV("remote.kills", 1)
}

// Kill sends a kill RPC for the lease id to the agent at addr over t
// (nil: the TCP transport), returning nil only on an acknowledged kill.
// Kill is idempotent agent-side: unknown ids still acknowledge.
func Kill(ctx context.Context, t Transport, addr, id string) error {
	if t == nil {
		t = &TCP{}
	}
	conn, err := t.Dial(ctx, addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	if err := sendRequest(conn, &request{Op: "kill", ID: id}, nil); err != nil {
		return err
	}
	typ, _, err := readMsg(conn)
	if err != nil {
		return err
	}
	if typ != msgKilled {
		return fmt.Errorf("remote: unexpected kill reply %q", typ)
	}
	return nil
}

// writeSidecar atomically replaces the local telemetry sidecar with the
// forwarded snapshot (same temp+rename discipline as the worker's own
// writes), so fleet aggregation and the heartbeat liveness check treat
// remote workers exactly like local ones.
func writeSidecar(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-telem-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
