package remote_test

import (
	"bytes"
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"wcet/internal/core"
	"wcet/internal/ga"
	"wcet/internal/journal"
	"wcet/internal/ledger"
	"wcet/internal/obs"
	"wcet/internal/remote"
	"wcet/internal/retry"
	"wcet/internal/testgen"
)

// The step function from the ledger tests: small enough to analyse in
// milliseconds, rich enough to exercise every pipeline stage.
const stepSrc = `
/*@ input */ /*@ range 0 2 */ int sel;
/*@ input */ /*@ range 0 20 */ char x;
int r;
void step(void) {
    r = 0;
    switch (sel) {
    case 0:
        if (x > 10) { r = 1; } else { r = 2; }
        break;
    case 1:
        r = x * 2;
        r = r + 1;
        break;
    default:
        r = 9;
        break;
    }
}
`

func stepOptions() core.Options {
	return core.Options{
		FuncName:   "step",
		Bound:      8,
		Exhaustive: true,
		Workers:    1,
		TestGen: testgen.Config{
			GA: ga.Config{Seed: 5, Pop: 32, MaxGens: 40, Stagnation: 10},
		},
	}
}

func referenceRun(t *testing.T, dir string) []byte {
	t.Helper()
	file, fn, g, err := core.Frontend(stepSrc, "step")
	if err != nil {
		t.Fatal(err)
	}
	j, err := journal.Open(filepath.Join(dir, "reference.journal"))
	if err != nil {
		t.Fatal(err)
	}
	opt := stepOptions()
	opt.Journal = j
	rep, err := core.AnalyzeGraphCtx(context.Background(), file, fn, g, opt)
	j.Close()
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := rep.WriteCanonical(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func canonical(t *testing.T, rep *core.Report) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := rep.WriteCanonical(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func startAgents(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		a, err := remote.StartAgent("127.0.0.1:0", remote.AgentConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
		addrs[i] = a.Addr()
	}
	return addrs
}

func remoteConfig(dir string, l ledger.Launcher, ob *obs.Observer) ledger.Config {
	return ledger.Config{
		JournalPath:  filepath.Join(dir, "run.journal"),
		Workers:      2,
		Launcher:     l,
		PollInterval: 2 * time.Millisecond,
		LeaseTicks:   500,
		Obs:          ob,
	}
}

// TestRemoteRunMatchesSingleProcess is the basic acceptance: a run whose
// every lease is shipped to loopback agents must produce a report
// byte-identical to the single-process reference, and the coordinator
// must not be able to tell — no reclamations, nothing quarantined.
func TestRemoteRunMatchesSingleProcess(t *testing.T) {
	dir := t.TempDir()
	want := referenceRun(t, dir)

	ob := obs.New(obs.Config{})
	launcher := &remote.Launcher{Agents: startAgents(t, 2), BackoffTick: time.Millisecond}
	spec, err := ledger.SpecFor(stepSrc, stepOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ledger.Run(context.Background(), spec, remoteConfig(dir, launcher, ob))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 || res.Reclaimed != 0 {
		t.Fatalf("healthy remote run degraded: quarantined=%v reclaimed=%d", res.Quarantined, res.Reclaimed)
	}
	if got := canonical(t, res.Report); !bytes.Equal(got, want) {
		t.Errorf("remote report differs from single-process reference:\n--- reference\n%s\n--- remote\n%s", want, got)
	}
	if n := ob.Metrics().Value("remote.frames"); n == 0 {
		t.Error("no frames streamed — the run did not actually go remote")
	}
	if n := ob.Metrics().Value("remote.telemetry_snapshots"); n == 0 {
		t.Error("no telemetry snapshots forwarded from the agents")
	}
	for _, h := range launcher.Hosts() {
		if h.State != "up" {
			t.Errorf("host %s marked %q after a healthy run", h.Addr, h.State)
		}
		if h.Leases == 0 {
			t.Errorf("host %s took no leases — round-robin broken", h.Addr)
		}
	}
}

// TestRemoteReconnectAcrossTears tears the agent→client stream mid-frame
// on the first two dials to every agent (17 and 403 bytes in — nowhere
// near a frame boundary) and duplicates a window on the third. The
// launcher must resume each stream from its verified offset and still
// deliver the byte-identical report with zero reclamations: wire damage
// is the transport's problem, never the ledger's.
func TestRemoteReconnectAcrossTears(t *testing.T) {
	dir := t.TempDir()
	want := referenceRun(t, dir)

	transport := remote.NewFaultTransport(nil,
		remote.NetRule{Dial: 0, Mode: remote.Tear, After: 17},
		remote.NetRule{Dial: 1, Mode: remote.Tear, After: 403},
		remote.NetRule{Dial: 2, Mode: remote.Duplicate, After: 64},
	)
	ob := obs.New(obs.Config{})
	launcher := &remote.Launcher{
		Agents:      startAgents(t, 2),
		Transport:   transport,
		BackoffTick: time.Millisecond,
	}
	spec, err := ledger.SpecFor(stepSrc, stepOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ledger.Run(context.Background(), spec, remoteConfig(dir, launcher, ob))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("torn streams quarantined units: %v", res.Quarantined)
	}
	if got := canonical(t, res.Report); !bytes.Equal(got, want) {
		t.Errorf("report differs from reference under injected tears:\n--- reference\n%s\n--- remote\n%s", want, got)
	}
	if fired := transport.Fired(); len(fired) == 0 {
		t.Error("no injected faults fired — the chaos did not happen")
	}
	if n := ob.Metrics().Value("remote.reconnects"); n == 0 {
		t.Error("no reconnects counted despite injected tears")
	}
}

// TestRemoteFallbackToLocal is the graceful-degradation acceptance: every
// dial to the only agent is refused, so the launcher must exhaust the
// lease's backoff budget, mark the host down, let the coordinator reclaim
// the units, and complete the run through the fallback launcher — with
// the downgrade visible in Hosts() and the remote.* counters, and the
// report still byte-identical (records are pure, so where they were
// computed cannot matter).
func TestRemoteFallbackToLocal(t *testing.T) {
	dir := t.TempDir()
	want := referenceRun(t, dir)

	transport := remote.NewFaultTransport(nil,
		remote.NetRule{Dial: -1, Mode: remote.Refuse},
	)
	ob := obs.New(obs.Config{})
	launcher := &remote.Launcher{
		Agents:      []string{"127.0.0.1:1"}, // never actually dialed: every dial is refused first
		Transport:   transport,
		Fallback:    &ledger.GoLauncher{},
		Policy:      retry.Policy{MaxAttempts: 3},
		BackoffTick: time.Millisecond,
	}
	spec, err := ledger.SpecFor(stepSrc, stepOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ledger.Run(context.Background(), spec, remoteConfig(dir, launcher, ob))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("fallback run quarantined units: %v", res.Quarantined)
	}
	if res.Reclaimed == 0 {
		t.Error("no units reclaimed — the unreachable host was never given up on")
	}
	if got := canonical(t, res.Report); !bytes.Equal(got, want) {
		t.Errorf("fallback report differs from reference:\n--- reference\n%s\n--- fallback\n%s", want, got)
	}
	hosts := launcher.Hosts()
	if len(hosts) != 1 || hosts[0].State != "down" {
		t.Errorf("unreachable host not marked down in fleet state: %+v", hosts)
	}
	if n := ob.Metrics().Value("remote.hosts_down"); n != 1 {
		t.Errorf("remote.hosts_down = %d, want 1", n)
	}
	if n := ob.Metrics().Value("remote.fallback_local"); n == 0 {
		t.Error("remote.fallback_local never counted — leases did not route to the fallback")
	}
}

// TestFaultTransportDeterministic pins the injector contract: which dials
// fail is a pure function of (address, per-address dial index), so two
// identically-armed transports over the same dial sequence must produce
// identical fired logs — the property that makes a chaos campaign
// replayable.
func TestFaultTransportDeterministic(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	addr := ln.Addr().String()

	arm := func() *remote.FaultTransport {
		return remote.NewFaultTransport(nil,
			remote.NetRule{Addr: addr, Dial: 1, Count: 2, Mode: remote.Refuse},
			remote.NetRule{Dial: 4, Mode: remote.Delay, Delay: time.Microsecond},
		)
	}
	drive := func(ft *remote.FaultTransport) []bool {
		var refused []bool
		for i := 0; i < 6; i++ {
			conn, err := ft.Dial(context.Background(), addr)
			refused = append(refused, err != nil)
			if conn != nil {
				conn.Close()
			}
		}
		return refused
	}
	a, b := drive(arm()), drive(arm())
	wantRefused := []bool{false, true, true, false, false, false}
	for i := range wantRefused {
		if a[i] != wantRefused[i] {
			t.Errorf("run A dial %d refused=%v, want %v", i, a[i], wantRefused[i])
		}
		if a[i] != b[i] {
			t.Errorf("dial %d differs across identically-armed transports (%v vs %v)", i, a[i], b[i])
		}
	}
}

// TestAgentKillUnknownIDAcks: a kill RPC for a lease the agent has never
// seen must still be acknowledged — the client treats kill as idempotent
// and may retry it against an agent that lost the worker.
func TestAgentKillUnknownIDAcks(t *testing.T) {
	a, err := remote.StartAgent("127.0.0.1:0", remote.AgentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := remote.Kill(context.Background(), nil, a.Addr(), "no-such-lease"); err != nil {
		t.Fatalf("kill RPC for unknown lease: %v", err)
	}
}
