package remote

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"wcet/internal/ledger"
)

// AgentConfig tunes StartAgent.
type AgentConfig struct {
	// Exec is the worker argv prefix (the assignment path is appended):
	// cmd/wcet passes [self, "-ledger-worker"], the chaos suites their
	// re-exec'd test binary. Empty runs workers in-process as goroutines —
	// no SIGKILL realism, but hermetic for unit tests and benchmarks.
	Exec []string
	// Env, when set, returns extra environment entries per spawn.
	Env func(assignmentPath string) []string
	// WorkDir holds the per-worker directories (default: a fresh temp
	// dir, removed on Close).
	WorkDir string
	// Poll is the journal/telemetry poll interval while streaming
	// (default 15ms).
	Poll time.Duration
}

// Agent serves workers to remote coordinators. It listens on a TCP
// address; for each start request it materialises the assignment and seed
// journal under its own work dir, spawns the worker (in its own process
// group, so a kill takes the whole tree), and streams the worker's
// journal bytes and telemetry sidecar back as they grow.
//
// Start is idempotent per lease id: a reconnecting client re-sends the
// same request with a higher offset and the agent attaches a fresh stream
// to the existing worker — the seed only matters the first time. Because
// the worker journal starts as the client's seed and only ever appends,
// the client's local copy stays an exact byte prefix of the agent's file,
// which is what makes "resume from offset N" sound: the agent replays
// file bytes, never re-serialises records.
//
// A stream dying (torn connection, injected tear, client gone) never
// disturbs the worker — it keeps appending locally, and the next attach
// picks up from wherever the client got to.
type Agent struct {
	cfg     AgentConfig
	ln      net.Listener
	workDir string
	ownDir  bool
	closeCh chan struct{}

	mu      sync.Mutex
	closed  bool
	workers map[string]*agentWorker
	conns   map[net.Conn]struct{}

	wg sync.WaitGroup
}

type agentWorker struct {
	id        string
	journal   string
	telemetry string
	kill      func()
	killOnce  sync.Once
	done      chan struct{}
	err       error
}

// StartAgent listens on addr ("127.0.0.1:0" for an ephemeral port) and
// serves until Close.
func StartAgent(addr string, cfg AgentConfig) (*Agent, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &Agent{
		cfg:     cfg,
		ln:      ln,
		workDir: cfg.WorkDir,
		closeCh: make(chan struct{}),
		workers: map[string]*agentWorker{},
		conns:   map[net.Conn]struct{}{},
	}
	if a.workDir == "" {
		dir, err := os.MkdirTemp("", "wcet-agent-*")
		if err != nil {
			ln.Close()
			return nil, err
		}
		a.workDir = dir
		a.ownDir = true
	}
	if a.cfg.Poll <= 0 {
		a.cfg.Poll = 15 * time.Millisecond
	}
	a.wg.Add(1)
	go a.accept()
	return a, nil
}

// Addr returns the bound listen address (host:port).
func (a *Agent) Addr() string { return a.ln.Addr().String() }

// Close kills every worker (SIGKILL to its process group), waits for the
// exits, shuts the listener and open streams down, and removes the work
// dir if the agent owns it.
func (a *Agent) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	workers := make([]*agentWorker, 0, len(a.workers))
	for _, w := range a.workers {
		workers = append(workers, w)
	}
	conns := make([]net.Conn, 0, len(a.conns))
	for c := range a.conns {
		conns = append(conns, c)
	}
	a.mu.Unlock()

	close(a.closeCh)
	err := a.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for _, w := range workers {
		w.killOnce.Do(w.kill)
	}
	for _, w := range workers {
		<-w.done
	}
	a.wg.Wait()
	if a.ownDir {
		os.RemoveAll(a.workDir)
	}
	return err
}

func (a *Agent) accept() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return // listener closed
		}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			conn.Close()
			return
		}
		a.conns[conn] = struct{}{}
		a.mu.Unlock()
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.handle(conn)
			conn.Close()
			a.mu.Lock()
			delete(a.conns, conn)
			a.mu.Unlock()
		}()
	}
}

func (a *Agent) handle(conn net.Conn) {
	req, seed, err := readRequest(conn)
	if err != nil {
		return // torn or garbled request: the client redials
	}
	switch req.Op {
	case "kill":
		a.killWorker(req.ID)
		_ = writeMsg(conn, msgKilled, nil)
	case "start":
		w, err := a.ensureWorker(req, seed)
		if err != nil {
			_ = writeMsg(conn, msgExit, mustJSON(exitStatus{Error: err.Error()}))
			return
		}
		a.stream(conn, w, req.Offset)
	}
}

// ensureWorker returns the worker for the lease id, spawning it on first
// sight. The assignment's journal and telemetry paths are rewritten into
// the agent's own work dir — the coordinator's paths mean nothing here.
func (a *Agent) ensureWorker(req *request, seed []byte) (*agentWorker, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil, errors.New("remote: agent closing")
	}
	if w, ok := a.workers[req.ID]; ok {
		return w, nil
	}
	if req.Assignment == nil {
		return nil, fmt.Errorf("remote: start %s carries no assignment", req.ID)
	}
	dir := filepath.Join(a.workDir, req.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	asg := *req.Assignment
	asg.Journal = filepath.Join(dir, "worker.journal")
	if asg.Telemetry != "" {
		asg.Telemetry = filepath.Join(dir, "worker.telem.json")
	}
	if err := os.WriteFile(asg.Journal, seed, 0o644); err != nil {
		return nil, err
	}
	asgPath := filepath.Join(dir, "assignment.json")
	if err := ledger.WriteAssignment(asgPath, &asg); err != nil {
		return nil, err
	}
	w := &agentWorker{id: req.ID, journal: asg.Journal, telemetry: asg.Telemetry,
		done: make(chan struct{})}
	if err := a.spawn(w, asgPath); err != nil {
		return nil, err
	}
	a.workers[req.ID] = w
	return w, nil
}

func (a *Agent) spawn(w *agentWorker, asgPath string) error {
	if len(a.cfg.Exec) == 0 {
		ctx, cancel := context.WithCancel(context.Background())
		w.kill = cancel
		go func() {
			w.err = ledger.RunWorker(ctx, asgPath, ledger.WorkerOptions{})
			close(w.done)
		}()
		return nil
	}
	argv := a.cfg.Exec
	cmd := exec.Command(argv[0], append(append([]string(nil), argv[1:]...), asgPath)...)
	cmd.Env = os.Environ()
	if a.cfg.Env != nil {
		cmd.Env = append(cmd.Env, a.cfg.Env(asgPath)...)
	}
	cmd.Stdout = os.Stderr // worker diagnostics must not pollute agent stdout
	cmd.Stderr = os.Stderr
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := cmd.Start(); err != nil {
		return err
	}
	pid := cmd.Process.Pid
	w.kill = func() {
		if err := syscall.Kill(-pid, syscall.SIGKILL); err != nil {
			_ = syscall.Kill(pid, syscall.SIGKILL)
		}
	}
	go func() {
		w.err = cmd.Wait()
		close(w.done)
	}()
	return nil
}

func (a *Agent) killWorker(id string) {
	a.mu.Lock()
	w := a.workers[id]
	a.mu.Unlock()
	if w == nil {
		return
	}
	w.killOnce.Do(w.kill)
}

// stream tails the worker's journal and telemetry out to the client from
// the requested offset until the worker exits, the connection breaks, or
// the agent closes. A write failure just ends this stream — the worker
// keeps running, and the client's reconnect attaches a new one at
// whatever offset it actually landed.
func (a *Agent) stream(conn net.Conn, w *agentWorker, offset int64) {
	var lastTelem []byte
	flush := func() error {
		if size := agentFileSize(w.journal); size > offset {
			chunk, err := readRange(w.journal, offset, size)
			if err != nil {
				return err
			}
			if len(chunk) > 0 {
				if err := writeMsg(conn, msgJournal, chunk); err != nil {
					return err
				}
				offset += int64(len(chunk))
			}
		}
		if w.telemetry != "" {
			if data, err := os.ReadFile(w.telemetry); err == nil && !bytes.Equal(data, lastTelem) {
				if err := writeMsg(conn, msgTelemetry, data); err != nil {
					return err
				}
				lastTelem = append(lastTelem[:0], data...)
			}
		}
		return nil
	}
	ticker := time.NewTicker(a.cfg.Poll)
	defer ticker.Stop()
	for {
		if err := flush(); err != nil {
			return
		}
		select {
		case <-w.done:
			if err := flush(); err != nil { // bytes appended just before exit
				return
			}
			st := exitStatus{}
			if w.err != nil {
				st.Error = w.err.Error()
			}
			_ = writeMsg(conn, msgExit, mustJSON(st))
			return
		case <-a.closeCh:
			return
		case <-ticker.C:
		}
	}
}

func agentFileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

func readRange(path string, from, to int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, to-from)
	n, err := f.ReadAt(buf, from)
	if err != nil && err != io.EOF {
		return nil, err
	}
	return buf[:n], nil
}
