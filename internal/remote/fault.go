package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"wcet/internal/faults"
)

// NetMode is what an injected network fault does.
type NetMode int

// Network fault modes.
const (
	// Refuse makes the dial fail — a dropped packet or a partition. A rule
	// covering a run of dial indexes models a partition that heals once
	// the covered dials are spent.
	Refuse NetMode = iota
	// Delay stalls the dial for NetRule.Delay before connecting.
	Delay
	// Tear cuts the agent→client stream after NetRule.After delivered
	// bytes — mid-frame for almost every value of After.
	Tear
	// Duplicate re-delivers a window of already-delivered agent→client
	// bytes after NetRule.After bytes, garbling the message framing the
	// way a confused middlebox would.
	Duplicate
)

func (m NetMode) String() string {
	switch m {
	case Refuse:
		return "refuse"
	case Delay:
		return "delay"
	case Tear:
		return "tear"
	case Duplicate:
		return "dup"
	}
	return fmt.Sprintf("netmode(%d)", int(m))
}

// NetRule arms one network fault. Firing is a pure function of the dial's
// (address, per-address dial index) — never of wall-clock or goroutine
// scheduling — so a chaos campaign replays identically across runs and
// worker counts.
type NetRule struct {
	// Addr restricts the rule to one agent address; "" covers every agent.
	Addr string
	// Dial is the first per-address dial index covered; -1 covers all.
	Dial int
	// Count extends coverage over this many consecutive dial indexes
	// (default 1; ignored when Dial is -1).
	Count int
	// Mode selects the fault.
	Mode NetMode
	// After is the agent→client byte count a Tear/Duplicate lets through
	// before firing.
	After int64
	// Window is how many trailing bytes Duplicate re-delivers (default 16).
	Window int
	// Delay is the Delay mode's stall (default 5ms).
	Delay time.Duration
}

// FaultTransport wraps a Transport with deterministic fault injection. It
// reuses the internal/faults engine for rule matching and firing
// bookkeeping: each NetRule is armed as faults rules at the site
// "remote.<mode>@<addr>" (or "…@*" for address-wildcard rules) indexed by
// the per-address dial counter, so the injector's Fired log doubles as
// the campaign's replayable record.
type FaultTransport struct {
	inner Transport
	inj   *faults.Injector

	mu    sync.Mutex
	dials map[string]int
}

// NewFaultTransport arms rules over inner (nil inner: the TCP transport).
func NewFaultTransport(inner Transport, rules ...NetRule) *FaultTransport {
	if inner == nil {
		inner = &TCP{}
	}
	var fr []faults.Rule
	for _, r := range rules {
		site := fmt.Sprintf("remote.%s@%s", r.Mode, siteAddr(r.Addr))
		count := r.Count
		if count <= 0 {
			count = 1
		}
		idxs := []int{-1}
		if r.Dial >= 0 {
			idxs = idxs[:0]
			for i := 0; i < count; i++ {
				idxs = append(idxs, r.Dial+i)
			}
		}
		for _, idx := range idxs {
			switch r.Mode {
			case Delay:
				d := r.Delay
				if d <= 0 {
					d = 5 * time.Millisecond
				}
				fr = append(fr, faults.Rule{Site: site, Index: idx, Mode: faults.Stall, Delay: d})
			case Refuse:
				fr = append(fr, faults.Rule{Site: site, Index: idx, Mode: faults.Fail,
					Err: errors.New("remote: injected partition")})
			case Tear, Duplicate:
				w := r.Window
				if w <= 0 {
					w = 16
				}
				fr = append(fr, faults.Rule{Site: site, Index: idx, Mode: faults.Fail,
					Err: &streamFault{mode: r.Mode, after: r.After, window: w}})
			}
		}
	}
	return &FaultTransport{inner: inner, inj: faults.New(fr...), dials: map[string]int{}}
}

func siteAddr(addr string) string {
	if addr == "" {
		return "*"
	}
	return addr
}

// streamFault rides a faults.Rule's Err field, carrying the tear/duplicate
// parameters from arming to firing.
type streamFault struct {
	mode   NetMode
	after  int64
	window int
}

func (f *streamFault) Error() string {
	return fmt.Sprintf("remote: injected %s after %d bytes", f.mode, f.after)
}

// Fired returns the sorted log of injected faults that fired, as
// "site#index:mode" strings.
func (t *FaultTransport) Fired() []string { return t.inj.Fired() }

// Dial implements Transport: consult the armed rules for this (address,
// dial index), then dial through, wrapping the connection when a stream
// fault covers it. Address-specific rules win over wildcard ones.
func (t *FaultTransport) Dial(ctx context.Context, addr string) (net.Conn, error) {
	t.mu.Lock()
	idx := t.dials[addr]
	t.dials[addr]++
	t.mu.Unlock()

	fctx := faults.With(ctx, t.inj)
	fire := func(mode NetMode) error {
		if err := faults.Fire(fctx, fmt.Sprintf("remote.%s@%s", mode, addr), idx); err != nil {
			return err
		}
		return faults.Fire(fctx, fmt.Sprintf("remote.%s@*", mode), idx)
	}
	if err := fire(Refuse); err != nil {
		return nil, err
	}
	if err := fire(Delay); err != nil {
		return nil, err // a stall cancelled mid-delay surfaces the ctx error
	}
	conn, err := t.inner.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	for _, mode := range []NetMode{Tear, Duplicate} {
		ferr := fire(mode)
		if ferr == nil {
			continue
		}
		sf, ok := ferr.(*streamFault)
		if !ok {
			conn.Close()
			return nil, ferr
		}
		conn = &faultConn{Conn: conn, fault: sf}
	}
	return conn, nil
}

// faultConn corrupts the agent→client direction of one connection: a Tear
// closes it after `after` delivered bytes (capping reads so the cut lands
// at exactly that byte, even mid-frame); a Duplicate re-delivers the last
// `window` bytes once, then passes everything through. The client→agent
// direction is untouched — request-path damage already manifests as the
// agent closing the connection.
type faultConn struct {
	net.Conn
	fault  *streamFault
	seen   int64
	fired  bool
	replay []byte
	tail   []byte
}

func (c *faultConn) Read(p []byte) (int, error) {
	if len(c.replay) > 0 {
		n := copy(p, c.replay)
		c.replay = c.replay[n:]
		return n, nil
	}
	if !c.fired && c.seen >= c.fault.after {
		c.fired = true
		switch c.fault.mode {
		case Tear:
			c.Conn.Close()
			return 0, fmt.Errorf("remote: injected tear after %d bytes", c.seen)
		case Duplicate:
			w := c.fault.window
			if w > len(c.tail) {
				w = len(c.tail)
			}
			if w > 0 {
				c.replay = append([]byte(nil), c.tail[len(c.tail)-w:]...)
				n := copy(p, c.replay)
				c.replay = c.replay[n:]
				return n, nil
			}
		}
	}
	max := len(p)
	if !c.fired {
		if rem := c.fault.after - c.seen; int64(max) > rem {
			max = int(rem)
		}
	}
	if max <= 0 {
		max = 1
	}
	n, err := c.Conn.Read(p[:max])
	if n > 0 && !c.fired && c.fault.mode == Duplicate {
		c.tail = append(c.tail, p[:n]...)
		if len(c.tail) > c.fault.window {
			c.tail = c.tail[len(c.tail)-c.fault.window:]
		}
	}
	c.seen += int64(n)
	return n, err
}
