package remote

import (
	"context"
	"net"
	"time"
)

// Transport dials agents. The indirection exists so the chaos suites can
// wrap the real network in a deterministic fault injector (FaultTransport)
// without the launcher knowing: every robustness path — refused dials,
// delayed handshakes, torn streams, duplicated bytes — is exercised
// through exactly the interface production traffic uses.
type Transport interface {
	// Dial opens a connection to an agent. The context bounds connection
	// establishment only, not the life of the connection.
	Dial(ctx context.Context, addr string) (net.Conn, error)
}

// TCP is the production transport: plain TCP with a bounded dial, so an
// unreachable host costs a timeout, never a hang.
type TCP struct {
	// Timeout bounds connection establishment (default 2s).
	Timeout time.Duration
}

// Dial implements Transport.
func (t *TCP) Dial(ctx context.Context, addr string) (net.Conn, error) {
	timeout := t.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	d := net.Dialer{Timeout: timeout}
	return d.DialContext(ctx, "tcp", addr)
}
