package bv

import (
	"testing"
	"testing/quick"

	"wcet/internal/bdd"
)

// harness builds two symbolic 8-bit inputs and evaluates an operation
// against its concrete counterpart for all (or random) operand values.
type harness struct {
	m    *bdd.Manager
	a, b Vec
}

func newHarness(signed bool) *harness {
	m := bdd.New(16)
	av := make([]int, 8)
	bvars := make([]int, 8)
	for i := 0; i < 8; i++ {
		av[i] = i
		bvars[i] = 8 + i
	}
	return &harness{
		m: m,
		a: FromVars(m, av, signed),
		b: FromVars(m, bvars, signed),
	}
}

func (h *harness) assign(a, b int64) []bool {
	out := make([]bool, 16)
	for i := 0; i < 8; i++ {
		out[i] = a&(1<<uint(i)) != 0
		out[8+i] = b&(1<<uint(i)) != 0
	}
	return out
}

func signed8(v int64) int64 {
	v &= 0xFF
	if v&0x80 != 0 {
		v -= 0x100
	}
	return v
}

func TestQuickAddSub(t *testing.T) {
	h := newHarness(true)
	sum := Add(h.m, h.a, h.b)
	dif := Sub(h.m, h.a, h.b)
	f := func(a, b int8) bool {
		asg := h.assign(int64(a), int64(b))
		gotSum := Eval(h.m, sum, asg)
		gotDif := Eval(h.m, dif, asg)
		return gotSum == signed8(int64(a)+int64(b)) && gotDif == signed8(int64(a)-int64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMul(t *testing.T) {
	h := newHarness(true)
	prod := Mul(h.m, h.a, h.b)
	f := func(a, b int8) bool {
		asg := h.assign(int64(a), int64(b))
		return Eval(h.m, prod, asg) == signed8(int64(a)*int64(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickComparisonsSigned(t *testing.T) {
	h := newHarness(true)
	lt := Lt(h.m, h.a, h.b)
	le := Le(h.m, h.a, h.b)
	eq := Eq(h.m, h.a, h.b)
	f := func(a, b int8) bool {
		asg := h.assign(int64(a), int64(b))
		return h.m.Eval(lt, asg) == (a < b) &&
			h.m.Eval(le, asg) == (a <= b) &&
			h.m.Eval(eq, asg) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickComparisonsUnsigned(t *testing.T) {
	h := newHarness(false)
	lt := Lt(h.m, h.a, h.b)
	f := func(a, b uint8) bool {
		asg := h.assign(int64(a), int64(b))
		return h.m.Eval(lt, asg) == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBitwiseAndShifts(t *testing.T) {
	h := newHarness(false)
	andv := Bitwise(h.m, h.m.And, h.a, h.b)
	orv := Bitwise(h.m, h.m.Or, h.a, h.b)
	xorv := Bitwise(h.m, h.m.Xor, h.a, h.b)
	notv := NotBits(h.m, h.a)
	shl3 := ShlConst(h.m, h.a, 3)
	shr2 := ShrConst(h.m, h.a, 2)
	f := func(a, b uint8) bool {
		asg := h.assign(int64(a), int64(b))
		return Eval(h.m, andv, asg) == int64(a&b) &&
			Eval(h.m, orv, asg) == int64(a|b) &&
			Eval(h.m, xorv, asg) == int64(a^b) &&
			Eval(h.m, notv, asg) == int64(^a) &&
			Eval(h.m, shl3, asg) == int64(a<<3) &&
			Eval(h.m, shr2, asg) == int64(a>>2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArithmeticShiftRight(t *testing.T) {
	h := newHarness(true)
	shr := ShrConst(h.m, h.a, 2)
	f := func(a int8) bool {
		asg := h.assign(int64(a), 0)
		return Eval(h.m, shr, asg) == int64(a>>2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegAndNonZero(t *testing.T) {
	h := newHarness(true)
	neg := Neg(h.m, h.a)
	nz := NonZero(h.m, h.a)
	f := func(a int8) bool {
		asg := h.assign(int64(a), 0)
		return Eval(h.m, neg, asg) == signed8(-int64(a)) &&
			h.m.Eval(nz, asg) == (a != 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtendSignAndZero(t *testing.T) {
	m := bdd.New(8)
	vars := []int{0, 1, 2, 3}
	sv := FromVars(m, vars, true)
	uv := FromVars(m, vars, false)
	s8 := Extend(m, sv, 8)
	u8 := Extend(m, uv, 8)
	for val := int64(0); val < 16; val++ {
		asg := make([]bool, 8)
		for i := 0; i < 4; i++ {
			asg[i] = val&(1<<uint(i)) != 0
		}
		wantS := val
		if val >= 8 {
			wantS = val - 16
		}
		if got := Eval(m, s8, asg); got != wantS {
			t.Errorf("sign extend %d → %d, want %d", val, got, wantS)
		}
		if got := Eval(m, u8, asg); got != val {
			t.Errorf("zero extend %d → %d, want %d", val, got, val)
		}
	}
}

func TestMixedWidthAlignment(t *testing.T) {
	m := bdd.New(8)
	a := FromVars(m, []int{0, 1, 2, 3}, true) // 4-bit signed
	c := Const(m, 100, 8, true)
	sum := Add(m, a, c)
	asg := make([]bool, 8)
	// a = -3 (0b1101)
	asg[0], asg[2], asg[3] = true, true, true
	if got := Eval(m, sum, asg); got != 97 {
		t.Errorf("-3 + 100 = %d, want 97", got)
	}
}

func TestMux(t *testing.T) {
	m := bdd.New(9)
	cond := m.Var(8)
	a := FromVars(m, []int{0, 1, 2, 3}, false)
	b := FromVars(m, []int{4, 5, 6, 7}, false)
	mx := Mux(m, cond, a, b)
	asg := make([]bool, 9)
	asg[1] = true // a = 2
	asg[4] = true // b = 1
	asg[8] = true
	if got := Eval(m, mx, asg); got != 2 {
		t.Errorf("mux(true) = %d, want 2", got)
	}
	asg[8] = false
	if got := Eval(m, mx, asg); got != 1 {
		t.Errorf("mux(false) = %d, want 1", got)
	}
}

func TestConstRoundTrip(t *testing.T) {
	m := bdd.New(1)
	for _, v := range []int64{0, 1, -1, 42, -128, 127} {
		c := Const(m, v, 8, true)
		if got := Eval(m, c, []bool{false}); got != v {
			t.Errorf("Const(%d) evaluates to %d", v, got)
		}
	}
}
