// Package bv provides symbolic bit-vectors over BDDs: fixed-width two's
// complement words whose bits are BDD functions. The C-to-model translator
// bit-blasts expressions into these vectors; every operation mirrors the
// concrete semantics of internal/interp (asserted by differential tests).
package bv

import (
	"fmt"

	"wcet/internal/bdd"
)

// Vec is a little-endian vector of BDD bits with signedness for extension
// and ordered comparison.
type Vec struct {
	Bits   []bdd.Ref
	Signed bool
}

// Width reports the bit width.
func (v Vec) Width() int { return len(v.Bits) }

// Const builds a constant vector.
func Const(m *bdd.Manager, val int64, bits int, signed bool) Vec {
	v := Vec{Bits: make([]bdd.Ref, bits), Signed: signed}
	for i := 0; i < bits; i++ {
		if val&(1<<uint(i)) != 0 {
			v.Bits[i] = bdd.True
		} else {
			v.Bits[i] = bdd.False
		}
	}
	return v
}

// FromVars builds a vector whose bit i is BDD variable vars[i].
func FromVars(m *bdd.Manager, vars []int, signed bool) Vec {
	v := Vec{Bits: make([]bdd.Ref, len(vars)), Signed: signed}
	for i, idx := range vars {
		v.Bits[i] = m.Var(idx)
	}
	return v
}

// signBit returns the sign/zero extension bit of v.
func (v Vec) signBit() bdd.Ref {
	if !v.Signed || len(v.Bits) == 0 {
		return bdd.False
	}
	return v.Bits[len(v.Bits)-1]
}

// Extend returns v widened (sign- or zero-extended per v.Signed) or
// truncated to the given width.
func Extend(m *bdd.Manager, v Vec, bits int) Vec {
	out := Vec{Bits: make([]bdd.Ref, bits), Signed: v.Signed}
	ext := v.signBit()
	for i := 0; i < bits; i++ {
		if i < len(v.Bits) {
			out.Bits[i] = v.Bits[i]
		} else {
			out.Bits[i] = ext
		}
	}
	return out
}

// Retype returns v with a different signedness flag (no bit change).
func Retype(v Vec, signed bool) Vec {
	return Vec{Bits: v.Bits, Signed: signed}
}

// align widens both operands to a common width.
func align(m *bdd.Manager, a, b Vec) (Vec, Vec) {
	w := a.Width()
	if b.Width() > w {
		w = b.Width()
	}
	return Extend(m, a, w), Extend(m, b, w)
}

// Add returns a + b at the common width (wrapping).
func Add(m *bdd.Manager, a, b Vec) Vec {
	a, b = align(m, a, b)
	return addWithCarry(m, a, b, bdd.False)
}

// Sub returns a - b at the common width (wrapping).
func Sub(m *bdd.Manager, a, b Vec) Vec {
	a, b = align(m, a, b)
	nb := Vec{Bits: make([]bdd.Ref, b.Width()), Signed: b.Signed}
	for i, bit := range b.Bits {
		nb.Bits[i] = m.Not(bit)
	}
	return addWithCarry(m, a, nb, bdd.True)
}

func addWithCarry(m *bdd.Manager, a, b Vec, carry bdd.Ref) Vec {
	out := Vec{Bits: make([]bdd.Ref, a.Width()), Signed: a.Signed || b.Signed}
	c := carry
	for i := range a.Bits {
		x, y := a.Bits[i], b.Bits[i]
		s := m.Xor(m.Xor(x, y), c)
		c = m.Or(m.And(x, y), m.And(c, m.Xor(x, y)))
		out.Bits[i] = s
	}
	return out
}

// Neg returns -v (two's complement).
func Neg(m *bdd.Manager, v Vec) Vec {
	zero := Const(m, 0, v.Width(), v.Signed)
	return Sub(m, zero, v)
}

// NotBits returns ~v.
func NotBits(m *bdd.Manager, v Vec) Vec {
	out := Vec{Bits: make([]bdd.Ref, v.Width()), Signed: v.Signed}
	for i, b := range v.Bits {
		out.Bits[i] = m.Not(b)
	}
	return out
}

// Bitwise applies a bit-level operator pairwise.
func Bitwise(m *bdd.Manager, op func(a, b bdd.Ref) bdd.Ref, a, b Vec) Vec {
	a, b = align(m, a, b)
	out := Vec{Bits: make([]bdd.Ref, a.Width()), Signed: a.Signed || b.Signed}
	for i := range a.Bits {
		out.Bits[i] = op(a.Bits[i], b.Bits[i])
	}
	return out
}

// Mul returns a × b at the common width (shift-and-add; wrapping).
func Mul(m *bdd.Manager, a, b Vec) Vec {
	a, b = align(m, a, b)
	w := a.Width()
	acc := Const(m, 0, w, a.Signed || b.Signed)
	for i := 0; i < w; i++ {
		// acc += (b[i] ? a << i : 0)
		shifted := ShlConst(m, a, i)
		var masked Vec
		masked.Signed = acc.Signed
		masked.Bits = make([]bdd.Ref, w)
		for j := 0; j < w; j++ {
			masked.Bits[j] = m.And(b.Bits[i], shifted.Bits[j])
		}
		acc = Add(m, acc, masked)
	}
	return acc
}

// ShlConst shifts left by a constant amount.
func ShlConst(m *bdd.Manager, v Vec, k int) Vec {
	out := Vec{Bits: make([]bdd.Ref, v.Width()), Signed: v.Signed}
	for i := range out.Bits {
		if i-k >= 0 && i-k < v.Width() {
			out.Bits[i] = v.Bits[i-k]
		} else {
			out.Bits[i] = bdd.False
		}
	}
	return out
}

// ShrConst shifts right by a constant amount (arithmetic when signed).
func ShrConst(m *bdd.Manager, v Vec, k int) Vec {
	out := Vec{Bits: make([]bdd.Ref, v.Width()), Signed: v.Signed}
	fill := v.signBit()
	for i := range out.Bits {
		if i+k < v.Width() {
			out.Bits[i] = v.Bits[i+k]
		} else {
			out.Bits[i] = fill
		}
	}
	return out
}

// Eq returns the predicate a == b.
func Eq(m *bdd.Manager, a, b Vec) bdd.Ref {
	a, b = align(m, a, b)
	r := bdd.True
	for i := range a.Bits {
		r = m.And(r, m.Iff(a.Bits[i], b.Bits[i]))
		if r == bdd.False {
			break
		}
	}
	return r
}

// Lt returns the predicate a < b, signed when either operand is signed.
func Lt(m *bdd.Manager, a, b Vec) bdd.Ref {
	a, b = align(m, a, b)
	signed := a.Signed || b.Signed
	w := a.Width()
	if w == 0 {
		return bdd.False
	}
	// Compare from the least significant bit up: lt_i incorporates bits < i.
	lt := bdd.False
	for i := 0; i < w; i++ {
		ai, bi := a.Bits[i], b.Bits[i]
		if i == w-1 && signed {
			// Sign bit inverts the comparison: a negative, b non-negative → a < b.
			biGTai := m.And(ai, m.Not(bi)) // a sign 1, b sign 0 → a < b
			eq := m.Iff(ai, bi)
			lt = m.Or(biGTai, m.And(eq, lt))
			continue
		}
		biMore := m.And(m.Not(ai), bi)
		eq := m.Iff(ai, bi)
		lt = m.Or(biMore, m.And(eq, lt))
	}
	return lt
}

// Le returns a <= b.
func Le(m *bdd.Manager, a, b Vec) bdd.Ref {
	return m.Or(Lt(m, a, b), Eq(m, a, b))
}

// NonZero returns the predicate v != 0.
func NonZero(m *bdd.Manager, v Vec) bdd.Ref {
	r := bdd.False
	for _, b := range v.Bits {
		r = m.Or(r, b)
	}
	return r
}

// Mux returns c ? a : b bitwise.
func Mux(m *bdd.Manager, c bdd.Ref, a, b Vec) Vec {
	a, b = align(m, a, b)
	out := Vec{Bits: make([]bdd.Ref, a.Width()), Signed: a.Signed || b.Signed}
	for i := range a.Bits {
		out.Bits[i] = m.ITE(c, a.Bits[i], b.Bits[i])
	}
	return out
}

// Eval evaluates the vector under a total assignment, interpreting the
// result per the vector's signedness.
func Eval(m *bdd.Manager, v Vec, assign []bool) int64 {
	var out int64
	for i, b := range v.Bits {
		if m.Eval(b, assign) {
			out |= 1 << uint(i)
		}
	}
	if v.Signed && v.Width() > 0 && v.Width() < 64 && out&(1<<uint(v.Width()-1)) != 0 {
		out -= 1 << uint(v.Width())
	}
	return out
}

// String renders constant vectors, else a placeholder.
func (v Vec) String() string {
	return fmt.Sprintf("bv%d", v.Width())
}
