// Package core orchestrates the complete hybrid measurement-based WCET
// analysis of the paper:
//
//	parse → semantic check → CFG → PS partitioning (path bound b)
//	      → hybrid test-data generation (GA, then model checking)
//	      → instrumented measurement on the cycle-accurate simulator
//	      → timing-schema WCET bound
//
// The pipeline is budgeted and cancellable end to end: the context passed
// to AnalyzeCtx bounds the whole analysis (cancel or deadline), Options
// bounds each stage (model-checker step/node caps and per-call timeout, GA
// evaluation cap), and a stage that runs out of budget degrades the result
// instead of aborting it. The final Report is soundness-aware — it states
// whether the bound is exact, safe-but-degraded, or unavailable, and
// carries a degradation ledger attributing every unknown path to its
// cause.
//
// The root package wcet re-exports this entry point as the public API.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/codegen"
	"wcet/internal/fail"
	"wcet/internal/interp"
	"wcet/internal/journal"
	"wcet/internal/measure"
	"wcet/internal/obs"
	"wcet/internal/partition"
	"wcet/internal/paths"
	"wcet/internal/schema"
	"wcet/internal/sim"
	"wcet/internal/testgen"
	"wcet/internal/vcache"
)

// Options configure an analysis.
type Options struct {
	// FuncName selects the analysed function ("" = first).
	FuncName string
	// Bound is the partitioning path bound b (default 8).
	Bound int64
	// TestGen tunes the hybrid generator.
	TestGen testgen.Config
	// MCTimeout bounds each individual model-checker call's wall clock
	// (0 = none). It fills TestGen.MC.Timeout when that is unset. A call
	// that times out leaves its path Unknown and degrades the report; it
	// does not abort the analysis.
	MCTimeout time.Duration
	// Exhaustive additionally measures every input vector end to end when
	// the input space is at most MaxExhaustive (ground truth).
	Exhaustive    bool
	MaxExhaustive int
	// Costs overrides the simulator's cycle model.
	SimOptions sim.Options
	// Workers bounds the fan-out of every parallel pipeline stage — GA
	// searches, model-checker calls, measurement replays and the
	// exhaustive sweep. 0 (the default) uses one worker per CPU,
	// 1 reproduces the serial pipeline. Every stage merges its results
	// deterministically, so the Report is identical for every value.
	Workers int
	// Obs receives the analysis's observability stream: stage spans, the
	// metrics registry and -v progress. nil (the default) disables
	// observation at the cost of one pointer check per site; the attached
	// observer is also threaded through the context, so every stage —
	// testgen, both model-checker engines, the GA, measurement, the
	// partitioning sweep and the worker pool — reports into the same
	// registry and trace. Deterministic exports (canonical snapshot and
	// event stream) are byte-identical for every Workers value.
	Obs *obs.Observer
	// Journal, when set, makes the run durable: every completed unit of
	// work (per-path generation verdict, per-vector measurement) is
	// appended to the journal as it finishes, and a later run over the same
	// program and options resumes by replaying journaled units instead of
	// recomputing them. The journal is bound to a fingerprint of (program,
	// deterministic options) — a mismatch resets it and runs clean — and
	// the final Report is byte-identical (see Report.WriteCanonical)
	// whether the analysis ran in one shot or was killed and resumed any
	// number of times, at any worker count. nil disables journaling.
	Journal *journal.Journal
	// Cache, when set, makes re-analysis incremental: per-path
	// model-checker verdicts and GA outcomes are memoized in the persistent
	// verdict store under content-addressed keys, so a later run — of this
	// program or an edited one — replays every verdict whose sliced query
	// the edit left untouched instead of re-proving it. The journal stays
	// authoritative for a resumed run (journal replay wins over cache, and
	// journaled units are copied into the cache); a warm run's Report is
	// byte-identical (WriteCanonical) to a clean run's at any worker count.
	// nil disables caching.
	Cache *vcache.Store
}

func (o Options) withDefaults() Options {
	if o.Bound == 0 {
		o.Bound = 8
	}
	if o.MaxExhaustive == 0 {
		o.MaxExhaustive = 1 << 16
	}
	return o
}

// resolvedTestGen is the generator configuration the stages actually see:
// the Section 3.2 optimisations always on, worker count and per-call
// model-checker timeout filled from the top-level options. The journal
// fingerprint digests exactly this resolved form, so every consumer
// (analysis, frontier planning, distributed workers) must resolve the same
// way.
func (o Options) resolvedTestGen() testgen.Config {
	tg := o.TestGen
	tg.Optimise = true
	if tg.Workers == 0 {
		tg.Workers = o.Workers
	}
	if tg.MC.Timeout == 0 {
		tg.MC.Timeout = o.MCTimeout
	}
	return tg
}

// Soundness classifies how much trust the computed WCET bound deserves.
type Soundness int

// Soundness levels.
const (
	// BoundExact: every target path was covered or proven infeasible; the
	// bound is safe with respect to the measured cost model.
	BoundExact Soundness = iota
	// BoundDegradedSafe: some paths stayed Unknown (budget, timeout or
	// model-checker failure), but an exhaustive input sweep restored full
	// coverage of the affected segments — the bound is safe, obtained the
	// expensive way.
	BoundDegradedSafe
	// BoundUnavailable: Unknown paths remain and the input space is too
	// large for the exhaustive fallback; no safe bound can be stated.
	// Report.WCET is -1.
	BoundUnavailable
)

func (s Soundness) String() string {
	switch s {
	case BoundExact:
		return "exact"
	case BoundDegradedSafe:
		return "safe-but-degraded"
	case BoundUnavailable:
		return "unavailable"
	}
	return fmt.Sprintf("soundness(%d)", int(s))
}

// Degradation is one ledger entry: a target path the generator could not
// resolve, the plan units whose coverage that weakens, the recorded cause,
// and how (whether) the pipeline compensated.
type Degradation struct {
	// PathKey identifies the unresolved target path.
	PathKey string
	// Units lists the plan-unit indices that needed this path measured.
	Units []int
	// Cause is the structured error that stopped generation (budget
	// exceeded, timeout, model-checker failure, or "model checker
	// disabled").
	Cause error
	// Resolution is "exhaustive-fallback" when the exhaustive input sweep
	// restored the affected units' coverage, "unresolved" otherwise.
	Resolution string
	// Attempts is the retry/failover history for the path, when it needed
	// more than one attempt before landing in the ledger.
	Attempts []string
	// Flight is the flight-recorder dump harvested from the worker this
	// path's quarantined unit repeatedly killed (nil outside the ledger's
	// quarantine path). Volatile diagnostics: rendered by human-facing
	// views only, excluded from WriteCanonical and Summary.
	Flight []string
}

// Report is the complete analysis result.
type Report struct {
	File *ast.File
	Fn   *ast.FuncDecl
	G    *cfg.Graph
	Plan *partition.Plan
	// TestGen is the hybrid generation report (per-path verdicts).
	TestGen *testgen.Report
	// Measurement aggregates per-unit maxima.
	Measurement *measure.Result
	// WCET is the timing-schema bound in simulator cycles (-1 when
	// Soundness is BoundUnavailable).
	WCET int64
	// Soundness states how trustworthy WCET is; anything other than
	// BoundExact comes with a non-empty Degradations ledger.
	Soundness Soundness
	// Degradations attributes every unresolved target path to its cause.
	Degradations []Degradation
	// Critical lists the plan units on the bound's critical path.
	Critical []int
	// DegradedUnits lists the plan units whose worst path is not
	// guaranteed exercised by the generated vectors (before any fallback).
	DegradedUnits []int
	// ExhaustiveWCET is the true end-to-end maximum (-1 when not computed).
	ExhaustiveWCET int64
	// InfeasiblePaths counts targets proven unreachable.
	InfeasiblePaths int
	// ResumedUnits counts work units replayed from the run journal instead
	// of recomputed (0 for clean or un-journaled runs). It is volatile by
	// design — a resumed run and a clean run differ here and nowhere else —
	// so WriteCanonical excludes it.
	ResumedUnits int
	// CachedUnits counts work units served from the persistent verdict
	// cache instead of recomputed (0 for cold or un-cached runs). Like
	// ResumedUnits it is volatile across cache states — and deterministic
	// given a fixed one — so WriteCanonical excludes it.
	CachedUnits int
}

// Overestimate reports the bound's relative overestimation against the
// exhaustive ground truth (0 when unavailable).
func (r *Report) Overestimate() float64 {
	if r.ExhaustiveWCET <= 0 || r.WCET < 0 {
		return 0
	}
	return float64(r.WCET-r.ExhaustiveWCET) / float64(r.ExhaustiveWCET)
}

// Summary renders the verdict line and, for degraded runs, the
// degradation ledger — one attributed line per unresolved path.
func (r *Report) Summary() string {
	var b strings.Builder
	switch r.Soundness {
	case BoundExact:
		fmt.Fprintf(&b, "WCET bound %d cycles (exact: all %d target paths resolved)",
			r.WCET, len(r.TestGen.Results))
	case BoundDegradedSafe:
		fmt.Fprintf(&b, "WCET bound %d cycles (safe-but-degraded: %d unknown path(s) absorbed by exhaustive fallback)",
			r.WCET, len(r.Degradations))
	case BoundUnavailable:
		fmt.Fprintf(&b, "WCET bound unavailable: %d unknown path(s) and input space too large for exhaustive fallback",
			len(r.Degradations))
	}
	if len(r.Degradations) > 0 {
		b.WriteString("\ndegradation ledger:")
		for _, d := range r.Degradations {
			cause := "model checker disabled"
			if d.Cause != nil {
				cause = d.Cause.Error()
			}
			fmt.Fprintf(&b, "\n  path %-24s units %v  %-20s cause: %s",
				d.PathKey, d.Units, d.Resolution, cause)
			for _, a := range d.Attempts {
				fmt.Fprintf(&b, "\n      %s", a)
			}
		}
	}
	return b.String()
}

// Analyze runs the full pipeline on C source text.
func Analyze(src string, opt Options) (*Report, error) {
	return AnalyzeCtx(context.Background(), src, opt)
}

// AnalyzeCtx is Analyze under a context: cancelling ctx (or letting its
// deadline expire) unwinds every stage cooperatively and returns a
// structured fail.ErrCancelled / fail.ErrBudgetExceeded.
func AnalyzeCtx(ctx context.Context, src string, opt Options) (*Report, error) {
	sp := opt.Obs.Span("stage", "frontend", "00/frontend")
	file, fn, g, err := Frontend(src, opt.FuncName)
	if err != nil {
		return nil, err
	}
	sp.End("func", fn.Name, "blocks", g.NumNodes())
	opt.Obs.Progressf("frontend: parsed %s (%d blocks)", fn.Name, g.NumNodes())
	return AnalyzeGraphCtx(ctx, file, fn, g, opt)
}

// Frontend runs the analysis front end alone: parse, semantic check,
// function selection (funcName, "" = first) and CFG construction. The
// distributed coordinator and its workers use it to agree on the analysed
// graph before any pipeline stage runs.
func Frontend(src, funcName string) (*ast.File, *ast.FuncDecl, *cfg.Graph, error) {
	file, err := parser.ParseFile("input.c", src)
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := sem.Check(file); err != nil {
		return nil, nil, nil, err
	}
	var fn *ast.FuncDecl
	if funcName == "" {
		if len(file.Funcs) == 0 {
			return nil, nil, nil, fmt.Errorf("core: no function to analyse")
		}
		fn = file.Funcs[0]
	} else if fn = file.Func(funcName); fn == nil {
		return nil, nil, nil, fmt.Errorf("core: function %q not found", funcName)
	}
	g, err := cfg.Build(fn)
	if err != nil {
		return nil, nil, nil, err
	}
	return file, fn, g, nil
}

// AnalyzeGraph runs the pipeline on a prebuilt CFG.
func AnalyzeGraph(file *ast.File, fn *ast.FuncDecl, g *cfg.Graph, opt Options) (*Report, error) {
	return AnalyzeGraphCtx(context.Background(), file, fn, g, opt)
}

// AnalyzeGraphCtx runs the pipeline on a prebuilt CFG under a context.
//
// Degradation contract: a target path whose generation ran out of budget
// (or whose model-checker call failed) does not abort the analysis. The
// affected plan units are marked degraded, and when the function's input
// space fits Options.MaxExhaustive the pipeline falls back to measuring
// every input vector — restoring full coverage the expensive way and
// yielding a safe-but-degraded bound. When the space is too large the
// report says so: Soundness is BoundUnavailable and WCET is -1, because a
// bound whose critical segments were never forced to their worst path
// would be a guess, not a guarantee.
func AnalyzeGraphCtx(ctx context.Context, file *ast.File, fn *ast.FuncDecl, g *cfg.Graph, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	o := opt.Obs
	// The observer rides the context from here on, exactly like the fault
	// injector: testgen, the model checker, measurement and the worker pool
	// all read it back with obs.From.
	ctx = obs.With(ctx, o)
	rep := &Report{File: file, Fn: fn, G: g, ExhaustiveWCET: -1}

	// The generator configuration is resolved up front: the journal
	// fingerprint must digest the exact configuration the stages will see.
	tgConf := opt.resolvedTestGen()

	// Durable runs: bind the journal to this (program, options) identity
	// and thread it through the context like the observer and the fault
	// injector. A fingerprint mismatch resets the journal — resuming under
	// changed options would splice two different analyses into one report.
	if j := opt.Journal; j != nil {
		resumable, err := j.Bind(fingerprint(file, fn, g, opt, tgConf))
		if err != nil {
			return nil, fail.Infra("core", err)
		}
		ctx = journal.With(ctx, j)
		o.Count("journal.resumable_units", int64(resumable))
		o.Progressf("journal: %s bound, %d completed unit(s) available for resume",
			j.Path(), resumable)
	}

	// Incremental runs: thread the persistent verdict cache through the
	// context like the journal. Traffic is exported as this run's delta, so
	// a long-lived store serving many analyses still yields per-run
	// hit/miss/byte counts (deterministic given the store's state at bind).
	var cache0 vcache.Counters
	if vc := opt.Cache; vc != nil {
		cache0 = vc.Counters()
		ctx = vcache.With(ctx, vc)
		o.Progressf("vcache: %s attached (%d record(s) on disk)", vc.Dir(), vc.Len())
	}

	// 1. Partition.
	sp := o.Span("stage", "partition", "10/partition", "bound", opt.Bound)
	plan, err := partition.PartitionBound(g, opt.Bound)
	if err != nil {
		return nil, err
	}
	rep.Plan = plan
	sp.End("units", len(plan.Units), "ip", plan.IP, "m", plan.M)
	o.Count("partition.units", int64(len(plan.Units)))
	o.Set("partition.ip", 0, int64(plan.IP))
	o.Progressf("partition: bound=%d → %d units, ip=%d, m=%s", opt.Bound, len(plan.Units), plan.IP, plan.M)

	// 2. Targets: every internal path of whole-measured segments, and every
	// outcome of residual blocks (block time depends on the branch taken),
	// each mapped back to the plan units that need it.
	sp = o.Span("stage", "targets", "20/targets")
	targets, owners, err := planTargets(g, rep.Plan)
	if err != nil {
		return nil, err
	}
	sp.End("targets", len(targets))
	o.Count("testgen.targets", int64(len(targets)))

	// 3. Hybrid test-data generation. The pipeline always runs the model
	// optimisations: the naive translation exists for the Table 2
	// comparison, not for production analyses.
	gen := testgen.New(file, fn, g)
	sp = o.Span("stage", "testgen", "30/testgen", "targets", len(targets))
	rep.TestGen, err = gen.GenerateCtx(ctx, targets, tgConf)
	if err != nil {
		return nil, err
	}
	sp.End("heuristic-share", fmt.Sprintf("%.2f", rep.TestGen.HeuristicShare),
		"ga-evals", rep.TestGen.TotalGAEvals, "mc-steps", rep.TestGen.TotalMCSteps)
	o.Progressf("testgen: %s", rep.TestGen.Summary())
	var envs []interp.Env
	degradedUnits := map[int]bool{}
	for i, r := range rep.TestGen.Results {
		switch r.Verdict {
		case testgen.FoundByHeuristic, testgen.FoundByModelChecker:
			envs = append(envs, r.Env)
		case testgen.Infeasible:
			rep.InfeasiblePaths++
		case testgen.Unknown:
			rep.Degradations = append(rep.Degradations, Degradation{
				PathKey:    r.Path.Key(),
				Units:      owners[i],
				Cause:      r.Err,
				Resolution: "unresolved",
				Attempts:   r.Attempts,
				Flight:     r.Flight,
			})
			for _, u := range owners[i] {
				degradedUnits[u] = true
			}
		}
	}
	rep.DegradedUnits = sortedKeys(degradedUnits)

	// 4. Measure on the simulator.
	sp = o.Span("stage", "compile", "40/compile")
	img, err := codegen.Compile(g, file)
	if err != nil {
		return nil, err
	}
	sp.End()
	vm := sim.New(img, opt.SimOptions)
	sp = o.Span("stage", "measure", "50/measure", "vectors", len(envs))
	rep.Measurement, err = measure.CampaignTagged(ctx, "campaign", rep.Plan, vm, envs,
		opt.Workers, tgConf.Retry)
	if err != nil {
		return nil, err
	}
	sp.End("runs", rep.Measurement.Runs)
	o.Progressf("measure: %d vectors replayed over %d units", rep.Measurement.Runs, len(rep.Measurement.Times))

	// 4b. Degraded mode: the generated vectors are not guaranteed to
	// exercise the worst path of the degraded units. When the input space
	// is small enough, fall back to exhaustively measuring every vector —
	// per-unit maxima over the full space dominate every path, restoring
	// safety. Otherwise the bound is unavailable.
	exhaustiveEnvs, enumerable := enumerateAll(gen, tgConf.Base, opt.MaxExhaustive)
	if len(rep.Degradations) > 0 {
		if !enumerable {
			rep.Soundness = BoundUnavailable
			rep.WCET = -1
			finishObservation(o, opt, rep, cache0)
			return rep, nil
		}
		sp = o.Span("stage", "fallback", "60/fallback", "vectors", len(exhaustiveEnvs))
		fallback, err := measure.CampaignTagged(ctx, "fallback", rep.Plan, vm, exhaustiveEnvs,
			opt.Workers, tgConf.Retry)
		if err != nil {
			return nil, err
		}
		rep.Measurement.Merge(fallback)
		for i := range rep.Degradations {
			rep.Degradations[i].Resolution = "exhaustive-fallback"
		}
		rep.Soundness = BoundDegradedSafe
		sp.End("runs", fallback.Runs)
		o.Progressf("fallback: exhaustive sweep of %d vectors restored coverage", fallback.Runs)
	}
	pruneUnobserved(rep)

	// 5. Timing schema.
	sp = o.Span("stage", "schema", "70/schema")
	bound, err := schema.ComputeDegraded(rep.Measurement, degradedUnits)
	if err != nil {
		return nil, err
	}
	rep.WCET = bound.WCET
	rep.Critical = bound.CriticalUnits
	sp.End("wcet", rep.WCET, "critical-units", len(rep.Critical))

	// 6. Optional exhaustive ground truth.
	if opt.Exhaustive && enumerable {
		sp = o.Span("stage", "exhaustive", "80/exhaustive", "vectors", len(exhaustiveEnvs))
		exh, err := measure.ExhaustiveMaxTagged(ctx, "exhaustive", vm, exhaustiveEnvs,
			opt.Workers, tgConf.Retry)
		if err != nil {
			return nil, err
		}
		rep.ExhaustiveWCET = exh
		sp.End("max-cycles", exh)
		o.Set("measure.exhaustive.wcet_cycles", 0, exh)
	}
	finishObservation(o, opt, rep, cache0)
	o.Progressf("schema: WCET=%d cycles, soundness=%s", rep.WCET, rep.Soundness)
	return rep, nil
}

// finishObservation records the verdict-level metrics and the degradation
// ledger into the observation session, and closes out the run journal's
// resume accounting and the verdict cache's traffic accounting. Ledger
// entries become deterministic instant events — one per unresolved path,
// keyed by path key and carrying the attributed units, resolution and
// cause — so a degraded run is diagnosable from the trace alone. Called
// exactly once per analysis, after every Resolution is final.
func finishObservation(o *obs.Observer, opt Options, rep *Report, cache0 vcache.Counters) {
	j := opt.Journal
	rep.ResumedUnits = j.Hits()
	if rep.TestGen != nil {
		rep.CachedUnits = rep.TestGen.CachedUnits
	}
	if o == nil {
		return
	}
	if j != nil {
		o.Count("journal.replayed_units", int64(rep.ResumedUnits))
	}
	if opt.Cache != nil {
		// Hits, misses and read bytes are deterministic given the cache
		// state at bind (the generator probes once per distinct key, against
		// pre-run state). Written bytes are volatile: a GA target covered
		// incidentally stores a slim skip record, and whether that happens
		// before its own search runs depends on worker scheduling.
		d := opt.Cache.Counters().Sub(cache0)
		o.Count("vcache.hits", d.Hits)
		o.Count("vcache.misses", d.Misses)
		o.Count("vcache.bytes_read", d.BytesRead)
		o.CountV("vcache.bytes_written", d.BytesWritten)
		o.Count("vcache.replayed_units", int64(rep.CachedUnits))
	}
	o.Set("schema.wcet_cycles", 0, rep.WCET)
	o.Set("core.soundness", 0, int64(rep.Soundness))
	o.Count("core.infeasible_paths", int64(rep.InfeasiblePaths))
	o.Count("core.degraded_paths", int64(len(rep.Degradations)))
	for _, d := range rep.Degradations {
		cause := "model checker disabled"
		if d.Cause != nil {
			cause = d.Cause.Error()
		}
		o.Instant("ledger", "degraded", "65/ledger/"+d.PathKey,
			"path", d.PathKey, "units", fmt.Sprint(d.Units),
			"resolution", d.Resolution, "cause", cause)
		o.Emit(obs.BusEvent{Kind: obs.EvDegradation, Unit: d.PathKey,
			Detail: fmt.Sprintf("resolution=%s cause=%s", d.Resolution, cause)})
	}
}

// enumerateAll builds the full input-vector cross product, reporting
// whether the space fits the cap.
func enumerateAll(gen *testgen.Generator, base interp.Env, cap int) ([]interp.Env, bool) {
	var inputs []measure.InputVar
	for _, v := range gen.Inputs {
		inputs = append(inputs, measure.InputVar{Decl: v.Decl, Lo: v.Lo, Hi: v.Hi})
	}
	all, err := measure.EnumerateInputs(inputs, base, cap)
	if err != nil {
		return nil, false
	}
	return all, true
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// planTargets enumerates the paths each plan unit needs measured, and for
// each target the (ascending) list of plan units that requested it — the
// attribution the degradation ledger needs when a target stays Unknown.
func planTargets(g *cfg.Graph, plan *partition.Plan) ([]paths.Path, [][]int, error) {
	var targets []paths.Path
	var owners [][]int
	index := map[string]int{}
	add := func(unit int, p paths.Path) {
		k := p.Key()
		if i, ok := index[k]; ok {
			if os := owners[i]; os[len(os)-1] != unit {
				owners[i] = append(os, unit)
			}
			return
		}
		index[k] = len(targets)
		targets = append(targets, p)
		owners = append(owners, []int{unit})
	}
	blockTargets := func(unit int, id cfg.NodeID) {
		succs := g.Succs(id)
		if len(succs) == 0 {
			add(unit, paths.Path{Blocks: []cfg.NodeID{id},
				Exit: cfg.Edge{From: id, To: cfg.NoNode, Kind: "end"}})
			return
		}
		for _, e := range succs {
			add(unit, paths.Path{Blocks: []cfg.NodeID{id}, Exit: e})
		}
	}
	for ui, u := range plan.Units {
		switch u.Kind {
		case partition.WholePS:
			ps, err := paths.Enumerate(u.PS.Region, 100000)
			if err == paths.ErrCyclic {
				// A bounded-loop segment measured as a whole: its iteration
				// paths cannot be enumerated, so target every block outcome
				// inside it instead; measurement still times the segment end
				// to end on the runs that reach it.
				for _, id := range u.PS.Region.Nodes() {
					blockTargets(ui, id)
				}
				continue
			}
			if err != nil {
				return nil, nil, fmt.Errorf("core: enumerating segment paths: %w", err)
			}
			for _, p := range ps {
				add(ui, p)
			}
		case partition.SingleBlock:
			blockTargets(ui, u.Block)
		}
	}
	return targets, owners, nil
}

// pruneUnobserved drops per-unit observations that never happened because
// every path into the unit is infeasible. Such units cannot execute, so
// they are removed from the schema graph by giving them zero weight — but
// only when genuinely unreachable (all their targets infeasible); an
// unmeasured reachable unit is a campaign bug that schema.Compute reports.
func pruneUnobserved(rep *Report) {
	for i := range rep.Measurement.Times {
		ut := &rep.Measurement.Times[i]
		if ut.Samples == 0 {
			// Unreachable code contributes nothing to any executable path.
			ut.Max = 0
		}
	}
}

// Interrupted reports whether an analysis error is a budget/cancellation
// stop (degradable) rather than an infrastructure failure; re-exported
// here so cmd/wcet need not import internal/fail directly.
func Interrupted(err error) bool { return fail.Interrupted(err) }
