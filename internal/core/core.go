// Package core orchestrates the complete hybrid measurement-based WCET
// analysis of the paper:
//
//	parse → semantic check → CFG → PS partitioning (path bound b)
//	      → hybrid test-data generation (GA, then model checking)
//	      → instrumented measurement on the cycle-accurate simulator
//	      → timing-schema WCET bound
//
// The root package wcet re-exports this entry point as the public API.
package core

import (
	"fmt"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/codegen"
	"wcet/internal/interp"
	"wcet/internal/measure"
	"wcet/internal/partition"
	"wcet/internal/paths"
	"wcet/internal/schema"
	"wcet/internal/sim"
	"wcet/internal/testgen"
)

// Options configure an analysis.
type Options struct {
	// FuncName selects the analysed function ("" = first).
	FuncName string
	// Bound is the partitioning path bound b (default 8).
	Bound int64
	// TestGen tunes the hybrid generator.
	TestGen testgen.Config
	// Exhaustive additionally measures every input vector end to end when
	// the input space is at most MaxExhaustive (ground truth).
	Exhaustive    bool
	MaxExhaustive int
	// Costs overrides the simulator's cycle model.
	SimOptions sim.Options
	// Workers bounds the fan-out of every parallel pipeline stage — GA
	// searches, model-checker calls, measurement replays and the
	// exhaustive sweep. 0 (the default) uses one worker per CPU,
	// 1 reproduces the serial pipeline. Every stage merges its results
	// deterministically, so the Report is identical for every value.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Bound == 0 {
		o.Bound = 8
	}
	if o.MaxExhaustive == 0 {
		o.MaxExhaustive = 1 << 16
	}
	return o
}

// Report is the complete analysis result.
type Report struct {
	File *ast.File
	Fn   *ast.FuncDecl
	G    *cfg.Graph
	Plan *partition.Plan
	// TestGen is the hybrid generation report (per-path verdicts).
	TestGen *testgen.Report
	// Measurement aggregates per-unit maxima.
	Measurement *measure.Result
	// WCET is the timing-schema bound in simulator cycles.
	WCET int64
	// Critical lists the plan units on the bound's critical path.
	Critical []int
	// ExhaustiveWCET is the true end-to-end maximum (-1 when not computed).
	ExhaustiveWCET int64
	// InfeasiblePaths counts targets proven unreachable.
	InfeasiblePaths int
}

// Overestimate reports the bound's relative overestimation against the
// exhaustive ground truth (0 when unavailable).
func (r *Report) Overestimate() float64 {
	if r.ExhaustiveWCET <= 0 {
		return 0
	}
	return float64(r.WCET-r.ExhaustiveWCET) / float64(r.ExhaustiveWCET)
}

// Analyze runs the full pipeline on C source text.
func Analyze(src string, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	file, err := parser.ParseFile("input.c", src)
	if err != nil {
		return nil, err
	}
	if _, err := sem.Check(file); err != nil {
		return nil, err
	}
	var fn *ast.FuncDecl
	if opt.FuncName == "" {
		if len(file.Funcs) == 0 {
			return nil, fmt.Errorf("core: no function to analyse")
		}
		fn = file.Funcs[0]
	} else if fn = file.Func(opt.FuncName); fn == nil {
		return nil, fmt.Errorf("core: function %q not found", opt.FuncName)
	}
	g, err := cfg.Build(fn)
	if err != nil {
		return nil, err
	}
	return AnalyzeGraph(file, fn, g, opt)
}

// AnalyzeGraph runs the pipeline on a prebuilt CFG.
func AnalyzeGraph(file *ast.File, fn *ast.FuncDecl, g *cfg.Graph, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{File: file, Fn: fn, G: g, ExhaustiveWCET: -1}

	// 1. Partition.
	rep.Plan = partition.PartitionBound(g, opt.Bound)

	// 2. Targets: every internal path of whole-measured segments, and every
	// outcome of residual blocks (block time depends on the branch taken).
	targets, err := planTargets(g, rep.Plan)
	if err != nil {
		return nil, err
	}

	// 3. Hybrid test-data generation. The pipeline always runs the model
	// optimisations: the naive translation exists for the Table 2
	// comparison, not for production analyses.
	gen := testgen.New(file, fn, g)
	tgConf := opt.TestGen
	tgConf.Optimise = true
	if tgConf.Workers == 0 {
		tgConf.Workers = opt.Workers
	}
	rep.TestGen, err = gen.Generate(targets, tgConf)
	if err != nil {
		return nil, err
	}
	var envs []interp.Env
	for _, r := range rep.TestGen.Results {
		switch r.Verdict {
		case testgen.FoundByHeuristic, testgen.FoundByModelChecker:
			envs = append(envs, r.Env)
		case testgen.Infeasible:
			rep.InfeasiblePaths++
		case testgen.Unknown:
			return nil, fmt.Errorf("core: no test datum for path %s: %v", r.Path.Key(), r.Err)
		}
	}

	// 4. Measure on the simulator.
	img, err := codegen.Compile(g, file)
	if err != nil {
		return nil, err
	}
	vm := sim.New(img, opt.SimOptions)
	rep.Measurement, err = measure.Campaign(rep.Plan, vm, envs, opt.Workers)
	if err != nil {
		return nil, err
	}
	pruneUnobserved(rep)

	// 5. Timing schema.
	bound, err := schema.Compute(rep.Measurement)
	if err != nil {
		return nil, err
	}
	rep.WCET = bound.WCET
	rep.Critical = bound.CriticalUnits

	// 6. Optional exhaustive ground truth.
	if opt.Exhaustive {
		var inputs []measure.InputVar
		for _, v := range gen.Inputs {
			inputs = append(inputs, measure.InputVar{Decl: v.Decl, Lo: v.Lo, Hi: v.Hi})
		}
		all, err := measure.EnumerateInputs(inputs, tgConf.Base, opt.MaxExhaustive)
		if err == nil {
			exh, err := measure.ExhaustiveMax(vm, all, opt.Workers)
			if err != nil {
				return nil, err
			}
			rep.ExhaustiveWCET = exh
		}
	}
	return rep, nil
}

// planTargets enumerates the paths each plan unit needs measured.
func planTargets(g *cfg.Graph, plan *partition.Plan) ([]paths.Path, error) {
	var targets []paths.Path
	seen := map[string]bool{}
	add := func(p paths.Path) {
		if !seen[p.Key()] {
			seen[p.Key()] = true
			targets = append(targets, p)
		}
	}
	blockTargets := func(id cfg.NodeID) {
		succs := g.Succs(id)
		if len(succs) == 0 {
			add(paths.Path{Blocks: []cfg.NodeID{id},
				Exit: cfg.Edge{From: id, To: cfg.NoNode, Kind: "end"}})
			return
		}
		for _, e := range succs {
			add(paths.Path{Blocks: []cfg.NodeID{id}, Exit: e})
		}
	}
	for _, u := range plan.Units {
		switch u.Kind {
		case partition.WholePS:
			ps, err := paths.Enumerate(u.PS.Region, 100000)
			if err == paths.ErrCyclic {
				// A bounded-loop segment measured as a whole: its iteration
				// paths cannot be enumerated, so target every block outcome
				// inside it instead; measurement still times the segment end
				// to end on the runs that reach it.
				for _, id := range u.PS.Region.Nodes() {
					blockTargets(id)
				}
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("core: enumerating segment paths: %w", err)
			}
			for _, p := range ps {
				add(p)
			}
		case partition.SingleBlock:
			blockTargets(u.Block)
		}
	}
	return targets, nil
}

// pruneUnobserved drops per-unit observations that never happened because
// every path into the unit is infeasible. Such units cannot execute, so
// they are removed from the schema graph by giving them zero weight — but
// only when genuinely unreachable (all their targets infeasible); an
// unmeasured reachable unit is a campaign bug that schema.Compute reports.
func pruneUnobserved(rep *Report) {
	for i := range rep.Measurement.Times {
		ut := &rep.Measurement.Times[i]
		if ut.Samples == 0 {
			// Unreachable code contributes nothing to any executable path.
			ut.Max = 0
		}
	}
}
