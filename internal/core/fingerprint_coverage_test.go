package core

// Reflection-based coverage of the journal fingerprint: every field of
// every options struct an analysis outcome can depend on must either move
// the fingerprint when mutated, or sit on an explicit exclusion allowlist
// with a stated reason. A field added to any of these structs without a
// classification fails this test — which is the point: the v1 fingerprint
// silently omitted the symbolic levers, the base environment and the cost
// model maps, and each omission was a latent journal splice.

import (
	"reflect"
	"testing"
	"time"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/ga"
	"wcet/internal/interp"
	"wcet/internal/isa"
	"wcet/internal/mc"
	"wcet/internal/retry"
	"wcet/internal/sim"
	"wcet/internal/testgen"
)

// fieldSpec classifies one struct field for fingerprint purposes.
type fieldSpec struct {
	// composite: the field's identity is covered by walking its own type
	// (which must itself appear in fingerprintCoverage).
	composite bool
	// excluded: allowlist reason; empty means the field must be digested.
	excluded string
	// mutate applies a change through this field. For digested fields it is
	// mandatory and must move the fingerprint; for excluded fields it is
	// optional and must NOT move it (nil skips the behavioural check, e.g.
	// for attached subsystems that have no neutral mutation).
	mutate func(*Options)
}

var fingerprintCoverage = map[reflect.Type]map[string]fieldSpec{
	reflect.TypeOf(Options{}): {
		"FuncName": {
			excluded: "function identity is digested from the resolved declaration and graph, not the selector string",
			mutate:   func(o *Options) { o.FuncName = "someOtherSelector" },
		},
		"Bound":     {mutate: func(o *Options) { o.Bound++ }},
		"TestGen":   {composite: true},
		"MCTimeout": {mutate: func(o *Options) { o.MCTimeout += time.Second }},
		"Exhaustive": {mutate: func(o *Options) {
			o.Exhaustive = !o.Exhaustive
		}},
		"MaxExhaustive": {mutate: func(o *Options) { o.MaxExhaustive++ }},
		"SimOptions":    {composite: true},
		"Workers": {
			excluded: "results are worker-count invariant by construction; a journal written under -workers 8 must resume under -workers 1",
			mutate:   func(o *Options) { o.Workers++ },
		},
		"Obs":     {excluded: "observability sink; carries no deterministic identity"},
		"Journal": {excluded: "the journal being fingerprinted cannot be part of its own identity"},
		"Cache":   {excluded: "verdict-cache records are content-addressed independently of the journal; attaching a cache never changes results"},
	},
	reflect.TypeOf(testgen.Config{}): {
		"GA": {composite: true},
		"Workers": {
			excluded: "results are worker-count invariant by construction",
			mutate:   func(o *Options) { o.TestGen.Workers++ },
		},
		"SkipGA":   {mutate: func(o *Options) { o.TestGen.SkipGA = !o.TestGen.SkipGA }},
		"SkipMC":   {mutate: func(o *Options) { o.TestGen.SkipMC = !o.TestGen.SkipMC }},
		"Optimise": {mutate: func(o *Options) { o.TestGen.Optimise = !o.TestGen.Optimise }},
		"MC":       {composite: true},
		"Base": {mutate: func(o *Options) {
			for d := range o.TestGen.Base {
				o.TestGen.Base[d]++
				return
			}
		}},
		"Retry":             {composite: true},
		"FailoverMaxStates": {mutate: func(o *Options) { o.TestGen.FailoverMaxStates++ }},
	},
	reflect.TypeOf(mc.Options{}): {
		"MaxSteps":  {mutate: func(o *Options) { o.TestGen.MC.MaxSteps++ }},
		"MaxStates": {mutate: func(o *Options) { o.TestGen.MC.MaxStates++ }},
		"MaxNodes":  {mutate: func(o *Options) { o.TestGen.MC.MaxNodes++ }},
		"Timeout":   {mutate: func(o *Options) { o.TestGen.MC.Timeout += time.Second }},
		"NoSlice":   {mutate: func(o *Options) { o.TestGen.MC.NoSlice = !o.TestGen.MC.NoSlice }},
		"NoReorder": {mutate: func(o *Options) { o.TestGen.MC.NoReorder = !o.TestGen.MC.NoReorder }},
		"NoPool":    {mutate: func(o *Options) { o.TestGen.MC.NoPool = !o.TestGen.MC.NoPool }},
		// Digested by presence only: the learned contents are mutable
		// in-process state, but a run with a book must never splice with one
		// without (seeding changes node statistics).
		"Orders": {mutate: func(o *Options) { o.TestGen.MC.Orders = mc.NewOrderBook() }},
	},
	reflect.TypeOf(ga.Config{}): {
		"Pop":            {mutate: func(o *Options) { o.TestGen.GA.Pop++ }},
		"MaxGens":        {mutate: func(o *Options) { o.TestGen.GA.MaxGens++ }},
		"Stagnation":     {mutate: func(o *Options) { o.TestGen.GA.Stagnation++ }},
		"MutRate":        {mutate: func(o *Options) { o.TestGen.GA.MutRate += 0.125 }},
		"CrossRate":      {mutate: func(o *Options) { o.TestGen.GA.CrossRate += 0.125 }},
		"Tournament":     {mutate: func(o *Options) { o.TestGen.GA.Tournament++ }},
		"Seed":           {mutate: func(o *Options) { o.TestGen.GA.Seed++ }},
		"MaxEvaluations": {mutate: func(o *Options) { o.TestGen.GA.MaxEvaluations++ }},
		"Stop":           {excluded: "cooperative-cancellation hook; a stopped run abandons the analysis rather than recording results"},
		"Obs":            {excluded: "volatile observability only; banned from canonical exports"},
		"OnTrace":        {excluded: "observation callback; must not influence the search by contract"},
	},
	reflect.TypeOf(retry.Policy{}): {
		"MaxAttempts": {mutate: func(o *Options) { o.TestGen.Retry.MaxAttempts++ }},
		"BackoffBase": {mutate: func(o *Options) { o.TestGen.Retry.BackoffBase++ }},
	},
	reflect.TypeOf(sim.Options{}): {
		"MaxInstructions": {mutate: func(o *Options) { o.SimOptions.MaxInstructions++ }},
		"Costs":           {composite: true, mutate: func(o *Options) { o.SimOptions.Costs = nil }},
	},
	reflect.TypeOf(isa.CostModel{}): {
		"Costs":          {mutate: func(o *Options) { o.SimOptions.Costs.Costs[isa.Op(200)] = 17 }},
		"BranchTaken":    {mutate: func(o *Options) { o.SimOptions.Costs.BranchTaken++ }},
		"BranchNotTaken": {mutate: func(o *Options) { o.SimOptions.Costs.BranchNotTaken++ }},
		"ExtCost":        {mutate: func(o *Options) { o.SimOptions.Costs.ExtCost[200] = 17 }},
		"ExtDefault":     {mutate: func(o *Options) { o.SimOptions.Costs.ExtDefault++ }},
	},
}

// fpFixture parses a minimal program once and exposes the fingerprint as a
// function of Options alone.
type fpFixture struct {
	file *ast.File
	fn   *ast.FuncDecl
	g    *cfg.Graph
}

func newFPFixture(t *testing.T) *fpFixture {
	t.Helper()
	const src = `
/*@ input */ /*@ range 0 10 */ int a;
int r;
int f(void) {
    if (a > 3) { r = 1; } else { r = 2; }
    return r;
}`
	file, err := parser.ParseFile("fp.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sem.Check(file); err != nil {
		t.Fatal(err)
	}
	fn := file.Func("f")
	g, err := cfg.Build(fn)
	if err != nil {
		t.Fatal(err)
	}
	return &fpFixture{file: file, fn: fn, g: g}
}

func (fx *fpFixture) global(t *testing.T, name string) *ast.VarDecl {
	t.Helper()
	for _, d := range fx.file.Globals {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("global %q not found", name)
	return nil
}

// baseline fills every digestable field with a distinctive non-zero value,
// so every mutation is visible against it.
func (fx *fpFixture) baseline(t *testing.T) Options {
	return Options{
		FuncName:      "f",
		Bound:         4,
		MCTimeout:     5 * time.Second,
		Exhaustive:    true,
		MaxExhaustive: 1024,
		Workers:       2,
		TestGen: testgen.Config{
			GA: ga.Config{
				Pop: 10, MaxGens: 20, Stagnation: 5, MutRate: 0.25,
				CrossRate: 0.75, Tournament: 4, Seed: 7, MaxEvaluations: 999,
			},
			Workers:           2,
			Optimise:          true,
			MC:                mc.Options{MaxSteps: 100, MaxStates: 200, MaxNodes: 300, Timeout: time.Second},
			Base:              interp.Env{fx.global(t, "r"): 3},
			Retry:             retry.Policy{MaxAttempts: 2, BackoffBase: 1},
			FailoverMaxStates: 500,
		},
		SimOptions: sim.Options{
			MaxInstructions: 1000,
			Costs: &isa.CostModel{
				Costs:       map[isa.Op]int64{isa.Op(1): 2},
				BranchTaken: 3, BranchNotTaken: 2,
				ExtCost: map[int]int64{0: 5}, ExtDefault: 7,
			},
		},
	}
}

func (fx *fpFixture) fp(opt Options) string {
	return fingerprint(fx.file, fx.fn, fx.g, opt, opt.TestGen)
}

func TestFingerprintFieldCoverage(t *testing.T) {
	fx := newFPFixture(t)
	base := fx.fp(fx.baseline(t))
	if again := fx.fp(fx.baseline(t)); again != base {
		t.Fatalf("fingerprint not deterministic on the baseline: %s vs %s", base, again)
	}

	for typ, specs := range fingerprintCoverage {
		for i := 0; i < typ.NumField(); i++ {
			field := typ.Field(i)
			name := typ.String() + "." + field.Name
			spec, ok := specs[field.Name]
			if !ok {
				t.Errorf("%s is not classified: digest it in fingerprint() or allowlist it here with a reason", name)
				continue
			}
			if spec.composite {
				ft := field.Type
				if ft.Kind() == reflect.Ptr {
					ft = ft.Elem()
				}
				if _, walked := fingerprintCoverage[ft]; !walked {
					t.Errorf("%s is marked composite but its type %s is not walked", name, ft)
				}
				if spec.mutate == nil {
					continue
				}
			}
			if spec.excluded == "" && spec.mutate == nil {
				t.Errorf("%s claims to be digested but has no mutation to prove it", name)
				continue
			}
			if spec.mutate == nil {
				continue // allowlisted without a neutral mutation
			}
			opt := fx.baseline(t)
			spec.mutate(&opt)
			moved := fx.fp(opt) != base
			switch {
			case spec.excluded == "" && !moved:
				t.Errorf("%s: mutation did not move the fingerprint — resuming across this setting would splice two analyses", name)
			case spec.excluded != "" && moved:
				t.Errorf("%s: allowlisted as excluded (%s) but its mutation moved the fingerprint", name, spec.excluded)
			}
		}
	}

	// Presence transitions of the optional composites are identity-bearing
	// in their own right.
	opt := fx.baseline(t)
	opt.TestGen.Base = nil
	if fx.fp(opt) == base {
		t.Error("dropping the base environment did not move the fingerprint")
	}
}
