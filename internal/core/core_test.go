package core

import (
	"testing"

	"wcet/internal/ga"
	"wcet/internal/partition"
	"wcet/internal/testgen"
)

const coreSrc = `
/*@ input */ /*@ range 0 2 */ int sel;
/*@ input */ /*@ range 0 20 */ char x;
int r;
void step(void) {
    r = 0;
    switch (sel) {
    case 0:
        if (x > 10) { r = 1; } else { r = 2; }
        break;
    case 1:
        r = x * 2;
        r = r + 1;
        break;
    default:
        r = 9;
        break;
    }
}
`

func run(t *testing.T, opt Options) *Report {
	t.Helper()
	opt.TestGen = testgen.Config{
		GA:       ga.Config{Seed: 5, Pop: 32, MaxGens: 40, Stagnation: 10},
		Optimise: true,
	}
	rep, err := Analyze(coreSrc, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestBoundSafetyAcrossPartitions(t *testing.T) {
	exhaust := run(t, Options{FuncName: "step", Bound: 1, Exhaustive: true})
	truth := exhaust.ExhaustiveWCET
	if truth <= 0 {
		t.Fatal("no ground truth")
	}
	for _, b := range []int64{1, 2, 4, 8, 1000} {
		rep := run(t, Options{FuncName: "step", Bound: b, Exhaustive: true})
		if rep.ExhaustiveWCET != truth {
			t.Errorf("ground truth changed with bound: %d vs %d", rep.ExhaustiveWCET, truth)
		}
		if rep.WCET < truth {
			t.Errorf("b=%d: bound %d below truth %d", b, rep.WCET, truth)
		}
	}
}

func TestEndToEndBoundTight(t *testing.T) {
	rep := run(t, Options{FuncName: "step", Bound: 1_000_000, Exhaustive: true})
	if rep.WCET != rep.ExhaustiveWCET {
		t.Errorf("whole-function measurement bound %d != exhaustive %d",
			rep.WCET, rep.ExhaustiveWCET)
	}
	if len(rep.Plan.Units) != 1 || rep.Plan.Units[0].Kind != partition.WholePS {
		t.Error("expected a single whole-function unit")
	}
}

func TestPlanTargetsCoverEveryOutcome(t *testing.T) {
	rep := run(t, Options{FuncName: "step", Bound: 1})
	// At block granularity every decision block yields one target per
	// outcome; count targets vs plan units.
	nTargets := len(rep.TestGen.Results)
	if nTargets < len(rep.Plan.Units) {
		t.Errorf("targets (%d) fewer than units (%d)", nTargets, len(rep.Plan.Units))
	}
	// Every unit must be measured (this program has no unreachable units).
	for i, ut := range rep.Measurement.Times {
		if ut.Samples == 0 {
			t.Errorf("unit %d unobserved", i)
		}
	}
}

const loopCoreSrc = `
/*@ input */ /*@ range 0 4 */ int n;
/*@ input */ /*@ range 0 1 */ int mode;
int s;
void accumulate(void) {
    int i;
    s = 0;
    /*@ loopbound 4 */ for (i = 0; i < n; i++) {
        if (mode == 1) { s = s + i * 2; } else { s = s + i; }
    }
    if (s > 6) { s = 6; }
}
`

// TestLoopedProgramEndToEnd drives a bounded-loop program through the full
// pipeline at block granularity: the schema collapses the loop with its
// annotation and the bound must stay safe against exhaustive measurement.
func TestLoopedProgramEndToEnd(t *testing.T) {
	rep, err := Analyze(loopCoreSrc, Options{
		FuncName:   "accumulate",
		Bound:      1,
		Exhaustive: true,
		TestGen: testgen.Config{
			GA:       ga.Config{Seed: 8, Pop: 32, MaxGens: 40, Stagnation: 10},
			Optimise: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExhaustiveWCET <= 0 {
		t.Fatal("no ground truth")
	}
	if rep.WCET < rep.ExhaustiveWCET {
		t.Errorf("loop bound %d below exhaustive %d: unsafe", rep.WCET, rep.ExhaustiveWCET)
	}
	if rep.WCET > rep.ExhaustiveWCET*3 {
		t.Errorf("loop bound %d absurdly loose vs %d", rep.WCET, rep.ExhaustiveWCET)
	}
}

func TestCriticalPathReported(t *testing.T) {
	rep := run(t, Options{FuncName: "step", Bound: 2})
	if len(rep.Critical) == 0 {
		t.Fatal("no critical path")
	}
	sum := int64(0)
	for _, u := range rep.Critical {
		sum += rep.Measurement.UnitMax(u)
	}
	if sum != rep.WCET {
		t.Errorf("critical units sum %d != WCET %d", sum, rep.WCET)
	}
}
