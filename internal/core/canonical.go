package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"wcet/internal/interp"
)

// WriteCanonical renders the report's complete deterministic content in a
// fixed order — the byte-for-byte identity the durability guarantee is
// stated over: for a given (program, options), the canonical rendering is
// identical across worker counts and across any number of kill/resume
// cycles. Volatile fields are excluded by construction: wall-clock
// durations (mc.Stats.Duration) and ResumedUnits (which distinguishes a
// resumed run from a clean one and nothing else).
func (r *Report) WriteCanonical(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "function %s\n", r.Fn.Name)
	fmt.Fprintf(&b, "plan units=%d ip=%d ip-fused=%d m=%s\n",
		len(r.Plan.Units), r.Plan.IP, r.Plan.IPFused(), r.Plan.M)

	fmt.Fprintf(&b, "testgen %s\n", r.TestGen.Summary())
	for _, pr := range r.TestGen.Results {
		fmt.Fprintf(&b, "path %s verdict=%s", pr.Path.Key(), pr.Verdict)
		if pr.Env != nil {
			fmt.Fprintf(&b, " env=[%s]", canonicalEnv(pr.Env))
		}
		s := pr.MCStats
		if s.Steps != 0 || s.PeakNodes != 0 || s.StateBits != 0 {
			fmt.Fprintf(&b, " mc=[steps=%d peak-nodes=%d mem=%d states=%g bits=%d]",
				s.Steps, s.PeakNodes, s.MemoryBytes, s.States, s.StateBits)
		}
		if pr.Err != nil {
			fmt.Fprintf(&b, " cause=%q", pr.Err.Error())
		}
		b.WriteByte('\n')
		for _, a := range pr.Attempts {
			fmt.Fprintf(&b, "  attempt-history %s\n", a)
		}
	}

	fmt.Fprintf(&b, "measurement runs=%d\n", r.Measurement.Runs)
	for i, ut := range r.Measurement.Times {
		fmt.Fprintf(&b, "unit %d max=%d samples=%d", i, ut.Max, ut.Samples)
		if len(ut.PerPath) > 0 {
			keys := make([]string, 0, len(ut.PerPath))
			for k := range ut.PerPath {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%d", k, ut.PerPath[k])
			}
		}
		b.WriteByte('\n')
	}

	fmt.Fprintf(&b, "wcet %d soundness=%s exhaustive=%d infeasible=%d\n",
		r.WCET, r.Soundness, r.ExhaustiveWCET, r.InfeasiblePaths)
	fmt.Fprintf(&b, "critical %v degraded-units %v\n", r.Critical, r.DegradedUnits)
	fmt.Fprintf(&b, "summary:\n%s\n", r.Summary())
	_, err := io.WriteString(w, b.String())
	return err
}

// canonicalEnv renders an environment as sorted name=value pairs.
func canonicalEnv(env interp.Env) string {
	pairs := make([]string, 0, len(env))
	for d, v := range env {
		pairs = append(pairs, fmt.Sprintf("%s=%d", d.Name, v))
	}
	sort.Strings(pairs)
	return strings.Join(pairs, " ")
}
