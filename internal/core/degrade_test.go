package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"wcet/internal/fail"
	"wcet/internal/faults"
	"wcet/internal/ga"
	"wcet/internal/testgen"
)

// mcOnly sends every target to the model checker, so an injected
// model-checker fault deterministically degrades every feasible path.
func mcOnly() testgen.Config {
	return testgen.Config{SkipGA: true, Optimise: true}
}

func mcBudgetFault() context.Context {
	return faults.With(context.Background(), faults.New(
		faults.Rule{Site: "testgen.mc", Index: -1, Err: fail.Budget("mc", "injected step budget")}))
}

func TestSoundnessExactOnCleanRun(t *testing.T) {
	rep := run(t, Options{FuncName: "step", Bound: 1})
	if rep.Soundness != BoundExact {
		t.Errorf("clean run soundness = %v, want exact", rep.Soundness)
	}
	if len(rep.Degradations) != 0 || len(rep.DegradedUnits) != 0 {
		t.Errorf("clean run carries a degradation ledger: %+v", rep.Degradations)
	}
	if !strings.Contains(rep.Summary(), "exact") {
		t.Errorf("Summary() = %q, want the exact verdict", rep.Summary())
	}
}

func TestDegradedSafeViaExhaustiveFallback(t *testing.T) {
	rep, err := AnalyzeCtx(mcBudgetFault(), coreSrc, Options{
		FuncName: "step", Bound: 1, Exhaustive: true, TestGen: mcOnly(),
	})
	if err != nil {
		t.Fatalf("budget faults must degrade, not abort: %v", err)
	}
	if rep.Soundness != BoundDegradedSafe {
		t.Fatalf("soundness = %v, want safe-but-degraded (input space is 3×21)", rep.Soundness)
	}
	if len(rep.Degradations) == 0 || len(rep.DegradedUnits) == 0 {
		t.Fatal("degraded run must carry a non-empty ledger")
	}
	for _, d := range rep.Degradations {
		if d.Resolution != "exhaustive-fallback" {
			t.Errorf("path %s: resolution = %q, want exhaustive-fallback", d.PathKey, d.Resolution)
		}
		if !errors.Is(d.Cause, fail.ErrBudgetExceeded) {
			t.Errorf("path %s: cause = %v, want the injected budget error", d.PathKey, d.Cause)
		}
		if len(d.Units) == 0 {
			t.Errorf("path %s: no owning units attributed", d.PathKey)
		}
	}
	// The fallback measured every input vector, so the bound must still
	// dominate the exhaustive ground truth.
	if rep.ExhaustiveWCET <= 0 || rep.WCET < rep.ExhaustiveWCET {
		t.Errorf("degraded bound %d vs exhaustive %d: safety lost", rep.WCET, rep.ExhaustiveWCET)
	}
	sum := rep.Summary()
	if !strings.Contains(sum, "safe-but-degraded") || !strings.Contains(sum, "degradation ledger") {
		t.Errorf("Summary() = %q, want the degraded verdict and ledger", sum)
	}
}

func TestUnavailableWhenFallbackImpossible(t *testing.T) {
	rep, err := AnalyzeCtx(mcBudgetFault(), coreSrc, Options{
		FuncName: "step", Bound: 1, MaxExhaustive: 2, TestGen: mcOnly(),
	})
	if err != nil {
		t.Fatalf("unavailable bound is a report, not an error: %v", err)
	}
	if rep.Soundness != BoundUnavailable {
		t.Fatalf("soundness = %v, want unavailable under MaxExhaustive=2", rep.Soundness)
	}
	if rep.WCET != -1 {
		t.Errorf("WCET = %d, want -1 (stating a number here would be a guess)", rep.WCET)
	}
	for _, d := range rep.Degradations {
		if d.Resolution != "unresolved" {
			t.Errorf("path %s: resolution = %q, want unresolved", d.PathKey, d.Resolution)
		}
	}
	if !strings.Contains(rep.Summary(), "unavailable") {
		t.Errorf("Summary() = %q, want the unavailable verdict", rep.Summary())
	}
}

func TestDegradedLedgerStableAcrossWorkers(t *testing.T) {
	analyse := func(workers int) *Report {
		rep, err := AnalyzeCtx(mcBudgetFault(), coreSrc, Options{
			FuncName: "step", Bound: 1, Exhaustive: true, Workers: workers, TestGen: mcOnly(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial, parallel := analyse(1), analyse(8)
	if serial.WCET != parallel.WCET || serial.Soundness != parallel.Soundness {
		t.Errorf("verdict differs: (%d, %v) vs (%d, %v)",
			serial.WCET, serial.Soundness, parallel.WCET, parallel.Soundness)
	}
	if s, p := serial.Summary(), parallel.Summary(); s != p {
		t.Errorf("degraded summaries differ:\n  workers=1:\n%s\n  workers=8:\n%s", s, p)
	}
}

func TestAnalyzeCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := AnalyzeCtx(ctx, coreSrc, Options{
		FuncName: "step", Bound: 1,
		TestGen: testgen.Config{GA: ga.Config{Seed: 5, Pop: 32, MaxGens: 40}, Optimise: true},
	})
	if !errors.Is(err, fail.ErrCancelled) {
		t.Fatalf("got (%v, %v), want ErrCancelled", rep, err)
	}
}

// contradictionSrc nests mutually exclusive guards: the inner then-branch
// is infeasible, so only the model checker could discharge its target.
const contradictionSrc = `
/*@ input */ /*@ range 0 20 */ int a;
int r;
void g(void) {
    r = 0;
    if (a > 15) {
        if (a < 5) { r = 1; }
    }
}`

func TestSkipMCDegradesInsteadOfAborting(t *testing.T) {
	// With the model checker disabled the infeasible residue has no proof;
	// those paths must surface in the ledger, not abort the analysis.
	rep, err := Analyze(contradictionSrc, Options{
		FuncName: "g", Bound: 1, Exhaustive: true,
		TestGen: testgen.Config{
			GA:     ga.Config{Seed: 5, Pop: 32, MaxGens: 40, Stagnation: 10},
			SkipMC: true,
		},
	})
	if err != nil {
		t.Fatalf("SkipMC must degrade, not abort: %v", err)
	}
	if rep.Soundness == BoundExact {
		// The switch targets include infeasible outcomes only the model
		// checker can discharge, so some degradation must remain.
		t.Error("heuristic-only run reported an exact bound")
	}
	if !strings.Contains(rep.Summary(), "model checker disabled") {
		t.Errorf("Summary() = %q, want the disabled-MC cause", rep.Summary())
	}
}
