// Run-journal binding: the fingerprint that ties a journal to one
// (program, options) identity, so a resumed analysis never replays records
// a different analysis produced.
package core

import (
	"fmt"
	"hash/fnv"
	"io"

	"wcet/internal/cc/ast"
	"wcet/internal/cfg"
	"wcet/internal/testgen"
)

// fingerprint digests everything a journaled unit's outcome is a function
// of: the program (canonically printed), the analysed function, and every
// deterministic option — partition bound, generator configuration (GA
// scalars, model-checker budgets, retry policy, failover cap), exhaustive
// settings and the simulator cost model. Workers is deliberately excluded:
// results are worker-count invariant by construction, so a run started
// with -workers 8 may resume with -workers 1 and vice versa. Function
// fields (Stop, OnTrace, Obs) are excluded for the same reason they are
// banned from reports: they carry no deterministic identity.
func fingerprint(file *ast.File, fn *ast.FuncDecl, g *cfg.Graph, opt Options, tg testgen.Config) string {
	h := fnv.New64a()
	put := func(format string, args ...any) { fmt.Fprintf(h, format, args...) }
	put("wcet-journal-v1\x00")
	io.WriteString(h, ast.Print(file))
	put("\x00fn=%s blocks=%d\x00", fn.Name, g.NumNodes())
	put("bound=%d exhaustive=%v maxexh=%d mctimeout=%d\x00",
		opt.Bound, opt.Exhaustive, opt.MaxExhaustive, opt.MCTimeout)
	put("ga seed=%d pop=%d gens=%d stag=%d mut=%g cross=%g tour=%d maxeval=%d\x00",
		tg.GA.Seed, tg.GA.Pop, tg.GA.MaxGens, tg.GA.Stagnation,
		tg.GA.MutRate, tg.GA.CrossRate, tg.GA.Tournament, tg.GA.MaxEvaluations)
	put("tg skipga=%v skipmc=%v optimise=%v failover=%d\x00",
		tg.SkipGA, tg.SkipMC, tg.Optimise, tg.FailoverMaxStates)
	put("mc steps=%d states=%d nodes=%d timeout=%d\x00",
		tg.MC.MaxSteps, tg.MC.MaxStates, tg.MC.MaxNodes, tg.MC.Timeout)
	put("retry attempts=%d backoff=%d\x00", tg.Retry.MaxAttempts, tg.Retry.BackoffBase)
	put("sim maxinstr=%d costs=%v\x00", opt.SimOptions.MaxInstructions, opt.SimOptions.Costs != nil)
	if c := opt.SimOptions.Costs; c != nil {
		put("taken=%d nottaken=%d extdefault=%d\x00", c.BranchTaken, c.BranchNotTaken, c.ExtDefault)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
