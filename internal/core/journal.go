// Run-journal binding: the fingerprint that ties a journal to one
// (program, options) identity, so a resumed analysis never replays records
// a different analysis produced.
package core

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"wcet/internal/cc/ast"
	"wcet/internal/cfg"
	"wcet/internal/isa"
	"wcet/internal/testgen"
)

// fingerprint digests everything a journaled unit's outcome is a function
// of: the program (canonically printed), the analysed function, and every
// deterministic option — partition bound, generator configuration (GA
// scalars, model-checker budgets and symbolic-engine levers, base
// environment, retry policy, failover cap), exhaustive settings and the
// full simulator cost model. Workers is deliberately excluded: results are
// worker-count invariant by construction, so a run started with -workers 8
// may resume with -workers 1 and vice versa. Function fields (Stop,
// OnTrace, Obs) are excluded for the same reason they are banned from
// reports: they carry no deterministic identity. An attached mc.OrderBook
// is digested by presence only — its learned contents are mutable
// in-process state that cannot define a stable identity, but a run with a
// book must never splice with one without (learned orders change node
// statistics).
//
// Version history: v1 omitted the symbolic levers (NoSlice/NoReorder/
// NoPool), the base environment, the order-book presence and the cost
// model's per-op and per-external maps — each a latent splice: a resume
// across those settings would merge runs with different degradation
// ledgers or measurements. v2 closes the class; the reflection-based
// coverage test (fingerprint_coverage_test.go) keeps it closed.
func fingerprint(file *ast.File, fn *ast.FuncDecl, g *cfg.Graph, opt Options, tg testgen.Config) string {
	h := fnv.New64a()
	put := func(format string, args ...any) { fmt.Fprintf(h, format, args...) }
	put("wcet-journal-v2\x00")
	io.WriteString(h, ast.Print(file))
	put("\x00fn=%s blocks=%d\x00", fn.Name, g.NumNodes())
	put("bound=%d exhaustive=%v maxexh=%d mctimeout=%d\x00",
		opt.Bound, opt.Exhaustive, opt.MaxExhaustive, opt.MCTimeout)
	put("ga seed=%d pop=%d gens=%d stag=%d mut=%g cross=%g tour=%d maxeval=%d\x00",
		tg.GA.Seed, tg.GA.Pop, tg.GA.MaxGens, tg.GA.Stagnation,
		tg.GA.MutRate, tg.GA.CrossRate, tg.GA.Tournament, tg.GA.MaxEvaluations)
	put("tg skipga=%v skipmc=%v optimise=%v failover=%d\x00",
		tg.SkipGA, tg.SkipMC, tg.Optimise, tg.FailoverMaxStates)
	put("mc steps=%d states=%d nodes=%d timeout=%d noslice=%v noreorder=%v nopool=%v orders=%v\x00",
		tg.MC.MaxSteps, tg.MC.MaxStates, tg.MC.MaxNodes, tg.MC.Timeout,
		tg.MC.NoSlice, tg.MC.NoReorder, tg.MC.NoPool, tg.MC.Orders != nil)
	// The base environment pins non-input initial values in every checked
	// model and seeds every recorded environment; serialized by name like
	// the journal codec's environments.
	names := make([]string, 0, len(tg.Base))
	vals := make(map[string]int64, len(tg.Base))
	for d, v := range tg.Base {
		names = append(names, d.Name)
		vals[d.Name] = v
	}
	sort.Strings(names)
	put("base n=%d\x00", len(names))
	for _, n := range names {
		put("%s=%d\x00", n, vals[n])
	}
	put("retry attempts=%d backoff=%d\x00", tg.Retry.MaxAttempts, tg.Retry.BackoffBase)
	put("sim maxinstr=%d costs=%v\x00", opt.SimOptions.MaxInstructions, opt.SimOptions.Costs != nil)
	if c := opt.SimOptions.Costs; c != nil {
		put("taken=%d nottaken=%d extdefault=%d\x00", c.BranchTaken, c.BranchNotTaken, c.ExtDefault)
		ops := make([]int, 0, len(c.Costs))
		for op := range c.Costs {
			ops = append(ops, int(op))
		}
		sort.Ints(ops)
		for _, op := range ops {
			put("op%d=%d\x00", op, c.Costs[isa.Op(op)])
		}
		exts := make([]int, 0, len(c.ExtCost))
		for id := range c.ExtCost {
			exts = append(exts, id)
		}
		sort.Ints(exts)
		for _, id := range exts {
			put("ext%d=%d\x00", id, c.ExtCost[id])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
