package core

// Regression for the journal-splice bug: the v1 fingerprint omitted the
// symbolic engine's A/B levers, so a journal written with slicing enabled
// would happily resume a -no-slice run — splicing verdicts produced under
// different engine configurations into one report. The levers are part of
// the v2 fingerprint; flipping any of them must reset the journal and run
// clean.

import (
	"path/filepath"
	"testing"

	"wcet/internal/ga"
	"wcet/internal/journal"
	"wcet/internal/testgen"
)

func runJournaled(t *testing.T, jpath string, mutate func(*Options)) *Report {
	t.Helper()
	j, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	opt := Options{
		Journal: j,
		TestGen: testgen.Config{
			GA:       ga.Config{Seed: 5, Pop: 32, MaxGens: 40, Stagnation: 10},
			Optimise: true,
		},
	}
	if mutate != nil {
		mutate(&opt)
	}
	rep, err := Analyze(coreSrc, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestJournalLeverFlipRunsClean(t *testing.T) {
	levers := []struct {
		name   string
		mutate func(*Options)
	}{
		{"no-slice", func(o *Options) { o.TestGen.MC.NoSlice = true }},
		{"no-reorder", func(o *Options) { o.TestGen.MC.NoReorder = true }},
		{"no-pool", func(o *Options) { o.TestGen.MC.NoPool = true }},
	}
	for _, lv := range levers {
		t.Run(lv.name, func(t *testing.T) {
			jpath := filepath.Join(t.TempDir(), "run.journal")
			first := runJournaled(t, jpath, nil)
			if first.ResumedUnits != 0 {
				t.Fatalf("fresh journal replayed %d units", first.ResumedUnits)
			}

			// Same program, same journal, one lever flipped: the fingerprint
			// must mismatch, resetting the journal to a clean run.
			flipped := runJournaled(t, jpath, lv.mutate)
			if flipped.ResumedUnits != 0 {
				t.Fatalf("journal written with default levers resumed %d unit(s) under -%s",
					flipped.ResumedUnits, lv.name)
			}

			// Control: without the flip the journal resumes, proving the
			// clean run above was the fingerprint's doing, not an accident.
			resumed := runJournaled(t, jpath, lv.mutate)
			if resumed.ResumedUnits == 0 {
				t.Fatal("control resume under unchanged options replayed nothing")
			}
		})
	}
}
