// Live status computation: the read path behind the /status endpoint.
// Unlike FrontierOf (which binds — and may reset — the journal it plans
// against), status is computed from a lock-free ReadFile snapshot wrapped
// in a read-only journal.Memory view, so a poller can watch a run whose
// journal flock is held by the coordinator or a worker. The deterministic
// half of the snapshot is a pure function of (program, options, journal
// records): two pollers reading the same bytes get the same status.
package core

import (
	"errors"
	"os"

	"wcet/internal/cc/ast"
	"wcet/internal/cfg"
	"wcet/internal/journal"
	"wcet/internal/measure"
	"wcet/internal/obs"
	"wcet/internal/partition"
	"wcet/internal/testgen"
)

// StatusFromRecords computes the deterministic status of a journaled run
// from a record snapshot (journal.ReadFile output). fp is the snapshot's
// fingerprint: a mismatch against the analysis identity reports stage
// "pending" (the journal belongs to another identity, or the run has not
// bound it yet) rather than mixing foreign records into the counts.
func StatusFromRecords(file *ast.File, fn *ast.FuncDecl, g *cfg.Graph, opt Options, records map[string][]byte, fp string) (*obs.Status, error) {
	opt = opt.withDefaults()
	tgConf := opt.resolvedTestGen()
	want := fingerprint(file, fn, g, opt, tgConf)
	st := &obs.Status{}
	st.Deterministic.Fingerprint = want
	if fp != want {
		st.Deterministic.Stage = "pending"
		return st, nil
	}
	j := journal.Memory(records)
	plan, err := partition.PartitionBound(g, opt.Bound)
	if err != nil {
		return nil, err
	}
	targets, _, err := planTargets(g, plan)
	if err != nil {
		return nil, err
	}
	gen := testgen.New(file, fn, g)
	prog := gen.Progress(j, targets, tgConf)
	st.Deterministic.Quarantined = prog.Quarantined

	addStage := func(stage string, done, total int) {
		st.Deterministic.Stages = append(st.Deterministic.Stages,
			obs.StageStatus{Stage: stage, Done: done, Total: total})
	}
	if !tgConf.SkipGA {
		addStage(StageGA, prog.GADone, prog.GATotal)
	}
	if len(prog.MissingGA) > 0 {
		st.Deterministic.Stage = StageGA
		return st, nil
	}
	if !tgConf.SkipMC {
		addStage(StageMC, prog.MCDone, prog.MCTotal)
	}
	if len(prog.MissingMC) > 0 {
		st.Deterministic.Stage = StageMC
		return st, nil
	}
	campaignMissing := measure.MissingKeys(j, "campaign", len(prog.Envs))
	addStage(StageCampaign, len(prog.Envs)-len(campaignMissing), len(prog.Envs))
	if len(campaignMissing) > 0 {
		st.Deterministic.Stage = StageCampaign
		return st, nil
	}
	exhaustiveEnvs, enumerable := enumerateAll(gen, tgConf.Base, opt.MaxExhaustive)
	if prog.Unknown {
		if !enumerable {
			// Unavailable bound: nothing past the campaign can run.
			st.Deterministic.Stage = StageDone
			return st, nil
		}
		missing := measure.MissingKeys(j, "fallback", len(exhaustiveEnvs))
		addStage(StageFallback, len(exhaustiveEnvs)-len(missing), len(exhaustiveEnvs))
		if len(missing) > 0 {
			st.Deterministic.Stage = StageFallback
			return st, nil
		}
	}
	if opt.Exhaustive && enumerable {
		missing := measure.MissingKeys(j, "exhaustive", len(exhaustiveEnvs))
		addStage(StageExhaustive, len(exhaustiveEnvs)-len(missing), len(exhaustiveEnvs))
		if len(missing) > 0 {
			st.Deterministic.Stage = StageExhaustive
			return st, nil
		}
	}
	st.Deterministic.Stage = StageDone
	return st, nil
}

// JournalStatusFunc builds the /status closure for one analysis: it runs
// the front end once, then each call snapshots the journal file (without
// locking it) and computes StatusFromRecords. A journal that does not
// exist yet reports stage "pending".
func JournalStatusFunc(src string, opt Options, journalPath string) (func() (*obs.Status, error), error) {
	file, fn, g, err := Frontend(src, opt.FuncName)
	if err != nil {
		return nil, err
	}
	return func() (*obs.Status, error) {
		records, fp, err := journal.ReadFile(journalPath)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return StatusFromRecords(file, fn, g, opt, map[string][]byte{}, "")
			}
			return nil, err
		}
		return StatusFromRecords(file, fn, g, opt, records, fp)
	}, nil
}
