// Frontier planning for distributed runs: given the canonical run journal,
// compute which pipeline stage is the first with unresolved unit keys —
// and exactly which keys — so a coordinator can lease them out to worker
// processes. The frontier is a pure function of (program, options, journal
// records): every read is non-hit-counting, so planning never inflates the
// resumed-unit accounting of the run that eventually assembles the report.
package core

import (
	"fmt"

	"wcet/internal/cc/ast"
	"wcet/internal/cfg"
	"wcet/internal/fail"
	"wcet/internal/measure"
	"wcet/internal/partition"
	"wcet/internal/testgen"
)

// Frontier stages, in pipeline order. The frontier always names the first
// stage with missing unit keys: a later stage's keys are not even
// enumerable until the earlier stages' records exist (the campaign's
// vector count depends on every generation verdict).
const (
	StageGA         = "ga"
	StageMC         = "mc"
	StageCampaign   = "campaign"
	StageFallback   = "fallback"
	StageExhaustive = "exhaustive"
	StageDone       = "done"
)

// Frontier is the distributed run's current work front.
type Frontier struct {
	// Stage is the first pipeline stage with unresolved units (StageDone
	// when the journal already holds every record the report needs).
	Stage string
	// Keys lists the stage's missing unit keys in deterministic pipeline
	// order (empty for StageDone).
	Keys []string
}

// FingerprintOf exposes the journal-binding fingerprint of an analysis,
// so a coordinator and its workers can verify they agree on the identity
// before sharing records.
func FingerprintOf(file *ast.File, fn *ast.FuncDecl, g *cfg.Graph, opt Options) string {
	opt = opt.withDefaults()
	return fingerprint(file, fn, g, opt, opt.resolvedTestGen())
}

// FrontierOf computes the work frontier of a journaled analysis. It
// requires opt.Journal, binds it to the analysis fingerprint (idempotent —
// a mismatch resets the journal exactly like AnalyzeGraphCtx would), and
// reads records without counting resume hits.
func FrontierOf(file *ast.File, fn *ast.FuncDecl, g *cfg.Graph, opt Options) (*Frontier, error) {
	opt = opt.withDefaults()
	j := opt.Journal
	if j == nil {
		return nil, fmt.Errorf("core: FrontierOf requires Options.Journal")
	}
	tgConf := opt.resolvedTestGen()
	if _, err := j.Bind(fingerprint(file, fn, g, opt, tgConf)); err != nil {
		return nil, fail.Infra("core", err)
	}
	plan, err := partition.PartitionBound(g, opt.Bound)
	if err != nil {
		return nil, err
	}
	targets, _, err := planTargets(g, plan)
	if err != nil {
		return nil, err
	}
	gen := testgen.New(file, fn, g)
	prog := gen.Progress(j, targets, tgConf)
	if len(prog.MissingGA) > 0 {
		return &Frontier{Stage: StageGA, Keys: prog.MissingGA}, nil
	}
	if len(prog.MissingMC) > 0 {
		return &Frontier{Stage: StageMC, Keys: prog.MissingMC}, nil
	}
	if keys := measure.MissingKeys(j, "campaign", len(prog.Envs)); len(keys) > 0 {
		return &Frontier{Stage: StageCampaign, Keys: keys}, nil
	}
	exhaustiveEnvs, enumerable := enumerateAll(gen, tgConf.Base, opt.MaxExhaustive)
	if prog.Unknown {
		if !enumerable {
			// Unavailable bound: the pipeline stops right after the campaign,
			// so there is nothing left to distribute.
			return &Frontier{Stage: StageDone}, nil
		}
		if keys := measure.MissingKeys(j, "fallback", len(exhaustiveEnvs)); len(keys) > 0 {
			return &Frontier{Stage: StageFallback, Keys: keys}, nil
		}
	}
	if opt.Exhaustive && enumerable {
		if keys := measure.MissingKeys(j, "exhaustive", len(exhaustiveEnvs)); len(keys) > 0 {
			return &Frontier{Stage: StageExhaustive, Keys: keys}, nil
		}
	}
	return &Frontier{Stage: StageDone}, nil
}
