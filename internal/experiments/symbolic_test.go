package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"wcet/internal/core"
	"wcet/internal/mc"
	"wcet/internal/testgen"
)

// End-to-end pins for the three symbolic-speed levers (per-trap slicing,
// dynamic variable reordering, manager pooling) on the wiper case study.
// The levers are on by default; these tests force reordering to actually
// fire (the default trigger is sized for Table 2 workloads, not the wiper
// toys) and check the determinism contract the levers must not break:
// canonical reports are byte-identical across worker counts, and turning
// every lever off changes performance counters only, never the analysis.

func leverConfig(workers int, off bool) core.Options {
	tg := wiperTestGenConfig(workers)
	tg.MC.NoSlice = off
	tg.MC.NoReorder = off
	tg.MC.NoPool = off
	return core.Options{
		Bound:      8,
		Exhaustive: true,
		Workers:    workers,
		TestGen:    tg,
	}
}

func TestLeversCanonicalReportDeterministicAcrossWorkers(t *testing.T) {
	// Lower the reorder trigger so sifting fires during the analysis; the
	// canonical report must still not depend on the worker count.
	old := mc.SetReorderMin(256)
	defer mc.SetReorderMin(old)
	file, fn, g := wiperGraph(t)
	run := func(workers int) []byte {
		rep, err := core.AnalyzeGraph(file, fn, g, leverConfig(workers, false))
		if err != nil {
			t.Fatal(err)
		}
		return canonicalBytes(t, rep)
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("canonical report differs between Workers=1 and Workers=8 with all levers on:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	// And re-running the same configuration must reproduce it exactly.
	if again := run(8); !bytes.Equal(parallel, again) {
		t.Error("canonical report not reproducible run over run with all levers on")
	}
}

// TestLeversOffSameAnalysis: the levers are pure performance levers — with
// all three disabled the analysis (WCET bound, verdicts, witnesses, step
// counts) must be unchanged; only node/memory statistics may move.
func TestLeversOffSameAnalysis(t *testing.T) {
	old := mc.SetReorderMin(256)
	defer mc.SetReorderMin(old)
	file, fn, g := wiperGraph(t)
	run := func(off bool) *core.Report {
		rep, err := core.AnalyzeGraph(file, fn, g, leverConfig(4, off))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	on := run(false)
	offRep := run(true)
	if on.WCET != offRep.WCET {
		t.Errorf("levers changed the WCET bound: %d (on) vs %d (off)", on.WCET, offRep.WCET)
	}
	if on.ExhaustiveWCET != offRep.ExhaustiveWCET {
		t.Errorf("levers changed the exhaustive WCET: %d vs %d", on.ExhaustiveWCET, offRep.ExhaustiveWCET)
	}
	if len(on.TestGen.Results) != len(offRep.TestGen.Results) {
		t.Fatalf("levers changed the result count: %d vs %d",
			len(on.TestGen.Results), len(offRep.TestGen.Results))
	}
	for i, r := range on.TestGen.Results {
		o := offRep.TestGen.Results[i]
		if r.Verdict != o.Verdict {
			t.Errorf("result %d: verdict differs: %v (on) vs %v (off)", i, r.Verdict, o.Verdict)
		}
		if !reflect.DeepEqual(r.Env, o.Env) {
			t.Errorf("result %d: test datum differs with levers on vs off", i)
		}
	}
}

// TestLeverFlagsReachPipeline: the testgen config actually feeds the levers
// — a levers-off run must report zero reorders and larger (or equal) peak
// node counts than the levered run on at least one model-checked path.
func TestLeverFlagsReachPipeline(t *testing.T) {
	old := mc.SetReorderMin(256)
	defer mc.SetReorderMin(old)
	file, fn, g := wiperGraph(t)
	gen := testgen.New(file, fn, g)
	targets := testgen.BranchTargets(g)
	run := func(off bool) *testgen.Report {
		conf := wiperTestGenConfig(4)
		conf.MC.NoSlice = off
		conf.MC.NoReorder = off
		conf.MC.NoPool = off
		rep, err := gen.Generate(targets, conf)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	offRep := run(true)
	for i, r := range offRep.Results {
		if r.MCStats.Reorders != 0 {
			t.Errorf("result %d: levers-off run reports %d reorders", i, r.MCStats.Reorders)
		}
	}
	onRep := run(false)
	shrunk := false
	for i, r := range onRep.Results {
		o := offRep.Results[i]
		if r.MCStats.StateBits > 0 && r.MCStats.StateBits < o.MCStats.StateBits {
			shrunk = true
		}
		if r.MCStats.StateBits > o.MCStats.StateBits {
			t.Errorf("result %d: slice grew the state vector: %d vs %d",
				i, r.MCStats.StateBits, o.MCStats.StateBits)
		}
	}
	if !shrunk {
		t.Error("slicing never shrank a checked state vector on the wiper study")
	}
}
