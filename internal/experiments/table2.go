package experiments

import (
	"fmt"
	"strings"
	"time"

	"wcet/internal/c2m"
	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/interp"
	"wcet/internal/mc"
	"wcet/internal/opt"
	"wcet/internal/paths"
	"wcet/internal/tsys"
)

// Table2Source is the evaluation program of Section 3.3: 105 lines without
// comments/blanks, four boolean and thirteen byte variables, of which three
// are reverse-CSE-substitutable temporaries, three do not affect control
// flow, and three are unused.
const Table2Source = `
/*@ input */ /*@ range 0 1 */ int sw_main;
/*@ input */ /*@ range 0 1 */ int sw_mode;
/*@ input */ /*@ range 0 100 */ char sensor_a;
/*@ input */ /*@ range 0 100 */ char sensor_b;
int flag_act;
int flag_err;
char level;
char out_cmd;
char dbg1;
char dbg2;
char dbg3;
void control(void) {
    char tmp1;
    char tmp2;
    char tmp3;
    char unused1;
    char unused2;
    char unused3;
    flag_act = 0;
    flag_err = 0;
    out_cmd = 0;
    tmp1 = (char)(sensor_a + 1);
    level = (char)(tmp1 * 2);
    dbg1 = (char)(level + 5);
    if (sw_main == 1) {
        flag_act = 1;
    } else {
        flag_act = 0;
    }
    tmp2 = (char)(sensor_b - 3);
    dbg2 = (char)(tmp2 + level);
    if (flag_act == 1) {
        if (sw_mode == 1) {
            if (level > 60) {
                out_cmd = 3;
            } else {
                out_cmd = 2;
            }
        } else {
            if (level > 90) {
                flag_err = 1;
                out_cmd = 0;
            } else {
                out_cmd = 1;
            }
        }
    } else {
        out_cmd = 0;
    }
    tmp3 = (char)(sensor_a - sensor_b);
    dbg3 = (char)(tmp3 * 2);
    if (sensor_a == 77) {
        if (level > 50) {
            out_cmd = 9;
        }
    }
    if (flag_err == 1) {
        if (sw_mode == 0) {
            out_cmd = 0;
        }
    }
    if (sensor_b >= 40) {
        if (sensor_b <= 60) {
            if (out_cmd < 9) {
                out_cmd = (char)(out_cmd + 1);
            }
        }
    }
    if (sw_main == 0) {
        if (sw_mode == 0) {
            out_cmd = 0;
        }
    }
    if (level >= 120) {
        flag_err = 1;
    }
    if (out_cmd > 3) {
        if (sensor_a < 10) {
            out_cmd = 3;
        }
    }
    if (sensor_a > 90) {
        if (out_cmd == 3) {
            out_cmd = 2;
        } else {
            out_cmd = (char)(out_cmd);
        }
    }
    if (sensor_b == 0) {
        if (sw_main == 1) {
            out_cmd = 1;
        }
    }
    if (level < 0) {
        flag_err = 1;
        out_cmd = 0;
    }
    if (flag_act == 1) {
        if (sensor_a >= 50) {
            if (sensor_b < 20) {
                out_cmd = (char)(out_cmd + 1);
            }
        }
    }
    if (out_cmd >= 4) {
        if (flag_err == 0) {
            dbg1 = (char)(out_cmd * 3);
        }
    }
}
`

// Table2Row is one optimisation-evaluation line.
type Table2Row struct {
	Name string
	// Time is the model-checking wall time (the paper's "simul. time").
	Time time.Duration
	// MemoryKB is the estimated working set.
	MemoryKB int64
	// Steps is the BFS iteration count.
	Steps int
	// PeakNodes is the BDD node count after the run — the raw size of the
	// symbolic state-space representation, independent of table overhead.
	PeakNodes int
	// StateBits is the state-vector width the configuration's passes
	// produce — measured on the lowered model itself, because the symbolic
	// engine's own per-trap slice (which runs inside every check) would
	// otherwise mask the differences this table exists to show.
	StateBits int
	// Reachable confirms every configuration agrees on the verdict.
	Reachable bool
}

// Table2 evaluates the state-space optimisations: the model checker
// generates test data for one fixed feasible path of the evaluation
// program under the unoptimised translation, the full pipeline, and each
// single optimisation.
func Table2() ([]Table2Row, error) {
	file, err := parser.ParseFile("table2.c", Table2Source)
	if err != nil {
		return nil, err
	}
	if _, err := sem.Check(file); err != nil {
		return nil, err
	}
	g, err := cfg.Build(file.Func("control"))
	if err != nil {
		return nil, err
	}
	target, err := pickTargetPath(file, g)
	if err != nil {
		return nil, err
	}

	type config struct {
		name   string
		passes func(m *tsys.Model)
	}
	configs := []config{
		{"unoptimized", func(m *tsys.Model) {}},
		{"all optimisations used", func(m *tsys.Model) { opt.All(m) }},
		{"Variable Initialisation", func(m *tsys.Model) { opt.VarInit(m) }},
		{"Variable Range Analysis", func(m *tsys.Model) { opt.RangeAnalysis(m) }},
		{"Reverse CSE", func(m *tsys.Model) { opt.ReverseCSE(m) }},
		{"Statement Concatenation", func(m *tsys.Model) { opt.Concat(m) }},
		{"DeadVariable Elimination", func(m *tsys.Model) { opt.DeadElim(m) }},
		{"Live-Variable Analysis", func(m *tsys.Model) { opt.LiveVars(m) }},
	}

	rows := make([]Table2Row, 0, len(configs))
	for _, cf := range configs {
		low, err := c2m.LowerPath(g, c2m.Options{NaiveWidths: true}, target)
		if err != nil {
			return nil, err
		}
		cf.passes(low.Model)
		bits := low.Model.StateBits()
		res, err := mc.CheckSymbolic(low.Model, mc.Options{MaxSteps: 5000})
		if err != nil {
			return nil, fmt.Errorf("table2 %q: %w", cf.name, err)
		}
		rows = append(rows, Table2Row{
			Name:      cf.name,
			Time:      res.Stats.Duration,
			MemoryKB:  res.Stats.MemoryBytes / 1024,
			Steps:     res.Stats.Steps,
			PeakNodes: res.Stats.PeakNodes,
			StateBits: bits,
			Reachable: res.Reachable,
		})
	}
	return rows, nil
}

// Table2UnoptModel lowers the Table 2 evaluation program's fixed target
// path with no optimisation pass applied — the heaviest symbolic workload
// in the evaluation, exported so the lever A/B benchmark can drive the
// model checker on it directly.
func Table2UnoptModel() (*tsys.Model, error) {
	file, err := parser.ParseFile("table2.c", Table2Source)
	if err != nil {
		return nil, err
	}
	if _, err := sem.Check(file); err != nil {
		return nil, err
	}
	g, err := cfg.Build(file.Func("control"))
	if err != nil {
		return nil, err
	}
	target, err := pickTargetPath(file, g)
	if err != nil {
		return nil, err
	}
	low, err := c2m.LowerPath(g, c2m.Options{NaiveWidths: true}, target)
	if err != nil {
		return nil, err
	}
	return low.Model, nil
}

// pickTargetPath derives the fixed Table 2 target from a concrete run of
// the deep reference input (sensor_a at the needle value), so the target is
// feasible by construction and identical across configurations.
func pickTargetPath(file *ast.File, g *cfg.Graph) (paths.Path, error) {
	env := interp.Env{}
	want := map[string]int64{"sw_main": 1, "sw_mode": 1, "sensor_a": 77, "sensor_b": 50}
	for _, d := range file.Globals {
		if v, ok := want[d.Name]; ok {
			env[d] = v
		}
	}
	m := interp.New(file, interp.Options{})
	tr, err := m.Run(g, env)
	if err != nil {
		return paths.Path{}, fmt.Errorf("table2: reference run failed: %w", err)
	}
	return paths.Path{
		Blocks: tr.Blocks,
		Exit:   cfg.Edge{From: tr.Blocks[len(tr.Blocks)-1], To: cfg.NoNode, Kind: "end"},
	}, nil
}

// RenderTable2 prints the rows in the paper's layout.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("optimisation technique    | time [ms] | memory [kb] | steps | peak nodes | state bits\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-25s | %9.2f | %11d | %5d | %10d | %10d\n",
			r.Name, float64(r.Time.Microseconds())/1000, r.MemoryKB, r.Steps, r.PeakNodes, r.StateBits)
	}
	return b.String()
}
