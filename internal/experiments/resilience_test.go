package experiments

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/core"
	"wcet/internal/fail"
	"wcet/internal/faults"
	"wcet/internal/model"
	"wcet/internal/testgen"
)

// End-to-end resilience on the paper's wiper-controller case study: the
// full pipeline under cancellation, injected faults and injected panics
// must return structured errors (or sound degraded reports) — never hang,
// never crash, never leak, and never let the Workers knob change the
// outcome.

func wiperGraph(t *testing.T) (*ast.File, *ast.FuncDecl, *cfg.Graph) {
	t.Helper()
	src := model.Wiper().Emit("wiper_control")
	file, err := parser.ParseFile("wiper.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sem.Check(file); err != nil {
		t.Fatal(err)
	}
	fn := file.Func("wiper_control")
	g, err := cfg.Build(fn)
	if err != nil {
		t.Fatal(err)
	}
	return file, fn, g
}

func TestWiperCancelMidAnalysisReturnsStructuredError(t *testing.T) {
	file, fn, g := wiperGraph(t)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	type outcome struct {
		rep *core.Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := core.AnalyzeGraphCtx(ctx, file, fn, g, core.Options{
			Bound:   8,
			Workers: 8,
			TestGen: wiperTestGenConfig(8),
		})
		done <- outcome{rep, err}
	}()
	select {
	case o := <-done:
		// The analysis may legitimately finish inside 30ms on a fast
		// machine; only a cancelled run must carry the right kind.
		if o.err != nil && !errors.Is(o.err, fail.ErrCancelled) {
			t.Errorf("cancelled analysis: got %v, want ErrCancelled", o.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled analysis hung")
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines: %d before, %d after cancellation", before, n)
	}
}

// TestWiperDegradedReportIdenticalAcrossWorkers is the strongest form of
// the determinism guarantee: even with every model-checker call failing by
// injection, the degraded report — WCET, soundness verdict, the full
// rendered ledger — must be byte-identical for Workers=1 and Workers=8.
func TestWiperDegradedReportIdenticalAcrossWorkers(t *testing.T) {
	file, fn, g := wiperGraph(t)
	analyse := func(workers int) *core.Report {
		ctx := faults.With(context.Background(), faults.New(
			faults.Rule{Site: "testgen.mc", Index: -1, Err: fail.Budget("mc", "injected step budget")}))
		conf := wiperTestGenConfig(workers)
		rep, err := core.AnalyzeGraphCtx(ctx, file, fn, g, core.Options{
			Bound:      8,
			Exhaustive: true,
			Workers:    workers,
			TestGen:    conf,
		})
		if err != nil {
			t.Fatalf("workers=%d: degradation must not abort: %v", workers, err)
		}
		return rep
	}
	serial := analyse(1)
	if serial.Soundness != core.BoundDegradedSafe {
		t.Fatalf("soundness = %v, want safe-but-degraded (12-vector input space)", serial.Soundness)
	}
	if len(serial.Degradations) == 0 {
		t.Fatal("no ledger entries — the injected faults never fired")
	}
	if serial.WCET < serial.ExhaustiveWCET {
		t.Errorf("degraded bound %d below ground truth %d: safety lost", serial.WCET, serial.ExhaustiveWCET)
	}
	parallel := analyse(8)
	if s, p := serial.Summary(), parallel.Summary(); s != p {
		t.Errorf("degraded reports differ across workers:\n--- workers=1\n%s\n--- workers=8\n%s", s, p)
	}
	if serial.WCET != parallel.WCET || serial.ExhaustiveWCET != parallel.ExhaustiveWCET {
		t.Errorf("bounds differ: (%d,%d) vs (%d,%d)",
			serial.WCET, serial.ExhaustiveWCET, parallel.WCET, parallel.ExhaustiveWCET)
	}
}

// TestWiperInjectedPanicsDeterministicPerStage explodes one worker in each
// pipeline stage and demands the same attributed error for every worker
// count — panic isolation with first-index-wins, end to end.
func TestWiperInjectedPanicsDeterministicPerStage(t *testing.T) {
	file, fn, g := wiperGraph(t)
	stages := []struct {
		name string
		rule faults.Rule
	}{
		{"testgen", faults.Rule{Site: "testgen.search", Index: 1, Mode: faults.Panic}},
		{"measure", faults.Rule{Site: "measure.run", Index: 0, Mode: faults.Panic}},
	}
	for _, st := range stages {
		t.Run(st.name, func(t *testing.T) {
			analyse := func(workers int) string {
				ctx := faults.With(context.Background(), faults.New(st.rule))
				_, err := core.AnalyzeGraphCtx(ctx, file, fn, g, core.Options{
					Bound:   8,
					Workers: workers,
					TestGen: wiperTestGenConfig(workers),
				})
				if !errors.Is(err, fail.ErrWorkerPanic) {
					t.Fatalf("workers=%d: got %v, want ErrWorkerPanic", workers, err)
				}
				return err.Error()
			}
			if s, p := analyse(1), analyse(8); s != p {
				t.Errorf("panic error differs across workers:\n  1: %s\n  8: %s", s, p)
			}
		})
	}
}

// TestWiperMCTimeoutDegradesPerPath pins the per-call budget path: with a
// vanishingly small per-path model-checker timeout the residue degrades —
// and the exhaustive fallback still delivers a safe bound.
func TestWiperMCTimeoutDegradesPerPath(t *testing.T) {
	file, fn, g := wiperGraph(t)
	conf := wiperTestGenConfig(1)
	rep, err := core.AnalyzeGraphCtx(context.Background(), file, fn, g, core.Options{
		Bound:      8,
		Exhaustive: true,
		MCTimeout:  time.Nanosecond,
		TestGen:    conf,
	})
	if err != nil {
		t.Fatalf("per-path timeouts must degrade, not abort: %v", err)
	}
	if rep.Soundness != core.BoundDegradedSafe {
		t.Fatalf("soundness = %v, want safe-but-degraded", rep.Soundness)
	}
	for _, d := range rep.Degradations {
		if !errors.Is(d.Cause, fail.ErrBudgetExceeded) {
			t.Errorf("path %s: cause = %v, want a spent wall-clock budget", d.PathKey, d.Cause)
		}
	}
	if rep.WCET < rep.ExhaustiveWCET {
		t.Errorf("degraded bound %d below ground truth %d", rep.WCET, rep.ExhaustiveWCET)
	}
}

// TestWiperVerdictsStillDeterministic re-pins the clean-run guarantee with
// the context-threaded pipeline: Unknown stays absent and soundness exact.
func TestWiperSoundnessExactOnCleanRun(t *testing.T) {
	file, fn, g := wiperGraph(t)
	rep, err := core.AnalyzeGraphCtx(context.Background(), file, fn, g, core.Options{
		Bound:   8,
		TestGen: wiperTestGenConfig(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Soundness != core.BoundExact || len(rep.Degradations) != 0 {
		t.Errorf("clean wiper run: soundness %v with %d ledger entries, want exact/0",
			rep.Soundness, len(rep.Degradations))
	}
	for _, r := range rep.TestGen.Results {
		if r.Verdict == testgen.Unknown {
			t.Errorf("path %s unexpectedly unknown: %v", r.Path.Key(), r.Err)
		}
	}
}
