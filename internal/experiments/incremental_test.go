package experiments

// Incremental-analysis acceptance on the wiper case study: a warm-cache
// re-analysis must produce a report byte-identical (WriteCanonical) to a
// clean run's, at any worker count — the cache may only change how fast a
// verdict arrives, never what it says.

import (
	"bytes"
	"context"
	"testing"

	"wcet/internal/core"
	"wcet/internal/vcache"
)

func runCached(t *testing.T, workers int, vc *vcache.Store) *core.Report {
	t.Helper()
	file, fn, g := wiperGraph(t)
	rep, err := core.AnalyzeGraphCtx(context.Background(), file, fn, g, core.Options{
		Bound:      8,
		Exhaustive: true,
		Workers:    workers,
		TestGen:    wiperTestGenConfig(workers),
		Cache:      vc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestWiperWarmCacheByteIdenticalAcrossWorkers(t *testing.T) {
	want := canonicalBytes(t, runCached(t, 1, nil))

	vc, err := vcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold := runCached(t, 1, vc)
	if cold.CachedUnits != 0 {
		t.Fatalf("cold run against an empty store claims %d cached units", cold.CachedUnits)
	}
	if got := canonicalBytes(t, cold); !bytes.Equal(got, want) {
		t.Fatalf("cold cached run diverged from clean:\n--- clean\n%s\n--- cold\n%s", want, got)
	}
	if vc.Len() == 0 {
		t.Fatal("cold run stored nothing")
	}

	hits := -1
	for _, workers := range []int{1, 8} {
		warm := runCached(t, workers, vc)
		if warm.CachedUnits == 0 {
			t.Fatalf("workers=%d: warm run replayed nothing", workers)
		}
		if got := canonicalBytes(t, warm); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: warm report diverged from clean:\n--- clean\n%s\n--- warm\n%s",
				workers, want, got)
		}
		// Hit counts are deterministic given a fixed cache state, including
		// across worker counts.
		if hits >= 0 && warm.CachedUnits != hits {
			t.Fatalf("warm hit count depends on workers: %d vs %d", hits, warm.CachedUnits)
		}
		hits = warm.CachedUnits
	}
}
