package experiments

import (
	"reflect"
	"testing"

	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/codegen"
	"wcet/internal/core"
	"wcet/internal/ga"
	"wcet/internal/interp"
	"wcet/internal/measure"
	"wcet/internal/model"
	"wcet/internal/partition"
	"wcet/internal/sim"
	"wcet/internal/testgen"
)

// The parallel analysis engine guarantees that every pipeline stage
// produces results independent of the worker count. These tests pin that
// guarantee on the paper's wiper-controller case study: Workers=1 and
// Workers=8 must give deep-equal reports. Wall-clock durations inside
// mc.Stats are the single documented exception and are zeroed before
// comparison.

func zeroDurations(rep *testgen.Report) {
	for i := range rep.Results {
		rep.Results[i].MCStats.Duration = 0
	}
}

func wiperTestGenConfig(workers int) testgen.Config {
	return testgen.Config{
		GA:       ga.Config{Seed: 2005, Pop: 48, MaxGens: 80, Stagnation: 20},
		Optimise: true,
		Workers:  workers,
	}
}

func TestWiperPipelineDeterministicAcrossWorkers(t *testing.T) {
	src := model.Wiper().Emit("wiper_control")
	file, err := parser.ParseFile("wiper.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sem.Check(file); err != nil {
		t.Fatal(err)
	}
	fn := file.Func("wiper_control")
	g, err := cfg.Build(fn)
	if err != nil {
		t.Fatal(err)
	}

	// Stage: hybrid test-data generation over the case-study plan targets
	// (branch coverage exercises both GA and model-checker paths).
	gen := testgen.New(file, fn, g)
	targets := testgen.BranchTargets(g)
	genRun := func(workers int) *testgen.Report {
		rep, err := gen.Generate(targets, wiperTestGenConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		zeroDurations(rep)
		return rep
	}
	genSerial := genRun(1)
	t.Run("Generate", func(t *testing.T) {
		if !reflect.DeepEqual(genSerial, genRun(8)) {
			t.Error("testgen.Generate differs between Workers=1 and Workers=8")
		}
	})

	// Stage: measurement campaign over the generated vectors.
	var envs []interp.Env
	for _, r := range genSerial.Results {
		if r.Env != nil {
			envs = append(envs, r.Env)
		}
	}
	img, err := codegen.Compile(g, file)
	if err != nil {
		t.Fatal(err)
	}
	vm := sim.New(img, sim.Options{})
	plan := partition.MustPartitionBound(g, 8)
	t.Run("Campaign", func(t *testing.T) {
		serial, err := measure.Campaign(plan, vm, envs, 1)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := measure.Campaign(plan, vm, envs, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Error("measure.Campaign differs between Workers=1 and Workers=8")
		}
		s1, err := measure.ExhaustiveMax(vm, envs, 1)
		if err != nil {
			t.Fatal(err)
		}
		s8, err := measure.ExhaustiveMax(vm, envs, 8)
		if err != nil {
			t.Fatal(err)
		}
		if s1 != s8 {
			t.Errorf("ExhaustiveMax differs: %d (serial) vs %d (parallel)", s1, s8)
		}
	})

	// Stage: the full pipeline — WCET bound, per-unit maxima, verdicts.
	analyze := func(workers int) *core.Report {
		rep, err := core.AnalyzeGraph(file, fn, g, core.Options{
			Bound:      8,
			Exhaustive: true,
			Workers:    workers,
			TestGen:    wiperTestGenConfig(workers),
		})
		if err != nil {
			t.Fatal(err)
		}
		zeroDurations(rep.TestGen)
		return rep
	}
	t.Run("Analyze", func(t *testing.T) {
		serial := analyze(1)
		parallel := analyze(8)
		if serial.WCET != parallel.WCET {
			t.Errorf("WCET bound differs: %d vs %d", serial.WCET, parallel.WCET)
		}
		if serial.ExhaustiveWCET != parallel.ExhaustiveWCET {
			t.Errorf("exhaustive WCET differs: %d vs %d", serial.ExhaustiveWCET, parallel.ExhaustiveWCET)
		}
		if !reflect.DeepEqual(serial.TestGen, parallel.TestGen) {
			t.Error("test-generation reports differ")
		}
		if !reflect.DeepEqual(serial.Measurement.Times, parallel.Measurement.Times) {
			t.Error("per-unit maxima differ")
		}
		if !reflect.DeepEqual(serial.Critical, parallel.Critical) {
			t.Error("critical paths differ")
		}
	})
}

// TestSweepDeterministicAcrossWorkers pins the partitioning sweep: the
// Figure 2/3 series must not depend on the worker count.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *SweepResult {
		res, err := Sweep(SweepConfig{Seed: 11, Branches: 80, Points: 120, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial.Points, parallel.Points) {
		t.Error("sweep series differs between Workers=1 and Workers=8")
	}
	if serial.Blocks != parallel.Blocks || serial.Branches != parallel.Branches {
		t.Error("sweep workload differs between runs")
	}
}
