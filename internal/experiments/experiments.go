// Package experiments regenerates every table and figure of the paper's
// evaluation. Each driver returns structured rows/series and can render
// them in the paper's layout; the root-level benchmarks and the example
// programs call these drivers.
//
//	Table1    — measurement effort over path bound b (Figure 1 program)
//	Figure2   — instrumentation points over path bound (synthetic app)
//	Figure3   — measurements vs instrumentation points (synthetic app)
//	Table2    — model-checking cost per state-space optimisation
//	CaseStudy — wiper-control WCET: exhaustive vs partition-based bound
package experiments

import (
	"fmt"
	"strings"

	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/core"
	"wcet/internal/ga"
	"wcet/internal/gen"
	"wcet/internal/model"
	"wcet/internal/partition"
	"wcet/internal/testgen"
)

// Figure1Source is the paper's Figure 1 example listing.
const Figure1Source = `
int main() {
    int i;
    printf1();
    printf2();
    if (i == 0)
    {
        printf3();
        if (i == 0) {
            printf4();
        } else {
            printf5();
        }
    }
    if (i == 0)
    {
        printf6();
        printf7();
    }
    printf8();
}
`

// BuildGraph parses, checks and builds the CFG of one function.
func BuildGraph(src, name string) (*cfg.Graph, error) {
	f, err := parser.ParseFile("exp.c", src)
	if err != nil {
		return nil, err
	}
	if _, err := sem.Check(f); err != nil {
		return nil, err
	}
	fn := f.Func(name)
	if fn == nil {
		return nil, fmt.Errorf("experiments: function %q not found", name)
	}
	return cfg.Build(fn)
}

// ---------------------------------------------------------------------------
// Table 1

// Table1Row is one line of the paper's Table 1.
type Table1Row struct {
	Bound int64
	IP    int
	M     int64
}

// Table1 computes measurement effort for path bounds 1..7 on the Figure 1
// program. Expected (and asserted in tests): (22,11), (16,9)×4, (2,6)×2.
func Table1() ([]Table1Row, error) {
	g, err := BuildGraph(Figure1Source, "main")
	if err != nil {
		return nil, err
	}
	tree, err := partition.BuildTree(g)
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, 7)
	for b := int64(1); b <= 7; b++ {
		plan := partition.Partition(g, tree, cfg.NewCount(b))
		rows = append(rows, Table1Row{Bound: b, IP: plan.IP, M: plan.M.Int64()})
	}
	return rows, nil
}

// RenderTable1 prints the rows in the paper's layout.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Bound b | Instr. Points ip | Measurements m\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d | %16d | %14d\n", r.Bound, r.IP, r.M)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figures 2 and 3

// SweepConfig sizes the synthetic industrial application.
type SweepConfig struct {
	Seed     int64
	Branches int // the paper's functions have ≈300
	Points   int // sweep samples (log-spaced bounds)
	// Workers parallelises the per-bound partition passes (0 = one per
	// CPU, 1 = serial); the series is identical for every value.
	Workers int
}

// SweepResult carries the series for both figures plus workload facts.
type SweepResult struct {
	Points    []partition.Point
	Blocks    int
	Branches  int
	Lines     int
	TotalPath cfg.Count
}

// Sweep generates the synthetic application and sweeps the path bound —
// Figure 2 is (Bound → IP), Figure 3 is (IP → M).
func Sweep(conf SweepConfig) (*SweepResult, error) {
	if conf.Branches == 0 {
		conf.Branches = 300
	}
	if conf.Points == 0 {
		conf.Points = 400
	}
	prog := gen.Generate(gen.Config{Seed: conf.Seed, Branches: conf.Branches})
	g, err := BuildGraph(prog.Source, prog.FuncName)
	if err != nil {
		return nil, err
	}
	bounds := partition.DefaultBounds(g, conf.Points)
	points, err := partition.Sweep(g, bounds, conf.Workers)
	if err != nil {
		return nil, err
	}
	return &SweepResult{
		Points:    points,
		Blocks:    g.NumNodes(),
		Branches:  g.CondBranches(),
		Lines:     prog.Lines,
		TotalPath: cfg.WholeFunction(g).PathCount(),
	}, nil
}

// RenderFigure2 prints the (bound, ip) series.
func RenderFigure2(res *SweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# synthetic app: %d blocks, %d branches, %d lines, %s paths\n",
		res.Blocks, res.Branches, res.Lines, res.TotalPath)
	b.WriteString("# bound b -> instrumentation points ip (log-x in the paper)\n")
	for _, p := range res.Points {
		fmt.Fprintf(&b, "%-24s %d\n", p.Bound, p.IP)
	}
	return b.String()
}

// RenderFigure3 prints the (ip, m) series.
func RenderFigure3(res *SweepResult) string {
	var b strings.Builder
	b.WriteString("# instrumentation points ip -> measurements m\n")
	for _, p := range res.Points {
		fmt.Fprintf(&b, "%-8d %s\n", p.IP, p.M)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Case study (Section 4)

// CaseStudyResult reproduces the wiper-control numbers.
type CaseStudyResult struct {
	Report *core.Report
	// Source is the generated wiper_control C code.
	Source string
	// ExhaustiveWCET and Bound are the paper's 250 and 274 analogues.
	ExhaustiveWCET int64
	Bound          int64
	// Blocks/States document the model scale (≈70 / 9).
	Blocks, States int
	// HeuristicShare is the GA's share of the generated test data.
	HeuristicShare float64
	Infeasible     int
}

// Overestimate is the bound's relative overestimation.
func (c *CaseStudyResult) Overestimate() float64 {
	if c.ExhaustiveWCET <= 0 {
		return 0
	}
	return float64(c.Bound-c.ExhaustiveWCET) / float64(c.ExhaustiveWCET)
}

// CaseStudy runs the full pipeline on the wiper controller, partitioned so
// that each case block is one program segment (path bound 8: every case
// arm has at most 5 internal paths, the whole function far more). It uses
// one analysis worker per CPU; the result is worker-count independent.
func CaseStudy() (*CaseStudyResult, error) {
	return CaseStudyWorkers(0)
}

// CaseStudyWorkers is CaseStudy with an explicit analysis fan-out
// (0 = one worker per CPU, 1 = serial).
func CaseStudyWorkers(workers int) (*CaseStudyResult, error) {
	d := model.Wiper()
	src := d.Emit("wiper_control")
	rep, err := core.Analyze(src, core.Options{
		FuncName:   "wiper_control",
		Bound:      8,
		Exhaustive: true,
		Workers:    workers,
		TestGen: testgen.Config{
			GA:       ga.Config{Seed: 2005, Pop: 48, MaxGens: 80, Stagnation: 20},
			Optimise: true,
		},
	})
	if err != nil {
		return nil, err
	}
	return &CaseStudyResult{
		Report:         rep,
		Source:         src,
		ExhaustiveWCET: rep.ExhaustiveWCET,
		Bound:          rep.WCET,
		Blocks:         d.NumBlocks(),
		States:         len(d.Chart.States),
		HeuristicShare: rep.TestGen.HeuristicShare,
		Infeasible:     rep.InfeasiblePaths,
	}, nil
}

// RenderCaseStudy prints the Section 4 summary.
func RenderCaseStudy(c *CaseStudyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "wiper_control: %d-state chart, %d-block model\n", c.States, c.Blocks)
	fmt.Fprintf(&b, "exhaustive end-to-end WCET : %6d cycles (paper: 250)\n", c.ExhaustiveWCET)
	fmt.Fprintf(&b, "partition-based WCET bound : %6d cycles (paper: 274)\n", c.Bound)
	fmt.Fprintf(&b, "overestimation             : %6.1f%% (paper: 9.6%%)\n", c.Overestimate()*100)
	fmt.Fprintf(&b, "test data from heuristics  : %6.0f%%\n", c.HeuristicShare*100)
	fmt.Fprintf(&b, "infeasible paths proven    : %6d\n", c.Infeasible)
	return b.String()
}
