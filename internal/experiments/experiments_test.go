package experiments

import (
	"strings"
	"testing"
)

// TestTable1Exact asserts the paper's Table 1 numbers exactly.
func TestTable1Exact(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	want := []Table1Row{
		{1, 22, 11}, {2, 16, 9}, {3, 16, 9}, {4, 16, 9}, {5, 16, 9}, {6, 2, 6}, {7, 2, 6},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], w)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "22") || !strings.Contains(out, "Bound") {
		t.Error("render missing content")
	}
}

// TestSweepShapes asserts the qualitative content of Figures 2 and 3 on a
// mid-size synthetic instance (the full 300-branch instance runs in the
// benchmarks).
func TestSweepShapes(t *testing.T) {
	res, err := Sweep(SweepConfig{Seed: 11, Branches: 120, Points: 300})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Points
	// Figure 2: starts at 2·blocks, monotone non-increasing, ends at 2.
	if pts[0].IP != 2*res.Blocks {
		t.Errorf("ip(1) = %d, want %d", pts[0].IP, 2*res.Blocks)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].IP > pts[i-1].IP {
			t.Fatalf("ip not monotone at %s", pts[i].Bound)
		}
	}
	if pts[len(pts)-1].IP != 2 {
		t.Errorf("final ip = %d, want 2", pts[len(pts)-1].IP)
	}
	// Most of the instrumentation-point reduction happens at small bounds:
	// by the middle of the (log-spaced) sweep, ip is already below 20% of
	// its b=1 value — the paper's "huge increments of b give only minor
	// reductions" right tail.
	mid := pts[len(pts)/2]
	if mid.IP*5 > pts[0].IP {
		t.Errorf("ip at sweep midpoint = %d, want < 20%% of %d", mid.IP, pts[0].IP)
	}
	// Figure 3: m explodes toward ip = 2.
	first, last := pts[0], pts[len(pts)-1]
	if last.M.CmpCount(first.M) <= 0 {
		t.Errorf("end-to-end m (%s) must exceed block-level m (%s)", last.M, first.M)
	}
	if !strings.Contains(RenderFigure2(res), "blocks") {
		t.Error("figure 2 render missing workload header")
	}
	if !strings.Contains(RenderFigure3(res), "ip") {
		t.Error("figure 3 render missing header")
	}
}

// TestTable2Shape asserts the qualitative Table 2 result: every
// configuration agrees the target is reachable; the full pipeline uses the
// fewest steps and by far the fewest state bits; concatenation cuts steps;
// width-reducing passes cut state bits.
func TestTable2Shape(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if !r.Reachable {
			t.Errorf("%s: target unreachable — configurations must agree", r.Name)
		}
	}
	unopt := byName["unoptimized"]
	all := byName["all optimisations used"]
	if all.StateBits >= unopt.StateBits {
		t.Errorf("all-opts state bits %d not below unoptimised %d", all.StateBits, unopt.StateBits)
	}
	if all.Steps >= unopt.Steps {
		t.Errorf("all-opts steps %d not below unoptimised %d", all.Steps, unopt.Steps)
	}
	if c := byName["Statement Concatenation"]; c.Steps >= unopt.Steps {
		t.Errorf("concatenation steps %d not below unoptimised %d", c.Steps, unopt.Steps)
	}
	if r := byName["Variable Range Analysis"]; r.StateBits >= unopt.StateBits {
		t.Errorf("range analysis did not reduce state bits (%d vs %d)", r.StateBits, unopt.StateBits)
	}
	if l := byName["Live-Variable Analysis"]; l.StateBits >= unopt.StateBits {
		t.Errorf("live-variable analysis did not reduce state bits (%d vs %d)", l.StateBits, unopt.StateBits)
	}
	if d := byName["DeadVariable Elimination"]; d.StateBits >= unopt.StateBits {
		t.Errorf("dead-variable elimination did not reduce state bits (%d vs %d)", d.StateBits, unopt.StateBits)
	}
	if c := byName["Reverse CSE"]; c.StateBits >= unopt.StateBits {
		t.Errorf("reverse CSE did not reduce state bits (%d vs %d)", c.StateBits, unopt.StateBits)
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "unoptimized") {
		t.Error("render missing rows")
	}
}

// TestTable2SourceSpec checks the evaluation program matches the paper's
// description: ~105 effective lines, 4 booleans, 13 bytes.
func TestTable2SourceSpec(t *testing.T) {
	lines := 0
	for _, l := range strings.Split(Table2Source, "\n") {
		s := strings.TrimSpace(l)
		if s != "" && !strings.HasPrefix(s, "/*") {
			lines++
		}
	}
	if lines < 95 || lines > 115 {
		t.Errorf("effective lines = %d, want ≈105", lines)
	}
	boolDecls := strings.Count(Table2Source, "int sw_") + strings.Count(Table2Source, "int flag_")
	if boolDecls != 4 {
		t.Errorf("boolean variables = %d, want 4", boolDecls)
	}
	byteDecls := strings.Count(Table2Source, "char ")
	// 13 byte variables: 2 sensors, level, out_cmd, 3 dbg, 3 tmp, 3 unused.
	if byteDecls != 13 {
		t.Errorf("byte variables = %d, want 13", byteDecls)
	}
}

// TestCaseStudyShape asserts the Section 4 result shape: the bound is safe
// (≥ exhaustive), close (≤ 30% over), and the model has the paper's scale.
func TestCaseStudyShape(t *testing.T) {
	res, err := CaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 9 {
		t.Errorf("states = %d, want 9", res.States)
	}
	if res.Blocks < 60 || res.Blocks > 80 {
		t.Errorf("blocks = %d, want ≈70", res.Blocks)
	}
	if res.ExhaustiveWCET <= 0 {
		t.Fatal("exhaustive WCET missing")
	}
	if res.Bound < res.ExhaustiveWCET {
		t.Errorf("bound %d below exhaustive %d: unsafe", res.Bound, res.ExhaustiveWCET)
	}
	over := res.Overestimate()
	if over > 0.30 {
		t.Errorf("overestimation %.1f%% too loose (paper: 9.6%%)", over*100)
	}
	if res.ExhaustiveWCET < 100 || res.ExhaustiveWCET > 1000 {
		t.Errorf("exhaustive WCET = %d cycles, want the paper's hundreds-of-cycles scale", res.ExhaustiveWCET)
	}
	out := RenderCaseStudy(res)
	if !strings.Contains(out, "wiper_control") {
		t.Error("render missing header")
	}
	t.Logf("\n%s", out)
}
