package experiments

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"

	"wcet/internal/core"
	"wcet/internal/fail"
	"wcet/internal/faults"
	"wcet/internal/journal"
)

// Durability acceptance on the wiper case study: an analysis SIGKILLed at
// several distinct points — modelled in-process by cancelling the run after
// N durable journal appends, which leaves exactly the state a kill leaves —
// and resumed from its journal must converge to a report byte-identical to
// an uninterrupted run, at any worker count, and even while faults are
// being injected.

func canonicalBytes(t *testing.T, rep *core.Report) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := rep.WriteCanonical(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// runJournaled performs one analysis attempt against the journal at path.
// killAt > 0 cancels the run once that many records are durable; rules arm
// a fresh injector for the attempt.
func runJournaled(t *testing.T, workers int, path string, killAt int, rules ...faults.Rule) (*core.Report, error) {
	t.Helper()
	file, fn, g := wiperGraph(t)
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if killAt > 0 {
		j.SetAppendHook(func(_ string, total int) {
			if total >= killAt {
				cancel()
			}
		})
	}
	if len(rules) > 0 {
		ctx = faults.With(ctx, faults.New(rules...))
	}
	return core.AnalyzeGraphCtx(ctx, file, fn, g, core.Options{
		Bound:      8,
		Exhaustive: true,
		Workers:    workers,
		TestGen:    wiperTestGenConfig(workers),
		Journal:    j,
	})
}

func TestWiperKillResumeByteIdenticalReport(t *testing.T) {
	file, fn, g := wiperGraph(t)
	clean, err := core.AnalyzeGraphCtx(context.Background(), file, fn, g, core.Options{
		Bound: 8, Exhaustive: true, TestGen: wiperTestGenConfig(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalBytes(t, clean)

	for _, workers := range []int{1, 8} {
		jpath := filepath.Join(t.TempDir(), "run.journal")
		// Three distinct interruption points, early to late in the run.
		for _, killAt := range []int{2, 7, 19} {
			_, err := runJournaled(t, workers, jpath, killAt)
			if err == nil {
				t.Fatalf("workers=%d killAt=%d: run finished before the kill point", workers, killAt)
			}
			if !errors.Is(err, fail.ErrCancelled) {
				t.Fatalf("workers=%d killAt=%d: got %v, want ErrCancelled", workers, killAt, err)
			}
		}
		rep, err := runJournaled(t, workers, jpath, 0)
		if err != nil {
			t.Fatalf("workers=%d: resumed run failed: %v", workers, err)
		}
		if rep.ResumedUnits == 0 {
			t.Errorf("workers=%d: final run replayed nothing after three kills", workers)
		}
		if got := canonicalBytes(t, rep); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: resumed report differs from clean run:\n--- clean\n%s\n--- resumed\n%s",
				workers, want, got)
		}
	}
}

// TestWiperKillResumeAcrossWorkerCounts resumes with a different worker
// count than the one the journal was written under — the fingerprint
// excludes Workers by design, so the journal must carry over.
func TestWiperKillResumeAcrossWorkerCounts(t *testing.T) {
	file, fn, g := wiperGraph(t)
	clean, err := core.AnalyzeGraphCtx(context.Background(), file, fn, g, core.Options{
		Bound: 8, Exhaustive: true, TestGen: wiperTestGenConfig(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(t.TempDir(), "run.journal")
	if _, err := runJournaled(t, 8, jpath, 11); !errors.Is(err, fail.ErrCancelled) {
		t.Fatalf("kill at 11 appends under workers=8: %v", err)
	}
	rep, err := runJournaled(t, 1, jpath, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResumedUnits == 0 {
		t.Error("resume under a different worker count replayed nothing — fingerprint mismatch?")
	}
	if got, want := canonicalBytes(t, rep), canonicalBytes(t, clean); !bytes.Equal(got, want) {
		t.Errorf("cross-worker resume diverged:\n--- clean\n%s\n--- resumed\n%s", want, got)
	}
}

// TestWiperJournalOptionsMismatchRerunsClean: a journal written under a
// different configuration must be discarded on Bind — never silently
// replayed into an analysis it doesn't describe. The second run re-derives
// everything (ResumedUnits == 0) and matches its own clean reference.
func TestWiperJournalOptionsMismatchRerunsClean(t *testing.T) {
	file, fn, g := wiperGraph(t)
	jpath := filepath.Join(t.TempDir(), "run.journal")
	runWith := func(bound int64) *core.Report {
		j, err := journal.Open(jpath)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		rep, err := core.AnalyzeGraphCtx(context.Background(), file, fn, g, core.Options{
			Bound: bound, Exhaustive: true, TestGen: wiperTestGenConfig(1), Journal: j,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	runWith(8)
	second := runWith(6)
	if second.ResumedUnits != 0 {
		t.Errorf("journal written under Bound=8 replayed %d units into a Bound=6 run",
			second.ResumedUnits)
	}
	clean, err := core.AnalyzeGraphCtx(context.Background(), file, fn, g, core.Options{
		Bound: 6, Exhaustive: true, TestGen: wiperTestGenConfig(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalBytes(t, second), canonicalBytes(t, clean); !bytes.Equal(got, want) {
		t.Errorf("re-run after fingerprint mismatch diverged:\n--- clean\n%s\n--- re-run\n%s", want, got)
	}
}

// TestWiperKillResumeUnderInjectedFaults interleaves kills with injected
// faults: a transient search fault healed by retry and a persistent budget
// fault that degrades one residue path. The resumed report must equal a
// clean (uninterrupted) run under the same fault rules, byte for byte —
// attempt histories and degradation ledger included.
func TestWiperKillResumeUnderInjectedFaults(t *testing.T) {
	rules := func() []faults.Rule {
		return []faults.Rule{
			{Site: "testgen.search", Index: 1, MaxFires: 2,
				Err: fail.Infra("testgen", errors.New("injected transient search fault"))},
			{Site: "testgen.mc", Index: -1, Err: fail.Budget("mc", "injected node budget")},
		}
	}
	file, fn, g := wiperGraph(t)
	ctx := faults.With(context.Background(), faults.New(rules()...))
	clean, err := core.AnalyzeGraphCtx(ctx, file, fn, g, core.Options{
		Bound: 8, Exhaustive: true, TestGen: wiperTestGenConfig(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Soundness != core.BoundDegradedSafe {
		t.Fatalf("soundness = %v, want safe-but-degraded (the budget fault must bite)", clean.Soundness)
	}
	want := canonicalBytes(t, clean)

	for _, workers := range []int{1, 8} {
		jpath := filepath.Join(t.TempDir(), "run.journal")
		for _, killAt := range []int{3, 9, 21} {
			// Fresh injector per life: re-executed units see the same fault
			// schedule the clean run saw.
			if _, err := runJournaled(t, workers, jpath, killAt, rules()...); !errors.Is(err, fail.ErrCancelled) {
				t.Fatalf("workers=%d killAt=%d: got %v, want ErrCancelled", workers, killAt, err)
			}
		}
		rep, err := runJournaled(t, workers, jpath, 0, rules()...)
		if err != nil {
			t.Fatalf("workers=%d: resumed faulted run failed: %v", workers, err)
		}
		if got := canonicalBytes(t, rep); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: faulted resume diverged:\n--- clean\n%s\n--- resumed\n%s", workers, want, got)
		}
	}
}
