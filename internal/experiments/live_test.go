package experiments

import (
	"bytes"
	"context"
	"net/http"
	"reflect"
	"testing"

	"wcet/internal/core"
	"wcet/internal/obs"
	"wcet/internal/obs/serve"
)

// The live-telemetry surface rides the same determinism guarantee as the
// rest of the observability layer: subscribers — even pathological ones
// that never drain, and SSE consumers that never read — shed events into
// the drop-oldest rings instead of perturbing the pipeline, and every
// canonical export stays byte-identical to an unwatched run.

// TestBackpressureStalledSubscriberDropsEventsNotBytes runs the wiper
// pipeline with a tiny never-drained bus subscription attached. The
// subscription must overflow (counted in obs.events_dropped), while the
// canonical metrics snapshot, the canonical trace, and the report stay
// byte-identical to the unwatched reference.
func TestBackpressureStalledSubscriberDropsEventsNotBytes(t *testing.T) {
	file, fn, g := buildWiperGraph(t)
	ctx := context.Background()
	snapRef, linesRef, repRef, _ := observedRun(t, ctx, file, fn, g, 4)

	o := obs.New(obs.Config{})
	stalled := o.Subscribe(2) // two-event ring, never drained
	defer stalled.Close()
	rep, err := core.AnalyzeGraphCtx(ctx, file, fn, g, core.Options{
		Bound:      8,
		Exhaustive: true,
		Workers:    4,
		Obs:        o,
		TestGen:    wiperTestGenConfig(4),
	})
	if err != nil {
		t.Fatal(err)
	}

	if got := stalled.Dropped(); got == 0 {
		t.Error("stalled subscription dropped nothing — the wiper run publishes far more than 2 events")
	}
	if got := o.Metrics().Value("obs.events_dropped"); got == 0 {
		t.Error("obs.events_dropped = 0, want the stalled subscription's evictions")
	}

	var snap bytes.Buffer
	if err := o.Metrics().WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap.Bytes(), snapRef) {
		t.Errorf("canonical metrics snapshot perturbed by a stalled subscriber:\n--- reference\n%s\n--- stalled\n%s",
			snapRef, snap.Bytes())
	}
	if lines := o.Trace().CanonicalLines(); !reflect.DeepEqual(lines, linesRef) {
		t.Errorf("canonical trace perturbed by a stalled subscriber (%d vs %d lines)",
			len(linesRef), len(lines))
	}
	if got, want := canonicalBytes(t, rep), canonicalBytes(t, repRef); !bytes.Equal(got, want) {
		t.Errorf("report perturbed by a stalled subscriber:\n--- reference\n%s\n--- stalled\n%s", want, got)
	}
}

// TestLiveServerDoesNotPerturbCanonicalReport attaches the full HTTP
// status surface — including an SSE subscriber that connects and then
// never reads — to a wiper run and checks the canonical exports against
// the unwatched reference.
func TestLiveServerDoesNotPerturbCanonicalReport(t *testing.T) {
	file, fn, g := buildWiperGraph(t)
	ctx := context.Background()
	snapRef, linesRef, repRef, _ := observedRun(t, ctx, file, fn, g, 4)

	o := obs.New(obs.Config{})
	srv, err := serve.Start("127.0.0.1:0", serve.Config{Observer: o, EventBuffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// An SSE consumer that subscribes and never reads a byte of the body:
	// its ring (2 events) overflows immediately; the handler keeps writing
	// into the kernel socket buffer until that backs up too.
	resp, err := http.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	rep, err := core.AnalyzeGraphCtx(ctx, file, fn, g, core.Options{
		Bound:      8,
		Exhaustive: true,
		Workers:    4,
		Obs:        o,
		TestGen:    wiperTestGenConfig(4),
	})
	if err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	if err := o.Metrics().WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap.Bytes(), snapRef) {
		t.Errorf("canonical metrics snapshot perturbed by the live server")
	}
	if lines := o.Trace().CanonicalLines(); !reflect.DeepEqual(lines, linesRef) {
		t.Errorf("canonical trace perturbed by the live server (%d vs %d lines)",
			len(linesRef), len(lines))
	}
	if got, want := canonicalBytes(t, rep), canonicalBytes(t, repRef); !bytes.Equal(got, want) {
		t.Errorf("report perturbed by the live server:\n--- reference\n%s\n--- with server\n%s", want, got)
	}
}
