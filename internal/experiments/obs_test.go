package experiments

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/core"
	"wcet/internal/fail"
	"wcet/internal/faults"
	"wcet/internal/model"
	"wcet/internal/obs"
)

// The observability layer rides the same determinism guarantee as the
// pipeline itself: the canonical metrics snapshot and the canonical trace
// stream must be byte-identical for Workers=1 and Workers=8 — on a clean
// run and on a run degraded by injected faults.

func buildWiperGraph(t *testing.T) (*ast.File, *ast.FuncDecl, *cfg.Graph) {
	t.Helper()
	src := model.Wiper().Emit("wiper_control")
	file, err := parser.ParseFile("wiper.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sem.Check(file); err != nil {
		t.Fatal(err)
	}
	fn := file.Func("wiper_control")
	g, err := cfg.Build(fn)
	if err != nil {
		t.Fatal(err)
	}
	return file, fn, g
}

// observedRun runs the full wiper pipeline under a fresh observer and
// returns the canonical exports plus the report.
func observedRun(t *testing.T, ctx context.Context, file *ast.File, fn *ast.FuncDecl,
	g *cfg.Graph, workers int) ([]byte, []string, *core.Report, *obs.Observer) {

	t.Helper()
	o := obs.New(obs.Config{})
	rep, err := core.AnalyzeGraphCtx(ctx, file, fn, g, core.Options{
		Bound:      8,
		Exhaustive: true,
		Workers:    workers,
		Obs:        o,
		TestGen:    wiperTestGenConfig(workers),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Metrics().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), o.Trace().CanonicalLines(), rep, o
}

func TestObservabilityCanonicalAcrossWorkers(t *testing.T) {
	file, fn, g := buildWiperGraph(t)
	ctx := context.Background()
	snap1, lines1, rep, o := observedRun(t, ctx, file, fn, g, 1)
	snap8, lines8, _, _ := observedRun(t, ctx, file, fn, g, 8)

	if !bytes.Equal(snap1, snap8) {
		t.Errorf("canonical metrics snapshot differs between Workers=1 and Workers=8:\n--- serial:\n%s\n--- parallel:\n%s",
			snap1, snap8)
	}
	if !reflect.DeepEqual(lines1, lines8) {
		t.Errorf("canonical trace differs between Workers=1 and Workers=8 (%d vs %d lines)",
			len(lines1), len(lines8))
	}

	// The snapshot must actually cover the pipeline: stage spans in the
	// trace, model-checker effort in the registry. (No frontend span here —
	// AnalyzeGraphCtx starts from a built graph.)
	joined := strings.Join(lines1, "\n")
	for _, want := range []string{"10/partition", "30/testgen", "50/measure", "70/schema", "30/testgen/mc/"} {
		if !strings.Contains(joined, want) {
			t.Errorf("canonical trace missing %q", want)
		}
	}

	// The registry and the report are views of the same accumulation — they
	// can never disagree.
	reg := o.Metrics()
	if got, want := reg.Value("testgen.ga.evaluations"), int64(rep.TestGen.TotalGAEvals); got != want {
		t.Errorf("registry testgen.ga.evaluations = %d, report says %d", got, want)
	}
	if got, want := reg.Value("testgen.mc.steps"), int64(rep.TestGen.TotalMCSteps); got != want {
		t.Errorf("registry testgen.mc.steps = %d, report says %d", got, want)
	}
	if got, want := reg.Value("testgen.mc.peak_nodes"), int64(rep.TestGen.PeakMCNodes); got != want {
		t.Errorf("registry testgen.mc.peak_nodes = %d, report says %d", got, want)
	}
	if got, want := reg.Value("schema.wcet_cycles"), rep.WCET; got != want {
		t.Errorf("registry schema.wcet_cycles = %d, report says %d", got, want)
	}
	if got, want := reg.Value("core.infeasible_paths"), int64(rep.InfeasiblePaths); got != want {
		t.Errorf("registry core.infeasible_paths = %d, report says %d", got, want)
	}
}

// TestObservabilityCanonicalUnderInjectedFaults degrades every residue
// model-checker call with a deterministic budget fault: the canonical
// exports must still be byte-identical across worker counts, and every
// degraded path must surface as a ledger instant in the trace.
func TestObservabilityCanonicalUnderInjectedFaults(t *testing.T) {
	file, fn, g := buildWiperGraph(t)
	inject := func() context.Context {
		return faults.With(context.Background(), faults.New(faults.Rule{
			Site:  "testgen.mc",
			Index: -1,
			Err:   fail.Budget("mc", "injected step budget"),
		}))
	}
	snap1, lines1, rep, o := observedRun(t, inject(), file, fn, g, 1)
	snap8, lines8, _, _ := observedRun(t, inject(), file, fn, g, 8)

	if rep.Soundness == core.BoundExact {
		t.Fatal("injected faults did not degrade the run")
	}
	if len(rep.Degradations) == 0 {
		t.Fatal("no degradation ledger entries")
	}
	if !bytes.Equal(snap1, snap8) {
		t.Errorf("degraded canonical snapshot differs between Workers=1 and Workers=8:\n--- serial:\n%s\n--- parallel:\n%s",
			snap1, snap8)
	}
	if !reflect.DeepEqual(lines1, lines8) {
		t.Errorf("degraded canonical trace differs between Workers=1 and Workers=8 (%d vs %d lines)",
			len(lines1), len(lines8))
	}

	ledger := 0
	for _, l := range lines1 {
		if strings.Contains(l, "65/ledger/") {
			ledger++
			if !strings.Contains(l, "injected step budget") {
				t.Errorf("ledger event missing its cause: %s", l)
			}
		}
	}
	if ledger != len(rep.Degradations) {
		t.Errorf("trace has %d ledger events, report has %d degradations", ledger, len(rep.Degradations))
	}
	if got, want := o.Metrics().Value("core.degraded_paths"), int64(len(rep.Degradations)); got != want {
		t.Errorf("registry core.degraded_paths = %d, report has %d", got, want)
	}
}
