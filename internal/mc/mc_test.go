package mc

import (
	"errors"
	"testing"

	"wcet/internal/c2m"
	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cc/token"
	"wcet/internal/cfg"
	"wcet/internal/fail"
	"wcet/internal/interp"
	"wcet/internal/paths"
	"wcet/internal/tsys"
)

// hand-built model: x free 4-bit unsigned; L0 --(x==5)--> L1(trap);
// L0 --(x!=5)--> L2 --(x'=x+1)--> L0.
func counterModel() *tsys.Model {
	m := &tsys.Model{Name: "counter"}
	x := m.NewVar("x", 4, false)
	x.Input = true
	l0 := m.NewLoc()
	l1 := m.NewLoc()
	l2 := m.NewLoc()
	m.Init = l0
	m.Trap = l1
	ref := &tsys.Ref{Var: x.ID}
	five := &tsys.Const{Val: 5}
	m.AddEdge(&tsys.Edge{From: l0, To: l1, Guard: &tsys.Bin{Op: token.EQ, X: ref, Y: five}})
	m.AddEdge(&tsys.Edge{From: l0, To: l2, Guard: &tsys.Bin{Op: token.NE, X: ref, Y: five}})
	m.AddEdge(&tsys.Edge{From: l2, To: l0, Assigns: []tsys.Assign{{Var: x.ID,
		RHS: &tsys.CastE{Bits: 4, Signed: false, X: &tsys.Bin{Op: token.PLUS, X: ref, Y: &tsys.Const{Val: 1}}}}}})
	return m
}

func TestSymbolicReachesTrap(t *testing.T) {
	res, err := CheckSymbolic(counterModel(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Fatal("trap must be reachable")
	}
	if len(res.Witness) != 1 {
		t.Fatalf("witness = %v, want one input", res.Witness)
	}
}

func TestExplicitMatchesSymbolic(t *testing.T) {
	sym, err := CheckSymbolic(counterModel(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := CheckExplicit(counterModel(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sym.Reachable != exp.Reachable {
		t.Errorf("engines disagree: symbolic=%v explicit=%v", sym.Reachable, exp.Reachable)
	}
}

func TestUnreachableTrap(t *testing.T) {
	m := &tsys.Model{Name: "stuck"}
	x := m.NewVar("x", 3, false)
	x.Input = true
	l0, l1 := m.NewLoc(), m.NewLoc()
	m.Init = l0
	m.Trap = l1
	// Guard can never hold: x == 9 with only 3 bits.
	m.AddEdge(&tsys.Edge{From: l0, To: l1,
		Guard: &tsys.Bin{Op: token.EQ, X: &tsys.Ref{Var: x.ID}, Y: &tsys.Const{Val: 9}}})
	sym, err := CheckSymbolic(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sym.Reachable {
		t.Error("symbolic: unreachable trap reported reachable")
	}
	exp, err := CheckExplicit(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Reachable {
		t.Error("explicit: unreachable trap reported reachable")
	}
}

// ---------------------------------------------------------------------------
// End-to-end: C source → path model → witness → replay

type fixture struct {
	file *ast.File
	fn   *ast.FuncDecl
	g    *cfg.Graph
	m    *interp.Machine
}

func setup(t *testing.T, src, name string) *fixture {
	t.Helper()
	f, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatalf("sem: %v", err)
	}
	fn := f.Func(name)
	g, err := cfg.Build(fn)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return &fixture{file: f, fn: fn, g: g, m: interp.New(f, interp.Options{})}
}

func (fx *fixture) global(name string) *ast.VarDecl {
	for _, g := range fx.file.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// genAndReplay generates test data for every end-to-end path via the
// symbolic checker and replays each witness on the interpreter, expecting
// exact coverage. Returns the number of feasible and infeasible paths.
func genAndReplay(t *testing.T, fx *fixture, opt c2m.Options) (feasible, infeasible int) {
	t.Helper()
	allPaths, err := paths.Enumerate(cfg.WholeFunction(fx.g), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range allPaths {
		low, err := c2m.LowerPath(fx.g, opt, p)
		if err != nil {
			t.Fatalf("lower path %s: %v", p.Key(), err)
		}
		res, err := CheckSymbolic(low.Model, Options{})
		if err != nil {
			t.Fatalf("check path %s: %v", p.Key(), err)
		}
		if !res.Reachable {
			infeasible++
			continue
		}
		feasible++
		// Replay on the interpreter.
		env := interp.Env{}
		for id, val := range res.Witness {
			env[low.DeclOf[id]] = val
		}
		tr, err := fx.m.Run(fx.g, env)
		if err != nil {
			t.Fatalf("replay %s: %v", p.Key(), err)
		}
		if !paths.Covers(fx.g, tr, p) {
			t.Errorf("witness %v does not drive execution down path %s", res.Witness, p.Key())
		}
	}
	return feasible, infeasible
}

func TestPathTestGenerationSimple(t *testing.T) {
	fx := setup(t, `
/*@ input */ int a;
/*@ input */ int b;
int r;
int f(void) {
    r = 0;
    if (a > 3) { r = 1; }
    if (b == a + 2) { r = r + 2; }
    return r;
}`, "f")
	// Non-input r must be pinned for deterministic replay.
	opt := c2m.Options{NaiveWidths: false}
	feas, infeas := genAndReplay(t, fx, opt)
	if feas != 4 || infeas != 0 {
		t.Errorf("feasible=%d infeasible=%d, want 4/0", feas, infeas)
	}
}

func TestInfeasiblePathDetected(t *testing.T) {
	fx := setup(t, `
/*@ input */ int a;
int r;
int f(void) {
    r = 0;
    if (a > 5) {
        if (a < 3) { r = 1; }
    }
    return r;
}`, "f")
	feas, infeas := genAndReplay(t, fx, c2m.Options{})
	// Paths: a>5&a<3 (infeasible), a>5&!(a<3), !(a>5): 2 feasible, 1 infeasible.
	if feas != 2 || infeas != 1 {
		t.Errorf("feasible=%d infeasible=%d, want 2/1", feas, infeas)
	}
}

func TestSwitchPathGeneration(t *testing.T) {
	fx := setup(t, `
/*@ input */ /*@ range 0 4 */ int sel;
int r;
int f(void) {
    switch (sel) {
    case 0: r = 1; break;
    case 1:
    case 2: r = 2; break;
    default: r = 9; break;
    }
    return r;
}`, "f")
	feas, infeas := genAndReplay(t, fx, c2m.Options{})
	if feas != 3 || infeas != 0 {
		t.Errorf("feasible=%d infeasible=%d, want 3/0", feas, infeas)
	}
}

func TestEqualityNeedle(t *testing.T) {
	// The model checker's guarantee: it finds the needle no matter how
	// sparse (a == 12345 over 16-bit input).
	fx := setup(t, `
/*@ input */ int a;
int r;
int f(void) {
    r = 0;
    if (a == 12345) { r = 1; }
    return r;
}`, "f")
	allPaths, _ := paths.Enumerate(cfg.WholeFunction(fx.g), 0)
	var needle paths.Path
	found := false
	for _, p := range allPaths {
		for _, id := range p.Blocks {
			for _, item := range fx.g.Node(id).Items {
				if ast.PrintStmt(item) == "r = 1;" {
					needle, found = p, true
				}
			}
		}
	}
	if !found {
		t.Fatal("needle path missing")
	}
	low, err := c2m.LowerPath(fx.g, c2m.Options{}, needle)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckSymbolic(low.Model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Fatal("needle not found by model checker")
	}
	aID := low.VarOf[fx.global("a")]
	if res.Witness[aID] != 12345 {
		t.Errorf("witness a = %d, want 12345", res.Witness[aID])
	}
}

func TestArithmeticInGuards(t *testing.T) {
	fx := setup(t, `
/*@ input */ /*@ range -20 20 */ int a;
/*@ input */ /*@ range -20 20 */ int b;
int r;
int f(void) {
    r = 0;
    if ((a * 3 - b) / 2 == 7) { r = 1; }
    return r;
}`, "f")
	feas, infeas := genAndReplay(t, fx, c2m.Options{})
	if feas != 2 || infeas != 0 {
		t.Errorf("feasible=%d infeasible=%d, want 2/0", feas, infeas)
	}
}

func TestStatsPopulated(t *testing.T) {
	res, err := CheckSymbolic(counterModel(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.PeakNodes <= 0 || s.MemoryBytes <= 0 || s.StateBits <= 0 {
		t.Errorf("stats not populated: %+v", s)
	}
	if s.Steps == 0 {
		t.Error("steps should be > 0 for this model")
	}
}

func TestMaxStepsAborts(t *testing.T) {
	res, err := CheckSymbolic(counterModel(), Options{MaxSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	// x=5 initial state hits at step 0… the counter model traps at
	// step 0 for x=5, so Reachable even with MaxSteps 1.
	_ = res
	// A model needing many steps:
	m := &tsys.Model{Name: "far"}
	x := m.NewVar("x", 8, false)
	x.Init = tsys.InitConst
	x.InitVal = 0
	l0, l1 := m.NewLoc(), m.NewLoc()
	m.Init, m.Trap = l0, l1
	ref := &tsys.Ref{Var: x.ID}
	m.AddEdge(&tsys.Edge{From: l0, To: l0, Assigns: []tsys.Assign{{Var: x.ID,
		RHS: &tsys.CastE{Bits: 8, Signed: false, X: &tsys.Bin{Op: token.PLUS, X: ref, Y: &tsys.Const{Val: 1}}}}},
		Guard: &tsys.Bin{Op: token.LT, X: ref, Y: &tsys.Const{Val: 200}}})
	m.AddEdge(&tsys.Edge{From: l0, To: l1,
		Guard: &tsys.Bin{Op: token.EQ, X: ref, Y: &tsys.Const{Val: 200}}})
	// Exhausting the step budget with states still unexplored must be a
	// structured budget error, never a silent "unreachable" — that verdict
	// would be classified infeasible downstream, which is unsound.
	res2, err := CheckSymbolic(m, Options{MaxSteps: 5})
	if !errors.Is(err, fail.ErrBudgetExceeded) {
		t.Fatalf("MaxSteps exhaustion: got (%v, %v), want fail.ErrBudgetExceeded", res2, err)
	}
	res3, err := CheckSymbolic(m, Options{MaxSteps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !res3.Reachable {
		t.Error("should reach within 500 steps")
	}
}

func TestDifferentialEnginesOnLoweredModel(t *testing.T) {
	fx := setup(t, `
/*@ input */ /*@ range 0 7 */ int a;
/*@ input */ /*@ range 0 7 */ int b;
int r;
int f(void) {
    r = 0;
    if (a + b == 9) { r = 1; }
    if (a > b) { r = r + 2; }
    return r;
}`, "f")
	allPaths, _ := paths.Enumerate(cfg.WholeFunction(fx.g), 0)
	for _, p := range allPaths {
		low, err := c2m.LowerPath(fx.g, c2m.Options{}, p)
		if err != nil {
			t.Fatal(err)
		}
		// Pin non-input variables so the explicit engine's initial space
		// stays enumerable (the varinit optimisation does this for real
		// workloads).
		for _, v := range low.Model.Vars {
			if !v.Input {
				v.Init = tsys.InitConst
				v.InitVal = 0
			}
		}
		sym, err := CheckSymbolic(low.Model, Options{})
		if err != nil {
			t.Fatal(err)
		}
		exp, err := CheckExplicit(low.Model, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sym.Reachable != exp.Reachable {
			t.Errorf("path %s: symbolic=%v explicit=%v", p.Key(), sym.Reachable, exp.Reachable)
		}
	}
}
