package mc

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"wcet/internal/bdd"
	"wcet/internal/fail"
	"wcet/internal/faults"
)

// The model checker is the pipeline's most expensive stage, so it carries
// the strictest budget contract: every cap — steps, states, BDD nodes,
// wall clock — and every cancellation returns a structured error, never a
// fabricated "unreachable" verdict.

func TestSymbolicCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := CheckSymbolicCtx(ctx, counterModel(), Options{})
	if !errors.Is(err, fail.ErrCancelled) {
		t.Fatalf("got (%v, %v), want ErrCancelled", res, err)
	}
}

func TestExplicitCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := CheckExplicitCtx(ctx, counterModel(), Options{})
	if !errors.Is(err, fail.ErrCancelled) {
		t.Fatalf("got (%v, %v), want ErrCancelled", res, err)
	}
}

func TestSymbolicNodeBudget(t *testing.T) {
	// A 16-node table cannot hold the counter model's transition relation;
	// the kernel's typed panic must come back as a budget error carrying
	// the limit details.
	res, err := CheckSymbolicCtx(context.Background(), counterModel(), Options{MaxNodes: 16})
	if !errors.Is(err, fail.ErrBudgetExceeded) {
		t.Fatalf("got (%v, %v), want ErrBudgetExceeded", res, err)
	}
	var le *bdd.LimitError
	if !errors.As(err, &le) || le.Limit != 16 {
		t.Errorf("budget error must carry the kernel's LimitError, got %v", err)
	}
	if !strings.Contains(err.Error(), "BDD node budget") {
		t.Errorf("error message %q does not name the exhausted budget", err)
	}
}

func TestSymbolicTimeout(t *testing.T) {
	// An already-expired per-call wall clock must surface as a spent
	// budget before any step is taken.
	res, err := CheckSymbolicCtx(context.Background(), counterModel(), Options{Timeout: time.Nanosecond})
	if !errors.Is(err, fail.ErrBudgetExceeded) {
		t.Fatalf("got (%v, %v), want ErrBudgetExceeded", res, err)
	}
}

func TestSymbolicFaultSites(t *testing.T) {
	ctx := faults.With(context.Background(),
		faults.New(faults.Rule{Site: "mc.check", Index: 0}))
	if _, err := CheckSymbolicCtx(ctx, counterModel(), Options{}); !errors.Is(err, fail.ErrInfrastructure) {
		t.Errorf("mc.check fault: got %v, want attributed infrastructure failure", err)
	}
	ctx = faults.With(context.Background(),
		faults.New(faults.Rule{Site: "mc.step", Index: 0, Err: fail.Budget("", "injected")}))
	_, err := CheckSymbolicCtx(ctx, counterModel(), Options{})
	if !errors.Is(err, fail.ErrBudgetExceeded) {
		t.Errorf("mc.step fault: got %v, want the injected budget error", err)
	}
	var fe *fail.Error
	if !errors.As(err, &fe) || fe.Stage != "mc" {
		t.Errorf("mc.step fault not attributed to the mc stage: %v", err)
	}
}

func TestExplicitStateBudgetIsStructured(t *testing.T) {
	// A 3-state cap cannot hold the counter model's reachable set; the old
	// code returned a bare fmt error, now it must join the taxonomy.
	res, err := CheckExplicitCtx(context.Background(), counterModel(), Options{MaxStates: 3})
	if !errors.Is(err, fail.ErrBudgetExceeded) {
		t.Fatalf("got (%v, %v), want ErrBudgetExceeded", res, err)
	}
}
