package mc

import (
	"context"
	"fmt"

	"wcet/internal/bdd"
	"wcet/internal/bv"
	"wcet/internal/cc/token"
	"wcet/internal/tsys"
)

// maxComputeBits caps intermediate bit-blasted widths. Operand widths grow
// by one per addition and double per multiplication; the cap keeps wide
// chains bounded while staying exact for the 16-bit target's expressions.
const maxComputeBits = 34

// encoding lays out the model's state bits in the BDD manager: state bit s
// is BDD variable 2s (current) and 2s+1 (next) — the interleaved order that
// keeps transition relations small.
type encoding struct {
	m       *bdd.Manager
	model   *tsys.Model
	locBase int // state-bit base of the location register
	locBits int
	// varBit[id][i] is the state-bit index of bit i of variable id. Bits of
	// different variables are interleaved (bit 0 of every variable first,
	// then bit 1, …) so that cross-variable relations like x == y + 1 stay
	// linear-sized in the BDD order.
	varBit [][]int
	nbits  int // total state bits

	curCube  int // cube of all current-state BDD vars
	nextCube int // cube of all next-state BDD vars
	n2c      int // permutation next→current
	c2n      int // permutation current→next
}

// newEncoding lays out the model and obtains its manager through acquire,
// so the caller decides between a fresh bdd.New and a pooled lease.
func newEncoding(model *tsys.Model, acquire func(nvars int) *bdd.Manager) *encoding {
	e := &encoding{model: model}
	e.locBits = model.LocBits()
	e.locBase = 0
	n := e.locBits
	e.varBit = make([][]int, len(model.Vars))
	maxBits := 0
	for i, v := range model.Vars {
		e.varBit[i] = make([]int, v.Bits)
		if v.Bits > maxBits {
			maxBits = v.Bits
		}
	}
	for bit := 0; bit < maxBits; bit++ {
		for i, v := range model.Vars {
			if bit < v.Bits {
				e.varBit[i][bit] = n
				n++
			}
		}
	}
	e.nbits = n
	e.m = acquire(2 * n)

	cur := make([]int, n)
	next := make([]int, n)
	n2c := map[int]int{}
	c2n := map[int]int{}
	for s := 0; s < n; s++ {
		cur[s] = 2 * s
		next[s] = 2*s + 1
		n2c[2*s+1] = 2 * s
		c2n[2*s] = 2*s + 1
	}
	e.curCube = e.m.Cube(cur)
	e.nextCube = e.m.Cube(next)
	e.n2c = e.m.Permutation(n2c)
	e.c2n = e.m.Permutation(c2n)
	return e
}

// curBit / nextBit return the BDD variable of a state bit.
func (e *encoding) curBit(s int) int  { return 2 * s }
func (e *encoding) nextBit(s int) int { return 2*s + 1 }

// varVec returns the symbolic vector of a variable over current-state bits.
func (e *encoding) varVec(id tsys.VarID) bv.Vec {
	v := e.model.Vars[id]
	vars := make([]int, v.Bits)
	for i := 0; i < v.Bits; i++ {
		vars[i] = e.curBit(e.varBit[id][i])
	}
	return bv.FromVars(e.m, vars, v.Signed)
}

// locEquals builds pc == l over current (next=false) or next state bits.
func (e *encoding) locEquals(l tsys.Loc, next bool) bdd.Ref {
	r := bdd.True
	for i := 0; i < e.locBits; i++ {
		bit := e.curBit(e.locBase + i)
		if next {
			bit = e.nextBit(e.locBase + i)
		}
		want := (int(l)>>uint(i))&1 == 1
		r = e.m.And(r, e.m.Lit(bit, want))
	}
	return r
}

// evalSym bit-blasts an expression over the current state.
func (e *encoding) evalSym(x tsys.Expr) (bv.Vec, error) {
	m := e.m
	switch t := x.(type) {
	case *tsys.Const:
		bits := bitsFor(t.Val)
		return bv.Const(m, t.Val, bits, t.Val < 0), nil
	case *tsys.Ref:
		return e.varVec(t.Var), nil
	case *tsys.Un:
		sub, err := e.evalSym(t.X)
		if err != nil {
			return bv.Vec{}, err
		}
		switch t.Op {
		case token.MINUS:
			return bv.Neg(m, bv.Extend(m, bv.Retype(sub, true), cap1(sub.Width()+1))), nil
		case token.PLUS:
			return sub, nil
		case token.TILDE:
			// ~x: the operand promotes to a signed 16-bit int on this
			// target, so complement at (at least) int width and keep the
			// result signed — ~0 must be -1.
			w := sub.Width()
			if w < 16 {
				w = 16
			}
			out := bv.NotBits(m, bv.Extend(m, sub, w))
			out.Signed = true
			return out, nil
		case token.BANG:
			return boolVec(m, m.Not(bv.NonZero(m, sub))), nil
		}
		return bv.Vec{}, fmt.Errorf("mc: unary %s unsupported", t.Op)
	case *tsys.Bin:
		return e.evalBin(t)
	case *tsys.CondE:
		c, err := e.evalSym(t.C)
		if err != nil {
			return bv.Vec{}, err
		}
		tv, err := e.evalSym(t.T)
		if err != nil {
			return bv.Vec{}, err
		}
		fv, err := e.evalSym(t.F)
		if err != nil {
			return bv.Vec{}, err
		}
		return bv.Mux(m, bv.NonZero(m, c), tv, fv), nil
	case *tsys.CastE:
		sub, err := e.evalSym(t.X)
		if err != nil {
			return bv.Vec{}, err
		}
		// Truncate to the cast width with the cast signedness.
		out := bv.Extend(m, sub, t.Bits)
		out.Signed = t.Signed
		return out, nil
	}
	return bv.Vec{}, fmt.Errorf("mc: expression %T unsupported", x)
}

func (e *encoding) evalBin(t *tsys.Bin) (bv.Vec, error) {
	m := e.m
	// Logical operators work on truth values.
	switch t.Op {
	case token.LAND, token.LOR:
		a, err := e.evalSym(t.X)
		if err != nil {
			return bv.Vec{}, err
		}
		b, err := e.evalSym(t.Y)
		if err != nil {
			return bv.Vec{}, err
		}
		pa, pb := bv.NonZero(m, a), bv.NonZero(m, b)
		if t.Op == token.LAND {
			return boolVec(m, m.And(pa, pb)), nil
		}
		return boolVec(m, m.Or(pa, pb)), nil
	}
	a, err := e.evalSym(t.X)
	if err != nil {
		return bv.Vec{}, err
	}
	b, err := e.evalSym(t.Y)
	if err != nil {
		return bv.Vec{}, err
	}
	switch t.Op {
	case token.PLUS:
		w := cap1(max2(a.Width(), b.Width()) + 1)
		return bv.Add(m, bv.Extend(m, a, w), bv.Extend(m, b, w)), nil
	case token.MINUS:
		w := cap1(max2(a.Width(), b.Width()) + 1)
		out := bv.Sub(m, bv.Extend(m, a, w), bv.Extend(m, b, w))
		out.Signed = true
		return out, nil
	case token.STAR:
		w := cap1(a.Width() + b.Width())
		return bv.Mul(m, bv.Extend(m, a, w), bv.Extend(m, b, w)), nil
	case token.SLASH, token.PERCENT:
		return e.divMod(t.Op, a, b)
	case token.SHL:
		k, ok := constShift(t.Y)
		if !ok {
			return bv.Vec{}, fmt.Errorf("mc: symbolic shift amounts unsupported")
		}
		w := cap1(a.Width() + k)
		return bv.ShlConst(m, bv.Extend(m, a, w), k), nil
	case token.SHR:
		k, ok := constShift(t.Y)
		if !ok {
			return bv.Vec{}, fmt.Errorf("mc: symbolic shift amounts unsupported")
		}
		return bv.ShrConst(m, a, k), nil
	case token.AMP:
		return bv.Bitwise(m, m.And, a, b), nil
	case token.PIPE:
		return bv.Bitwise(m, m.Or, a, b), nil
	case token.CARET:
		return bv.Bitwise(m, m.Xor, a, b), nil
	case token.EQ:
		return boolVec(m, bv.Eq(m, a, b)), nil
	case token.NE:
		return boolVec(m, m.Not(bv.Eq(m, a, b))), nil
	case token.LT:
		return boolVec(m, bv.Lt(m, a, b)), nil
	case token.GT:
		return boolVec(m, bv.Lt(m, b, a)), nil
	case token.LE:
		return boolVec(m, bv.Le(m, a, b)), nil
	case token.GE:
		return boolVec(m, bv.Le(m, b, a)), nil
	}
	return bv.Vec{}, fmt.Errorf("mc: operator %s unsupported", t.Op)
}

// divMod supports division/modulo by positive constant powers of two with C
// round-toward-zero semantics; anything else is outside the model subset.
func (e *encoding) divMod(op token.Kind, a, b bv.Vec) (bv.Vec, error) {
	m := e.m
	k, val, ok := constPow2(b)
	if !ok {
		return bv.Vec{}, fmt.Errorf("mc: division only by constant powers of two in the model")
	}
	// C rounds toward zero: (a + (a<0 ? 2^k-1 : 0)) >> k.
	w := cap1(a.Width() + 1)
	aw := bv.Extend(m, bv.Retype(a, true), w)
	bias := bv.Mux(m, aw.Bits[w-1], bv.Const(m, val-1, w, true), bv.Const(m, 0, w, true))
	quot := bv.ShrConst(m, bv.Add(m, aw, bias), k)
	quot = bv.Extend(m, quot, w)
	if op == token.SLASH {
		return quot, nil
	}
	// a % b = a - quot*b.
	prod := bv.ShlConst(m, quot, k)
	return bv.Sub(m, aw, prod), nil
}

// constPow2 recognises constant power-of-two vectors.
func constPow2(v bv.Vec) (k int, val int64, ok bool) {
	val = 0
	for i, b := range v.Bits {
		switch b {
		case bdd.True:
			if val != 0 {
				return 0, 0, false
			}
			val = 1 << uint(i)
			k = i
		case bdd.False:
		default:
			return 0, 0, false
		}
	}
	if val == 0 {
		return 0, 0, false
	}
	return k, val, true
}

func constShift(x tsys.Expr) (int, bool) {
	c, ok := x.(*tsys.Const)
	if !ok || c.Val < 0 || c.Val > 32 {
		return 0, false
	}
	return int(c.Val), true
}

func boolVec(m *bdd.Manager, p bdd.Ref) bv.Vec {
	return bv.Vec{Bits: []bdd.Ref{p}}
}

func bitsFor(v int64) int {
	if v < 0 {
		n := 1
		for x := v; x != -1; x >>= 1 {
			n++
		}
		return cap1(n)
	}
	n := 1
	for x := v; x > 0; x >>= 1 {
		n++
	}
	return cap1(n)
}

func cap1(w int) int {
	if w > maxComputeBits {
		return maxComputeBits
	}
	if w < 1 {
		return 1
	}
	return w
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Relation construction and reachability

// edgeRelation builds the BDD of one transition.
func (e *encoding) edgeRelation(ed *tsys.Edge) (bdd.Ref, error) {
	m := e.m
	r := e.locEquals(ed.From, false)
	r = m.And(r, e.locEquals(ed.To, true))
	if ed.Guard != nil {
		gv, err := e.evalSym(ed.Guard)
		if err != nil {
			return bdd.False, err
		}
		r = m.And(r, bv.NonZero(m, gv))
	}
	assigned := map[tsys.VarID]bv.Vec{}
	for _, a := range ed.Assigns {
		rhs, err := e.evalSym(a.RHS)
		if err != nil {
			return bdd.False, err
		}
		assigned[a.Var] = rhs
	}
	for id, v := range e.model.Vars {
		if rhs, ok := assigned[tsys.VarID(id)]; ok {
			// Store truncated to the variable's width.
			stored := bv.Extend(e.m, rhs, v.Bits)
			for i := 0; i < v.Bits; i++ {
				nb := m.Var(e.nextBit(e.varBit[id][i]))
				r = m.And(r, m.Iff(nb, stored.Bits[i]))
				if r == bdd.False {
					return r, nil
				}
			}
		} else {
			for i := 0; i < v.Bits; i++ {
				s := e.varBit[id][i]
				r = m.And(r, m.Iff(m.Var(e.nextBit(s)), m.Var(e.curBit(s))))
			}
		}
	}
	return r, nil
}

// initSet builds the initial-state predicate.
func (e *encoding) initSet() bdd.Ref {
	m := e.m
	r := e.locEquals(e.model.Init, false)
	for id, v := range e.model.Vars {
		switch {
		case v.Init == tsys.InitConst:
			val := tsys.TruncateBits(v.InitVal, v.Bits, v.Signed)
			for i := 0; i < v.Bits; i++ {
				r = m.And(r, m.Lit(e.curBit(e.varBit[id][i]), val&(1<<uint(i)) != 0))
			}
		case v.HasRange:
			// Constrain free values to the declared range.
			vec := e.varVec(tsys.VarID(id))
			loOK := bv.Le(m, bv.Const(m, v.Lo, bitsFor(v.Lo), v.Lo < 0), vec)
			hiOK := bv.Le(m, vec, bv.Const(m, v.Hi, bitsFor(v.Hi), v.Hi < 0))
			r = m.And(r, m.And(loOK, hiOK))
		}
	}
	return r
}

// CheckSymbolic runs BDD reachability toward the model's trap location.
func CheckSymbolic(model *tsys.Model, opt Options) (*Result, error) {
	return CheckSymbolicCtx(context.Background(), model, opt)
}

// CheckSymbolicCtx is CheckSymbolic with cooperative cancellation and
// budget enforcement: a one-shot query. Callers that retry the same model
// should hold a SymbolicQuery instead, which keeps the lowered encoding
// across attempts.
func CheckSymbolicCtx(ctx context.Context, model *tsys.Model, opt Options) (*Result, error) {
	q := NewSymbolicQuery(model, opt)
	defer q.Close()
	return q.CheckCtx(ctx)
}

func pow2f(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 2
	}
	return v
}

// extractWitness walks the onion rings backwards from the trap to an
// initial state and reads off the input variables.
func (e *encoding) extractWitness(m *bdd.Manager, rels []bdd.Ref, rings []bdd.Ref, trap bdd.Ref) (map[tsys.VarID]int64, error) {
	// Find the first ring hitting the trap.
	k := -1
	for i, r := range rings {
		if m.And(r, trap) != bdd.False {
			k = i
			break
		}
	}
	if k < 0 {
		return nil, fmt.Errorf("mc: internal: trap hit but no ring intersects")
	}
	state := e.pickState(m.And(rings[k], trap))
	for i := k - 1; i >= 0; i-- {
		// Predecessors of `state` within ring i.
		nextPred := e.stateAsNext(state)
		pre := bdd.False
		for _, rel := range rels {
			pre = m.Or(pre, m.AndExists(rel, nextPred, e.nextCube))
		}
		cand := m.And(rings[i], pre)
		if cand == bdd.False {
			return nil, fmt.Errorf("mc: internal: broken counterexample chain at ring %d", i)
		}
		state = e.pickState(cand)
	}
	// state is a full assignment of the current-state bits at step 0.
	out := map[tsys.VarID]int64{}
	for id, v := range e.model.Vars {
		// Inputs sliced to zero width (opt.SliceTrap) have no bits to read
		// and no influence on the verdict: any value extends the witness,
		// so the caller fills them from its base environment.
		if !v.Input || v.Bits == 0 {
			continue
		}
		out[tsys.VarID(id)] = e.readVar(state, tsys.VarID(id))
	}
	return out, nil
}

// pickState returns a complete current-state bit assignment satisfying f
// (don't-cares resolved to 0).
func (e *encoding) pickState(f bdd.Ref) []bool {
	assign, ok := e.m.SatOne(f)
	state := make([]bool, e.nbits)
	if !ok {
		return state
	}
	for s := 0; s < e.nbits; s++ {
		if assign[e.curBit(s)] == 1 {
			state[s] = true
		}
	}
	return state
}

// stateAsNext encodes a concrete state over the next-state variables.
func (e *encoding) stateAsNext(state []bool) bdd.Ref {
	r := bdd.True
	for s := 0; s < e.nbits; s++ {
		r = e.m.And(r, e.m.Lit(e.nextBit(s), state[s]))
	}
	return r
}

func (e *encoding) readVar(state []bool, id tsys.VarID) int64 {
	v := e.model.Vars[id]
	var val int64
	for i := 0; i < v.Bits; i++ {
		if state[e.varBit[id][i]] {
			val |= 1 << uint(i)
		}
	}
	if v.Signed && v.Bits < 64 && val&(1<<uint(v.Bits-1)) != 0 {
		val -= 1 << uint(v.Bits)
	}
	return val
}
