package mc

import "testing"

// TestOptionsWithDefaults pins the clamping behaviour: zero means "use the
// default", and negative bounds — which would silently disable the search
// limits — are clamped to the defaults too.
func TestOptionsWithDefaults(t *testing.T) {
	cases := []struct {
		name          string
		in            Options
		wantSteps     int
		wantMaxStates int
	}{
		{"zero-values", Options{}, 10000, 2_000_000},
		{"negative-steps", Options{MaxSteps: -1}, 10000, 2_000_000},
		{"negative-states", Options{MaxStates: -7}, 10000, 2_000_000},
		{"both-negative", Options{MaxSteps: -100, MaxStates: -100}, 10000, 2_000_000},
		{"explicit-kept", Options{MaxSteps: 5, MaxStates: 99}, 5, 99},
		{"mixed", Options{MaxSteps: -3, MaxStates: 17}, 10000, 17},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in.withDefaults()
			if got.MaxSteps != tc.wantSteps {
				t.Errorf("MaxSteps = %d, want %d", got.MaxSteps, tc.wantSteps)
			}
			if got.MaxStates != tc.wantMaxStates {
				t.Errorf("MaxStates = %d, want %d", got.MaxStates, tc.wantMaxStates)
			}
		})
	}
}

// TestNegativeMaxStepsStillBounds is the end-to-end symptom of the bug: a
// negative MaxSteps used to make `Steps < opt.MaxSteps` false-forever
// impossible (the loop never aborts on an infinite frontier) — after
// clamping, a negative bound behaves like the default and terminates.
func TestNegativeMaxStepsStillBounds(t *testing.T) {
	res, err := CheckSymbolic(counterModel(), Options{MaxSteps: -5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Error("trap must still be reachable with a clamped bound")
	}
	if res.Stats.Steps > 10000 {
		t.Errorf("steps %d exceed the clamped default bound", res.Stats.Steps)
	}
}
