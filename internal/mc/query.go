package mc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"wcet/internal/bdd"
	"wcet/internal/fail"
	"wcet/internal/faults"
	"wcet/internal/obs"
	"wcet/internal/opt"
	"wcet/internal/tsys"
)

// managers recycles BDD managers across symbolic queries. A Reset manager
// keeps its backing arrays but is observationally identical to a fresh one
// (only the volatile MemoryBytes can tell them apart), so pooling cuts the
// allocation churn of the hundreds of per-path queries in test generation
// without touching results or deterministic statistics. sync.Pool handles
// the per-worker affinity.
var managers bdd.Pool

// reorderMin is the table size below which dynamic reordering never
// triggers: sifting a small graph costs more than it can save.
var reorderMin = 20_000

// SetReorderMin adjusts the dynamic-reordering trigger's minimum table
// size and returns the previous value. It exists for tests and benchmarks
// that want sifting exercised on small models (or suppressed entirely);
// call it only while no symbolic queries are in flight.
func SetReorderMin(n int) int {
	old := reorderMin
	reorderMin = n
	return old
}

// reorderGrowth is the growth factor over the last post-reorder baseline
// that arms the next reorder round.
const reorderGrowth = 4

// reorderMax is the table size above which sifting no longer triggers: a
// round's cost grows with the live graph while its typical gain does not,
// so past this point a sift can no longer pay for itself within the query.
// Reordering is an early-containment tool — by the time a table is this
// large, the order is not the fixable problem.
const reorderMax = 100_000

// OrderBook carries learned variable orders between sequential queries,
// keyed by the model's structural fingerprint. Identical fingerprints mean
// structurally identical models (tsys.Fingerprint hashes the full model),
// for which the deterministic sifting would rediscover the same order —
// the book just skips the rediscovery. A successful query records its
// final order; a later query for the same model seeds its manager with it.
//
// The book is safe for concurrent use, but sharing one across queries for
// *different* models that run concurrently is pointless (fingerprints
// differ), and callers must never let a book introduce a scheduling
// dependence into canonical statistics — the pipeline therefore only wires
// books across strictly sequential query chains.
type OrderBook struct {
	mu     sync.Mutex
	orders map[uint64][]int32
}

// NewOrderBook returns an empty book.
func NewOrderBook() *OrderBook {
	return &OrderBook{orders: map[uint64][]int32{}}
}

// get returns a copy of the learned order for fp, or nil if the book has
// none (or the recorded order is for a different variable count, which
// would mean a fingerprint collision — seeding is then skipped).
func (b *OrderBook) get(fp uint64, nvars int) []int32 {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	o := b.orders[fp]
	if len(o) != nvars {
		return nil
	}
	return append([]int32(nil), o...)
}

// learn records the order for fp. First write wins: sifting is
// deterministic, so any later value for the same fingerprint is the same
// order rediscovered.
func (b *OrderBook) learn(fp uint64, order []int32) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.orders[fp]; !ok {
		b.orders[fp] = append([]int32(nil), order...)
	}
}

// SymbolicQuery is a reusable reachability query against one model. It
// exists so retry loops stop paying the per-attempt setup: the model
// pointer, options and fingerprint persist across CheckCtx calls, and the
// expensive state — manager lease, bit-blasted transition relations — is
// built lazily on first use, so an attempt that fails before reaching the
// engine (the common transient-fault shape) costs the next attempt
// nothing.
//
// Determinism contract: a CheckCtx that returns an error releases every
// piece of built state, and learned-order updates are committed only on
// success. A retry therefore rebuilds from scratch and reports exactly the
// statistics a first-try success would have reported — crucial because
// canonical reports include per-path node counts, and a wall-clock expiry
// (which the retry policy retries) aborts at a nondeterministic point.
type SymbolicQuery struct {
	model *tsys.Model
	opt   Options
	fp    uint64

	e       *encoding
	rels    []bdd.Ref
	trap    bdd.Ref
	init    bdd.Ref
	health0 bdd.Health

	// sliceBits/sliceEdges record what the per-trap slice removed (zero
	// with NoSlice) — deterministic functions of the model, reported once
	// per successful check.
	sliceBits  int64
	sliceEdges int64

	// reorderBase is the table size the growth trigger measures against:
	// the size right after the build or the last reorder round (whether or
	// not that round found a better order — otherwise a graph sifting
	// cannot shrink would be re-sifted every iteration). reorderDone stops
	// further rounds once sifting has plateaued for this query: a round
	// that gains little proves the order is already as good as sifting
	// gets, and paying for it again every growth step would cost more than
	// the residual gain.
	reorderBase int
	reorderDone bool
	reorders    int
	nodesFreed  int64

	closed bool
}

// NewSymbolicQuery prepares a query for the model. Nothing is built until
// the first CheckCtx call; Close releases whatever was built.
func NewSymbolicQuery(model *tsys.Model, opt Options) *SymbolicQuery {
	return &SymbolicQuery{model: model, opt: opt.withDefaults(), fp: model.Fingerprint()}
}

// Close returns the query's manager to the pool (if one was built) and
// marks the query unusable.
func (q *SymbolicQuery) Close() {
	q.release()
	q.closed = true
}

// release drops all built state. After release the next CheckCtx rebuilds
// from scratch, exactly as a fresh query would.
func (q *SymbolicQuery) release() {
	if q.e == nil {
		return
	}
	m := q.e.m
	q.e = nil
	q.rels = nil
	q.trap, q.init = bdd.False, bdd.False
	q.reorderBase, q.reorderDone, q.reorders, q.nodesFreed = 0, false, 0, 0
	q.sliceBits, q.sliceEdges = 0, 0
	if !q.opt.NoPool {
		managers.Put(m)
	}
}

// build slices the model to the trap query (unless disabled), leases a
// manager, seeds it with a learned order if the book has one for this
// model, and bit-blasts the transition relations, trap and initial-state
// predicates. Reordering may trigger between relation builds: at that
// point the relations built so far are the entire live set.
func (q *SymbolicQuery) build() error {
	model := q.model
	if !q.opt.NoSlice {
		// The slice mutates, so it runs on a private clone; the caller's
		// model and the query fingerprint stay those of the full model.
		model = model.Clone()
		ps := opt.SliceTrap(model)
		q.sliceBits = int64(ps.BitsBefore - ps.BitsAfter)
		q.sliceEdges = int64(ps.EdgesBefore - ps.EdgesAfter)
	}
	e := newEncoding(model, func(n int) *bdd.Manager {
		if q.opt.NoPool {
			return bdd.New(n)
		}
		return managers.Get(n)
	})
	m := e.m
	q.health0 = m.Health()
	if o := q.opt.Orders.get(q.fp, m.NumVars()); o != nil {
		m.SetOrder(o)
	}
	m.SetNodeLimit(q.opt.MaxNodes)
	q.e = e
	q.reorderBase = m.NodeCount()
	q.rels = q.rels[:0]
	for _, ed := range model.Edges {
		r, err := e.edgeRelation(ed)
		if err != nil {
			return err
		}
		if r != bdd.False {
			q.rels = append(q.rels, r)
		}
		q.maybeReorder(func() []*bdd.Ref { return q.relRoots(nil) })
	}
	q.trap = e.locEquals(model.Trap, false)
	q.init = e.initSet()
	return nil
}

// relRoots collects pointers to every live handle the query holds, plus
// the extras, for a reorder's root set.
func (q *SymbolicQuery) relRoots(extra []*bdd.Ref) []*bdd.Ref {
	roots := make([]*bdd.Ref, 0, len(q.rels)+2+len(extra))
	for i := range q.rels {
		roots = append(roots, &q.rels[i])
	}
	if q.trap != bdd.False {
		roots = append(roots, &q.trap)
	}
	if q.init != bdd.False {
		roots = append(roots, &q.init)
	}
	return append(roots, extra...)
}

// maybeReorder runs a sifting round when the table has outgrown the last
// baseline. The trigger is a pure function of deterministic node counts,
// so reorder points — and therefore peak-node statistics — are identical
// across worker counts and runs. A round that shrinks the graph by less
// than a quarter (or not at all) marks the query done: sifting has
// plateaued, and repeating it at every growth step would cost more than
// the residual gain.
func (q *SymbolicQuery) maybeReorder(roots func() []*bdd.Ref) {
	if q.opt.NoReorder || q.reorderDone {
		return
	}
	m := q.e.m
	n := m.NodeCount()
	if n < reorderMin || n > reorderMax || n < reorderGrowth*q.reorderBase {
		return
	}
	before := n
	if m.Reorder(roots()) {
		q.reorders++
		freed := before - m.NodeCount()
		q.nodesFreed += int64(freed)
		if freed*4 < before {
			q.reorderDone = true
		}
	} else {
		q.reorderDone = true
	}
	q.reorderBase = m.NodeCount()
}

// CheckCtx runs the reachability query with cooperative cancellation and
// budget enforcement. The engine checks the context between breadth-first
// iterations, bounds the BDD table at opt.MaxNodes and the iteration count
// at opt.MaxSteps, and bounds its own wall clock at opt.Timeout. Every
// bound violation returns a structured fail.ErrBudgetExceeded (a truncated
// search must never masquerade as a proof of infeasibility); cancellation
// returns fail.ErrCancelled.
func (q *SymbolicQuery) CheckCtx(ctx context.Context) (res *Result, err error) {
	if q.closed {
		return nil, fail.Infra("mc", fmt.Errorf("CheckCtx on a closed query"))
	}
	if q.opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, q.opt.Timeout)
		defer cancel()
	}
	start := time.Now()
	o := obs.From(ctx)
	o.Count("mc.calls", 1)
	msp := o.SpanV("mc", "mc.symbolic")
	if q.model.Trap == tsys.NoLoc {
		return nil, fail.Infra("mc", fmt.Errorf("model has no trap location"))
	}
	if ferr := faults.Fire(ctx, "mc.check", 0); ferr != nil {
		return nil, fail.From("mc", ferr)
	}
	// The BDD kernel reports an exhausted node budget as a typed panic (its
	// recursive operations have no error returns); translate it here. On
	// any failure the built state is released: a retry must rebuild from
	// scratch so its statistics match a first-try success (see the type
	// comment), and a limit-struck manager is mid-operation anyway (the
	// pool's Reset restores its invariants).
	defer func() {
		if r := recover(); r != nil {
			le, ok := r.(*bdd.LimitError)
			if !ok {
				panic(r)
			}
			o.Count("mc.budget_exhausted", 1)
			res, err = nil, &fail.Error{Kind: fail.ErrBudgetExceeded, Stage: "mc",
				Msg: "BDD node budget exhausted", Cause: le}
		}
		if err != nil {
			q.release()
		}
	}()
	if q.e == nil {
		if berr := q.build(); berr != nil {
			return nil, berr
		}
	}
	e, m := q.e, q.e.m

	res = &Result{}
	reached := q.init
	frontier := q.init
	var rings []bdd.Ref
	rings = append(rings, frontier)
	hit := m.And(frontier, q.trap) != bdd.False

	bfsRoots := func() []*bdd.Ref {
		extra := []*bdd.Ref{&reached, &frontier}
		for i := range rings {
			extra = append(extra, &rings[i])
		}
		return q.relRoots(extra)
	}
	for !hit && frontier != bdd.False && res.Stats.Steps < q.opt.MaxSteps {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fail.Context("mc", cerr)
		}
		if ferr := faults.Fire(ctx, "mc.step", res.Stats.Steps); ferr != nil {
			return nil, fail.From("mc", ferr)
		}
		res.Stats.Steps++
		next := bdd.False
		for _, rel := range q.rels {
			img := m.AndExists(frontier, rel, e.curCube)
			next = m.Or(next, img)
		}
		nextCur := m.Rename(next, e.n2c)
		frontier = m.And(nextCur, m.Not(reached))
		reached = m.Or(reached, frontier)
		rings = append(rings, frontier)
		if m.And(frontier, q.trap) != bdd.False {
			hit = true
		} else {
			q.maybeReorder(bfsRoots)
		}
	}
	if !hit && frontier != bdd.False {
		// The step budget ran out with states still unexplored: no verdict.
		o.Count("mc.budget_exhausted", 1)
		return nil, fail.Budget("mc", "step budget exhausted after %d steps", res.Stats.Steps)
	}

	res.Stats.PeakNodes = m.PeakNodes()
	res.Stats.MemoryBytes = m.Footprint()
	res.Stats.Reorders = q.reorders
	res.Stats.StateBits = e.nbits
	// SatCount ranges over 2n BDD variables while `reached` constrains only
	// the n current-state bits: divide out the free next-state bits.
	res.Stats.States = m.SatCount(reached) / pow2f(e.nbits)

	if hit {
		res.Reachable = true
		w, werr := e.extractWitness(m, q.rels, rings, q.trap)
		if werr != nil {
			return nil, werr
		}
		res.Witness = w
	}
	// The query succeeded: commit the final order to the book. Failed
	// attempts never reach this point, so a book only ever carries orders
	// learned at deterministic completion points.
	q.opt.Orders.learn(q.fp, m.CurrentOrder())

	res.Stats.Duration = time.Since(start)
	// Steps, peak nodes, reorder rounds and state bits are pure functions
	// of model + options (the manager is fresh or reset-to-fresh, and
	// reorder triggers fire on deterministic node counts), so they feed
	// deterministic series; durations and capacity-dependent kernel-health
	// counters are volatile.
	o.Count("mc.steps", int64(res.Stats.Steps))
	o.Count("mc.slice.bits_dropped", q.sliceBits)
	o.Count("mc.slice.edges_dropped", q.sliceEdges)
	o.Count("mc.reorders", int64(q.reorders))
	o.Count("mc.reorder.nodes_freed", q.nodesFreed)
	o.SetMax("mc.peak_nodes", int64(res.Stats.PeakNodes))
	o.Hist("mc.state_bits", int64(e.nbits))
	o.HistV("mc.duration_ns", res.Stats.Duration.Nanoseconds())
	h := m.Health().Sub(q.health0)
	o.CountV("bdd.unique.rehashes", h.UniqueRehashes)
	o.CountV("bdd.ite.lookups", h.ITELookups)
	o.CountV("bdd.ite.hits", h.ITEHits)
	o.CountV("bdd.quant.lookups", h.QuantLookups)
	o.CountV("bdd.quant.hits", h.QuantHits)
	o.CountV("bdd.perm.lookups", h.PermLookups)
	o.CountV("bdd.perm.hits", h.PermHits)
	o.SetMaxV("bdd.peak_memory_bytes", m.MemoryBytes())
	msp.End("steps", res.Stats.Steps, "reachable", res.Reachable, "reorders", q.reorders)
	return res, nil
}
