package mc

import (
	"math/rand"
	"testing"

	"wcet/internal/cc/token"
	"wcet/internal/tsys"
)

// Randomized cross-check of the two engines: on small random transition
// systems the symbolic (BDD) engine and the explicit-state engine must
// agree on trap reachability, and every symbolic witness must be confirmed
// by an explicit run started from exactly that witness. This is the
// engine-agreement property test guarding the BDD kernel: any semantic slip
// in the complement-edge canonical form or the packed operation caches
// shows up as a verdict disagreement here.

// randExpr builds a random expression over the model's variables using only
// operators both engines support (no division, no symbolic shifts).
func randExpr(rng *rand.Rand, m *tsys.Model, depth int) tsys.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return &tsys.Ref{Var: tsys.VarID(rng.Intn(len(m.Vars)))}
		}
		return &tsys.Const{Val: int64(rng.Intn(8))}
	}
	ops := []token.Kind{token.PLUS, token.MINUS, token.STAR,
		token.AMP, token.PIPE, token.CARET,
		token.EQ, token.NE, token.LT, token.LE, token.GT, token.GE}
	op := ops[rng.Intn(len(ops))]
	return &tsys.Bin{Op: op,
		X: randExpr(rng, m, depth-1),
		Y: randExpr(rng, m, depth-1)}
}

// randModel builds a small random transition system: two 3-bit inputs, one
// pinned local, 3–5 locations, and 4–8 guarded/assigning edges.
func randModel(rng *rand.Rand) *tsys.Model {
	m := &tsys.Model{Name: "random"}
	for i := 0; i < 2; i++ {
		v := m.NewVar("in", 3, false)
		v.Input = true
	}
	loc := m.NewVar("acc", 3, false)
	loc.Init = tsys.InitConst
	loc.InitVal = int64(rng.Intn(8))

	nlocs := 3 + rng.Intn(3)
	locs := make([]tsys.Loc, nlocs)
	for i := range locs {
		locs[i] = m.NewLoc()
	}
	m.Init = locs[0]
	m.Trap = locs[nlocs-1]

	nedges := 4 + rng.Intn(5)
	for i := 0; i < nedges; i++ {
		e := &tsys.Edge{
			From: locs[rng.Intn(nlocs)],
			To:   locs[rng.Intn(nlocs)],
		}
		if rng.Intn(3) != 0 {
			e.Guard = randExpr(rng, m, 2)
		}
		if rng.Intn(2) == 0 {
			e.Assigns = []tsys.Assign{{
				Var: loc.ID,
				RHS: &tsys.CastE{Bits: 3, Signed: false, X: randExpr(rng, m, 2)},
			}}
		}
		m.AddEdge(e)
	}
	return m
}

func TestEnginesAgreeOnRandomModels(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	trials := 80
	if testing.Short() {
		trials = 20
	}
	agreeReach := 0
	for trial := 0; trial < trials; trial++ {
		m := randModel(rng)
		sym, err := CheckSymbolic(m, Options{})
		if err != nil {
			t.Fatalf("trial %d: symbolic: %v", trial, err)
		}
		exp, err := CheckExplicit(m, Options{})
		if err != nil {
			t.Fatalf("trial %d: explicit: %v", trial, err)
		}
		if sym.Reachable != exp.Reachable {
			t.Fatalf("trial %d: engines disagree: symbolic=%v explicit=%v on\n%s",
				trial, sym.Reachable, exp.Reachable, m)
		}
		if !sym.Reachable {
			continue
		}
		agreeReach++
		// Confirm the symbolic witness concretely: pin every input to the
		// witness value and the trap must still be explicitly reachable.
		pinned := m.Clone()
		for id, val := range sym.Witness {
			v := pinned.Vars[id]
			v.Input = false
			v.Init = tsys.InitConst
			v.InitVal = val
		}
		rep, err := CheckExplicit(pinned, Options{})
		if err != nil {
			t.Fatalf("trial %d: witness replay: %v", trial, err)
		}
		if !rep.Reachable {
			t.Fatalf("trial %d: symbolic witness %v does not reach the trap explicitly on\n%s",
				trial, sym.Witness, m)
		}
	}
	if agreeReach == 0 {
		t.Error("no random model had a reachable trap; generator too weak to test anything")
	}
}
