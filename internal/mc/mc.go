// Package mc is the model checker standing in for SAL: given a transition
// system and a trap location, it either produces a run reaching the trap —
// whose initial state is the wanted test datum — or proves the trap
// unreachable, establishing path infeasibility.
//
// Two engines are provided: the symbolic engine (BDD-based breadth-first
// reachability with counterexample extraction) carries the real workloads;
// the explicit-state engine enumerates concrete states and cross-checks the
// symbolic engine on small models. Both report the metrics of the paper's
// Table 2: wall time, memory footprint, and steps (BFS iterations).
//
// The package keeps no mutable package-level state: every check builds its
// own engine state (CheckSymbolic allocates a fresh BDD manager per call,
// since managers are not goroutine-safe) and returns its Stats by value in
// the Result, so independent checks may run concurrently.
package mc

import (
	"time"

	"wcet/internal/tsys"
)

// Stats are the cost metrics of one run (the Table 2 columns).
type Stats struct {
	// Steps counts breadth-first iterations until the trap was hit or the
	// fixpoint was reached — the paper's "steps" column.
	Steps int
	// PeakNodes is the BDD node count after the run (symbolic engine).
	PeakNodes int
	// MemoryBytes estimates the working-set size: BDD tables for the
	// symbolic engine, the state set for the explicit engine.
	MemoryBytes int64
	// Duration is the wall-clock simulation time.
	Duration time.Duration
	// States is the number of distinct reachable states visited (explicit)
	// or a satisfying-assignment estimate of the reachable set (symbolic).
	States float64
	// StateBits is the encoded state-vector width of the checked model.
	StateBits int
}

// Result of a reachability query.
type Result struct {
	// Reachable reports whether the trap location can be reached.
	Reachable bool
	// Witness gives, for a reachable trap, the initial values of the model's
	// input variables on some trap-reaching run — the generated test datum.
	Witness map[tsys.VarID]int64
	Stats   Stats
}

// Options bound a run. Exhausting any bound is a structured
// fail.ErrBudgetExceeded error, never a silent "unreachable": a truncated
// search proves nothing, and reporting it as infeasibility would make the
// final WCET bound unsound.
type Options struct {
	// MaxSteps aborts the search after this many frontier expansions
	// (default 10000). Zero or negative selects the default: a negative
	// bound would otherwise disable the abort check entirely.
	MaxSteps int
	// MaxStates bounds the explicit engine's visited set (default 2_000_000).
	// Zero or negative selects the default.
	MaxStates int
	// MaxNodes bounds the symbolic engine's BDD table (default 8_000_000
	// nodes ≈ 100 MB): a path whose relation or frontier blows up stops
	// with a budget error instead of growing without bound. Zero or
	// negative selects the default.
	MaxNodes int
	// Timeout bounds one check's wall clock (0 = none). Expiry surfaces as
	// fail.ErrBudgetExceeded; the paper's model-checker runs "may take
	// minutes to hours", so production pipelines set this per path.
	Timeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxSteps <= 0 {
		o.MaxSteps = 10000
	}
	if o.MaxStates <= 0 {
		o.MaxStates = 2_000_000
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 8_000_000
	}
	return o
}
