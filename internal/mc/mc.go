// Package mc is the model checker standing in for SAL: given a transition
// system and a trap location, it either produces a run reaching the trap —
// whose initial state is the wanted test datum — or proves the trap
// unreachable, establishing path infeasibility.
//
// Two engines are provided: the symbolic engine (BDD-based breadth-first
// reachability with counterexample extraction) carries the real workloads;
// the explicit-state engine enumerates concrete states and cross-checks the
// symbolic engine on small models. Both report the metrics of the paper's
// Table 2: wall time, memory footprint, and steps (BFS iterations).
//
// Engine state is per-query: every check builds its own encoding and BDD
// manager (managers are not goroutine-safe) and returns its Stats by value
// in the Result, so independent checks may run concurrently. The only
// package-level state is a sync.Pool of recycled managers (see query.go),
// which is concurrency-safe and — because a reset manager is
// observationally identical to a fresh one — invisible to results and
// deterministic statistics.
package mc

import (
	"time"

	"wcet/internal/tsys"
)

// Stats are the cost metrics of one run (the Table 2 columns).
type Stats struct {
	// Steps counts breadth-first iterations until the trap was hit or the
	// fixpoint was reached — the paper's "steps" column.
	Steps int
	// PeakNodes is the BDD table's high-water node count over the run
	// (symbolic engine). Dynamic reordering can shrink the live table
	// mid-run; the peak keeps the paper's "memory" meaning.
	PeakNodes int
	// MemoryBytes is the working-set size: the deterministic logical
	// footprint of the BDD tables for the symbolic engine (bdd.Footprint —
	// a pooled manager's exact capacities are volatile), the state set for
	// the explicit engine.
	MemoryBytes int64
	// Reorders counts the dynamic variable reorders the symbolic engine
	// applied — sifting rounds that found a better order (zero when
	// reordering is disabled, never triggered, or — typically after an
	// order-book seed — found nothing to improve).
	Reorders int
	// Duration is the wall-clock simulation time.
	Duration time.Duration
	// States is the number of distinct reachable states visited (explicit)
	// or a satisfying-assignment estimate of the reachable set (symbolic).
	States float64
	// StateBits is the encoded state-vector width of the checked model.
	StateBits int
}

// Result of a reachability query.
type Result struct {
	// Reachable reports whether the trap location can be reached.
	Reachable bool
	// Witness gives, for a reachable trap, the initial values of the model's
	// input variables on some trap-reaching run — the generated test datum.
	Witness map[tsys.VarID]int64
	Stats   Stats
}

// Options bound a run. Exhausting any bound is a structured
// fail.ErrBudgetExceeded error, never a silent "unreachable": a truncated
// search proves nothing, and reporting it as infeasibility would make the
// final WCET bound unsound.
type Options struct {
	// MaxSteps aborts the search after this many frontier expansions
	// (default 10000). Zero or negative selects the default: a negative
	// bound would otherwise disable the abort check entirely.
	MaxSteps int
	// MaxStates bounds the explicit engine's visited set (default 2_000_000).
	// Zero or negative selects the default.
	MaxStates int
	// MaxNodes bounds the symbolic engine's BDD table (default 8_000_000
	// nodes ≈ 100 MB): a path whose relation or frontier blows up stops
	// with a budget error instead of growing without bound. Zero or
	// negative selects the default.
	MaxNodes int
	// Timeout bounds one check's wall clock (0 = none). Expiry surfaces as
	// fail.ErrBudgetExceeded; the paper's model-checker runs "may take
	// minutes to hours", so production pipelines set this per path.
	Timeout time.Duration
	// NoSlice disables the per-trap program slice the symbolic engine
	// applies before encoding: with it set, the model is checked exactly as
	// given. The slice (opt.SliceTrap on a private clone) removes variables
	// and transitions that cannot influence trap reachability, so it never
	// changes the verdict; witnesses then omit sliced-away inputs, whose
	// every value extends a trap-reaching run. The flag exists for A/B
	// baselines and for checking a model verbatim.
	NoSlice bool
	// NoReorder disables dynamic variable reordering in the symbolic
	// engine: the build-time interleaved order is kept for the whole query.
	NoReorder bool
	// NoPool makes the symbolic engine allocate a fresh BDD manager instead
	// of leasing one from the shared pool. Results and deterministic stats
	// are identical either way; the flag exists for A/B benchmarks and for
	// bisecting kernel issues.
	NoPool bool
	// Orders, when non-nil, is a learned-order book: a successful query
	// records its final variable order under the model's structural
	// fingerprint, and a later query for an identical model seeds its
	// manager with that order instead of rediscovering it. Share a book
	// only across sequential queries — seeding changes a query's node
	// counts, so a book shared across concurrently-checked models would
	// make canonical statistics depend on scheduling.
	Orders *OrderBook
}

func (o Options) withDefaults() Options {
	if o.MaxSteps <= 0 {
		o.MaxSteps = 10000
	}
	if o.MaxStates <= 0 {
		o.MaxStates = 2_000_000
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 8_000_000
	}
	return o
}
