package mc

import (
	"math/rand"
	"testing"

	"wcet/internal/opt"
	"wcet/internal/tsys"
)

// Differential tests for the three symbolic-speed levers: per-trap slicing,
// dynamic variable reordering, and manager pooling. Each lever must be
// invisible to verdicts and witnesses (checked against the unlevered
// engine and by concrete replay on the explicit engine), and pooling and
// order handoff must additionally be invisible to deterministic statistics.

// confirmWitness pins a witness into a clone of the model and requires the
// trap to stay explicitly reachable — the concrete validity check shared
// with the engine-agreement harness.
func confirmWitness(t *testing.T, trial int, m *tsys.Model, witness map[tsys.VarID]int64) {
	t.Helper()
	pinned := m.Clone()
	for id, val := range witness {
		v := pinned.Vars[id]
		v.Input = false
		v.Init = tsys.InitConst
		v.InitVal = val
	}
	rep, err := CheckExplicit(pinned, Options{})
	if err != nil {
		t.Fatalf("trial %d: witness replay: %v", trial, err)
	}
	if !rep.Reachable {
		t.Fatalf("trial %d: witness %v does not reach the trap explicitly on\n%s",
			trial, witness, m)
	}
}

// confirmWitnessZeroed replays a sliced witness on the unsliced model with
// every input the witness omits pinned to a concrete value — zero, or the
// range floor when zero lies outside the declared range — instead of left
// free. The slice's soundness argument is that *every* value of an
// irrelevant input extends a trap-reaching run, so the most degenerate
// assignment must work too; this is the property the verdict cache leans
// on when it serves a sliced verdict across a program edit. Returns how
// many inputs the witness omitted.
func confirmWitnessZeroed(t *testing.T, trial int, m *tsys.Model, witness map[tsys.VarID]int64) int {
	t.Helper()
	pinned := m.Clone()
	omitted := 0
	for _, v := range pinned.Vars {
		if _, ok := witness[v.ID]; ok || !v.Input {
			continue
		}
		omitted++
		val := int64(0)
		if v.HasRange && (v.Lo > 0 || v.Hi < 0) {
			val = v.Lo
		}
		v.Input = false
		v.Init = tsys.InitConst
		v.InitVal = val
	}
	for id, val := range witness {
		v := pinned.Vars[id]
		v.Input = false
		v.Init = tsys.InitConst
		v.InitVal = val
	}
	if omitted == 0 {
		return 0
	}
	rep, err := CheckExplicit(pinned, Options{})
	if err != nil {
		t.Fatalf("trial %d: zeroed witness replay: %v", trial, err)
	}
	if !rep.Reachable {
		t.Fatalf("trial %d: witness %v with omitted inputs zeroed does not reach the trap on\n%s",
			trial, witness, m)
	}
	return omitted
}

// TestSlicedVsUnslicedAgree: the symbolic engine's built-in per-trap slice
// must preserve the verdict of every random model, and a sliced witness —
// which omits sliced-away inputs — must still drive the *unsliced* model
// into the trap, both with the irrelevant inputs left free (any value
// extends the run) and with them pinned to zero.
func TestSlicedVsUnslicedAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	trials := 80
	if testing.Short() {
		trials = 20
	}
	reachable, shrunk, omittedInputs := 0, 0, 0
	for trial := 0; trial < trials; trial++ {
		m := randModel(rng)
		probe := m.Clone()
		ps := opt.SliceTrap(probe)
		if ps.BitsAfter < ps.BitsBefore || ps.EdgesAfter < ps.EdgesBefore {
			shrunk++
		}
		full, err := CheckSymbolic(m, Options{NoSlice: true})
		if err != nil {
			t.Fatalf("trial %d: unsliced: %v", trial, err)
		}
		sres, err := CheckSymbolic(m, Options{})
		if err != nil {
			t.Fatalf("trial %d: sliced: %v", trial, err)
		}
		if full.Reachable != sres.Reachable {
			t.Fatalf("trial %d: slice changed the verdict: unsliced=%v sliced=%v on\n%s",
				trial, full.Reachable, sres.Reachable, m)
		}
		if !sres.Reachable {
			continue
		}
		reachable++
		confirmWitness(t, trial, m, sres.Witness)
		omittedInputs += confirmWitnessZeroed(t, trial, m, sres.Witness)
	}
	if reachable == 0 {
		t.Error("no random model had a reachable trap; nothing was tested")
	}
	if shrunk == 0 {
		t.Error("the slice never removed anything; the pass is not being exercised")
	}
	if omittedInputs == 0 {
		t.Error("no reachable trial had a sliced-away input; the zeroed replay is not being exercised")
	}
}

// TestReorderedVsStaticAgree: with the reorder trigger lowered far enough
// to fire on toy models, the reordered engine must agree with the static
// one on verdict, step count and witness validity, and its deterministic
// statistics must be reproducible run over run.
func TestReorderedVsStaticAgree(t *testing.T) {
	old := SetReorderMin(64)
	defer SetReorderMin(old)
	rng := rand.New(rand.NewSource(424242))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	reordered, reachable := 0, 0
	for trial := 0; trial < trials; trial++ {
		m := randModel(rng)
		static, err := CheckSymbolic(m, Options{NoReorder: true})
		if err != nil {
			t.Fatalf("trial %d: static: %v", trial, err)
		}
		dyn, err := CheckSymbolic(m, Options{})
		if err != nil {
			t.Fatalf("trial %d: reordered: %v", trial, err)
		}
		if static.Reachable != dyn.Reachable {
			t.Fatalf("trial %d: reordering changed the verdict: static=%v dynamic=%v on\n%s",
				trial, static.Reachable, dyn.Reachable, m)
		}
		if static.Stats.Steps != dyn.Stats.Steps {
			t.Fatalf("trial %d: reordering changed the step count: %d vs %d",
				trial, static.Stats.Steps, dyn.Stats.Steps)
		}
		reordered += dyn.Stats.Reorders
		// Same query again: every deterministic statistic must reproduce.
		again, err := CheckSymbolic(m, Options{})
		if err != nil {
			t.Fatalf("trial %d: repeat: %v", trial, err)
		}
		if again.Stats.Steps != dyn.Stats.Steps || again.Stats.PeakNodes != dyn.Stats.PeakNodes ||
			again.Stats.MemoryBytes != dyn.Stats.MemoryBytes || again.Stats.Reorders != dyn.Stats.Reorders {
			t.Fatalf("trial %d: reordered stats not reproducible: %+v vs %+v",
				trial, again.Stats, dyn.Stats)
		}
		if dyn.Reachable {
			reachable++
			confirmWitness(t, trial, m, dyn.Witness)
		}
	}
	if reordered == 0 {
		t.Error("no trial triggered a reorder; lower the trigger or grow the models")
	}
	if reachable == 0 {
		t.Error("no random model had a reachable trap; nothing was tested")
	}
}

// TestPooledVsFreshIdentical: a query on a pooled manager — deliberately
// warmed and bloated by mismatched earlier queries — must be bit-for-bit
// identical to one on a fresh manager, deterministic statistics included.
func TestPooledVsFreshIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Dirty the pool with queries of various sizes.
	for i := 0; i < 6; i++ {
		if _, err := CheckSymbolic(randModel(rng), Options{}); err != nil {
			t.Fatalf("warmup %d: %v", i, err)
		}
	}
	for trial := 0; trial < 25; trial++ {
		m := randModel(rng)
		fresh, err := CheckSymbolic(m, Options{NoPool: true})
		if err != nil {
			t.Fatalf("trial %d: fresh: %v", trial, err)
		}
		pooled, err := CheckSymbolic(m, Options{})
		if err != nil {
			t.Fatalf("trial %d: pooled: %v", trial, err)
		}
		if fresh.Reachable != pooled.Reachable {
			t.Fatalf("trial %d: pooling changed the verdict", trial)
		}
		if fresh.Stats.Steps != pooled.Stats.Steps ||
			fresh.Stats.PeakNodes != pooled.Stats.PeakNodes ||
			fresh.Stats.MemoryBytes != pooled.Stats.MemoryBytes ||
			fresh.Stats.States != pooled.Stats.States ||
			fresh.Stats.StateBits != pooled.Stats.StateBits {
			t.Fatalf("trial %d: pooled stats diverge from fresh:\nfresh  %+v\npooled %+v",
				trial, fresh.Stats, pooled.Stats)
		}
		for id, val := range fresh.Witness {
			if pooled.Witness[id] != val {
				t.Fatalf("trial %d: pooled witness diverges at var %d: %d vs %d",
					trial, id, pooled.Witness[id], val)
			}
		}
	}
}

// TestOrderBookHandoff: a learned order seeds the next query for the same
// model. The seeded run must agree on the verdict and, run twice, must
// reproduce its own statistics exactly — the handoff is deterministic.
func TestOrderBookHandoff(t *testing.T) {
	old := SetReorderMin(64)
	defer SetReorderMin(old)
	rng := rand.New(rand.NewSource(31337))
	book := NewOrderBook()
	handedOff := 0
	for trial := 0; trial < 40; trial++ {
		m := randModel(rng)
		cold, err := CheckSymbolic(m, Options{})
		if err != nil {
			t.Fatalf("trial %d: cold: %v", trial, err)
		}
		first, err := CheckSymbolic(m, Options{Orders: book})
		if err != nil {
			t.Fatalf("trial %d: learn: %v", trial, err)
		}
		seeded, err := CheckSymbolic(m, Options{Orders: book})
		if err != nil {
			t.Fatalf("trial %d: seeded: %v", trial, err)
		}
		if cold.Reachable != seeded.Reachable || first.Reachable != seeded.Reachable {
			t.Fatalf("trial %d: order handoff changed the verdict", trial)
		}
		if first.Stats.Reorders > 0 && seeded.Stats.Reorders == 0 {
			handedOff++
		}
		again, err := CheckSymbolic(m, Options{Orders: book})
		if err != nil {
			t.Fatalf("trial %d: seeded repeat: %v", trial, err)
		}
		if again.Stats != seededStatsNoDuration(seeded.Stats, again.Stats) {
			t.Fatalf("trial %d: seeded stats not reproducible: %+v vs %+v",
				trial, again.Stats, seeded.Stats)
		}
		if seeded.Reachable {
			confirmWitness(t, trial, m, seeded.Witness)
		}
	}
	if handedOff == 0 {
		t.Error("no trial skipped a reorder via the book; the handoff is not being exercised")
	}
}

// seededStatsNoDuration returns want with the wall-clock field replaced by
// got's, so a struct compare covers every deterministic field.
func seededStatsNoDuration(want, got Stats) Stats {
	want.Duration = got.Duration
	return want
}
