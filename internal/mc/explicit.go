package mc

import (
	"context"
	"fmt"
	"time"

	"wcet/internal/fail"
	"wcet/internal/obs"
	"wcet/internal/tsys"
)

// CheckExplicit runs breadth-first reachability over concrete states. It
// enumerates every initial assignment of the free variables, so it is only
// practical for small domains; the engine exists to cross-check the
// symbolic engine and to explore tiny models exactly.
func CheckExplicit(model *tsys.Model, opt Options) (*Result, error) {
	return CheckExplicitCtx(context.Background(), model, opt)
}

// CheckExplicitCtx is CheckExplicit with cooperative cancellation (checked
// between breadth-first levels) and structured budget errors: exceeding
// MaxStates or MaxSteps returns fail.ErrBudgetExceeded rather than a
// truncated — and therefore unsound — "unreachable".
func CheckExplicitCtx(ctx context.Context, model *tsys.Model, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	start := time.Now()
	o := obs.From(ctx)
	o.Count("mc.explicit.calls", 1)
	if model.Trap == tsys.NoLoc {
		return nil, fail.Infra("mc", fmt.Errorf("model has no trap location"))
	}

	// Enumerate initial states.
	type state struct {
		loc  tsys.Loc
		vals string // packed values, used as a map key
	}
	pack := func(vals []int64) string {
		b := make([]byte, 0, len(vals)*8)
		for _, v := range vals {
			for i := 0; i < 8; i++ {
				b = append(b, byte(v>>uint(8*i)))
			}
		}
		return string(b)
	}
	unpack := func(s string) []int64 {
		vals := make([]int64, len(s)/8)
		for i := range vals {
			var v uint64
			for j := 0; j < 8; j++ {
				v |= uint64(s[i*8+j]) << uint(8*j)
			}
			vals[i] = int64(v)
		}
		return vals
	}

	var free []int // indices of free variables
	base := make([]int64, len(model.Vars))
	for i, v := range model.Vars {
		if v.Init == tsys.InitConst {
			base[i] = tsys.TruncateBits(v.InitVal, v.Bits, v.Signed)
		} else {
			free = append(free, i)
		}
	}
	domain := func(v *tsys.Var) (lo, hi int64) {
		if v.HasRange {
			return v.Lo, v.Hi
		}
		if v.Signed {
			hi = int64(1)<<uint(v.Bits-1) - 1
			return -hi - 1, hi
		}
		return 0, int64(1)<<uint(v.Bits) - 1
	}
	// Estimate the initial-state count to guard against explosion.
	total := 1.0
	for _, i := range free {
		lo, hi := domain(model.Vars[i])
		total *= float64(hi-lo) + 1
		if total > float64(opt.MaxStates) {
			return nil, fail.Budget("mc", "explicit engine: initial space too large (%g states)", total)
		}
	}

	var inits [][]int64
	var enumerate func(i int, vals []int64)
	enumerate = func(i int, vals []int64) {
		if i == len(free) {
			inits = append(inits, append([]int64(nil), vals...))
			return
		}
		lo, hi := domain(model.Vars[free[i]])
		for v := lo; v <= hi; v++ {
			vals[free[i]] = tsys.TruncateBits(v, model.Vars[free[i]].Bits, model.Vars[free[i]].Signed)
			enumerate(i+1, vals)
		}
	}
	enumerate(0, append([]int64(nil), base...))

	out := model.OutEdges()
	res := &Result{}
	res.Stats.StateBits = model.StateBits()
	// Step and state counts are pure functions of model + options; the
	// duration is wall clock and stays volatile.
	record := func() {
		o.Count("mc.explicit.steps", int64(res.Stats.Steps))
		o.Hist("mc.explicit.states", int64(res.Stats.States))
		o.HistV("mc.explicit.duration_ns", res.Stats.Duration.Nanoseconds())
	}

	visited := map[state]bool{}
	parent := map[state]state{}
	root := map[state][]int64{} // initial full assignment per BFS tree root
	var frontier []state
	push := func(s state, from *state, init []int64) bool {
		if visited[s] {
			return false
		}
		visited[s] = true
		if from != nil {
			parent[s] = *from
		} else {
			root[s] = init
		}
		frontier = append(frontier, s)
		return true
	}
	for _, iv := range inits {
		s := state{loc: model.Init, vals: pack(iv)}
		push(s, nil, iv)
	}
	if len(visited) > opt.MaxStates {
		return nil, fail.Budget("mc", "explicit engine: too many initial states (%d)", len(visited))
	}

	findRoot := func(s state) []int64 {
		for {
			if iv, ok := root[s]; ok {
				return iv
			}
			s = parent[s]
		}
	}

	goal := func(s state) bool { return s.loc == model.Trap }

	for _, s := range frontier {
		if goal(s) {
			res.Reachable = true
			res.Witness = witnessFrom(model, findRoot(s))
			res.Stats.Duration = time.Since(start)
			res.Stats.States = float64(len(visited))
			res.Stats.MemoryBytes = int64(len(visited)) * int64(len(model.Vars)*8+32)
			record()
			return res, nil
		}
	}

	for len(frontier) > 0 && res.Stats.Steps < opt.MaxSteps {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fail.Context("mc", cerr)
		}
		res.Stats.Steps++
		var next []state
		for _, s := range frontier {
			vals := unpack(s.vals)
			for _, e := range out[s.loc] {
				if e.Guard != nil {
					g, err := tsys.Eval(model, e.Guard, vals)
					if err != nil {
						continue // faulting guard disables the edge
					}
					if g == 0 {
						continue
					}
				}
				nv := append([]int64(nil), vals...)
				ok := true
				for _, a := range e.Assigns {
					v, err := tsys.Eval(model, a.RHS, vals)
					if err != nil {
						ok = false
						break
					}
					mv := model.Vars[a.Var]
					nv[a.Var] = tsys.TruncateBits(v, mv.Bits, mv.Signed)
				}
				if !ok {
					continue
				}
				ns := state{loc: e.To, vals: pack(nv)}
				if visited[ns] {
					continue
				}
				visited[ns] = true
				parent[ns] = s
				next = append(next, ns)
				if len(visited) > opt.MaxStates {
					return nil, fail.Budget("mc", "explicit engine: state budget exhausted (%d states)", len(visited))
				}
				if goal(ns) {
					res.Reachable = true
					res.Witness = witnessFrom(model, findRoot(ns))
					res.Stats.Steps++
					res.Stats.Duration = time.Since(start)
					res.Stats.States = float64(len(visited))
					res.Stats.MemoryBytes = int64(len(visited)) * int64(len(model.Vars)*8+32)
					record()
					return res, nil
				}
			}
		}
		frontier = next
	}
	if len(frontier) > 0 {
		// Step budget ran out with the frontier non-empty: no verdict.
		return nil, fail.Budget("mc", "explicit engine: step budget exhausted after %d steps", res.Stats.Steps)
	}

	res.Stats.Duration = time.Since(start)
	res.Stats.States = float64(len(visited))
	res.Stats.MemoryBytes = int64(len(visited)) * int64(len(model.Vars)*8+32)
	record()
	return res, nil
}

func witnessFrom(model *tsys.Model, init []int64) map[tsys.VarID]int64 {
	out := map[tsys.VarID]int64{}
	for i, v := range model.Vars {
		if v.Input {
			out[v.ID] = init[i]
		}
	}
	return out
}
