package tsys

import (
	"bytes"
	"testing"

	"wcet/internal/cc/token"
)

// digestModel builds a small two-location model with a guard, an
// assignment chain and a ranged input — every structural feature the
// digest must cover.
func digestModel() *Model {
	m := &Model{Name: "d"}
	x := m.NewVar("x", 8, false)
	x.Input = true
	x.HasRange, x.Lo, x.Hi = true, 0, 9
	y := m.NewVar("y", 16, true)
	y.Init = InitConst
	y.InitVal = 3
	l0 := m.NewLoc()
	l1 := m.NewLoc()
	m.Init, m.Trap = l0, l1
	m.AddEdge(&Edge{From: l0, To: l1,
		Guard: &Bin{Op: token.LT, X: &Ref{Var: x.ID}, Y: &Const{Val: 5}},
		Assigns: []Assign{{Var: y.ID, RHS: &CondE{
			C: &Ref{Var: x.ID},
			T: &Un{Op: token.MINUS, X: &Ref{Var: y.ID}},
			F: &CastE{Bits: 8, Signed: false, X: &Const{Val: 1}},
		}}}})
	return m
}

func digestOf(m *Model) []byte {
	var b bytes.Buffer
	m.WriteDigest(&b)
	return b.Bytes()
}

func TestWriteDigestDeterministic(t *testing.T) {
	a, b := digestOf(digestModel()), digestOf(digestModel())
	if !bytes.Equal(a, b) {
		t.Fatal("two identical models produced different digests")
	}
	if len(a) == 0 {
		t.Fatal("empty digest")
	}
}

func TestWriteDigestIgnoresNames(t *testing.T) {
	m := digestModel()
	ren := digestModel()
	ren.Name = "renamed"
	for _, v := range ren.Vars {
		v.Name = v.Name + "_r"
	}
	if !bytes.Equal(digestOf(m), digestOf(ren)) {
		t.Fatal("renaming variables changed the digest; names must be excluded")
	}
}

// TestWriteDigestCoversStructure mutates every structural dimension and
// requires each mutation to move the digest — the cache-key analogue of
// the Fingerprint contract.
func TestWriteDigestCoversStructure(t *testing.T) {
	base := digestOf(digestModel())
	mutations := map[string]func(m *Model){
		"trap":        func(m *Model) { m.Trap = m.Init },
		"init-loc":    func(m *Model) { m.Init = m.Trap },
		"nlocs":       func(m *Model) { m.NewLoc() },
		"var-bits":    func(m *Model) { m.Vars[0].Bits = 9 },
		"var-signed":  func(m *Model) { m.Vars[0].Signed = !m.Vars[0].Signed },
		"var-init":    func(m *Model) { m.Vars[1].InitVal = 4 },
		"var-input":   func(m *Model) { m.Vars[1].Input = true },
		"var-range":   func(m *Model) { m.Vars[0].Hi = 10 },
		"var-norange": func(m *Model) { m.Vars[0].HasRange = false },
		"new-var":     func(m *Model) { m.NewVar("z", 1, false) },
		"edge-target": func(m *Model) { m.Edges[0].To = m.Edges[0].From },
		"guard-op": func(m *Model) {
			g := m.Edges[0].Guard.(*Bin)
			m.Edges[0].Guard = &Bin{Op: token.GT, X: g.X, Y: g.Y}
		},
		"guard-const": func(m *Model) {
			g := m.Edges[0].Guard.(*Bin)
			m.Edges[0].Guard = &Bin{Op: g.Op, X: g.X, Y: &Const{Val: 6}}
		},
		"guard-nil":   func(m *Model) { m.Edges[0].Guard = nil },
		"assign-rhs":  func(m *Model) { m.Edges[0].Assigns[0].RHS = &Const{Val: 0} },
		"assign-var":  func(m *Model) { m.Edges[0].Assigns[0].Var = 0 },
		"assign-gone": func(m *Model) { m.Edges[0].Assigns = nil },
		"new-edge":    func(m *Model) { m.AddEdge(&Edge{From: m.Trap, To: m.Init}) },
	}
	for name, mutate := range mutations {
		m := digestModel()
		mutate(m)
		if bytes.Equal(base, digestOf(m)) {
			t.Errorf("mutation %q did not change the digest", name)
		}
	}
}

// TestWriteDigestAgreesWithFingerprint: whenever the 64-bit fingerprints of
// two models differ, the canonical digests must differ too (the digest is
// at least as discriminating as the fingerprint).
func TestWriteDigestAgreesWithFingerprint(t *testing.T) {
	a := digestModel()
	b := digestModel()
	b.Vars[0].Bits = 12
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("test premise broken: fingerprints equal")
	}
	if bytes.Equal(digestOf(a), digestOf(b)) {
		t.Fatal("digests equal where fingerprints differ")
	}
}
